// Package intern collapses arbitrary grouping keys — strings, composite
// multi-column tuples, NULLs — into dense 64-bit integers before they enter
// the aggregation hot path, and decodes result group ids back into the
// original keys at emit time. This is the dictionary-encoding reduction of
// the paper's Section 6.1: with every key interned, any GROUP BY is the
// all-64-bit-integer setting the operator is built for, and the batched
// kernels, spill codec, routine selection and merge stay untouched.
//
// Two layers:
//
//   - The varlen key codec (this file): a canonical, self-delimiting byte
//     encoding of one logical key — a sequence of tagged column values.
//     Canonical means encode∘decode and decode∘encode are both fixed
//     points, which is what lets the dictionary use plain byte equality
//     as key identity and what FuzzInternRoundTrip pins.
//   - The Interner (intern.go): a sharded concurrent dictionary from
//     encoded key bytes to dense ids, with lock-free reads on the hot
//     path and append-only slab storage for key bytes.
package intern

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrMalformed is wrapped by every decode error: truncated payloads,
// unknown tags, non-minimal varints, trailing garbage. Malformed input is
// a caller bug or corrupted storage, never a panic.
var ErrMalformed = errors.New("intern: malformed key encoding")

// ValueKind tags one column value inside an encoded key.
type ValueKind uint8

const (
	// NullValue is SQL NULL. For grouping, NULL equals NULL (the GROUP BY
	// convention), so all-NULL rows collapse into one group.
	NullValue ValueKind = iota
	// U64Value is a 64-bit unsigned integer column value.
	U64Value
	// StrValue is a variable-length string (or raw bytes) column value.
	StrValue
)

// Wire tags. A key is the concatenation of one tagged value per column:
//
//	0x00                    NULL
//	0x01 <8 bytes LE>       uint64
//	0x02 <uvarint n> <n b>  string/bytes
//
// The uvarint length must be minimally encoded; decoders reject padded
// forms so every valid key has exactly one byte representation.
const (
	tagNull  = 0x00
	tagU64   = 0x01
	tagBytes = 0x02
)

// Value is one decoded (or to-be-encoded) column value.
type Value struct {
	// Kind selects which of the fields below is meaningful.
	Kind ValueKind
	// U64 is the value for U64Value.
	U64 uint64
	// Str is the value for StrValue. Using string (not []byte) keeps the
	// encode path free of conversions and allocations.
	Str string
}

// AppendValue appends the canonical encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case NullValue:
		return append(dst, tagNull)
	case U64Value:
		var b [9]byte
		b[0] = tagU64
		binary.LittleEndian.PutUint64(b[1:], v.U64)
		return append(dst, b[:]...)
	case StrValue:
		dst = append(dst, tagBytes)
		dst = appendUvarint(dst, uint64(len(v.Str)))
		return append(dst, v.Str...)
	default:
		panic(fmt.Sprintf("intern: invalid ValueKind %d", v.Kind))
	}
}

// appendUvarint appends the minimal unsigned LEB128 encoding of x.
func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// uvarint decodes a minimally-encoded unsigned LEB128 value, returning the
// value and the number of bytes consumed. Non-minimal encodings (a padded
// continuation ending in a redundant zero byte) and truncated or
// overflowing inputs are malformed — canonicality is what makes byte
// equality usable as key identity.
func uvarint(b []byte) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if i == 9 && c > 1 {
			return 0, 0, fmt.Errorf("%w: uvarint overflows 64 bits", ErrMalformed)
		}
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, 0, fmt.Errorf("%w: non-minimal uvarint", ErrMalformed)
			}
			return x | uint64(c)<<s, i + 1, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if i == 9 {
			return 0, 0, fmt.Errorf("%w: uvarint longer than 10 bytes", ErrMalformed)
		}
	}
	return 0, 0, fmt.Errorf("%w: truncated uvarint", ErrMalformed)
}

// decodeValue decodes one tagged value from the front of b, returning the
// bytes consumed. The Str field of a decoded StrValue is a copy, safe to
// retain after the backing storage changes.
func decodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("%w: empty value", ErrMalformed)
	}
	switch b[0] {
	case tagNull:
		return Value{Kind: NullValue}, 1, nil
	case tagU64:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("%w: truncated uint64 value", ErrMalformed)
		}
		return Value{Kind: U64Value, U64: binary.LittleEndian.Uint64(b[1:9])}, 9, nil
	case tagBytes:
		n, consumed, err := uvarint(b[1:])
		if err != nil {
			return Value{}, 0, err
		}
		start := 1 + consumed
		if uint64(len(b)-start) < n {
			return Value{}, 0, fmt.Errorf("%w: string value of %d bytes truncated", ErrMalformed, n)
		}
		return Value{Kind: StrValue, Str: string(b[start : start+int(n)])}, start + int(n), nil
	default:
		return Value{}, 0, fmt.Errorf("%w: unknown value tag %#02x", ErrMalformed, b[0])
	}
}

// DecodeKey decodes a whole encoded key into its column values, appending
// to vals (pass vals[:0] to reuse a scratch slice). Trailing bytes after
// the last value are malformed: a valid key is consumed exactly, so
// decode∘encode is a fixed point.
func DecodeKey(b []byte, vals []Value) ([]Value, error) {
	for len(b) > 0 {
		v, n, err := decodeValue(b)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		b = b[n:]
	}
	return vals, nil
}

// AppendKey appends the canonical encoding of a whole key (one value per
// column) to dst.
func AppendKey(dst []byte, vals []Value) []byte {
	for _, v := range vals {
		dst = AppendValue(dst, v)
	}
	return dst
}
