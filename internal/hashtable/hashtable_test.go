package hashtable

import (
	"testing"
	"testing/quick"

	"cacheagg/internal/agg"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/xrand"
)

func newSmall(words, level int) *Table {
	return New(Config{CapacityRows: 4096, Blocks: 16, Words: words, Level: level})
}

func TestNewRoundsCapacity(t *testing.T) {
	tb := New(Config{CapacityRows: 1000, Blocks: 16})
	if tb.CapacityRows() != 1024 {
		t.Fatalf("capacity = %d, want 1024", tb.CapacityRows())
	}
	tb = New(Config{CapacityRows: 1, Blocks: 256})
	if tb.CapacityRows() != 256*MinBlockRows {
		t.Fatalf("capacity = %d, want %d", tb.CapacityRows(), 256*MinBlockRows)
	}
}

func TestNewPanicsOnBadBlocks(t *testing.T) {
	for _, blocks := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("blocks=%d: expected panic", blocks)
				}
			}()
			New(Config{CapacityRows: 64, Blocks: blocks})
		}()
	}
}

func TestNewPanicsOnBadLevel(t *testing.T) {
	for _, level := range []int{-1, 8, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level=%d: expected panic", level)
				}
			}()
			New(Config{CapacityRows: 64, Blocks: 16, Level: level})
		}()
	}
}

func TestInsertRawAndLookup(t *testing.T) {
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Count}, {Kind: agg.Sum, Col: 0}})
	tb := newSmall(lay.Words, 0)
	vals := func(v int64) func(int) int64 { return func(int) int64 { return v } }

	for i := 0; i < 100; i++ {
		key := uint64(i % 10) // 10 groups, 10 rows each
		h := hashfn.Murmur2(key)
		if !tb.InsertRaw(h, key, vals(int64(i)), lay) {
			t.Fatalf("unexpected full at row %d", i)
		}
	}
	if tb.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tb.Len())
	}
	if tb.RowsIn() != 100 {
		t.Fatalf("RowsIn = %d, want 100", tb.RowsIn())
	}
	if got := tb.Alpha(); got != 10 {
		t.Fatalf("Alpha = %v, want 10", got)
	}
	// Group k received values k, k+10, ..., k+90: count 10, sum 10k+450.
	for k := uint64(0); k < 10; k++ {
		st, ok := tb.Lookup(hashfn.Murmur2(k), k)
		if !ok {
			t.Fatalf("group %d missing", k)
		}
		if st[0] != 10 || int64(st[1]) != int64(k)*10+450 {
			t.Fatalf("group %d state = %v", k, st)
		}
	}
	if _, ok := tb.Lookup(hashfn.Murmur2(999), 999); ok {
		t.Fatal("phantom key found")
	}
}

func TestInsertStateMergesSuperAggregate(t *testing.T) {
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Count}})
	tb := newSmall(lay.Words, 0)
	h := hashfn.Murmur2(7)
	if !tb.InsertState(h, 7, []uint64{3}, lay) {
		t.Fatal("insert failed")
	}
	if !tb.InsertState(h, 7, []uint64{4}, lay) {
		t.Fatal("merge failed")
	}
	st, _ := tb.Lookup(h, 7)
	if st[0] != 7 {
		t.Fatalf("COUNT super-aggregate gave %d, want 7", st[0])
	}
	if tb.Len() != 1 || tb.RowsIn() != 2 {
		t.Fatalf("Len=%d RowsIn=%d", tb.Len(), tb.RowsIn())
	}
}

func TestFillLimitReportsFull(t *testing.T) {
	tb := New(Config{CapacityRows: 1024, Blocks: 16, Words: 0, MaxFill: 0.25})
	rng := xrand.NewXoshiro256(3)
	inserted := 0
	for {
		key := rng.Next()
		if !tb.InsertState(hashfn.Murmur2(key), key, nil, nil) {
			break
		}
		inserted++
		if inserted > tb.MaxRows()+1 {
			t.Fatalf("table accepted %d rows beyond MaxRows %d", inserted, tb.MaxRows())
		}
	}
	if inserted != tb.MaxRows() {
		t.Fatalf("inserted %d distinct keys, expected exactly MaxRows %d", inserted, tb.MaxRows())
	}
	if !tb.Full() {
		t.Fatal("Full() should report true")
	}
	// Existing keys still merge fine when full.
	// Re-insert the first key we can find via Emit.
	var anyHash, anyKey uint64
	found := false
	tb.Emit(func(h, k uint64, _ []uint64) {
		if !found {
			anyHash, anyKey = h, k
			found = true
		}
	})
	if !found {
		t.Fatal("no rows emitted")
	}
	if !tb.InsertState(anyHash, anyKey, nil, nil) {
		t.Fatal("merge into full table must still succeed for existing keys")
	}
}

func TestBlockExhaustionReportsFull(t *testing.T) {
	// Force all keys into one block by crafting hashes with identical top
	// digit; with MaxFill=1 the block itself must overflow.
	tb := New(Config{CapacityRows: 256, Blocks: 16, MaxFill: 1})
	blockRows := tb.CapacityRows() / 16
	var rejected bool
	for i := 0; ; i++ {
		h := uint64(i) // top digit 0 for small i → all in block 0
		if !tb.InsertState(h, uint64(i), nil, nil) {
			rejected = true
			break
		}
		if i > blockRows {
			t.Fatalf("block accepted %d rows, capacity %d", i+1, blockRows)
		}
	}
	if !rejected {
		t.Fatal("expected rejection")
	}
	if tb.Len() != blockRows {
		t.Fatalf("Len = %d, want %d (one full block)", tb.Len(), blockRows)
	}
}

func TestSplitRunsPartitionsByDigit(t *testing.T) {
	tb := New(Config{CapacityRows: 4096, Blocks: 16, Words: 1, Level: 0})
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Sum, Col: 0}})
	rng := xrand.NewXoshiro256(7)
	type row struct{ h, k, v uint64 }
	var rows []row
	for i := 0; i < 500; i++ {
		k := rng.Next() % 400
		h := hashfn.Murmur2(k)
		v := rng.Next() % 1000
		rows = append(rows, row{h, k, v})
		if !tb.InsertRaw(h, k, func(int) int64 { return int64(v) }, lay) {
			t.Fatalf("unexpected full at %d", i)
		}
	}
	want := map[uint64]int64{} // key → sum
	for _, r := range rows {
		want[r.k] += int64(r.v)
	}

	splits := tb.SplitRuns()
	if len(splits) != 16 {
		t.Fatalf("got %d split slots", len(splits))
	}
	total := 0
	got := map[uint64]int64{}
	for digit, r := range splits {
		if r == nil {
			continue
		}
		if !r.Aggregated {
			t.Fatal("split runs must be aggregated")
		}
		if err := r.Validate(1); err != nil {
			t.Fatal(err)
		}
		for i := range r.Keys {
			// Every row must be in the block matching its level-0 digit
			// (here: top 4 bits of 16-block table → digit = top log2(16) bits?
			// No: block index is the radix-256 digit masked to 16 blocks).
			d := int(r.Hashes[i] >> 56 & 15)
			if d != digit {
				t.Fatalf("hash %#x in block %d, digit %d", r.Hashes[i], digit, d)
			}
			if _, dup := got[r.Keys[i]]; dup {
				t.Fatalf("key %d duplicated across split", r.Keys[i])
			}
			got[r.Keys[i]] = int64(r.States[0][i])
			total++
		}
	}
	if total != len(want) {
		t.Fatalf("split has %d groups, want %d", total, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("group %d sum = %d, want %d", k, got[k], v)
		}
	}
	// Table must be reset after split.
	if tb.Len() != 0 || tb.RowsIn() != 0 {
		t.Fatal("table not reset after SplitRuns")
	}
}

func TestSplitRunsRespectsLevel(t *testing.T) {
	// At level 1 the block must be derived from the SECOND radix digit.
	tb := New(Config{CapacityRows: 4096, Blocks: 256, Words: 0, Level: 1})
	h := uint64(0xAB_CD_000000000000) // digit0=0xAB, digit1=0xCD
	if !tb.InsertState(h, 1, nil, nil) {
		t.Fatal("insert failed")
	}
	splits := tb.SplitRuns()
	for d, r := range splits {
		if r == nil {
			continue
		}
		if d != 0xCD {
			t.Fatalf("row landed in block %#x, want 0xCD", d)
		}
	}
}

func TestResetEpoch(t *testing.T) {
	tb := newSmall(0, 0)
	for i := uint64(0); i < 100; i++ {
		tb.InsertState(hashfn.Murmur2(i), i, nil, nil)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after reset = %d", tb.Len())
	}
	if _, ok := tb.Lookup(hashfn.Murmur2(5), 5); ok {
		t.Fatal("stale row visible after reset")
	}
	// Reuse works.
	if !tb.InsertState(hashfn.Murmur2(5), 5, nil, nil) {
		t.Fatal("insert after reset failed")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestResetEpochWrap(t *testing.T) {
	tb := New(Config{CapacityRows: 64, Blocks: 16})
	tb.epoch = ^uint8(0) // force wrap on next Reset
	tb.InsertState(hashfn.Murmur2(1), 1, nil, nil)
	tb.Reset()
	if tb.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", tb.epoch)
	}
	if _, ok := tb.Lookup(hashfn.Murmur2(1), 1); ok {
		t.Fatal("stale row visible after epoch wrap")
	}
}

// TestAgainstMapReference: property test — inserting any sequence of
// (key, value) pairs and emitting must reproduce exactly the map-based
// reference aggregation, for every aggregate kind.
func TestAgainstMapReference(t *testing.T) {
	kinds := []agg.Kind{agg.Count, agg.Sum, agg.Min, agg.Max, agg.Avg}
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%800 + 1
		rng := xrand.NewXoshiro256(seed)
		for _, kind := range kinds {
			lay := agg.NewLayout([]agg.Spec{{Kind: kind, Col: 0}})
			tb := New(Config{CapacityRows: 8192, Blocks: 16, Words: lay.Words})
			ref := map[uint64][]uint64{}
			for i := 0; i < n; i++ {
				k := rng.Next() % 64
				v := int64(rng.Next()%4001) - 2000
				h := hashfn.Murmur2(k)
				if !tb.InsertRaw(h, k, func(int) int64 { return v }, lay) {
					return false
				}
				if st, ok := ref[k]; ok {
					kind.Fold(st, v)
				} else {
					st := make([]uint64, kind.Width())
					kind.Init(st, v)
					ref[k] = st
				}
			}
			if tb.Len() != len(ref) {
				return false
			}
			bad := false
			tb.Emit(func(h, k uint64, st []uint64) {
				want, ok := ref[k]
				if !ok {
					bad = true
					return
				}
				for i := range want {
					if st[i] != want[i] {
						bad = true
					}
				}
				delete(ref, k)
			})
			if bad || len(ref) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroHashKey(t *testing.T) {
	// hash 0 / key 0 must be storable (no sentinel confusion).
	tb := newSmall(0, 0)
	if !tb.InsertState(0, 0, nil, nil) {
		t.Fatal("insert of zero hash/key failed")
	}
	if _, ok := tb.Lookup(0, 0); !ok {
		t.Fatal("zero key not found")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestCapacityForCache(t *testing.T) {
	c := CapacityForCache(1<<20, 0) // 1 MiB, 20-byte slots → 52428 → pow2 down: 32768
	if c != 32768 {
		t.Fatalf("CapacityForCache = %d, want 32768", c)
	}
	if CapacityForCache(1, 4) != 1 {
		t.Fatal("tiny cache should clamp to 1")
	}
	// More words → fewer slots.
	if CapacityForCache(1<<20, 4) >= CapacityForCache(1<<20, 0) {
		t.Fatal("capacity should shrink with wider states")
	}
}

func TestSlotBytes(t *testing.T) {
	if SlotBytes(0) != 17 || SlotBytes(2) != 33 {
		t.Fatalf("SlotBytes wrong: %d %d", SlotBytes(0), SlotBytes(2))
	}
}

func BenchmarkInsertInCache(b *testing.B) {
	// The paper reports < 6 ns/element for in-cache insertion. This bench
	// measures our equivalent: distinct-count insert into an L3-sized table
	// at low fill.
	tb := New(Config{CapacityRows: 1 << 20, Blocks: 256})
	keys := make([]uint64, 1<<16)
	hs := make([]uint64, len(keys))
	rng := xrand.NewXoshiro256(1)
	for i := range keys {
		keys[i] = rng.Next() % (1 << 14)
		hs[i] = hashfn.Murmur2(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (len(keys) - 1)
		tb.InsertState(hs[j], keys[j], nil, nil)
	}
}

func TestOmitHashesInRuns(t *testing.T) {
	tb := New(Config{CapacityRows: 4096, Blocks: 16, OmitHashesInRuns: true})
	for i := uint64(0); i < 100; i++ {
		if !tb.InsertState(hashfn.Murmur2(i), i, nil, nil) {
			t.Fatal("insert failed")
		}
	}
	total := 0
	for _, r := range tb.SplitRuns() {
		if r == nil {
			continue
		}
		if r.Hashes != nil {
			t.Fatal("split run still has hashes despite OmitHashesInRuns")
		}
		total += r.Len()
	}
	if total != 100 {
		t.Fatalf("split %d rows", total)
	}
}

func TestInsertColsAgainstKindAPI(t *testing.T) {
	// InsertStateCols / InsertRawCols must agree with the layout-based
	// InsertState / InsertRaw for every aggregate kind.
	specs := []agg.Spec{{Kind: agg.Count}, {Kind: agg.Sum, Col: 0}, {Kind: agg.Min, Col: 1},
		{Kind: agg.Max, Col: 0}, {Kind: agg.Avg, Col: 1}}
	lay := agg.NewLayout(specs)
	ops := lay.WordOps()
	rng := xrand.NewXoshiro256(17)

	a := New(Config{CapacityRows: 4096, Blocks: 16, Words: lay.Words})
	b := New(Config{CapacityRows: 4096, Blocks: 16, Words: lay.Words})
	cols := [][]int64{make([]int64, 500), make([]int64, 500)}
	keys := make([]uint64, 500)
	for i := 0; i < 500; i++ {
		keys[i] = rng.Next() % 40
		cols[0][i] = int64(rng.Next()%999) - 500
		cols[1][i] = int64(rng.Next()%999) - 500
	}
	for i := 0; i < 500; i++ {
		i := i
		h := hashfn.Murmur2(keys[i])
		if !a.InsertRawCols(h, keys[i], cols, i, ops) {
			t.Fatal("a full")
		}
		if !b.InsertRaw(h, keys[i], func(c int) int64 { return cols[c][i] }, lay) {
			t.Fatal("b full")
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	b.Emit(func(h, k uint64, st []uint64) {
		got, ok := a.Lookup(h, k)
		if !ok {
			t.Fatalf("key %d missing in cols table", k)
		}
		for w := range st {
			if got[w] != st[w] {
				t.Fatalf("key %d word %d: %d vs %d", k, w, got[w], st[w])
			}
		}
	})
}
