package main

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestWriteKeysText(t *testing.T) {
	var buf bytes.Buffer
	if err := writeKeys(&buf, []uint64{1, 42, ^uint64(0)}, "text"); err != nil {
		t.Fatal(err)
	}
	want := "1\n42\n18446744073709551615\n"
	if buf.String() != want {
		t.Fatalf("got %q", buf.String())
	}
}

func TestWriteKeysBinary(t *testing.T) {
	var buf bytes.Buffer
	keys := []uint64{7, 1 << 50}
	if err := writeKeys(&buf, keys, "binary"); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 16 {
		t.Fatalf("wrote %d bytes", len(b))
	}
	for i, k := range keys {
		if binary.LittleEndian.Uint64(b[i*8:]) != k {
			t.Fatalf("key %d corrupted", i)
		}
	}
}

func TestWriteKeysUnknownFormat(t *testing.T) {
	err := writeKeys(&bytes.Buffer{}, []uint64{1}, "xml")
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteKeysEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeKeys(&buf, nil, "binary"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty input should write nothing")
	}
}
