package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/testutil"
	"cacheagg/internal/trace"
)

// ---------------------------------------------------------------------------
// Oracle: a plain map-based reference over the raw input.

type oracleGroup struct {
	key   uint64
	state [][]uint64 // per spec
}

func oracle(specs []agg.Spec, keys []uint64, cols [][]int64) []oracleGroup {
	idx := make(map[uint64]int)
	var groups []oracleGroup
	for r, k := range keys {
		g, ok := idx[k]
		if !ok {
			g = len(groups)
			idx[k] = g
			st := make([][]uint64, len(specs))
			for s := range specs {
				st[s] = make([]uint64, specs[s].Kind.Width())
			}
			groups = append(groups, oracleGroup{key: k, state: st})
		}
		for s, sp := range specs {
			v := int64(0)
			if sp.Kind != agg.Count {
				v = cols[sp.Col][r]
			}
			if ok {
				sp.Kind.Fold(groups[g].state[s], v)
			} else {
				sp.Kind.Init(groups[g].state[s], v)
			}
		}
	}
	sort.Slice(groups, func(a, b int) bool {
		ha, hb := hashfn.Murmur2(groups[a].key), hashfn.Murmur2(groups[b].key)
		if ha != hb {
			return ha < hb
		}
		return groups[a].key < groups[b].key
	})
	return groups
}

// checkResult compares a stream Result against the oracle over the raw
// rows bit-for-bit (integer columns exactly; float columns exactly too,
// since both sides compute the same float64 division).
func checkResult(t *testing.T, specs []agg.Spec, res *Result, keys []uint64, cols [][]int64) {
	t.Helper()
	want := oracle(specs, keys, cols)
	if len(res.Keys) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Keys), len(want))
	}
	for i, g := range want {
		if res.Keys[i] != g.key {
			t.Fatalf("key[%d] = %d, want %d", i, res.Keys[i], g.key)
		}
		if res.Hashes[i] != hashfn.Murmur2(g.key) {
			t.Fatalf("hash[%d] mismatch for key %d", i, g.key)
		}
		for s, sp := range specs {
			if got, wantV := res.Aggs[s][i], sp.Kind.FinalizeInt(g.state[s]); got != wantV {
				t.Fatalf("key %d spec %v: got %d, want %d", g.key, sp, got, wantV)
			}
			if got, wantF := res.AggsFloat[s][i], sp.Kind.FinalizeFloat(g.state[s]); got != wantF {
				t.Fatalf("key %d spec %v: got float %v, want %v", g.key, sp, got, wantF)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Input generators.

func genInput(rng *rand.Rand, pattern string, rows, keySpace int) ([]uint64, [][]int64) {
	keys := make([]uint64, rows)
	switch pattern {
	case "sorted":
		for i := range keys {
			keys[i] = uint64(i * keySpace / rows)
		}
	case "clustered":
		i := 0
		for i < rows {
			k := uint64(rng.Intn(keySpace))
			run := 1 + rng.Intn(16)
			for j := 0; j < run && i < rows; j++ {
				keys[i] = k
				i++
			}
		}
	default: // random
		for i := range keys {
			keys[i] = uint64(rng.Intn(keySpace))
		}
	}
	cols := make([][]int64, 2)
	for c := range cols {
		cols[c] = make([]int64, rows)
		for i := range cols[c] {
			cols[c][i] = int64(rng.Intn(2001) - 1000)
		}
	}
	return keys, cols
}

func pushAll(t *testing.T, a *Aggregator, keys []uint64, cols [][]int64, blockRows int) {
	t.Helper()
	ctx := context.Background()
	for off := 0; off < len(keys); off += blockRows {
		end := off + blockRows
		if end > len(keys) {
			end = len(keys)
		}
		b := Block{Keys: keys[off:end], Cols: [][]int64{cols[0][off:end], cols[1][off:end]}}
		if err := a.Push(ctx, b); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
}

var allSpecs = []agg.Spec{
	{Kind: agg.Count},
	{Kind: agg.Sum, Col: 0},
	{Kind: agg.Min, Col: 0},
	{Kind: agg.Max, Col: 1},
	{Kind: agg.Avg, Col: 1},
}

// ---------------------------------------------------------------------------
// Differential correctness.

func TestStreamMatchesOracle(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	for _, pattern := range []string{"sorted", "clustered", "random"} {
		for _, blockRows := range []int{1, 7, 256} {
			for _, epochRows := range []int64{64, 1 << 20} {
				name := fmt.Sprintf("%s/block%d/epoch%d", pattern, blockRows, epochRows)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(42))
					keys, cols := genInput(rng, pattern, 3000, 200)
					a, err := Begin(Options{
						Dir:          t.TempDir(),
						Specs:        allSpecs,
						EpochMaxRows: epochRows,
						NoSync:       true,
					})
					if err != nil {
						t.Fatal(err)
					}
					pushAll(t, a, keys, cols, blockRows)
					res, err := a.Finish(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					checkResult(t, allSpecs, res, keys, cols)
					if g := a.gov.Reserved(); g != 0 {
						t.Fatalf("ledger holds %d bytes after Finish", g)
					}
				})
			}
		}
	}
}

func TestRunDetection(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	a, err := Begin(Options{Dir: t.TempDir(), Specs: allSpecs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	keys, cols := genInput(rng, "sorted", 4096, 64)
	pushAll(t, a, keys, cols, 512)
	res, err := a.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, allSpecs, res, keys, cols)
	st := a.Stats()
	if st.RunsDetected == 0 || st.RunRows == 0 {
		t.Fatalf("sorted input detected no runs: %+v", st)
	}
}

func TestSnapshotWindow(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	specs := []agg.Spec{{Kind: agg.Sum, Col: 0}, {Kind: agg.Count}}
	a, err := Begin(Options{Dir: t.TempDir(), Specs: specs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Three sealed epochs of one block each, plus one live block.
	blocks := make([][]uint64, 4)
	vals := make([][]int64, 4)
	for e := 0; e < 4; e++ {
		blocks[e] = []uint64{uint64(e), 100}
		vals[e] = []int64{int64(10 * (e + 1)), 1}
		b := Block{Keys: blocks[e], Cols: [][]int64{vals[e], vals[e]}}
		if err := a.Push(ctx, b); err != nil {
			t.Fatal(err)
		}
		if e < 3 {
			if ep, err := a.Checkpoint(ctx); err != nil || ep != uint64(e+1) {
				t.Fatalf("Checkpoint = (%d, %v), want epoch %d", ep, err, e+1)
			}
		}
	}
	// Window 2 = epochs 2,3 + live block 4.
	res, err := a.Snapshot(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 2 {
		t.Fatalf("snapshot covers %d epochs, want 2", res.Epochs)
	}
	var wk []uint64
	var wc [][]int64
	for e := 1; e < 4; e++ {
		wk = append(wk, blocks[e]...)
		if wc == nil {
			wc = [][]int64{nil, nil}
		}
		wc[0] = append(wc[0], vals[e]...)
		wc[1] = append(wc[1], vals[e]...)
	}
	checkResult(t, specs, res, wk, wc)
	// Window 0 = everything.
	res, err = a.Snapshot(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ak []uint64
	ac := [][]int64{nil, nil}
	for e := 0; e < 4; e++ {
		ak = append(ak, blocks[e]...)
		ac[0] = append(ac[0], vals[e]...)
		ac[1] = append(ac[1], vals[e]...)
	}
	checkResult(t, specs, res, ak, ac)
	if _, err := a.Finish(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyStream(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	a, err := Begin(Options{Dir: dir, Specs: allSpecs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != 0 {
		t.Fatalf("empty stream produced %d groups", res.Groups())
	}
	// A finished stream refuses Resume with the typed sentinel.
	if _, err := Resume(Options{Dir: dir}); !errors.Is(err, ErrFinished) {
		t.Fatalf("Resume(finished) = %v, want ErrFinished", err)
	}
}

func TestBeginOnExistingStream(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	a, err := Begin(Options{Dir: dir, Specs: allSpecs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Seal something so a manifest exists.
	if err := a.Push(context.Background(), Block{Keys: []uint64{1}, Cols: [][]int64{{1}, {1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Begin(Options{Dir: dir, Specs: allSpecs, NoSync: true}); err == nil {
		t.Fatal("Begin on a directory with a manifest succeeded")
	}
}

func TestClosedErrors(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	a, err := Begin(Options{Dir: t.TempDir(), Specs: allSpecs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Push(ctx, Block{Keys: []uint64{1}, Cols: [][]int64{{1}, {1}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close = %v, want ErrClosed", err)
	}
	if _, err := a.Snapshot(ctx, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed", err)
	}
	if _, err := a.Finish(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Finish after Close = %v, want ErrClosed", err)
	}
}

// ---------------------------------------------------------------------------
// Durability and resume.

func TestResumeContinues(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	keys, cols := genInput(rng, "random", 2000, 100)
	ctx := context.Background()

	a, err := Begin(Options{Dir: dir, Specs: allSpecs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Push the first half and seal it; push a quarter more that stays
	// buffered and dies with Close.
	half := Block{Keys: keys[:1000], Cols: [][]int64{cols[0][:1000], cols[1][:1000]}}
	if err := a.Push(ctx, half); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	buffered := Block{Keys: keys[1000:1500], Cols: [][]int64{cols[0][1000:1500], cols[1][1000:1500]}}
	if err := a.Push(ctx, buffered); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume adopts the manifest's specs and reports the durable offset:
	// exactly the sealed half, not the buffered quarter.
	b, err := Resume(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !specsEqual(b.Specs(), allSpecs) {
		t.Fatalf("Resume specs = %v, want %v", b.Specs(), allSpecs)
	}
	p := b.Progress()
	if p.RowsDurable != 1000 || p.Epoch != 1 {
		t.Fatalf("Progress after resume = %+v, want 1000 rows durable in epoch 1", p)
	}
	st := b.Stats()
	if st.RecoveredEpochs != 1 || st.RecoveredRows != 1000 {
		t.Fatalf("recovery stats = %+v", st)
	}
	// Replay from the durable offset and finish: bit-identical to an
	// uninterrupted run over the full input.
	rest := Block{Keys: keys[1000:], Cols: [][]int64{cols[0][1000:], cols[1][1000:]}}
	if err := b.Push(ctx, rest); err != nil {
		t.Fatal(err)
	}
	res, err := b.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, allSpecs, res, keys, cols)
}

func TestResumeSpecMismatch(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	a, err := Begin(Options{Dir: dir, Specs: allSpecs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Push(context.Background(), Block{Keys: []uint64{1}, Cols: [][]int64{{1}, {1}}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = Resume(Options{Dir: dir, Specs: []agg.Spec{{Kind: agg.Sum, Col: 1}}, NoSync: true})
	if !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("Resume with different specs = %v, want ErrSpecMismatch", err)
	}
}

func TestResumeNoCheckpoint(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	if _, err := Resume(Options{Dir: t.TempDir(), NoSync: true}); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Resume(empty dir) = %v, want ErrNoCheckpoint", err)
	}
}

// sealOne seals a single-block epoch and closes the stream, leaving a
// valid one-epoch checkpoint directory behind.
func sealOne(t *testing.T, dir string) {
	t.Helper()
	a, err := Begin(Options{Dir: dir, Specs: allSpecs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{1, 2, 3, 2, 1}
	cols := [][]int64{{5, 6, 7, 8, 9}, {1, 2, 3, 4, 5}}
	if err := a.Push(context.Background(), Block{Keys: keys, Cols: cols}); err != nil {
		t.Fatal(err)
	}
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRollsBackTornEpoch(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	sealOne(t, dir)
	// A crash between epoch-file write and manifest rename leaves an
	// epoch file the manifest never committed. Also leave a stale
	// manifest temp from a crash mid-commit.
	torn := filepath.Join(dir, epochFileName(2))
	if err := os.WriteFile(torn, []byte("partial epoch write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("half a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Resume(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer a.Close()
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn epoch file survived resume: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale manifest temp survived resume")
	}
	if st := a.Stats(); st.TornEpochsRolledBack != 1 {
		t.Fatalf("TornEpochsRolledBack = %d, want 1", st.TornEpochsRolledBack)
	}
	if p := a.Progress(); p.Epoch != 1 || p.RowsDurable != 5 {
		t.Fatalf("rollback landed on %+v, want epoch 1 / 5 rows", p)
	}
}

func TestResumeRejectsCorruptEpoch(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	sealOne(t, dir)
	path := filepath.Join(dir, epochFileName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(Options{Dir: dir, NoSync: true}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("Resume(corrupt epoch) = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestResumeRejectsMissingEpoch(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	sealOne(t, dir)
	if err := os.Remove(filepath.Join(dir, epochFileName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(Options{Dir: dir, NoSync: true}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("Resume(missing epoch) = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestResumeRejectsCorruptManifest(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	sealOne(t, dir)
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range [][]byte{
		raw[:len(raw)-3],          // torn tail
		append([]byte{0}, raw...), // shifted
		flipByte(raw, 6),          // interior bit flip
	} {
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(Options{Dir: dir, NoSync: true}); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("Resume(corrupt manifest) = %v, want ErrCorruptCheckpoint", err)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}

// ---------------------------------------------------------------------------
// Fault injection at every checkpoint I/O site.

func TestSealFaultInjection(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	rng := rand.New(rand.NewSource(23))
	keys, cols := genInput(rng, "random", 600, 50)
	ctx := context.Background()

	// Persistent faults: each (op, n) plan must fail the checkpoint with
	// an error, keep the previous durable state intact, and leave a
	// directory Resume accepts.
	plans := []struct {
		op faultfs.Op
		n  int
	}{
		{faultfs.OpCreate, 1}, // epoch file create
		{faultfs.OpWrite, 1},  // epoch header
		{faultfs.OpWrite, 2},  // manifest temp write
		{faultfs.OpSync, 1},   // epoch fsync
		{faultfs.OpCreate, 2}, // manifest temp create
		{faultfs.OpSync, 2},   // manifest fsync
		{faultfs.OpRename, 1}, // manifest commit rename
		{faultfs.OpClose, 1},  // epoch close
	}
	for _, plan := range plans {
		t.Run(fmt.Sprintf("%v-%d", plan.op, plan.n), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS(), plan.op, plan.n)
			a, err := Begin(Options{
				Dir: dir, Specs: allSpecs, FS: inj,
				Retry:  faultfs.RetryPolicy{MaxAttempts: 1},
				NoSync: false,
			})
			if err != nil {
				t.Fatal(err)
			}
			b := Block{Keys: keys, Cols: [][]int64{cols[0], cols[1]}}
			if err := a.Push(ctx, b); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Checkpoint(ctx); err == nil {
				t.Fatalf("checkpoint under %v fault succeeded", plan.op)
			}
			if !inj.Triggered() {
				t.Fatalf("planned fault %v #%d never fired", plan.op, plan.n)
			}
			// The stream is sticky-failed; its ledger must still drain.
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if g := a.gov.Reserved(); g != 0 {
				t.Fatalf("ledger holds %d bytes after failed seal", g)
			}
			// Nothing was committed: no manifest, so no checkpoint — and
			// no orphan epoch files left behind either.
			if _, err := Resume(Options{Dir: dir, NoSync: true}); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Resume after failed first seal = %v, want ErrNoCheckpoint", err)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				t.Fatalf("failed seal leaked file %s", e.Name())
			}
		})
	}

	// Transient faults: the retry layer absorbs a streak and the seal
	// succeeds, including on the new Sync and Rename paths.
	for _, op := range []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename} {
		t.Run(fmt.Sprintf("transient-%v", op), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewFlaky(faultfs.OS(), op, 1, 2)
			a, err := Begin(Options{
				Dir: dir, Specs: allSpecs, FS: inj,
				Retry: faultfs.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			b := Block{Keys: keys, Cols: [][]int64{cols[0], cols[1]}}
			if err := a.Push(ctx, b); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Checkpoint(ctx); err != nil {
				t.Fatalf("transient %v fault not absorbed: %v", op, err)
			}
			res, err := a.Finish(ctx)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, allSpecs, res, keys, cols)
		})
	}
}

// ---------------------------------------------------------------------------
// Backpressure.

// gateFS delegates to the real filesystem but blocks Create until the
// gate opens, pinning the consumer inside a seal.
type gateFS struct {
	faultfs.FS
	gate <-chan struct{}
	once sync.Once
}

func (g *gateFS) Create(name string) (faultfs.File, error) {
	<-g.gate
	return g.FS.Create(name)
}

func TestTryPushQueueBackpressure(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	gate := make(chan struct{})
	fs := &gateFS{FS: faultfs.OS(), gate: gate}
	a, err := Begin(Options{
		Dir: t.TempDir(), Specs: allSpecs, FS: fs,
		QueueDepth:   2,
		EpochMaxRows: 1, // every block seals; the gate pins the first seal
		RetryHint:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	one := func(k uint64) Block {
		return Block{Keys: []uint64{k}, Cols: [][]int64{{1}, {1}}}
	}
	// First block: folded, consumer blocks inside seal behind the gate.
	if err := a.Push(ctx, one(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return a.Stats().BlocksIngested == 1 })
	// Fill the queue, then one more must refuse with the typed error.
	for k := uint64(2); k <= 3; k++ {
		if err := a.Push(ctx, one(k)); err != nil {
			t.Fatal(err)
		}
	}
	err = a.TryPush(one(4))
	var bp *BackpressureError
	if !errors.As(err, &bp) || !errors.Is(err, ErrBackpressure) {
		t.Fatalf("TryPush on full queue = %v, want *BackpressureError", err)
	}
	if bp.Reason != "queue" || bp.RetryAfter != 5*time.Millisecond {
		t.Fatalf("backpressure = %+v, want queue / 5ms", bp)
	}
	// A blocking Push honors its context while the queue stays full.
	cctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := a.Push(cctx, one(5)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Push on full queue = %v, want DeadlineExceeded", err)
	}
	close(gate)
	res, err := a.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, allSpecs, res, []uint64{1, 2, 3}, [][]int64{{1, 1, 1}, {1, 1, 1}})
	if a.Stats().Backpressure < 2 {
		t.Fatalf("backpressure events = %d, want >= 2", a.Stats().Backpressure)
	}
}

func TestTryPushBudgetBackpressure(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	gate := make(chan struct{})
	fs := &gateFS{FS: faultfs.OS(), gate: gate}
	blk := Block{Keys: []uint64{1, 2, 3, 4}, Cols: [][]int64{{1, 2, 3, 4}, {1, 2, 3, 4}}}
	bytes := blockBytes(blk)
	a, err := Begin(Options{
		Dir: t.TempDir(), Specs: allSpecs, FS: fs,
		// Room for the block and its four accumulator groups, but not
		// for a second queued block while the groups are held.
		MemoryBudgetBytes: 4*bytesPerGroup(6) + bytes/2,
		EpochMaxRows:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Push(ctx, blk); err != nil {
		t.Fatal(err)
	}
	// Wait until the block is folded: its queue reservation is released
	// but the accumulator now holds group memory and the consumer is
	// pinned sealing behind the gate.
	waitFor(t, func() bool { return a.Stats().BlocksIngested == 1 })
	err = a.TryPush(blk)
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("TryPush over budget = %v, want *BackpressureError", err)
	}
	if bp.Reason != "budget" {
		t.Fatalf("reason = %q, want budget", bp.Reason)
	}
	// A block bigger than the whole budget is a budget error, not
	// backpressure: waiting cannot help.
	huge := make([]uint64, 4096)
	hugeCols := [][]int64{make([]int64, 4096), make([]int64, 4096)}
	if err := a.Push(ctx, Block{Keys: huge, Cols: hugeCols}); !errors.Is(err, memgov.ErrBudget) {
		t.Fatalf("oversized Push = %v, want ErrBudget", err)
	}
	close(gate)
	// The pressure-seal releases the accumulator; the same push now
	// succeeds once the budget frees up.
	if err := a.Push(ctx, blk); err != nil {
		t.Fatalf("Push after seal released budget: %v", err)
	}
	if _, err := a.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if g := a.gov.Reserved(); g != 0 {
		t.Fatalf("ledger holds %d bytes after Finish", g)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Pressure seals: a starved budget degrades to smaller epochs.

func TestPressureSeal(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	rng := rand.New(rand.NewSource(5))
	keys, cols := genInput(rng, "random", 5000, 2000)
	a, err := Begin(Options{
		Dir: t.TempDir(), Specs: allSpecs,
		MemoryBudgetBytes: 64 << 10,
		EpochMaxRows:      1 << 30, // only pressure can seal
		NoSync:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, a, keys, cols, 100)
	res, err := a.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, allSpecs, res, keys, cols)
	st := a.Stats()
	if st.EarlySeals == 0 {
		t.Fatalf("starved budget never pressure-sealed: %+v", st)
	}
	if g := a.gov.Reserved(); g != 0 {
		t.Fatalf("ledger holds %d bytes after Finish", g)
	}
}

// ---------------------------------------------------------------------------
// Tracing.

func TestTraceEvents(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	rec := trace.NewRecorder(1 << 12)
	dir := t.TempDir()
	a, err := Begin(Options{Dir: dir, Specs: allSpecs, Tracer: rec, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Push(ctx, Block{Keys: []uint64{1, 2}, Cols: [][]int64{{1, 2}, {3, 4}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Counts[trace.KindEpochSeal] != 1 {
		t.Fatalf("epoch-seal events = %d, want 1", snap.Counts[trace.KindEpochSeal])
	}
	// One checkpoint-write for the epoch file, one for the manifest.
	if snap.Counts[trace.KindCheckpointWrite] != 2 {
		t.Fatalf("checkpoint-write events = %d, want 2", snap.Counts[trace.KindCheckpointWrite])
	}

	rec2 := trace.NewRecorder(1 << 12)
	b, err := Resume(Options{Dir: dir, Tracer: rec2, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := rec2.Snapshot().Counts[trace.KindRecover]; got != 1 {
		t.Fatalf("recover events = %d, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// Randomized crash drill: inject a fault at a random checkpoint I/O site,
// resume, replay from the durable offset, and demand bit-identical
// results against the oracle — across many seeds.

func TestCrashRecoveryDrill(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	ops := []faultfs.Op{
		faultfs.OpCreate, faultfs.OpWrite, faultfs.OpSync,
		faultfs.OpRename, faultfs.OpClose,
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			keys, cols := genInput(rng, []string{"sorted", "clustered", "random"}[seed%3], 2000, 150)
			dir := t.TempDir()
			blockRows := 50 + rng.Intn(200)

			// Split the input into blocks up front so replay can restart
			// cleanly at any block boundary.
			var blocks []Block
			for off := 0; off < len(keys); off += blockRows {
				end := off + blockRows
				if end > len(keys) {
					end = len(keys)
				}
				blocks = append(blocks, Block{
					Keys: keys[off:end],
					Cols: [][]int64{cols[0][off:end], cols[1][off:end]},
				})
			}

			op := ops[rng.Intn(len(ops))]
			n := 1 + rng.Intn(20)
			inj := faultfs.NewInjector(faultfs.OS(), op, n)
			a, err := Begin(Options{
				Dir: dir, Specs: allSpecs, FS: inj,
				EpochMaxRows: int64(1 + rng.Intn(400)),
				Retry:        faultfs.RetryPolicy{MaxAttempts: 1},
				NoSync:       true,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			crashed := false
			for _, b := range blocks {
				if err := a.Push(ctx, b); err != nil {
					crashed = true
					break
				}
			}
			if _, err := a.Checkpoint(ctx); err != nil {
				crashed = true
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if g := a.gov.Reserved(); g != 0 {
				t.Fatalf("ledger holds %d bytes after crash", g)
			}

			var res *Result
			if crashed || inj.Triggered() {
				b2, err := Resume(Options{Dir: dir, NoSync: true})
				if errors.Is(err, ErrNoCheckpoint) {
					// Crashed before the first commit: replay everything
					// on a fresh stream.
					os.RemoveAll(dir)
					b2, err = Begin(Options{Dir: dir, Specs: allSpecs, NoSync: true})
					if err != nil {
						t.Fatal(err)
					}
				} else if err != nil {
					t.Fatalf("Resume after injected %v crash: %v", op, err)
				}
				// Replay every raw row past the durable offset. Epochs
				// seal only at block boundaries, so RowsDurable is one.
				durable := b2.Progress().RowsDurable
				if durable%1 != 0 { // always true; documents the invariant
					t.Fatalf("durable offset %d not a block boundary", durable)
				}
				var off uint64
				for _, b := range blocks {
					if off >= durable {
						if err := b2.Push(ctx, b); err != nil {
							t.Fatalf("replay push: %v", err)
						}
					} else if off+uint64(b.Rows()) > durable {
						t.Fatalf("durable offset %d splits a block at %d", durable, off)
					}
					off += uint64(b.Rows())
				}
				res, err = b2.Finish(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if g := b2.gov.Reserved(); g != 0 {
					t.Fatalf("ledger holds %d bytes after recovery run", g)
				}
			} else {
				// The fault never fired (n beyond the op count): the run
				// completed; reopen and finish normally.
				b2, err := Resume(Options{Dir: dir, NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				res, err = b2.Finish(ctx)
				if err != nil {
					t.Fatal(err)
				}
			}
			checkResult(t, allSpecs, res, keys, cols)
		})
	}
}

// ---------------------------------------------------------------------------
// Manifest codec.

func TestManifestRoundTrip(t *testing.T) {
	m := manifest{
		Finished: false,
		Specs:    allSpecs,
		Epochs: []epochEntry{
			{Seq: 1, Records: 10, Bytes: 512},
			{Seq: 2, Records: 20, Bytes: 1024},
			{Seq: 7, Records: 1, Bytes: 48},
		},
		RowsDurable:   31,
		BlocksDurable: 4,
	}
	got, err := decodeManifest(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !specsEqual(got.Specs, m.Specs) || len(got.Epochs) != 3 ||
		got.RowsDurable != 31 || got.BlocksDurable != 4 || got.Finished {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	for i := range m.Epochs {
		if got.Epochs[i] != m.Epochs[i] {
			t.Fatalf("epoch %d = %+v, want %+v", i, got.Epochs[i], m.Epochs[i])
		}
	}

	m.Finished = true
	got, err = decodeManifest(m.encode())
	if err != nil || !got.Finished {
		t.Fatalf("finished flag lost: %+v, %v", got, err)
	}
}

func TestManifestDecodeRejects(t *testing.T) {
	valid := manifest{
		Specs:       []agg.Spec{{Kind: agg.Sum, Col: 0}},
		Epochs:      []epochEntry{{Seq: 1, Records: 5, Bytes: 100}},
		RowsDurable: 5,
	}.encode()
	cases := map[string][]byte{
		"empty":          {},
		"short":          valid[:10],
		"torn-tail":      valid[:len(valid)-2],
		"flipped-magic":  flipByte(valid, 0),
		"flipped-count":  flipByte(valid, 11),
		"flipped-crc":    flipByte(valid, len(valid)-6),
		"flipped-middle": flipByte(valid, len(valid)/2),
	}
	for name, b := range cases {
		if _, err := decodeManifest(b); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("%s: decode = %v, want ErrCorruptCheckpoint", name, err)
		}
	}
}

// FuzzCheckpointManifest is the torn-write trust boundary fuzz: arbitrary
// bytes must produce either a valid manifest or a typed error — never a
// panic, never an unchecked acceptance.
func FuzzCheckpointManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add(manifest{Specs: []agg.Spec{{Kind: agg.Count}}}.encode())
	full := manifest{
		Specs:         allSpecs,
		Epochs:        []epochEntry{{Seq: 1, Records: 3, Bytes: 64}, {Seq: 2, Records: 9, Bytes: 256}},
		RowsDurable:   12,
		BlocksDurable: 2,
		Finished:      true,
	}.encode()
	f.Add(full)
	f.Add(full[:len(full)-5])
	f.Add(flipByte(full, 8))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeManifest(b)
		if err != nil {
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Anything accepted must survive a round trip bit-identically:
		// decode(encode(decode(b))) is the fixed point.
		re := m.encode()
		m2, err := decodeManifest(re)
		if err != nil {
			t.Fatalf("re-decode of accepted manifest failed: %v", err)
		}
		if len(m2.Epochs) != len(m.Epochs) || m2.RowsDurable != m.RowsDurable ||
			m2.BlocksDurable != m.BlocksDurable || m2.Finished != m.Finished ||
			!specsEqual(m2.Specs, m.Specs) {
			t.Fatalf("round trip diverged: %+v vs %+v", m, m2)
		}
	})
}
