package sketch

// CMS is a Count-Min sketch over 64-bit hashes: depth rows of 2^logW uint32
// counters. Row indices are derived from the one input hash by independent
// odd-constant multiplications (Fibonacci-style remixes of the already
// avalanched Murmur2 hash), so adding a row costs depth multiplies and
// depth counter touches — no re-hashing.
//
// Updates are conservative ("count-min with conservative update"): only the
// counters currently at the row minimum are incremented, which tightens the
// overestimate for cold keys sharing a counter with a hot one at no extra
// memory. Estimates still never under-count.
type CMS struct {
	logW  uint8
	depth uint8
	rows  []uint32 // depth contiguous segments of 2^logW counters each
}

// cmsSeeds are the per-row remix constants: arbitrary odd 64-bit constants
// with good bit dispersion (golden-ratio multiples and friends). Capacity
// bounds the maximum depth.
var cmsSeeds = [8]uint64{
	0x9e3779b97f4a7c15,
	0xc2b2ae3d27d4eb4f,
	0x165667b19e3779f9,
	0x27d4eb2f165667c5,
	0x85ebca6bc2b2ae35,
	0xff51afd7ed558ccd,
	0xc4ceb9fe1a85ec53,
	0x2545f4914f6cdd1d,
}

// NewCMS returns a sketch of depth rows with 2^logW counters each.
// logW must be in [1, 24] and depth in [1, 8].
func NewCMS(logW, depth int) *CMS {
	if logW < 1 || logW > 24 {
		panic("sketch: CMS logW out of range [1,24]")
	}
	if depth < 1 || depth > len(cmsSeeds) {
		panic("sketch: CMS depth out of range [1,8]")
	}
	return &CMS{
		logW:  uint8(logW),
		depth: uint8(depth),
		rows:  make([]uint32, depth<<logW),
	}
}

// AddHash counts one occurrence of the key behind hash h and returns the
// key's updated frequency estimate (the row minimum). Zero allocations.
func (c *CMS) AddHash(h uint64) uint64 {
	if c.depth == 4 {
		// Unrolled fast path for the default shape: all four indices are
		// computed up front so the loads overlap, and min/update run
		// branch-light on registers.
		shift := 64 - c.logW
		w := uint64(1) << c.logW
		rows := c.rows
		i0 := (h * cmsSeeds[0]) >> shift
		i1 := w + (h*cmsSeeds[1])>>shift
		i2 := 2*w + (h*cmsSeeds[2])>>shift
		i3 := 3*w + (h*cmsSeeds[3])>>shift
		v0, v1, v2, v3 := rows[i0], rows[i1], rows[i2], rows[i3]
		m := v0
		if v1 < m {
			m = v1
		}
		if v2 < m {
			m = v2
		}
		if v3 < m {
			m = v3
		}
		if v0 == m {
			rows[i0] = m + 1
		}
		if v1 == m {
			rows[i1] = m + 1
		}
		if v2 == m {
			rows[i2] = m + 1
		}
		if v3 == m {
			rows[i3] = m + 1
		}
		return uint64(m) + 1
	}
	shift := 64 - c.logW
	width := uint64(1) << c.logW
	// First pass: row minimum (the estimate before this occurrence).
	min := ^uint32(0)
	base := uint64(0)
	for d := uint8(0); d < c.depth; d++ {
		idx := base + (h*cmsSeeds[d])>>shift
		if v := c.rows[idx]; v < min {
			min = v
		}
		base += width
	}
	// Conservative update: bump only the counters sitting at the minimum.
	base = 0
	for d := uint8(0); d < c.depth; d++ {
		idx := base + (h*cmsSeeds[d])>>shift
		if c.rows[idx] == min {
			c.rows[idx] = min + 1
		}
		base += width
	}
	return uint64(min) + 1
}

// EstimateHash returns the frequency estimate (row minimum) for the key
// behind hash h without counting an occurrence.
func (c *CMS) EstimateHash(h uint64) uint64 {
	shift := 64 - c.logW
	width := uint64(1) << c.logW
	min := ^uint32(0)
	base := uint64(0)
	for d := uint8(0); d < c.depth; d++ {
		idx := base + (h*cmsSeeds[d])>>shift
		if v := c.rows[idx]; v < min {
			min = v
		}
		base += width
	}
	return uint64(min)
}

// Merge adds another sketch with identical shape counter-wise into c,
// saturating at the uint32 ceiling. It panics on a shape mismatch.
// Note that merged conservative-update sketches only guarantee the
// never-undercount property, not the tighter conservative bound.
func (c *CMS) Merge(o *CMS) {
	if c.logW != o.logW || c.depth != o.depth {
		panic("sketch: CMS shape mismatch in Merge")
	}
	for i, v := range o.rows {
		s := uint64(c.rows[i]) + uint64(v)
		if s > uint64(^uint32(0)) {
			s = uint64(^uint32(0))
		}
		c.rows[i] = uint32(s)
	}
}

// Reset clears all counters for reuse without reallocating.
func (c *CMS) Reset() {
	clear(c.rows)
}
