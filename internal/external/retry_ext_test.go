package external

// Transient-fault behavior of the full spill pipeline: flaky I/O is
// retried and absorbed, exhausted retries surface, and the retry count is
// reported in Stats.

import (
	"errors"
	"testing"
	"time"

	"cacheagg/internal/core"
	"cacheagg/internal/faultfs"
)

// noSleepPolicy retries without real delays to keep tests fast.
func noSleepPolicy() faultfs.RetryPolicy {
	return faultfs.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
}

func TestTransientSpillFaultRetriedMidRun(t *testing.T) {
	// A transient streak shorter than the retry budget, injected in the
	// middle of the spill writes: the run must succeed as if nothing
	// happened, and Stats must record the absorbed retries.
	flaky := faultfs.NewFlaky(faultfs.OS(), faultfs.OpWrite, 50, 2)
	dir := t.TempDir()
	cfg := testCfg(100)
	cfg.TempDir = dir
	cfg.FS = flaky
	cfg.Retry = noSleepPolicy()
	in := &core.Input{Keys: sameDigitKeys(300)}
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if !flaky.Triggered() {
		t.Fatal("flaky fault never fired")
	}
	if res.Groups() != 300 {
		t.Fatalf("groups = %d", res.Groups())
	}
	if res.Stats.SpillRetries == 0 {
		t.Fatal("retries happened but Stats.SpillRetries = 0")
	}
}

func TestTransientStreakBeyondRetryBudgetFails(t *testing.T) {
	// A streak longer than MaxAttempts exhausts the retry budget; the
	// transient error must surface (still classified transient) and the
	// temp dir must come back clean.
	flaky := faultfs.NewFlaky(faultfs.OS(), faultfs.OpWrite, 10, 16)
	dir := t.TempDir()
	cfg := testCfg(100)
	cfg.TempDir = dir
	cfg.FS = flaky
	cfg.Retry = noSleepPolicy()
	_, err := Aggregate(cfg, &core.Input{Keys: sameDigitKeys(300)})
	if err == nil {
		t.Fatal("retry budget exhausted but no error surfaced")
	}
	var ie *faultfs.InjectedError
	if !errors.As(err, &ie) || !ie.Transient {
		t.Fatalf("surfaced error lost the injected transient fault: %v", err)
	}
}

func TestPermanentFaultNotRetried(t *testing.T) {
	// A permanent (non-transient) injected fault must fail on the first
	// attempt: exactly one fault fires, no retry burns attempts on it.
	inj := faultfs.NewInjector(faultfs.OS(), faultfs.OpWrite, 5)
	cfg := testCfg(100)
	cfg.TempDir = t.TempDir()
	cfg.FS = inj
	cfg.Retry = noSleepPolicy()
	_, err := Aggregate(cfg, &core.Input{Keys: sameDigitKeys(300)})
	if err == nil {
		t.Fatal("permanent fault did not surface")
	}
	var ie *faultfs.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("error does not wrap the injected fault: %v", err)
	}
	if ie.Transient {
		t.Fatal("Injector faults must be permanent by default")
	}
}
