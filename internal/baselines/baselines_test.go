package baselines

import (
	"testing"
	"testing/quick"

	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

func refCounts(keys []uint64) map[uint64]int64 {
	m := map[uint64]int64{}
	for _, k := range keys {
		m[k]++
	}
	return m
}

func checkResult(t *testing.T, name string, res *Result, keys []uint64) {
	t.Helper()
	want := refCounts(keys)
	if res.Groups() != len(want) {
		t.Fatalf("%s: %d groups, want %d", name, res.Groups(), len(want))
	}
	seen := map[uint64]bool{}
	for i, k := range res.Keys {
		if seen[k] {
			t.Fatalf("%s: duplicate key %d", name, k)
		}
		seen[k] = true
		if res.Counts[i] != want[k] {
			t.Fatalf("%s: key %d count %d, want %d", name, k, res.Counts[i], want[k])
		}
	}
}

func testCfg(k int) Config {
	return Config{Workers: 3, CacheBytes: 64 << 10, EstimatedGroups: k}
}

func TestAllBaselinesCorrect(t *testing.T) {
	const n = 50000
	for _, dist := range []datagen.Dist{datagen.Uniform, datagen.Sorted, datagen.HeavyHitter, datagen.MovingCluster, datagen.Zipf} {
		for _, k := range []uint64{1, 100, 5000, 30000} {
			keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: k, Seed: 31})
			actualK := datagen.CountDistinct(keys)
			for _, alg := range All() {
				res := alg.Run(keys, testCfg(actualK))
				checkResult(t, alg.Name(), res, keys)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for _, alg := range All() {
		res := alg.Run(nil, testCfg(10))
		if res.Groups() != 0 {
			t.Fatalf("%s: empty input gave %d groups", alg.Name(), res.Groups())
		}
	}
}

func TestSingleKey(t *testing.T) {
	keys := make([]uint64, 10000) // all key 0 — exercises the key+1 sentinel
	for _, alg := range All() {
		res := alg.Run(keys, testCfg(1))
		if res.Groups() != 1 || res.Keys[0] != 0 || res.Counts[0] != 10000 {
			t.Fatalf("%s: got %+v", alg.Name(), res)
		}
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.SelfSimilar, N: 30000, K: 8000, Seed: 5})
	k := datagen.CountDistinct(keys)
	for _, alg := range All() {
		for _, w := range []int{1, 2, 7} {
			cfg := testCfg(k)
			cfg.Workers = w
			res := alg.Run(keys, cfg)
			checkResult(t, alg.Name(), res, keys)
		}
	}
}

// TestQuickAllBaselines: property test over random small inputs.
func TestQuickAllBaselines(t *testing.T) {
	algs := All()
	f := func(seed uint64, nRaw uint16, domRaw uint8) bool {
		n := int(nRaw)%3000 + 1
		dom := uint64(domRaw)%500 + 1
		rng := xrand.NewXoshiro256(seed)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Next() % dom
		}
		want := refCounts(keys)
		alg := algs[int(seed%uint64(len(algs)))]
		cfg := Config{Workers: 1 + int(seed>>8%4), CacheBytes: 16 << 10, EstimatedGroups: len(want)}
		res := alg.Run(keys, cfg)
		if res.Groups() != len(want) {
			return false
		}
		for i, k := range res.Keys {
			if res.Counts[i] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnderestimatedCardinalityStillCorrect(t *testing.T) {
	// The 2-pass baselines use growable tables internally, so a bad
	// optimizer estimate degrades performance, not correctness (ATOMIC
	// and HYBRID over-allocate to the cache size, which covers this K).
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 40000, K: 20000, Seed: 9})
	for _, alg := range All() {
		cfg := testCfg(16) // wildly wrong estimate
		cfg.CacheBytes = 4 << 20
		res := alg.Run(keys, cfg)
		checkResult(t, alg.Name(), res, keys)
	}
}

func TestLookup(t *testing.T) {
	for _, alg := range All() {
		got, err := Lookup(alg.Name())
		if err != nil || got.Name() != alg.Name() {
			t.Fatalf("Lookup(%q) failed: %v", alg.Name(), err)
		}
	}
	if _, err := Lookup("NOPE"); err == nil {
		t.Fatal("expected error")
	}
}

func TestOpenTableGrow(t *testing.T) {
	tb := newOpenTable(16)
	for k := uint64(0); k < 10000; k++ {
		tb.add(k, 2)
	}
	if tb.rows != 10000 {
		t.Fatalf("rows = %d", tb.rows)
	}
	total := int64(0)
	tb.each(func(_ uint64, c int64) { total += c })
	if total != 20000 {
		t.Fatalf("total = %d", total)
	}
}

func TestOpenTableTryAddRespectsLimit(t *testing.T) {
	tb := newOpenTable(16) // limit 8
	accepted := 0
	for k := uint64(0); k < 100; k++ {
		if tb.tryAdd(k, 1) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Fatalf("accepted %d new keys, want 8 (the fill limit)", accepted)
	}
	// Existing keys still merge when full.
	if !tb.tryAdd(0, 1) {
		t.Fatal("merge into full table must succeed")
	}
}
