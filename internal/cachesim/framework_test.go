package cachesim

import "testing"

func fwMachine() *Machine { return NewMachine(1<<12, 16) }

func TestFrameworkCorrectAllK(t *testing.T) {
	const n = 1 << 14
	for _, k := range []uint64{1, 37, 1 << 8, 1 << 11, 1 << 13} {
		for _, cfg := range []FrameworkConfig{
			{},                        // adaptive
			{ForceHashing: true},      // HashingOnly
			{ForcePartitioning: true}, // PartitionOnly
		} {
			m := fwMachine()
			in := UniformKeys(m, n, k, 11)
			st := FrameworkAgg(m, in, cfg)
			if !VerifyDistinct(in, st.Out, st.Groups) {
				t.Fatalf("framework cfg=%+v K=%d produced wrong result", cfg, k)
			}
		}
	}
}

// TestFrameworkMatchesOptimizedStaircase: the framework's transfer count
// must track the optimized textbook curve (HashAggOpt) across the K sweep —
// the operator achieves the Figure 1 staircase. The probe-free
// PartitionOnly variant must stay within 1.5×; ADAPTIVE pays its periodic
// hashing probes, which at this reduced scale are a relatively larger
// fraction of the work than on the paper's machine (each probe fills and
// splits a 512-row table every c·512 rows), so its bound is 2×.
func TestFrameworkMatchesOptimizedStaircase(t *testing.T) {
	const n = 1 << 15
	for _, k := range []uint64{1 << 6, 1 << 10, 1 << 12, 1 << 14} {
		mo := NewMachine(1<<12, 16)
		opt := HashAggOpt(mo, UniformKeys(mo, n, k, 3)).Transfers

		ma := NewMachine(1<<12, 16)
		adaptive := FrameworkAgg(ma, UniformKeys(ma, n, k, 3), FrameworkConfig{}).Transfers
		if float64(adaptive) > float64(opt)*2.0 {
			t.Fatalf("K=%d: adaptive framework %d transfers vs optimized %d — staircase missed", k, adaptive, opt)
		}

		// PartitionOnly matches the optimized bound only where partitioning
		// is actually needed (K beyond the in-cache leaf); for small K it
		// wastes a pass by design — Figure 4(b)'s lesson.
		if k >= 1<<10 {
			mp := NewMachine(1<<12, 16)
			po := FrameworkAgg(mp, UniformKeys(mp, n, k, 3), FrameworkConfig{ForcePartitioning: true}).Transfers
			if float64(po) > float64(opt)*1.5 {
				t.Fatalf("K=%d: partition-only framework %d transfers vs optimized %d", k, po, opt)
			}
		}
	}
}

// TestFrameworkBeatsNaiveHashLargeK: where naive hashing explodes, the
// framework must stay on the staircase.
func TestFrameworkBeatsNaiveHashLargeK(t *testing.T) {
	const n = 1 << 15
	const k = 1 << 13
	mf := NewMachine(1<<12, 16)
	fw := FrameworkAgg(mf, UniformKeys(mf, n, k, 5), FrameworkConfig{}).Transfers
	mn := NewMachine(1<<12, 16)
	naive := HashAggNaive(mn, UniformKeys(mn, n, k, 5)).Transfers
	if fw*2 > naive {
		t.Fatalf("framework %d should be far below naive %d", fw, naive)
	}
}

// TestFrameworkEarlyAggregationOnLocality: on sorted input (maximal
// locality), adaptive hashing must move fewer lines than forced
// partitioning — the early-aggregation advantage the real operator
// exploits (Figure 9's sorted curve).
func TestFrameworkEarlyAggregationOnLocality(t *testing.T) {
	const n = 1 << 15
	const k = 1 << 13
	sortedKeys := func(m *Machine) Array {
		a := m.NewArray(n)
		for i := 0; i < n; i++ {
			a.Poke(i, uint64(i)*k/n)
		}
		return a
	}
	ma := NewMachine(1<<12, 16)
	adaptive := FrameworkAgg(ma, sortedKeys(ma), FrameworkConfig{}).Transfers
	mp := NewMachine(1<<12, 16)
	partOnly := FrameworkAgg(mp, sortedKeys(mp), FrameworkConfig{ForcePartitioning: true}).Transfers
	if adaptive >= partOnly {
		t.Fatalf("sorted input: adaptive %d should beat partition-only %d via early aggregation",
			adaptive, partOnly)
	}
}

func TestFrameworkEmpty(t *testing.T) {
	m := fwMachine()
	in := m.NewArray(0)
	st := FrameworkAgg(m, in, FrameworkConfig{})
	if st.Groups != 0 {
		t.Fatalf("groups = %d", st.Groups)
	}
}
