package core

import (
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/hashtable"
	"cacheagg/internal/sketch"
)

// The sketch-guided planning pass (ROADMAP item "sketch-guided planning and
// skew armor"). ADAPTIVE's defining property is that it needs no optimizer
// estimate — it learns K and skew by observing its own hash tables. The
// price is that it starts blind: on low-locality inputs the first
// cache-sized table fills at α ≈ 1 and is split for nothing, and on skewed
// inputs one hot key inflates every table and one hot partition serializes
// the recursion. A one-pass sketch phase over a bounded input prefix keeps
// the no-estimate property (the estimate comes from the data itself,
// moments before execution) while making better first moves:
//
//   - the HyperLogLog estimate of K picks the initial routine (hash vs
//     partition) and pre-sizes the worker hash tables, killing grow/split
//     churn when K is small;
//   - the Count-Min sketch identifies heavy-hitter keys, which get
//     per-worker scalar accumulators that bypass the table entirely and
//     re-enter the merge as one-row pre-aggregated runs;
//   - the per-digit histogram and the observed bucket sizes drive a
//     largest-first task schedule so one hot partition cannot serialize
//     the recursion phase.
//
// Every decision is advisory: a wrong estimate can cost performance but
// never correctness. Hot-key routing compares exact keys (the CMS only
// nominates candidates), pre-sized tables still split when they fill, and
// the initial-routine choice is just ADAPTIVE's first decision made with
// open eyes. The differential tests pin results bit-identical to the
// unplanned path under deliberately corrupt plans.

const (
	// PlanSampleRows is the sample-size cap of the planning pass: enough
	// rows to saturate the sketches' accuracy, small enough (~1 ms of
	// sketch feeding) to be negligible against any input worth planning.
	PlanSampleRows = 32768
	// planMinRows is the input size below which planning is skipped:
	// small inputs finish in one fused pass no matter what the plan says.
	planMinRows = 4 * scratchRows
	// planMaxHotKeys caps the bypass set. Per worker each hot key costs a
	// scalar accumulator and each cold row one predicted-not-taken probe;
	// past a handful of keys the residual mass per key is too small to
	// matter.
	planMaxHotKeys = 8
	// planHotMinShare is the minimum share of the sample a key must hold
	// (by CMS estimate) to be promoted to the bypass set.
	planHotMinShare = 64 // i.e. sample/64 ≈ 1.6 %
	// planMinHotMass is the minimum combined share of the sample the
	// bypass candidates must hold for the bypass to engage at all. Routing
	// every row through the hot/cold classifier costs a few ns; that tax is
	// paid on the whole input, while the saving accrues only on the
	// bypassed mass — and a cold stream stripped of a modest hot share
	// still fills tables at nearly the same rate. Below this mass the
	// bypass is a net loss, so the plan drops the nomination.
	planMinHotMass = 0.4
	// planTableSlack over-provisions the pre-sized table relative to K̂ so
	// the usual HLL error (~2 %) and modest drift cannot cause splits: the
	// table holds up to capacity·maxFill groups, so capacity 8·K̂ at the
	// default 0.25 fill leaves 2× headroom over the estimate.
	planTableSlack = 8
	// planDriftLimit is the max allowed growth of K̂ between the half and
	// the full sample for the pre-sizing decision. A still-growing
	// distinct count (moving-cluster, sorted) means the sample has not
	// seen the real K, so the table keeps its cache-sized capacity.
	planDriftLimit = 1.10
)

// Plan is the output of the sketch pass: the measurements and the decisions
// derived from them. Decisions are kept as plain data (rather than being
// applied on the fly) so tests can inject arbitrary — even adversarial —
// plans and pin that execution remains correct.
type Plan struct {
	// SampleRows is the number of input rows the sketches consumed.
	SampleRows int
	// TotalRows is the input size at planning time.
	TotalRows int
	// EstimatedK is the HLL distinct-group estimate over the sample.
	EstimatedK float64
	// HalfSampleK is the HLL estimate after half the sample — the drift
	// guard input: EstimatedK/HalfSampleK ≈ 1 means the sample saturated
	// the key set.
	HalfSampleK float64
	// HotKeys are the heavy-hitter bypass candidates (exact keys,
	// descending estimated frequency). HotHashes are their Murmur2 hashes
	// (recomputed by the executor, carried here for diagnostics).
	HotKeys   []uint64
	HotHashes []uint64
	// HotMass is the fraction of sampled rows attributed to HotKeys.
	HotMass float64
	// DigitHist is the sampled level-0 partition histogram (rows per
	// radix-256 digit of the hash) — the scatter-skew diagnostic.
	DigitHist [hashfn.Fanout]int64

	// PredictedAlpha is the expected reduction factor of the cold (non-
	// hot-key) stream: sampled cold rows per estimated cold group.
	PredictedAlpha float64
	// StartPartition starts the intake in partitioning mode (ADAPTIVE's
	// low-α decision taken before the first table fills for nothing).
	StartPartition bool
	// TableRows, when non-zero, overrides the worker hash-table capacity
	// (power of two, smaller than the cache-sized default).
	TableRows int

	// Nanos is the wall time the planning pass took.
	Nanos int64
}

// BuildPlan runs the sketch pass over a bounded prefix of the input and
// derives the plan. It returns nil when the input is too small to be worth
// planning. The pass costs ~15 ns/row over at most PlanSampleRows rows.
func BuildPlan(cfg Config, in *Input) *Plan {
	n := len(in.Keys)
	if n < planMinRows {
		return nil
	}
	t0 := time.Now()
	cfg = cfg.withDefaults()
	sample := min(n, PlanSampleRows)
	sk := sketch.NewSketch()
	p := &Plan{SampleRows: sample, TotalRows: n}

	// The sampler pays ~30 ns/row, which matters on runs that are fast
	// because their key set is tiny. Those are also the runs that need no
	// further sampling: when the quarter sample already shows a saturated
	// K̂ (no growth since the eighth) and no candidate anywhere near
	// heavy-hitter promotion, the remaining three quarters cannot change
	// any decision, so the pass stops early.
	var hs [scratchRows]uint64
	half, quarter, eighth := sample/2, sample/4, sample/8
	var eighthK float64
	taken := 0
	for lo := 0; lo < sample; lo += scratchRows {
		hi := min(lo+scratchRows, sample)
		hashfn.HashBatch(in.Keys[lo:hi], hs[:hi-lo])
		sk.AddBlock(in.Keys[lo:hi], hs[:hi-lo])
		taken = hi
		if eighthK == 0 && hi >= eighth {
			eighthK = sk.HLL.Estimate()
		}
		if p.HalfSampleK == 0 && hi >= half {
			p.HalfSampleK = sk.HLL.Estimate()
		}
		if hi >= quarter && hi < half {
			saturated := sk.HLL.Estimate() <= 1.05*eighthK
			if saturated && !promotable(sk, taken) {
				p.HalfSampleK = eighthK
				break
			}
		}
	}
	sample = taken
	p.SampleRows = sample
	p.EstimatedK = sk.HLL.Estimate()
	p.DigitHist = sk.DigitHist

	minHot := uint64(sample / planHotMinShare)
	var hotEst uint64
	for _, e := range sk.Top.Items() {
		if e.Est < minHot || len(p.HotKeys) == planMaxHotKeys {
			break
		}
		p.HotKeys = append(p.HotKeys, e.Key)
		p.HotHashes = append(p.HotHashes, e.Hash)
		hotEst += e.Est
	}
	p.HotMass = float64(hotEst) / float64(sample)
	if p.HotMass > 1 {
		p.HotMass = 1 // CMS overestimates can overshoot the sample size
	}
	if p.HotMass < planMinHotMass {
		// Not enough mass to pay for per-row routing: no bypass. HotMass
		// is zeroed with the keys so derive's cold-stream model matches
		// what the executor will actually see.
		p.HotKeys, p.HotHashes, p.HotMass = nil, nil, 0
	}

	p.derive(cfg, len(agg.NewLayout(in.Specs).WordOps()))
	p.Nanos = time.Since(t0).Nanoseconds()
	return p
}

// promotable reports whether any heavy-hitter candidate is within striking
// distance of promotion after rows sampled rows: its estimate reaches half
// the promotion share. Used by the sampler's early stop — a key this far
// below the bar at the quarter sample cannot matter, but one near it
// deserves the full sample to measure its mass.
func promotable(sk *sketch.Sketch, rows int) bool {
	items := sk.Top.Items()
	return len(items) > 0 && items[0].Est >= uint64(rows/(2*planHotMinShare))
}

// derive turns the measurements into decisions for the given configuration.
func (p *Plan) derive(cfg Config, words int) {
	cacheRows := hashtable.CapacityForCache(cfg.CacheBytes, words)
	if cacheRows < hashfn.Fanout*hashtable.MinBlockRows {
		cacheRows = hashfn.Fanout * hashtable.MinBlockRows
	}
	tableGroups := float64(cacheRows) * cfg.MaxFill

	// Cold-stream reduction factor: bypassed hot keys are excluded from
	// both the row mass and the group count, because the table never sees
	// them once the bypass is active.
	coldK := p.EstimatedK - float64(len(p.HotKeys))
	if coldK < 1 {
		coldK = 1
	}
	coldRows := float64(p.SampleRows) * (1 - p.HotMass)
	p.PredictedAlpha = coldRows / coldK

	// Initial routine: ADAPTIVE switches to partitioning when a table
	// fills at α < α₀; predicting that α lets intake start there without
	// filling a table for nothing first. Only worthwhile when the cold
	// groups cannot fit one table (otherwise hashing direct-emits in a
	// single fused pass regardless of α).
	alpha0 := DefaultAlpha0
	if a, ok := cfg.Strategy.(adaptive); ok {
		alpha0 = a.alpha0
	}
	p.StartPartition = p.PredictedAlpha < alpha0 && coldK > tableGroups

	// Table pre-size: when the sample saturated the key set (drift guard)
	// and the estimated groups fit a much smaller table, shrink the worker
	// tables so probes stay in L1/L2 and split scans touch a fraction of
	// the slots. Kept a power of two ≥ the blocked-table floor and at most
	// half the cache-sized capacity (below that the saving is noise).
	if p.HalfSampleK > 0 && p.EstimatedK/p.HalfSampleK <= planDriftLimit {
		want := ceilPow2Int(int(planTableSlack * p.EstimatedK))
		floor := hashfn.Fanout * hashtable.MinBlockRows
		if want < floor {
			want = floor
		}
		if want <= cacheRows/2 {
			p.TableRows = want
		}
	}
}

// ceilPow2Int rounds n up to a power of two (n ≥ 1).
func ceilPow2Int(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// sanitizedTableRows validates a (possibly injected) plan's table override
// against the execution's geometry: power of two, at least the blocked
// floor, at most the cache-sized capacity. Returns 0 when the override is
// absent or useless.
func (p *Plan) sanitizedTableRows(cacheRows int) int {
	if p == nil || p.TableRows <= 0 {
		return 0
	}
	rows := ceilPow2Int(p.TableRows)
	if floor := hashfn.Fanout * hashtable.MinBlockRows; rows < floor {
		rows = floor
	}
	if rows >= cacheRows {
		return 0
	}
	return rows
}

// hotSet is the executor's exact-match view of the plan's hot keys: a tiny
// open-addressed direct lookup table (64 slots for ≤ 32 keys) probed once
// per intake row. Membership is decided by exact key comparison — the CMS
// only nominated the candidates — so a bogus plan can waste accumulators
// but never corrupt results. Hashes are recomputed from the keys here:
// trusting plan-supplied hashes would let a corrupt plan route a group into
// the wrong bucket and split it in the output.
type hotSet struct {
	keys   []uint64
	hashes []uint64
	lut    [64]int8
}

// maxHotSetKeys bounds the accepted bypass set; injected plans beyond the
// bound are truncated (the builder's own cap is lower).
const maxHotSetKeys = 32

func newHotSet(keys []uint64) *hotSet {
	if len(keys) == 0 {
		return nil
	}
	if len(keys) > maxHotSetKeys {
		keys = keys[:maxHotSetKeys]
	}
	h := &hotSet{}
	for i := range h.lut {
		h.lut[i] = -1
	}
	for _, k := range keys {
		if h.lookup(k) >= 0 {
			continue // duplicate key in an injected plan
		}
		j := len(h.keys)
		h.keys = append(h.keys, k)
		h.hashes = append(h.hashes, hashfn.Murmur2(k))
		slot := hotSlot(k)
		for h.lut[slot] >= 0 {
			slot = (slot + 1) & 63
		}
		h.lut[slot] = int8(j)
	}
	return h
}

// hotSlot maps a key to its home slot (Fibonacci hash of the key — cheap
// and independent of Murmur2, so hot keys colliding in the table's digits
// still spread here).
func hotSlot(k uint64) int { return int((k * 0x9e3779b97f4a7c15) >> 58) }

// lookup returns the hot index of key, or -1. Cold keys (the overwhelming
// majority) terminate at the first empty slot — at ≤ 32 keys in 64 slots
// that is ~1 probe on average.
func (h *hotSet) lookup(key uint64) int {
	slot := hotSlot(key)
	for {
		j := h.lut[slot]
		if j < 0 {
			return -1
		}
		if h.keys[j] == key {
			return int(j)
		}
		slot = (slot + 1) & 63
	}
}

// hotAccums is one worker's scalar accumulator bank: one initialized-on-
// first-touch aggregate state row per hot key. Fold order within a worker
// is input order and states merge through the same word operations as the
// table path, so the final values are bit-identical to what the table
// would have produced.
type hotAccums struct {
	touched []bool
	rows    []int64
	states  [][]uint64 // [hot index][state word]
}

func newHotAccums(n, words int) *hotAccums {
	a := &hotAccums{
		touched: make([]bool, n),
		rows:    make([]int64, n),
		states:  make([][]uint64, n),
	}
	backing := make([]uint64, n*words)
	for i := range a.states {
		a.states[i] = backing[i*words : (i+1)*words]
	}
	return a
}

// fold adds input row r to hot accumulator j: the scalar equivalent of one
// identity-initialized slot claim plus per-word fold (exactly what
// InsertRawBatch does for a table row).
func (a *hotAccums) fold(ops []agg.WordOp, j int, cols [][]int64, r int) {
	st := a.states[j]
	if !a.touched[j] {
		a.touched[j] = true
		for w, op := range ops {
			st[w] = op.Op.Identity()
		}
	}
	for w, op := range ops {
		if op.Src == agg.SrcOne {
			st[w]++
			continue
		}
		st[w] = op.Op.Apply(st[w], uint64(cols[op.Col][r]))
	}
	a.rows[j]++
}
