package intern

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzInternRoundTrip is the CI fuzz gate for the general-key layer. From
// one arbitrary byte string it checks both halves of the tentpole:
//
//   - Codec: DecodeKey either fails with a typed ErrMalformed error or
//     succeeds with AppendKey(decoded) == input (decode∘encode fixed
//     point) — never panics, never accepts a non-canonical encoding.
//   - Dictionary: keys derived from the input intern to stable, dense,
//     collision-free ids that decode back to the exact bytes stored.
func FuzzInternRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{tagNull})
	f.Add(AppendKey(nil, []Value{{Kind: U64Value, U64: 12345}}))
	f.Add(AppendKey(nil, []Value{{Kind: StrValue, Str: "https://example.com"}, {Kind: NullValue}}))
	f.Add([]byte{tagBytes, 0x81, 0x00, 'a'}) // non-minimal length
	f.Add([]byte{tagU64, 1, 2, 3})           // truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeKey(data, nil)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("decode error not wrapping ErrMalformed: %v", err)
			}
		} else if re := AppendKey(nil, vals); !bytes.Equal(re, data) {
			t.Fatalf("decode∘encode not a fixed point: %x -> %x", data, re)
		}

		// Dictionary invariants on structured keys derived from the input:
		// a string key of the raw bytes, a composite (u64, string) key, and
		// a NULL-bearing variant.
		it := New()
		enc := it.NewEncoder()
		keys := [][]Value{
			{{Kind: StrValue, Str: string(data)}},
			{{Kind: U64Value, U64: uint64(len(data))}, {Kind: StrValue, Str: string(data)}},
			{{Kind: NullValue}, {Kind: StrValue, Str: string(data)}},
		}
		ids := make(map[uint64][]Value, len(keys))
		for _, k := range keys {
			id := enc.InternRow(k)
			if prev, dup := ids[id]; dup {
				t.Fatalf("dense-id collision: %v and %v both got id %d", prev, k, id)
			}
			ids[id] = k
			if again := enc.InternRow(k); again != id {
				t.Fatalf("re-intern of %v changed id %d -> %d", k, id, again)
			}
		}
		if it.Len() != len(keys) {
			t.Fatalf("dictionary holds %d keys, want %d", it.Len(), len(keys))
		}
		for id, k := range ids {
			if id >= uint64(len(keys)) {
				t.Fatalf("id %d not dense for %d keys", id, len(keys))
			}
			b, err := it.KeyBytes(id)
			if err != nil {
				t.Fatalf("KeyBytes(%d): %v", id, err)
			}
			if !bytes.Equal(b, AppendKey(nil, k)) {
				t.Fatalf("stored bytes for id %d differ from encoding of %v", id, k)
			}
		}
	})
}
