package cachesim

import "fmt"

// TLB is a fully-associative LRU translation lookaside buffer model.
//
// The paper's Section 4.2 motivates software write-combining with two
// costs of naive 256-way partitioning, cache-line read-before-write AND
// "the number of TLB misses inherent in partitioning, which writes to a
// high number of memory pages": 256 output streams touch 256 distinct
// pages, while first-level data TLBs of the paper's machine hold only 64
// entries. This model makes that argument measurable: run the same access
// trace through Walk and compare miss counts for the naive scatter (every
// row touches one of 256 stream pages) versus the SWC layout (rows touch
// a handful of contiguous buffer pages; streams are touched once per
// 64-row flush).
type TLB struct {
	pageWords int
	entries   int

	pages map[int64]uint64 // page → last-use stamp
	clock uint64

	hits   int64
	misses int64
}

// NewTLB creates a TLB with the given number of entries over pages of
// pageWords words (the paper's machine: 64 L1 dTLB entries, 4 KiB pages =
// 512 words).
func NewTLB(entries, pageWords int) *TLB {
	if entries <= 0 || pageWords <= 0 {
		panic(fmt.Sprintf("cachesim: invalid TLB geometry %d/%d", entries, pageWords))
	}
	return &TLB{
		pageWords: pageWords,
		entries:   entries,
		pages:     make(map[int64]uint64, entries),
	}
}

// Hits returns the number of accesses whose page was resident.
func (t *TLB) Hits() int64 { return t.hits }

// Misses returns the number of page-table walks.
func (t *TLB) Misses() int64 { return t.misses }

// Access touches one word address.
func (t *TLB) Access(wordAddr int64) {
	page := wordAddr / int64(t.pageWords)
	t.clock++
	if _, ok := t.pages[page]; ok {
		t.hits++
		t.pages[page] = t.clock
		return
	}
	t.misses++
	if len(t.pages) >= t.entries {
		// Evict LRU.
		var victim int64
		oldest := ^uint64(0)
		for p, age := range t.pages {
			if age < oldest {
				victim, oldest = p, age
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.clock
}

// PartitionTLBMisses runs a synthetic 256-way partitioning of n rows
// through the TLB model and returns the miss counts of the naive scatter
// (each row written directly to its partition's stream page) and of the
// software-write-combined scatter (rows written to a contiguous buffer
// block; a stream page is touched only once per bufRows flush). digits
// supplies each row's partition. The input stream itself is included in
// both traces.
func PartitionTLBMisses(entries, pageWords, bufRows int, digits []uint8) (naive, swc int64) {
	const fanout = 256
	streamBase := make([]int64, fanout)
	for p := range streamBase {
		// Distinct, far-apart stream regions: one region per partition.
		streamBase[p] = int64(1<<30 + p*1<<16)
	}

	// Naive: input read + direct scatter write per row.
	{
		tlb := NewTLB(entries, pageWords)
		pos := make([]int64, fanout)
		for i, d := range digits {
			tlb.Access(int64(i)) // sequential input
			tlb.Access(streamBase[d] + pos[d])
			pos[d]++
		}
		naive = tlb.Misses()
	}

	// SWC: input read + buffer write per row; stream pages touched once
	// per flush of bufRows rows. Buffers are one contiguous region.
	{
		tlb := NewTLB(entries, pageWords)
		bufBase := int64(1 << 28)
		bufLen := make([]int, fanout)
		pos := make([]int64, fanout)
		for i, d := range digits {
			tlb.Access(int64(i)) // sequential input
			idx := int64(d)*int64(bufRows) + int64(bufLen[d])
			tlb.Access(bufBase + idx)
			bufLen[d]++
			if bufLen[d] == bufRows {
				// Flush: one burst of writes to the stream (page-granular
				// cost is what matters; model the first word of each line
				// of the flushed block).
				for w := 0; w < bufRows; w += pageWords {
					tlb.Access(streamBase[d] + pos[d] + int64(w))
				}
				pos[d] += int64(bufRows)
				bufLen[d] = 0
			}
		}
		swc = tlb.Misses()
	}
	return naive, swc
}
