package core

import (
	"errors"
	"math"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/datagen"
	"cacheagg/internal/memgov"
	"cacheagg/internal/testutil"
	"cacheagg/internal/trace"
	"cacheagg/internal/xrand"
)

// fullSpecs is the complete aggregate alphabet: every fold kind, AVG
// included so the two-word exactness is covered.
func fullSpecs() []agg.Spec {
	return []agg.Spec{
		{Kind: agg.Count},
		{Kind: agg.Sum, Col: 0},
		{Kind: agg.Min, Col: 0},
		{Kind: agg.Max, Col: 0},
		{Kind: agg.Avg, Col: 0},
	}
}

func makeAggInput(dist datagen.Dist, n int, k uint64, seed uint64) *Input {
	keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: k, Seed: seed})
	rng := xrand.NewXoshiro256(seed + 1)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Next()%2001) - 1000
	}
	return &Input{Keys: keys, AggCols: [][]int64{vals}, Specs: fullSpecs()}
}

// routineSelectParts extracts the Part of every routine-select event.
func routineSelectParts(rec *trace.Recorder) []int64 {
	var parts []int64
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindRoutineSelect {
			parts = append(parts, ev.Part)
		}
	}
	return parts
}

// TestGlobalRoutineMatchesPartitioned is the bit-identity acceptance test:
// the forced shared-table routine must produce exactly the partitioned
// routine's groups and aggregates (which in turn match the scalar oracle)
// on every distribution the generator offers, across worker counts, with
// the full aggregate alphabet. The tiny cache keeps the shared table under
// growth and escape pressure the whole time.
func TestGlobalRoutineMatchesPartitioned(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	const n = 60000
	for _, dist := range datagen.Dists() {
		for _, k := range []uint64{10, 3000, 40000} {
			in := makeAggInput(dist, n, k, 77)
			for _, workers := range []int{1, 4, 8} {
				cfg := smallCfg(DefaultAdaptive())
				cfg.Workers = workers
				cfg.CollectStats = true

				cfg.Routine = RoutinePartitioned
				part, err := Aggregate(cfg, in)
				if err != nil {
					t.Fatalf("%v/K=%d/P=%d partitioned: %v", dist, k, workers, err)
				}
				cfg.Routine = RoutineGlobal
				glob, err := Aggregate(cfg, in)
				if err != nil {
					t.Fatalf("%v/K=%d/P=%d global: %v", dist, k, workers, err)
				}

				checkResult(t, part, in)
				checkResult(t, glob, in) // key-indexed vs the scalar oracle
				if part.Groups() != glob.Groups() {
					t.Fatalf("%v/K=%d/P=%d: %d vs %d groups",
						dist, k, workers, part.Groups(), glob.Groups())
				}
				if glob.Stats.Routine != RoutineGlobal {
					t.Fatalf("forced global reported routine %v", glob.Stats.Routine)
				}
				if glob.Stats.GlobalRows+glob.Stats.GlobalEscapedRows == 0 {
					t.Fatalf("%v/K=%d/P=%d: no rows flowed through the shared table",
						dist, k, workers)
				}
				if part.Stats.GlobalRows != 0 || part.Stats.Routine != RoutinePartitioned {
					t.Fatalf("partitioned run leaked global stats: %+v", part.Stats)
				}
			}
		}
	}
}

// TestGlobalDemotesMidRun: an auto run started on the shared table by an
// (injected) over-optimistic α̂ must demote to partitioned once the live α
// undershoots — and the rows already absorbed by the table must survive
// into an exact result.
func TestGlobalDemotesMidRun(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	const n = 200000
	in := makeAggInput(datagen.Uniform, n, 60000, 5) // real α ≈ 3.3 ≪ α₀
	rec := trace.NewRecorder(0)
	cfg := smallCfg(DefaultAdaptive())
	cfg.Workers = 4
	cfg.CollectStats = true
	cfg.Tracer = rec
	cfg.MorselRows = 4096 // frequent demotion checks
	cfg.Plan = &Plan{
		SampleRows:     1024,
		TotalRows:      n,
		EstimatedK:     1000, // lies: promises α̂ = 200
		HalfSampleK:    990,
		PredictedAlpha: 200,
	}
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	st := res.Stats
	if st.GlobalDemotions != 1 {
		t.Fatalf("demotions = %d, want 1", st.GlobalDemotions)
	}
	if st.Routine != RoutinePartitioned {
		t.Fatalf("demoted run reports routine %v, want partitioned", st.Routine)
	}
	if st.GlobalRows == 0 {
		t.Fatal("no rows absorbed before demotion")
	}
	// The trace must show the full story: global selected, then demoted.
	parts := routineSelectParts(rec)
	if len(parts) != 2 || parts[0] != int64(RoutineGlobal) || parts[1] != int64(RoutinePartitioned) {
		t.Fatalf("routine-select parts = %v, want [global, partitioned]", parts)
	}
}

// TestAdaptiveNeverSelectsGlobalOnLowAlpha is the trace-pinned selector
// gate: a near-distinct input (α ≈ 1.5) with real planning on must never
// route through the shared table, at any worker count.
func TestAdaptiveNeverSelectsGlobalOnLowAlpha(t *testing.T) {
	const n = 120000
	in := makeAggInput(datagen.Uniform, n, 80000, 9)
	for _, workers := range []int{4, 8} {
		rec := trace.NewRecorder(0)
		cfg := smallCfg(DefaultAdaptive())
		cfg.Workers = workers
		cfg.CollectStats = true
		cfg.EnablePlan = true
		cfg.Tracer = rec
		res, err := Aggregate(cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, res, in)
		for _, part := range routineSelectParts(rec) {
			if part == int64(RoutineGlobal) {
				t.Fatalf("P=%d: selector chose the global routine on a low-α input", workers)
			}
		}
		if res.Stats.Routine == RoutineGlobal {
			t.Fatalf("P=%d: stats report the global routine on a low-α input", workers)
		}
	}
}

// TestAdaptiveSelectsGlobalOnHighAlpha: the selector's positive direction —
// few hot groups, many workers, real planning — must pick the shared table,
// say so in the trace, and stay on it (no demotion at α ≈ 1500).
func TestAdaptiveSelectsGlobalOnHighAlpha(t *testing.T) {
	const n = 150000
	in := makeAggInput(datagen.Uniform, n, 100, 13)
	rec := trace.NewRecorder(0)
	cfg := smallCfg(DefaultAdaptive())
	cfg.Workers = 4
	cfg.CollectStats = true
	cfg.EnablePlan = true
	cfg.Tracer = rec
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	st := res.Stats
	if st.Routine != RoutineGlobal {
		t.Fatalf("routine = %v, want global (α ≈ %d)", st.Routine, n/100)
	}
	if st.GlobalDemotions != 0 {
		t.Fatalf("high-α run demoted %d times", st.GlobalDemotions)
	}
	if st.GlobalRows == 0 {
		t.Fatal("no rows folded into the shared table")
	}
	parts := routineSelectParts(rec)
	if len(parts) == 0 || parts[0] != int64(RoutineGlobal) {
		t.Fatalf("routine-select parts = %v, want leading global", parts)
	}
	// Below the worker gate the same input must NOT pick the shared table.
	cfg.Workers = 2
	cfg.Tracer = nil
	res, err = Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Routine == RoutineGlobal {
		t.Fatal("P=2 run picked the global routine below the worker gate")
	}
}

// TestAutoSelectsSortSpill: a trusted plan proving the finalized output
// exceeds the whole memory budget must fail fast with ErrMemoryBudget
// before intake burns a pass — the cacheagg layer turns that into the
// external sort-spill operator.
func TestAutoSelectsSortSpill(t *testing.T) {
	const n = 100000
	in := makeAggInput(datagen.Uniform, n, 90000, 3) // K̂ ≈ 90000 groups
	cfg := smallCfg(DefaultAdaptive())
	cfg.EnablePlan = true
	cfg.CollectStats = true
	cfg.Governor = memgov.New(256 << 10) // ≪ K̂ · chunkRow
	_, err := Aggregate(cfg, in)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	// The same budget with a forced partitioned routine must not take the
	// fail-fast exit; it may still run over budget mid-flight, but that is
	// the pre-existing abort path, also ErrMemoryBudget — what matters is
	// the sort-spill decision is selector-driven, not unconditional.
	cfg.Routine = RoutinePartitioned
	if _, err := Aggregate(cfg, in); err != nil && !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("forced partitioned: unexpected error class: %v", err)
	}
}

// TestAdversarialRoutinePlans mirrors PR 8's TestAdversarialPlans for the
// routine selector: corrupt injected plans (absurd K̂, zero/NaN/Inf α̂,
// drift-guard violations) must be sanitized — never a panic, never a
// livelock, never a wrong result, never a garbage-driven global pick.
func TestAdversarialRoutinePlans(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	const n = 50000
	in := makeAggInput(datagen.Zipf, n, 5000, 21)
	plans := []*Plan{
		nil,
		{},                                // zero plan: untrusted
		{SampleRows: -1, EstimatedK: 100}, // negative sample
		{SampleRows: 1024, EstimatedK: 0}, // zero K̂
		{SampleRows: 1024, EstimatedK: 1e300, HalfSampleK: 1e300, PredictedAlpha: 1e300},   // absurd K̂
		{SampleRows: 1024, EstimatedK: math.Inf(1), HalfSampleK: 1, PredictedAlpha: 1e9},   // Inf K̂
		{SampleRows: 1024, EstimatedK: 1000, HalfSampleK: 990, PredictedAlpha: math.NaN()}, // NaN α̂
		{SampleRows: 1024, EstimatedK: 1000, HalfSampleK: 990, PredictedAlpha: math.Inf(1)},
		{SampleRows: 1024, EstimatedK: 1000, HalfSampleK: 1, PredictedAlpha: 1e6},  // drift-guard violation
		{SampleRows: 1024, EstimatedK: 1000, HalfSampleK: 990, PredictedAlpha: -5}, // negative α̂
		{SampleRows: 1024, EstimatedK: 2, HalfSampleK: 2, PredictedAlpha: 1e12, TableRows: -9},
	}
	for pi, p := range plans {
		for _, rt := range []Routine{RoutineAuto, RoutineGlobal, Routine(250)} {
			cfg := smallCfg(DefaultAdaptive())
			cfg.Workers = 4
			cfg.CollectStats = true
			cfg.Plan = p
			cfg.Routine = rt
			res, err := Aggregate(cfg, in)
			if err != nil {
				t.Fatalf("plan %d routine %d: %v", pi, rt, err)
			}
			checkResult(t, res, in)
			if rt == RoutineAuto && p != nil && res.Stats.Routine == RoutineGlobal {
				// Auto may legitimately pick global only off a TRUSTED high-α
				// plan; every corrupt plan above must fail planTrusted or the
				// α/fit gates... except the last one (tiny trusted K̂, huge α̂),
				// which is allowed to pick global — and must still be exact.
				if !(p.EstimatedK == 2 && planTrusted(p)) {
					t.Fatalf("plan %d: corrupt plan drove a global pick", pi)
				}
			}
		}
	}
}

// TestRoutineStrings pins the wire names used by flags, stats and traces.
func TestRoutineStrings(t *testing.T) {
	want := map[Routine]string{
		RoutineAuto:        "auto",
		RoutinePartitioned: "partitioned",
		RoutineGlobal:      "global",
		RoutineSortSpill:   "sort-spill",
		Routine(9):         "routine(9)",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Routine(%d).String() = %q, want %q", uint8(r), r.String(), s)
		}
	}
}
