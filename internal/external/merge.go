package external

// Parallel, pipelined partition merging (phase 2 of the out-of-core
// operator).
//
// Every non-empty level-1 partition — on disk or resident in memory — is
// one work-stealing task on a sched.Pool, so all 256 merges proceed
// concurrently; a partition that still exceeds the row budget repartitions
// on the next hash digit and spawns one subtask per sub-partition, exactly
// the recursion of Algorithm 2 with the levels running in parallel.
//
// I/O overlaps with compute through a bounded prefetch window: while
// partition d merges, loader tasks stream the files of later partitions
// into memory, with the window sized from the byte budget and every load's
// reservation taken from the governor BEFORE its buffers are allocated.
// Admission is fail-fast only when it must be: a load that cannot reserve
// first reclaims an unconsumed prefetched file, then waits while any other
// in-flight holder (a running load, a pending resident merge) can still
// free budget, and only errors with the governor's typed ErrBudget when it
// is provably alone.
//
// Output determinism: each partition merges into its own result fragment;
// fragments are concatenated in digit order (recursively, in sub-digit
// order) after the pool quiesces, so the group order is identical to the
// sequential merge no matter how the tasks interleave. The merge itself is
// the batch pipeline of the in-memory operator — hashfn.HashBatch,
// hashtable.InsertStateBatch with the plan's merge kernels, and a
// block-order EmitColumns — with the legacy map merge kept as the
// sequential reference oracle (Config.SequentialMerge) for differential
// tests.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"cacheagg/internal/agg"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/hashtable"
	"cacheagg/internal/sched"
	"cacheagg/internal/trace"
)

// errAborted is the silent give-up of a merge task once the pool is
// already tearing down; it never surfaces to the caller (the pool returns
// the first real failure).
var errAborted = errors.New("external: merge aborted")

// smallMergeRows is the partition size below which mergeBatched skips the
// blocked hash table and merges through the reference map directly. Below
// this, 2·n capacity spread over 256 blocks leaves so few slots per block
// that overflow-doubling retries dominate; the map is cheaper outright.
const smallMergeRows = 8192

// frag is one partition's slice of the final result: either merged rows
// (leaf) or 256 sub-fragments in digit order (repartitioned). Fragments
// are assembled into the Result in digit order after the pool quiesces.
type frag struct {
	keys []uint64
	cols [][]uint64
	sub  []*frag
}

// loadedPart is one partition file materialized in columnar form, with its
// governor reservation.
type loadedPart struct {
	keys     []uint64
	cols     [][]uint64
	bytes    int64
	released bool
}

// releaseLoad returns a load's reservation and in-flight slot. Idempotent;
// each loadedPart is owned by a single goroutine at a time.
func (e *extExec) releaseLoad(ld *loadedPart) {
	if ld == nil || ld.released {
		return
	}
	ld.released = true
	if e.gov != nil {
		e.gov.Release(ld.bytes)
	}
	e.inflight.Add(-1)
}

// tryAcquireLoad reserves n bytes for a load without blocking.
func (e *extExec) tryAcquireLoad(n int64) bool {
	if !e.gov.TryReserve(n) {
		return false
	}
	e.inflight.Add(1)
	return true
}

// acquireLoad reserves n bytes for a load, waiting for in-flight holders
// (running loads, prefetched files, pending resident merges) to free
// budget. It reclaims unconsumed prefetched files first — they are the
// one kind of holder whose owner might be queued behind the waiters — and
// fails fast with the governor's typed error the moment nothing in flight
// could possibly free the missing bytes.
func (e *extExec) acquireLoad(c *sched.Ctx, pf *prefetcher, n int64) error {
	for {
		if e.gov.TryReserve(n) {
			e.inflight.Add(1)
			return nil
		}
		if c != nil && c.Aborted() {
			return errAborted
		}
		if pf != nil && pf.dropOne() {
			continue
		}
		if e.inflight.Load() == 0 {
			return fmt.Errorf("external: %w", e.gov.BudgetError("partition merge", n))
		}
		runtime.Gosched()
	}
}

// loadPartition opens, reserves and decodes one partition file. The
// reservation happens after Stat (the size is the bound on the decoded
// columns plus read scratch) and before any decode buffer is allocated.
func (e *extExec) loadPartition(c *sched.Ctx, pf *prefetcher, path string) (*loadedPart, error) {
	f, size, err := e.openSpill(path)
	if err != nil {
		return nil, err
	}
	if err := e.acquireLoad(c, pf, size); err != nil {
		f.Close()
		return nil, err
	}
	keys, cols, err := e.decodeSpill(f, path, size)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("external: close spill %s: %w", filepath.Base(path), cerr)
	}
	if err != nil {
		e.releaseLoad(&loadedPart{bytes: size})
		return nil, err
	}
	return &loadedPart{keys: keys, cols: cols, bytes: size}, nil
}

// mergeParallel is the parallel phase 2: one task per non-empty level-1
// partition on a work-stealing pool, a prefetcher overlapping file loads
// with merging, and digit-order assembly of the per-partition fragments.
func (e *extExec) mergeParallel(ctx context.Context, parts []*spillWriter, res *Result) error {
	workers := e.cfg.MergeWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	frags := make([]*frag, hashfn.Fanout)
	// Pending resident merges hold reservations they will release; count
	// them in flight before any admission decision can observe zero.
	work := 0
	for d := range parts {
		if parts[d] == nil && e.resident[d].n() == 0 {
			continue
		}
		if parts[d] == nil {
			e.inflight.Add(1)
		}
		work++
	}
	if work == 0 {
		return nil
	}
	pf := e.newPrefetcher(parts, workers)
	pool := sched.NewPool(workers)
	if tr := e.tr; tr != nil {
		pool.OnSteal = func(thief, victim int) {
			tr.Emit(trace.KindMergeSteal, thief, 0, int64(victim), 0)
		}
	}
	err := pool.RunContext(ctx, func(c *sched.Ctx) {
		// File merges are pushed first and resident merges last: the owner
		// pops LIFO, so the resident merges run first and release their
		// budget before this worker needs it for loads, while thieves
		// steal the file merges FIFO from the head of the deque.
		for d := 0; d < hashfn.Fanout; d++ {
			if parts[d] == nil {
				continue
			}
			d := d
			c.Spawn(func(c *sched.Ctx) {
				if c.Aborted() {
					return
				}
				f, err := e.mergeFile(c, pf, parts[d], 1, d)
				if err != nil {
					if err != errAborted {
						c.Fail(err)
					}
					return
				}
				frags[d] = f
			})
		}
		for d := 0; d < hashfn.Fanout; d++ {
			if parts[d] != nil || e.resident[d].n() == 0 {
				continue
			}
			d := d
			c.Spawn(func(c *sched.Ctx) {
				if c.Aborted() {
					e.inflight.Add(-1)
					return
				}
				r := &e.resident[d]
				if e.tr != nil {
					e.tr.Emit(trace.KindMergeStart, c.Worker, 1, int64(d), float64(r.n()))
				}
				frags[d] = e.mergeBatched(r.keys, r.partials, 1)
				if e.tr != nil {
					e.tr.Emit(trace.KindMergeFinish, c.Worker, 1, int64(d), float64(len(frags[d].keys)))
				}
				e.releaseResident(d)
				e.inflight.Add(-1)
			})
		}
		pf.pump(c)
	})
	pf.releaseUnclaimed()
	if err != nil {
		return err
	}
	for _, f := range frags {
		e.appendFrag(f, res)
	}
	return nil
}

// mergeFile merges one partition file: load (prefetched or on demand),
// delete the file, then either batch-merge in memory or repartition on the
// next digit and spawn one subtask per sub-partition.
func (e *extExec) mergeFile(c *sched.Ctx, pf *prefetcher, w *spillWriter, level, d int) (*frag, error) {
	e.bumpMergeLevel(level)
	if e.tr != nil {
		e.tr.Emit(trace.KindMergeStart, c.Worker, level, int64(d), 0)
	}
	var ld *loadedPart
	if pf != nil && d >= 0 {
		ld = pf.take(c, d)
	}
	if c.Aborted() {
		e.releaseLoad(ld)
		return nil, errAborted
	}
	if ld == nil {
		var err error
		ld, err = e.loadPartition(c, pf, w.path)
		if err != nil {
			return nil, err
		}
	}
	defer e.releaseLoad(ld)
	e.removeSpill(w)
	if len(ld.keys) > e.cfg.MemoryBudgetRows && level < hashfn.MaxLevels {
		subs, err := e.repartition(ld, level)
		e.releaseLoad(ld) // sub-files hold the rows now
		if err != nil {
			return nil, err
		}
		f := &frag{sub: make([]*frag, hashfn.Fanout)}
		for dd := range subs {
			sw := subs[dd]
			if sw == nil {
				continue
			}
			dd, sw := dd, sw
			c.Spawn(func(c *sched.Ctx) {
				if c.Aborted() {
					return
				}
				cf, err := e.mergeFile(c, pf, sw, level+1, -1)
				if err != nil {
					if err != errAborted {
						c.Fail(err)
					}
					return
				}
				f.sub[dd] = cf
			})
		}
		if e.tr != nil {
			e.tr.Emit(trace.KindMergeFinish, c.Worker, level, int64(d), 0)
		}
		return f, nil
	}
	f := e.mergeBatched(ld.keys, ld.cols, level)
	if e.tr != nil {
		e.tr.Emit(trace.KindMergeFinish, c.Worker, level, int64(d), float64(len(f.keys)))
	}
	return f, nil
}

// repartition splits a loaded partition by the next hash digit into up to
// 256 sealed sub-partition files, hashing the whole column in one
// HashBatch pass and staging rows through the block writers.
func (e *extExec) repartition(ld *loadedPart, level int) ([]*spillWriter, error) {
	writers := make([]*spillWriter, hashfn.Fanout)
	hashes := make([]uint64, len(ld.keys))
	hashfn.HashBatch(ld.keys, hashes)
	for i, k := range ld.keys {
		dd := hashfn.Digit(hashes[i], level)
		w := writers[dd]
		if w == nil {
			var err error
			w, err = e.newWriter()
			if err != nil {
				return nil, err
			}
			writers[dd] = w
		}
		if err := e.appendState(w, k, ld.cols, i); err != nil {
			return nil, err
		}
	}
	for _, w := range writers {
		if w == nil {
			continue
		}
		if err := e.finishSpill(w); err != nil {
			return nil, err
		}
	}
	return writers, nil
}

// mergeBatched merges partial rows with the batch kernels: one HashBatch
// over the keys, InsertStateBatch into a level-blocked table with the
// plan's monomorphic merge kernels, and a block-order EmitColumns. The
// capacity doubles (re-inserting from the original rows) when a block
// overflows; pathological same-digit skew and the bottom of the radix
// recursion fall back to the reference map merge.
func (e *extExec) mergeBatched(keys []uint64, cols [][]uint64, level int) *frag {
	n := len(keys)
	f := &frag{}
	if n == 0 {
		return f
	}
	if level >= hashfn.MaxLevels || n < smallMergeRows {
		// No hash digit left to block a table on, or the partition is so
		// small that a 256-block table would average under 64 slots per
		// block — guaranteeing overflow-doubling retries that cost more
		// than the map merge it would eventually fall back to.
		f.keys, f.cols = mergeRowsMap(e.plan, keys, cols)
		return f
	}
	width := e.plan.Width()
	hashes := make([]uint64, n)
	hashfn.HashBatch(keys, hashes)
	for capRows := 2 * n; ; capRows *= 2 {
		if capRows > 8*n && capRows > 16<<10 {
			// A block still overflowed at 8× headroom: the digit
			// distribution is degenerate, stop burning memory on it.
			f.keys, f.cols = mergeRowsMap(e.plan, keys, cols)
			return f
		}
		tbl := hashtable.New(hashtable.Config{
			CapacityRows: capRows,
			Blocks:       hashfn.Fanout,
			MaxFill:      1, // distinct rows ≤ n by construction; only block overflow can stop us
			Words:        width,
			Level:        level,
		})
		foot := tbl.FootprintBytes()
		if e.gov != nil {
			// Unconditional: the merge cannot proceed without its table,
			// and a blocking reservation here while holding the load would
			// deadlock against other merges doing the same. This is the
			// documented slack of the budget contract.
			e.gov.Reserve(foot)
		}
		m := tbl.InsertStateBatch(hashes, keys, cols, 0, e.kern)
		if m == n {
			g := tbl.Len()
			f.keys = make([]uint64, g)
			f.cols = make([][]uint64, width)
			for c := range f.cols {
				f.cols[c] = make([]uint64, g)
			}
			hs := make([]uint64, g)
			tbl.EmitColumns(hs, f.keys, f.cols)
			if e.gov != nil {
				e.gov.Release(foot)
			}
			return f
		}
		if e.gov != nil {
			e.gov.Release(foot)
		}
	}
}

// appendFrag appends a fragment tree's groups to the result in digit
// order: leaf rows finalized in place, repartitioned fragments recursively
// in sub-digit order.
func (e *extExec) appendFrag(f *frag, res *Result) {
	if f == nil {
		return
	}
	if f.sub != nil {
		for _, s := range f.sub {
			e.appendFrag(s, res)
		}
		return
	}
	e.appendFinalized(f.keys, f.cols, res)
}

// bumpMergeLevel records the deepest merge recursion reached.
func (e *extExec) bumpMergeLevel(level int) {
	e.mu.Lock()
	if level > e.stats.MergeLevels {
		e.stats.MergeLevels = level
	}
	e.mu.Unlock()
}

// Prefetcher: overlaps partition-file loads with merging.
//
// Loader tasks stream files into loadedParts ahead of the merge tasks that
// will consume them, at most `window` files in flight or loaded-unclaimed
// at once. Reservations are taken (non-blocking) before decoding; a
// refused reservation simply drops the prefetch — the merge task loads on
// demand with the blocking admission instead. Entry ownership is a small
// state machine on an atomic so consumers, loaders and budget-pressed
// droppers never race.
const (
	pfIdle      int32 = iota // not scheduled yet
	pfScheduled              // loader task queued
	pfLoading                // loader running
	pfLoaded                 // data ready, reservation held
	pfDropped                // abandoned (budget pressure, refusal, abort)
	pfClaimed                // a merge task owns the entry
)

type pfEntry struct {
	d     int
	w     *spillWriter
	state atomic.Int32
	data  *loadedPart
}

type prefetcher struct {
	e       *extExec
	entries []*pfEntry // non-empty file partitions, digit order
	byDigit [hashfn.Fanout]*pfEntry
	next    atomic.Int64 // scan cursor into entries
	active  atomic.Int64 // scheduled + loading + loaded-unclaimed
	window  int64
}

// newPrefetcher builds the prefetcher over the level-1 partition files and
// sizes its window: two files per worker (capped at 16) so every worker
// has a load in flight and one ready, shrunk so the expected window bytes
// fit in half the byte budget — the other half stays for merge tables and
// the loads the merges themselves hold. Reservations are still taken per
// file at load time; the window is a concurrency target, not a grant.
func (e *extExec) newPrefetcher(parts []*spillWriter, workers int) *prefetcher {
	pf := &prefetcher{e: e}
	for d, w := range parts {
		if w == nil {
			continue
		}
		ent := &pfEntry{d: d, w: w}
		pf.byDigit[d] = ent
		pf.entries = append(pf.entries, ent)
	}
	win := int64(2 * workers)
	if win > 16 {
		win = 16
	}
	if b := e.gov.Budget(); b > 0 && len(pf.entries) > 0 {
		e.mu.Lock()
		avg := e.diskBytes / int64(len(pf.entries))
		e.mu.Unlock()
		if avg > 0 && win > b/2/avg {
			win = b / 2 / avg // may be 0: pure demand loading
		}
	}
	pf.window = win
	return pf
}

// pump schedules loader tasks until the window is full or the cursor runs
// off the end. Called from the root task and whenever a window slot frees.
func (pf *prefetcher) pump(c *sched.Ctx) {
	for {
		if pf.active.Load() >= pf.window {
			return
		}
		pf.active.Add(1)
		idx := pf.next.Add(1) - 1
		if idx >= int64(len(pf.entries)) {
			pf.active.Add(-1)
			return
		}
		ent := pf.entries[idx]
		if !ent.state.CompareAndSwap(pfIdle, pfScheduled) {
			pf.active.Add(-1) // already claimed by its merge task
			continue
		}
		c.Spawn(func(c *sched.Ctx) { pf.load(c, ent) })
	}
}

// load is the loader task body: open, stat, try-reserve, decode. A refused
// reservation or an abort drops the entry; an I/O failure fails the run.
func (pf *prefetcher) load(c *sched.Ctx, ent *pfEntry) {
	e := pf.e
	if !ent.state.CompareAndSwap(pfScheduled, pfLoading) {
		pf.slotFreed(c) // consumer claimed it first
		return
	}
	if c.Aborted() {
		ent.state.Store(pfDropped)
		pf.active.Add(-1)
		return
	}
	f, size, err := e.openSpill(ent.w.path)
	if err != nil {
		ent.state.Store(pfDropped)
		pf.active.Add(-1)
		c.Fail(err)
		return
	}
	if !e.tryAcquireLoad(size) {
		f.Close()
		ent.state.Store(pfDropped)
		pf.active.Add(-1)
		if e.tr != nil {
			e.tr.Emit(trace.KindPrefetchDrop, c.Worker, 0, int64(ent.d), float64(size))
		}
		return
	}
	keys, cols, err := e.decodeSpill(f, ent.w.path, size)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("external: close spill %s: %w", filepath.Base(ent.w.path), cerr)
	}
	if err != nil {
		e.releaseLoad(&loadedPart{bytes: size})
		ent.state.Store(pfDropped)
		pf.active.Add(-1)
		c.Fail(err)
		return
	}
	ent.data = &loadedPart{keys: keys, cols: cols, bytes: size}
	ent.state.Store(pfLoaded)
	e.mu.Lock()
	e.stats.PrefetchedPartitions++
	e.mu.Unlock()
	if e.tr != nil {
		e.tr.Emit(trace.KindPrefetchLoad, c.Worker, 0, int64(ent.d), float64(size))
	}
	// The loaded entry keeps its window slot until taken or dropped.
}

// take hands partition d's prefetched load to its merge task, or returns
// nil when the task must load on demand (never scheduled, refused, or
// dropped). It claims the entry in every case so loaders and droppers
// leave it alone afterwards.
func (pf *prefetcher) take(c *sched.Ctx, d int) *loadedPart {
	ent := pf.byDigit[d]
	if ent == nil {
		return nil
	}
	for {
		switch s := ent.state.Load(); s {
		case pfIdle, pfScheduled, pfDropped:
			if ent.state.CompareAndSwap(s, pfClaimed) {
				if s == pfScheduled {
					// The queued loader will find the claim and free the
					// slot itself; nothing is held yet.
					return nil
				}
				return nil
			}
		case pfLoading:
			if c.Aborted() {
				return nil
			}
			runtime.Gosched() // another worker is mid-load; it finishes unpreempted
		case pfLoaded:
			if ent.state.CompareAndSwap(pfLoaded, pfClaimed) {
				ld := ent.data
				ent.data = nil
				if e := pf.e; e.tr != nil {
					e.tr.Emit(trace.KindPrefetchHit, c.Worker, 0, int64(d), float64(ld.bytes))
				}
				pf.slotFreed(c)
				return ld
			}
		case pfClaimed:
			return nil
		}
	}
}

// dropOne reclaims one loaded-but-unclaimed prefetch reservation for a
// starving on-demand load. Returns whether anything was freed.
func (pf *prefetcher) dropOne() bool {
	for _, ent := range pf.entries {
		if ent.state.Load() == pfLoaded && ent.state.CompareAndSwap(pfLoaded, pfDropped) {
			ld := ent.data
			ent.data = nil
			if e := pf.e; e.tr != nil {
				e.tr.Emit(trace.KindPrefetchDrop, 0, 0, int64(ent.d), float64(ld.bytes))
			}
			pf.e.releaseLoad(ld)
			pf.active.Add(-1)
			return true
		}
	}
	return false
}

// slotFreed returns a window slot and refills the pipeline.
func (pf *prefetcher) slotFreed(c *sched.Ctx) {
	pf.active.Add(-1)
	pf.pump(c)
}

// releaseUnclaimed drops whatever the prefetcher still holds after the
// pool has quiesced (only reachable on the error path: a successful run
// claims every entry). Safe because no task is running anymore.
func (pf *prefetcher) releaseUnclaimed() {
	for _, ent := range pf.entries {
		if ent.state.Load() == pfLoaded && ent.state.CompareAndSwap(pfLoaded, pfDropped) {
			ld := ent.data
			ent.data = nil
			if e := pf.e; e.tr != nil {
				e.tr.Emit(trace.KindPrefetchDrop, 0, 0, int64(ent.d), float64(ld.bytes))
			}
			pf.e.releaseLoad(ld)
		}
	}
}

// Sequential reference path (Config.SequentialMerge): single-goroutine
// digit loop with the legacy map merge — the oracle the differential tests
// compare the parallel engine against, and the PR 3 baseline of the
// benchmarks. It shares the fragment assembly so its output order is the
// parallel path's by construction.

func (e *extExec) mergeSequential(ctx context.Context, parts []*spillWriter, res *Result) error {
	frags := make([]*frag, hashfn.Fanout)
	// Residents first: they already hold budget, and merging them releases
	// it before the file loads reserve theirs.
	for d := range parts {
		if parts[d] != nil || e.resident[d].n() == 0 {
			continue
		}
		r := &e.resident[d]
		if e.tr != nil {
			e.tr.Emit(trace.KindMergeStart, 0, 1, int64(d), float64(r.n()))
		}
		keys, cols := mergeRowsMap(e.plan, r.keys, r.partials)
		frags[d] = &frag{keys: keys, cols: cols}
		if e.tr != nil {
			e.tr.Emit(trace.KindMergeFinish, 0, 1, int64(d), float64(len(keys)))
		}
		e.releaseResident(d)
	}
	for d := range parts {
		if parts[d] == nil {
			continue
		}
		f, err := e.mergeSeqFile(ctx, parts[d], 1, d)
		if err != nil {
			return err
		}
		frags[d] = f
	}
	for _, f := range frags {
		e.appendFrag(f, res)
	}
	return nil
}

func (e *extExec) mergeSeqFile(ctx context.Context, w *spillWriter, level, d int) (*frag, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.bumpMergeLevel(level)
	if e.tr != nil {
		e.tr.Emit(trace.KindMergeStart, 0, level, int64(d), 0)
	}
	ld, err := e.loadPartition(nil, nil, w.path)
	if err != nil {
		return nil, err
	}
	e.removeSpill(w)
	if len(ld.keys) > e.cfg.MemoryBudgetRows && level < hashfn.MaxLevels {
		subs, err := e.repartition(ld, level)
		e.releaseLoad(ld)
		if err != nil {
			return nil, err
		}
		f := &frag{sub: make([]*frag, hashfn.Fanout)}
		for dd, sw := range subs {
			if sw == nil {
				continue
			}
			cf, err := e.mergeSeqFile(ctx, sw, level+1, -1)
			if err != nil {
				return nil, err
			}
			f.sub[dd] = cf
		}
		if e.tr != nil {
			e.tr.Emit(trace.KindMergeFinish, 0, level, int64(d), 0)
		}
		return f, nil
	}
	keys, cols := mergeRowsMap(e.plan, ld.keys, ld.cols)
	e.releaseLoad(ld)
	if e.tr != nil {
		e.tr.Emit(trace.KindMergeFinish, 0, level, int64(d), float64(len(keys)))
	}
	return &frag{keys: keys, cols: cols}, nil
}

// mergeRowsMap is the reference merge: a Go map from key to output row in
// first-appearance order, merging per cell with the scalar super-aggregate.
func mergeRowsMap(p *Plan, keys []uint64, partials [][]uint64) ([]uint64, [][]uint64) {
	index := make(map[uint64]int, 1024)
	var outKeys []uint64
	width := p.Width()
	out := make([][]uint64, width)
	for i := range keys {
		k := keys[i]
		s, ok := index[k]
		if !ok {
			s = len(outKeys)
			index[k] = s
			outKeys = append(outKeys, k)
			for c := 0; c < width; c++ {
				out[c] = append(out[c], partials[c][i])
			}
			continue
		}
		for c := 0; c < width; c++ {
			st := [1]uint64{out[c][s]}
			src := [1]uint64{partials[c][i]}
			p.MergeKind[c].Merge(st[:], src[:])
			out[c][s] = st[0]
		}
	}
	return outKeys, out
}

// appendFinalized appends merged partial rows to the result, finalizing
// per the original specs: AVG from its (SUM, COUNT) decomposition — exact
// in the float column — everything else widened in place.
func (e *extExec) appendFinalized(keys []uint64, out [][]uint64, res *Result) {
	res.Keys = append(res.Keys, keys...)
	for si, s := range e.plan.Orig {
		off := e.plan.Off[si]
		col := res.Aggs[si]
		fcol := res.AggsFloat[si]
		for g := range keys {
			if s.Kind == agg.Avg {
				sum := int64(out[off][g])
				cnt := int64(out[off+1][g])
				if cnt == 0 {
					col = append(col, 0)
					fcol = append(fcol, 0)
				} else {
					col = append(col, sum/cnt)
					fcol = append(fcol, float64(sum)/float64(cnt))
				}
			} else {
				v := int64(out[off][g])
				col = append(col, v)
				fcol = append(fcol, float64(v))
			}
		}
		res.Aggs[si] = col
		res.AggsFloat[si] = fcol
	}
}

// mergeInMemory is the oracle's whole-partition merge (map merge plus
// finalization), kept under its historical name for the tests that drive
// it directly.
func (e *extExec) mergeInMemory(keys []uint64, partials [][]uint64, res *Result) {
	outKeys, out := mergeRowsMap(e.plan, keys, partials)
	e.appendFinalized(outKeys, out, res)
}
