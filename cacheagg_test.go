package cacheagg

import (
	"math"
	"sort"
	"testing"

	"cacheagg/internal/datagen"
)

func opts() Options {
	return Options{Workers: 2, CacheBytes: 64 << 10}
}

func TestQuickstartShape(t *testing.T) {
	stores := []uint64{1, 2, 1, 3, 2, 1}
	revenue := []int64{10, 20, 30, 40, 50, 60}
	res, err := Aggregate(Input{
		GroupBy: stores,
		Columns: [][]int64{revenue},
		Aggregates: []AggSpec{
			{Func: Count},
			{Func: Sum, Col: 0},
			{Func: Avg, Col: 0},
		},
	}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d", res.Len())
	}
	byKey := map[uint64][3]int64{}
	for i, g := range res.Groups {
		byKey[g] = [3]int64{res.Aggs[0][i], res.Aggs[1][i], res.Aggs[2][i]}
	}
	want := map[uint64][3]int64{
		1: {3, 100, 33}, // avg 100/3 truncated
		2: {2, 70, 35},
		3: {1, 40, 40},
	}
	for k, w := range want {
		if byKey[k] != w {
			t.Fatalf("group %d = %v, want %v", k, byKey[k], w)
		}
	}
	// Exact float average for group 1.
	for i, g := range res.Groups {
		if g == 1 {
			if got := res.Float(2, i); math.Abs(got-100.0/3.0) > 1e-9 {
				t.Fatalf("Float avg = %v", got)
			}
			if got := res.Float(1, i); got != 100 {
				t.Fatalf("Float sum = %v", got)
			}
		}
	}
}

func TestDistinctAPI(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 20000, K: 5000, Seed: 1})
	groups, err := Distinct(keys, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != datagen.CountDistinct(keys) {
		t.Fatalf("distinct = %d, want %d", len(groups), datagen.CountDistinct(keys))
	}
}

func TestGroupCountAPI(t *testing.T) {
	keys := []uint64{9, 9, 9, 4}
	groups, counts, err := GroupCount(keys, opts())
	if err != nil {
		t.Fatal(err)
	}
	m := map[uint64]int64{}
	for i, g := range groups {
		m[g] = counts[i]
	}
	if m[9] != 3 || m[4] != 1 {
		t.Fatalf("counts = %v", m)
	}
}

func TestAllStrategyConstructors(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.MovingCluster, N: 30000, K: 10000, Seed: 2})
	want := datagen.CountDistinct(keys)
	for _, s := range []Strategy{
		{}, // zero value = adaptive
		AdaptiveStrategy(),
		AdaptiveStrategyTuned(5, 3),
		HashingOnlyStrategy(),
		PartitionAlwaysStrategy(1),
		PartitionOnlyStrategy(),
	} {
		o := opts()
		o.Strategy = s
		groups, err := Distinct(keys, o)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(groups) != want {
			t.Fatalf("%s: %d groups, want %d", s.Name(), len(groups), want)
		}
	}
}

func TestStrategyNamesExposed(t *testing.T) {
	if AdaptiveStrategy().Name() == "" || (Strategy{}).Name() == "" {
		t.Fatal("names must be non-empty")
	}
	if (Strategy{}).Name() != AdaptiveStrategy().Name() {
		t.Fatal("zero strategy should present as adaptive")
	}
}

func TestFuncString(t *testing.T) {
	want := map[Func]string{Count: "COUNT", Sum: "SUM", Min: "MIN", Max: "MAX", Avg: "AVG"}
	for f, w := range want {
		if f.String() != w {
			t.Fatalf("%d.String() = %q", int(f), f.String())
		}
	}
}

func TestInvalidFuncRejected(t *testing.T) {
	_, err := Aggregate(Input{
		GroupBy:    []uint64{1},
		Aggregates: []AggSpec{{Func: Func(42)}},
	}, Options{})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestMismatchedColumnsRejected(t *testing.T) {
	_, err := Aggregate(Input{
		GroupBy:    []uint64{1, 2},
		Columns:    [][]int64{{5}},
		Aggregates: []AggSpec{{Func: Sum, Col: 0}},
	}, Options{})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestStatsExposed(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 100000, K: 60000, Seed: 3})
	o := opts()
	o.CollectStats = true
	res, err := Aggregate(Input{GroupBy: keys}, o)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Passes < 2 || len(st.LevelNanos) != st.Passes || len(st.LevelRows) != st.Passes {
		t.Fatalf("stats shape wrong: %+v", st)
	}
	if st.HashedRows+st.PartitionedRows == 0 || st.TablesEmitted == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.MeanAlpha <= 0 {
		t.Fatalf("mean alpha = %v", st.MeanAlpha)
	}
}

func TestHashOrderExposed(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 50000, K: 30000, Seed: 4})
	res, err := Aggregate(Input{GroupBy: keys}, opts())
	if err != nil {
		t.Fatal(err)
	}
	hs := res.Hashes()
	if len(hs) != res.Len() {
		t.Fatal("hash column length mismatch")
	}
	if sort.SliceIsSorted(hs, func(i, j int) bool { return hs[i] < hs[j] }) {
		// Fully sorted is possible but not required; the guarantee is
		// non-decreasing top digits. Either way this branch is fine.
		return
	}
	for i := 1; i < len(hs); i++ {
		if hs[i]>>56 < hs[i-1]>>56 {
			t.Fatalf("bucket order violated at %d", i)
		}
	}
}

func TestEmptyInputAPI(t *testing.T) {
	res, err := Aggregate(Input{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatal("empty input should give empty result")
	}
}

func TestLargeDefaultOptionsPath(t *testing.T) {
	// Exercise the real defaults (4 MiB cache, GOMAXPROCS workers).
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Zipf, N: 200000, K: 50000, Seed: 5})
	groups, counts, err := GroupCount(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != datagen.CountDistinct(keys) {
		t.Fatal("wrong group count")
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(len(keys)) {
		t.Fatalf("counts sum to %d, want %d", total, len(keys))
	}
}

func TestResultIndex(t *testing.T) {
	res, err := Aggregate(Input{GroupBy: []uint64{4, 9, 4, 2}}, opts())
	if err != nil {
		t.Fatal(err)
	}
	idx := res.Index()
	if len(idx) != 3 {
		t.Fatalf("index has %d entries", len(idx))
	}
	for k, i := range idx {
		if res.Groups[i] != k {
			t.Fatalf("index broken for %d", k)
		}
	}
}
