package core

// Robustness tests: panic containment, cancellation, and goroutine
// hygiene of the execution engine.

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/testutil"
)

// panicStrategy behaves like ADAPTIVE until the recursion reaches
// panicLevel, where creating the task-local state panics — inside a
// worker task of the pool.
type panicStrategy struct {
	panicLevel int
}

func (p panicStrategy) Name() string { return "panic-injector" }

func (p panicStrategy) NewState(level, cacheRows int) StrategyState {
	if level >= p.panicLevel {
		panic("injected strategy panic")
	}
	return DefaultAdaptive().NewState(level, cacheRows)
}

// cancelStrategy cancels the run's context the n-th time a task asks for
// decision state at or above the given level, then behaves adaptively.
type cancelStrategy struct {
	cancel context.CancelFunc
	level  int
	after  int
	calls  *atomic.Int64
}

func (c cancelStrategy) Name() string { return "cancel-injector" }

func (c cancelStrategy) NewState(level, cacheRows int) StrategyState {
	if level >= c.level && c.calls.Add(1) == int64(c.after) {
		c.cancel()
	}
	return DefaultAdaptive().NewState(level, cacheRows)
}

// distinctKeys builds an all-distinct key column, the workload that forces
// recursion past level 0 at a small cache budget.
func distinctKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys
}

func TestPanicInIntakeTaskReturnsError(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := Config{Strategy: panicStrategy{panicLevel: 0}, Workers: 4, CacheBytes: 32 << 10}
	res, err := Aggregate(cfg, &Input{Keys: distinctKeys(100000)})
	if err == nil {
		t.Fatal("panicking task must surface as an error")
	}
	if res != nil {
		t.Fatal("failed aggregation must not return a result")
	}
	if !strings.Contains(err.Error(), "injected strategy panic") {
		t.Fatalf("error lost the panic value: %v", err)
	}
}

func TestPanicInRecursionTaskReturnsError(t *testing.T) {
	// CacheBytes at the floor keeps finalRows tiny, so level-0 buckets
	// exceed the leaf threshold and the recursion calls NewState(1, ·).
	cfg := Config{Strategy: panicStrategy{panicLevel: 1}, Workers: 4, CacheBytes: 1024}
	_, err := Aggregate(cfg, &Input{Keys: distinctKeys(400000)})
	if err == nil {
		t.Fatal("expected error from panicking recursion task")
	}
	if !strings.Contains(err.Error(), "injected strategy panic") {
		t.Fatalf("error lost the panic value: %v", err)
	}
}

func TestPanickingAggregateKindReturnsError(t *testing.T) {
	// An invalid aggregate kind panics deep inside the layout machinery;
	// Aggregate must contain it and hand back an error.
	col := []int64{1, 2, 3}
	_, err := Aggregate(Config{Workers: 2}, &Input{
		Keys:    []uint64{1, 2, 3},
		AggCols: [][]int64{col},
		Specs:   []agg.Spec{{Kind: agg.Kind(99), Col: 0}},
	})
	if err == nil {
		t.Fatal("invalid aggregate kind must return an error, not panic")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AggregateContext(ctx, Config{Workers: 2}, &Input{Keys: distinctKeys(1000)})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled call must not return a result")
	}
}

func TestCancelMidIntake(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		// Cancel on the 2nd intake task's state creation: workers are
		// mid-input when the signal lands.
		Strategy:   cancelStrategy{cancel: cancel, level: 0, after: 2, calls: new(atomic.Int64)},
		Workers:    4,
		CacheBytes: 32 << 10,
		MorselRows: 1024,
	}
	_, err := AggregateContext(ctx, cfg, &Input{Keys: distinctKeys(200000)})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelMidRecursion(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Strategy:   cancelStrategy{cancel: cancel, level: 1, after: 1, calls: new(atomic.Int64)},
		Workers:    4,
		CacheBytes: 1024,
	}
	_, err := AggregateContext(ctx, cfg, &Input{Keys: distinctKeys(400000)})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestContextVariantsMatchPlain(t *testing.T) {
	// The context-threading refactor must not change results. Row order
	// within one hash block depends on which worker inserted first (linear
	// probing breaks ties by insertion order), so the two runs are compared
	// as sets, not row-by-row.
	keys := distinctKeys(50000)
	for i := range keys {
		keys[i] = uint64(i % 777)
	}
	plain, err := Distinct(Config{Workers: 2, CacheBytes: 32 << 10}, keys)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := DistinctContext(context.Background(), Config{Workers: 2, CacheBytes: 32 << 10}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Groups() != 777 || ctxed.Groups() != plain.Groups() {
		t.Fatalf("groups: plain %d, ctx %d, want 777", plain.Groups(), ctxed.Groups())
	}
	seen := make(map[uint64]bool, plain.Groups())
	for _, k := range plain.Keys {
		if seen[k] {
			t.Fatalf("duplicate key %d in plain result", k)
		}
		seen[k] = true
	}
	for _, k := range ctxed.Keys {
		if !seen[k] {
			t.Fatalf("key %d in ctx result but not in plain result", k)
		}
	}
}
