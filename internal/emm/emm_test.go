package emm

import "testing"

func fp() Params { return FigureParams() }

func TestParamsValid(t *testing.T) {
	if !fp().Valid() {
		t.Fatal("figure params must be valid")
	}
	if (Params{N: 0, M: 16, B: 16}).Valid() {
		t.Fatal("N=0 should be invalid")
	}
	if (Params{N: 1, M: 8, B: 16}).Valid() {
		t.Fatal("M<B should be invalid")
	}
}

func TestPassesToLeaves(t *testing.T) {
	p := fp() // fanout = 2^16/16 = 4096
	cases := []struct {
		leaves int64
		want   int64
	}{
		{1, 0}, {2, 1}, {4096, 1}, {4097, 2}, {4096 * 4096, 2}, {4096*4096 + 1, 3},
	}
	for _, c := range cases {
		if got := p.passesToLeaves(c.leaves); got != c.want {
			t.Errorf("passesToLeaves(%d) = %d, want %d", c.leaves, got, c.want)
		}
	}
}

func TestSortAggOptInCacheIsSinglePass(t *testing.T) {
	p := fp()
	// K ≤ M: read input once, write output once.
	for _, K := range []int64{1, 100, p.M} {
		want := p.N/p.B + (K+p.B-1)/p.B
		if got := SortAggOpt(p, K); got != want {
			t.Errorf("SortAggOpt(K=%d) = %d, want %d", K, got, want)
		}
	}
}

func TestHashAggInCacheMatchesOpt(t *testing.T) {
	p := fp()
	for _, K := range []int64{1, p.M / 2, p.M} {
		if HashAgg(p, K) != SortAggOpt(p, K) {
			t.Errorf("K=%d: in-cache hash %d != opt %d", K, HashAgg(p, K), SortAggOpt(p, K))
		}
	}
}

func TestHashAggExplodesBeyondCache(t *testing.T) {
	p := fp()
	inCache := HashAgg(p, p.M)
	justOver := HashAgg(p, p.M*4)
	// At K = 4M, 3/4 of rows miss: ~1.5·N extra transfers vs N/B base —
	// more than an order of magnitude more than the in-cache cost.
	if justOver < inCache*10 {
		t.Fatalf("expected explosion: in-cache %d, 4M %d", inCache, justOver)
	}
	// Monotone growth toward 2N asymptote.
	if HashAgg(p, p.N) <= justOver {
		t.Fatal("HashAgg must keep growing with K")
	}
	if HashAgg(p, p.N) > 2*p.N+p.N/p.B+p.N/p.B+p.B {
		t.Fatal("HashAgg exceeded its 2N asymptote")
	}
}

func TestHashingIsSorting(t *testing.T) {
	// The paper's central claim: the two optimized algorithms have exactly
	// the same cost for every K.
	p := fp()
	for K := int64(1); K <= p.N; K *= 2 {
		if HashAggOpt(p, K) != SortAggOpt(p, K) {
			t.Fatalf("K=%d: HashAggOpt %d != SortAggOpt %d", K, HashAggOpt(p, K), SortAggOpt(p, K))
		}
	}
}

func TestOptimizedNeverWorseThanNaive(t *testing.T) {
	p := fp()
	for K := int64(1); K <= p.N; K *= 2 {
		if SortAggOpt(p, K) > SortAgg(p, K) {
			t.Errorf("K=%d: opt sort %d worse than naive %d", K, SortAggOpt(p, K), SortAgg(p, K))
		}
		if HashAggOpt(p, K) > HashAgg(p, K) {
			t.Errorf("K=%d: opt hash %d worse than naive %d", K, HashAggOpt(p, K), HashAgg(p, K))
		}
		if SortAgg(p, K) > SortAggStatic(p, K) {
			t.Errorf("K=%d: multiset-aware sort %d worse than static %d", K, SortAgg(p, K), SortAggStatic(p, K))
		}
	}
}

func TestSortAggStaircase(t *testing.T) {
	// The multiset-aware sort cost is a non-decreasing staircase in K with
	// at most 4 pass levels for the figure parameters (log values 1..3 in
	// the paper's plot, plus the in-cache level).
	p := fp()
	prev := int64(0)
	levels := map[int64]bool{}
	for K := int64(1); K <= p.N; K *= 2 {
		c := SortAgg(p, K)
		if c < prev {
			t.Fatalf("cost decreased at K=%d", K)
		}
		prev = c
		leaves := minI(ceilDiv(p.N, p.M), K)
		levels[p.passesToLeaves(leaves)] = true
	}
	if len(levels) > 4 {
		t.Fatalf("too many staircase levels: %v", levels)
	}
}

func TestSortAggOptEliminatesOnePass(t *testing.T) {
	// For large K (where both do the maximum number of passes), the
	// optimized variant must save exactly one full read+write pass:
	// 2·(N/B) transfers.
	p := fp()
	// K = 2^25: naive needs 2 partition passes + separate aggregation
	// pass, optimized needs 1 partition pass + fused final pass.
	K := int64(1) << 25
	diff := SortAgg(p, K) - SortAggOpt(p, K)
	if diff < 2*(p.N/p.B)-int64(p.B) {
		t.Fatalf("optimization saved only %d transfers, expected ≥ one pass (%d)", diff, 2*(p.N/p.B))
	}
}

func TestFigure1Rows(t *testing.T) {
	rows := Figure1(fp())
	if len(rows) != 33 { // K = 2^0 .. 2^32
		t.Fatalf("got %d rows, want 33", len(rows))
	}
	if rows[0].K != 1 || rows[32].K != 1<<32 {
		t.Fatalf("K range wrong: %d .. %d", rows[0].K, rows[32].K)
	}
	for _, r := range rows {
		if r.HashAggOpt != r.SortAggOpt {
			t.Fatalf("K=%d: figure rows must show equal optimized costs", r.K)
		}
	}
}

func TestDegenerateCacheDoesNotLoopForever(t *testing.T) {
	p := Params{N: 1024, M: 16, B: 16} // fanout 1: degenerate
	if got := p.passesToLeaves(100); got < 1<<20 {
		t.Fatalf("degenerate fanout should yield sentinel, got %d", got)
	}
}
