package serve

// The cancellation hammer: hundreds of queries against a budget-starved
// server, each client cancelling at a randomized point — while queued for
// admission, while the in-memory build runs, while the degraded run is
// spilling or merging. Whatever the timing, the service must come out
// clean: no leaked goroutines, no leaked spill files, a ledger at zero,
// and not a single untyped outcome or panic.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cacheagg"
	"cacheagg/internal/testutil"
)

func TestCancellationHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer is seconds-long; skipped in -short")
	}
	testutil.VerifyNoLeaks(t)

	// Corral spill files: every degraded run's spill directory lands under
	// this test-owned TMPDIR, so leftovers are provable leaks.
	spillRoot := t.TempDir()
	t.Setenv("TMPDIR", spillRoot)

	const rows = 1 << 16
	reg := testRegistry(t, rows)
	est := EstimateCost(rows, 2, 1, 64<<10)
	s, ts := newTestServer(t, Config{
		Registry: reg,
		Admission: AdmitConfig{
			// Two concurrent grants and a deep queue: most of the hammer
			// waits in the admission queue, and grants degrade to the
			// spilling floor under pressure — so cancels land in every
			// state: queued, reserving, building, spilling, merging.
			BudgetBytes:   2 * est,
			MaxQueue:      64,
			ShrinkAfter:   10 * time.Millisecond,
			ExternalAfter: 25 * time.Millisecond,
			MaxWait:       10 * time.Second,
			MinGrantBytes: 2 << 20,
		},
		QueryWorkers:    1,
		QueryCacheBytes: 64 << 10,
		// No result cache: cancellation must hit live executions, not
		// memoized bodies.
		ResultCacheBytes: 0,
	})

	httpc := &http.Client{Transport: &http.Transport{}}
	defer httpc.CloseIdleConnections()

	// Direct-call baselines for content checks on whatever completes.
	d, _ := reg.Lookup("events")
	baseline := make([]*cacheagg.Result, len(drillSpecs))
	for i, specs := range drillSpecs {
		res, err := cacheagg.Aggregate(cacheagg.Input{
			GroupBy: d.Keys, Columns: d.Cols, Aggregates: specs,
		}, cacheagg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res
	}

	const queries = 300
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, queries)
	for i := range delays {
		// Log-uniform 50µs..1.6s: early cancels land while queued, late
		// ones mid-build or mid-spill, the latest after completion.
		delays[i] = time.Duration(float64(50*time.Microsecond) *
			math.Pow(2, rng.Float64()*15))
	}

	var wg sync.WaitGroup
	failures := make(chan error, queries)
	sem := make(chan struct{}, 48)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(delays[i], cancel)
			defer timer.Stop()
			defer cancel()

			shape := i % len(drillShapes)
			// Every fifth query also carries a tight server-side deadline,
			// so the deadline path is hammered alongside client cancels.
			deadline := ""
			if i%5 == 0 {
				deadline = fmt.Sprintf(`,"deadline_ms":%d`, 1+i%50)
			}
			body := fmt.Sprintf(`{"dataset":"events","aggregates":%s,"no_cache":true%s}`,
				drillShapes[shape], deadline)
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/aggregate", strings.NewReader(body))
			if err != nil {
				failures <- err
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := httpc.Do(req)
			if err != nil {
				// The only legitimate transport failure is our own cancel.
				if errors.Is(err, context.Canceled) {
					return
				}
				failures <- fmt.Errorf("query %d: transport: %w", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				wantFloats := strings.Contains(drillShapes[shape], "avg")
				if err := checkBitIdentical(resp.Body, baseline[shape], wantFloats); err != nil {
					// A cancel racing the response body read is fine; a
					// content mismatch is not.
					if ctx.Err() != nil {
						return
					}
					failures <- fmt.Errorf("query %d: %w", i, err)
				}
				return
			}
			code, err := decodeErrorCode(resp.Body)
			if err != nil {
				if ctx.Err() != nil {
					return // body read torn down by our cancel
				}
				failures <- fmt.Errorf("query %d: %w", i, err)
				return
			}
			switch code {
			case ErrAdmissionQueueFull.Code, ErrBudgetUnavailable.Code,
				ErrShed.Code, ErrCancelled.Code, ErrDeadline.Code:
			default:
				failures <- fmt.Errorf("query %d: unexpected outcome %q", i, code)
			}
		}(i)
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Error(err)
	}

	if err := s.Drain(contextWithTimeout(t, 30*time.Second)); err != nil {
		t.Fatalf("drain after hammer: %v", err)
	}
	t.Logf("hammer: admitted=%d queued=%d shrunk=%d external=%d succeeded=%d cancelled=%d deadline=%d queue_full=%d shed=%d",
		s.metrics.Admitted.Load(), s.metrics.QueuedAdmitted.Load(),
		s.metrics.DegradedShrunk.Load(), s.metrics.DegradedExternal.Load(),
		s.metrics.Succeeded.Load(), s.metrics.Cancelled.Load(),
		s.metrics.DeadlineExpired.Load(), s.metrics.RejectedQueue.Load(),
		s.metrics.Shed.Load())
	if got := s.ctrl.Ledger().Reserved(); got != 0 {
		t.Errorf("ledger reserved = %d after drain, want 0", got)
	}
	if got := s.ctrl.Ledger().Waiting(); got != 0 {
		t.Errorf("ledger waiters = %d after drain, want 0", got)
	}
	if got := s.ctrl.QueueLen(); got != 0 {
		t.Errorf("admission queue = %d after drain, want 0", got)
	}
	if got := s.metrics.Panics.Load(); got != 0 {
		t.Errorf("panics = %d, want 0", got)
	}
	if got := s.metrics.InternalErrors.Load(); got != 0 {
		t.Errorf("internal errors = %d, want 0", got)
	}

	// Every spill directory must be gone: cancelled mid-spill or not,
	// the external layer removes its temp tree on every exit path.
	leftovers, err := filepath.Glob(filepath.Join(spillRoot, "cacheagg-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("leaked spill directories: %v", leftovers)
	}
	// And nothing else either — the root was created for this test.
	entries, err := os.ReadDir(spillRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("unexpected file in spill root: %s", e.Name())
	}
}
