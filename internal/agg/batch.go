package agg

// Batch (morsel-wide) fold and merge kernels.
//
// The scalar entry points (Kind.Fold, Layout.FoldRow, Op.Apply) dispatch on
// the aggregate kind per row — fine as a reference implementation, but the
// dispatch and the per-row closure dominate the cost of the actual combine
// on the hot path. The kernels below are the batched counterparts: the
// operation is selected ONCE per run (per state word), and the per-row loop
// is a monomorphic, branch-predictable pass over a gathered batch.
//
// All kernels operate on one state column at a time ("word-major" order):
// for a batch of rows that has already been assigned slots in a state
// column, the kernel folds every row's contribution of that word before the
// next word is touched. Because every state word combines with a single
// commutative, associative operation (see WordOp), word-major application
// is bitwise identical to the scalar row-major order — this is what the
// differential tests pin down.

// ColumnFolder folds a gathered batch of raw int64 contributions into one
// state column: for each j, states[slots[j]] = op(states[slots[j]], values[j]).
// Kernels for SrcOne words ignore values (it may be nil).
type ColumnFolder func(states []uint64, slots []int32, values []int64)

// ColumnMerger merges a gathered batch of partial-state words into one
// state column: for each j, states[slots[j]] = op(states[slots[j]], src[j]).
type ColumnMerger func(states []uint64, slots []int32, src []uint64)

// FoldColumnAdd is the monomorphic SUM kernel (also COUNT's super-aggregate
// word when folding partials): wrapping signed addition.
func FoldColumnAdd(states []uint64, slots []int32, values []int64) {
	_ = values[:len(slots)]
	for j, s := range slots {
		states[s] = uint64(int64(states[s]) + values[j])
	}
}

// FoldColumnCount is the monomorphic COUNT kernel: every row contributes 1,
// so the values slice is ignored entirely.
func FoldColumnCount(states []uint64, slots []int32, _ []int64) {
	for _, s := range slots {
		states[s]++
	}
}

// FoldColumnMin is the monomorphic MIN kernel.
func FoldColumnMin(states []uint64, slots []int32, values []int64) {
	_ = values[:len(slots)]
	for j, s := range slots {
		if values[j] < int64(states[s]) {
			states[s] = uint64(values[j])
		}
	}
}

// FoldColumnMax is the monomorphic MAX kernel.
func FoldColumnMax(states []uint64, slots []int32, values []int64) {
	_ = values[:len(slots)]
	for j, s := range slots {
		if values[j] > int64(states[s]) {
			states[s] = uint64(values[j])
		}
	}
}

// ColumnFolder returns the monomorphic fold kernel of the word: the dispatch
// happens here, once, instead of per row.
func (w WordOp) ColumnFolder() ColumnFolder {
	if w.Src == SrcOne {
		// Counting words always combine by addition of 1.
		return FoldColumnCount
	}
	switch w.Op {
	case OpAdd:
		return FoldColumnAdd
	case OpMin:
		return FoldColumnMin
	case OpMax:
		return FoldColumnMax
	default:
		panic("agg: invalid op")
	}
}

// MergeColumnAdd is the monomorphic addition merge kernel.
func MergeColumnAdd(states []uint64, slots []int32, src []uint64) {
	_ = src[:len(slots)]
	for j, s := range slots {
		states[s] = uint64(int64(states[s]) + int64(src[j]))
	}
}

// MergeColumnMin is the monomorphic minimum merge kernel.
func MergeColumnMin(states []uint64, slots []int32, src []uint64) {
	_ = src[:len(slots)]
	for j, s := range slots {
		if int64(src[j]) < int64(states[s]) {
			states[s] = src[j]
		}
	}
}

// MergeColumnMax is the monomorphic maximum merge kernel.
func MergeColumnMax(states []uint64, slots []int32, src []uint64) {
	_ = src[:len(slots)]
	for j, s := range slots {
		if int64(src[j]) > int64(states[s]) {
			states[s] = src[j]
		}
	}
}

// ColumnMerger returns the monomorphic merge kernel of the operation.
func (o Op) ColumnMerger() ColumnMerger {
	switch o {
	case OpAdd:
		return MergeColumnAdd
	case OpMin:
		return MergeColumnMin
	case OpMax:
		return MergeColumnMax
	default:
		panic("agg: invalid op")
	}
}

// FoldColumn is the generic (dispatch-per-call) batch fold, the reference
// for the monomorphic kernels above: for each j it folds values[j] — or 1
// for SrcOne words — into states[slots[j]] with the word's operation.
func (w WordOp) FoldColumn(states []uint64, slots []int32, values []int64) {
	w.ColumnFolder()(states, slots, values)
}

// Kernels bundles the pre-selected batch kernels of a layout: one fold and
// one merge kernel per state word, resolved once per run. Word w of a raw
// input row reads Cols[w] (-1 for counting words, whose folder ignores it).
// Ops keeps the underlying word descriptions for scalar fallbacks and slot
// initialization.
type Kernels struct {
	Fold  []ColumnFolder
	Merge []ColumnMerger
	Cols  []int
	Ops   []WordOp
}

// Kernels resolves the layout's per-word batch kernels.
func (l *Layout) Kernels() *Kernels {
	ops := l.WordOps()
	k := &Kernels{
		Fold:  make([]ColumnFolder, len(ops)),
		Merge: make([]ColumnMerger, len(ops)),
		Cols:  make([]int, len(ops)),
		Ops:   ops,
	}
	for w, op := range ops {
		k.Fold[w] = op.ColumnFolder()
		k.Merge[w] = op.Op.ColumnMerger()
		if op.Src == SrcOne {
			k.Cols[w] = -1
		} else {
			k.Cols[w] = op.Col
		}
	}
	return k
}
