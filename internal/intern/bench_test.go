package intern

import (
	"fmt"
	"testing"
)

// The steady-state benchmarks back the docs/PERFORMANCE.md interning-cost
// numbers: ns/row for already-interned keys (the hot path during a long
// aggregation) and for first-appearance inserts (dictionary build).

func benchColumns(n, distinct int) []Column {
	u := make([]uint64, n)
	s := make([]string, n)
	for i := range u {
		k := i % distinct
		u[i] = uint64(k)
		s[i] = fmt.Sprintf("https://bench.example/item/%d", k)
	}
	return []Column{{U64: u}, {Str: s}}
}

func BenchmarkEncodeColumnsSteadyState(b *testing.B) {
	const n = 8192
	cols := benchColumns(n, 4096)
	it := New()
	enc := it.NewEncoder()
	ids := make([]uint64, n)
	if err := enc.EncodeColumns(cols, ids); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.EncodeColumns(cols, ids); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/row")
}

func BenchmarkEncodeColumnsStringOnly(b *testing.B) {
	const n = 8192
	cols := benchColumns(n, 4096)[1:2]
	it := New()
	enc := it.NewEncoder()
	ids := make([]uint64, n)
	if err := enc.EncodeColumns(cols, ids); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.EncodeColumns(cols, ids); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/row")
}

func BenchmarkEncodeColumnsInsert(b *testing.B) {
	const n = 8192
	cols := benchColumns(n, n) // every key distinct within a batch
	ids := make([]uint64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := New()
		enc := it.NewEncoder()
		if err := enc.EncodeColumns(cols, ids); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/row")
}

func BenchmarkDecodeColumns(b *testing.B) {
	const n = 4096
	cols := benchColumns(n, n)
	it := New()
	enc := it.NewEncoder()
	ids := make([]uint64, n)
	if err := enc.EncodeColumns(cols, ids); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.DecodeColumns(ids, []ColType{U64Col, StrCol}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/row")
}
