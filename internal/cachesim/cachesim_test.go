package cachesim

import "testing"

func TestCacheGeometry(t *testing.T) {
	c := NewCache(1024, 16)
	if c.LineWords() != 16 || c.CapacityLines() != 64 {
		t.Fatalf("geometry %d/%d", c.LineWords(), c.CapacityLines())
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	for i, f := range []func(){
		func() { NewCache(8, 16) },
		func() { NewCache(16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSequentialReadsMissOncePerLine(t *testing.T) {
	m := NewMachine(1024, 16)
	a := m.NewArray(160) // 10 lines
	for i := 0; i < a.Len(); i++ {
		a.Read(i)
	}
	if m.Cache.Misses() != 10 {
		t.Fatalf("misses = %d, want 10", m.Cache.Misses())
	}
	if m.Cache.Hits() != 150 {
		t.Fatalf("hits = %d, want 150", m.Cache.Hits())
	}
	if m.Cache.Writebacks() != 0 {
		t.Fatalf("writebacks = %d, want 0", m.Cache.Writebacks())
	}
}

func TestRepeatedAccessWithinCapacityHits(t *testing.T) {
	m := NewMachine(1024, 16)
	a := m.NewArray(512) // 32 lines, fits in 64-line cache
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < a.Len(); i++ {
			a.Read(i)
		}
	}
	if m.Cache.Misses() != 32 {
		t.Fatalf("misses = %d, want 32 (compulsory only)", m.Cache.Misses())
	}
}

func TestThrashingBeyondCapacity(t *testing.T) {
	m := NewMachine(256, 16) // 16 lines
	a := m.NewArray(512)     // 32 lines
	// Two sequential passes over 2× the cache: LRU evicts everything
	// before reuse, so every line misses in both passes.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < a.Len(); i += 16 {
			a.Read(i)
		}
	}
	if m.Cache.Misses() != 64 {
		t.Fatalf("misses = %d, want 64", m.Cache.Misses())
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	m := NewMachine(256, 16) // 16 lines
	a := m.NewArray(16 * 17) // 17 lines
	for i := 0; i < a.Len(); i += 16 {
		a.Write(i, 1)
	}
	// 17 misses; the 17th access evicts one dirty line.
	if m.Cache.Misses() != 17 {
		t.Fatalf("misses = %d", m.Cache.Misses())
	}
	if m.Cache.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", m.Cache.Writebacks())
	}
}

func TestFlushWritesBackDirtyLines(t *testing.T) {
	m := NewMachine(1024, 16)
	a := m.NewArray(64) // 4 lines
	for i := 0; i < a.Len(); i++ {
		a.Write(i, uint64(i))
	}
	b := m.NewArray(32) // 2 lines, read-only
	for i := 0; i < b.Len(); i++ {
		b.Read(i)
	}
	m.Cache.Flush()
	if m.Cache.Writebacks() != 4 {
		t.Fatalf("writebacks = %d, want 4 (only dirty lines)", m.Cache.Writebacks())
	}
	if m.Cache.Transfers() != 6+4 {
		t.Fatalf("transfers = %d, want 10", m.Cache.Transfers())
	}
}

func TestLRUOrderIsExact(t *testing.T) {
	m := NewMachine(32, 16) // 2 lines
	a := m.NewArray(48)     // 3 lines: L0, L1, L2
	a.Read(0)               // L0 in
	a.Read(16)              // L1 in
	a.Read(0)               // L0 MRU
	a.Read(32)              // L2 evicts L1 (LRU)
	m.Cache.ResetStats()
	a.Read(0) // must still hit
	if m.Cache.Misses() != 0 {
		t.Fatal("L0 was evicted but should have been MRU")
	}
	a.Read(16) // must miss (was evicted)
	if m.Cache.Misses() != 1 {
		t.Fatal("L1 should have been evicted")
	}
}

func TestArrayDataIntegrity(t *testing.T) {
	m := NewMachine(256, 16)
	a := m.NewArray(1000)
	for i := 0; i < a.Len(); i++ {
		a.Write(i, uint64(i*i))
	}
	for i := 0; i < a.Len(); i++ {
		if a.Read(i) != uint64(i*i) {
			t.Fatalf("element %d corrupted", i)
		}
	}
}

func TestArraysAreLineAligned(t *testing.T) {
	m := NewMachine(256, 16)
	a := m.NewArray(1) // 1 word
	b := m.NewArray(1)
	// Accessing a and b must touch different lines despite tiny sizes.
	a.Read(0)
	b.Read(0)
	if m.Cache.Misses() != 2 {
		t.Fatalf("misses = %d, want 2 (arrays must not share lines)", m.Cache.Misses())
	}
}

func TestPeekPokeFree(t *testing.T) {
	m := NewMachine(256, 16)
	a := m.NewArray(64)
	a.Poke(3, 42)
	if a.Peek(3) != 42 {
		t.Fatal("poke/peek roundtrip failed")
	}
	if m.Cache.Transfers() != 0 || m.Cache.Hits() != 0 {
		t.Fatal("peek/poke must not touch the cache")
	}
}

func TestResetStats(t *testing.T) {
	m := NewMachine(256, 16)
	a := m.NewArray(64)
	a.Read(0)
	m.Cache.ResetStats()
	if m.Cache.Misses() != 0 || m.Cache.Hits() != 0 || m.Cache.Writebacks() != 0 {
		t.Fatal("stats not reset")
	}
	// Contents survive reset.
	a.Read(0)
	if m.Cache.Hits() != 1 {
		t.Fatal("cache contents should survive ResetStats")
	}
}
