// Package faultfs defines the narrow filesystem interface the spill path of
// internal/external goes through, the passthrough implementation backed by
// the real OS, and a deterministic fault-injecting wrapper.
//
// The injector fails the N-th operation of a chosen kind (create, write,
// sync, close, read, remove) with a typed error, so tests can enumerate
// every distinct spill I/O site in turn and prove that each fault surfaces
// as a clean, wrapped error with no file handles or temp files left behind.
// Determinism matters: an injection plan is (Op, N), nothing is random, and
// the same plan always fails the same site.
package faultfs

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the subset of *os.File the spill path uses. There is
// deliberately no Sync: spill files are scratch space that dies with the
// query, so durability buys nothing — buffered-flush failures surface
// through the underlying Write, and close failures through Close.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Stat reports the file's metadata; the spill reader uses the size to
	// locate the checksum footer.
	Stat() (os.FileInfo, error)
}

// FS is the filesystem interface of the spill path.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	Remove(name string) error
}

// OS returns the passthrough FS backed by package os.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Remove(name string) error { return os.Remove(name) }

// Op identifies a kind of filesystem operation for counting and injection.
type Op int

const (
	OpCreate Op = iota
	OpOpen
	OpWrite
	OpClose
	OpRead
	OpRemove
	numOps
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpClose:
		return "close"
	case OpRead:
		return "read"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// InjectedError is the error returned by an injected fault.
type InjectedError struct {
	Op Op  // the failed operation kind
	N  int // which occurrence failed (1-based)
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultfs: injected %s failure (occurrence %d)", e.Op, e.N)
}

// Injector wraps an FS and fails the N-th operation of one kind. It is
// safe for concurrent use.
type Injector struct {
	inner FS
	op    Op
	n     int // 1-based; <= 0 never triggers

	mu        sync.Mutex
	counts    [numOps]int
	triggered bool
}

// NewInjector wraps inner so that the n-th operation of kind op (1-based)
// fails with *InjectedError. All other operations pass through. n <= 0
// disables injection, leaving a pure operation counter.
func NewInjector(inner FS, op Op, n int) *Injector {
	return &Injector{inner: inner, op: op, n: n}
}

// Triggered reports whether the planned fault has fired.
func (i *Injector) Triggered() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.triggered
}

// Count returns how many operations of the kind have been attempted
// (including the failed one).
func (i *Injector) Count(op Op) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[op]
}

// step counts one operation and decides whether it is the one to fail.
func (i *Injector) step(op Op) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts[op]++
	if op == i.op && i.counts[op] == i.n {
		i.triggered = true
		return &InjectedError{Op: op, N: i.n}
	}
	return nil
}

func (i *Injector) Create(name string) (File, error) {
	if err := i.step(OpCreate); err != nil {
		return nil, err
	}
	f, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i}, nil
}

func (i *Injector) Open(name string) (File, error) {
	if err := i.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i}, nil
}

func (i *Injector) Remove(name string) error {
	if err := i.step(OpRemove); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

// injFile counts and injects at the per-file operations. A failing Close
// still closes the underlying file, so the injector never leaks a real
// file descriptor into the test process.
type injFile struct {
	f   File
	inj *Injector
}

func (f *injFile) Read(p []byte) (int, error) {
	if err := f.inj.step(OpRead); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	if err := f.inj.step(OpWrite); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *injFile) Close() error {
	err := f.inj.step(OpClose)
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (f *injFile) Stat() (os.FileInfo, error) { return f.f.Stat() }
