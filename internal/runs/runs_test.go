package runs

import (
	"testing"
	"testing/quick"

	"cacheagg/internal/xrand"
)

func TestWriterSingleChunk(t *testing.T) {
	w := NewWriter(10, 2)
	for i := 0; i < 5; i++ {
		w.Append(uint64(i*100), uint64(i), []uint64{uint64(i), uint64(i * 2)})
	}
	if w.Rows() != 5 {
		t.Fatalf("Rows = %d, want 5", w.Rows())
	}
	rs := w.Seal()
	if len(rs) != 1 {
		t.Fatalf("got %d runs, want 1", len(rs))
	}
	r := rs[0]
	if err := r.Validate(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if r.Hashes[i] != uint64(i*100) || r.Keys[i] != uint64(i) ||
			r.States[0][i] != uint64(i) || r.States[1][i] != uint64(i*2) {
			t.Fatalf("row %d corrupted: %v %v %v", i, r.Hashes[i], r.Keys[i], r.States)
		}
	}
}

func TestWriterChunking(t *testing.T) {
	w := NewWriter(4, 0)
	for i := 0; i < 11; i++ {
		w.Append(uint64(i), uint64(i), nil)
	}
	rs := w.Seal()
	if len(rs) != 3 {
		t.Fatalf("got %d runs, want 3 (4+4+3)", len(rs))
	}
	wantLens := []int{4, 4, 3}
	next := uint64(0)
	for i, r := range rs {
		if r.Len() != wantLens[i] {
			t.Fatalf("run %d has %d rows, want %d", i, r.Len(), wantLens[i])
		}
		for _, k := range r.Keys {
			if k != next {
				t.Fatalf("order broken: got %d want %d", k, next)
			}
			next++
		}
	}
}

func TestWriterSealTwice(t *testing.T) {
	w := NewWriter(4, 0)
	w.Append(1, 1, nil)
	first := w.Seal()
	if len(first) != 1 {
		t.Fatalf("first seal: %d runs", len(first))
	}
	second := w.Seal()
	if len(second) != 0 {
		t.Fatalf("second seal should be empty, got %d runs", len(second))
	}
	// Writer remains usable.
	w.Append(2, 2, nil)
	third := w.Seal()
	if len(third) != 1 || third[0].Keys[0] != 2 {
		t.Fatalf("writer unusable after seal: %v", third)
	}
}

func TestWriterDefaultChunkRows(t *testing.T) {
	w := NewWriter(0, 0)
	if w.chunkRows != DefaultChunkRows {
		t.Fatalf("chunkRows = %d, want %d", w.chunkRows, DefaultChunkRows)
	}
}

func TestWriterNegativeWordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWriter(0, -1)
}

func TestAppendBlockCrossesChunks(t *testing.T) {
	const n = 100
	hashes := make([]uint64, n)
	keys := make([]uint64, n)
	st := [][]uint64{make([]uint64, n)}
	for i := 0; i < n; i++ {
		hashes[i] = uint64(i) << 32
		keys[i] = uint64(i)
		st[0][i] = uint64(i * 3)
	}
	w := NewWriter(7, 1) // deliberately awkward chunk size
	w.AppendBlock(hashes, keys, st, 0, 60)
	w.AppendBlock(hashes, keys, st, 60, 60) // empty range is a no-op
	w.AppendBlock(hashes, keys, st, 60, n)
	if w.Rows() != n {
		t.Fatalf("Rows = %d, want %d", w.Rows(), n)
	}
	var b Bucket
	w.SealInto(&b)
	got := Concat(&b, 1)
	if got.Len() != n {
		t.Fatalf("concat %d rows, want %d", got.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got.Hashes[i] != hashes[i] || got.Keys[i] != keys[i] || got.States[0][i] != st[0][i] {
			t.Fatalf("row %d corrupted", i)
		}
	}
}

// TestWriterPreservesMultisetProperty: appending rows through arbitrary
// interleavings of Append and AppendBlock preserves exactly the multiset of
// rows and their relative order.
func TestWriterPreservesMultiset(t *testing.T) {
	f := func(seed uint64, nSmall uint8) bool {
		n := int(nSmall)%200 + 1
		rng := xrand.NewXoshiro256(seed)
		hashes := make([]uint64, n)
		keys := make([]uint64, n)
		st := [][]uint64{make([]uint64, n), make([]uint64, n)}
		for i := 0; i < n; i++ {
			hashes[i] = rng.Next()
			keys[i] = rng.Next()
			st[0][i] = rng.Next()
			st[1][i] = rng.Next()
		}
		w := NewWriter(13, 2)
		i := 0
		for i < n {
			if rng.Intn(2) == 0 {
				w.Append(hashes[i], keys[i], []uint64{st[0][i], st[1][i]})
				i++
			} else {
				blk := 1 + rng.Intn(n-i)
				w.AppendBlock(hashes, keys, st, i, i+blk)
				i += blk
			}
		}
		var b Bucket
		w.SealInto(&b)
		got := Concat(&b, 2)
		if got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Hashes[i] != hashes[i] || got.Keys[i] != keys[i] ||
				got.States[0][i] != st[0][i] || got.States[1][i] != st[1][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidate(t *testing.T) {
	good := &Run{Hashes: []uint64{1}, Keys: []uint64{2}, States: [][]uint64{{3}}}
	if err := good.Validate(1); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	badHash := &Run{Hashes: []uint64{1, 2}, Keys: []uint64{2}, States: [][]uint64{}}
	if err := badHash.Validate(0); err == nil {
		t.Fatal("expected hash/key mismatch error")
	}
	badWords := &Run{Hashes: []uint64{1}, Keys: []uint64{2}, States: [][]uint64{}}
	if err := badWords.Validate(1); err == nil {
		t.Fatal("expected word count error")
	}
	badCol := &Run{Hashes: []uint64{1}, Keys: []uint64{2}, States: [][]uint64{{3, 4}}}
	if err := badCol.Validate(1); err == nil {
		t.Fatal("expected column length error")
	}
}

func TestBucketRowsAndAdd(t *testing.T) {
	var b Bucket
	b.Add(nil)
	b.Add(&Run{}) // empty, dropped
	b.Add(&Run{Hashes: []uint64{1}, Keys: []uint64{1}, States: [][]uint64{}})
	b.Add(&Run{Hashes: []uint64{1, 2}, Keys: []uint64{1, 2}, States: [][]uint64{}})
	if len(b.Runs) != 2 {
		t.Fatalf("Runs = %d, want 2", len(b.Runs))
	}
	if b.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", b.Rows())
	}
}

func TestBucketAddAll(t *testing.T) {
	var a, b Bucket
	a.Add(&Run{Hashes: []uint64{1}, Keys: []uint64{1}, States: [][]uint64{}})
	b.Add(&Run{Hashes: []uint64{2}, Keys: []uint64{2}, States: [][]uint64{}})
	a.AddAll(&b)
	if a.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", a.Rows())
	}
}

func TestBucketAllAggregated(t *testing.T) {
	var b Bucket
	if !b.AllAggregated() {
		t.Fatal("empty bucket should report aggregated")
	}
	b.Add(&Run{Hashes: []uint64{1}, Keys: []uint64{1}, States: [][]uint64{}, Aggregated: true})
	if !b.AllAggregated() {
		t.Fatal("single aggregated run")
	}
	b.Add(&Run{Hashes: []uint64{2}, Keys: []uint64{2}, States: [][]uint64{}})
	if b.AllAggregated() {
		t.Fatal("mixed bucket should not report aggregated")
	}
}

func TestConcatAggregatedFlag(t *testing.T) {
	mk := func(k uint64, aggr bool) *Run {
		return &Run{Hashes: []uint64{k}, Keys: []uint64{k}, States: [][]uint64{}, Aggregated: aggr}
	}
	var one Bucket
	one.Add(mk(1, true))
	if !Concat(&one, 0).Aggregated {
		t.Fatal("single aggregated run should stay aggregated")
	}
	var two Bucket
	two.Add(mk(1, true))
	two.Add(mk(1, true))
	if Concat(&two, 0).Aggregated {
		t.Fatal("two aggregated runs may share keys; concat must not be aggregated")
	}
}

func TestConcatEmpty(t *testing.T) {
	var b Bucket
	r := Concat(&b, 3)
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
	if err := r.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	w := NewWriter(DefaultChunkRows, 1)
	st := []uint64{7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Append(uint64(i), uint64(i), st)
	}
}

func BenchmarkAppendBlock64(b *testing.B) {
	const blk = 64
	hashes := make([]uint64, blk)
	keys := make([]uint64, blk)
	st := [][]uint64{make([]uint64, blk)}
	w := NewWriter(DefaultChunkRows, 1)
	b.SetBytes(blk * 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.AppendBlock(hashes, keys, st, 0, blk)
	}
}

func TestNewWriterDrop(t *testing.T) {
	w := NewWriterDrop(4, 1, true)
	w.Append(123, 7, []uint64{9})
	// AppendBlock with a nil hash column must be legal in drop mode.
	w.AppendBlock(nil, []uint64{8, 9}, [][]uint64{{1, 2}}, 0, 2)
	rs := w.Seal()
	total := 0
	for _, r := range rs {
		if r.Hashes != nil {
			t.Fatal("drop writer produced a hash column")
		}
		if err := r.Validate(1); err != nil {
			t.Fatal(err)
		}
		total += r.Len()
	}
	if total != 3 {
		t.Fatalf("rows = %d", total)
	}
}

func TestConcatMixedHashCarry(t *testing.T) {
	// Concatenating a carried and a dropped run must drop hashes (the
	// lowest common denominator) rather than produce ragged columns.
	var b Bucket
	b.Add(&Run{Hashes: []uint64{1}, Keys: []uint64{1}, States: [][]uint64{}})
	b.Add(&Run{Keys: []uint64{2}, States: [][]uint64{}})
	r := Concat(&b, 0)
	if r.Hashes != nil {
		t.Fatal("mixed concat should drop hashes")
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	if err := r.Validate(0); err != nil {
		t.Fatal(err)
	}
}
