package sketch

import (
	"math/bits"

	"cacheagg/internal/hashfn"
)

// Sketch bundles the three planning sketches and the per-digit histogram
// behind one block-at-a-time feed. AddBlock is the only call on the sample
// path: it folds every row of an already-hashed block into the HLL, the
// CMS, the level-0 digit histogram, and — for rows whose frequency estimate
// clears a dynamic threshold — the heavy-hitter candidate list. No
// allocations after construction.
type Sketch struct {
	HLL *HLL
	CMS *CMS
	Top *TopK

	// DigitHist counts sampled rows per level-0 radix digit (the top 8
	// hash bits) — the partition-skew signal for the scatter planner.
	DigitHist [hashfn.Fanout]int64

	// Rows is the number of rows folded in so far.
	Rows int64

	// offerThresh gates TopK offers: a key is only proposed once its CMS
	// estimate reaches this many occurrences. Recomputed per block.
	offerThresh uint64
}

// Default sketch shape: 4 KiB HLL (~1.6% error), 64 KiB CMS (4x4096
// uint32), 16 heavy-hitter candidates. Small enough to live in L2 while the
// sample streams through.
const (
	defaultHLLP    = 12
	defaultCMSLogW = 12
	defaultCMSRows = 4
	defaultTopCap  = 16
)

// NewSketch returns a sketch set with the default shape.
func NewSketch() *Sketch {
	return NewSketchParams(defaultHLLP, defaultCMSLogW, defaultCMSRows, defaultTopCap)
}

// NewSketchParams returns a sketch set with an explicit shape. Tests use
// deliberately tiny CMS widths to force every key into collision.
func NewSketchParams(hllP, cmsLogW, cmsDepth, topCap int) *Sketch {
	return &Sketch{
		HLL: NewHLL(hllP),
		CMS: NewCMS(cmsLogW, cmsDepth),
		Top: NewTopK(topCap),
	}
}

// AddBlock folds one block of rows. hashes[i] must be the Murmur2 hash of
// keys[i] (a hashfn.HashBatch output); the slices must have equal length.
func (s *Sketch) AddBlock(keys, hashes []uint64) {
	_ = hashes[:len(keys)]
	// A key is a heavy-hitter candidate once it holds ~1/256 of the sample
	// (or whatever it takes to beat the current candidate floor). Computing
	// the gate once per block keeps the per-row cost at one compare.
	thresh := uint64(s.Rows) >> 8
	if m := s.Top.MinEst(); m >= thresh {
		thresh = m + 1
	}
	if thresh < 8 {
		thresh = 8
	}
	s.offerThresh = thresh

	p := s.HLL.p
	regs := s.HLL.regs
	for i, h := range hashes {
		s.DigitHist[h>>(64-hashfn.DigitBits)]++

		// HLL add, inlined from AddHash (see hll.go for the derivation).
		idx := h >> (64 - p)
		w := h<<p | 1<<(p-1)
		r := uint8(bits.LeadingZeros64(w)) + 1
		if r > regs[idx] {
			regs[idx] = r
		}

		if est := s.CMS.AddHash(h); est >= s.offerThresh {
			s.Top.Offer(keys[i], h, est)
		}
	}
	s.Rows += int64(len(keys))
}

// Reset clears every component for reuse without reallocating.
func (s *Sketch) Reset() {
	s.HLL.Reset()
	s.CMS.Reset()
	s.Top.Reset()
	s.DigitHist = [hashfn.Fanout]int64{}
	s.Rows = 0
	s.offerThresh = 0
}
