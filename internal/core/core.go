// Package core implements the paper's aggregation operator: the algorithmic
// framework of Section 3 (mixing the HASHING and PARTITIONING routines over
// recursive runs), the tuned routines of Section 4 (via internal/hashtable
// and internal/partition), and the locality-adaptive strategy of Section 5.
//
// Execution outline (Algorithm 2 of the paper):
//
//  1. Intake: the input columns are consumed morsel-wise by all workers in
//     parallel (work stealing over an atomic morsel counter). Each worker
//     runs the strategy's per-run decision loop, producing level-0 runs
//     grouped into 256 buckets by the most significant hash digit. Rows get
//     their 64-bit MurmurHash2 digest here, carried through all later
//     levels, and their aggregate states are initialized (so all deeper
//     merges uniformly use super-aggregate functions).
//  2. Recursion: every non-empty bucket becomes an independent task for the
//     work-stealing pool. A task processes its bucket's runs at level d —
//     again choosing HASHING or PARTITIONING per run — and either emits the
//     final aggregates directly (when one hash table absorbed the entire
//     bucket without filling: the fused final pass of Section 2.1) or
//     spawns child tasks for the 256 sub-buckets at level d+1.
//  3. Assembly: finalized chunks are concatenated in hash order — the
//     output is "a hash table like HASHAGGREGATION would produce, but built
//     with a sorting algorithm" (Section 3.1).
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/hashtable"
	"cacheagg/internal/memgov"
	"cacheagg/internal/trace"
)

// ErrMemoryBudget marks a run aborted because the Config.Governor byte
// budget was exceeded. It is the signal on which callers degrade to the
// out-of-core path; matched with errors.Is (it is memgov.ErrBudget).
var ErrMemoryBudget = memgov.ErrBudget

// DefaultCacheBytes is the default per-worker cache budget for hash tables.
// The paper's machine has 3 MB of L3 per core; 4 MiB is a comparable
// present-day default. Experiments override it to provoke recursion at
// laptop scale.
const DefaultCacheBytes = 4 << 20

// Config configures one aggregation execution.
type Config struct {
	// Strategy picks the routine per run; nil selects DefaultAdaptive().
	Strategy Strategy
	// Workers is the parallelism; 0 selects GOMAXPROCS.
	Workers int
	// CacheBytes is the per-worker cache budget that sizes hash tables
	// (and thereby all recursion thresholds); 0 selects DefaultCacheBytes.
	CacheBytes int
	// MaxFill is the hash-table fill limit; 0 selects the paper's 0.25.
	MaxFill float64
	// ChunkRows is the run chunk size; 0 selects runs.DefaultChunkRows.
	ChunkRows int
	// MorselRows is the intake work-stealing grain; 0 selects
	// sched.DefaultGrain.
	MorselRows int
	// CollectStats enables per-level timing and decision statistics
	// (small overhead; benchmarks that only need totals leave it off).
	CollectStats bool
	// CarryHashes stores the 64-bit hash of every row in the intermediate
	// runs instead of recomputing it from the key at every pass. The
	// paper's layout is recompute (the default, false): MurmurHash2 costs
	// about a nanosecond while a carried hash costs 8 bytes of memory
	// traffic per row per pass in each direction. Carrying is kept as an
	// ablation switch for the hash-storage design choice.
	CarryHashes bool
	// Governor, when non-nil, is the memory accountant the execution
	// registers its footprint with: worker machinery at start, materialized
	// intermediate runs as they are produced (released when consumed), and
	// output chunks. When the governor has a budget and it is exceeded, the
	// run aborts with an error wrapping ErrMemoryBudget instead of growing
	// without bound — the caller degrades to the spilling path. Workers
	// check the budget at morsel and task boundaries, so the overshoot is
	// bounded by one morsel of production per worker.
	Governor *memgov.Governor
	// Tracer, when non-nil, receives execution events (strategy switches,
	// table splits/emits) and per-phase timings. The absent-tracer fast
	// path is one nil-check per block of rows; leave nil (the untyped nil
	// interface, not a typed nil pointer) when not observing.
	Tracer trace.Tracer
	// EnablePlan runs the sketch-guided planning pass before execution: a
	// bounded prefix sample feeds HyperLogLog + Count-Min sketches whose
	// estimates pick the initial routine, pre-size the worker hash
	// tables, and select heavy-hitter keys for the scalar bypass (see
	// plan.go). Results are bit-identical with planning on or off; the
	// plan only changes how fast they are produced.
	EnablePlan bool
	// Plan, when non-nil, is used instead of building one (and implies
	// EnablePlan). Exposed so tests can inject arbitrary — including
	// deliberately corrupt — plans and pin that execution stays correct.
	Plan *Plan
	// Routine overrides the three-way routine selection (see Routine).
	// The zero value, RoutineAuto, selects from the plan's K̂/α̂ estimates
	// and is the only mode with mid-run global→partitioned demotion.
	Routine Routine
}

func (c Config) withDefaults() Config {
	if c.Strategy == nil {
		c.Strategy = DefaultAdaptive()
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.MaxFill <= 0 {
		c.MaxFill = hashtable.DefaultMaxFill
	}
	return c
}

// Input is the operator's column-store input: one grouping column and any
// number of aggregate input columns, all of equal length.
type Input struct {
	// Keys is the grouping column.
	Keys []uint64
	// AggCols are the aggregate input columns referenced by Specs.
	AggCols [][]int64
	// Specs are the aggregate functions to compute per group.
	Specs []agg.Spec
}

// Validate checks the structural invariants of the input.
func (in *Input) Validate() error {
	lay := agg.NewLayout(in.Specs)
	if maxCol := lay.MaxInputCol(); maxCol >= len(in.AggCols) {
		return fmt.Errorf("core: spec references input column %d but only %d columns given",
			maxCol, len(in.AggCols))
	}
	for i, col := range in.AggCols {
		if len(col) != len(in.Keys) {
			return fmt.Errorf("core: aggregate column %d has %d rows, keys have %d",
				i, len(col), len(in.Keys))
		}
	}
	return nil
}

// Result is the operator's output: one row per group, ordered by hash value
// (the concatenation of the final runs).
type Result struct {
	// Keys holds the group keys.
	Keys []uint64
	// Hashes holds the corresponding hash digests (ascending bucket order).
	Hashes []uint64
	// Aggs holds one finalized column per input spec.
	Aggs [][]int64
	// AggsFloat holds the same columns finalized as float64 (exact for
	// AVG, widened integers otherwise).
	AggsFloat [][]float64
	// Stats holds execution statistics (populated when CollectStats).
	Stats Stats
}

// Groups returns the number of groups in the result.
func (r *Result) Groups() int { return len(r.Keys) }

// MaxPasses is the deepest possible recursion: one level per radix-256
// digit of the 64-bit hash, plus one pseudo-level for forced finalization.
const MaxPasses = hashfn.MaxLevels + 1

// Stats reports what the execution did, mirroring the measurements behind
// the paper's figures: per-pass work time (Figures 4, 5), rows routed
// through each routine, tables emitted with their reduction factors, and
// strategy switches (Figure 9's solid markers).
type Stats struct {
	// LevelNanos is the total worker time spent processing each level.
	LevelNanos [MaxPasses]int64
	// LevelRows counts rows processed (moved or aggregated) per level.
	LevelRows [MaxPasses]int64
	// HashedRows and PartitionedRows count rows routed through each
	// routine (intake and recursion combined).
	HashedRows      int64
	PartitionedRows int64
	// TablesEmitted counts hash tables that filled up and were split.
	TablesEmitted int64
	// AlphaSum accumulates the reduction factors of emitted tables;
	// AlphaSum/TablesEmitted is the mean observed α.
	AlphaSum float64
	// Switches counts strategy mode changes.
	Switches int64
	// DirectEmits counts buckets finalized by a single fused hashing pass.
	DirectEmits int64
	// Tasks counts bucket tasks executed (including intake tasks).
	Tasks int64
	// Passes is the deepest level that processed any rows, plus one.
	Passes int

	// Planned reports that a sketch plan was in effect; the fields below
	// echo its inputs and decisions (see Plan).
	Planned bool
	// PlanSampleRows is the number of rows the sketch pass sampled.
	PlanSampleRows int64
	// PlanEstimatedK is the HLL distinct-group estimate.
	PlanEstimatedK float64
	// PlanHotKeys is the size of the heavy-hitter bypass set.
	PlanHotKeys int64
	// PlanHotMass is the sampled row fraction attributed to the bypass set.
	PlanHotMass float64
	// PlanStartPartition reports that intake started in partitioning mode.
	PlanStartPartition bool
	// PlanTableRows is the pre-sized worker-table capacity (0 when the
	// cache-sized default was kept).
	PlanTableRows int64
	// PlanNanos is the wall time of the planning pass.
	PlanNanos int64
	// HotRowsBypassed counts input rows folded into hot-key scalar
	// accumulators instead of the hash path.
	HotRowsBypassed int64

	// Routine is the execution routine the run committed to (after any
	// demotion: a demoted run reports RoutinePartitioned with
	// GlobalDemotions = 1).
	Routine Routine
	// GlobalRows counts input rows folded into the shared global table.
	GlobalRows int64
	// GlobalEscapedRows counts rows that escaped the shared table
	// (contention bounds, full blocks, refused growth) into the escaping
	// worker's private table.
	GlobalEscapedRows int64
	// GlobalContention counts contention events on the shared table
	// (claim-phase spins and failed fold CASes).
	GlobalContention int64
	// GlobalDemotions is 1 when an auto-selected global run demoted to
	// the partitioned routine mid-run on observed α.
	GlobalDemotions int64
	// GlobalGrows counts stop-the-world growth splits of the shared table.
	GlobalGrows int64
}

func (s *Stats) merge(o *workerStats) {
	for i := range s.LevelNanos {
		s.LevelNanos[i] += o.levelNanos[i]
		s.LevelRows[i] += o.levelRows[i]
	}
	s.HashedRows += o.hashedRows
	s.PartitionedRows += o.partitionedRows
	s.TablesEmitted += o.tablesEmitted
	s.AlphaSum += o.alphaSum
	s.Switches += o.switches
	s.DirectEmits += o.directEmits
	s.Tasks += o.tasks
	s.HotRowsBypassed += o.hotRows
	s.GlobalRows += o.globalRows
	s.GlobalEscapedRows += o.globalEscaped
	s.GlobalContention += o.globalContended
	s.GlobalDemotions += o.demotions
}

// workerStats is the per-worker, contention-free statistics accumulator.
type workerStats struct {
	levelNanos      [MaxPasses]int64
	levelRows       [MaxPasses]int64
	hashedRows      int64
	partitionedRows int64
	tablesEmitted   int64
	alphaSum        float64
	switches        int64
	directEmits     int64
	tasks           int64
	hotRows         int64
	globalRows      int64
	globalEscaped   int64
	globalContended int64
	demotions       int64
}

// chunk is one finalized output fragment: all groups of one bucket, tagged
// with the bucket's hash prefix for ordered assembly.
type chunk struct {
	sortKey uint64 // bucket prefix left-aligned to 64 bits
	hashes  []uint64
	keys    []uint64
	states  [][]uint64 // packed state columns, finalized at assembly
}

// collector gathers finalized chunks from concurrent tasks.
type collector struct {
	mu     sync.Mutex
	chunks []chunk
	groups int
}

func (c *collector) add(ch chunk) {
	c.mu.Lock()
	c.chunks = append(c.chunks, ch)
	c.groups += len(ch.keys)
	c.mu.Unlock()
}

// Aggregate executes the operator over the input.
func Aggregate(cfg Config, in *Input) (*Result, error) {
	return AggregateContext(context.Background(), cfg, in)
}

// AggregateContext is Aggregate with cancellation: the cancel signal is
// threaded through the scheduler, workers observe it at morsel and task
// boundaries, and the call returns ctx.Err() promptly. An already
// cancelled context returns before any work is done.
//
// The call is also hardened against panics anywhere in the execution —
// inside worker tasks (contained by the scheduler) or in the sequential
// orchestration around them — which are returned as errors instead of
// crashing the process.
func AggregateContext(ctx context.Context, cfg Config, in *Input) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: aggregation panicked: %v", r)
		}
	}()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.EnablePlan && cfg.Plan == nil {
		cfg.Plan = BuildPlan(cfg, in)
	}
	e, err := newExec(cfg, in)
	if err != nil {
		return nil, err
	}
	// Whatever happens, hand the reservations back: the run is over, and a
	// governor shared across runs must not accumulate dead bookkeeping.
	defer e.releaseAccounting()
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	res = e.assemble()
	e.recycle()
	return res, nil
}

// Distinct computes the distinct grouping keys of the column (a GROUP BY
// with no aggregates — the query class of the paper's Section 6.4
// comparison). The result rows are the distinct keys in hash order.
func Distinct(cfg Config, keys []uint64) (*Result, error) {
	return Aggregate(cfg, &Input{Keys: keys})
}

// DistinctContext is Distinct with cancellation (see AggregateContext).
func DistinctContext(ctx context.Context, cfg Config, keys []uint64) (*Result, error) {
	return AggregateContext(ctx, cfg, &Input{Keys: keys})
}

// assemble sorts the finalized chunks by bucket prefix and concatenates
// them into the final result, finalizing aggregate states column-wise.
func (e *exec) assemble() *Result {
	c := &e.out
	sort.Slice(c.chunks, func(i, j int) bool { return c.chunks[i].sortKey < c.chunks[j].sortKey })

	res := &Result{
		Keys:      make([]uint64, 0, c.groups),
		Hashes:    make([]uint64, 0, c.groups),
		Aggs:      make([][]int64, len(e.layout.Specs)),
		AggsFloat: make([][]float64, len(e.layout.Specs)),
	}
	for i := range res.Aggs {
		res.Aggs[i] = make([]int64, 0, c.groups)
		res.AggsFloat[i] = make([]float64, 0, c.groups)
	}
	scratch := make([]uint64, 2) // widest state is AVG's two words
	for _, ch := range c.chunks {
		res.Hashes = append(res.Hashes, ch.hashes...)
		res.Keys = append(res.Keys, ch.keys...)
		for si, sp := range e.layout.Specs {
			off := e.layout.Offsets[si]
			w := sp.Kind.Width()
			col := res.Aggs[si]
			fcol := res.AggsFloat[si]
			for r := 0; r < len(ch.keys); r++ {
				st := scratch[:w]
				for x := 0; x < w; x++ {
					st[x] = ch.states[off+x][r]
				}
				col = append(col, sp.Kind.FinalizeInt(st))
				fcol = append(fcol, sp.Kind.FinalizeFloat(st))
			}
			res.Aggs[si] = col
			res.AggsFloat[si] = fcol
		}
	}
	// Merge stats.
	if e.cfg.CollectStats {
		for w := range e.workers {
			res.Stats.merge(&e.workers[w].stats)
		}
		for lvl := MaxPasses - 1; lvl >= 0; lvl-- {
			if res.Stats.LevelRows[lvl] > 0 {
				res.Stats.Passes = lvl + 1
				break
			}
		}
		res.Stats.Routine = e.routine
		if e.glob != nil {
			if e.demoted.Load() {
				res.Stats.Routine = RoutinePartitioned
			}
			res.Stats.GlobalGrows = e.glob.Grows()
		}
		if p := e.plan; p != nil {
			res.Stats.Planned = true
			res.Stats.PlanSampleRows = int64(p.SampleRows)
			res.Stats.PlanEstimatedK = p.EstimatedK
			res.Stats.PlanHotKeys = int64(len(p.HotKeys))
			res.Stats.PlanHotMass = p.HotMass
			res.Stats.PlanStartPartition = p.StartPartition
			if e.tableRows != e.cacheRows {
				res.Stats.PlanTableRows = int64(e.tableRows)
			}
			res.Stats.PlanNanos = p.Nanos
		}
	}
	return res
}

// timed runs fn and charges its wall time to the given level of the
// worker's stats (no-op when stats are off).
func (e *exec) timed(ws *workerState, level int, fn func()) {
	if !e.cfg.CollectStats {
		fn()
		return
	}
	start := time.Now()
	fn()
	ws.stats.levelNanos[level] += time.Since(start).Nanoseconds()
}

// stamp starts a phase lap, returning the zero time when no tracer is
// installed — the nil fast path is this single branch.
func (e *exec) stamp() time.Time {
	if e.tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// lap charges the time since t0 to phase p (no-op without a tracer).
func (e *exec) lap(t0 time.Time, p trace.Phase) {
	if e.tr == nil {
		return
	}
	e.tr.AddPhase(p, time.Since(t0).Nanoseconds())
}
