package serve

// Serve-layer metrics: lock-free counters for the admission/degradation/
// cache taxonomy plus a log-bucketed latency histogram good enough for
// p50/p99 under concurrent writers. The /metrics endpoint merges a
// Snapshot of these with the operator tracer's expvar snapshot.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latBuckets is the histogram resolution: bucket i holds latencies in
// [2^i, 2^(i+1)) nanoseconds, so 48 buckets span 1 ns to ~78 h.
const latBuckets = 48

// Metrics is the serve layer's counter set. All fields are updated with
// atomics; read them through Snapshot.
type Metrics struct {
	// Admission outcomes.
	Admitted        atomic.Int64 // granted a budget reservation (any rung)
	QueuedAdmitted  atomic.Int64 // admitted after waiting in the queue
	RejectedQueue   atomic.Int64 // ErrAdmissionQueueFull
	RejectedBudget  atomic.Int64 // ErrBudgetUnavailable
	Shed            atomic.Int64 // ErrShed (evicted from the queue)
	RejectedBad     atomic.Int64 // 4xx request rejections
	RejectedDrain   atomic.Int64 // ErrDraining
	DeadlineExpired atomic.Int64 // ErrDeadline (queued or running)
	Cancelled       atomic.Int64 // client disconnects
	Panics          atomic.Int64 // contained session panics
	InternalErrors  atomic.Int64 // other operator failures

	// Degradation ladder rungs taken by admitted queries.
	DegradedShrunk   atomic.Int64
	DegradedExternal atomic.Int64

	// Result cache.
	CacheHits    atomic.Int64
	CacheMisses  atomic.Int64
	CacheShared  atomic.Int64 // singleflight followers served by a leader
	CacheEntries atomic.Int64
	CacheBytes   atomic.Int64

	// Liveness.
	Inflight  atomic.Int64 // sessions between decode and response
	Running   atomic.Int64 // sessions holding a budget grant
	Succeeded atomic.Int64

	// Streaming ingest (/v1/ingest).
	IngestSessions     atomic.Int64 // live sessions (gauge)
	IngestResumed      atomic.Int64 // sessions resumed from disk at boot
	IngestBlocks       atomic.Int64 // blocks accepted by push
	IngestRows         atomic.Int64 // rows accepted by push
	IngestSeals        atomic.Int64 // explicit seal ops
	IngestQueries      atomic.Int64 // snapshot queries served
	IngestBackpressure atomic.Int64 // pushes refused with 429 backpressure

	lat [latBuckets]atomic.Int64
}

// ObserveLatency records one completed session's total latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	n := d.Nanoseconds()
	if n < 1 {
		n = 1
	}
	b := bits.Len64(uint64(n)) - 1
	if b >= latBuckets {
		b = latBuckets - 1
	}
	m.lat[b].Add(1)
}

// Quantile returns the approximate q-quantile (0 < q < 1) of observed
// latencies: the upper bound of the bucket holding the q-th observation.
// Zero when nothing was observed.
func (m *Metrics) Quantile(q float64) time.Duration {
	var total int64
	var counts [latBuckets]int64
	for i := range counts {
		counts[i] = m.lat[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return time.Duration(uint64(1) << latBuckets)
}

// MetricsSnapshot is the JSON shape of /metrics' serve section.
type MetricsSnapshot struct {
	Admitted        int64 `json:"admitted"`
	QueuedAdmitted  int64 `json:"queued_admitted"`
	RejectedQueue   int64 `json:"rejected_queue_full"`
	RejectedBudget  int64 `json:"rejected_budget"`
	Shed            int64 `json:"shed"`
	RejectedBad     int64 `json:"rejected_bad_request"`
	RejectedDrain   int64 `json:"rejected_draining"`
	DeadlineExpired int64 `json:"deadline_exceeded"`
	Cancelled       int64 `json:"cancelled"`
	Panics          int64 `json:"panics"`
	InternalErrors  int64 `json:"internal_errors"`

	DegradedShrunk   int64 `json:"degraded_shrunk"`
	DegradedExternal int64 `json:"degraded_external"`

	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheShared  int64 `json:"cache_shared"`
	CacheEntries int64 `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`

	Inflight  int64 `json:"inflight"`
	Running   int64 `json:"running"`
	Succeeded int64 `json:"succeeded"`

	IngestSessions     int64 `json:"ingest_sessions"`
	IngestResumed      int64 `json:"ingest_resumed"`
	IngestBlocks       int64 `json:"ingest_blocks"`
	IngestRows         int64 `json:"ingest_rows"`
	IngestSeals        int64 `json:"ingest_seals"`
	IngestQueries      int64 `json:"ingest_queries"`
	IngestBackpressure int64 `json:"ingest_backpressure"`

	QueueLength    int   `json:"queue_length"`
	LedgerReserved int64 `json:"ledger_reserved"`
	LedgerWaiting  int   `json:"ledger_waiting"`

	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// snapshot captures the counters; queue/ledger gauges are stamped by the
// server, which owns the admission controller.
func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Admitted:        m.Admitted.Load(),
		QueuedAdmitted:  m.QueuedAdmitted.Load(),
		RejectedQueue:   m.RejectedQueue.Load(),
		RejectedBudget:  m.RejectedBudget.Load(),
		Shed:            m.Shed.Load(),
		RejectedBad:     m.RejectedBad.Load(),
		RejectedDrain:   m.RejectedDrain.Load(),
		DeadlineExpired: m.DeadlineExpired.Load(),
		Cancelled:       m.Cancelled.Load(),
		Panics:          m.Panics.Load(),
		InternalErrors:  m.InternalErrors.Load(),

		DegradedShrunk:   m.DegradedShrunk.Load(),
		DegradedExternal: m.DegradedExternal.Load(),

		CacheHits:    m.CacheHits.Load(),
		CacheMisses:  m.CacheMisses.Load(),
		CacheShared:  m.CacheShared.Load(),
		CacheEntries: m.CacheEntries.Load(),
		CacheBytes:   m.CacheBytes.Load(),

		Inflight:  m.Inflight.Load(),
		Running:   m.Running.Load(),
		Succeeded: m.Succeeded.Load(),

		IngestSessions:     m.IngestSessions.Load(),
		IngestResumed:      m.IngestResumed.Load(),
		IngestBlocks:       m.IngestBlocks.Load(),
		IngestRows:         m.IngestRows.Load(),
		IngestSeals:        m.IngestSeals.Load(),
		IngestQueries:      m.IngestQueries.Load(),
		IngestBackpressure: m.IngestBackpressure.Load(),

		P50Millis: float64(m.Quantile(0.50)) / float64(time.Millisecond),
		P99Millis: float64(m.Quantile(0.99)) / float64(time.Millisecond),
	}
}
