package core

import "fmt"

// Mode selects the routine used for the next run (or input block).
type Mode int

const (
	// ModeHash processes rows with the HASHING routine: insert into a
	// cache-sized table, split into per-digit runs when full.
	ModeHash Mode = iota
	// ModePartition processes rows with the PARTITIONING routine: radix
	// scatter by the current hash digit.
	ModePartition
	// ModeFinal forces a single hashing pass whose table may grow beyond
	// the cache. Only the illustrative fixed-pass strategies use it (the
	// paper "exceptionally let[s] its hash tables grow larger than the
	// cache" for PARTITIONALWAYS); ADAPTIVE and HASHINGONLY never do.
	ModeFinal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeHash:
		return "hash"
	case ModePartition:
		return "partition"
	case ModeFinal:
		return "final"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Strategy decides, per run and per recursion level, which routine to use.
// Implementations must be stateless and safe for concurrent use; all
// mutable decision state lives in the StrategyState they create, which is
// task-local (one per bucket task / intake worker), matching the paper's
// design where "the different threads do not even need to take the same
// decision".
type Strategy interface {
	// Name returns the strategy's display name.
	Name() string
	// NewState creates decision state for one bucket processed at the
	// given recursion level; cacheRows is the row capacity of the
	// cache-sized hash table (the strategy's notion of "cache").
	NewState(level, cacheRows int) StrategyState
}

// StrategyState is the per-task decision state machine.
type StrategyState interface {
	// NextMode picks the routine for the next run.
	NextMode() Mode
	// OnTableEmit reports that a hash table filled up and was split,
	// with the observed reduction factor α = rowsIn/rowsOut.
	OnTableEmit(alpha float64)
	// OnPartitioned reports that n rows were scattered.
	OnPartitioned(n int)
}

// ---------------------------------------------------------------------------
// HASHINGONLY (Figure 4(a)): always hash; recursion depth emerges from the
// data — "HASHINGONLY automatically does the right number of passes".

type hashingOnly struct{}

// HashingOnly returns the strategy that uses the HASHING routine for every
// run at every level.
func HashingOnly() Strategy { return hashingOnly{} }

func (hashingOnly) Name() string { return "HashingOnly" }

func (hashingOnly) NewState(level, cacheRows int) StrategyState { return hashingOnlyState{} }

type hashingOnlyState struct{}

func (hashingOnlyState) NextMode() Mode      { return ModeHash }
func (hashingOnlyState) OnTableEmit(float64) {}
func (hashingOnlyState) OnPartitioned(int)   {}

// ---------------------------------------------------------------------------
// PARTITIONALWAYS (Figure 4(b,c)): a fixed number of partitioning passes
// followed by a single hashing pass with growing tables. Needs external
// knowledge of K to pick the right pass count — exactly the weakness the
// adaptive strategy removes.

type partitionAlways struct {
	passes int
}

// PartitionAlways returns the strategy that partitions for the first
// `passes` levels and then finishes with one (growing) hashing pass.
// passes must be at least 1.
func PartitionAlways(passes int) Strategy {
	if passes < 1 {
		panic("core: PartitionAlways needs at least one partitioning pass")
	}
	return partitionAlways{passes: passes}
}

func (s partitionAlways) Name() string { return fmt.Sprintf("PartitionAlways(%d)", s.passes) }

func (s partitionAlways) NewState(level, cacheRows int) StrategyState {
	return &partitionAlwaysState{passes: s.passes, level: level}
}

type partitionAlwaysState struct {
	passes int
	level  int
}

func (s *partitionAlwaysState) NextMode() Mode {
	if s.level < s.passes {
		return ModePartition
	}
	return ModeFinal
}
func (s *partitionAlwaysState) OnTableEmit(float64) {}
func (s *partitionAlwaysState) OnPartitioned(int)   {}

// ---------------------------------------------------------------------------
// PARTITIONONLY (Appendix A.1): partition at every level; hashing happens
// only through the framework's natural leaf finalization. Used to locate
// the α crossover against HASHINGONLY.

type partitionOnly struct{}

// PartitionOnly returns the strategy that always partitions (leaves are
// still finalized by the framework's in-cache hashing pass).
func PartitionOnly() Strategy { return partitionOnly{} }

func (partitionOnly) Name() string { return "PartitionOnly" }

func (partitionOnly) NewState(level, cacheRows int) StrategyState { return partitionOnlyState{} }

type partitionOnlyState struct{}

func (partitionOnlyState) NextMode() Mode      { return ModePartition }
func (partitionOnlyState) OnTableEmit(float64) {}
func (partitionOnlyState) OnPartitioned(int)   {}

// ---------------------------------------------------------------------------
// ADAPTIVE (Section 5): start hashing; when a table fills with reduction
// factor α < α₀, switch to the faster partitioning; after c·cacheRows
// partitioned rows, probe back with hashing in case the distribution
// changed.

// DefaultAlpha0 is the switching threshold α₀. The paper determines it
// empirically in Appendix A.1: the crossovers of HASHINGONLY and
// PARTITIONONLY "all intersect in the range of α ∈ [7, 16]"; the value with
// the smallest overall error "is roughly 11".
const DefaultAlpha0 = 11.0

// DefaultC is the amortization constant c: partitioning runs for
// c·cacheRows rows before hashing is probed again. Appendix A.2 finds
// c = 10 "a good compromise between amortization effect and reactivity to
// distribution changes".
const DefaultC = 10

type adaptive struct {
	alpha0 float64
	c      int
}

// Adaptive returns the paper's ADAPTIVE strategy with the given switching
// threshold α₀ and amortization constant c; non-positive values select the
// paper's defaults (α₀ = 11, c = 10).
func Adaptive(alpha0 float64, c int) Strategy {
	if alpha0 <= 0 {
		alpha0 = DefaultAlpha0
	}
	if c < 0 {
		c = DefaultC
	}
	return adaptive{alpha0: alpha0, c: c}
}

// DefaultAdaptive returns Adaptive with the paper's constants.
func DefaultAdaptive() Strategy { return Adaptive(DefaultAlpha0, DefaultC) }

func (s adaptive) Name() string {
	return fmt.Sprintf("Adaptive(α₀=%g, c=%d)", s.alpha0, s.c)
}

func (s adaptive) NewState(level, cacheRows int) StrategyState {
	return &adaptiveState{alpha0: s.alpha0, budget: s.c * cacheRows}
}

type adaptiveState struct {
	alpha0       float64
	budget       int // c·cacheRows: partitioned rows before probing again
	partitioning bool
	left         int
	// Switches counts mode changes, for diagnostics and tests.
	Switches int
}

func (s *adaptiveState) NextMode() Mode {
	if s.partitioning && s.left <= 0 {
		// Amortization budget exhausted: probe with hashing again.
		s.partitioning = false
		s.Switches++
	}
	if s.partitioning {
		return ModePartition
	}
	return ModeHash
}

func (s *adaptiveState) OnTableEmit(alpha float64) {
	if alpha < s.alpha0 {
		// Hashing did not reduce the data enough: the locality is too low
		// for early aggregation to pay off. Use the faster partitioning
		// for the next c·cacheRows rows.
		s.partitioning = true
		s.left = s.budget
		s.Switches++
	}
	// α ≥ α₀: hashing was the right choice, keep hashing.
}

func (s *adaptiveState) OnPartitioned(n int) { s.left -= n }
