// Package memgov implements the central memory governor of the engine: a
// byte-accurate accountant that the big memory consumers — worker hash
// tables, partition/run buffers, resident spill partitions, and external
// merge state — register their allocations with.
//
// The governor does not allocate anything itself and it cannot stop an
// allocation that has already happened; it is the bookkeeping that lets the
// operator make *decisions* from real footprint instead of row-count
// proxies:
//
//   - the in-memory operator polls OverBudget at morsel and task boundaries
//     and aborts with a typed error so the caller can degrade to the
//     out-of-core path instead of blowing past the budget;
//   - the external operator calls TryReserve before growing a resident
//     partition and evicts (spills) the largest resident partition when the
//     reservation fails — the dynamic-hybrid degradation of Jahangiri et
//     al.;
//   - both size their buffers from Remaining instead of guessing.
//
// Accounting precision: reservations go through per-worker Caches that
// batch small deltas into one shared atomic, so the hot path costs one
// add on a worker-local int. The shared counter therefore trails the true
// sum by at most workers×grain bytes, and budget checks performed once
// per morsel can overshoot by at most one morsel of production per
// worker — the documented slack of the budget contract.
package memgov

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrBudget is the sentinel wrapped by every budget-exceeded failure.
var ErrBudget = errors.New("memory budget exceeded")

// DefaultCacheGrain is the default flush threshold of a per-worker Cache:
// small enough that the shared counter stays honest, large enough that the
// shared atomic is touched ~once per few hundred rows.
const DefaultCacheGrain = 32 << 10

// Governor is a byte budget shared by all memory consumers of one
// execution. The zero value is not usable; create Governors with New. All
// methods are safe for concurrent use.
type Governor struct {
	budget   int64 // 0 = unlimited (pure accounting, never over budget)
	reserved atomic.Int64
	high     atomic.Int64

	// High-water sampling hook (see SetHighWaterHook). hookNext is the
	// next high-water value at which the hook fires; advancing it by CAS
	// makes each grain crossing fire exactly once across workers.
	hook      func(highWater int64)
	hookGrain int64
	hookNext  atomic.Int64

	// Blocking-reservation waiters (see TryReserveOrWait). nWaiters
	// mirrors the queue length so the release hot path can skip the lock
	// with one atomic load when nobody is waiting.
	waitMu   sync.Mutex
	waiters  list.List // of *waiter, FIFO
	nWaiters atomic.Int32
}

// waiter is one goroutine parked in TryReserveOrWait. kick has capacity 1:
// a release signals it to re-attempt its reservation.
type waiter struct {
	need int64
	kick chan struct{}
}

// New creates a governor enforcing the given budget in bytes. budget <= 0
// means unlimited: the governor still accounts and tracks the high-water
// mark, but TryReserve never fails and OverBudget is always false.
func New(budget int64) *Governor {
	if budget < 0 {
		budget = 0
	}
	return &Governor{budget: budget}
}

// Budget returns the configured budget (0 = unlimited).
func (g *Governor) Budget() int64 { return g.budget }

// Reserved returns the bytes currently reserved (flushed caches only).
func (g *Governor) Reserved() int64 { return g.reserved.Load() }

// HighWater returns the maximum value Reserved has reached.
func (g *Governor) HighWater() int64 { return g.high.Load() }

// Remaining returns budget − reserved, floored at zero. Unlimited
// governors report a practically infinite remainder.
func (g *Governor) Remaining() int64 {
	if g.budget == 0 {
		return 1 << 62
	}
	r := g.budget - g.reserved.Load()
	if r < 0 {
		return 0
	}
	return r
}

// OverBudget reports whether reservations exceed the budget.
func (g *Governor) OverBudget() bool {
	return g.budget > 0 && g.reserved.Load() > g.budget
}

// Reserve unconditionally accounts n bytes (n may be negative to release).
// It never fails: consumers that cannot un-allocate (a morsel of rows
// already materialized) record the truth and let the boundary check decide.
func (g *Governor) Reserve(n int64) {
	now := g.reserved.Add(n)
	g.bumpHigh(now)
	if n < 0 {
		g.wake()
	}
}

// TryReserve accounts n bytes only if the total stays within budget; it
// reports whether the reservation was granted. n must be non-negative.
func (g *Governor) TryReserve(n int64) bool {
	for {
		cur := g.reserved.Load()
		next := cur + n
		if g.budget > 0 && next > g.budget {
			return false
		}
		if g.reserved.CompareAndSwap(cur, next) {
			g.bumpHigh(next)
			return true
		}
	}
}

// Release returns n bytes to the budget and wakes the longest-waiting
// TryReserveOrWait caller, if any, to re-attempt its reservation.
func (g *Governor) Release(n int64) {
	g.reserved.Add(-n)
	g.wake()
}

// TryReserveOrWait accounts n bytes, blocking until the budget has room or
// ctx is cancelled. Blocked callers form a FIFO queue: releases wake the
// longest waiter first, and a reservation that cannot be satisfied does
// not let later, smaller requests overtake it (no starvation of large
// requests). Cancellation removes the caller from the queue immediately —
// a departed waiter holds no budget and blocks nobody — and returns
// ctx.Err(). On an unlimited governor it never blocks. n must be
// non-negative.
func (g *Governor) TryReserveOrWait(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Fast path: nobody queued ahead of us and the budget has room.
	if g.nWaiters.Load() == 0 && g.TryReserve(n) {
		return nil
	}
	w := &waiter{need: n, kick: make(chan struct{}, 1)}
	g.waitMu.Lock()
	// Re-check under the lock: a release may have drained the queue
	// between the fast path and here.
	if g.waiters.Len() == 0 && g.TryReserve(n) {
		g.waitMu.Unlock()
		return nil
	}
	elem := g.waiters.PushBack(w)
	g.nWaiters.Store(int32(g.waiters.Len()))
	g.waitMu.Unlock()

	for {
		select {
		case <-ctx.Done():
			g.waitMu.Lock()
			g.waiters.Remove(elem)
			g.nWaiters.Store(int32(g.waiters.Len()))
			g.waitMu.Unlock()
			// Our departure may promote a waiter that now fits (we might
			// have been head-of-line with a too-large request, or hold an
			// unconsumed kick); wake the new head unconditionally so no
			// wakeup is lost.
			g.wake()
			return ctx.Err()
		case <-w.kick:
			g.waitMu.Lock()
			if g.waiters.Front() != elem {
				// Not our turn yet (a later-queued waiter was kicked by a
				// stale signal); wait for the next release.
				g.waitMu.Unlock()
				continue
			}
			if !g.TryReserve(n) {
				g.waitMu.Unlock()
				continue
			}
			g.waiters.Remove(elem)
			g.nWaiters.Store(int32(g.waiters.Len()))
			g.waitMu.Unlock()
			// Budget may still have room for the next waiter in line.
			g.wake()
			return nil
		}
	}
}

// Waiting returns the number of goroutines parked in TryReserveOrWait.
func (g *Governor) Waiting() int { return int(g.nWaiters.Load()) }

// wake signals the head waiter to re-attempt its reservation. One atomic
// load on the no-waiter path keeps releases cheap.
func (g *Governor) wake() {
	if g.nWaiters.Load() == 0 {
		return
	}
	g.waitMu.Lock()
	if e := g.waiters.Front(); e != nil {
		w := e.Value.(*waiter)
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	g.waitMu.Unlock()
}

// SetHighWaterHook installs f to be called (at most once per grain bytes
// of high-water growth) whenever the reservation high-water mark rises
// past the next sampling threshold. grain <= 0 selects 1 MiB. Install
// before sharing the governor across goroutines; f must be cheap and safe
// for concurrent calls, and must not call back into the governor.
func (g *Governor) SetHighWaterHook(grain int64, f func(highWater int64)) {
	if grain <= 0 {
		grain = 1 << 20
	}
	g.hook = f
	g.hookGrain = grain
	g.hookNext.Store(0)
}

func (g *Governor) bumpHigh(now int64) {
	for {
		h := g.high.Load()
		if now <= h {
			break
		}
		if g.high.CompareAndSwap(h, now) {
			break
		}
	}
	if g.hook == nil {
		return
	}
	for {
		next := g.hookNext.Load()
		if now < next {
			return
		}
		// Jump the threshold past now so one burst fires one sample.
		step := ((now-next)/g.hookGrain + 1) * g.hookGrain
		if g.hookNext.CompareAndSwap(next, next+step) {
			g.hook(now)
			return
		}
	}
}

// BudgetError builds the typed error for a consumer that hit the budget,
// naming who needed what. It wraps ErrBudget for errors.Is.
func (g *Governor) BudgetError(who string, need int64) error {
	return fmt.Errorf("%w: %s needs %d bytes, %d of %d reserved",
		ErrBudget, who, need, g.reserved.Load(), g.budget)
}

// Cache is a per-worker reservation cache: deltas accumulate locally and
// are flushed to the shared governor once they exceed the grain, so the
// per-row hot path never touches the shared atomic. A Cache is owned by
// one worker and is NOT safe for concurrent use.
type Cache struct {
	gov   *Governor
	grain int64
	local int64
	net   int64
}

// NewCache returns a worker-local cache; grain <= 0 selects
// DefaultCacheGrain. A nil governor yields a no-op cache.
func (g *Governor) NewCache(grain int64) *Cache {
	if grain <= 0 {
		grain = DefaultCacheGrain
	}
	return &Cache{gov: g, grain: grain}
}

// Reserve accounts n bytes (negative releases), flushing to the governor
// when the local delta exceeds the grain.
func (c *Cache) Reserve(n int64) {
	if c == nil || c.gov == nil {
		return
	}
	c.net += n
	c.local += n
	if c.local >= c.grain || c.local <= -c.grain {
		c.gov.Reserve(c.local)
		c.local = 0
	}
}

// Net returns the cumulative bytes this cache has reserved minus released
// over its lifetime. A finished consumer releases its Net back to the
// governor so a shared governor's ledger survives sequential runs.
func (c *Cache) Net() int64 {
	if c == nil {
		return 0
	}
	return c.net
}

// Flush pushes any pending local delta to the governor. Call at natural
// boundaries (end of a morsel, end of a task) so budget checks see the
// truth.
func (c *Cache) Flush() {
	if c == nil || c.gov == nil || c.local == 0 {
		return
	}
	c.gov.Reserve(c.local)
	c.local = 0
}
