// Command agggen writes synthetic datasets with the distributions of the
// paper's evaluation (Section 6.5) to a file or stdout, either as text (one
// key per line) or as little-endian binary uint64s.
//
// Usage:
//
//	agggen -dist uniform -n 1048576 -k 65536 -seed 1 -format binary -o keys.bin
//
// Distributions: uniform, sequential, sorted, heavy-hitter, moving-cluster,
// self-similar, zipf.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"cacheagg/internal/datagen"
)

func main() {
	var (
		distName = flag.String("dist", "uniform", "distribution name")
		n        = flag.Int("n", 1<<20, "number of rows")
		k        = flag.Uint64("k", 1<<16, "key domain size (target group count)")
		seed     = flag.Uint64("seed", 1, "random seed")
		format   = flag.String("format", "text", "output format: text | binary")
		out      = flag.String("o", "-", "output file ('-' for stdout)")
		window   = flag.Uint64("window", 0, "moving-cluster window (0 = paper's 1024)")
		h        = flag.Float64("h", 0, "self-similar skew h (0 = paper's 0.2)")
		theta    = flag.Float64("theta", 0, "zipf exponent (0 = paper's 0.5)")
		hitFrac  = flag.Float64("hitfrac", 0, "heavy-hitter mass on key 1 (0 = paper's 0.5)")
		stats    = flag.Bool("stats", false, "print realized distinct-key count to stderr")
	)
	flag.Parse()

	dist, err := datagen.ParseDist(*distName)
	if err != nil {
		fatal(err)
	}
	keys := datagen.Generate(datagen.Spec{
		Dist:        dist,
		N:           *n,
		K:           *k,
		Seed:        *seed,
		Window:      *window,
		H:           *h,
		Theta:       *theta,
		HitFraction: *hitFrac,
	})

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := writeKeys(w, keys, *format); err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "agggen: %d rows, %d distinct keys\n",
			len(keys), datagen.CountDistinct(keys))
	}
}

// writeKeys encodes the key column in the requested format.
func writeKeys(w io.Writer, keys []uint64, format string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	switch format {
	case "text":
		for _, key := range keys {
			fmt.Fprintln(bw, key)
		}
	case "binary":
		var buf [8]byte
		for _, key := range keys {
			binary.LittleEndian.PutUint64(buf[:], key)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return bw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agggen:", err)
	os.Exit(1)
}
