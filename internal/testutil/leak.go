// Package testutil holds small shared test helpers. Production code must
// never import it.
package testutil

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// leakSettle is how long VerifyNoLeaks waits for stray goroutines to exit
// before declaring a leak. Runtime-internal goroutines (GC workers, timer
// scavenger) start lazily and are counted by NumGoroutine, so the check
// polls rather than comparing a single snapshot.
const leakSettle = 3 * time.Second

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not returned to the baseline by the end
// of the test (after a settle period). Call it first thing in any test
// that starts pools, watchers, or spill machinery:
//
//	func TestSomething(t *testing.T) {
//		testutil.VerifyNoLeaks(t)
//		...
//	}
//
// On failure the full goroutine dump is logged, so the leaked goroutine's
// stack is visible in the test output.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakSettle)
		var g int
		for {
			g = runtime.NumGoroutine()
			if g <= baseline || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if g > baseline {
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Errorf("goroutine leak: %d before, %d after settle\n%s", baseline, g, buf.String())
		}
	})
}
