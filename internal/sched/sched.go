// Package sched implements the user-level scheduling of the framework
// (paper Section 3.2): task parallelism for the recursive bucket calls plus
// work stealing for the main loop over the input.
//
// Each worker owns a deque of tasks: it pushes and pops at the tail (LIFO,
// good locality for the recursion) while idle workers steal from the head
// (FIFO, stealing the largest pending subtrees). The paper's two axes of
// parallelism map onto this directly: recursive calls are Spawned as
// independent tasks, and the loop over the input is split into morsels
// handed out through an atomic counter (Morsels), which is the
// work-stealing parallelization of the main loop — a thread that finished
// its own bucket helps processing the input of a large bucket instead of
// idling.
//
// Synchronization happens only at task boundaries; inside a task the
// framework's workers touch no shared state, matching the paper's
// "wait-free parallelization" goal.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cacheagg/internal/xrand"
)

// Task is a unit of work. It receives the executing worker's context so it
// can use per-worker state and spawn subtasks.
type Task func(ctx *Ctx)

// Ctx identifies the executing worker within its pool.
type Ctx struct {
	// Worker is the executing worker's index in [0, Workers).
	Worker int
	pool   *Pool
}

// Spawn schedules a subtask. It may only be called while the pool is
// running (i.e. from inside a task).
func (c *Ctx) Spawn(t Task) { c.pool.push(c.Worker, t) }

// Workers returns the pool size.
func (c *Ctx) Workers() int { return c.pool.workers }

// Aborted reports whether the current run is being torn down — because a
// task panicked, failed via Fail, or the run's context was cancelled.
// Long-running tasks should poll it at natural boundaries (per morsel, per
// run) and return early; their partial output is discarded by the caller
// anyway.
func (c *Ctx) Aborted() bool { return c.pool.aborted.Load() }

// Fail aborts the current run cooperatively: the given error is recorded
// (first failure wins, like panics), remaining tasks are drained without
// being executed, and RunContext returns the error. Use it for typed
// give-up conditions a task detects itself — a memory budget exceeded, an
// invariant violated — where a panic would lose the error's type.
func (c *Ctx) Fail(err error) {
	if err == nil {
		return
	}
	c.pool.fail(err)
}

// deque is a per-worker double-ended task queue. The owner pushes and pops
// at the tail; thieves steal from the head. A plain mutex keeps it simple
// and correct; contention is negligible because steals are rare and tasks
// are coarse (whole buckets / morsels).
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) push(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) pop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t, true
}

func (d *deque) steal() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil, false
	}
	t := d.tasks[0]
	d.tasks[0] = nil
	d.tasks = d.tasks[1:]
	return t, true
}

// Pool is a fixed-size worker pool executing a dynamic task graph to
// quiescence.
//
// A run is hardened against misbehaving tasks: a panic inside a task is
// recovered, converted into an error carrying the panic value and stack,
// and aborts the run — remaining tasks are drained without being executed,
// every worker exits, and Run returns the error instead of crashing the
// process or deadlocking on the pending-task counter.
type Pool struct {
	workers int
	deques  []deque
	pending atomic.Int64

	// OnSteal, when non-nil, is invoked every time worker thief takes a
	// task from worker victim's deque instead of its own. Set it before
	// Run/RunContext (goroutine creation publishes it to the workers); it
	// must be cheap and safe for concurrent calls.
	OnSteal func(thief, victim int)

	// Per-run teardown state, reset at the start of every Run.
	aborted atomic.Bool
	errMu   sync.Mutex
	err     error
}

// NewPool creates a pool of p workers; p <= 0 selects GOMAXPROCS.
func NewPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: p, deques: make([]deque, p)}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) push(worker int, t Task) {
	p.pending.Add(1)
	p.deques[worker].push(t)
}

// Run executes root and everything it transitively spawns, returning when
// all tasks have completed. It blocks the caller; the caller's goroutine
// does not itself execute tasks. The returned error is the first task
// panic, converted, or nil.
func (p *Pool) Run(root Task) error { return p.RunContext(context.Background(), root) }

// RunContext is Run with cancellation: when ctx is cancelled the run is
// aborted — workers finish their current task, drain the remaining task
// graph without executing it, and RunContext returns ctx.Err(). An already
// cancelled context returns immediately without running any task. A task
// panic takes precedence over a concurrent cancellation in the returned
// error.
func (p *Pool) RunContext(ctx context.Context, root Task) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.aborted.Store(false)
	p.errMu.Lock()
	p.err = nil
	p.errMu.Unlock()

	// Watch for cancellation without polling ctx on the hot path: the
	// watcher flips the aborted flag that workers already check per task.
	stop := make(chan struct{})
	var watch sync.WaitGroup
	if ctx.Done() != nil {
		watch.Add(1)
		go func() {
			defer watch.Done()
			select {
			case <-ctx.Done():
				p.aborted.Store(true)
			case <-stop:
			}
		}()
	}

	p.push(0, root)
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			p.work(w)
		}(w)
	}
	wg.Wait()
	close(stop)
	watch.Wait()

	p.errMu.Lock()
	err := p.err
	p.errMu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// fail records the first task failure and aborts the run.
func (p *Pool) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.aborted.Store(true)
}

// runTask executes one task, containing panics: a panicking task marks the
// run failed but still counts as completed, so the pending counter reaches
// zero and every worker exits cleanly.
func (p *Pool) runTask(ctx *Ctx, t Task) {
	defer func() {
		if r := recover(); r != nil {
			p.fail(fmt.Errorf("sched: task panicked on worker %d: %v\n%s",
				ctx.Worker, r, debug.Stack()))
		}
		p.pending.Add(-1)
	}()
	t(ctx)
}

func (p *Pool) work(w int) {
	ctx := &Ctx{Worker: w, pool: p}
	rng := xrand.NewXoshiro256(uint64(w) + 12345)
	idleSpins := 0
	for {
		t, ok := p.deques[w].pop()
		if !ok {
			// Try to steal from a random victim, then scan all.
			victim := rng.Intn(p.workers)
			for i := 0; i < p.workers && !ok; i++ {
				v := (victim + i) % p.workers
				if v == w {
					continue
				}
				t, ok = p.deques[v].steal()
				if ok && p.OnSteal != nil {
					p.OnSteal(w, v)
				}
			}
		}
		if ok {
			idleSpins = 0
			if p.aborted.Load() {
				// Teardown: drain without executing. Running tasks may
				// still spawn; their children land here too, so the
				// counter always reaches zero.
				p.pending.Add(-1)
				continue
			}
			p.runTask(ctx, t)
			continue
		}
		if p.pending.Load() == 0 {
			return
		}
		// Tasks are in flight on other workers and may spawn more;
		// back off briefly before retrying.
		idleSpins++
		if idleSpins < 16 {
			runtime.Gosched()
		} else {
			// Cheap bounded backoff without time dependencies.
			for i := 0; i < 1<<8; i++ {
				runtime.Gosched()
			}
		}
	}
}

// Morsels hands out disjoint index ranges of [0, n) in grain-sized chunks
// through a single atomic counter. It implements the work-stealing
// parallelization of the framework's main input loop: any worker — at any
// time — can grab the next unprocessed chunk of the input.
type Morsels struct {
	next  atomic.Int64
	n     int64
	grain int64
}

// DefaultGrain is the default morsel size in rows. Large enough that the
// atomic increment amortizes to nothing, small enough to balance skewed
// per-row costs.
const DefaultGrain = 16384

// NewMorsels creates a morsel dispenser over [0, n); grain <= 0 selects
// DefaultGrain.
func NewMorsels(n, grain int) *Morsels {
	if n < 0 {
		panic("sched: negative range")
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	return &Morsels{n: int64(n), grain: int64(grain)}
}

// Next returns the next unclaimed range [lo, hi). ok is false when the
// range is exhausted.
func (m *Morsels) Next() (lo, hi int, ok bool) {
	for {
		cur := m.next.Load()
		if cur >= m.n {
			return 0, 0, false
		}
		end := cur + m.grain
		if end > m.n {
			end = m.n
		}
		if m.next.CompareAndSwap(cur, end) {
			return int(cur), int(end), true
		}
	}
}
