// Command aggload is the load harness for aggserve: it drives many
// concurrent clients against a running server with a mixed profile of
// datasets, aggregate shapes, priorities and deadlines, and then audits
// the outcome taxonomy.
//
// Every response must be one of the two documented shapes — a well-formed
// JSONL result whose trailer row count matches the rows received, or a
// typed error envelope with a known code. Anything else (an unknown code,
// a malformed body, an internal/internal_panic response, a transport
// error) is a harness failure and a nonzero exit. Overload outcomes
// (admission_queue_full, budget_unavailable, shed, deadline_exceeded) are
// expected under pressure and merely counted.
//
// Examples:
//
//	aggload -url http://localhost:8080 -clients 64 -requests 20
//	aggload -url http://localhost:8080 -clients 256 -requests 50 \
//	  -tight-deadlines 0.2 -max-p99 2s
//
// Exit codes: 0 = every outcome typed and bounds held, 1 = taxonomy or
// bound violation, 2 = usage error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	os.Exit(run())
}

// expectedCodes are the typed outcomes a loaded-but-healthy server may
// legitimately produce. internal and internal_panic are deliberately
// absent: under any load, those are bugs.
var expectedCodes = map[string]bool{
	"admission_queue_full": true,
	"budget_unavailable":   true,
	"shed":                 true,
	"deadline_exceeded":    true,
	"draining":             true,
	"cancelled":            true,
}

type outcome struct {
	kind    string // "ok", an error code, "transport", "malformed"
	latency time.Duration
	detail  string
}

func run() int {
	var (
		url      = flag.String("url", "", "base URL of the aggserve instance (required)")
		clients  = flag.Int("clients", 64, "concurrent client goroutines")
		requests = flag.Int("requests", 20, "requests per client")
		seed     = flag.Int64("seed", 1, "profile seed")
		tight    = flag.Float64("tight-deadlines", 0.1, "fraction of requests with a near-unmeetable deadline")
		noCache  = flag.Float64("no-cache", 0.2, "fraction of requests bypassing the result cache")
		maxP99   = flag.Duration("max-p99", 0, "fail if successful-request p99 exceeds this (0 = no bound)")
		minOK    = flag.Int("min-ok", 1, "fail unless at least this many requests succeed")
	)
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "aggload: -url is required")
		flag.Usage()
		return 2
	}
	if *clients < 1 || *requests < 1 {
		fmt.Fprintln(os.Stderr, "aggload: -clients and -requests must be positive")
		return 2
	}

	datasets, err := discoverDatasets(*url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggload:", err)
		return 1
	}
	fmt.Printf("aggload: %d clients x %d requests against %s (datasets %v)\n",
		*clients, *requests, *url, datasets)

	httpc := &http.Client{Timeout: 2 * time.Minute}
	outcomes := make([]outcome, *clients**requests)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for i := 0; i < *requests; i++ {
				req := buildRequest(rng, datasets, *tight, *noCache)
				outcomes[c**requests+i] = doRequest(httpc, *url, req)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return audit(outcomes, elapsed, *maxP99, *minOK)
}

// discoverDatasets asks /healthz which datasets the server hosts.
func discoverDatasets(url string) ([]string, error) {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status   string   `json:"status"`
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "serving" {
		return nil, fmt.Errorf("server is %q, not serving", h.Status)
	}
	if len(h.Datasets) == 0 {
		return nil, fmt.Errorf("server hosts no datasets")
	}
	sort.Strings(h.Datasets)
	return h.Datasets, nil
}

// buildRequest draws one request from the mixed profile: random dataset,
// 1-3 aggregates over the two derived columns, a priority mix of roughly
// 20/60/20, and deadlines that are absent, generous, or (for the tight
// fraction) nearly unmeetable.
func buildRequest(rng *rand.Rand, datasets []string, tight, noCache float64) map[string]any {
	req := map[string]any{
		"dataset": datasets[rng.Intn(len(datasets))],
	}
	funcs := []string{"count", "sum", "min", "max", "avg"}
	nagg := 1 + rng.Intn(3)
	aggs := make([]map[string]any, nagg)
	for i := range aggs {
		f := funcs[rng.Intn(len(funcs))]
		a := map[string]any{"func": f}
		if f != "count" {
			a["col"] = rng.Intn(2)
		}
		aggs[i] = a
	}
	req["aggregates"] = aggs
	switch p := rng.Float64(); {
	case p < 0.2:
		req["priority"] = "low"
	case p > 0.8:
		req["priority"] = "high"
	}
	switch d := rng.Float64(); {
	case d < tight:
		req["deadline_ms"] = 1 + rng.Intn(3)
	case d < tight+0.5:
		req["deadline_ms"] = 10000 + rng.Intn(10000)
	}
	if rng.Float64() < noCache {
		req["no_cache"] = true
	}
	return req
}

// doRequest executes one request and classifies the response.
func doRequest(httpc *http.Client, url string, req map[string]any) outcome {
	body, _ := json.Marshal(req)
	start := time.Now()
	resp, err := httpc.Post(url+"/v1/aggregate", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{kind: "transport", detail: err.Error()}
	}
	defer resp.Body.Close()
	lat := func() time.Duration { return time.Since(start) }

	if resp.StatusCode == http.StatusOK {
		if err := validateResult(resp); err != nil {
			return outcome{kind: "malformed", detail: err.Error()}
		}
		return outcome{kind: "ok", latency: lat()}
	}
	var env struct {
		Error struct {
			Code         string `json:"code"`
			Detail       string `json:"detail"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
		return outcome{kind: "malformed",
			detail: fmt.Sprintf("status %d with undecodable error envelope", resp.StatusCode)}
	}
	return outcome{kind: env.Error.Code, latency: lat(), detail: env.Error.Detail}
}

// validateResult checks the JSONL success shape: a header line with a
// group count, that many rows, and a done trailer agreeing on the count.
func validateResult(resp *http.Response) error {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return fmt.Errorf("empty body")
	}
	var hdr struct {
		Groups *int `json:"groups"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Groups == nil {
		return fmt.Errorf("bad header %q", sc.Text())
	}
	rows, done := 0, false
	for sc.Scan() {
		if done {
			return fmt.Errorf("data after the done trailer")
		}
		var line struct {
			G    *uint64 `json:"g"`
			Done bool    `json:"done"`
			Rows int     `json:"rows"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("bad line %q", sc.Text())
		}
		if line.Done {
			done = true
			if line.Rows != rows {
				return fmt.Errorf("trailer says %d rows, saw %d", line.Rows, rows)
			}
			continue
		}
		if line.G == nil {
			return fmt.Errorf("row without group key: %q", sc.Text())
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("truncated body: no done trailer after %d rows", rows)
	}
	if rows != *hdr.Groups {
		return fmt.Errorf("header says %d groups, saw %d rows", *hdr.Groups, rows)
	}
	return nil
}

// audit prints the outcome census and decides the exit code.
func audit(outcomes []outcome, elapsed time.Duration, maxP99 time.Duration, minOK int) int {
	counts := map[string]int{}
	var okLats []time.Duration
	var failures []string
	for _, o := range outcomes {
		counts[o.kind]++
		switch {
		case o.kind == "ok":
			okLats = append(okLats, o.latency)
		case expectedCodes[o.kind]:
			// typed overload outcome: fine
		default:
			if len(failures) < 5 {
				failures = append(failures, fmt.Sprintf("%s: %s", o.kind, o.detail))
			}
		}
	}

	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("aggload: %d requests in %v\n", len(outcomes), elapsed.Round(time.Millisecond))
	for _, k := range kinds {
		fmt.Printf("  %-22s %d\n", k, counts[k])
	}

	code := 0
	if p99 := quantile(okLats, 0.99); len(okLats) > 0 {
		fmt.Printf("  p50 %v  p99 %v\n",
			quantile(okLats, 0.50).Round(time.Millisecond), p99.Round(time.Millisecond))
		if maxP99 > 0 && p99 > maxP99 {
			fmt.Printf("aggload: FAIL p99 %v exceeds bound %v\n", p99, maxP99)
			code = 1
		}
	}
	if counts["ok"] < minOK {
		fmt.Printf("aggload: FAIL only %d successes, need %d\n", counts["ok"], minOK)
		code = 1
	}
	if len(failures) > 0 {
		fmt.Printf("aggload: FAIL untyped or malformed outcomes:\n  %s\n",
			strings.Join(failures, "\n  "))
		code = 1
	}
	if code == 0 {
		fmt.Println("aggload: PASS — every outcome typed, bounds held")
	}
	return code
}

func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	i := int(q * float64(len(lats)-1))
	return lats[i]
}
