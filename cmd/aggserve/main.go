// Command aggserve hosts the multi-tenant aggregation service: a long-lived
// HTTP server answering JSONL aggregation queries over a set of shared
// datasets, with admission control against one global memory budget,
// per-request deadlines, a result cache, and graceful drain on SIGTERM.
//
// Examples:
//
//	aggserve -datasets events=zipf:1048576:65536
//	aggserve -addr :9090 -budget 268435456 \
//	  -datasets 'events=zipf:4194304:65536:7,clicks=uniform:1048576:4096'
//	aggserve -datasets 'urls=strings:1048576:65536,pairs=composite2:1048576:65536'
//
// Endpoints: POST /v1/aggregate (JSONL), GET /healthz, GET /metrics.
// See docs/SERVING.md for the request format, the admission state machine,
// and the error taxonomy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cacheagg"
	"cacheagg/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		specs = flag.String("datasets", "demo=zipf:1048576:65536",
			"comma-separated dataset specs, each name=kind:rows:keydomain[:seed]; kind is a distribution (uniform | zipf | ...) or a general-key kind (strings | composite2) whose rows carry decoded keys")
		budget   = flag.Int64("budget", 256<<20, "global memory budget in bytes (0 = unlimited)")
		queue    = flag.Int("queue", 64, "admission queue depth")
		maxWait  = flag.Duration("max-wait", 5*time.Second, "longest a query may wait for budget")
		workers  = flag.Int("query-workers", 2, "worker threads per query (0 = GOMAXPROCS)")
		qcache   = flag.Int("query-cache", 256<<10, "per-worker cache bytes per query")
		rcache   = flag.Int64("result-cache", 16<<20, "result cache bytes (0 disables)")
		deadline = flag.Duration("default-deadline", 10*time.Second,
			"deadline for queries that set none (0 = unlimited)")
		maxDl     = flag.Duration("max-deadline", 60*time.Second, "cap on client-requested deadlines")
		drainWait = flag.Duration("drain-timeout", 30*time.Second,
			"how long shutdown waits for in-flight queries")
		ingestDir = flag.String("ingest-dir", "",
			"directory for durable streaming ingest sessions (empty disables /v1/ingest)")
		ingestBudget = flag.Int64("ingest-budget", 0,
			"per-session ingest memory budget in bytes (0 = unlimited)")
		ingestEpoch = flag.Int64("ingest-epoch-rows", 0,
			"rows per ingest epoch checkpoint (0 = library default)")
		ingestNoSync = flag.Bool("ingest-no-sync", false,
			"skip checkpoint fsyncs (tests/benchmarks only; unsafe on power loss)")
	)
	flag.Parse()

	reg, err := parseDatasets(*specs)
	if err != nil {
		return err
	}
	tracer := cacheagg.NewTracer(1 << 14)
	srv, err := serve.NewServer(serve.Config{
		Registry: reg,
		Admission: serve.AdmitConfig{
			BudgetBytes: *budget,
			MaxQueue:    *queue,
			MaxWait:     *maxWait,
		},
		QueryWorkers:     *workers,
		QueryCacheBytes:  *qcache,
		ResultCacheBytes: *rcache,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDl,
		Tracer:           tracer,

		IngestDir:          *ingestDir,
		IngestBudgetBytes:  *ingestBudget,
		IngestEpochMaxRows: *ingestEpoch,
		IngestNoSync:       *ingestNoSync,
	})
	if err != nil {
		return err
	}

	// Listen before serving so the actual bound address (significant with
	// ":0" in tests and drills) is printed, not the requested one.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT → drain: stop admitting, let in-flight queries finish
	// (bounded by -drain-timeout), then close the listener.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("aggserve: listening on %s (%d datasets, budget %d bytes)\n",
			ln.Addr(), len(reg.Names()), *budget)
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err // listener died before any signal
	case <-ctx.Done():
	}
	stop()
	fmt.Println("aggserve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	<-errc
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Println("aggserve: drained, bye")
	return nil
}

// parseDatasets builds the registry from a comma-separated spec list.
func parseDatasets(specs string) (*serve.Registry, error) {
	var ds []*serve.Dataset
	for _, s := range strings.Split(specs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		d, err := serve.ParseDatasetSpec(s)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("-datasets: no datasets given")
	}
	return serve.NewRegistry(ds...)
}
