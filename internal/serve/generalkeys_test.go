package serve

// Serve-layer coverage for general keys: string/composite datasets whose
// responses decode group ids back to original key values, the KEYDICT
// durable sidecar, and string-keyed ingest sessions across a restart.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cacheagg/internal/datagen"
	"cacheagg/internal/testutil"
)

// TestStringDatasetQueryDecodesKeys hosts a strings-kind dataset and
// checks every response row carries the decoded URL key, with counts
// matching an independently regenerated oracle.
func TestStringDatasetQueryDecodesKeys(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const n, k, seed = 1 << 14, 512, 3
	d, err := ParseDatasetSpec(fmt.Sprintf("urls=strings:%d:%d:%d", n, k, seed))
	if err != nil {
		t.Fatal(err)
	}
	if !d.GeneralKeys() {
		t.Fatal("strings dataset is not general-keyed")
	}
	reg, err := NewRegistry(d)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Registry: reg})

	// Independent oracle: regenerate the raw keys the spec parser used
	// (general kinds force a uniform distribution) and count per string.
	raw := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: n, K: k, Seed: seed})
	want := make(map[string]int64)
	for _, key := range raw {
		want[datagen.StringKey(key)]++
	}

	resp := postQuery(t, ts.URL, `{"dataset":"urls","aggregates":[{"func":"count"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	_, rows := parseResponse(t, resp)
	if len(rows) != len(want) {
		t.Fatalf("%d groups, oracle has %d", len(rows), len(want))
	}
	for _, r := range rows {
		if len(r.K) != 1 {
			t.Fatalf("group %d: k = %v, want one column", r.G, r.K)
		}
		s, ok := r.K[0].(string)
		if !ok || !strings.HasPrefix(s, "https://") {
			t.Fatalf("group %d: decoded key %v is not a URL string", r.G, r.K[0])
		}
		if r.A[0] != want[s] {
			t.Fatalf("key %q: count %d, want %d", s, r.A[0], want[s])
		}
	}
}

// TestCompositeDatasetQueryDecodesKeys does the same for the two-column
// composite kind: each row's k holds both original uint64 columns.
func TestCompositeDatasetQueryDecodesKeys(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const n, k, seed = 1 << 13, 256, 9
	d, err := ParseDatasetSpec(fmt.Sprintf("pairs=composite2:%d:%d:%d", n, k, seed))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(d)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Registry: reg})

	spec := datagen.Spec{Dist: datagen.Uniform, N: n, K: k, Seed: seed}
	cc := datagen.GenerateComposite(spec, 2)
	want := make(map[[2]uint64]int64)
	for i := 0; i < n; i++ {
		want[[2]uint64{cc[0][i], cc[1][i]}]++
	}

	resp := postQuery(t, ts.URL, `{"dataset":"pairs","aggregates":[{"func":"count"}]}`)
	_, rows := parseResponse(t, resp)
	if len(rows) != len(want) {
		t.Fatalf("%d groups, oracle has %d", len(rows), len(want))
	}
	for _, r := range rows {
		if len(r.K) != 2 {
			t.Fatalf("group %d: k = %v, want two columns", r.G, r.K)
		}
		// JSON numbers decode as float64; the generator keeps values small
		// enough for that to be exact.
		tup := [2]uint64{uint64(r.K[0].(float64)), uint64(r.K[1].(float64))}
		if r.A[0] != want[tup] {
			t.Fatalf("tuple %v: count %d, want %d", tup, r.A[0], want[tup])
		}
	}
}

// TestInlineQueryHasNoKeyField pins that uint64 datasets and inline
// queries are unchanged by the general-key path: no "k" in rows.
func TestInlineQueryHasNoKeyField(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, Config{})
	resp := postQuery(t, ts.URL, `{"keys":[1,2,1],"aggregates":[{"func":"count"}]}`)
	_, rows := parseResponse(t, resp)
	for _, r := range rows {
		if r.K != nil {
			t.Fatalf("inline query row has k = %v", r.K)
		}
	}
}

// TestKeyDictRoundTripAndTornTail unit-tests the durable sidecar: dense
// id assignment, reload equivalence, and torn-tail truncation.
func TestKeyDictRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := createKeyDict(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := d.encode([]string{"alpha", "beta", "alpha", "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []uint64{0, 1, 0, 2}
	for i, id := range ids {
		if id != wantIDs[i] {
			t.Fatalf("ids = %v, want %v", ids, wantIDs)
		}
	}
	// Re-encoding known keys is stable and appends nothing.
	again, err := d.encode([]string{"gamma", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != 2 || again[1] != 1 {
		t.Fatalf("re-encode = %v", again)
	}
	d.close()

	// Reload assigns the same ids and decodes them back.
	d2, ok, err := loadKeyDict(dir, true)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	strs, err := d2.decode([]uint64{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if strs[0] != "gamma" || strs[1] != "alpha" || strs[2] != "beta" {
		t.Fatalf("decode = %v", strs)
	}
	if _, err := d2.decode([]uint64{99}); err == nil {
		t.Fatal("decoding an unknown id must fail")
	}
	d2.close()

	// A torn tail — half an entry — is truncated at load; the entries
	// before it survive.
	f, err := os.OpenFile(filepath.Join(dir, keyDictName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 1, 'x'}); err != nil { // claims 200 bytes, has 1
		t.Fatal(err)
	}
	f.Close()
	d3, ok, err := loadKeyDict(dir, true)
	if err != nil || !ok {
		t.Fatalf("load after tear: ok=%v err=%v", ok, err)
	}
	if len(d3.strs) != 3 {
		t.Fatalf("after tear: %d entries, want 3", len(d3.strs))
	}
	// The truncated file accepts new appends cleanly.
	ids, err = d3.encode([]string{"delta"})
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 3 {
		t.Fatalf("post-tear id = %d, want 3", ids[0])
	}
	d3.close()

	// A directory without a KEYDICT reports ok=false (uint64 session).
	if _, ok, err := loadKeyDict(t.TempDir(), true); err != nil || ok {
		t.Fatalf("missing dict: ok=%v err=%v", ok, err)
	}
}

// TestIngestStringSession drives a string-keyed session over the wire —
// begin, pushes, seal, query with decoded keys — then reboots the server
// and checks the dictionary resumes with the checkpoint, so post-restart
// pushes keep extending the same id space.
func TestIngestStringSession(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	reg := testRegistry(t, 1<<12)
	s1, ts1 := newTestServer(t, Config{Registry: reg, IngestDir: dir, IngestNoSync: true})

	resp := postIngest(t, ts1.URL, `{"session":"urls","op":"begin","key_type":"string","aggregates":[{"func":"count"},{"func":"sum","col":0}]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)

	// Key-type mismatches are typed 400s, both directions.
	resp = postIngest(t, ts1.URL, `{"session":"urls","op":"push","keys":[1,2],"columns":[[1,1]]}`)
	if code := errorCode(t, resp); code != "bad_request" {
		t.Fatalf("uint64 push into string session: code %q", code)
	}
	resp = postIngest(t, ts1.URL, `{"session":"urls","op":"begin","key_type":"martian","aggregates":[{"func":"count"}]}`)
	if code := errorCode(t, resp); code != "bad_request" {
		t.Fatalf("bad key_type: code %q", code)
	}
	resp = postIngest(t, ts1.URL, `{"session":"urls","op":"push","keys":[1],"skeys":["a"],"columns":[[1]]}`)
	if code := errorCode(t, resp); code != "bad_request" {
		t.Fatalf("both key blocks: code %q", code)
	}

	resp = postIngest(t, ts1.URL, `{"session":"urls","op":"push","skeys":["/a","/b","/a"],"columns":[[10,20,30]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	resp = postIngest(t, ts1.URL, `{"session":"urls","op":"seal"}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)

	resp = postIngest(t, ts1.URL, `{"session":"urls","op":"query"}`)
	wantStatus(t, resp, http.StatusOK)
	_, rows := parseResponse(t, resp)
	counts := map[string]int64{}
	for _, r := range rows {
		counts[r.K[0].(string)] = r.A[0]
	}
	if counts["/a"] != 2 || counts["/b"] != 1 {
		t.Fatalf("pre-restart counts = %v", counts)
	}

	// Reboot around the live session.
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	_, ts2 := newTestServer(t, Config{Registry: reg, IngestDir: dir, IngestNoSync: true})

	// The resumed session still refuses uint64 pushes…
	resp = postIngest(t, ts2.URL, `{"session":"urls","op":"push","keys":[5],"columns":[[1]]}`)
	if code := errorCode(t, resp); code != "bad_request" {
		t.Fatalf("post-resume uint64 push: code %q", code)
	}
	// …and maps old strings to their old ids while interning new ones.
	resp = postIngest(t, ts2.URL, `{"session":"urls","op":"push","skeys":["/b","/c"],"columns":[[7,9]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)

	resp = postIngest(t, ts2.URL, `{"session":"urls","op":"finish"}`)
	wantStatus(t, resp, http.StatusOK)
	_, rows = parseResponse(t, resp)
	want := map[string][2]int64{"/a": {2, 40}, "/b": {2, 27}, "/c": {1, 9}}
	if len(rows) != len(want) {
		t.Fatalf("finish groups = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.K[0].(string)]
		if !ok || r.A[0] != w[0] || r.A[1] != w[1] {
			t.Fatalf("group %v = %v, want %v", r.K, r.A, w)
		}
	}
}
