// Package cachesim provides an execution substrate for validating the
// external-memory analysis of paper Section 2 empirically: a
// fully-associative LRU cache model in front of a word-addressed memory,
// counting cache-line transfers, plus instrumented implementations of the
// four textbook aggregation algorithms whose closed-form costs internal/emm
// computes.
//
// The paper measures its claims on real hardware; this repository cannot
// fix cache sizes of the host machine, so the simulator substitutes for
// hardware performance counters: the algorithms below perform every data
// access through the simulated cache, and the resulting transfer counts can
// be compared directly against the model curves of Figure 1 (shape-exact at
// reduced scale).
//
// The cache is fully associative with perfect LRU — the idealized cache of
// the external memory model. One transfer is counted per line read into the
// cache (miss) and per dirty line written back (writeback).
package cachesim

import "fmt"

// Cache is a fully-associative write-back, write-allocate LRU cache.
type Cache struct {
	lineWords     int
	capacityLines int

	// Intrusive LRU list over nodes, most recently used at head.
	lines map[int64]*node
	head  *node
	tail  *node
	free  []*node

	hits       int64
	misses     int64
	writebacks int64
}

type node struct {
	addr  int64 // line address (word address / lineWords)
	dirty bool
	prev  *node
	next  *node
}

// NewCache creates a cache holding capacityWords words in lines of
// lineWords words each.
func NewCache(capacityWords, lineWords int) *Cache {
	if lineWords <= 0 || capacityWords < lineWords {
		panic(fmt.Sprintf("cachesim: invalid cache geometry %d/%d", capacityWords, lineWords))
	}
	return &Cache{
		lineWords:     lineWords,
		capacityLines: capacityWords / lineWords,
		lines:         make(map[int64]*node),
	}
}

// LineWords returns B, the words per line.
func (c *Cache) LineWords() int { return c.lineWords }

// CapacityLines returns M/B, the number of lines the cache holds.
func (c *Cache) CapacityLines() int { return c.capacityLines }

// Hits returns the number of accesses served from cache.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of lines read from memory.
func (c *Cache) Misses() int64 { return c.misses }

// Writebacks returns the number of dirty lines written back to memory.
func (c *Cache) Writebacks() int64 { return c.writebacks }

// Transfers returns the total number of cache line transfers: misses plus
// writebacks — the quantity of the external memory model.
func (c *Cache) Transfers() int64 { return c.misses + c.writebacks }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses, c.writebacks = 0, 0, 0 }

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) pushFront(n *node) {
	n.next = c.head
	n.prev = nil
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Access simulates one word access at the given word address.
func (c *Cache) Access(wordAddr int64, write bool) {
	line := wordAddr / int64(c.lineWords)
	if n, ok := c.lines[line]; ok {
		c.hits++
		if write {
			n.dirty = true
		}
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return
	}
	c.misses++
	var n *node
	if len(c.lines) >= c.capacityLines {
		// Evict LRU.
		n = c.tail
		c.unlink(n)
		delete(c.lines, n.addr)
		if n.dirty {
			c.writebacks++
		}
	} else if len(c.free) > 0 {
		n = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		n = &node{}
	}
	n.addr = line
	n.dirty = write
	c.lines[line] = n
	c.pushFront(n)
}

// Flush writes back all dirty lines and empties the cache. It counts a
// writeback per dirty line, modeling the final drain of results to memory.
func (c *Cache) Flush() {
	for addr, n := range c.lines {
		if n.dirty {
			c.writebacks++
		}
		delete(c.lines, addr)
		c.free = append(c.free, n)
	}
	c.head, c.tail = nil, nil
}

// Machine couples the cache with a bump-allocated word-addressed memory and
// hands out typed arrays whose every element access goes through the cache.
type Machine struct {
	Cache *Cache
	next  int64
}

// NewMachine creates a machine with the given cache geometry.
func NewMachine(cacheWords, lineWords int) *Machine {
	return &Machine{Cache: NewCache(cacheWords, lineWords)}
}

// Array is a line-aligned array in simulated memory.
type Array struct {
	m    *Machine
	base int64
	data []uint64
}

// NewArray allocates a line-aligned array of n words.
func (m *Machine) NewArray(n int) Array {
	lw := int64(m.Cache.lineWords)
	base := (m.next + lw - 1) / lw * lw
	m.next = base + int64(n)
	return Array{m: m, base: base, data: make([]uint64, n)}
}

// Len returns the number of words in the array.
func (a Array) Len() int { return len(a.data) }

// Read returns element i, charging a simulated read access.
func (a Array) Read(i int) uint64 {
	a.m.Cache.Access(a.base+int64(i), false)
	return a.data[i]
}

// Write stores element i, charging a simulated write access.
func (a Array) Write(i int, v uint64) {
	a.m.Cache.Access(a.base+int64(i), true)
	a.data[i] = v
}

// Peek reads without charging the cache (for test verification only).
func (a Array) Peek(i int) uint64 { return a.data[i] }

// Poke writes without charging the cache (for test setup only).
func (a Array) Poke(i int, v uint64) { a.data[i] = v }
