package sortagg

import (
	"sort"
	"testing"
	"testing/quick"

	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

func refCounts(keys []uint64) map[uint64]int64 {
	m := map[uint64]int64{}
	for _, k := range keys {
		m[k]++
	}
	return m
}

func checkSortedResult(t *testing.T, name string, res *Result, keys []uint64) {
	t.Helper()
	want := refCounts(keys)
	if res.Groups() != len(want) {
		t.Fatalf("%s: %d groups, want %d", name, res.Groups(), len(want))
	}
	if !sort.SliceIsSorted(res.Keys, func(i, j int) bool { return res.Keys[i] < res.Keys[j] }) {
		t.Fatalf("%s: result keys not sorted", name)
	}
	for i, k := range res.Keys {
		if res.Counts[i] != want[k] {
			t.Fatalf("%s: key %d count %d, want %d", name, k, res.Counts[i], want[k])
		}
	}
}

func algos() map[string]func([]uint64) *Result {
	return map[string]func([]uint64) *Result{
		"SortAggregate":  SortAggregate,
		"MergeAggregate": func(k []uint64) *Result { return MergeAggregate(k, 256) },
		"RadixAggregate": RadixAggregate,
	}
}

func TestAllAlgorithmsOnDistributions(t *testing.T) {
	for _, dist := range []datagen.Dist{datagen.Uniform, datagen.Sorted, datagen.HeavyHitter, datagen.Zipf} {
		for _, k := range []uint64{1, 100, 5000} {
			keys := datagen.Generate(datagen.Spec{Dist: dist, N: 20000, K: k, Seed: 8})
			for name, f := range algos() {
				checkSortedResult(t, name, f(keys), keys)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for name, f := range algos() {
		if res := f(nil); res.Groups() != 0 {
			t.Fatalf("%s: empty input produced groups", name)
		}
	}
}

func TestSingleElement(t *testing.T) {
	for name, f := range algos() {
		res := f([]uint64{42})
		if res.Groups() != 1 || res.Keys[0] != 42 || res.Counts[0] != 1 {
			t.Fatalf("%s: %+v", name, res)
		}
	}
}

func TestAllSameKey(t *testing.T) {
	keys := make([]uint64, 10000)
	for name, f := range algos() {
		res := f(keys)
		if res.Groups() != 1 || res.Counts[0] != 10000 {
			t.Fatalf("%s: %+v", name, res)
		}
	}
}

func TestLargeKeysRadix(t *testing.T) {
	// Radix sort must handle keys using all 8 byte positions.
	rng := xrand.NewXoshiro256(1)
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Next() // full 64-bit range
	}
	checkSortedResult(t, "RadixAggregate", RadixAggregate(keys), keys)
}

func TestMergeAggregateRunLens(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.MovingCluster, N: 30000, K: 5000, Seed: 3})
	for _, runLen := range []int{1, 7, 100, 1 << 20, 0} {
		checkSortedResult(t, "MergeAggregate", MergeAggregate(keys, runLen), keys)
	}
}

// TestEarlyAggregationShrinksRuns: on a low-cardinality input, the merge
// tree's intermediate runs must collapse toward K entries — the point of
// early aggregation.
func TestEarlyAggregationShrinksRuns(t *testing.T) {
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = uint64(i % 10)
	}
	res := MergeAggregate(keys, 1024)
	if res.Groups() != 10 {
		t.Fatalf("groups = %d", res.Groups())
	}
	for _, c := range res.Counts {
		if c != 10000 {
			t.Fatalf("counts = %v", res.Counts)
		}
	}
}

func TestQuickAllAgree(t *testing.T) {
	f := func(seed uint64, nRaw uint16, domRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		dom := uint64(domRaw)%300 + 1
		rng := xrand.NewXoshiro256(seed)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Next() % dom
		}
		a := SortAggregate(keys)
		b := MergeAggregate(keys, 64)
		c := RadixAggregate(keys)
		if a.Groups() != b.Groups() || a.Groups() != c.Groups() {
			return false
		}
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] || a.Keys[i] != c.Keys[i] ||
				a.Counts[i] != b.Counts[i] || a.Counts[i] != c.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortAggregate(b *testing.B) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 1 << 16, K: 1 << 12, Seed: 1})
	b.SetBytes(int64(len(keys)) * 8)
	for i := 0; i < b.N; i++ {
		SortAggregate(keys)
	}
}

func BenchmarkMergeAggregate(b *testing.B) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 1 << 16, K: 1 << 12, Seed: 1})
	b.SetBytes(int64(len(keys)) * 8)
	for i := 0; i < b.N; i++ {
		MergeAggregate(keys, 0)
	}
}

func BenchmarkRadixAggregate(b *testing.B) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 1 << 16, K: 1 << 12, Seed: 1})
	b.SetBytes(int64(len(keys)) * 8)
	for i := 0; i < b.N; i++ {
		RadixAggregate(keys)
	}
}
