// Package datagen reimplements the synthetic data generators of Cieslewicz
// and Ross that the paper uses for its skew-resistance evaluation
// (Section 6.5): heavy-hitter, moving-cluster, self-similar, sequential,
// sorted, uniform, and zipf. Keys are 64-bit integers in [1, K]; any
// combination of N and K can be generated (for skewed distributions the
// realized number of distinct keys only approximates K, exactly as the
// paper notes — "since data cannot have K = N groups and be skewed at the
// same time, K is only approximated").
//
// All generators are deterministic functions of their Spec (including the
// seed), so every experiment in this repository is exactly reproducible.
package datagen

import (
	"fmt"
	"math"

	"cacheagg/internal/xrand"
)

// Dist enumerates the supported distributions.
type Dist int

const (
	// Uniform draws keys independently and uniformly from [1, K].
	Uniform Dist = iota
	// Sequential cycles deterministically through 1, 2, …, K, 1, 2, …
	Sequential
	// Sorted produces the sorted uniform multiset: N/K consecutive copies
	// of each key in increasing order (maximal locality).
	Sorted
	// HeavyHitter gives 50 % of the rows (configurable via HitFraction)
	// the key 1; the rest are uniform in [2, K].
	HeavyHitter
	// MovingCluster draws keys uniformly from a window of Window
	// consecutive keys that slides from 1 to K over the course of the
	// input (the paper's window size is 1024).
	MovingCluster
	// SelfSimilar is Gray et al.'s self-similar distribution with an
	// 80–20 proportion (configurable via H).
	SelfSimilar
	// Zipf is the Zipfian distribution with exponent 0.5 (configurable
	// via Theta), sampled exactly with Hörmann & Derflinger's
	// rejection-inversion method.
	Zipf

	numDists
)

// Dists lists all distributions in a stable order (the order of the
// paper's Figure 9 legend, alphabetical).
func Dists() []Dist {
	return []Dist{HeavyHitter, MovingCluster, SelfSimilar, Sequential, Sorted, Uniform, Zipf}
}

// String returns the paper's name of the distribution.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Sequential:
		return "sequential"
	case Sorted:
		return "sorted"
	case HeavyHitter:
		return "heavy-hitter"
	case MovingCluster:
		return "moving-cluster"
	case SelfSimilar:
		return "self-similar"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// ParseDist maps a distribution name back to its Dist value.
func ParseDist(s string) (Dist, error) {
	for _, d := range Dists() {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("datagen: unknown distribution %q", s)
}

// Spec describes one dataset.
type Spec struct {
	Dist Dist
	N    int    // number of rows
	K    uint64 // key domain size (target group count)
	Seed uint64

	// Window is the moving-cluster window size; 0 selects the paper's 1024.
	Window uint64
	// H is the self-similar skew (fraction of keys receiving 1-H of the
	// mass); 0 selects the paper's 80–20 rule (H = 0.2).
	H float64
	// Theta is the Zipf exponent; 0 selects the paper's 0.5.
	Theta float64
	// HitFraction is the heavy-hitter mass on key 1; 0 selects the
	// paper's 0.5.
	HitFraction float64
}

// String renders the spec like "uniform(N=1024, K=64, seed=1)".
func (s Spec) String() string {
	return fmt.Sprintf("%s(N=%d, K=%d, seed=%d)", s.Dist, s.N, s.K, s.Seed)
}

// Generate materializes the dataset as a key column.
func Generate(s Spec) []uint64 {
	if s.N < 0 {
		panic("datagen: negative N")
	}
	if s.K < 1 {
		panic("datagen: K must be at least 1")
	}
	keys := make([]uint64, s.N)
	Fill(keys, s)
	return keys
}

// Fill writes the dataset into the provided slice (len(keys) rows,
// overriding s.N).
func Fill(keys []uint64, s Spec) {
	n := len(keys)
	rng := xrand.NewXoshiro256(s.Seed)
	switch s.Dist {
	case Uniform:
		for i := range keys {
			keys[i] = 1 + rng.Uint64n(s.K)
		}
	case Sequential:
		for i := range keys {
			keys[i] = 1 + uint64(i)%s.K
		}
	case Sorted:
		// N/K consecutive copies of each key: key = 1 + floor(i*K/N).
		for i := range keys {
			keys[i] = 1 + uint64(math.Floor(float64(i)*float64(s.K)/float64(n)))
			if keys[i] > s.K {
				keys[i] = s.K
			}
		}
	case HeavyHitter:
		frac := s.HitFraction
		if frac == 0 {
			frac = 0.5
		}
		thresh := uint64(frac * float64(1<<63) * 2)
		for i := range keys {
			if rng.Next() < thresh || s.K == 1 {
				keys[i] = 1
			} else {
				keys[i] = 2 + rng.Uint64n(s.K-1)
			}
		}
	case MovingCluster:
		w := s.Window
		if w == 0 {
			w = 1024
		}
		if w > s.K {
			w = s.K
		}
		span := s.K - w // window start slides over [0, span]
		for i := range keys {
			var lo uint64
			if n > 1 {
				lo = uint64(float64(span) * float64(i) / float64(n-1))
			}
			keys[i] = 1 + lo + rng.Uint64n(w)
		}
	case SelfSimilar:
		h := s.H
		if h == 0 {
			h = 0.2
		}
		// Gray et al.: key = 1 + floor(K * u^(log h / log(1-h))).
		exp := math.Log(h) / math.Log(1-h)
		for i := range keys {
			u := rng.Float64()
			k := uint64(float64(s.K) * math.Pow(u, exp))
			if k >= s.K {
				k = s.K - 1
			}
			keys[i] = 1 + k
		}
	case Zipf:
		theta := s.Theta
		if theta == 0 {
			theta = 0.5
		}
		z := newZipf(theta, s.K)
		for i := range keys {
			keys[i] = z.sample(rng)
		}
	default:
		panic(fmt.Sprintf("datagen: unknown distribution %d", int(s.Dist)))
	}
}

// CountDistinct returns the number of distinct keys in the column — the
// realized K of a generated dataset.
func CountDistinct(keys []uint64) int {
	seen := make(map[uint64]struct{}, 1024)
	for _, k := range keys {
		seen[k] = struct{}{}
	}
	return len(seen)
}

// zipf samples Zipf-distributed integers in [1, K] with P(k) ∝ k^-theta
// using the rejection-inversion method of Hörmann & Derflinger ("Rejection-
// inversion to generate variates from monotone discrete distributions").
// Exact for any theta > 0, theta ≠ 1 handled via the general integral.
type zipf struct {
	theta            float64
	k                uint64
	hIntegralX1      float64
	hIntegralNumElem float64
	s                float64
}

func newZipf(theta float64, k uint64) *zipf {
	if theta <= 0 {
		panic("datagen: zipf exponent must be positive")
	}
	z := &zipf{theta: theta, k: k}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElem = z.hIntegral(float64(k) + 0.5)
	z.s = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// hIntegral is ∫ x^-theta dx = (x^(1-theta) - 1)/(1-theta), continued as
// log(x) at theta = 1.
func (z *zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.theta)*logX) * logX
}

func (z *zipf) h(x float64) float64 { return math.Exp(-z.theta * math.Log(x)) }

func (z *zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.theta)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with the x→0 limit.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with the x→0 limit.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

func (z *zipf) sample(rng *xrand.Xoshiro256) uint64 {
	if z.k == 1 {
		return 1
	}
	for {
		u := z.hIntegralNumElem + rng.Float64()*(z.hIntegralX1-z.hIntegralNumElem)
		x := z.hIntegralInverse(u)
		k := math.Round(x)
		if k < 1 {
			k = 1
		} else if k > float64(z.k) {
			k = float64(z.k)
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k)
		}
	}
}
