package serve

// The wire request: one JSON object per query (the request body is a
// single JSONL line; the response is a JSONL stream, see server.go). The
// decoder is the server's first line of defense — it must reject hostile
// input with typed 4xx errors and never panic, a property pinned by
// FuzzServeRequest.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"cacheagg"
)

// Priority is the admission class of a query. Higher classes are admitted
// first and can displace queued lower-class work under overload.
type Priority int

const (
	// PriorityLow marks best-effort work: first to be shed.
	PriorityLow Priority = iota
	// PriorityNormal is the default class.
	PriorityNormal
	// PriorityHigh marks latency-sensitive work.
	PriorityHigh
)

// String returns the wire name of the priority.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	default:
		return "normal"
	}
}

func parsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	default:
		return 0, fmt.Errorf("unknown priority %q (low | normal | high)", s)
	}
}

// AggRef names one requested aggregate on the wire.
type AggRef struct {
	// Func is the aggregate function: count | sum | min | max | avg.
	Func string `json:"func"`
	// Col is the input column index (ignored for count).
	Col int `json:"col,omitempty"`
}

func parseFunc(s string) (cacheagg.Func, error) {
	switch s {
	case "count":
		return cacheagg.Count, nil
	case "sum":
		return cacheagg.Sum, nil
	case "min":
		return cacheagg.Min, nil
	case "max":
		return cacheagg.Max, nil
	case "avg":
		return cacheagg.Avg, nil
	default:
		return 0, fmt.Errorf("unknown aggregate func %q (count | sum | min | max | avg)", s)
	}
}

// Request is one aggregation query. Exactly one of Dataset (a server-side
// shared dataset) or Keys (small inline input) must be set.
type Request struct {
	// Dataset names a dataset registered with the server.
	Dataset string `json:"dataset,omitempty"`
	// Keys is an inline grouping column for ad-hoc queries; bounded by
	// Limits.MaxInlineRows.
	Keys []uint64 `json:"keys,omitempty"`
	// Columns are inline aggregate input columns (inline queries only).
	Columns [][]int64 `json:"columns,omitempty"`
	// Aggregates lists the requested aggregate output columns. Empty
	// computes the distinct groups.
	Aggregates []AggRef `json:"aggregates,omitempty"`
	// Priority is the admission class: low | normal | high ("" = normal).
	Priority string `json:"priority,omitempty"`
	// DeadlineMillis bounds the query's total time in the server —
	// queueing included. 0 means no client deadline (the server's
	// MaxWait still bounds the queued phase).
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// NoCache bypasses the result cache (read and fill).
	NoCache bool `json:"no_cache,omitempty"`
	// Routine overrides the execution-routine selection:
	// auto | partitioned | global | sort-spill ("" = auto).
	Routine string `json:"routine,omitempty"`
}

func parseRoutine(s string) (cacheagg.Routine, error) {
	switch s {
	case "", "auto":
		return cacheagg.RoutineAuto, nil
	case "partitioned":
		return cacheagg.RoutinePartitioned, nil
	case "global":
		return cacheagg.RoutineGlobal, nil
	case "sort-spill":
		return cacheagg.RoutineSortSpill, nil
	default:
		return 0, fmt.Errorf("unknown routine %q (auto | partitioned | global | sort-spill)", s)
	}
}

// Limits bounds what DecodeRequest accepts. The zero value selects the
// defaults.
type Limits struct {
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxInlineRows caps len(Keys) of inline queries (default 65536).
	MaxInlineRows int
	// MaxAggregates caps the requested aggregate count (default 16).
	MaxAggregates int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 1 << 20
	}
	if l.MaxInlineRows <= 0 {
		l.MaxInlineRows = 1 << 16
	}
	if l.MaxAggregates <= 0 {
		l.MaxAggregates = 16
	}
	return l
}

// DecodeRequest reads one JSON request from r under the given limits.
// Every failure is a typed *Error with a 4xx status; the decoder never
// panics on hostile input (FuzzServeRequest pins this).
func DecodeRequest(r io.Reader, lim Limits) (*Request, error) {
	lim = lim.withDefaults()
	body, err := io.ReadAll(io.LimitReader(r, lim.MaxBodyBytes+1))
	if err != nil {
		return nil, errf(ErrBadRequest, err, "reading request body: %v", err)
	}
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, errf(ErrRequestTooLarge, nil,
			"request body exceeds %d bytes", lim.MaxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, errf(ErrBadRequest, err, "invalid request JSON: %v", err)
	}
	// Reject trailing garbage after the request object (a second JSON
	// value smells like request smuggling, not sloppiness).
	if err := checkTrailer(dec); err != nil {
		return nil, err
	}
	if err := req.validate(lim); err != nil {
		return nil, err
	}
	return &req, nil
}

func checkTrailer(dec *json.Decoder) error {
	var trailing json.RawMessage
	err := dec.Decode(&trailing)
	if errors.Is(err, io.EOF) {
		return nil
	}
	return errf(ErrBadRequest, nil, "trailing data after request object")
}

func (r *Request) validate(lim Limits) error {
	inline := len(r.Keys) > 0 || len(r.Columns) > 0
	switch {
	case r.Dataset != "" && inline:
		return errf(ErrBadRequest, nil, "request sets both dataset and inline keys")
	case r.Dataset == "" && len(r.Keys) == 0:
		return errf(ErrBadRequest, nil, "request needs a dataset name or inline keys")
	}
	if strings.ContainsAny(r.Dataset, " \t\n") {
		return errf(ErrBadRequest, nil, "dataset name contains whitespace")
	}
	if len(r.Keys) > lim.MaxInlineRows {
		return errf(ErrBadRequest, nil,
			"inline keys exceed %d rows", lim.MaxInlineRows)
	}
	for i, col := range r.Columns {
		if len(col) != len(r.Keys) {
			return errf(ErrBadRequest, nil,
				"column %d has %d rows, keys have %d", i, len(col), len(r.Keys))
		}
	}
	if len(r.Aggregates) > lim.MaxAggregates {
		return errf(ErrBadRequest, nil,
			"%d aggregates exceed the limit of %d", len(r.Aggregates), lim.MaxAggregates)
	}
	if _, err := parsePriority(r.Priority); err != nil {
		return errf(ErrBadRequest, nil, "%v", err)
	}
	if _, err := parseRoutine(r.Routine); err != nil {
		return errf(ErrBadRequest, nil, "%v", err)
	}
	if r.DeadlineMillis < 0 {
		return errf(ErrBadRequest, nil, "negative deadline_ms %d", r.DeadlineMillis)
	}
	for i, a := range r.Aggregates {
		if _, err := parseFunc(a.Func); err != nil {
			return errf(ErrBadRequest, nil, "aggregate %d: %v", i, err)
		}
		if a.Col < 0 {
			return errf(ErrBadRequest, nil, "aggregate %d: negative column %d", i, a.Col)
		}
	}
	return nil
}

// aggSpecs converts the wire aggregates to operator specs. Column bounds
// against the actual input width are checked by the caller (the width of
// a dataset is not known to the decoder).
func (r *Request) aggSpecs() []cacheagg.AggSpec {
	specs := make([]cacheagg.AggSpec, len(r.Aggregates))
	for i, a := range r.Aggregates {
		f, _ := parseFunc(a.Func) // validated in DecodeRequest
		specs[i] = cacheagg.AggSpec{Func: f, Col: a.Col}
	}
	return specs
}

// priority returns the validated admission class.
func (r *Request) priority() Priority {
	p, _ := parsePriority(r.Priority) // validated in DecodeRequest
	return p
}

// routine returns the validated routine override.
func (r *Request) routine() cacheagg.Routine {
	rt, _ := parseRoutine(r.Routine) // validated in DecodeRequest
	return rt
}
