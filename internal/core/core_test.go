package core

import (
	"sort"
	"testing"
	"testing/quick"

	"cacheagg/internal/agg"
	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

// smallCfg provokes deep recursion at test scale: a tiny "cache" makes
// tables fill after ~1k rows.
func smallCfg(s Strategy) Config {
	return Config{
		Strategy:   s,
		Workers:    2,
		CacheBytes: 64 << 10, // table capacity 2048 rows (words=0), fill 512
		ChunkRows:  512,
		MorselRows: 2048,
	}
}

// refAggregate is the trivially correct reference: map-based aggregation.
func refAggregate(in *Input) map[uint64][]int64 {
	lay := agg.NewLayout(in.Specs)
	states := map[uint64][]uint64{}
	// One closure over a row cursor, hoisted out of the loop: a closure
	// literal inside the loop escapes and costs one allocation per row.
	row := 0
	vals := func(c int) int64 { return in.AggCols[c][row] }
	for i, k := range in.Keys {
		row = i
		if st, ok := states[k]; ok {
			lay.FoldRow(st, vals)
		} else {
			st := make([]uint64, lay.Words)
			lay.InitRow(st, vals)
			states[k] = st
		}
	}
	out := map[uint64][]int64{}
	for k, st := range states {
		out[k] = lay.FinalizeRow(st, nil)
	}
	return out
}

// checkResult compares an operator result with the reference.
func checkResult(t *testing.T, res *Result, in *Input) {
	t.Helper()
	want := refAggregate(in)
	if res.Groups() != len(want) {
		t.Fatalf("got %d groups, want %d", res.Groups(), len(want))
	}
	seen := map[uint64]bool{}
	for r := 0; r < res.Groups(); r++ {
		k := res.Keys[r]
		if seen[k] {
			t.Fatalf("key %d duplicated in result", k)
		}
		seen[k] = true
		wantRow, ok := want[k]
		if !ok {
			t.Fatalf("phantom key %d in result", k)
		}
		for si := range in.Specs {
			if res.Aggs[si][r] != wantRow[si] {
				t.Fatalf("key %d spec %v: got %d, want %d",
					k, in.Specs[si], res.Aggs[si][r], wantRow[si])
			}
		}
	}
}

func allStrategies() []Strategy {
	return []Strategy{
		HashingOnly(),
		PartitionAlways(1),
		PartitionAlways(2),
		PartitionOnly(),
		DefaultAdaptive(),
		Adaptive(2, 1), // aggressive switcher
	}
}

func TestDistinctSmall(t *testing.T) {
	keys := []uint64{5, 3, 5, 5, 9, 3}
	res, err := Distinct(smallCfg(nil), keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != 3 {
		t.Fatalf("got %d groups, want 3", res.Groups())
	}
	got := append([]uint64(nil), res.Keys...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []uint64{3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for _, s := range allStrategies() {
		res, err := Distinct(smallCfg(s), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Groups() != 0 {
			t.Fatalf("%s: empty input gave %d groups", s.Name(), res.Groups())
		}
	}
}

func TestSingleRow(t *testing.T) {
	in := &Input{
		Keys:    []uint64{42},
		AggCols: [][]int64{{-7}},
		Specs:   []agg.Spec{{Kind: agg.Count}, {Kind: agg.Sum, Col: 0}},
	}
	res, err := Aggregate(smallCfg(nil), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != 1 || res.Keys[0] != 42 || res.Aggs[0][0] != 1 || res.Aggs[1][0] != -7 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestAllStrategiesMatchReference(t *testing.T) {
	const n = 60000
	for _, dist := range []datagen.Dist{datagen.Uniform, datagen.Sorted, datagen.HeavyHitter, datagen.MovingCluster} {
		for _, k := range []uint64{1, 10, 3000, 40000} {
			keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: k, Seed: 77})
			vals := make([]int64, n)
			rng := xrand.NewXoshiro256(3)
			for i := range vals {
				vals[i] = int64(rng.Next()%2001) - 1000
			}
			in := &Input{
				Keys:    keys,
				AggCols: [][]int64{vals},
				Specs: []agg.Spec{
					{Kind: agg.Count},
					{Kind: agg.Sum, Col: 0},
					{Kind: agg.Min, Col: 0},
					{Kind: agg.Max, Col: 0},
					{Kind: agg.Avg, Col: 0},
				},
			}
			for _, s := range allStrategies() {
				res, err := Aggregate(smallCfg(s), in)
				if err != nil {
					t.Fatalf("%s/%v/K=%d: %v", s.Name(), dist, k, err)
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s/%v/K=%d panicked: %v", s.Name(), dist, k, r)
						}
					}()
					checkResult(t, res, in)
				}()
			}
		}
	}
}

func TestDistinctAllDistributions(t *testing.T) {
	const n = 40000
	for _, dist := range datagen.Dists() {
		keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: 20000, Seed: 5})
		want := datagen.CountDistinct(keys)
		for _, s := range []Strategy{HashingOnly(), DefaultAdaptive(), PartitionOnly()} {
			res, err := Distinct(smallCfg(s), keys)
			if err != nil {
				t.Fatal(err)
			}
			if res.Groups() != want {
				t.Fatalf("%s on %v: %d groups, want %d", s.Name(), dist, res.Groups(), want)
			}
		}
	}
}

func TestResultOrderedByHash(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 50000, K: 30000, Seed: 8})
	res, err := Distinct(smallCfg(DefaultAdaptive()), keys)
	if err != nil {
		t.Fatal(err)
	}
	// The output is the concatenation of per-bucket chunks in bucket
	// order; buckets partition the hash space by prefix, so the top
	// digit(s) must be non-decreasing across the result.
	for i := 1; i < res.Groups(); i++ {
		if res.Hashes[i]>>56 < res.Hashes[i-1]>>56 {
			t.Fatalf("hash digit order violated at row %d: %#x after %#x",
				i, res.Hashes[i], res.Hashes[i-1])
		}
	}
}

func TestSingleWorkerMatchesParallel(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Zipf, N: 50000, K: 10000, Seed: 13})
	cfg1 := smallCfg(DefaultAdaptive())
	cfg1.Workers = 1
	cfg4 := smallCfg(DefaultAdaptive())
	cfg4.Workers = 4
	r1, err := Distinct(cfg1, keys)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Distinct(cfg4, keys)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Groups() != r4.Groups() {
		t.Fatalf("worker counts disagree: %d vs %d groups", r1.Groups(), r4.Groups())
	}
	// Same group set.
	k1 := append([]uint64(nil), r1.Keys...)
	k4 := append([]uint64(nil), r4.Keys...)
	sort.Slice(k1, func(i, j int) bool { return k1[i] < k1[j] })
	sort.Slice(k4, func(i, j int) bool { return k4[i] < k4[j] })
	for i := range k1 {
		if k1[i] != k4[i] {
			t.Fatalf("group sets differ at %d", i)
		}
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	in := &Input{
		Keys:  []uint64{1, 2},
		Specs: []agg.Spec{{Kind: agg.Sum, Col: 0}},
	}
	if _, err := Aggregate(Config{}, in); err == nil {
		t.Fatal("expected error: spec references missing column")
	}
	in2 := &Input{
		Keys:    []uint64{1, 2},
		AggCols: [][]int64{{1}},
		Specs:   []agg.Spec{{Kind: agg.Sum, Col: 0}},
	}
	if _, err := Aggregate(Config{}, in2); err == nil {
		t.Fatal("expected error: column length mismatch")
	}
}

// TestQuickAgainstReference is the main property test: arbitrary key
// streams with small domains, all strategies, full aggregate set.
func TestQuickAgainstReference(t *testing.T) {
	strategies := allStrategies()
	f := func(seed uint64, nRaw uint16, domRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		dom := uint64(domRaw)%200 + 1
		rng := xrand.NewXoshiro256(seed)
		keys := make([]uint64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Next() % dom
			vals[i] = int64(rng.Next()%101) - 50
		}
		in := &Input{
			Keys:    keys,
			AggCols: [][]int64{vals},
			Specs:   []agg.Spec{{Kind: agg.Count}, {Kind: agg.Sum, Col: 0}, {Kind: agg.Avg, Col: 0}},
		}
		want := refAggregate(in)
		s := strategies[int(seed%uint64(len(strategies)))]
		cfg := Config{
			Strategy:   s,
			Workers:    1 + int(seed>>8%3),
			CacheBytes: 32 << 10,
			MorselRows: 512,
			ChunkRows:  128,
		}
		res, err := Aggregate(cfg, in)
		if err != nil || res.Groups() != len(want) {
			return false
		}
		for r := 0; r < res.Groups(); r++ {
			wantRow, ok := want[res.Keys[r]]
			if !ok {
				return false
			}
			for si := range in.Specs {
				if res.Aggs[si][r] != wantRow[si] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCollection(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 100000, K: 60000, Seed: 21})
	cfg := smallCfg(DefaultAdaptive())
	cfg.CollectStats = true
	res, err := Distinct(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Passes < 2 {
		t.Fatalf("large-K run should need ≥ 2 passes, got %d", st.Passes)
	}
	if st.LevelRows[0] != 100000 {
		t.Fatalf("level-0 rows = %d, want 100000", st.LevelRows[0])
	}
	if st.HashedRows+st.PartitionedRows == 0 {
		t.Fatal("no routed rows recorded")
	}
	if st.Tasks == 0 || st.DirectEmits == 0 {
		t.Fatalf("tasks %d, directEmits %d", st.Tasks, st.DirectEmits)
	}
	// Adaptive on a high-K uniform input must have switched to
	// partitioning at least once and emitted tables with low α.
	if st.TablesEmitted == 0 {
		t.Fatal("no tables emitted despite K > cache")
	}
	if st.Switches == 0 {
		t.Fatal("adaptive never switched on uniform high-K input")
	}
	if mean := st.AlphaSum / float64(st.TablesEmitted); mean > DefaultAlpha0 {
		t.Fatalf("mean alpha %f should be below α₀ for near-distinct input", mean)
	}
}

func TestAdaptiveUsesHashingOnSkewedData(t *testing.T) {
	// Sorted data has maximal locality: adaptive should keep hashing
	// (tables reduce massively), partitioning only rarely.
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Sorted, N: 200000, K: 100000, Seed: 2})
	cfg := smallCfg(DefaultAdaptive())
	cfg.CollectStats = true
	res, err := Distinct(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.HashedRows < st.PartitionedRows {
		t.Fatalf("sorted input: hashing %d rows < partitioning %d rows — locality not exploited",
			st.HashedRows, st.PartitionedRows)
	}
}

func TestAdaptiveUsesPartitioningOnUniformHighK(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 200000, K: 150000, Seed: 2})
	cfg := smallCfg(DefaultAdaptive())
	cfg.CollectStats = true
	res, err := Distinct(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	// With K ≫ cache and no locality, most intake rows should flow
	// through the fast partitioning routine (hashing only in the
	// periodic probes and the final passes).
	if st.PartitionedRows < st.HashedRows/4 {
		t.Fatalf("uniform high-K: partitioned %d vs hashed %d — adaptive failed to switch",
			st.PartitionedRows, st.HashedRows)
	}
}

func TestHashingOnlyNeverPartitions(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 100000, K: 80000, Seed: 4})
	cfg := smallCfg(HashingOnly())
	cfg.CollectStats = true
	res, err := Distinct(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PartitionedRows != 0 {
		t.Fatalf("HashingOnly partitioned %d rows", res.Stats.PartitionedRows)
	}
}

func TestPartitionAlwaysPassStructure(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 100000, K: 80000, Seed: 4})
	cfg := smallCfg(PartitionAlways(1))
	cfg.CollectStats = true
	res, err := Distinct(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	// One partitioning pass at intake + final hashing at level 1: exactly
	// 2 passes.
	if st.Passes != 2 {
		t.Fatalf("PartitionAlways(1) used %d passes, want 2", st.Passes)
	}
	if st.LevelRows[0] != 100000 {
		t.Fatalf("level 0 rows %d", st.LevelRows[0])
	}
}

func TestHugeGroupCountDeepRecursion(t *testing.T) {
	// All keys distinct with a tiny cache: forces ≥ 3 levels.
	const n = 1 << 17
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	cfg := Config{
		Strategy:   HashingOnly(),
		Workers:    2,
		CacheBytes: 8 << 10,
		MorselRows: 4096,
		ChunkRows:  256,
	}
	cfg.CollectStats = true
	res, err := Distinct(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != n {
		t.Fatalf("got %d groups, want %d", res.Groups(), n)
	}
	if res.Stats.Passes < 2 {
		t.Fatalf("expected deep recursion, got %d passes", res.Stats.Passes)
	}
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]Strategy{
		"HashingOnly":        HashingOnly(),
		"PartitionAlways(2)": PartitionAlways(2),
		"PartitionOnly":      PartitionOnly(),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
	if Adaptive(0, -1).Name() != DefaultAdaptive().Name() {
		t.Error("defaulted adaptive should match DefaultAdaptive")
	}
}

func TestPartitionAlwaysPanicsOnZeroPasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionAlways(0)
}

func TestModeString(t *testing.T) {
	if ModeHash.String() != "hash" || ModePartition.String() != "partition" || ModeFinal.String() != "final" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}

// TestCarryHashesModeMatchesRecompute: the ablation switch must not change
// any result, only the intermediate layout.
func TestCarryHashesModeMatchesRecompute(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.MovingCluster, N: 80000, K: 40000, Seed: 23})
	vals := make([]int64, len(keys))
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	in := &Input{
		Keys:    keys,
		AggCols: [][]int64{vals},
		Specs:   []agg.Spec{{Kind: agg.Count}, {Kind: agg.Sum, Col: 0}},
	}
	for _, s := range allStrategies() {
		cfgA := smallCfg(s)
		cfgB := smallCfg(s)
		cfgB.CarryHashes = true
		a, err := Aggregate(cfgA, in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Aggregate(cfgB, in)
		if err != nil {
			t.Fatal(err)
		}
		if a.Groups() != b.Groups() {
			t.Fatalf("%s: %d vs %d groups", s.Name(), a.Groups(), b.Groups())
		}
		checkResult(t, a, in)
		checkResult(t, b, in)
	}
}

// TestAdaptiveSwitchesOnMixedLocality drives the Appendix A.2 scenario (a
// UNION ALL of opposite-locality halves) through the engine and asserts
// the adaptive machinery actually reacted: both routines ran, the strategy
// switched, and the result is still exact.
func TestAdaptiveSwitchesOnMixedLocality(t *testing.T) {
	const half = 120000
	sorted := datagen.Generate(datagen.Spec{Dist: datagen.Sorted, N: half, K: half / 64, Seed: 1})
	uniform := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: half, K: half, Seed: 2})
	keys := append(append(make([]uint64, 0, 2*half), sorted...), uniform...)
	for i := half; i < len(keys); i++ {
		keys[i] += 1 << 40 // disjoint key spaces
	}
	cfg := Config{
		Strategy:     DefaultAdaptive(),
		Workers:      1, // deterministic stream order
		CacheBytes:   64 << 10,
		CollectStats: true,
	}
	res, err := Distinct(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	want := datagen.CountDistinct(keys)
	if res.Groups() != want {
		t.Fatalf("groups = %d, want %d", res.Groups(), want)
	}
	st := res.Stats
	if st.Switches == 0 {
		t.Fatal("adaptive never switched on a mixed-locality stream")
	}
	if st.HashedRows == 0 || st.PartitionedRows == 0 {
		t.Fatalf("both routines should run: hashed=%d partitioned=%d",
			st.HashedRows, st.PartitionedRows)
	}
	// The sorted half reduces ~64×, so a meaningful share of emitted
	// tables must have seen high α (mean pulled above the uniform-only
	// value of ~1).
	if mean := st.AlphaSum / float64(st.TablesEmitted); mean < 1.2 {
		t.Fatalf("mean α %.2f too low — locality of the sorted half not exploited", mean)
	}
}
