package main

import (
	"fmt"
	"sync/atomic"

	"cacheagg/internal/bench"
	"cacheagg/internal/columnar"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/sortagg"
	"cacheagg/internal/xrand"
)

// tblSortDual compares classic sort-based aggregation (textbook sort,
// merge sort with early aggregation, LSD radix sort) against the paper's
// operator — the executable form of the "hashing is sorting" duality: the
// ADAPTIVE operator is itself a radix sort over hash digits with early
// aggregation, and should behave like the best of the sort algorithms on
// every input.
func tblSortDual(sc scale) []*bench.Table {
	t := bench.NewTable(
		fmt.Sprintf("Duality — sort-based aggregation vs the operator, ns/elem (N=2^%d)", sc.logN),
		"dist", "K", "SortAgg", "MergeAgg(early)", "RadixAgg", "ADAPTIVE")
	cases := []struct {
		dist datagen.Dist
		k    uint64
	}{
		{datagen.Uniform, 1 << 10},
		{datagen.Uniform, uint64(sc.n / 2)},
		{datagen.Sorted, uint64(sc.n / 4)},
		{datagen.HeavyHitter, uint64(sc.n / 4)},
	}
	for _, c := range cases {
		keys := datagen.Generate(datagen.Spec{Dist: c.dist, N: sc.n, K: c.k, Seed: 19})
		et := func(f func()) float64 {
			return bench.ElementTime(bench.MedianOf(sc.reps, f), 1, sc.n, 1)
		}
		sortNs := et(func() { sortagg.SortAggregate(keys) })
		mergeNs := et(func() { sortagg.MergeAggregate(keys, 0) })
		radixNs := et(func() { sortagg.RadixAggregate(keys) })
		cfg := core.Config{Strategy: core.DefaultAdaptive(), Workers: 1, CacheBytes: sc.cache}
		adaptNs := et(func() {
			if _, err := core.Distinct(cfg, keys); err != nil {
				panic(err)
			}
		})
		t.AddRow(c.dist.String(), bench.FormatCount(int64(c.k)), sortNs, mergeNs, radixNs, adaptNs)
	}
	return []*bench.Table{t}
}

// tblColumnar compares the three column-processing models of Section 3.3
// (Figure 2): row-at-a-time, column-at-a-time with a materialized mapping
// vector, and block-wise interleaving.
func tblColumnar(sc scale) []*bench.Table {
	t := bench.NewTable(
		fmt.Sprintf("Section 3.3 — column-processing models, ns/elem (SUM GROUP BY, N=2^%d)", sc.logN),
		"K", "row-at-a-time", "column-at-a-time", "block-wise")
	rng := xrand.NewXoshiro256(21)
	vals := make([]int64, sc.n)
	for i := range vals {
		vals[i] = int64(rng.Next() % 1000)
	}
	for _, kExp := range []int{8, 14, sc.logN - 2} {
		k := uint64(1) << uint(kExp)
		keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: k, Seed: 22})
		et := func(f func()) float64 {
			return bench.ElementTime(bench.MedianOf(sc.reps, f), 1, sc.n, 2)
		}
		rowNs := et(func() { columnar.SumRowAtATime(keys, vals) })
		colNs := et(func() { columnar.SumColumnAtATime(keys, vals) })
		blkNs := et(func() { columnar.SumBlockWise(keys, vals, 0) })
		t.AddRow(bench.FormatCount(int64(k)), rowNs, colNs, blkNs)
	}
	return []*bench.Table{t}
}

// fig6Interference reproduces the Section 6.2 co-runner experiment: the
// operator under (a) no load, (b) cache-resident dummy threads, and (c)
// memory-bandwidth-hogging memcpy dummies. The paper observes (b) to be
// harmless and (c) to cost up to 2× — evidence that the operator is
// memory-bandwidth-bound.
func fig6Interference(sc scale) []*bench.Table {
	t := bench.NewTable(
		fmt.Sprintf("Section 6.2 — co-runner interference (uniform, N=2^%d, P=%d)", sc.logN, sc.workers),
		"co-runners", "K=2^10 ns/elem", fmt.Sprintf("K=2^%d ns/elem", sc.logN-2))
	ks := []uint64{1 << 10, 1 << uint(sc.logN-2)}
	datasets := map[uint64][]uint64{}
	for _, k := range ks {
		datasets[k] = datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: k, Seed: 23})
	}
	cfg := core.Config{Strategy: core.DefaultAdaptive(), Workers: sc.workers, CacheBytes: sc.cache}

	runWith := func(dummies func(stop *atomic.Bool)) []any {
		row := []any{}
		var stop atomic.Bool
		if dummies != nil {
			dummies(&stop)
		}
		for _, k := range ks {
			d := bench.MedianOf(sc.reps, func() {
				if _, err := core.Distinct(cfg, datasets[k]); err != nil {
					panic(err)
				}
			})
			row = append(row, bench.ElementTime(d, sc.workers, sc.n, 1))
		}
		stop.Store(true)
		return row
	}

	t.AddRow(append([]any{"none"}, runWith(nil)...)...)

	// Cache-resident dummies: loop over a 256 KiB buffer.
	t.AddRow(append([]any{"cache-resident"}, runWith(func(stop *atomic.Bool) {
		for d := 0; d < sc.workers; d++ {
			go func() {
				buf := make([]uint64, 32768) // 256 KiB
				s := uint64(0)
				for !stop.Load() {
					for i := range buf {
						s += buf[i]
					}
					buf[0] = s
				}
			}()
		}
	})...)...)

	// Bandwidth hogs: out-of-cache memcpy loops.
	t.AddRow(append([]any{"memcpy"}, runWith(func(stop *atomic.Bool) {
		for d := 0; d < sc.workers; d++ {
			go func() {
				src := make([]uint64, 1<<22) // 32 MiB
				dst := make([]uint64, 1<<22)
				for !stop.Load() {
					copy(dst, src)
				}
			}()
		}
	})...)...)
	return []*bench.Table{t}
}

// tblAblation measures the hash-storage design choice: recomputing the
// hash from the key at every pass (the paper's layout, our default) vs
// carrying an 8-byte hash column through the runs.
func tblAblation(sc scale) []*bench.Table {
	t := bench.NewTable(
		fmt.Sprintf("Ablation — hash storage in runs, ns/elem (uniform, N=2^%d)", sc.logN),
		"K", "recompute (default)", "carry", "carry / recompute")
	for _, kExp := range []int{10, sc.logN - 4, sc.logN - 1} {
		k := uint64(1) << uint(kExp)
		keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: k, Seed: 27})
		run := func(carry bool) float64 {
			cfg := core.Config{
				Strategy:    core.DefaultAdaptive(),
				Workers:     sc.workers,
				CacheBytes:  sc.cache,
				CarryHashes: carry,
			}
			d := bench.MedianOf(sc.reps, func() {
				if _, err := core.Distinct(cfg, keys); err != nil {
					panic(err)
				}
			})
			return bench.ElementTime(d, sc.workers, sc.n, 1)
		}
		rec := run(false)
		car := run(true)
		t.AddRow(bench.FormatCount(int64(k)), rec, car, car/rec)
	}
	return []*bench.Table{t}
}
