// Package sortagg implements classic sort-based aggregation algorithms as
// executable counterparts of the paper's Section 2 analysis and Section 7
// related work:
//
//   - SortAggregate: textbook SORTAGGREGATION — fully sort the keys, then
//     aggregate adjacent equal keys in a separate pass (the naive curve of
//     Figure 1, with an in-memory comparison/radix sort).
//   - MergeAggregate: merge sort with EARLY AGGREGATION (Bitton & DeWitt
//     1983): duplicate keys are combined whenever two sorted runs merge, so
//     highly repetitive inputs shrink during the sort instead of at the
//     end. This is the sort-world ancestor of the paper's hashing-for-
//     early-aggregation idea.
//   - RadixAggregate: LSD radix sort on the keys followed by the fused
//     aggregation pass — bucket sort on the dense key domain, i.e. the
//     paper's SORTAGGREGATION-OPTIMIZED without the hash (only correct
//     general aggregation; efficient when keys are integers, as here).
//
// All three compute COUNT(*) GROUP BY key over a key column, like the
// baselines package, and exist to make the "hashing is sorting" comparison
// concrete: the paper's operator IS one of these algorithms, just sorting
// hash digits instead of keys and aggregating eagerly.
package sortagg

import (
	"sort"
)

// Result is a COUNT(*) GROUP BY result with groups in key-sorted order.
type Result struct {
	Keys   []uint64
	Counts []int64
}

// Groups returns the number of groups.
func (r *Result) Groups() int { return len(r.Keys) }

// SortAggregate sorts a copy of the keys and aggregates adjacent equals in
// a separate pass — textbook SORTAGGREGATION.
func SortAggregate(keys []uint64) *Result {
	if len(keys) == 0 {
		return &Result{}
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return aggregateSorted(sorted)
}

// aggregateSorted is the final aggregation pass over a sorted key column.
func aggregateSorted(sorted []uint64) *Result {
	res := &Result{}
	cur := sorted[0]
	count := int64(1)
	for _, k := range sorted[1:] {
		if k == cur {
			count++
			continue
		}
		res.Keys = append(res.Keys, cur)
		res.Counts = append(res.Counts, count)
		cur, count = k, 1
	}
	res.Keys = append(res.Keys, cur)
	res.Counts = append(res.Counts, count)
	return res
}

// kv is a (key, partial count) pair of the early-aggregating merge sort.
type kv struct {
	k uint64
	c int64
}

// MergeAggregate is merge sort with early aggregation: runs of (key, count)
// pairs are merged pairwise; equal keys combine immediately, so each merge
// level can only shrink the data. RunLen controls the initial sorted-run
// size (<= 0 selects 4096).
func MergeAggregate(keys []uint64, runLen int) *Result {
	if len(keys) == 0 {
		return &Result{}
	}
	if runLen <= 0 {
		runLen = 4096
	}
	// Build initial runs: sort a block, combine adjacent duplicates.
	var runs [][]kv
	for lo := 0; lo < len(keys); lo += runLen {
		hi := min(lo+runLen, len(keys))
		blk := append([]uint64(nil), keys[lo:hi]...)
		sort.Slice(blk, func(i, j int) bool { return blk[i] < blk[j] })
		run := make([]kv, 0, len(blk))
		cur := kv{k: blk[0], c: 1}
		for _, k := range blk[1:] {
			if k == cur.k {
				cur.c++
				continue
			}
			run = append(run, cur)
			cur = kv{k: k, c: 1}
		}
		run = append(run, cur)
		runs = append(runs, run)
	}
	// Merge pairwise until one run remains, aggregating duplicates as we go.
	for len(runs) > 1 {
		var next [][]kv
		for i := 0; i+1 < len(runs); i += 2 {
			next = append(next, mergeRuns(runs[i], runs[i+1]))
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		runs = next
	}
	out := runs[0]
	res := &Result{Keys: make([]uint64, len(out)), Counts: make([]int64, len(out))}
	for i, e := range out {
		res.Keys[i] = e.k
		res.Counts[i] = e.c
	}
	return res
}

// mergeRuns merges two sorted aggregated runs, combining equal keys with
// the super-aggregate (SUM of partial counts).
func mergeRuns(a, b []kv) []kv {
	out := make([]kv, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].k < b[j].k:
			out = append(out, a[i])
			i++
		case a[i].k > b[j].k:
			out = append(out, b[j])
			j++
		default:
			out = append(out, kv{k: a[i].k, c: a[i].c + b[j].c})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// RadixAggregate sorts the keys with an LSD radix sort (8 bits per pass,
// over the significant bytes of the maximum key) and aggregates adjacent
// equals — bucket sort on the dense integer domain, the executable version
// of the Section 2.1 analysis.
func RadixAggregate(keys []uint64) *Result {
	if len(keys) == 0 {
		return &Result{}
	}
	maxKey := uint64(0)
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	src := append([]uint64(nil), keys...)
	dst := make([]uint64, len(keys))
	for shift := uint(0); shift < 64 && maxKey>>shift > 0; shift += 8 {
		var counts [257]int
		for _, k := range src {
			counts[(k>>shift&0xff)+1]++
		}
		for d := 1; d < 257; d++ {
			counts[d] += counts[d-1]
		}
		for _, k := range src {
			d := k >> shift & 0xff
			dst[counts[d]] = k
			counts[d]++
		}
		src, dst = dst, src
	}
	return aggregateSorted(src)
}
