// Package bench provides the measurement harness shared by the figure
// benchmarks: repeated timing with median selection (the paper reports "the
// median of 10 runs", Section 6.1), the paper's "Element Time" metric, and
// plain-text table/series printers for regenerating the figures' data.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Time runs f once and returns its wall-clock duration.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// MedianOf runs f n times and returns the median duration. n < 1 is
// treated as 1.
func MedianOf(n int, f func()) time.Duration {
	if n < 1 {
		n = 1
	}
	ds := make([]time.Duration, n)
	for i := range ds {
		ds[i] = Time(f)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[n/2]
}

// ElementTime computes the paper's normalized metric (Section 6.1):
//
//	Element Time = T · P / N / C
//
// "the time each core spends to process one element", in nanoseconds per
// element, comparable across thread counts and column counts and against
// machine constants such as the cost of a cache miss.
func ElementTime(total time.Duration, workers, n, cols int) float64 {
	if n <= 0 || cols <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	return float64(total.Nanoseconds()) * float64(workers) / float64(n) / float64(cols)
}

// Throughput returns processed elements per second.
func Throughput(total time.Duration, n int) float64 {
	if total <= 0 {
		return 0
	}
	return float64(n) / total.Seconds()
}

// BandwidthMBs returns megabytes per second for the given payload size.
func BandwidthMBs(total time.Duration, bytes int64) float64 {
	if total <= 0 {
		return 0
	}
	return float64(bytes) / total.Seconds() / (1 << 20)
}

// Pow2s returns 2^lo, 2^(lo+step), …, 2^hi.
func Pow2s(lo, hi, step int) []int {
	if step < 1 {
		step = 1
	}
	var out []int
	for e := lo; e <= hi; e += step {
		out = append(out, 1<<uint(e))
	}
	return out
}

// FormatCount renders n with a power-of-two annotation when exact
// (e.g. "65536 (2^16)").
func FormatCount(n int64) string {
	if n > 0 && n&(n-1) == 0 {
		e := 0
		for v := n; v > 1; v >>= 1 {
			e++
		}
		return fmt.Sprintf("%d (2^%d)", n, e)
	}
	return fmt.Sprintf("%d", n)
}

// Table is a plain-text table printer with right-aligned numeric columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = formatCell(cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

func formatCell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return fmt.Sprintf("%.2f", x)
	case float32:
		return fmt.Sprintf("%.2f", x)
	case time.Duration:
		return x.Round(time.Microsecond).String()
	default:
		return fmt.Sprint(v)
	}
}

// NumRows returns the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	var head strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			head.WriteString("  ")
		}
		fmt.Fprintf(&head, "%-*s", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(head.String(), " "))))
	for _, r := range t.rows {
		var line strings.Builder
		for i, c := range r {
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// WriteTSV writes the table as tab-separated values (header + rows), the
// machine-readable companion for plotting.
func (t *Table) WriteTSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, "\t"))
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
}
