// Package dict provides dictionary encoding of composite and string
// grouping keys into dense 64-bit integers, the standard column-store
// technique that reduces any GROUP BY to the paper's setting (all columns
// are 64-bit integers, Section 6.1).
//
// Encoding assigns each distinct key tuple (or string) a dense id in
// first-appearance order; the aggregation operator then groups by the id
// column, and the dictionary decodes the result's group ids back into the
// original keys. Because ids are dense, they are also the friendliest
// possible input for the operator's hash-digit partitioning.
package dict

import (
	"encoding/binary"
	"fmt"
)

// TupleDict encodes rows of a fixed-width tuple of uint64 key columns.
type TupleDict struct {
	width  int
	index  map[string]uint64
	tuples []uint64 // decode storage: tuple id t occupies [t*width, (t+1)*width)
}

// NewTupleDict creates a dictionary for tuples of the given column count.
func NewTupleDict(width int) *TupleDict {
	if width < 1 {
		panic("dict: tuple width must be at least 1")
	}
	return &TupleDict{width: width, index: make(map[string]uint64)}
}

// Width returns the tuple width.
func (d *TupleDict) Width() int { return d.width }

// Len returns the number of distinct tuples seen.
func (d *TupleDict) Len() int { return len(d.tuples) / d.width }

// key serializes one row of the columns into the scratch buffer.
func (d *TupleDict) key(cols [][]uint64, row int, scratch []byte) []byte {
	scratch = scratch[:0]
	var b [8]byte
	for c := 0; c < d.width; c++ {
		binary.LittleEndian.PutUint64(b[:], cols[c][row])
		scratch = append(scratch, b[:]...)
	}
	return scratch
}

// EncodeColumns encodes all rows of the key columns into dense ids,
// appending new tuples to the dictionary. All columns must have equal
// length and there must be exactly Width of them.
func (d *TupleDict) EncodeColumns(cols [][]uint64) ([]uint64, error) {
	if len(cols) != d.width {
		return nil, fmt.Errorf("dict: %d key columns, want %d", len(cols), d.width)
	}
	n := 0
	if d.width > 0 {
		n = len(cols[0])
	}
	for c, col := range cols {
		if len(col) != n {
			return nil, fmt.Errorf("dict: key column %d has %d rows, want %d", c, len(col), n)
		}
	}
	ids := make([]uint64, n)
	scratch := make([]byte, 0, 8*d.width)
	for i := 0; i < n; i++ {
		k := d.key(cols, i, scratch)
		id, ok := d.index[string(k)]
		if !ok {
			id = uint64(d.Len())
			d.index[string(k)] = id
			for c := 0; c < d.width; c++ {
				d.tuples = append(d.tuples, cols[c][i])
			}
		}
		ids[i] = id
	}
	return ids, nil
}

// Decode returns the tuple of the given id. The returned slice aliases the
// dictionary's storage; callers must not modify it.
func (d *TupleDict) Decode(id uint64) []uint64 {
	off := int(id) * d.width
	return d.tuples[off : off+d.width]
}

// DecodeColumn fills out[c][i] with column c of the tuple ids[i], for every
// key column — the columnar decode used to materialize result key columns.
func (d *TupleDict) DecodeColumns(ids []uint64) [][]uint64 {
	out := make([][]uint64, d.width)
	for c := range out {
		out[c] = make([]uint64, len(ids))
	}
	for i, id := range ids {
		t := d.Decode(id)
		for c := 0; c < d.width; c++ {
			out[c][i] = t[c]
		}
	}
	return out
}

// StringDict encodes string keys into dense ids.
type StringDict struct {
	index map[string]uint64
	strs  []string
}

// NewStringDict creates an empty string dictionary.
func NewStringDict() *StringDict {
	return &StringDict{index: make(map[string]uint64)}
}

// Len returns the number of distinct strings seen.
func (d *StringDict) Len() int { return len(d.strs) }

// Encode returns the id of s, assigning a new one on first appearance.
func (d *StringDict) Encode(s string) uint64 {
	if id, ok := d.index[s]; ok {
		return id
	}
	id := uint64(len(d.strs))
	d.index[s] = id
	d.strs = append(d.strs, s)
	return id
}

// EncodeAll encodes a whole column.
func (d *StringDict) EncodeAll(vals []string) []uint64 {
	ids := make([]uint64, len(vals))
	for i, s := range vals {
		ids[i] = d.Encode(s)
	}
	return ids
}

// Value returns the string of the given id.
func (d *StringDict) Value(id uint64) string { return d.strs[id] }

// Values decodes a whole id column.
func (d *StringDict) Values(ids []uint64) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = d.strs[id]
	}
	return out
}
