module cacheagg

go 1.22
