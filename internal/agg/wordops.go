package agg

import "math"

// Op is the per-state-word combine operation. Every supported aggregate
// decomposes into state words that each combine with a single binary
// operation — this is what enables fully columnar, branch-light merge loops
// in the operator: the same op merges partial states regardless of whether
// the aggregate is COUNT or AVG, because the super-aggregate structure is
// captured per word (e.g. both AVG words combine by addition, COUNT's word
// combines by addition — the "super-aggregate of COUNT is SUM" rule falls
// out automatically).
type Op uint8

const (
	// OpAdd combines by wrapping signed addition.
	OpAdd Op = iota
	// OpMin combines by signed minimum.
	OpMin
	// OpMax combines by signed maximum.
	OpMax
)

// Identity returns the neutral element of the operation, used to
// pre-initialize freshly claimed hash-table slots so that folds and merges
// need no "is this the first value?" branch.
func (o Op) Identity() uint64 {
	switch o {
	case OpAdd:
		return 0
	case OpMin:
		return uint64(math.MaxInt64)
	case OpMax:
		return uint64(uint64(1) << 63) // math.MinInt64 as uint64 bits
	default:
		panic("agg: invalid op")
	}
}

// Apply combines two words with the operation.
func (o Op) Apply(a, b uint64) uint64 {
	switch o {
	case OpAdd:
		return uint64(int64(a) + int64(b))
	case OpMin:
		if int64(b) < int64(a) {
			return b
		}
		return a
	case OpMax:
		if int64(b) > int64(a) {
			return b
		}
		return a
	default:
		panic("agg: invalid op")
	}
}

// Src describes where a state word's contribution comes from when folding a
// RAW input row (as opposed to merging two partial states).
type Src uint8

const (
	// SrcCol takes the row's value in input column WordOp.Col.
	SrcCol Src = iota
	// SrcOne contributes the constant 1 (counting words).
	SrcOne
)

// WordOp fully describes one state word: how it combines (Op) and what a
// raw input row contributes to it (Src/Col).
type WordOp struct {
	Op  Op
	Src Src
	Col int
}

// RawValue returns the contribution of a raw input row to this word, where
// value(c) reads the row's input column c.
func (w WordOp) RawValue(value func(col int) int64) int64 {
	if w.Src == SrcOne {
		return 1
	}
	return value(w.Col)
}

// WordOps decomposes the layout into one WordOp per state word, in packed
// state order.
func (l *Layout) WordOps() []WordOp {
	ops := make([]WordOp, 0, l.Words)
	for _, s := range l.Specs {
		switch s.Kind {
		case Count:
			ops = append(ops, WordOp{Op: OpAdd, Src: SrcOne})
		case Sum:
			ops = append(ops, WordOp{Op: OpAdd, Src: SrcCol, Col: s.Col})
		case Min:
			ops = append(ops, WordOp{Op: OpMin, Src: SrcCol, Col: s.Col})
		case Max:
			ops = append(ops, WordOp{Op: OpMax, Src: SrcCol, Col: s.Col})
		case Avg:
			ops = append(ops,
				WordOp{Op: OpAdd, Src: SrcCol, Col: s.Col},
				WordOp{Op: OpAdd, Src: SrcOne})
		default:
			panic("agg: invalid kind in layout")
		}
	}
	return ops
}

// Identities returns the per-word identity vector of the layout, i.e. the
// state of a group no row has contributed to yet.
func (l *Layout) Identities() []uint64 {
	ops := l.WordOps()
	id := make([]uint64, len(ops))
	for i, o := range ops {
		id[i] = o.Op.Identity()
	}
	return id
}
