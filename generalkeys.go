package cacheagg

// General grouping keys: strings, composite multi-column tuples, NULLs.
// The operator's hot path works on 64-bit integer keys; AggregateGeneral
// reduces every other key shape to that setting by dictionary encoding
// (the paper's Section 6.1 observation): each distinct key interns to a
// dense uint64 through a concurrent dictionary (internal/intern), the ids
// aggregate through the unchanged batched kernels, spill codec, routine
// selection and merge, and the result's group ids decode back into the
// original key columns at emit time.

import (
	"context"
	"fmt"

	"cacheagg/internal/intern"
	"cacheagg/internal/trace"
)

// KeyType declares the logical type of one grouping-key column in a
// general-key schema. NULLs are permitted in any column.
type KeyType int

const (
	// KeyUint64 is a 64-bit unsigned integer key column.
	KeyUint64 KeyType = iota
	// KeyString is a variable-length string key column.
	KeyString
)

// String returns the schema name of the key type.
func (t KeyType) String() string {
	switch t {
	case KeyUint64:
		return "uint64"
	case KeyString:
		return "string"
	default:
		return fmt.Sprintf("KeyType(%d)", int(t))
	}
}

// KeyColumn is one grouping-key column of a general-key batch or result.
// Exactly one of Uint64s and Strings must be non-nil; Nulls, when
// non-nil, marks rows whose value in this column is NULL (the slot in the
// value slice is then ignored). For grouping, NULL equals NULL — the
// GROUP BY convention — and NULL is distinct from 0 and from "".
type KeyColumn struct {
	Uint64s []uint64
	Strings []string
	Nulls   []bool
}

// Type returns the column's declared key type.
func (c *KeyColumn) Type() KeyType {
	if c.Uint64s != nil {
		return KeyUint64
	}
	return KeyString
}

// Len returns the column's row count.
func (c *KeyColumn) Len() int {
	if c.Uint64s != nil {
		return len(c.Uint64s)
	}
	return len(c.Strings)
}

// IsNull reports whether row i of the column is NULL.
func (c *KeyColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

func (c *KeyColumn) toIntern() intern.Column {
	return intern.Column{U64: c.Uint64s, Str: c.Strings, Nulls: c.Nulls}
}

// Interner is a shared key dictionary: the mapping from general grouping
// keys to the dense uint64 ids the operator aggregates over. One Interner
// may back many AggregateGeneral calls (set Options.Interner), so ids —
// and therefore interned datasets — stay comparable across queries. All
// methods are safe for concurrent use.
type Interner struct {
	d *intern.Interner
}

// NewInterner returns an empty key dictionary.
func NewInterner() *Interner { return &Interner{d: intern.New()} }

// Len returns the number of distinct keys interned so far.
func (it *Interner) Len() int { return it.d.Len() }

// Bytes returns the total encoded size of all interned keys.
func (it *Interner) Bytes() int64 { return it.d.Bytes() }

// EncodeColumns interns every row of the key columns and returns its
// dense id per row — the GroupBy column an Aggregate call over this
// dictionary's ids expects.
func (it *Interner) EncodeColumns(cols []KeyColumn) ([]uint64, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("cacheagg: EncodeColumns needs at least one key column")
	}
	icols := make([]intern.Column, len(cols))
	for i := range cols {
		icols[i] = cols[i].toIntern()
	}
	ids := make([]uint64, cols[0].Len())
	if err := it.d.NewEncoder().EncodeColumns(icols, ids); err != nil {
		return nil, fmt.Errorf("cacheagg: %w", err)
	}
	return ids, nil
}

// DecodeGroups decodes dense group ids back into one KeyColumn per
// declared key column. Ids not produced by this dictionary, and schema
// mismatches, are errors.
func (it *Interner) DecodeGroups(ids []uint64, types []KeyType) ([]KeyColumn, error) {
	itypes := make([]intern.ColType, len(types))
	for i, t := range types {
		switch t {
		case KeyUint64:
			itypes[i] = intern.U64Col
		case KeyString:
			itypes[i] = intern.StrCol
		default:
			return nil, fmt.Errorf("cacheagg: invalid KeyType %d", int(t))
		}
	}
	icols, err := it.d.NewEncoder().DecodeColumns(ids, itypes)
	if err != nil {
		return nil, fmt.Errorf("cacheagg: %w", err)
	}
	cols := make([]KeyColumn, len(icols))
	for i := range icols {
		cols[i] = KeyColumn{Uint64s: icols[i].U64, Strings: icols[i].Str, Nulls: icols[i].Nulls}
	}
	return cols, nil
}

// GeneralInput is a GROUP BY over arbitrarily typed key columns.
type GeneralInput struct {
	// GroupBy holds the grouping key columns (all of equal length).
	GroupBy []KeyColumn
	// Columns are the aggregate input columns.
	Columns [][]int64
	// Aggregates lists the aggregate output columns to compute.
	Aggregates []AggSpec
}

// GeneralResult is the result of AggregateGeneral: row r of every column
// of GroupCols plus row r of every aggregate column describe one group.
type GeneralResult struct {
	// GroupCols holds the decoded grouping keys, one column per input key
	// column, ordered by the hash of the interned id.
	GroupCols []KeyColumn
	// Aggs holds one output column per requested Aggregate.
	Aggs [][]int64
	// Stats is the execution report; the Intern* and EncodeNanos fields
	// are populated even without Options.CollectStats.
	Stats Stats

	inner *Result
}

// Len returns the number of groups.
func (r *GeneralResult) Len() int {
	if len(r.GroupCols) == 0 {
		return 0
	}
	return r.GroupCols[0].Len()
}

// Float returns aggregate column a of group idx as float64 (exact for Avg).
func (r *GeneralResult) Float(a, idx int) float64 { return r.inner.Float(a, idx) }

// AggregateGeneral executes a GROUP BY over general key columns.
func AggregateGeneral(in GeneralInput, opt Options) (*GeneralResult, error) {
	return AggregateGeneralContext(context.Background(), in, opt)
}

// AggregateGeneralContext is AggregateGeneral with cancellation support.
// The encode and decode phases run before and after the operator proper;
// the interned aggregation itself has the same cancellation behaviour as
// AggregateContext.
func AggregateGeneralContext(ctx context.Context, in GeneralInput, opt Options) (*GeneralResult, error) {
	if len(in.GroupBy) == 0 {
		return nil, fmt.Errorf("cacheagg: AggregateGeneral needs at least one key column")
	}
	n := in.GroupBy[0].Len()
	types := make([]KeyType, len(in.GroupBy))
	for i := range in.GroupBy {
		c := &in.GroupBy[i]
		if (c.Uint64s == nil) == (c.Strings == nil) {
			return nil, fmt.Errorf("cacheagg: key column %d must set exactly one of Uint64s and Strings", i)
		}
		if c.Len() != n {
			return nil, fmt.Errorf("cacheagg: key column %d has %d rows, column 0 has %d", i, c.Len(), n)
		}
		types[i] = c.Type()
	}

	it := opt.Interner
	if it == nil {
		it = NewInterner()
	}
	enc := it.d.NewEncoder()
	if t := opt.Tracer; t != nil {
		rec := t.rec
		enc.OnGrow = func(shard, newSlots int) {
			rec.Emit(trace.KindInternGrow, 0, 0, int64(shard), float64(newSlots))
		}
	}
	icols := make([]intern.Column, len(in.GroupBy))
	for i := range in.GroupBy {
		icols[i] = in.GroupBy[i].toIntern()
	}
	ids := make([]uint64, n)
	tm := intern.StartEncodeTimer()
	if err := enc.EncodeColumns(icols, ids); err != nil {
		return nil, fmt.Errorf("cacheagg: %w", err)
	}
	encodeNanos := tm.Nanos()

	res, err := AggregateContext(ctx, Input{
		GroupBy:    ids,
		Columns:    in.Columns,
		Aggregates: in.Aggregates,
	}, opt)
	if err != nil {
		return nil, err
	}
	groups, err := it.DecodeGroups(res.Groups, types)
	if err != nil {
		return nil, err
	}
	out := &GeneralResult{
		GroupCols: groups,
		Aggs:      res.Aggs,
		Stats:     res.Stats,
		inner:     res,
	}
	out.Stats.InternedKeys = int64(it.Len())
	out.Stats.InternBytes = it.Bytes()
	out.Stats.EncodeNanos = encodeNanos
	return out, nil
}
