package main

// Process-level robustness drills. The test binary re-execs itself as the
// real server (AGGSERVE_CHILD=1 routes main through run()), so the drills
// exercise exactly what production runs: the listener, the signal
// handlers, and the ingest recovery path — not a test double.
//
//   - TestSIGTERMDrainSealsIngest: graceful shutdown. Buffered ingest
//     blocks must be sealed into a final epoch by the drain, and a
//     successor process must resume the session with those rows durable.
//   - TestCrashRecoverySIGKILL: the hard way. SIGKILL mid-epoch, restart
//     on the same directory, read the durable high-water mark, replay the
//     un-acknowledged suffix, and demand the final aggregates be
//     bit-identical to a single-process oracle run.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if os.Getenv("AGGSERVE_CHILD") == "1" {
		if err := run(); err != nil {
			fmt.Fprintln(os.Stderr, "aggserve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// server is one child aggserve process under test.
type server struct {
	cmd  *exec.Cmd
	addr string
	out  *bufio.Scanner // stdout, line-buffered
}

// startServer launches the test binary as an aggserve child and waits for
// its listen line to learn the bound address.
func startServer(t *testing.T, args ...string) *server {
	t.Helper()
	base := []string{"-addr", "127.0.0.1:0", "-datasets", "d=uniform:1024:64"}
	cmd := exec.Command(os.Args[0], append(base, args...)...)
	cmd.Env = append(os.Environ(), "AGGSERVE_CHILD=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "aggserve: listening on "); ok {
			addr := strings.Fields(rest)[0]
			return &server{cmd: cmd, addr: addr, out: sc}
		}
	}
	t.Fatalf("server never printed its listen line (scan err %v)", sc.Err())
	return nil
}

// waitLine reads child stdout until a line containing want appears.
func (s *server) waitLine(t *testing.T, want string) {
	t.Helper()
	for s.out.Scan() {
		if strings.Contains(s.out.Text(), want) {
			return
		}
	}
	t.Fatalf("child exited without printing %q (scan err %v)", want, s.out.Err())
}

// ingest posts one ingest op and returns (status, decoded single-object
// body) — for query/finish responses the raw JSONL body is returned
// under key "_jsonl".
func (s *server) ingest(t *testing.T, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post("http://"+s.addr+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/jsonl") {
		return resp.StatusCode, map[string]any{"_jsonl": string(raw)}
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("ingest response %q: %v", raw, err)
	}
	return resp.StatusCode, out
}

// pushBlock pushes one block, retrying on 429 backpressure until it is
// acknowledged or the deadline passes.
func (s *server) pushBlock(t *testing.T, session string, keys []uint64, col []int64) {
	t.Helper()
	kb, _ := json.Marshal(keys)
	cb, _ := json.Marshal(col)
	body := fmt.Sprintf(`{"session":%q,"op":"push","keys":%s,"columns":[%s]}`, session, kb, cb)
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _ := s.ingest(t, body)
		switch status {
		case http.StatusOK:
			return
		case http.StatusTooManyRequests:
			if time.Now().After(deadline) {
				t.Fatal("backpressure never cleared")
			}
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("push status %d", status)
		}
	}
}

// parseFinish extracts group→aggs from a finish/query JSONL body.
func parseFinish(t *testing.T, body string) map[uint64][]int64 {
	t.Helper()
	out := make(map[uint64][]int64)
	for i, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if i == 0 || strings.Contains(line, `"done"`) {
			continue
		}
		var row struct {
			G uint64  `json:"g"`
			A []int64 `json:"a"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %q: %v", line, err)
		}
		out[row.G] = row.A
	}
	return out
}

// drillInput is the deterministic workload both drills share.
func drillInput(rows int) (keys []uint64, col []int64) {
	rng := rand.New(rand.NewSource(42))
	keys = make([]uint64, rows)
	col = make([]int64, rows)
	for i := range keys {
		keys[i] = uint64(rng.Intn(97))
		col[i] = int64(rng.Intn(2001) - 1000)
	}
	return keys, col
}

// oracle computes count and sum per group over rows [0, n).
func oracle(keys []uint64, col []int64, n int) map[uint64][]int64 {
	out := make(map[uint64][]int64)
	for i := 0; i < n; i++ {
		a := out[keys[i]]
		if a == nil {
			a = []int64{0, 0}
			out[keys[i]] = a
		}
		a[0]++
		a[1] += col[i]
	}
	return out
}

func checkAggs(t *testing.T, got, want map[uint64][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for g, w := range want {
		a, ok := got[g]
		if !ok || len(a) != 2 || a[0] != w[0] || a[1] != w[1] {
			t.Fatalf("group %d = %v, want %v", g, a, w)
		}
	}
}

// TestSIGTERMDrainSealsIngest pushes blocks that nothing seals, SIGTERMs
// the server, and checks (a) the drain completes ("drained, bye"), and
// (b) a successor resumes the session with every acknowledged row durable
// — buffered blocks were checkpointed on the way down, not dropped.
func TestSIGTERMDrainSealsIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drill")
	}
	dir := t.TempDir()
	s1 := startServer(t, "-ingest-dir", dir, "-ingest-no-sync")
	status, _ := s1.ingest(t, `{"session":"term","op":"begin","aggregates":[{"func":"count"},{"func":"sum","col":0}]}`)
	if status != http.StatusOK {
		t.Fatalf("begin status %d", status)
	}
	keys, col := drillInput(100)
	s1.pushBlock(t, "term", keys[:50], col[:50])
	s1.pushBlock(t, "term", keys[50:], col[50:])

	if err := s1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	s1.waitLine(t, "drained, bye")
	if err := s1.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v", err)
	}

	s2 := startServer(t, "-ingest-dir", dir, "-ingest-no-sync")
	status, out := s2.ingest(t, `{"session":"term","op":"status"}`)
	if status != http.StatusOK {
		t.Fatalf("post-restart status %d: %v", status, out)
	}
	if out["rows_durable"].(float64) != 100 {
		t.Fatalf("rows_durable after SIGTERM = %v, want 100 (buffered blocks dropped?)", out["rows_durable"])
	}
	status, out = s2.ingest(t, `{"session":"term","op":"finish"}`)
	if status != http.StatusOK {
		t.Fatalf("finish status %d", status)
	}
	checkAggs(t, parseFinish(t, out["_jsonl"].(string)), oracle(keys, col, 100))
}

// TestCrashRecoverySIGKILL is the no-mercy drill: small epochs, SIGKILL
// mid-stream, restart on the same directory, replay from the durable
// high-water mark, and demand bit-identical final aggregates.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drill")
	}
	dir := t.TempDir()
	const (
		blockRows = 32
		total     = 1280
	)
	keys, col := drillInput(total)
	// Small epochs force many seal cycles so the kill lands mid-epoch.
	s1 := startServer(t, "-ingest-dir", dir, "-ingest-no-sync", "-ingest-epoch-rows", "64")
	status, _ := s1.ingest(t, `{"session":"kill","op":"begin","aggregates":[{"func":"count"},{"func":"sum","col":0}]}`)
	if status != http.StatusOK {
		t.Fatalf("begin status %d", status)
	}
	pushed := 0
	for ; pushed < total/2; pushed += blockRows {
		s1.pushBlock(t, "kill", keys[pushed:pushed+blockRows], col[pushed:pushed+blockRows])
	}
	// No drain, no seal: the process dies with an open epoch.
	if err := s1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	s1.cmd.Wait()

	s2 := startServer(t, "-ingest-dir", dir, "-ingest-no-sync", "-ingest-epoch-rows", "64")
	status, out := s2.ingest(t, `{"session":"kill","op":"status"}`)
	if status != http.StatusOK {
		t.Fatalf("post-crash status %d: %v", status, out)
	}
	durable := int(out["rows_durable"].(float64))
	if durable > pushed {
		t.Fatalf("rows_durable %d exceeds pushed %d", durable, pushed)
	}
	if durable%blockRows != 0 {
		t.Fatalf("rows_durable %d is not a block boundary", durable)
	}
	// Replay everything past the durable mark, then the rest of the input.
	for off := durable; off < total; off += blockRows {
		s2.pushBlock(t, "kill", keys[off:off+blockRows], col[off:off+blockRows])
	}
	status, out = s2.ingest(t, `{"session":"kill","op":"finish"}`)
	if status != http.StatusOK {
		t.Fatalf("finish status %d: %v", status, out)
	}
	checkAggs(t, parseFinish(t, out["_jsonl"].(string)), oracle(keys, col, total))

	// The drained-and-finished server still shuts down cleanly.
	if err := s2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	s2.waitLine(t, "drained, bye")
	if err := s2.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v", err)
	}
}
