package columnar

import (
	"testing"
	"testing/quick"

	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/xrand"
)

func refSums(keys []uint64, vals []int64) map[uint64]int64 {
	m := map[uint64]int64{}
	for i, k := range keys {
		m[k] += vals[i]
	}
	return m
}

func checkSums(t *testing.T, name string, groups []uint64, sums []int64, keys []uint64, vals []int64) {
	t.Helper()
	want := refSums(keys, vals)
	if len(groups) != len(want) {
		t.Fatalf("%s: %d groups, want %d", name, len(groups), len(want))
	}
	for i, g := range groups {
		if sums[i] != want[g] {
			t.Fatalf("%s: group %d sum %d, want %d", name, g, sums[i], want[g])
		}
	}
}

func genKV(seed uint64, n int, k uint64) ([]uint64, []int64) {
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: n, K: k, Seed: seed})
	rng := xrand.NewXoshiro256(seed + 1)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Next()%1001) - 500
	}
	return keys, vals
}

func TestAllModelsAgree(t *testing.T) {
	keys, vals := genKV(1, 30000, 4000)
	g1, s1 := SumRowAtATime(keys, vals)
	g2, s2 := SumColumnAtATime(keys, vals)
	g3, s3 := SumBlockWise(keys, vals, 512)
	checkSums(t, "row-at-a-time", g1, s1, keys, vals)
	checkSums(t, "column-at-a-time", g2, s2, keys, vals)
	checkSums(t, "block-wise", g3, s3, keys, vals)
	// All three must produce the same group order (first appearance).
	for i := range g1 {
		if g1[i] != g2[i] || g1[i] != g3[i] {
			t.Fatalf("group order differs at %d: %d %d %d", i, g1[i], g2[i], g3[i])
		}
	}
}

func TestMapGroupsRoundTrip(t *testing.T) {
	keys := []uint64{7, 7, 3, 7, 0, 3}
	gm := MapGroups(keys)
	wantGroups := []uint64{7, 3, 0}
	if len(gm.Groups) != 3 {
		t.Fatalf("groups = %v", gm.Groups)
	}
	for i := range wantGroups {
		if gm.Groups[i] != wantGroups[i] {
			t.Fatalf("groups = %v, want %v", gm.Groups, wantGroups)
		}
	}
	for i, k := range keys {
		if gm.Groups[gm.Map[i]] != k {
			t.Fatalf("mapping broken at row %d", i)
		}
	}
}

func TestMapGroupsEmptyAndZeroKey(t *testing.T) {
	gm := MapGroups(nil)
	if len(gm.Groups) != 0 || len(gm.Map) != 0 {
		t.Fatal("empty input")
	}
	gm = MapGroups([]uint64{0, 0})
	if len(gm.Groups) != 1 || gm.Groups[0] != 0 {
		t.Fatal("zero key must be supported")
	}
}

func TestIndexGrowth(t *testing.T) {
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = uint64(i) // all distinct: forces many grows
	}
	gm := MapGroups(keys)
	if len(gm.Groups) != len(keys) {
		t.Fatalf("lost groups during growth: %d", len(gm.Groups))
	}
	for i := range keys {
		if gm.Map[i] != uint32(i) {
			t.Fatalf("mapping wrong at %d", i)
		}
	}
}

func TestQuickModelsEquivalent(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		keys, vals := genKV(seed, n, uint64(n/2+1))
		g1, s1 := SumRowAtATime(keys, vals)
		g2, s2 := SumColumnAtATime(keys, vals)
		g3, s3 := SumBlockWise(keys, vals, 64)
		if len(g1) != len(g2) || len(g1) != len(g3) {
			return false
		}
		for i := range g1 {
			if g1[i] != g2[i] || g1[i] != g3[i] || s1[i] != s2[i] || s1[i] != s3[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionMapping(t *testing.T) {
	keys, _ := genKV(3, 10000, 5000)
	mapping, counts := PartitionMapping(keys, 0)
	if len(mapping) != len(keys) {
		t.Fatal("length mismatch")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(keys) {
		t.Fatalf("counts sum to %d", total)
	}
	for i, k := range keys {
		want := uint8(hashfn.Digit(hashfn.Murmur2(k), 0))
		if mapping[i] != want {
			t.Fatalf("row %d: digit %d, want %d", i, mapping[i], want)
		}
	}
}

func TestApplyMappingNaiveAndSWCAgree(t *testing.T) {
	keys, _ := genKV(4, 20000, 10000)
	col := make([]uint64, len(keys))
	rng := xrand.NewXoshiro256(9)
	for i := range col {
		col[i] = rng.Next()
	}
	mapping, counts := PartitionMapping(keys, 0)
	naive := ApplyMappingNaive(mapping, col)
	swc := ApplyMappingSWC(mapping, col)
	for p := 0; p < hashfn.Fanout; p++ {
		var flat []uint64
		for _, r := range swc[p] {
			flat = append(flat, r.Hashes...)
		}
		if len(flat) != len(naive[p]) || len(flat) != counts[p] {
			t.Fatalf("partition %d: %d vs %d vs count %d", p, len(flat), len(naive[p]), counts[p])
		}
		for i := range flat {
			if flat[i] != naive[p][i] {
				t.Fatalf("partition %d row %d differs", p, i)
			}
		}
	}
}

func BenchmarkSumRowAtATime(b *testing.B) {
	keys, vals := genKV(1, 1<<16, 1<<12)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		SumRowAtATime(keys, vals)
	}
}

func BenchmarkSumColumnAtATime(b *testing.B) {
	keys, vals := genKV(1, 1<<16, 1<<12)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		SumColumnAtATime(keys, vals)
	}
}

func BenchmarkSumBlockWise(b *testing.B) {
	keys, vals := genKV(1, 1<<16, 1<<12)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		SumBlockWise(keys, vals, DefaultBlockRows)
	}
}
