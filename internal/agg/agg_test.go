package agg

import (
	"testing"
	"testing/quick"

	"cacheagg/internal/xrand"
)

func allKinds() []Kind { return []Kind{Count, Sum, Min, Max, Avg} }

func TestKindString(t *testing.T) {
	want := map[Kind]string{Count: "COUNT", Sum: "SUM", Min: "MIN", Max: "MAX", Avg: "AVG"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("invalid kind string: %q", Kind(99).String())
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range allKinds() {
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
	}
	for _, k := range []Kind{-1, numKinds, 42} {
		if k.Valid() {
			t.Errorf("%d should be invalid", int(k))
		}
	}
}

func TestWidth(t *testing.T) {
	for _, k := range allKinds() {
		want := 1
		if k == Avg {
			want = 2
		}
		if k.Width() != want {
			t.Errorf("%v.Width() = %d, want %d", k, k.Width(), want)
		}
	}
}

// reference computes the expected result of folding values one by one.
func reference(k Kind, values []int64) (intRes int64, floatRes float64) {
	if len(values) == 0 {
		panic("empty group")
	}
	switch k {
	case Count:
		return int64(len(values)), float64(len(values))
	case Sum:
		var s int64
		for _, v := range values {
			s += v
		}
		return s, float64(s)
	case Min:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m, float64(m)
	case Max:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m, float64(m)
	case Avg:
		var s int64
		for _, v := range values {
			s += v
		}
		n := int64(len(values))
		return s / n, float64(s) / float64(n)
	}
	panic("bad kind")
}

func TestInitFoldFinalize(t *testing.T) {
	rng := xrand.NewXoshiro256(1)
	for _, k := range allKinds() {
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(50)
			values := make([]int64, n)
			for i := range values {
				values[i] = int64(rng.Next()%2001) - 1000
			}
			state := make([]uint64, k.Width())
			k.Init(state, values[0])
			for _, v := range values[1:] {
				k.Fold(state, v)
			}
			wantInt, wantFloat := reference(k, values)
			if got := k.FinalizeInt(state); got != wantInt {
				t.Fatalf("%v over %v: FinalizeInt = %d, want %d", k, values, got, wantInt)
			}
			if got := k.FinalizeFloat(state); got != wantFloat {
				t.Fatalf("%v over %v: FinalizeFloat = %v, want %v", k, values, got, wantFloat)
			}
		}
	}
}

// TestMergeEqualsFold is the crucial super-aggregate property: splitting a
// group arbitrarily into two parts, aggregating each part, and merging the
// partial states must give the same result as folding the whole group.
// This is exactly what the operator relies on when hashing pre-aggregates
// some rows and partitioning moves others untouched.
func TestMergeEqualsFold(t *testing.T) {
	rng := xrand.NewXoshiro256(2)
	for _, k := range allKinds() {
		for trial := 0; trial < 200; trial++ {
			n := 2 + rng.Intn(40)
			values := make([]int64, n)
			for i := range values {
				values[i] = int64(rng.Next()%200001) - 100000
			}
			cut := 1 + rng.Intn(n-1)

			left := make([]uint64, k.Width())
			k.Init(left, values[0])
			for _, v := range values[1:cut] {
				k.Fold(left, v)
			}
			right := make([]uint64, k.Width())
			k.Init(right, values[cut])
			for _, v := range values[cut+1:] {
				k.Fold(right, v)
			}
			k.Merge(left, right)

			whole := make([]uint64, k.Width())
			k.Init(whole, values[0])
			for _, v := range values[1:] {
				k.Fold(whole, v)
			}
			for i := range whole {
				if left[i] != whole[i] {
					t.Fatalf("%v: merged state %v != folded state %v (values %v, cut %d)",
						k, left, whole, values, cut)
				}
			}
		}
	}
}

// TestMergeAssociativeCommutative: merge must be associative and, for our
// kinds, commutative — the parallel driver merges partial states in
// nondeterministic order.
func TestMergeAssociativeCommutative(t *testing.T) {
	mk := func(k Kind, v int64, extra []int64) []uint64 {
		s := make([]uint64, k.Width())
		k.Init(s, v)
		for _, e := range extra {
			k.Fold(s, e)
		}
		return s
	}
	f := func(a, b, c int64) bool {
		for _, k := range allKinds() {
			sa, sb, sc := mk(k, a, nil), mk(k, b, []int64{a}), mk(k, c, []int64{b, a})

			// (a⊕b)⊕c
			ab := append([]uint64(nil), sa...)
			k.Merge(ab, sb)
			abc1 := append([]uint64(nil), ab...)
			k.Merge(abc1, sc)

			// a⊕(b⊕c)
			bc := append([]uint64(nil), sb...)
			k.Merge(bc, sc)
			abc2 := append([]uint64(nil), sa...)
			k.Merge(abc2, bc)

			// b⊕a (commutativity)
			ba := append([]uint64(nil), sb...)
			k.Merge(ba, sa)

			for i := range abc1 {
				if abc1[i] != abc2[i] {
					return false
				}
			}
			for i := range ab {
				if ab[i] != ba[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountSuperAggregateIsSum(t *testing.T) {
	// The paper's example: the super-aggregate of COUNT is SUM. Two partial
	// counts of 3 and 4 must merge to 7, not to 2.
	a := []uint64{3}
	b := []uint64{4}
	Count.Merge(a, b)
	if a[0] != 7 {
		t.Fatalf("COUNT merge gave %d, want 7", a[0])
	}
}

func TestMinMaxNegativeValues(t *testing.T) {
	s := make([]uint64, 1)
	Min.Init(s, -5)
	Min.Fold(s, 3)
	Min.Fold(s, -100)
	if got := Min.FinalizeInt(s); got != -100 {
		t.Fatalf("MIN = %d, want -100", got)
	}
	Max.Init(s, -5)
	Max.Fold(s, -3)
	Max.Fold(s, -100)
	if got := Max.FinalizeInt(s); got != -3 {
		t.Fatalf("MAX = %d, want -3", got)
	}
}

func TestAvgFinalize(t *testing.T) {
	s := make([]uint64, 2)
	Avg.Init(s, 1)
	Avg.Fold(s, 2)
	if got := Avg.FinalizeFloat(s); got != 1.5 {
		t.Fatalf("AVG float = %v, want 1.5", got)
	}
	if got := Avg.FinalizeInt(s); got != 1 {
		t.Fatalf("AVG int = %v, want 1", got)
	}
}

func TestAvgZeroCountFinalizesToZero(t *testing.T) {
	s := make([]uint64, 2)
	if Avg.FinalizeInt(s) != 0 || Avg.FinalizeFloat(s) != 0 {
		t.Fatal("AVG of empty state should be 0")
	}
}

func TestInvalidKindPanics(t *testing.T) {
	bad := Kind(77)
	cases := []func(){
		func() { bad.Init(make([]uint64, 1), 0) },
		func() { bad.Fold(make([]uint64, 1), 0) },
		func() { bad.Merge(make([]uint64, 1), make([]uint64, 1)) },
		func() { bad.FinalizeInt(make([]uint64, 1)) },
		func() { bad.FinalizeFloat(make([]uint64, 1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSpecString(t *testing.T) {
	if s := (Spec{Kind: Count}).String(); s != "COUNT(*)" {
		t.Errorf("got %q", s)
	}
	if s := (Spec{Kind: Sum, Col: 2}).String(); s != "SUM(col2)" {
		t.Errorf("got %q", s)
	}
}

func TestLayoutOffsets(t *testing.T) {
	l := NewLayout([]Spec{{Kind: Sum}, {Kind: Avg, Col: 1}, {Kind: Count}, {Kind: Min, Col: 2}})
	wantOffsets := []int{0, 1, 3, 4}
	if l.Words != 5 {
		t.Fatalf("Words = %d, want 5", l.Words)
	}
	for i, w := range wantOffsets {
		if l.Offsets[i] != w {
			t.Fatalf("Offsets[%d] = %d, want %d", i, l.Offsets[i], w)
		}
	}
	if l.MaxInputCol() != 2 {
		t.Fatalf("MaxInputCol = %d, want 2", l.MaxInputCol())
	}
}

func TestLayoutMaxInputColCountOnly(t *testing.T) {
	l := NewLayout([]Spec{{Kind: Count, Col: 5}})
	if l.MaxInputCol() != -1 {
		t.Fatalf("COUNT-only layout should need no input columns, got %d", l.MaxInputCol())
	}
}

func TestLayoutPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid kind")
		}
	}()
	NewLayout([]Spec{{Kind: Kind(42)}})
}

func TestLayoutPanicsOnNegativeCol(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative column")
		}
	}()
	NewLayout([]Spec{{Kind: Sum, Col: -1}})
}

func TestLayoutRowRoundTrip(t *testing.T) {
	l := NewLayout([]Spec{{Kind: Count}, {Kind: Sum, Col: 0}, {Kind: Avg, Col: 1}, {Kind: Min, Col: 0}, {Kind: Max, Col: 1}})
	// Three rows with two input columns.
	rows := [][2]int64{{10, 100}, {-20, 50}, {5, 200}}

	states := make([]uint64, l.Words)
	l.InitRow(states, func(col int) int64 { return rows[0][col] })
	for _, r := range rows[1:] {
		r := r
		l.FoldRow(states, func(col int) int64 { return r[col] })
	}
	got := l.FinalizeRow(states, nil)
	want := []int64{3, -5, 116, -20, 200} // count, sum(c0), avg(c1)=350/3, min(c0), max(c1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestLayoutMergeRow(t *testing.T) {
	l := NewLayout([]Spec{{Kind: Count}, {Kind: Sum, Col: 0}})
	a := make([]uint64, l.Words)
	b := make([]uint64, l.Words)
	l.InitRow(a, func(int) int64 { return 7 })
	l.InitRow(b, func(int) int64 { return 5 })
	l.MergeRow(a, b)
	got := l.FinalizeRow(a, nil)
	if got[0] != 2 || got[1] != 12 {
		t.Fatalf("merged = %v, want [2 12]", got)
	}
}

func BenchmarkFoldSum(b *testing.B) {
	s := make([]uint64, 1)
	Sum.Init(s, 0)
	for i := 0; i < b.N; i++ {
		Sum.Fold(s, int64(i))
	}
}

func BenchmarkMergeAvg(b *testing.B) {
	x := []uint64{10, 2}
	y := []uint64{20, 3}
	for i := 0; i < b.N; i++ {
		Avg.Merge(x, y)
	}
}
