package stream

// Crash recovery. Resume rebuilds a stream from its checkpoint directory:
// the manifest (validated by CRC + end magic) is the single source of
// truth, epoch files it never committed are torn writes to roll back, and
// epoch files it DID commit must decode cleanly or the whole directory is
// reported corrupt — recovery never silently merges damaged state.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cacheagg/internal/agg"
	"cacheagg/internal/external"
	"cacheagg/internal/trace"
)

// Resume reopens the durable stream in opts.Dir after a crash or a clean
// Close, validates every sealed epoch, rolls back torn (un-manifested)
// epoch files, and returns an Aggregator continuing from the last sealed
// epoch. opts.Specs may be nil to adopt the manifest's recorded specs;
// when non-nil they must match exactly (ErrSpecMismatch otherwise).
//
// Failure modes: ErrNoCheckpoint (no manifest — the directory never
// committed anything), ErrFinished (the stream was Finished; its result
// is final), ErrCorruptCheckpoint (damaged manifest, or a committed epoch
// file that is missing, truncated, checksum-broken or disagrees with the
// manifest's record count).
func Resume(opts Options) (*Aggregator, error) {
	opts = opts.withDefaults()
	if opts.Specs != nil {
		if err := validateSpecs(opts.Specs); err != nil {
			return nil, err
		}
	}
	a, err := newAggregator(opts)
	if err != nil {
		return nil, err
	}
	manPath := filepath.Join(a.dir, manifestName)
	raw, err := readAll(a, manPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s has no manifest", ErrNoCheckpoint, a.dir)
		}
		return nil, fmt.Errorf("stream: read manifest: %w", err)
	}
	man, err := decodeManifest(raw)
	if err != nil {
		return nil, err
	}
	if man.Finished {
		return nil, fmt.Errorf("%w: stream in %s was finished", ErrFinished, a.dir)
	}
	if opts.Specs != nil && !specsEqual(opts.Specs, man.Specs) {
		return nil, fmt.Errorf("%w: resume asked for %v, checkpoint holds %v",
			ErrSpecMismatch, opts.Specs, man.Specs)
	}
	a.specs = man.Specs
	a.plan = external.BuildPlan(man.Specs)
	a.man = man
	if n := len(man.Epochs); n > 0 {
		a.epoch = man.Epochs[n-1].Seq
	}

	committed := make(map[uint64]bool, len(man.Epochs))
	for _, e := range man.Epochs {
		committed[e.Seq] = true
	}

	// Sweep the directory: delete torn epoch files (written but never
	// committed by a manifest rename) and the stale MANIFEST.tmp a crash
	// mid-commit leaves behind. Directory listing goes through the real
	// filesystem — faultfs does not model ReadDir, and a failed listing
	// would fail Resume anyway.
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("stream: scan checkpoint dir: %w", err)
	}
	var torn int64
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case name == manifestName+".tmp":
			if err := a.fs.Remove(filepath.Join(a.dir, name)); err != nil {
				return nil, fmt.Errorf("stream: remove stale manifest temp: %w", err)
			}
		case strings.HasPrefix(name, "epoch-") && strings.HasSuffix(name, ".ckpt"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "epoch-%d.ckpt", &seq); err != nil || committed[seq] {
				continue
			}
			if err := a.fs.Remove(filepath.Join(a.dir, name)); err != nil {
				return nil, fmt.Errorf("stream: roll back torn epoch %s: %w", name, err)
			}
			torn++
		}
	}
	// Leftover snapshot spill temp dir from a crashed merge.
	if err := os.RemoveAll(filepath.Join(a.dir, snapshotTmpDir)); err != nil {
		return nil, fmt.Errorf("stream: clear snapshot temp dir: %w", err)
	}

	// Validate every committed epoch eagerly: a Resume that succeeds
	// promises every later Snapshot can read its history.
	width := a.plan.Width()
	for _, e := range man.Epochs {
		path := filepath.Join(a.dir, epochFileName(e.Seq))
		keys, _, err := external.ReadBlockFile(a.fs, path, "checkpoint", width)
		if err != nil {
			return nil, fmt.Errorf("%w: epoch %d: %w", ErrCorruptCheckpoint, e.Seq, err)
		}
		if uint64(len(keys)) != e.Records {
			return nil, fmt.Errorf("%w: epoch %d holds %d records, manifest says %d",
				ErrCorruptCheckpoint, e.Seq, len(keys), e.Records)
		}
	}

	if a.tr != nil {
		a.tr.Emit(trace.KindRecover, 0, 0, int64(len(man.Epochs)), float64(man.RowsDurable))
	}
	a.statMu.Lock()
	a.stats.RecoveredEpochs = int64(len(man.Epochs))
	a.stats.RecoveredRows = int64(man.RowsDurable)
	a.stats.TornEpochsRolledBack = torn
	a.statMu.Unlock()
	a.start()
	return a, nil
}

// readAll reads a whole file through the (fault-injected, retrying)
// filesystem stack.
func readAll(a *Aggregator, path string) ([]byte, error) {
	f, err := a.fs.Open(path)
	if err != nil {
		return nil, err
	}
	var out []byte
	buf := make([]byte, 32<<10)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

func specsEqual(a, b []agg.Spec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Drain is a convenience for servers shutting down: seal whatever is
// buffered so nothing is lost, honoring ctx, then Close. The stream's
// durable state afterwards is exactly its last sealed epoch, and Resume
// picks up from there.
func (a *Aggregator) Drain(ctx context.Context) error {
	_, err := a.Checkpoint(ctx)
	cerr := a.Close()
	if err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	return cerr
}
