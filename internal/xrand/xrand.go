// Package xrand provides small, fast, deterministic pseudo-random number
// generators used by the data generators and tests of this repository.
//
// The package deliberately avoids math/rand so that every byte of every
// synthetic dataset is reproducible across Go versions: the generators below
// are fully specified by their seed and their published reference algorithms
// (SplitMix64 by Steele et al., xoshiro256** by Blackman and Vigna).
package xrand

// SplitMix64 is the 64-bit state mixer from Steele, Lea and Flood,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
// It is used both as a standalone generator and to seed Xoshiro256.
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a strong 64-bit mixing
// function (full avalanche) useful for deriving independent seeds.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0, a fast all-purpose generator with
// a 2^256-1 period. It must be created through NewXoshiro256 so that the
// state is properly seeded (an all-zero state is invalid).
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next returns the next 64-bit value in the sequence.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
// It uses Lemire's multiply-shift bounded-rand reduction with a rejection
// step to remove modulo bias entirely.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two: just mask.
	if n&(n-1) == 0 {
		return x.Next() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of a 128-bit product.
	for {
		v := x.Next()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly swaps the n elements addressed by swap,
// Fisher-Yates style.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return
}
