package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cacheagg"
	"cacheagg/internal/testutil"
)

// testRegistry hosts a small deterministic dataset for the unit tests.
func testRegistry(t *testing.T, rows int) *Registry {
	t.Helper()
	d, err := ParseDatasetSpec(fmt.Sprintf("events=zipf:%d:4096:7", rows))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(d)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = testRegistry(t, 1<<15)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postQuery sends one query and returns the HTTP response.
func postQuery(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/aggregate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// parseResponse decodes a success response: header line, rows, trailer.
type wireRow struct {
	G uint64    `json:"g"`
	K []any     `json:"k"`
	A []int64   `json:"a"`
	F []float64 `json:"f"`
}

func parseResponse(t *testing.T, resp *http.Response) (header map[string]any, rows []wireRow) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		t.Fatalf("empty response body (status %d)", resp.StatusCode)
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		t.Fatalf("header line: %v (%q)", err, sc.Text())
	}
	sawTrailer := false
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"done"`)) {
			var trailer struct {
				Done bool `json:"done"`
				Rows int  `json:"rows"`
			}
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
			if trailer.Rows != len(rows) {
				t.Fatalf("trailer says %d rows, body has %d", trailer.Rows, len(rows))
			}
			sawTrailer = true
			break
		}
		var row wireRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row: %v (%q)", err, sc.Text())
		}
		rows = append(rows, row)
	}
	if !sawTrailer {
		t.Fatal("response has no trailer line")
	}
	return header, rows
}

// errorCode extracts the typed code of an error response.
func errorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error envelope: %v", err)
	}
	return env.Error.Code
}

func TestAggregateMatchesDirectCall(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reg := testRegistry(t, 1<<15)
	s, ts := newTestServer(t, Config{Registry: reg})
	defer func() {
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	resp := postQuery(t, ts.URL,
		`{"dataset":"events","aggregates":[{"func":"count"},{"func":"sum","col":0},{"func":"avg","col":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	header, rows := parseResponse(t, resp)
	if header["cache"] != "miss" {
		t.Fatalf("first query cache = %v, want miss", header["cache"])
	}

	d, _ := reg.Lookup("events")
	want, err := cacheagg.Aggregate(cacheagg.Input{
		GroupBy: d.Keys,
		Columns: d.Cols,
		Aggregates: []cacheagg.AggSpec{
			{Func: cacheagg.Count}, {Func: cacheagg.Sum, Col: 0}, {Func: cacheagg.Avg, Col: 1},
		},
	}, cacheagg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != want.Len() {
		t.Fatalf("served %d groups, direct call has %d", len(rows), want.Len())
	}
	for i, row := range rows {
		if row.G != want.Groups[i] {
			t.Fatalf("row %d: group %d, want %d", i, row.G, want.Groups[i])
		}
		for a := range want.Aggs {
			if row.A[a] != want.Aggs[a][i] {
				t.Fatalf("row %d agg %d: %d, want %d", i, a, row.A[a], want.Aggs[a][i])
			}
			if row.F[a] != want.Float(a, i) {
				t.Fatalf("row %d agg %d float: %v, want %v", i, a, row.F[a], want.Float(a, i))
			}
		}
	}
}

func TestInlineKeysAndDistinct(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postQuery(t, ts.URL, `{"keys":[5,7,5,9,7,5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	_, rows := parseResponse(t, resp)
	if len(rows) != 3 {
		t.Fatalf("%d distinct groups, want 3", len(rows))
	}
}

func TestTypedRequestRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Limits: Limits{MaxBodyBytes: 256, MaxInlineRows: 8, MaxAggregates: 2},
	})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed JSON", `{"dataset":`, 400, "bad_request"},
		{"unknown field", `{"dataset":"events","bogus":1}`, 400, "bad_request"},
		{"trailing garbage", `{"dataset":"events"} {"again":true}`, 400, "bad_request"},
		{"no input", `{}`, 400, "bad_request"},
		{"both inputs", `{"dataset":"events","keys":[1]}`, 400, "bad_request"},
		{"unknown dataset", `{"dataset":"nope"}`, 404, "unknown_dataset"},
		{"bad priority", `{"dataset":"events","priority":"urgent"}`, 400, "bad_request"},
		{"bad routine", `{"dataset":"events","routine":"hashed"}`, 400, "bad_request"},
		{"bad func", `{"dataset":"events","aggregates":[{"func":"median"}]}`, 400, "bad_request"},
		{"negative deadline", `{"dataset":"events","deadline_ms":-1}`, 400, "bad_request"},
		{"col out of range", `{"dataset":"events","aggregates":[{"func":"sum","col":9}]}`, 400, "bad_request"},
		{"too many rows", `{"keys":[1,2,3,4,5,6,7,8,9]}`, 400, "bad_request"},
		{"ragged column", `{"keys":[1,2],"columns":[[1]]}`, 400, "bad_request"},
		{"oversized body", `{"keys":[` + strings.Repeat("1,", 200) + `1]}`, 413, "request_too_large"},
		{"too many aggregates", `{"dataset":"events","aggregates":[{"func":"count"},{"func":"count"},{"func":"count"}]}`, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postQuery(t, ts.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if code := errorCode(t, resp); code != tc.code {
				t.Fatalf("code %q, want %q", code, tc.code)
			}
		})
	}
}

// TestRoutineOverride: every routine override returns identical rows (the
// routines are bit-identical by contract), and a forced routine gets its
// own cache identity — pinning a routine to measure it must actually run
// it, not be served another routine's cached result.
func TestRoutineOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{ResultCacheBytes: 1 << 20})
	base := `{"dataset":"events","aggregates":[{"func":"sum","col":0}]}`
	h, autoRows := parseResponse(t, postQuery(t, ts.URL, base))
	if h["cache"] != "miss" {
		t.Fatalf("first auto query: cache = %v", h["cache"])
	}
	// Key-indexed identity: the routines promise the same group → aggregate
	// mapping, not the same intra-bucket emission order.
	want := map[uint64]int64{}
	for _, r := range autoRows {
		want[r.G] = r.A[0]
	}
	for _, rt := range []string{"partitioned", "global"} {
		q := `{"dataset":"events","routine":"` + rt + `","aggregates":[{"func":"sum","col":0}]}`
		h, rows := parseResponse(t, postQuery(t, ts.URL, q))
		if h["cache"] != "miss" {
			t.Fatalf("forced %s: cache = %v, want miss (own cache identity)", rt, h["cache"])
		}
		if len(rows) != len(want) {
			t.Fatalf("forced %s: %d rows, auto had %d", rt, len(rows), len(want))
		}
		for _, r := range rows {
			sum, ok := want[r.G]
			if !ok || r.A[0] != sum {
				t.Fatalf("forced %s: group %d = %d differs from auto result", rt, r.G, r.A[0])
			}
		}
	}
	// An explicit "auto" is the default identity: it must hit the cache.
	q := `{"dataset":"events","routine":"auto","aggregates":[{"func":"sum","col":0}]}`
	if h, _ := parseResponse(t, postQuery(t, ts.URL, q)); h["cache"] != "hit" {
		t.Fatalf("explicit auto: cache = %v, want hit", h["cache"])
	}
}

func TestResultCacheHitAndBypass(t *testing.T) {
	s, ts := newTestServer(t, Config{ResultCacheBytes: 1 << 20})
	q := `{"dataset":"events","aggregates":[{"func":"count"}]}`

	resp := postQuery(t, ts.URL, q)
	h1, rows1 := parseResponse(t, resp)
	if h1["cache"] != "miss" {
		t.Fatalf("first: cache = %v", h1["cache"])
	}
	resp = postQuery(t, ts.URL, q)
	h2, rows2 := parseResponse(t, resp)
	if h2["cache"] != "hit" {
		t.Fatalf("second: cache = %v, want hit", h2["cache"])
	}
	if len(rows1) != len(rows2) {
		t.Fatalf("cached response has %d rows, fresh had %d", len(rows2), len(rows1))
	}
	for i := range rows1 {
		if rows1[i].G != rows2[i].G || rows1[i].A[0] != rows2[i].A[0] {
			t.Fatalf("row %d differs between fresh and cached", i)
		}
	}
	if hits := s.Metrics().CacheHits.Load(); hits != 1 {
		t.Fatalf("CacheHits = %d, want 1", hits)
	}

	// no_cache bypasses both read and fill.
	resp = postQuery(t, ts.URL, `{"dataset":"events","aggregates":[{"func":"count"}],"no_cache":true}`)
	h3, _ := parseResponse(t, resp)
	if h3["cache"] != "miss" {
		t.Fatalf("no_cache: cache = %v, want miss", h3["cache"])
	}
}

func TestDeadlineExceededTyped(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, Config{
		Registry: testRegistry(t, 1<<19),
	})
	// A microsecond-scale deadline cannot survive a 512Ki-row aggregation.
	resp := postQuery(t, ts.URL, `{"dataset":"events","deadline_ms":1,"no_cache":true,"aggregates":[{"func":"sum","col":0}]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "deadline_exceeded" {
		t.Fatalf("code %q, want deadline_exceeded", code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Tracer: cacheagg.NewTracer(0)})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status   string   `json:"status"`
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "serving" || len(health.Datasets) != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	postQuery(t, ts.URL, `{"dataset":"events"}`).Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Serve MetricsSnapshot `json:"serve"`
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.Serve.Admitted != 1 || metrics.Serve.Succeeded != 1 {
		t.Fatalf("metrics after one query: %+v", metrics.Serve)
	}
	if metrics.Serve.LedgerReserved != 0 {
		t.Fatalf("ledger not drained: %d", metrics.Serve.LedgerReserved)
	}
	if len(metrics.Trace) == 0 {
		t.Fatal("metrics response missing tracer snapshot")
	}

	// Draining flips healthz to 503.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postQuery(t, ts.URL, `{"dataset":"events"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "draining" {
		t.Fatalf("code %q, want draining", code)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPanicContainment(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{})
	testHookExecute = func() { panic("poisoned query") }
	defer func() { testHookExecute = nil }()
	resp := postQuery(t, ts.URL, `{"dataset":"events"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "internal_panic" {
		t.Fatalf("code %q, want internal_panic", code)
	}
	if got := s.Ledger().Reserved(); got != 0 {
		t.Fatalf("panicked query leaked %d reserved bytes", got)
	}

	// The server survives: the next (healthy) query succeeds.
	testHookExecute = nil
	resp = postQuery(t, ts.URL, `{"dataset":"events"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET status %d, want 400", resp.StatusCode)
	}
}
