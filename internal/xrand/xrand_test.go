package xrand

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("step %d: %x != %x", i, va, vb)
		}
	}
}

func TestSplitMix64SeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between independent streams", same)
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping any single input bit should flip roughly half the output
	// bits. We accept a generous band because we only sample a few inputs.
	sm := NewSplitMix64(7)
	for trial := 0; trial < 20; trial++ {
		x := sm.Next()
		for bit := 0; bit < 64; bit++ {
			d := Mix64(x) ^ Mix64(x^(1<<uint(bit)))
			n := bits.OnesCount64(d)
			if n < 10 || n > 54 {
				t.Fatalf("poor avalanche: input %x bit %d flips only %d output bits", x, bit, n)
			}
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	x := NewXoshiro256(5)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 1000; i++ {
			v := x.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPowerOfTwoMask(t *testing.T) {
	x := NewXoshiro256(6)
	for i := 0; i < 1000; i++ {
		if v := x.Uint64n(8); v >= 8 {
			t.Fatalf("Uint64n(8) = %d", v)
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 10 buckets, 100k samples.
	x := NewXoshiro256(11)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[x.Uint64n(buckets)]++
	}
	expect := samples / buckets
	for b, c := range counts {
		if c < expect*9/10 || c > expect*11/10 {
			t.Fatalf("bucket %d has %d samples, expected ~%d", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(3)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(8)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	x := NewXoshiro256(9)
	s := make([]int, 100)
	for i := range s {
		s[i] = i
	}
	x.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make([]bool, len(s))
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestMul64MatchesBits(t *testing.T) {
	// Property: our portable mul64 must agree with math/bits.Mul64.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func BenchmarkSplitMix64(b *testing.B) {
	s := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Next()
	}
	_ = sink
}

func BenchmarkXoshiro256(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Next()
	}
	_ = sink
}
