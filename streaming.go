package cacheagg

// Public face of the durable streaming ingest subsystem: a
// StreamAggregator accepts pushed blocks of rows, folds them into partial
// aggregates with the same cache-efficient machinery as Aggregate, and
// checkpoints its state in epochs — CRC-checked partial-aggregate files
// committed by an atomically-renamed manifest — so ResumeStream
// reconstructs the stream after a crash and ingest continues from the
// last sealed epoch. See docs/STREAMING.md for the epoch/recovery state
// machine and the backpressure contract.
//
// Quick start:
//
//	s, err := cacheagg.BeginStream(cacheagg.StreamOptions{
//		Dir: "/var/lib/myapp/stream",
//		Aggregates: []cacheagg.AggSpec{
//			{Func: cacheagg.Count},
//			{Func: cacheagg.Sum, Col: 0},
//		},
//	})
//	// producer loop:
//	err = s.Push(ctx, cacheagg.Block{Keys: keys, Columns: cols})
//	// rolling-window query at any time:
//	res, err := s.Snapshot(ctx, 10) // last 10 sealed epochs + live rows
//	// graceful end:
//	res, err = s.Finish(ctx)
//
// After a crash, ResumeStream(StreamOptions{Dir: dir}) reopens the
// stream; Progress().RowsDurable tells the producer where to replay from.

import (
	"context"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/stream"
)

// Streaming error sentinels, re-exported so callers never import internal
// packages. Match with errors.Is.
var (
	// ErrBackpressure is wrapped by the *BackpressureError that TryPush
	// returns when the ingest queue or the memory budget is full.
	ErrBackpressure = stream.ErrBackpressure
	// ErrStreamClosed reports an operation on a closed or finished
	// stream handle.
	ErrStreamClosed = stream.ErrClosed
	// ErrStreamFinished reports a ResumeStream on a stream whose Finish
	// completed: its result is final and it cannot ingest again.
	ErrStreamFinished = stream.ErrFinished
	// ErrCorruptCheckpoint reports checkpoint state that fails
	// validation: a damaged manifest or a committed epoch file that is
	// missing, truncated, or checksum-broken. Recovery never silently
	// merges damaged state.
	ErrCorruptCheckpoint = stream.ErrCorruptCheckpoint
	// ErrNoCheckpoint reports a ResumeStream on a directory that holds
	// no committed checkpoint.
	ErrNoCheckpoint = stream.ErrNoCheckpoint
	// ErrSpecMismatch reports a ResumeStream whose Aggregates disagree
	// with the checkpoint's recorded aggregates.
	ErrSpecMismatch = stream.ErrSpecMismatch
)

// BackpressureError is the typed refusal of TryPush: the stream is
// healthy but full. Reason is "queue" or "budget"; RetryAfter is the
// suggested backoff. errors.Is(err, ErrBackpressure) matches it.
type BackpressureError = stream.BackpressureError

// StreamProgress is the durable high-water mark of a stream: the last
// sealed epoch and the raw-row offset producers replay from after a
// crash.
type StreamProgress = stream.Progress

// StreamStats is a census of a stream's work: rows and blocks ingested,
// runs detected, epochs sealed, checkpoint bytes, backpressure events,
// and what recovery restored.
type StreamStats = stream.Stats

// Block is one pushed batch of rows: the grouping keys plus the input
// columns the Aggregates consume. All slices must be equally long, and
// must not be mutated after a successful Push.
type Block struct {
	Keys    []uint64
	Columns [][]int64
}

// StreamOptions configures BeginStream and ResumeStream.
type StreamOptions struct {
	// Dir is the checkpoint directory — the stream's durable identity.
	// BeginStream requires it to hold no checkpoint; ResumeStream
	// requires one.
	Dir string
	// Aggregates lists the aggregate columns computed over every pushed
	// block. ResumeStream may leave it empty to adopt the checkpoint's
	// recorded aggregates.
	Aggregates []AggSpec
	// QueueDepth bounds the ingest queue in blocks (<= 0 selects 16);
	// with the queue full, Push blocks and TryPush returns
	// backpressure.
	QueueDepth int
	// EpochMaxRows seals an epoch checkpoint after this many ingested
	// rows (<= 0 selects 262144). Smaller epochs bound the replay window
	// at the cost of more checkpoint I/O.
	EpochMaxRows int64
	// MemoryBudgetBytes caps the bytes held by queued blocks plus the
	// in-memory partial-aggregate state (0 = unlimited). A starved
	// budget seals smaller epochs early and pushes back on producers
	// rather than growing without bound.
	MemoryBudgetBytes int64
	// Workers and CacheBytes tune the merge machinery behind Snapshot
	// and Finish, as in Options.
	Workers    int
	CacheBytes int
	// RetryHint is the backoff BackpressureError suggests to producers
	// (<= 0 selects 10ms).
	RetryHint time.Duration
	// Tracer, when non-nil, records epoch-seal, checkpoint-write,
	// recover and backpressure events alongside the usual execution
	// events — the same JSONL/expvar pipeline as batch runs.
	Tracer *Tracer
	// NoSync skips every fsync on the checkpoint path. Tests and
	// benchmarks only: a NoSync stream survives process crashes in
	// practice but not power loss.
	NoSync bool
}

func (o StreamOptions) lower() (stream.Options, error) {
	specs := make([]agg.Spec, len(o.Aggregates))
	for i, a := range o.Aggregates {
		if a.Func < Count || a.Func > Avg {
			return stream.Options{}, errInvalidFunc(int(a.Func))
		}
		specs[i] = agg.Spec{Kind: a.Func.kind(), Col: a.Col}
	}
	if len(o.Aggregates) == 0 {
		specs = nil
	}
	opts := stream.Options{
		Dir:               o.Dir,
		Specs:             specs,
		QueueDepth:        o.QueueDepth,
		EpochMaxRows:      o.EpochMaxRows,
		MemoryBudgetBytes: o.MemoryBudgetBytes,
		RetryHint:         o.RetryHint,
		Core: core.Config{
			Workers:    o.Workers,
			CacheBytes: o.CacheBytes,
		},
		NoSync: o.NoSync,
	}
	if o.Tracer != nil {
		opts.Tracer = o.Tracer.rec
	}
	return opts, nil
}

// StreamAggregator is a durable streaming aggregation session. All
// methods are safe for concurrent use by any number of producers and
// queriers.
type StreamAggregator struct {
	a *stream.Aggregator
}

// BeginStream creates a new durable stream whose checkpoints live in
// opts.Dir. The directory is created if needed and must not already hold
// a checkpoint (use ResumeStream for that).
func BeginStream(opts StreamOptions) (*StreamAggregator, error) {
	low, err := opts.lower()
	if err != nil {
		return nil, err
	}
	a, err := stream.Begin(low)
	if err != nil {
		return nil, err
	}
	return &StreamAggregator{a: a}, nil
}

// ResumeStream reopens the durable stream in opts.Dir after a crash or a
// Close: torn (uncommitted) epoch files are rolled back, every committed
// epoch is re-validated, and ingest continues from the last sealed epoch.
// Producers replay their un-acknowledged rows from Progress().RowsDurable.
func ResumeStream(opts StreamOptions) (*StreamAggregator, error) {
	low, err := opts.lower()
	if err != nil {
		return nil, err
	}
	a, err := stream.Resume(low)
	if err != nil {
		return nil, err
	}
	return &StreamAggregator{a: a}, nil
}

func lowerBlock(b Block) stream.Block {
	return stream.Block{Keys: b.Keys, Cols: b.Columns}
}

// Push enqueues one block, blocking while the ingest queue or the memory
// budget is full, until ctx is done. A nil return means the block will be
// folded; it becomes durable once a later checkpoint covers it (watch
// Progress().RowsDurable).
func (s *StreamAggregator) Push(ctx context.Context, b Block) error {
	return s.a.Push(ctx, lowerBlock(b))
}

// TryPush is Push without blocking: a full queue or budget returns a
// *BackpressureError (errors.Is ErrBackpressure) carrying a retry hint.
func (s *StreamAggregator) TryPush(b Block) error {
	return s.a.TryPush(lowerBlock(b))
}

// Checkpoint seals the open epoch — everything pushed so far becomes
// durable — and returns the sealed epoch's sequence number. With nothing
// buffered it is a no-op returning the current epoch.
func (s *StreamAggregator) Checkpoint(ctx context.Context) (uint64, error) {
	return s.a.Checkpoint(ctx)
}

// Snapshot returns the finalized aggregates over the last `window` sealed
// epochs plus everything currently buffered (window <= 0 means the whole
// stream): the rolling-window query. The stream keeps ingesting; blocks
// pushed before the call are included, later ones are not.
func (s *StreamAggregator) Snapshot(ctx context.Context, window int) (*StreamResult, error) {
	res, err := s.a.Snapshot(ctx, window)
	if err != nil {
		return nil, err
	}
	return liftResult(res), nil
}

// Finish seals the final epoch, marks the stream finished, and returns
// the aggregates over its entire history. The handle is closed afterwards
// and the directory refuses ResumeStream with ErrStreamFinished.
func (s *StreamAggregator) Finish(ctx context.Context) (*StreamResult, error) {
	res, err := s.a.Finish(ctx)
	if err != nil {
		return nil, err
	}
	return liftResult(res), nil
}

// Drain seals whatever is buffered and closes the stream without marking
// it finished — the shutdown path: nothing is lost, and ResumeStream
// continues where Drain left off.
func (s *StreamAggregator) Drain(ctx context.Context) error {
	return s.a.Drain(ctx)
}

// Close shuts the stream down without sealing. Buffered (not yet
// checkpointed) rows are dropped; durable state remains the last sealed
// epoch, and producers replay from Progress().RowsDurable after
// ResumeStream. Idempotent.
func (s *StreamAggregator) Close() error {
	return s.a.Close()
}

// Progress returns the durable high-water mark producers acknowledge
// against.
func (s *StreamAggregator) Progress() StreamProgress { return s.a.Progress() }

// Stats returns the stream's counters.
func (s *StreamAggregator) Stats() StreamStats { return s.a.Stats() }

// Dir returns the checkpoint directory.
func (s *StreamAggregator) Dir() string { return s.a.Dir() }

// Aggregates returns the stream's aggregate columns — useful after a
// ResumeStream that adopted them from the checkpoint.
func (s *StreamAggregator) Aggregates() []AggSpec {
	specs := s.a.Specs()
	out := make([]AggSpec, len(specs))
	for i, sp := range specs {
		out[i] = AggSpec{Func: funcOf(sp.Kind), Col: sp.Col}
	}
	return out
}

func funcOf(k agg.Kind) Func {
	switch k {
	case agg.Count:
		return Count
	case agg.Sum:
		return Sum
	case agg.Min:
		return Min
	case agg.Max:
		return Max
	case agg.Avg:
		return Avg
	default:
		return Func(int(k))
	}
}

// StreamResult is one finalized snapshot of a stream, ordered by hash
// value like every result of this library — and deterministically so:
// equal logical streams produce bit-identical snapshots regardless of
// arrival order, epoch boundaries, or crash/recovery history.
type StreamResult struct {
	// Groups holds the distinct grouping keys, ordered by hash.
	Groups []uint64
	// Aggs holds one output column per aggregate (Avg truncated; see
	// Float).
	Aggs [][]int64
	// Epochs is the number of sealed epochs the snapshot covers (live
	// buffered rows are included on top).
	Epochs int

	hashes []uint64
	floats [][]float64
}

func liftResult(r *stream.Result) *StreamResult {
	return &StreamResult{
		Groups: r.Keys,
		Aggs:   r.Aggs,
		Epochs: r.Epochs,
		hashes: r.Hashes,
		floats: r.AggsFloat,
	}
}

// Len returns the number of groups.
func (r *StreamResult) Len() int { return len(r.Groups) }

// Float returns aggregate column a of group idx as a float64 — exact for
// Avg, the widened integer otherwise.
func (r *StreamResult) Float(a, idx int) float64 { return r.floats[a][idx] }

// Hashes returns the groups' hash digests (ascending), exposing the same
// hash-ordered structure as batch results.
func (r *StreamResult) Hashes() []uint64 { return r.hashes }

// Index builds a map from group key to row index for point lookups.
func (r *StreamResult) Index() map[uint64]int {
	idx := make(map[uint64]int, len(r.Groups))
	for i, g := range r.Groups {
		idx[g] = i
	}
	return idx
}
