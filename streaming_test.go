package cacheagg

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestStreamAgreesWithBatch pushes an input through the streaming path in
// blocks — with epoch checkpoints forced along the way — and demands the
// final result match the batch Aggregate over the same rows, group for
// group and bit for bit (including exact Avg floats).
func TestStreamAgreesWithBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const rows = 5000
	keys := make([]uint64, rows)
	col := make([]int64, rows)
	for i := range keys {
		keys[i] = uint64(rng.Intn(300))
		col[i] = int64(rng.Intn(2001) - 1000)
	}
	aggs := []AggSpec{{Func: Count}, {Func: Sum, Col: 0}, {Func: Avg, Col: 0}}

	batch, err := Aggregate(Input{GroupBy: keys, Columns: [][]int64{col}, Aggregates: aggs}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	s, err := BeginStream(StreamOptions{
		Dir:          t.TempDir(),
		Aggregates:   aggs,
		EpochMaxRows: 700,
		NoSync:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for off := 0; off < rows; off += 250 {
		end := off + 250
		if err := s.Push(ctx, Block{Keys: keys[off:end], Columns: [][]int64{col[off:end]}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if res.Len() != batch.Len() {
		t.Fatalf("stream found %d groups, batch %d", res.Len(), batch.Len())
	}
	bidx := batch.Index()
	for i, g := range res.Groups {
		bi, ok := bidx[g]
		if !ok {
			t.Fatalf("group %d missing from batch result", g)
		}
		for a := range aggs {
			if res.Aggs[a][i] != batch.Aggs[a][bi] {
				t.Fatalf("group %d agg %d: stream %d, batch %d", g, a, res.Aggs[a][i], batch.Aggs[a][bi])
			}
			if res.Float(a, i) != batch.Float(a, bi) {
				t.Fatalf("group %d agg %d: stream float %v, batch %v", g, a, res.Float(a, i), batch.Float(a, bi))
			}
		}
	}
	// Both paths advertise hash order; the streaming result's must be
	// internally consistent and ascending.
	h := res.Hashes()
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatalf("stream hashes not ascending at %d", i)
		}
	}
}

// TestStreamResumePublic exercises the crash-replay contract through the
// public API alone: drain, resume with adopted aggregates, replay, and a
// rolling-window snapshot along the way.
func TestStreamResumePublic(t *testing.T) {
	dir := t.TempDir()
	aggs := []AggSpec{{Func: Sum, Col: 0}, {Func: Max, Col: 0}}
	s, err := BeginStream(StreamOptions{Dir: dir, Aggregates: aggs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Push(ctx, Block{Keys: []uint64{1, 2, 1}, Columns: [][]int64{{10, 20, 30}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	r, err := ResumeStream(StreamOptions{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Aggregates()
	if len(got) != 2 || got[0] != aggs[0] || got[1] != aggs[1] {
		t.Fatalf("adopted aggregates = %v, want %v", got, aggs)
	}
	if p := r.Progress(); p.RowsDurable != 3 || p.Epoch != 1 {
		t.Fatalf("progress after resume = %+v", p)
	}
	if err := r.Push(ctx, Block{Keys: []uint64{2}, Columns: [][]int64{{5}}}); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][2]int64{1: {40, 30}, 2: {25, 20}}
	if snap.Len() != 2 {
		t.Fatalf("snapshot groups = %d, want 2", snap.Len())
	}
	idx := snap.Index()
	for k, w := range want {
		i, ok := idx[k]
		if !ok {
			t.Fatalf("group %d missing", k)
		}
		if snap.Aggs[0][i] != w[0] || snap.Aggs[1][i] != w[1] {
			t.Fatalf("group %d = (%d, %d), want %v", k, snap.Aggs[0][i], snap.Aggs[1][i], w)
		}
	}
	if _, err := r.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	// Finished is a terminal state with a typed refusal.
	if _, err := ResumeStream(StreamOptions{Dir: dir, NoSync: true}); !errors.Is(err, ErrStreamFinished) {
		t.Fatalf("resume of finished stream = %v, want ErrStreamFinished", err)
	}
}

// TestStreamBackpressureTyped confirms the public TryPush surfaces the
// typed backpressure error with its retry hint.
func TestStreamBackpressureTyped(t *testing.T) {
	s, err := BeginStream(StreamOptions{
		Dir:               t.TempDir(),
		Aggregates:        []AggSpec{{Func: Count}},
		MemoryBudgetBytes: 1 << 10,
		NoSync:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A block larger than the whole budget can never be admitted.
	big := make([]uint64, 1024)
	if err := s.Push(context.Background(), Block{Keys: big}); err == nil {
		t.Fatal("oversized push succeeded")
	}
	// Saturate with small blocks until TryPush refuses, then check the
	// refusal's type and hint.
	small := Block{Keys: []uint64{1, 2, 3, 4}}
	for i := 0; ; i++ {
		err := s.TryPush(small)
		if err == nil {
			if i > 1<<20 {
				t.Fatal("budget never pushed back")
			}
			continue
		}
		var bp *BackpressureError
		if !errors.As(err, &bp) || !errors.Is(err, ErrBackpressure) {
			t.Fatalf("TryPush refusal = %v, want *BackpressureError", err)
		}
		if bp.RetryAfter <= 0 {
			t.Fatalf("retry hint %v, want > 0", bp.RetryAfter)
		}
		break
	}
}
