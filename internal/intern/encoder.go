package intern

// The batched encode/decode paths: a whole morsel of general keys in,
// dense uint64 ids out, with per-column hashing amortized the same way
// the aggregation kernels amortize theirs — column-major tight loops over
// hashfn.HashBatch and Murmur2String, then one combine pass per row.

import (
	"fmt"
	"time"

	"cacheagg/internal/hashfn"
)

// encodeBlock is the number of rows hashed and serialized per inner
// iteration of EncodeColumns; it bounds the scratch footprint so hash and
// key buffers stay cache-resident.
const encodeBlock = 1024

// ColType declares the logical type of one key column for decode
// validation. NULLs are allowed in any column.
type ColType uint8

const (
	// U64Col is a uint64 key column.
	U64Col ColType = iota
	// StrCol is a string key column.
	StrCol
)

// Column is one grouping-key column of a batch. Exactly one of U64 and
// Str must be non-nil; Nulls, when non-nil, marks rows whose value in
// this column is NULL (the slot in U64/Str is then ignored).
type Column struct {
	U64   []uint64
	Str   []string
	Nulls []bool
}

func (c *Column) rows() int {
	if c.U64 != nil {
		return len(c.U64)
	}
	return len(c.Str)
}

// Encoder batches rows of general keys into dense ids against one
// Interner. It owns reusable scratch, so a steady-state batch whose keys
// are all already interned allocates nothing. An Encoder is not safe for
// concurrent use; create one per worker — they can all share the
// Interner.
type Encoder struct {
	it *Interner

	// OnGrow, when non-nil, is invoked each time a shard index of the
	// underlying dictionary grows during this encoder's inserts — the
	// hook the tracer turns into intern-grow events.
	OnGrow func(shard, newSlots int)

	rowh []uint64 // per-row combined hash
	colh []uint64 // per-column value hashes for one block
	key  []byte   // serialization scratch for one row's encoded key
	vals []Value  // decode scratch
}

// NewEncoder returns an encoder interning into it.
func (it *Interner) NewEncoder() *Encoder {
	return &Encoder{
		it:   it,
		rowh: make([]uint64, encodeBlock),
		colh: make([]uint64, encodeBlock),
		key:  make([]byte, 0, 256),
	}
}

// EncodeColumns interns every row of the batch and writes its dense id
// into ids, which must be at least as long as the batch. All columns must
// have the same number of rows.
func (e *Encoder) EncodeColumns(cols []Column, ids []uint64) error {
	if len(cols) == 0 {
		return fmt.Errorf("intern: EncodeColumns needs at least one key column")
	}
	n := cols[0].rows()
	for ci := range cols {
		c := &cols[ci]
		if (c.U64 == nil) == (c.Str == nil) {
			return fmt.Errorf("intern: column %d must set exactly one of U64 and Str", ci)
		}
		if c.rows() != n {
			return fmt.Errorf("intern: column %d has %d rows, column 0 has %d", ci, c.rows(), n)
		}
		if c.Nulls != nil && len(c.Nulls) != n {
			return fmt.Errorf("intern: column %d null mask has %d rows, want %d", ci, len(c.Nulls), n)
		}
	}
	if len(ids) < n {
		return fmt.Errorf("intern: ids slice has %d slots for %d rows", len(ids), n)
	}

	for base := 0; base < n; base += encodeBlock {
		end := min(base+encodeBlock, n)
		bn := end - base
		rowh := e.rowh[:bn]
		for i := range rowh {
			rowh[i] = rowSeed
		}
		// Column-major hashing: one tight loop per column, batch kernels
		// where they exist.
		for ci := range cols {
			c := &cols[ci]
			colh := e.colh[:bn]
			if c.U64 != nil {
				hashfn.HashBatch(c.U64[base:end], colh)
			} else {
				str := c.Str[base:end]
				for i, s := range str {
					colh[i] = hashfn.Murmur2String(s)
				}
			}
			if c.Nulls != nil {
				nulls := c.Nulls[base:end]
				for i, isNull := range nulls {
					if isNull {
						colh[i] = nullHash
					}
				}
			}
			for i := range rowh {
				rowh[i] = combine(rowh[i], colh[i])
			}
		}
		// Row-major serialize + intern.
		for i := 0; i < bn; i++ {
			r := base + i
			key := e.key[:0]
			for ci := range cols {
				c := &cols[ci]
				switch {
				case c.Nulls != nil && c.Nulls[r]:
					key = AppendValue(key, Value{Kind: NullValue})
				case c.U64 != nil:
					key = AppendValue(key, Value{Kind: U64Value, U64: c.U64[r]})
				default:
					key = AppendValue(key, Value{Kind: StrValue, Str: c.Str[r]})
				}
			}
			e.key = key[:0]
			ids[r] = e.it.Intern(finish(rowh[i]), key, e.OnGrow)
		}
	}
	return nil
}

// InternRow interns a single key given as column values, the one-row
// analogue of EncodeColumns (identical hashing and serialization), for
// callers without batches — the dict compatibility wrappers and the
// streaming ingest path.
func (e *Encoder) InternRow(vals []Value) uint64 {
	key := AppendKey(e.key[:0], vals)
	e.key = key[:0]
	return e.it.Intern(HashKey(vals), key, e.OnGrow)
}

// DecodeColumns decodes a slice of dense ids back into one Column per
// declared key column — the reverse path that streams result group ids
// back to original keys at emit time. Stored values must match the
// declared types (NULL is legal anywhere); mismatches, unknown ids and
// corrupt encodings are typed errors.
func (e *Encoder) DecodeColumns(ids []uint64, types []ColType) ([]Column, error) {
	out := make([]Column, len(types))
	for ci, t := range types {
		if t == U64Col {
			out[ci].U64 = make([]uint64, len(ids))
		} else {
			out[ci].Str = make([]string, len(ids))
		}
	}
	for r, id := range ids {
		b, err := e.it.KeyBytes(id)
		if err != nil {
			return nil, err
		}
		vals, err := DecodeKey(b, e.vals[:0])
		e.vals = vals[:0]
		if err != nil {
			return nil, err
		}
		if len(vals) != len(types) {
			return nil, fmt.Errorf("%w: id %d has %d columns, schema declares %d", ErrMalformed, id, len(vals), len(types))
		}
		for ci, v := range vals {
			switch {
			case v.Kind == NullValue:
				if out[ci].Nulls == nil {
					out[ci].Nulls = make([]bool, len(ids))
				}
				out[ci].Nulls[r] = true
			case v.Kind == U64Value && types[ci] == U64Col:
				out[ci].U64[r] = v.U64
			case v.Kind == StrValue && types[ci] == StrCol:
				out[ci].Str[r] = v.Str
			default:
				return nil, fmt.Errorf("%w: id %d column %d holds kind %d, schema declares type %d", ErrMalformed, id, ci, v.Kind, types[ci])
			}
		}
	}
	return out, nil
}

// EncodeTimer wraps a monotonic stopwatch for the encode phase so callers
// can report wall time without each inventing its own.
type EncodeTimer struct{ start time.Time }

// StartEncodeTimer begins timing an encode phase.
func StartEncodeTimer() EncodeTimer { return EncodeTimer{start: time.Now()} }

// Nanos returns elapsed nanoseconds since the timer started.
func (t EncodeTimer) Nanos() int64 { return time.Since(t.start).Nanoseconds() }
