package main

// The routine sweep behind BENCH_phase9.json: the partitioned (radix)
// routine vs the lock-free shared global table, forced head-to-head across
// the contention spectrum, with ADAPTIVE's three-way pick riding along so
// the selector's overhead is visible next to the routines it chooses from.
//
// Measurement discipline differs from the other sweeps: each grid point's
// routines are timed in interleaved rounds (partitioned, global, auto,
// partitioned, ...) and the per-routine median is reported. Back-to-back
// blocks of the same routine would let thermal drift or a noisy neighbour
// bias one side of the comparison; interleaving spreads that noise evenly.
//
// `aggbench global -host -json BENCH.json` is the host preset: it widens
// the sweep across worker counts (1, 2, 4, ... up to GOMAXPROCS) and tags
// the output's meta block as a host profile. Container runs (the committed
// BENCH_phase9.json) measure only the flag-selected worker count and keep
// host_profile=false — shared-runner numbers and host numbers must never
// be confused for one another.

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/bench"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

// globalGrid spans the contention spectrum. α = N/K: the top rows are the
// shared table's home turf (massive reduction, the whole table in cache),
// the zipf row stresses hot-key contention on the atomic folds, and the
// bottom row is partitioned territory where the global table must lose.
var globalGrid = []struct {
	label string
	spec  datagen.Spec
}{
	{"uniform/K=2^8", datagen.Spec{Dist: datagen.Uniform, K: 1 << 8}},
	{"uniform/K=2^12", datagen.Spec{Dist: datagen.Uniform, K: 1 << 12}},
	{"zipf/theta=1.05/K=2^12", datagen.Spec{Dist: datagen.Zipf, K: 1 << 12, Theta: 1.05}},
	{"heavy-hitter/hf=0.9/K=2^12", datagen.Spec{Dist: datagen.HeavyHitter, K: 1 << 12, HitFraction: 0.9}},
	{"uniform/K=2^18", datagen.Spec{Dist: datagen.Uniform, K: 1 << 18}},
}

// globalRoutines are the three contenders at each grid point. Forced
// routines run with planning off (nothing to select); the auto point runs
// with the sketch plan on, so it measures the full decision pipeline the
// serve path uses.
var globalRoutines = []struct {
	name    string
	routine core.Routine
	plan    bool
}{
	{"partitioned", core.RoutinePartitioned, false},
	{"global", core.RoutineGlobal, false},
	{"auto", core.RoutineAuto, true},
}

// globalWorkerList picks the worker counts to sweep: the flag value in a
// container run, powers of two up to GOMAXPROCS under -host.
func globalWorkerList(sc scale) []int {
	if !sc.host {
		return []int{sc.workers}
	}
	maxP := runtime.GOMAXPROCS(0)
	var ws []int
	for p := 1; p < maxP; p *= 2 {
		ws = append(ws, p)
	}
	return append(ws, maxP)
}

// timedRun measures one execution: wall time plus the allocation count
// observed over the run (all goroutines — the measured operator is the
// only allocator in the process at that point).
func timedRun(fn func()) (time.Duration, int64) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	d := bench.Time(fn)
	runtime.ReadMemStats(&m1)
	return d, int64(m1.Mallocs - m0.Mallocs)
}

func medianF(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func medianI(xs []int64) int64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[len(xs)/2]
}

// globalSweep runs the routine comparison grid.
func globalSweep(sc scale) []*bench.Table {
	sweepRecords = sweepRecords[:0]
	t := bench.NewTable(
		fmt.Sprintf("Routine sweep — partitioned vs shared global table (N=2^%d, reps=%d, interleaved medians)",
			sc.logN, sc.reps),
		"point", "ns/op", "rows/s", "allocs/op")

	rng := xrand.NewXoshiro256(17)
	col := make([]int64, sc.n)
	for i := range col {
		col[i] = int64(rng.Next() % 1000)
	}

	for _, g := range globalGrid {
		spec := g.spec
		spec.N = sc.n
		spec.Seed = 11
		if spec.K >= uint64(sc.n) {
			continue
		}
		keys := datagen.Generate(spec)
		in := &core.Input{Keys: keys, AggCols: [][]int64{col},
			Specs: []agg.Spec{{Kind: agg.Sum, Col: 0}}}

		for _, workers := range globalWorkerList(sc) {
			reps := sc.reps
			if reps < 1 {
				reps = 1
			}
			ns := make([][]float64, len(globalRoutines))
			allocs := make([][]int64, len(globalRoutines))
			// Interleaved rounds: one run of every routine per rep, so
			// drift lands on all contenders equally.
			for rep := 0; rep < reps; rep++ {
				for ri, rt := range globalRoutines {
					cfg := core.Config{
						Strategy:   core.DefaultAdaptive(),
						Workers:    workers,
						CacheBytes: sc.cache,
						Routine:    rt.routine,
						EnablePlan: rt.plan,
					}
					d, a := timedRun(func() {
						if _, err := core.Aggregate(cfg, in); err != nil {
							panic(err)
						}
					})
					ns[ri] = append(ns[ri], float64(d.Nanoseconds()))
					allocs[ri] = append(allocs[ri], a)
				}
			}
			for ri, rt := range globalRoutines {
				n := medianF(ns[ri])
				r := sweepRecord{
					Name:        fmt.Sprintf("global/%s/P=%d/routine=%s", g.label, workers, rt.name),
					NsPerOp:     n,
					RowsPerSec:  float64(sc.n) / (n / 1e9),
					AllocsPerOp: medianI(allocs[ri]),
				}
				sweepRecords = append(sweepRecords, r)
				t.AddRow(r.Name, fmt.Sprintf("%.0f", r.NsPerOp),
					fmt.Sprintf("%.3e", r.RowsPerSec), r.AllocsPerOp)
			}
		}
	}
	return []*bench.Table{t}
}
