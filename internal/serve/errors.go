// Package serve implements aggserve, the multi-tenant aggregation service:
// a long-lived HTTP/JSONL server running many concurrent query sessions
// over shared datasets on top of the cacheagg operator.
//
// Robustness is the headline, not throughput. The serving layer adds what
// the library deliberately leaves to its caller:
//
//   - admission control driven by a memgov ledger — one global byte
//     budget, per-query up-front reservations sized from a cost estimate,
//     a bounded FIFO wait queue with per-class fairness, and typed
//     rejections carrying Retry-After hints (admission.go);
//   - graceful degradation under pressure — shrink the per-query budget,
//     then force the out-of-core path, then shed the lowest-priority
//     queued work — instead of failing (admission.go);
//   - per-request deadlines and client-disconnect cancellation threaded
//     through AggregateContext end to end (server.go);
//   - a bloom-pre-filtered LRU result cache with singleflight dedup of
//     identical in-flight queries (cache.go);
//   - panic containment per session, graceful drain on shutdown, and
//     /healthz + /metrics observability (server.go, metrics.go).
//
// See docs/SERVING.md for the protocol, the admission state machine and
// the error taxonomy.
package serve

import (
	"fmt"
	"net/http"
	"time"
)

// Error is the typed failure of a serve-layer operation. Every error the
// service returns to a client is one of these: the Code is machine
// readable (the load harness and scripts assert on it), the Status is the
// HTTP status it maps to, and RetryAfter, when non-zero, tells the client
// when a retry has a chance (sent as a Retry-After header).
//
// Two Errors match under errors.Is when their Codes are equal, so
// sentinel values like ErrAdmissionQueueFull match any derived error that
// carries the same code.
type Error struct {
	Code       string
	Status     int
	RetryAfter time.Duration
	Detail     string
	wrapped    error
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return "serve: " + e.Code
	}
	return "serve: " + e.Code + ": " + e.Detail
}

// Unwrap exposes the cause (an operator error, a context error) to
// errors.Is/As chains.
func (e *Error) Unwrap() error { return e.wrapped }

// Is matches by code, making the sentinels below usable with errors.Is
// against detailed instances.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// The serve error taxonomy. Sentinels carry the code and status; detailed
// instances derived with errf add context and retry hints.
var (
	// ErrBadRequest rejects a syntactically or semantically invalid
	// request (malformed JSON, unknown fields, bad aggregate spec).
	ErrBadRequest = &Error{Code: "bad_request", Status: http.StatusBadRequest}
	// ErrRequestTooLarge rejects a request body over the size limit.
	ErrRequestTooLarge = &Error{Code: "request_too_large", Status: http.StatusRequestEntityTooLarge}
	// ErrUnknownDataset rejects a query naming a dataset the server does
	// not host.
	ErrUnknownDataset = &Error{Code: "unknown_dataset", Status: http.StatusNotFound}
	// ErrAdmissionQueueFull rejects a query because the bounded admission
	// queue is at capacity and the query outranks nothing queued.
	ErrAdmissionQueueFull = &Error{Code: "admission_queue_full", Status: http.StatusServiceUnavailable}
	// ErrBudgetUnavailable rejects a query whose (already ladder-shrunken)
	// reservation could not be satisfied before its wait bound.
	ErrBudgetUnavailable = &Error{Code: "budget_unavailable", Status: http.StatusServiceUnavailable}
	// ErrShed rejects queued work evicted to make room for
	// higher-priority arrivals under overload.
	ErrShed = &Error{Code: "shed", Status: http.StatusServiceUnavailable}
	// ErrDraining rejects new work while the server shuts down.
	ErrDraining = &Error{Code: "draining", Status: http.StatusServiceUnavailable}
	// ErrDeadline reports a query that exceeded its deadline (queued or
	// running).
	ErrDeadline = &Error{Code: "deadline_exceeded", Status: http.StatusGatewayTimeout}
	// ErrCancelled reports a query abandoned by its client (disconnect).
	// Status 499 follows the de-facto "client closed request" convention.
	ErrCancelled = &Error{Code: "cancelled", Status: 499}
	// ErrInternal reports an operator failure that is not the client's
	// fault and not retryable by policy.
	ErrInternal = &Error{Code: "internal", Status: http.StatusInternalServerError}
	// ErrPanic reports a contained panic inside one query session. The
	// server survives; the query does not.
	ErrPanic = &Error{Code: "internal_panic", Status: http.StatusInternalServerError}
)

// errf derives a detailed instance of a sentinel, preserving its code and
// status. cause may be nil.
func errf(sentinel *Error, cause error, format string, args ...any) *Error {
	return &Error{
		Code:       sentinel.Code,
		Status:     sentinel.Status,
		RetryAfter: sentinel.RetryAfter,
		Detail:     fmt.Sprintf(format, args...),
		wrapped:    cause,
	}
}

// withRetry stamps a retry hint onto a copy of err.
func withRetry(err *Error, after time.Duration) *Error {
	e := *err
	e.RetryAfter = after
	return &e
}
