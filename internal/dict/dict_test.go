package dict

import (
	"fmt"
	"testing"
	"testing/quick"

	"cacheagg/internal/xrand"
)

func TestTupleDictRoundTrip(t *testing.T) {
	d := NewTupleDict(2)
	cols := [][]uint64{
		{1, 2, 1, 3, 1},
		{9, 9, 9, 7, 8},
	}
	ids, err := d.EncodeColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	// Tuples: (1,9) (2,9) (1,9) (3,7) (1,8) → 4 distinct.
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	if ids[0] != ids[2] {
		t.Fatal("equal tuples must share an id")
	}
	if ids[0] == ids[4] {
		t.Fatal("(1,9) and (1,8) must differ")
	}
	for i := range ids {
		tup := d.Decode(ids[i])
		if tup[0] != cols[0][i] || tup[1] != cols[1][i] {
			t.Fatalf("row %d decodes to %v", i, tup)
		}
	}
}

func TestTupleDictDenseFirstAppearance(t *testing.T) {
	d := NewTupleDict(1)
	ids, err := d.EncodeColumns([][]uint64{{5, 5, 7, 5, 9}})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 0, 1, 0, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestTupleDictIncrementalEncoding(t *testing.T) {
	d := NewTupleDict(1)
	a, _ := d.EncodeColumns([][]uint64{{1, 2}})
	b, _ := d.EncodeColumns([][]uint64{{2, 3}})
	if a[1] != b[0] {
		t.Fatal("ids must be stable across Encode calls")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestTupleDictErrors(t *testing.T) {
	d := NewTupleDict(2)
	if _, err := d.EncodeColumns([][]uint64{{1}}); err == nil {
		t.Fatal("wrong column count should error")
	}
	if _, err := d.EncodeColumns([][]uint64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged columns should error")
	}
}

func TestTupleDictPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTupleDict(0)
}

func TestTupleDictNoFalseSharing(t *testing.T) {
	// Tuples that concatenate to the same byte string must not collide:
	// (0x0102, 0x03) vs (0x01, 0x0203) — widths are fixed, so the encoding
	// is unambiguous by construction; verify with adversarial values.
	d := NewTupleDict(2)
	ids, err := d.EncodeColumns([][]uint64{
		{0x0102030405060708, 0x0102030405060708},
		{0xa0b0c0d0e0f01020, 0x00b0c0d0e0f01020},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] == ids[1] {
		t.Fatal("distinct tuples collided")
	}
}

func TestDecodeColumns(t *testing.T) {
	d := NewTupleDict(3)
	cols := [][]uint64{
		{1, 2, 1},
		{4, 5, 4},
		{7, 8, 7},
	}
	ids, _ := d.EncodeColumns(cols)
	dec := d.DecodeColumns(ids)
	for c := range cols {
		for i := range cols[c] {
			if dec[c][i] != cols[c][i] {
				t.Fatalf("col %d row %d: %d != %d", c, i, dec[c][i], cols[c][i])
			}
		}
	}
}

func TestTupleDictQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := xrand.NewXoshiro256(seed)
		cols := [][]uint64{make([]uint64, n), make([]uint64, n)}
		for i := 0; i < n; i++ {
			cols[0][i] = rng.Next() % 8
			cols[1][i] = rng.Next() % 8
		}
		d := NewTupleDict(2)
		ids, err := d.EncodeColumns(cols)
		if err != nil {
			return false
		}
		// Reference: map from fmt key.
		ref := map[string]uint64{}
		for i := 0; i < n; i++ {
			k := fmt.Sprint(cols[0][i], ",", cols[1][i])
			if id, ok := ref[k]; ok {
				if ids[i] != id {
					return false
				}
			} else {
				ref[k] = ids[i]
			}
			tup := d.Decode(ids[i])
			if tup[0] != cols[0][i] || tup[1] != cols[1][i] {
				return false
			}
		}
		return len(ref) == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDictRoundTrip(t *testing.T) {
	d := NewStringDict()
	in := []string{"apple", "pear", "apple", "", "pear", "Apple"}
	ids := d.EncodeAll(in)
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (case-sensitive, empty counts)", d.Len())
	}
	if ids[0] != ids[2] || ids[1] != ids[4] {
		t.Fatal("repeated strings must share ids")
	}
	if ids[0] == ids[5] {
		t.Fatal("case must distinguish")
	}
	out := d.Values(ids)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("row %d: %q != %q", i, out[i], in[i])
		}
	}
	if d.Value(ids[3]) != "" {
		t.Fatal("empty string must round-trip")
	}
}

func TestStringDictDenseIDs(t *testing.T) {
	d := NewStringDict()
	if d.Encode("x") != 0 || d.Encode("y") != 1 || d.Encode("x") != 0 {
		t.Fatal("ids must be dense first-appearance")
	}
}

func BenchmarkTupleEncode(b *testing.B) {
	const n = 1 << 14
	rng := xrand.NewXoshiro256(1)
	cols := [][]uint64{make([]uint64, n), make([]uint64, n)}
	for i := 0; i < n; i++ {
		cols[0][i] = rng.Next() % 1000
		cols[1][i] = rng.Next() % 1000
	}
	b.SetBytes(n * 16)
	for i := 0; i < b.N; i++ {
		d := NewTupleDict(2)
		if _, err := d.EncodeColumns(cols); err != nil {
			b.Fatal(err)
		}
	}
}
