package main

import (
	"fmt"
	"time"

	"cacheagg/internal/baselines"
	"cacheagg/internal/bench"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/hashtable"
	"cacheagg/internal/xrand"
)

// fig8 reproduces Figure 8: the comparison with prior work on the DISTINCT
// query (C = 1) over uniform data. The baselines receive the true K as
// their optimizer estimate (as in the paper, which even grants ADAPTIVE
// the output size for fairness; our ADAPTIVE runs without it).
func fig8(sc scale) []*bench.Table {
	algs := baselines.All()
	cols := []string{"K"}
	for _, a := range algs {
		cols = append(cols, a.Name())
	}
	cols = append(cols, "ADAPTIVE")
	t := bench.NewTable(
		fmt.Sprintf("Figure 8 — prior work vs Adaptive, ns/elem/core (uniform, N=2^%d, P=%d)", sc.logN, sc.workers),
		cols...)

	for _, k := range kSweep(sc) {
		keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: uint64(k), Seed: 14})
		actualK := datagen.CountDistinct(keys)
		row := []any{bench.FormatCount(int64(k))}
		bcfg := baselines.Config{
			Workers:         sc.workers,
			CacheBytes:      sc.cache,
			EstimatedGroups: actualK,
		}
		for _, a := range algs {
			d := bench.MedianOf(sc.reps, func() { a.Run(keys, bcfg) })
			row = append(row, bench.ElementTime(d, sc.workers, sc.n, 1))
		}
		ccfg := core.Config{Strategy: core.DefaultAdaptive(), Workers: sc.workers, CacheBytes: sc.cache}
		d := bench.MedianOf(sc.reps, func() {
			if _, err := core.Distinct(ccfg, keys); err != nil {
				panic(err)
			}
		})
		row = append(row, bench.ElementTime(d, sc.workers, sc.n, 1))
		t.AddRow(row...)
	}
	return []*bench.Table{t}
}

// fig9 reproduces Figure 9: ADAPTIVE across all data distributions. The
// "hashing" column corresponds to the solid markers of the paper's figure:
// whether the strategy kept using the HASHING routine for most rows
// (i.e. it detected exploitable locality).
func fig9(sc scale) []*bench.Table {
	var tables []*bench.Table
	for _, dist := range datagen.Dists() {
		t := bench.NewTable(
			fmt.Sprintf("Figure 9 — Adaptive on %s (N=2^%d, P=%d)", dist, sc.logN, sc.workers),
			"K", "ns/elem/core", "passes", "hashing-dominant", "mean α", "switches")
		for _, k := range kSweep(sc) {
			keys := datagen.Generate(datagen.Spec{Dist: dist, N: sc.n, K: uint64(k), Seed: 15})
			d, res := runStrategy(sc, core.DefaultAdaptive(), keys)
			st := res.Stats
			meanAlpha := 0.0
			if st.TablesEmitted > 0 {
				meanAlpha = st.AlphaSum / float64(st.TablesEmitted)
			}
			t.AddRow(bench.FormatCount(int64(k)),
				bench.ElementTime(d, sc.workers, sc.n, 1),
				st.Passes,
				st.HashedRows > st.PartitionedRows,
				meanAlpha,
				st.Switches)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig10 reproduces Appendix A.1 (Figure 10): run times of HASHINGONLY and
// PARTITIONONLY as a function of the observed reduction factor α, on
// locality-parameterized moving-cluster, self-similar and heavy-hitter
// datasets. The crossover locates α₀.
func fig10(sc scale) []*bench.Table {
	type pspec struct {
		name string
		gen  func(param float64) datagen.Spec
		par  []float64
	}
	k := uint64(sc.n / 4)
	specs := []pspec{
		{
			name: "moving-cluster(window)",
			gen: func(w float64) datagen.Spec {
				return datagen.Spec{Dist: datagen.MovingCluster, N: sc.n, K: k, Window: uint64(w), Seed: 16}
			},
			par: []float64{64, 256, 1024, 4096, 16384, 65536, float64(k)},
		},
		{
			name: "self-similar(h)",
			gen: func(h float64) datagen.Spec {
				return datagen.Spec{Dist: datagen.SelfSimilar, N: sc.n, K: k, H: h, Seed: 16}
			},
			par: []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5},
		},
		{
			name: "heavy-hitter(frac)",
			gen: func(f float64) datagen.Spec {
				return datagen.Spec{Dist: datagen.HeavyHitter, N: sc.n, K: k, HitFraction: f, Seed: 16}
			},
			par: []float64{0.95, 0.9, 0.75, 0.5, 0.25, 0.1},
		},
	}
	var tables []*bench.Table
	for _, ps := range specs {
		t := bench.NewTable(
			fmt.Sprintf("Figure 10 — HashingOnly vs PartitionOnly over locality, %s (N=2^%d)", ps.name, sc.logN),
			"param", "observed α", "HashingOnly ns/elem", "PartitionOnly ns/elem", "hashing wins")
		for _, p := range ps.par {
			keys := datagen.Generate(ps.gen(p))
			dh, res := runStrategy(sc, core.HashingOnly(), keys)
			dp, _ := runStrategy(sc, core.PartitionOnly(), keys)
			alpha := 0.0
			if res.Stats.TablesEmitted > 0 {
				alpha = res.Stats.AlphaSum / float64(res.Stats.TablesEmitted)
			} else {
				// All rows fit one table: α is the full reduction factor.
				alpha = float64(sc.n) / float64(res.Groups())
			}
			t.AddRow(p, alpha,
				bench.ElementTime(dh, sc.workers, sc.n, 1),
				bench.ElementTime(dp, sc.workers, sc.n, 1),
				dh < dp)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig11 reproduces Appendix A.2 (Figure 11): the impact of the
// amortization constant c on ADAPTIVE's run time for different K, on
// uniform data. c = 0 degenerates to HashingOnly; large c approaches
// PartitionAlways.
func fig11(sc scale) []*bench.Table {
	cs := []int{0, 1, 2, 5, 10, 20, 50}
	ks := []uint64{1 << 10, 1 << uint(sc.logN-4), 1 << uint(sc.logN-1)}
	t := bench.NewTable(
		fmt.Sprintf("Figure 11 — impact of c on Adaptive, ns/elem/core (uniform, N=2^%d, P=%d)", sc.logN, sc.workers),
		"c", fmt.Sprintf("K=2^10"), fmt.Sprintf("K=2^%d", sc.logN-4), fmt.Sprintf("K=2^%d", sc.logN-1))
	datasets := map[uint64][]uint64{}
	for _, k := range ks {
		datasets[k] = datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: k, Seed: 17})
	}
	for _, c := range cs {
		row := []any{c}
		for _, k := range ks {
			strat := core.Adaptive(core.DefaultAlpha0, c)
			if c == 0 {
				// Adaptive(.., 0) would default; build the degenerate case
				// explicitly via a tiny budget (c=0 means "switch back
				// immediately", i.e. HashingOnly).
				strat = core.HashingOnly()
			}
			d, _ := runStrategy(sc, strat, datasets[k])
			row = append(row, bench.ElementTime(d, sc.workers, sc.n, 1))
		}
		t.AddRow(row...)
	}
	return []*bench.Table{t}
}

// tblInsert measures in-cache hash-table insertion (Section 4.1: "final
// insertion costs … below 6 ns per element" on the paper's 2011 Xeon).
func tblInsert(sc scale) []*bench.Table {
	t := bench.NewTable(
		"Section 4.1 — hash table insertion cost (in-cache)",
		"table", "K", "ns/insert")
	rng := xrand.NewXoshiro256(18)
	const n = 1 << 20
	for _, kExp := range []int{6, 10, 14} {
		k := uint64(1) << uint(kExp)
		keys := make([]uint64, n)
		hs := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64n(k)
			hs[i] = hashfn.Murmur2(keys[i])
		}
		tb := hashtable.New(hashtable.Config{
			CapacityRows: hashtable.CapacityForCache(sc.cache, 0),
			Blocks:       hashfn.Fanout,
		})
		d := bench.MedianOf(sc.reps, func() {
			tb.Reset()
			for i := 0; i < n; i++ {
				if !tb.InsertState(hs[i], keys[i], nil, nil) {
					tb.Reset()
				}
			}
		})
		t.AddRow(fmt.Sprintf("cache-sized (%d rows)", tb.CapacityRows()),
			bench.FormatCount(int64(k)),
			float64(d.Nanoseconds())/float64(n))
	}
	return []*bench.Table{t}
}

var _ = time.Nanosecond
