package external

// Robustness tests of the spill path: checksummed file format, disk-budget
// cap, deterministic fault injection at every I/O site, cancellation, and
// cleanup accounting.

import (
	"context"
	"errors"
	"os"
	"sync/atomic"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/testutil"
)

// sameDigitKeys returns n keys whose hashes share the level-0 digit, so
// the whole input lands in one level-0 partition — the cheapest workload
// that still exercises the disk-level recursion (re-partitioning).
func sameDigitKeys(n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(0); len(keys) < n; k++ {
		if hashfn.Digit(hashfn.Murmur2(k), 0) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// writeTestSpill builds one finished spill file with the given records.
func writeTestSpill(t *testing.T, e *extExec, keys []uint64, partial []uint64) *spillWriter {
	t.Helper()
	w, err := e.newWriter()
	if err != nil {
		t.Fatal(err)
	}
	cols := [][]uint64{partial}
	for i, k := range keys {
		if err := e.appendState(w, k, cols, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.finishSpill(w); err != nil {
		t.Fatal(err)
	}
	return w
}

func testExec(t *testing.T) *extExec {
	t.Helper()
	return &extExec{
		cfg:  testCfg(100).withDefaults(),
		plan: BuildPlan([]agg.Spec{{Kind: agg.Count}}),
		dir:  t.TempDir(),
	}
}

func TestSpillRoundTrip(t *testing.T) {
	e := testExec(t)
	w := writeTestSpill(t, e, []uint64{1, 2, 3}, []uint64{10, 20, 30})
	keys, partials, err := e.readSpill(w.path)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("keys = %v", keys)
	}
	if partials[0][1] != 20 {
		t.Fatalf("partials = %v", partials)
	}
}

func TestSpillBitFlipDetected(t *testing.T) {
	e := testExec(t)
	w := writeTestSpill(t, e, []uint64{1, 2, 3}, []uint64{10, 20, 30})
	raw, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in every region: header, records, footer checksum.
	for _, off := range []int{5, spillHeaderSize + 9, len(raw) - 7} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		if err := os.WriteFile(w.path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := e.readSpill(w.path)
		if !errors.Is(err, ErrCorruptSpill) {
			t.Fatalf("byte %d flipped: err = %v, want ErrCorruptSpill", off, err)
		}
	}
}

func TestSpillTruncationDetected(t *testing.T) {
	e := testExec(t)
	w := writeTestSpill(t, e, []uint64{1, 2, 3}, []uint64{10, 20, 30})
	raw, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the footer off cleanly (the block then overruns the remaining
	// bytes), mid-footer, mid-block, and to nothing.
	for _, keep := range []int{len(raw) - e.recSize(), len(raw) - 5, spillHeaderSize + 3, 0} {
		if err := os.WriteFile(w.path, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := e.readSpill(w.path)
		if !errors.Is(err, ErrCorruptSpill) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorruptSpill", keep, err)
		}
	}
}

func TestSpillWrongPlanRejected(t *testing.T) {
	e := testExec(t)
	w := writeTestSpill(t, e, []uint64{1}, []uint64{10})
	// A reader whose plan has a different record width must refuse the file.
	e2 := &extExec{
		cfg:  e.cfg,
		plan: BuildPlan([]agg.Spec{{Kind: agg.Count}, {Kind: agg.Sum, Col: 0}}),
		dir:  e.dir,
	}
	if _, _, err := e2.readSpill(w.path); !errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("err = %v, want ErrCorruptSpill (record width mismatch)", err)
	}
}

func TestMaxSpillBytesFailsFast(t *testing.T) {
	dir := t.TempDir()
	keys := sameDigitKeys(400)
	cfg := testCfg(100)
	cfg.TempDir = dir
	cfg.MaxSpillBytes = 512 // a handful of records; the run needs far more
	_, err := Aggregate(cfg, &core.Input{Keys: keys})
	if !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("err = %v, want ErrSpillBudget", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("%d entries left in temp dir after budget failure", len(ents))
	}
}

func TestMaxSpillBytesGenerousSucceeds(t *testing.T) {
	cfg := testCfg(100)
	cfg.MaxSpillBytes = 1 << 30
	res, err := Aggregate(cfg, &core.Input{Keys: sameDigitKeys(300)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != 300 {
		t.Fatalf("groups = %d", res.Groups())
	}
}

// TestFaultInjectionEverySite drives the full spill pipeline (level-0
// spill, finish, merge read, disk-level re-partition, recursive merge)
// against a fault injected at the first, a middle, and the last occurrence
// of every file operation. Each injected fault must surface as a wrapped
// error, and the temp dir must come back empty — no leaked file, no leaked
// handle crashing the removal.
func TestFaultInjectionEverySite(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	keys := sameDigitKeys(300)
	in := &core.Input{Keys: keys}
	baseCfg := func(dir string, fs faultfs.FS) Config {
		cfg := testCfg(100)
		cfg.TempDir = dir
		cfg.FS = fs
		return cfg
	}

	// Probe run: count the operations of a clean execution.
	probe := faultfs.NewInjector(faultfs.OS(), faultfs.OpCreate, 0)
	if _, err := Aggregate(baseCfg(t.TempDir(), probe), in); err != nil {
		t.Fatal(err)
	}
	if probe.Count(faultfs.OpCreate) < 2 || probe.Count(faultfs.OpRead) < 2 {
		t.Fatalf("workload too small to exercise the spill path: %d creates, %d reads",
			probe.Count(faultfs.OpCreate), probe.Count(faultfs.OpRead))
	}

	for _, op := range []faultfs.Op{faultfs.OpCreate, faultfs.OpOpen, faultfs.OpWrite, faultfs.OpClose, faultfs.OpRead} {
		total := probe.Count(op)
		if total == 0 {
			t.Fatalf("op %v never executed; the probe workload misses a site", op)
		}
		for _, n := range [...]int{1, total/2 + 1, total} {
			inj := faultfs.NewInjector(faultfs.OS(), op, n)
			dir := t.TempDir()
			_, err := Aggregate(baseCfg(dir, inj), in)
			if !inj.Triggered() {
				t.Fatalf("%v #%d/%d: fault never fired", op, n, total)
			}
			if err == nil {
				t.Fatalf("%v #%d/%d: injected fault did not surface as an error", op, n, total)
			}
			var ie *faultfs.InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("%v #%d/%d: error does not wrap the injected fault: %v", op, n, total, err)
			}
			ents, _ := os.ReadDir(dir)
			if len(ents) != 0 {
				t.Fatalf("%v #%d/%d: %d entries left behind in temp dir", op, n, total, len(ents))
			}
		}
	}
}

// cancelAfterStrategy cancels the context on the n-th task-state creation
// inside the in-memory leaves, then keeps behaving adaptively.
type cancelAfterStrategy struct {
	cancel context.CancelFunc
	after  int64
	calls  *atomic.Int64
}

func (c cancelAfterStrategy) Name() string { return "cancel-injector" }

func (c cancelAfterStrategy) NewState(level, cacheRows int) core.StrategyState {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return core.DefaultAdaptive().NewState(level, cacheRows)
}

func TestExternalContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	cfg := testCfg(100)
	cfg.TempDir = dir
	res, err := AggregateContext(ctx, cfg, &core.Input{Keys: sameDigitKeys(300)})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled call must not return a result")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatal("cancelled-before-start call created temp state")
	}
}

func TestExternalCancelMidRun(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	cfg := testCfg(100)
	cfg.TempDir = dir
	// Cancel while some chunk is being pre-aggregated: several chunks'
	// spill output is already on disk at that point.
	cfg.Core.Strategy = cancelAfterStrategy{cancel: cancel, after: 4, calls: new(atomic.Int64)}
	_, err := AggregateContext(ctx, cfg, &core.Input{Keys: sameDigitKeys(1000)})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("%d entries left in temp dir after cancellation", len(ents))
	}
}

func TestRemoveFailureCountedNotFatal(t *testing.T) {
	// A spill file whose removal fails must not fail the aggregation; it
	// is recorded in Stats and swept up with the directory afterwards.
	inj := faultfs.NewInjector(faultfs.OS(), faultfs.OpRemove, 1)
	cfg := testCfg(100)
	cfg.FS = inj
	res, err := Aggregate(cfg, &core.Input{Keys: sameDigitKeys(300)})
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Triggered() {
		t.Fatal("remove fault never fired")
	}
	if res.Stats.CleanupFailures == 0 {
		t.Fatal("failed removal was silently ignored; Stats.CleanupFailures = 0")
	}
	if res.Groups() != 300 {
		t.Fatalf("groups = %d", res.Groups())
	}
}
