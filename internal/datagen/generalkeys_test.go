package datagen

import (
	"strings"
	"testing"
)

func TestStringKeyInjective(t *testing.T) {
	seen := make(map[string]uint64)
	for k := uint64(0); k < 50000; k++ {
		s := StringKey(k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("StringKey collides: %d and %d both map to %q", prev, k, s)
		}
		seen[s] = k
		if !strings.HasPrefix(s, "https://") {
			t.Fatalf("StringKey(%d) = %q lacks the https:// prefix", k, s)
		}
	}
}

func TestGenerateStringsMatchesUint64Structure(t *testing.T) {
	for _, d := range Dists() {
		spec := Spec{Dist: d, N: 4096, K: 256, Seed: 11}
		keys := Generate(spec)
		strs := GenerateStrings(spec)
		if len(strs) != len(keys) {
			t.Fatalf("%s: %d strings for %d keys", d, len(strs), len(keys))
		}
		for i := range keys {
			if strs[i] != StringKey(keys[i]) {
				t.Fatalf("%s row %d: %q != StringKey(%d)", d, i, strs[i], keys[i])
			}
		}
	}
}

func TestGenerateCompositeInjective(t *testing.T) {
	for _, width := range []int{1, 2, 3} {
		spec := Spec{Dist: Zipf, N: 8192, K: 1024, Seed: 5}
		keys := Generate(spec)
		cols := GenerateComposite(spec, width)
		if len(cols) != width {
			t.Fatalf("width %d: got %d columns", width, len(cols))
		}
		// Same tuple ⇔ same source key.
		type tup [3]uint64
		byTuple := make(map[tup]uint64)
		for i := range keys {
			var tp tup
			for c := 0; c < width; c++ {
				tp[c] = cols[c][i]
			}
			if prev, ok := byTuple[tp]; ok {
				if prev != keys[i] {
					t.Fatalf("width %d row %d: tuple %v maps to keys %d and %d", width, i, tp[:width], prev, keys[i])
				}
			} else {
				byTuple[tp] = keys[i]
			}
		}
		if len(byTuple) != CountDistinct(keys) {
			t.Fatalf("width %d: %d distinct tuples for %d distinct keys", width, len(byTuple), CountDistinct(keys))
		}
	}
}

func TestNullMask(t *testing.T) {
	mask := NullMask(100000, 0.1, 3)
	nulls := 0
	for _, m := range mask {
		if m {
			nulls++
		}
	}
	if nulls < 8000 || nulls > 12000 {
		t.Fatalf("10%% mask marked %d of 100000 rows", nulls)
	}
	for _, m := range NullMask(100, 0, 1) {
		if m {
			t.Fatal("zero-fraction mask must be all false")
		}
	}
	// Deterministic.
	again := NullMask(100000, 0.1, 3)
	for i := range mask {
		if mask[i] != again[i] {
			t.Fatalf("NullMask not deterministic at row %d", i)
		}
	}
}
