package faultfs

// Concurrency contract tests: one injector instance hammered from many
// goroutines must stay race-free (run under -race in CI) and keep its
// counting invariants — exactly the load the parallel merge phase of
// internal/external puts on it.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// hammerFS drives one FS from g goroutines, each running a full
// create-write-close-open-read-stat-remove cycle per iteration against its
// own file, tolerating (but tallying) injected faults.
func hammerFS(t *testing.T, fsys FS, dir string, g, iters int) (faults int64) {
	t.Helper()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 64)
			mine := int64(0)
			for it := 0; it < iters; it++ {
				path := filepath.Join(dir, fmt.Sprintf("h-%d-%d", w, it))
				err := func() error {
					f, err := fsys.Create(path)
					if err != nil {
						return err
					}
					if _, err := f.Write(buf); err != nil {
						f.Close()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
					f, err = fsys.Open(path)
					if err != nil {
						return err
					}
					defer f.Close()
					if _, err := f.Stat(); err != nil {
						return err
					}
					if _, err := f.Read(buf); err != nil {
						return err
					}
					return nil
				}()
				if err != nil {
					var ie *InjectedError
					if !errors.As(err, &ie) {
						t.Errorf("worker %d: non-injected failure: %v", w, err)
						return
					}
					mine++
				}
				fsys.Remove(path) // faulted removes leave the file for TempDir cleanup
			}
			mu.Lock()
			faults += mine
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return faults
}

func TestInjectorConcurrentHammer(t *testing.T) {
	const g, iters = 8, 60
	// One permanent plan per op kind: the fault must fire exactly once no
	// matter how many goroutines race past the trigger point.
	for _, op := range []Op{OpCreate, OpWrite, OpClose, OpOpen, OpRead, OpRemove} {
		inj := NewInjector(OS(), op, g*iters/2)
		hammerFS(t, inj, t.TempDir(), g, iters)
		if !inj.Triggered() {
			t.Fatalf("%v plan never fired under concurrency", op)
		}
		if got := inj.Count(op); got < g*iters/2 {
			t.Fatalf("%v count = %d, below the trigger point", op, got)
		}
	}
}

func TestFlakyConcurrentHammer(t *testing.T) {
	const g, iters = 8, 40
	flaky := NewFlaky(OS(), OpWrite, 5, 3)
	faults := hammerFS(t, flaky, t.TempDir(), g, iters)
	if faults != 3 {
		t.Fatalf("flaky streak of 3 produced %d faults", faults)
	}
	if got, want := flaky.Count(OpWrite), g*iters; got != want {
		t.Fatalf("write count = %d, want %d (no lost updates)", got, want)
	}
}

func TestChaosConcurrentHammer(t *testing.T) {
	const g, iters = 8, 40
	chaos := NewChaos(OS(), 0xFEED, 50)
	faults := hammerFS(t, chaos, t.TempDir(), g, iters)
	if faults == 0 {
		t.Fatal("5% chaos over thousands of ops injected nothing")
	}
	if got := chaos.Faults(); got < faults {
		t.Fatalf("Faults() = %d, below the %d surfaced to callers", got, faults)
	}
}

func TestRetryConcurrentHammer(t *testing.T) {
	const g, iters = 8, 40
	// Transient chaos under the retry layer: most faults are absorbed, the
	// retry counter must account for every absorbed attempt without races.
	chaos := NewChaos(OS(), 0xBEEF, 30)
	retry := NewRetry(chaos, RetryPolicy{MaxAttempts: 6, Sleep: func(time.Duration) {}})
	faults := hammerFS(t, retry, t.TempDir(), g, iters)
	if retry.Retries() == 0 {
		t.Fatal("chaos under retry performed zero retries")
	}
	if faults > 0 {
		// Possible (6 straight faults on one op) but should be rare; only
		// the accounting is asserted here.
		t.Logf("%d faults leaked through %d-attempt retry", faults, 6)
	}
	if _, err := os.Stat(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
