package serve

// The overload drill from the service's acceptance bar: a global budget
// sized for roughly four concurrent queries takes a 64-client burst.
// Every client must see exactly one of the documented outcomes — a
// successful result that is bit-identical to a direct library call, or a
// typed overload rejection — with zero panics, zero internal errors, a
// ledger drained to zero, and no leaked goroutines.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cacheagg"
	"cacheagg/internal/testutil"
)

// drillShapes are the distinct query shapes the burst mixes (distinct so
// the result cache, when enabled, cannot collapse the burst into one
// execution per shape colliding — the drill disables it anyway).
var drillShapes = []string{
	`[{"func":"count"}]`,
	`[{"func":"sum","col":0}]`,
	`[{"func":"min","col":1}]`,
	`[{"func":"max","col":0}]`,
	`[{"func":"avg","col":1}]`,
	`[{"func":"count"},{"func":"sum","col":1}]`,
	`[{"func":"sum","col":0},{"func":"avg","col":0}]`,
	`[{"func":"min","col":0},{"func":"max","col":1},{"func":"count"}]`,
}

// drillSpecs mirrors drillShapes as library AggSpec lists.
var drillSpecs = [][]cacheagg.AggSpec{
	{{Func: cacheagg.Count}},
	{{Func: cacheagg.Sum, Col: 0}},
	{{Func: cacheagg.Min, Col: 1}},
	{{Func: cacheagg.Max, Col: 0}},
	{{Func: cacheagg.Avg, Col: 1}},
	{{Func: cacheagg.Count}, {Func: cacheagg.Sum, Col: 1}},
	{{Func: cacheagg.Sum, Col: 0}, {Func: cacheagg.Avg, Col: 0}},
	{{Func: cacheagg.Min, Col: 0}, {Func: cacheagg.Max, Col: 1}, {Func: cacheagg.Count}},
}

func TestOverloadDrill(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const (
		rows    = 1 << 16
		clients = 64
	)
	reg := testRegistry(t, rows)

	// Size the global budget to fit ~4 concurrent queries of the widest
	// shape, using the same estimator the server does.
	est := EstimateCost(rows, 3, 1, 64<<10)
	s, ts := newTestServer(t, Config{
		Registry: reg,
		Admission: AdmitConfig{
			BudgetBytes:   4 * est,
			MaxQueue:      8,
			ShrinkAfter:   30 * time.Millisecond,
			ExternalAfter: 60 * time.Millisecond,
			MaxWait:       800 * time.Millisecond,
			MinGrantBytes: 2 << 20,
		},
		QueryWorkers:    1,
		QueryCacheBytes: 64 << 10,
		// No result cache: every admitted query must truly execute under
		// its grant, so the burst exercises admission, not memoization.
		ResultCacheBytes: 0,
	})

	// Direct library results for each shape: the bit-identical baseline.
	d, _ := reg.Lookup("events")
	baseline := make([]*cacheagg.Result, len(drillSpecs))
	for i, specs := range drillSpecs {
		res, err := cacheagg.Aggregate(cacheagg.Input{
			GroupBy: d.Keys, Columns: d.Cols, Aggregates: specs,
		}, cacheagg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res
	}

	type verdict struct {
		client int
		err    error  // harness failure (untyped outcome, mismatch)
		code   string // "" for success, else the typed rejection code
	}
	verdicts := make(chan verdict, clients)
	var wg sync.WaitGroup
	priorities := []string{"low", "normal", "high"}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			shape := c % len(drillShapes)
			body := fmt.Sprintf(`{"dataset":"events","priority":%q,"aggregates":%s}`,
				priorities[c%3], drillShapes[shape])
			resp, err := http.Post(ts.URL+"/v1/aggregate", "application/json",
				strings.NewReader(body))
			if err != nil {
				verdicts <- verdict{client: c, err: fmt.Errorf("transport: %w", err)}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				wantFloats := strings.Contains(drillShapes[shape], "avg")
				verdicts <- verdict{client: c, err: checkBitIdentical(resp.Body, baseline[shape], wantFloats)}
				return
			}
			code, err := decodeErrorCode(resp.Body)
			if err != nil {
				verdicts <- verdict{client: c, err: err}
				return
			}
			switch code {
			case ErrAdmissionQueueFull.Code, ErrBudgetUnavailable.Code, ErrShed.Code:
				verdicts <- verdict{client: c, code: code}
			default:
				verdicts <- verdict{client: c,
					err: fmt.Errorf("unexpected outcome %q (status %d)", code, resp.StatusCode)}
			}
		}(c)
	}
	wg.Wait()
	close(verdicts)

	counts := map[string]int{}
	for v := range verdicts {
		if v.err != nil {
			t.Errorf("client %d: %v", v.client, v.err)
			continue
		}
		if v.code == "" {
			counts["ok"]++
		} else {
			counts[v.code]++
		}
	}
	t.Logf("drill outcomes: %v", counts)
	if counts["ok"] == 0 {
		t.Error("no client succeeded — the service starved its entire burst")
	}

	// The service must come out clean: nothing reserved, nothing queued,
	// nothing contained, and a drain that completes immediately.
	if err := s.Drain(contextWithTimeout(t, 10*time.Second)); err != nil {
		t.Fatalf("drain after burst: %v", err)
	}
	if got := s.ctrl.Ledger().Reserved(); got != 0 {
		t.Errorf("ledger reserved = %d after drain, want 0", got)
	}
	if got := s.ctrl.QueueLen(); got != 0 {
		t.Errorf("queue length = %d after drain, want 0", got)
	}
	if got := s.metrics.Panics.Load(); got != 0 {
		t.Errorf("panics = %d, want 0", got)
	}
	if got := s.metrics.InternalErrors.Load(); got != 0 {
		t.Errorf("internal errors = %d, want 0", got)
	}
}

// checkBitIdentical parses a success body and compares it to the direct
// library result: the same group set, and for every group the exact same
// aggregate bits (integer and, for AVG shapes, float). Row order is
// compared keyed by group — the operator's documented identity between
// in-memory (bucket-order) and degraded (total hash order) runs, which a
// grant-degraded service response inherits. Float columns ride along only
// for shapes containing an AVG (wantFloats).
func checkBitIdentical(body io.Reader, want *cacheagg.Result, wantFloats bool) error {
	idx := want.Index()
	seen := make(map[uint64]bool, len(idx))
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return fmt.Errorf("empty success body")
	}
	var hdr struct {
		Groups int `json:"groups"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("header: %w", err)
	}
	if hdr.Groups != want.Len() {
		return fmt.Errorf("header claims %d groups, direct call has %d", hdr.Groups, want.Len())
	}
	i := 0
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"done"`)) {
			var trailer struct {
				Rows int `json:"rows"`
			}
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				return fmt.Errorf("trailer: %w", err)
			}
			if trailer.Rows != i {
				return fmt.Errorf("trailer says %d rows, saw %d", trailer.Rows, i)
			}
			if i != want.Len() {
				return fmt.Errorf("served %d rows, direct call has %d", i, want.Len())
			}
			return nil
		}
		var row wireRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if i >= want.Len() {
			return fmt.Errorf("more rows than the direct call's %d", want.Len())
		}
		w, ok := idx[row.G]
		if !ok {
			return fmt.Errorf("row %d: group %d not in the direct result", i, row.G)
		}
		if seen[row.G] {
			return fmt.Errorf("row %d: duplicate group %d", i, row.G)
		}
		seen[row.G] = true
		if len(row.A) != len(want.Aggs) {
			return fmt.Errorf("row %d: %d agg values, want %d", i, len(row.A), len(want.Aggs))
		}
		if wantFloats && len(row.F) != len(want.Aggs) {
			return fmt.Errorf("row %d: %d float values, want %d", i, len(row.F), len(want.Aggs))
		}
		for a := range want.Aggs {
			if row.A[a] != want.Aggs[a][w] {
				return fmt.Errorf("group %d agg %d: %d, want %d", row.G, a, row.A[a], want.Aggs[a][w])
			}
			if wantFloats && row.F[a] != want.Float(a, w) {
				return fmt.Errorf("group %d agg %d float: %v, want %v", row.G, a, row.F[a], want.Float(a, w))
			}
		}
		i++
	}
	return fmt.Errorf("no trailer after %d rows", i)
}

// decodeErrorCode extracts the typed code from an error envelope.
func decodeErrorCode(body io.Reader) (string, error) {
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		return "", fmt.Errorf("undecodable error envelope: %w", err)
	}
	if env.Error.Code == "" {
		return "", fmt.Errorf("error envelope without a code")
	}
	return env.Error.Code, nil
}
