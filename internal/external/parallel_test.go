package external

// Differential tests of the parallel merge engine: the parallel,
// prefetching, block-codec path must produce bit-identical results to the
// sequential map-merge oracle and to the in-memory operator, across
// distributions, recursion depths and worker counts — and identical output
// ORDER across worker counts (the deterministic-assembly guarantee).

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/xrand"
)

// sortedRows flattens a result into key-sorted rows for order-insensitive
// bit comparison.
type sortedRows struct {
	keys  []uint64
	aggs  [][]int64
	flts  [][]float64
	perm  []int
	specs int
}

func sortRows(res *Result) sortedRows {
	s := sortedRows{specs: len(res.Aggs)}
	s.perm = make([]int, len(res.Keys))
	for i := range s.perm {
		s.perm[i] = i
	}
	sort.Slice(s.perm, func(a, b int) bool { return res.Keys[s.perm[a]] < res.Keys[s.perm[b]] })
	s.keys = make([]uint64, len(res.Keys))
	s.aggs = make([][]int64, s.specs)
	s.flts = make([][]float64, s.specs)
	for c := 0; c < s.specs; c++ {
		s.aggs[c] = make([]int64, len(res.Keys))
		s.flts[c] = make([]float64, len(res.Keys))
	}
	for out, in := range s.perm {
		s.keys[out] = res.Keys[in]
		for c := 0; c < s.specs; c++ {
			s.aggs[c][out] = res.Aggs[c][in]
			s.flts[c][out] = res.AggsFloat[c][in]
		}
	}
	return s
}

// mustEqualSorted asserts two results carry bit-identical rows (including
// the float finalization) once key-sorted.
func mustEqualSorted(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Groups() != want.Groups() {
		t.Fatalf("%s: groups %d vs %d", label, got.Groups(), want.Groups())
	}
	g, w := sortRows(got), sortRows(want)
	for i := range g.keys {
		if g.keys[i] != w.keys[i] {
			t.Fatalf("%s: row %d key %d vs %d", label, i, g.keys[i], w.keys[i])
		}
		for c := 0; c < g.specs; c++ {
			if g.aggs[c][i] != w.aggs[c][i] {
				t.Fatalf("%s: key %d col %d: %d vs %d", label, g.keys[i], c, g.aggs[c][i], w.aggs[c][i])
			}
			if g.flts[c][i] != w.flts[c][i] {
				t.Fatalf("%s: key %d col %d float: %v vs %v", label, g.keys[i], c, g.flts[c][i], w.flts[c][i])
			}
		}
	}
}

// TestParallelMatchesOracleAndCore is the tentpole differential: for every
// distribution × budget (driving 1 and 2+ merge levels) × worker count,
// the parallel engine must be bit-identical to (a) the sequential map
// oracle and (b) the in-memory operator, on all aggregate kinds incl. AVG.
func TestParallelMatchesOracleAndCore(t *testing.T) {
	dists := []datagen.Dist{datagen.Uniform, datagen.Zipf, datagen.Sequential}
	budgets := []int{6000, 200} // one merge level vs forced deep recursion
	for _, dist := range dists {
		for _, budget := range budgets {
			in := mkInput(dist, 40000, 20000, uint64(budget))
			seqCfg := testCfg(budget)
			seqCfg.SequentialMerge = true
			oracle, err := Aggregate(seqCfg, in)
			if err != nil {
				t.Fatalf("%v/%d oracle: %v", dist, budget, err)
			}
			checkResult(t, oracle, in)
			coreRes, err := core.Aggregate(core.Config{Workers: 2, CacheBytes: 32 << 10}, in)
			if err != nil {
				t.Fatalf("%v/%d core: %v", dist, budget, err)
			}
			for _, workers := range []int{1, 4} {
				cfg := testCfg(budget)
				cfg.MergeWorkers = workers
				res, err := Aggregate(cfg, in)
				if err != nil {
					t.Fatalf("%v/%d/w%d: %v", dist, budget, workers, err)
				}
				label := dist.String() + "/parallel-vs-oracle"
				mustEqualSorted(t, label, res, oracle)
				mustEqualSorted(t, dist.String()+"/parallel-vs-core", res, &Result{
					Keys: coreRes.Keys, Aggs: coreRes.Aggs, AggsFloat: coreRes.AggsFloat,
				})
				if budget == 200 && res.Stats.MergeLevels < 2 {
					t.Fatalf("%v/w%d: budget %d did not force recursion (levels=%d)",
						dist, workers, budget, res.Stats.MergeLevels)
				}
			}
		}
	}
}

// TestParallelOrderDeterministic asserts the stronger property: the output
// ORDER (not just the sorted content) is identical across worker counts
// and repeated runs — partitions concatenate in digit order regardless of
// the schedule.
func TestParallelOrderDeterministic(t *testing.T) {
	in := mkInput(datagen.Uniform, 30000, 15000, 11)
	var base *Result
	for _, workers := range []int{1, 4, 4, 0} {
		cfg := testCfg(300)
		cfg.MergeWorkers = workers
		res, err := Aggregate(cfg, in)
		if err != nil {
			t.Fatalf("w%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res.Keys) != len(base.Keys) {
			t.Fatalf("w%d: %d groups vs %d", workers, len(res.Keys), len(base.Keys))
		}
		for i := range res.Keys {
			if res.Keys[i] != base.Keys[i] {
				t.Fatalf("w%d: output order diverged at row %d (%d vs %d)",
					workers, i, res.Keys[i], base.Keys[i])
			}
		}
	}
}

// sharedPrefixKeys returns n keys whose hashes share the level-0 AND
// level-1 digits, so they survive two radix splits together — the cheapest
// input that forces a third merge level under a small row budget.
func sharedPrefixKeys(n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(0); len(keys) < n; k++ {
		h := hashfn.Murmur2(k)
		if hashfn.Digit(h, 0) == 0 && hashfn.Digit(h, 1) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestParallelThreeMergeLevels(t *testing.T) {
	keys := sharedPrefixKeys(300)
	in := &core.Input{Keys: keys}
	seqCfg := testCfg(50)
	seqCfg.SequentialMerge = true
	oracle, err := Aggregate(seqCfg, in)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(50)
	cfg.MergeWorkers = 4
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MergeLevels < 3 {
		t.Fatalf("shared-prefix keys + budget 50 reached only %d merge levels", res.Stats.MergeLevels)
	}
	mustEqualSorted(t, "three-levels", res, oracle)
	if res.Groups() != len(keys) {
		t.Fatalf("groups = %d, want %d", res.Groups(), len(keys))
	}
}

// TestParallelSingleProc pins GOMAXPROCS=1: the engine must still complete
// (no scheduling deadlock between merges, loaders and admission waits) and
// match the oracle.
func TestParallelSingleProc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	in := mkInput(datagen.Zipf, 30000, 10000, 23)
	seqCfg := testCfg(250)
	seqCfg.SequentialMerge = true
	oracle, err := Aggregate(seqCfg, in)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(250) // MergeWorkers 0 → GOMAXPROCS → 1
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSorted(t, "gomaxprocs-1", res, oracle)
}

// TestParallelHybridBudget runs the parallel merge under a byte budget
// tight enough to drive the hybrid resident/evict machinery and the
// admission waits, and requires a fully drained governor afterwards.
func TestParallelHybridBudget(t *testing.T) {
	in := mkInput(datagen.Uniform, 60000, 40000, 31)
	gov := memgov.New(8 << 20)
	cfg := testCfg(0)
	cfg.MemoryBudgetBytes = 8 << 20
	cfg.Governor = gov
	cfg.MergeWorkers = 4
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	if got := gov.Reserved(); got != 0 {
		t.Fatalf("governor still holds %d bytes after the run (prefetch or load leak)", got)
	}
	seqCfg := testCfg(0)
	seqCfg.MemoryBudgetBytes = 8 << 20
	seqCfg.SequentialMerge = true
	oracle, err := Aggregate(seqCfg, in)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSorted(t, "hybrid-budget", res, oracle)
}

// TestV1ReadCompat proves a version-1 file written by the previous build
// still decodes through both the plain reader and the reserving merge-path
// loader.
func TestV1ReadCompat(t *testing.T) {
	e := testExec(t)
	e.gov = memgov.New(0)
	keys := []uint64{7, 8, 9, 7}
	partials := []uint64{1, 2, 3, 4}
	path := filepath.Join(e.dir, "v1.spill")
	if err := os.WriteFile(path, encodeSpillV1(keys, partials), 0o644); err != nil {
		t.Fatal(err)
	}
	gotKeys, gotCols, err := e.readSpill(path)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	for i := range keys {
		if gotKeys[i] != keys[i] || gotCols[0][i] != partials[i] {
			t.Fatalf("v1 row %d: (%d,%d) want (%d,%d)", i, gotKeys[i], gotCols[0][i], keys[i], partials[i])
		}
	}
	ld, err := e.loadPartition(nil, nil, path)
	if err != nil {
		t.Fatalf("loadPartition on v1 file: %v", err)
	}
	if len(ld.keys) != len(keys) {
		t.Fatalf("loadPartition rows = %d, want %d", len(ld.keys), len(keys))
	}
	e.releaseLoad(ld)
	if got := e.gov.Reserved(); got != 0 {
		t.Fatalf("load reservation not drained: %d", got)
	}
}

// TestPrefetchHappens asserts the prefetcher actually runs ahead on a
// spill-heavy unlimited-budget workload (the stat is also what the bench
// sweep reports).
func TestPrefetchHappens(t *testing.T) {
	in := mkInput(datagen.Uniform, 50000, 30000, 41)
	cfg := testCfg(500)
	cfg.MergeWorkers = 4
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	if res.Stats.PrefetchedPartitions == 0 {
		t.Fatal("no partition was ever prefetched on a 256-partition workload")
	}
}

// TestMergeBatchedTablePath exercises the blocked-table merge directly at a
// size above smallMergeRows — the differential tests above use partitions
// small enough to take the map shortcut — and checks it is bit-identical to
// the map oracle after a key sort.
func TestMergeBatchedTablePath(t *testing.T) {
	p := BuildPlan([]agg.Spec{
		{Kind: agg.Count},
		{Kind: agg.Sum, Col: 0},
		{Kind: agg.Min, Col: 0},
		{Kind: agg.Avg, Col: 0},
	})
	e := &extExec{
		cfg:  testCfg(100).withDefaults(),
		plan: p,
		gov:  memgov.New(0),
		kern: agg.NewLayout(p.Dec).Kernels(),
	}
	n := 3 * smallMergeRows
	rng := xrand.NewXoshiro256(99)
	keys := make([]uint64, n)
	cols := make([][]uint64, p.Width())
	for c := range cols {
		cols[c] = make([]uint64, n)
	}
	for i := range keys {
		keys[i] = 1 + rng.Next()%1500
		for c := range cols {
			cols[c][i] = rng.Next() % 4096
		}
	}

	got := e.mergeBatched(keys, cols, 1)
	wantK, wantC := mergeRowsMap(p, keys, cols)
	if e.gov.Reserved() != 0 {
		t.Fatalf("governor not drained: %d bytes", e.gov.Reserved())
	}

	sortCM := func(k []uint64, cs [][]uint64) ([]uint64, [][]uint64) {
		perm := make([]int, len(k))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return k[perm[a]] < k[perm[b]] })
		ok := make([]uint64, len(k))
		oc := make([][]uint64, len(cs))
		for c := range cs {
			oc[c] = make([]uint64, len(k))
		}
		for i, pi := range perm {
			ok[i] = k[pi]
			for c := range cs {
				oc[c][i] = cs[c][pi]
			}
		}
		return ok, oc
	}
	gk, gc := sortCM(got.keys, got.cols)
	wk, wc := sortCM(wantK, wantC)
	if len(gk) != len(wk) {
		t.Fatalf("group count: table %d, map %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("key[%d]: table %d, map %d", i, gk[i], wk[i])
		}
		for c := range gc {
			if gc[c][i] != wc[c][i] {
				t.Fatalf("col %d key %d: table %#x, map %#x", c, gk[i], gc[c][i], wc[c][i])
			}
		}
	}
}
