package cacheagg

// Public face of the execution tracer: an optional, low-overhead observer
// of what the operator actually did — strategy switches with the α that
// triggered them, table emits and splits, spill and merge traffic, memory
// high-water samples — plus a wall-time breakdown by execution phase.
//
// Install one with Options.Tracer. A nil Tracer (the default) costs one
// predictable branch per block of rows on the hot path; an installed one
// costs two atomics per event on a padded per-worker counter lane plus a
// lock-free ring slot, and events are only emitted at rare boundaries
// (a table filling, a partition spilling), never per row.

import (
	"encoding/json"
	"io"
	"time"

	"cacheagg/internal/trace"
)

// Tracer records execution events and phase timings across one or more
// Aggregate calls. Safe for concurrent use; a single Tracer may observe
// concurrent executions, though per-call attribution is then lost.
//
// The zero value is not usable; construct with NewTracer.
type Tracer struct {
	rec *trace.Recorder
}

// NewTracer returns a Tracer whose event ring keeps the most recent
// events (capacity rounds up to a power of two; capacity <= 0 selects the
// default of 16384). Counters and phase times are exact regardless of
// ring capacity — only the event *log* is bounded.
func NewTracer(capacity int) *Tracer {
	return &Tracer{rec: trace.NewRecorder(capacity)}
}

// TraceEvent is one recorded execution event.
type TraceEvent struct {
	// Seq is the global emission sequence number (monotone per Tracer).
	Seq uint64 `json:"seq"`
	// Nanos is the event time as a monotonic-clock nanosecond reading.
	Nanos int64 `json:"t_ns"`
	// Kind names the event: "strategy-switch", "table-split", "table-emit",
	// "spill-write", "spill-read", "spill-retry", "merge-start",
	// "merge-steal", "merge-finish", "prefetch-load", "prefetch-hit",
	// "prefetch-drop", "gov-high-water", "epoch-seal", "checkpoint-write",
	// "recover", "backpressure", "plan", "hot-key-bypass", "routine-select",
	// "global-contention" or "intern-grow".
	Kind string `json:"kind"`
	// Worker is the emitting worker's index (0 when not worker-scoped).
	Worker int `json:"worker"`
	// Level is the recursion level the event happened at, where it applies.
	Level int `json:"level"`
	// Part identifies the partition (radix digit or spill-file id) the
	// event concerns, or -1 when it has no partition identity.
	Part int64 `json:"part"`
	// Value is the event's payload: the observed α for strategy switches
	// and table splits, row counts for emits and spill writes, byte sizes
	// for spill reads and prefetches, the sampled bytes for gov-high-water.
	Value float64 `json:"value"`
}

// Phases is the wall-time breakdown of one Aggregate call, reported on
// Result.Phases when a Tracer was installed. Intake and Merge are elapsed
// wall time of their pipeline stages; the rest are summed worker activity
// and therefore may exceed wall time on multi-worker runs. Phases overlap
// by design — the total is not the query latency.
type Phases struct {
	// Intake is the wall time of the first pass over the input.
	Intake time.Duration
	// Scatter is worker time spent in the PARTITIONING routine.
	Scatter time.Duration
	// TableBuild is worker time spent filling hash tables (HASHING).
	TableBuild time.Duration
	// Split is worker time spent splitting full tables into runs and
	// sealing or emitting their buckets.
	Split time.Duration
	// Spill is worker time spent encoding and writing spill blocks.
	Spill time.Duration
	// Merge is the wall time of the out-of-core merge phase (zero unless
	// the run degraded to external).
	Merge time.Duration
}

func phasesOf(p [trace.NumPhases]int64) Phases {
	return Phases{
		Intake:     time.Duration(p[trace.PhaseIntake]),
		Scatter:    time.Duration(p[trace.PhaseScatter]),
		TableBuild: time.Duration(p[trace.PhaseTableBuild]),
		Split:      time.Duration(p[trace.PhaseSplit]),
		Spill:      time.Duration(p[trace.PhaseSpill]),
		Merge:      time.Duration(p[trace.PhaseMerge]),
	}
}

// TraceSnapshot is a point-in-time aggregate view of a Tracer: exact
// event counts and value sums per kind, and accumulated phase times.
type TraceSnapshot struct {
	// Emitted is the total number of events emitted so far.
	Emitted uint64 `json:"emitted"`
	// Counts maps event kind to the number of events of that kind.
	Counts map[string]int64 `json:"counts"`
	// Sums maps event kind to the sum of its events' Value fields.
	Sums map[string]float64 `json:"sums"`
	// PhaseNanos maps phase name to accumulated nanoseconds.
	PhaseNanos map[string]int64 `json:"phase_nanos"`
}

func snapshotOf(s trace.Snapshot) TraceSnapshot {
	out := TraceSnapshot{
		Emitted:    s.Emitted,
		Counts:     make(map[string]int64),
		Sums:       make(map[string]float64),
		PhaseNanos: make(map[string]int64),
	}
	for k := 0; k < trace.NumKinds; k++ {
		if c := s.Counts[k]; c != 0 {
			out.Counts[trace.Kind(k).String()] = c
			out.Sums[trace.Kind(k).String()] = s.Sums[k]
		}
	}
	for p := 0; p < trace.NumPhases; p++ {
		if n := s.Phases[p]; n != 0 {
			out.PhaseNanos[trace.Phase(p).String()] = n
		}
	}
	return out
}

// Snapshot returns the tracer's current aggregate state. Cheap enough to
// poll; the counters are exact even when the event ring has wrapped.
func (t *Tracer) Snapshot() TraceSnapshot {
	return snapshotOf(t.rec.Snapshot())
}

// String renders the snapshot as JSON, making a Tracer directly usable as
// an expvar.Var:
//
//	expvar.Publish("cacheagg", tracer)
func (t *Tracer) String() string {
	b, err := json.Marshal(t.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Events returns the retained event log, oldest first. When more events
// were emitted than the ring holds, only the newest are retained (the
// counters in Snapshot still cover everything).
func (t *Tracer) Events() []TraceEvent {
	evs := t.rec.Events()
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = TraceEvent{
			Seq:    e.Seq,
			Nanos:  e.Nanos,
			Kind:   e.Kind.String(),
			Worker: e.Worker,
			Level:  e.Level,
			Part:   e.Part,
			Value:  e.Value,
		}
	}
	return out
}

// WriteJSONL writes the retained event log to w, one JSON object per
// line, in emission order — the same format aggrun -trace produces.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return trace.WriteJSONL(w, t.rec.Events())
}

// phasesSince converts the phase time accrued since pre into the public
// breakdown.
func (t *Tracer) phasesSince(pre trace.Snapshot) Phases {
	return phasesOf(t.rec.Snapshot().Sub(pre).Phases)
}

// govGrain picks the high-water sampling grain for a budgeted run: 64
// samples across the budget, but no finer than 32 KiB.
func govGrain(budget int64) int64 {
	g := budget / 64
	if g < 32<<10 {
		g = 32 << 10
	}
	return g
}
