package main

import (
	"cacheagg/internal/bench"
	"cacheagg/internal/cachesim"
	"cacheagg/internal/emm"
)

// fig1 reproduces Figure 1: the number of cache line transfers of the four
// textbook algorithms as a function of K, from the closed-form external-
// memory model (exact paper parameters N=2^32, M=2^16, B=16), and — with
// -sim — the empirical counterpart measured on the cache simulator at
// reduced scale.
func fig1(sc scale) []*bench.Table {
	p := emm.FigureParams()
	model := bench.NewTable(
		"Figure 1 — cache line transfers (model, N=2^32, M=2^16, B=16)",
		"K", "SortAggStatic", "SortAgg", "SortAggOpt", "HashAgg", "HashAggOpt")
	for _, row := range emm.Figure1(p) {
		model.AddRow(bench.FormatCount(row.K), row.SortAggStatic, row.SortAgg,
			row.SortAggOpt, row.HashAgg, row.HashAggOpt)
	}
	tables := []*bench.Table{model}

	if sc.sim {
		// Empirical validation: the same algorithms executed against a
		// fully-associative LRU cache simulator (M = 2^12 words, B = 16),
		// N scaled down so the sweep completes quickly.
		const simN = 1 << 15
		const cacheWords = 1 << 12
		const lineWords = 16
		simTab := bench.NewTable(
			"Figure 1 (empirical) — transfers on the cache simulator (N=2^15, M=2^12 words, B=16)",
			"K", "SortAggNaive", "SortAggOpt", "HashAggNaive", "HashAggOpt", "Framework(Adaptive)")
		for kExp := 2; kExp <= 14; kExp += 2 {
			k := uint64(1) << uint(kExp)
			run := func(f func(*cachesim.Machine, cachesim.Array) cachesim.Stats) int64 {
				m := cachesim.NewMachine(cacheWords, lineWords)
				in := cachesim.UniformKeys(m, simN, k, 42)
				return f(m, in).Transfers
			}
			sortNaive := run(func(m *cachesim.Machine, in cachesim.Array) cachesim.Stats {
				return cachesim.SortAggNaive(m, in, 16)
			})
			sortOpt := run(func(m *cachesim.Machine, in cachesim.Array) cachesim.Stats {
				return cachesim.SortAggOpt(m, in, 16)
			})
			hashNaive := run(cachesim.HashAggNaive)
			hashOpt := run(cachesim.HashAggOpt)
			fw := run(func(m *cachesim.Machine, in cachesim.Array) cachesim.Stats {
				return cachesim.FrameworkAgg(m, in, cachesim.FrameworkConfig{})
			})
			simTab.AddRow(bench.FormatCount(int64(k)), sortNaive, sortOpt, hashNaive, hashOpt, fw)
		}
		tables = append(tables, simTab)
	}
	return tables
}
