package cacheagg

// Out-of-core aggregation: the disk level of the external memory model.
// See internal/external for the algorithm (chunked in-memory
// pre-aggregation → hash-partitioned spill files → recursive merge) and
// docs/ROBUSTNESS.md for the failure model and the spill-file format.

import (
	"context"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/external"
)

// ExternalOptions tunes an out-of-core aggregation.
type ExternalOptions struct {
	// MemoryBudgetRows caps the rows held in memory at a time; inputs
	// larger than this are processed in chunks with spilling. 0 selects
	// 1Mi rows (or a budget-derived count when MemoryBudgetBytes is set).
	MemoryBudgetRows int
	// MemoryBudgetBytes caps the total bytes of in-memory state, enforced
	// by a byte-accurate governor. It sizes workers, caches and chunks;
	// level-0 partitions stay resident in memory as long as they fit and
	// are evicted to disk largest-first under pressure, and a chunk whose
	// in-memory pre-aggregation overruns the budget is retried with a
	// smaller chunk size. 0 means rows-only budgeting. Negative values
	// are rejected up front.
	MemoryBudgetBytes int64
	// TempDir hosts the spill files ("" = system temp directory). Files
	// are removed when the call returns, on success and on every error
	// path.
	TempDir string
	// MaxSpillBytes caps the total bytes written to spill files over the
	// whole run (including re-partitioning passes). When the cap would be
	// exceeded, the aggregation fails fast with a descriptive error
	// instead of filling the disk. 0 means no cap.
	MaxSpillBytes int64
	// MergeWorkers sets the parallelism of the disk merge phase: spill
	// partitions are merged as independent tasks on a work-stealing pool,
	// with partition reads prefetched ahead of the merge inside the memory
	// budget. 0 selects GOMAXPROCS. The output is identical — including
	// its order — for every worker count. Negative values are rejected.
	MergeWorkers int
}

// ExternalStats describes the spill behaviour of an out-of-core run.
type ExternalStats struct {
	// Chunks is the number of input chunks pre-aggregated in memory.
	Chunks int
	// SpilledRows and SpilledBytes count the partial-group records that
	// went through disk.
	SpilledRows  int64
	SpilledBytes int64
	// MergeLevels is the deepest disk-level partitioning recursion.
	MergeLevels int
	// CleanupFailures counts spill files whose individual removal failed
	// (the temp directory is still deleted recursively afterwards).
	CleanupFailures int
	// SpillRetries counts transient spill-I/O faults absorbed by the
	// retry layer.
	SpillRetries int64
	// PeakReservedBytes is the memory governor's high-water mark (0 when
	// no byte budget was set).
	PeakReservedBytes int64
	// ResidentPartitions counts level-0 partitions merged straight from
	// memory without touching disk (hybrid mode under MemoryBudgetBytes).
	ResidentPartitions int
	// EvictedPartitions counts resident partitions pushed to disk because
	// the byte budget demanded it (largest first).
	EvictedPartitions int
	// ChunkRetries counts input ranges re-aggregated with a smaller chunk
	// size after the in-memory leaf overran the byte budget.
	ChunkRetries int
	// PrefetchedPartitions counts partition files whose read was overlapped
	// with merge compute by the prefetch window.
	PrefetchedPartitions int
}

// ExternalResult is the result of AggregateExternal.
type ExternalResult struct {
	// Groups holds the distinct grouping keys.
	Groups []uint64
	// Aggs holds one output column per requested aggregate (AVG rows are
	// truncated integer quotients).
	Aggs [][]int64
	// Stats describes the spill behaviour.
	Stats ExternalStats
}

// Len returns the number of groups.
func (r *ExternalResult) Len() int { return len(r.Groups) }

// AggregateExternal executes the GROUP BY with bounded memory, spilling
// partial aggregates to disk when the input exceeds the budget. The
// in-memory operator (configured by opt) serves as the in-RAM leaf, so all
// of its adaptivity applies within each chunk.
//
// Spill files are checksummed: a truncated or bit-flipped file is detected
// and reported as a "corrupt spill file" error rather than silently
// mis-aggregated.
func AggregateExternal(in Input, opt Options, ext ExternalOptions) (*ExternalResult, error) {
	return AggregateExternalContext(context.Background(), in, opt, ext)
}

// AggregateExternalContext is AggregateExternal with cancellation: the
// context is observed between chunks, inside each chunk's in-memory
// aggregation, and at every step of the disk merge recursion. On
// cancellation — as on any other failure — all spill files are closed and
// removed before the call returns.
func AggregateExternalContext(ctx context.Context, in Input, opt Options, ext ExternalOptions) (*ExternalResult, error) {
	specs := make([]agg.Spec, len(in.Aggregates))
	for i, a := range in.Aggregates {
		if a.Func < Count || a.Func > Avg {
			return nil, errInvalidFunc(int(a.Func))
		}
		specs[i] = agg.Spec{Kind: a.Func.kind(), Col: a.Col}
	}
	cfg := external.Config{
		MemoryBudgetRows:  ext.MemoryBudgetRows,
		MemoryBudgetBytes: ext.MemoryBudgetBytes,
		TempDir:           ext.TempDir,
		MaxSpillBytes:     ext.MaxSpillBytes,
		MergeWorkers:      ext.MergeWorkers,
		Core: core.Config{
			Strategy:   opt.Strategy.inner,
			Workers:    opt.Workers,
			CacheBytes: opt.CacheBytes,
		},
	}
	if t := opt.Tracer; t != nil {
		// The external layer hands its tracer down to the in-memory
		// leaves and installs the governor high-water hook itself.
		cfg.Tracer = t.rec
	}
	res, err := external.AggregateContext(ctx, cfg, &core.Input{
		Keys:    in.GroupBy,
		AggCols: in.Columns,
		Specs:   specs,
	})
	if err != nil {
		return nil, err
	}
	return &ExternalResult{
		Groups: res.Keys,
		Aggs:   res.Aggs,
		Stats: ExternalStats{
			Chunks:               res.Stats.Chunks,
			SpilledRows:          res.Stats.SpilledRows,
			SpilledBytes:         res.Stats.SpilledBytes,
			MergeLevels:          res.Stats.MergeLevels,
			CleanupFailures:      res.Stats.CleanupFailures,
			SpillRetries:         res.Stats.SpillRetries,
			PeakReservedBytes:    res.Stats.PeakReservedBytes,
			ResidentPartitions:   res.Stats.ResidentPartitions,
			EvictedPartitions:    res.Stats.EvictedPartitions,
			ChunkRetries:         res.Stats.ChunkRetries,
			PrefetchedPartitions: res.Stats.PrefetchedPartitions,
		},
	}, nil
}
