package hashtable

// Differential tests of the batched insert path against the scalar path.
// The scalar inserts (InsertRawCols / InsertStateCols) are the reference
// oracle: the batched path must produce bit-identical tables — same slots,
// same states, same rowsIn/rows accounting, and therefore byte-identical
// SplitRuns output — for every aggregate kind, input distribution, and
// batch-size pattern (including the degenerate sizes 0, 1, width-1, width).

import (
	"fmt"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/runs"
	"cacheagg/internal/xrand"
)

// diffLayouts are the aggregate layouts the differential tests sweep: every
// kind alone (Count = SrcOne, Avg = two words) plus a wide multi-aggregate.
func diffLayouts() map[string]*agg.Layout {
	return map[string]*agg.Layout{
		"distinct": agg.NewLayout(nil),
		"count":    agg.NewLayout([]agg.Spec{{Kind: agg.Count, Col: 0}}),
		"sum":      agg.NewLayout([]agg.Spec{{Kind: agg.Sum, Col: 0}}),
		"min":      agg.NewLayout([]agg.Spec{{Kind: agg.Min, Col: 0}}),
		"max":      agg.NewLayout([]agg.Spec{{Kind: agg.Max, Col: 0}}),
		"avg":      agg.NewLayout([]agg.Spec{{Kind: agg.Avg, Col: 0}}),
		"multi": agg.NewLayout([]agg.Spec{
			{Kind: agg.Count, Col: 0}, {Kind: agg.Sum, Col: 1},
			{Kind: agg.Min, Col: 0}, {Kind: agg.Max, Col: 1},
			{Kind: agg.Avg, Col: 0},
		}),
	}
}

func diffTable(words int) *Table {
	return New(Config{CapacityRows: 4096, Blocks: 256, Words: words})
}

// drainScalarRaw inserts every row one at a time, collecting the runs of
// every split forced by the fill limit, and finally the runs of the
// remaining rows.
func drainScalarRaw(tb *Table, keys []uint64, cols [][]int64, ops []agg.WordOp) [][]*runs.Run {
	var splits [][]*runs.Run
	for i := 0; i < len(keys); {
		h := hashfn.Murmur2(keys[i])
		if !tb.InsertRawCols(h, keys[i], cols, i, ops) {
			splits = append(splits, tb.SplitRuns())
			continue
		}
		i++
	}
	splits = append(splits, tb.SplitRuns())
	return splits
}

// drainBatchedRaw inserts the same rows through the batch path, cycling
// through the given batch sizes (0 entries exercise the empty batch and are
// skipped for progress).
func drainBatchedRaw(tb *Table, keys []uint64, cols [][]int64, kern *agg.Kernels, sizes []int) [][]*runs.Run {
	var splits [][]*runs.Run
	hs := make([]uint64, len(keys)+1)
	si := 0
	for i := 0; i < len(keys); {
		blk := sizes[si%len(sizes)]
		si++
		if blk > len(keys)-i {
			blk = len(keys) - i
		}
		hashfn.HashBatch(keys[i:i+blk], hs[:blk])
		done := 0
		for done < blk {
			n := tb.InsertRawBatch(hs[done:blk], keys[i+done:i+blk], cols, i+done, kern)
			done += n
			if done < blk {
				splits = append(splits, tb.SplitRuns())
			}
		}
		i += blk
		if blk == 0 {
			// Empty batch must be a no-op; make progress via a one-row batch.
			hashfn.HashBatch(keys[i:i+1], hs[:1])
			if tb.InsertRawBatch(hs[:1], keys[i:i+1], cols, i, kern) != 1 {
				splits = append(splits, tb.SplitRuns())
			} else {
				i++
			}
		}
	}
	splits = append(splits, tb.SplitRuns())
	return splits
}

func requireEqualRuns(t *testing.T, want, got [][]*runs.Run) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("split count: scalar %d, batched %d", len(want), len(got))
	}
	for s := range want {
		if len(want[s]) != len(got[s]) {
			t.Fatalf("split %d: block count %d vs %d", s, len(want[s]), len(got[s]))
		}
		for b := range want[s] {
			w, g := want[s][b], got[s][b]
			if (w == nil) != (g == nil) {
				t.Fatalf("split %d block %d: nil mismatch (scalar %v, batched %v)", s, b, w != nil, g != nil)
			}
			if w == nil {
				continue
			}
			if w.Len() != g.Len() {
				t.Fatalf("split %d block %d: %d rows vs %d", s, b, w.Len(), g.Len())
			}
			for i := 0; i < w.Len(); i++ {
				if w.Keys[i] != g.Keys[i] {
					t.Fatalf("split %d block %d row %d: key %d vs %d", s, b, i, w.Keys[i], g.Keys[i])
				}
			}
			if (w.Hashes == nil) != (g.Hashes == nil) {
				t.Fatalf("split %d block %d: hash column presence differs", s, b)
			}
			for i := range w.Hashes {
				if w.Hashes[i] != g.Hashes[i] {
					t.Fatalf("split %d block %d row %d: hash mismatch", s, b, i)
				}
			}
			if len(w.States) != len(g.States) {
				t.Fatalf("split %d block %d: %d state words vs %d", s, b, len(w.States), len(g.States))
			}
			for wd := range w.States {
				for i := range w.States[wd] {
					if w.States[wd][i] != g.States[wd][i] {
						t.Fatalf("split %d block %d word %d row %d: state %#x vs %#x",
							s, b, wd, i, w.States[wd][i], g.States[wd][i])
					}
				}
			}
		}
	}
}

// batchSizePatterns are the batch-size schedules the differential tests
// cycle through; the boundary sizes 0, 1, pipelineWidth-1 and pipelineWidth
// exercise the pipelined claim loop's group-edge handling.
var batchSizePatterns = [][]int{
	{1},
	{pipelineWidth - 1},
	{pipelineWidth},
	{0, 1, pipelineWidth - 1, pipelineWidth},
	{3, 17, 256, pipelineWidth + 1},
	{4096},
}

func TestBatchedInsertRawEquivalence(t *testing.T) {
	const n = 6000
	for name, lay := range diffLayouts() {
		for _, dist := range datagen.Dists() {
			t.Run(fmt.Sprintf("%s/%s", name, dist), func(t *testing.T) {
				// K = 2500 exceeds the 1024-row fill limit, so every
				// drain hits the table-full short-count path repeatedly.
				keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: 2500, Seed: 11})
				rng := xrand.NewXoshiro256(99)
				cols := [][]int64{make([]int64, n), make([]int64, n)}
				for i := 0; i < n; i++ {
					cols[0][i] = int64(rng.Next()) >> 32
					cols[1][i] = -int64(rng.Next() % 5000)
				}
				ops, kern := lay.WordOps(), lay.Kernels()
				ref := diffTable(lay.Words)
				wantRuns := drainScalarRaw(ref, keys, cols, ops)
				for _, sizes := range batchSizePatterns {
					tb := diffTable(lay.Words)
					gotRuns := drainBatchedRaw(tb, keys, cols, kern, sizes)
					requireEqualRuns(t, wantRuns, gotRuns)
				}
			})
		}
	}
}

// TestBatchedInsertStateEquivalence checks the state-merge batch path (the
// run-absorption side of the engine) against InsertStateCols.
func TestBatchedInsertStateEquivalence(t *testing.T) {
	const n = 5000
	for name, lay := range diffLayouts() {
		if lay.Words == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			keys := datagen.Generate(datagen.Spec{Dist: datagen.Zipf, N: n, K: 2600, Seed: 5})
			rng := xrand.NewXoshiro256(42)
			states := make([][]uint64, lay.Words)
			for w := range states {
				states[w] = make([]uint64, n)
				for i := range states[w] {
					states[w][i] = rng.Next()
				}
			}
			ops, kern := lay.WordOps(), lay.Kernels()

			ref := diffTable(lay.Words)
			var wantRuns [][]*runs.Run
			for i := 0; i < n; {
				h := hashfn.Murmur2(keys[i])
				if !ref.InsertStateCols(h, keys[i], states, i, ops) {
					wantRuns = append(wantRuns, ref.SplitRuns())
					continue
				}
				i++
			}
			wantRuns = append(wantRuns, ref.SplitRuns())

			for _, sizes := range batchSizePatterns {
				tb := diffTable(lay.Words)
				hs := make([]uint64, n)
				var gotRuns [][]*runs.Run
				si := 0
				for i := 0; i < n; {
					blk := sizes[si%len(sizes)]
					si++
					if blk == 0 || blk > n-i {
						if blk = n - i; blk > 64 {
							blk = 64
						}
					}
					hashfn.HashBatch(keys[i:i+blk], hs[:blk])
					done := 0
					for done < blk {
						m := tb.InsertStateBatch(hs[done:blk], keys[i+done:i+blk], states, i+done, kern)
						done += m
						if done < blk {
							gotRuns = append(gotRuns, tb.SplitRuns())
						}
					}
					i += blk
				}
				gotRuns = append(gotRuns, tb.SplitRuns())
				requireEqualRuns(t, wantRuns, gotRuns)
			}
		})
	}
}

// TestEmitColumnsMatchesEmit checks the batched output gather against the
// row-at-a-time Emit callback order.
func TestEmitColumnsMatchesEmit(t *testing.T) {
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Sum, Col: 0}, {Kind: agg.Avg, Col: 0}})
	kern := lay.Kernels()
	const n = 3000
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: n, K: 500, Seed: 3})
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i) - 1500
	}
	tb := diffTable(lay.Words)
	hs := make([]uint64, n)
	hashfn.HashBatch(keys, hs)
	for lo := 0; lo < n; {
		m := tb.InsertRawBatch(hs[lo:], keys[lo:], [][]int64{vals}, lo, kern)
		lo += m
		if m == 0 {
			t.Fatal("table filled; test wants a no-split table")
		}
	}

	var wantH, wantK []uint64
	var wantS [][]uint64
	tb.Emit(func(h, k uint64, st []uint64) {
		wantH = append(wantH, h)
		wantK = append(wantK, k)
		row := make([]uint64, len(st))
		copy(row, st)
		wantS = append(wantS, row)
	})

	gotH := make([]uint64, tb.Len())
	gotK := make([]uint64, tb.Len())
	gotS := [][]uint64{make([]uint64, tb.Len()), make([]uint64, tb.Len()), make([]uint64, tb.Len())}
	tb.EmitColumns(gotH, gotK, gotS)

	if len(wantK) != tb.Len() {
		t.Fatalf("emit visited %d rows, Len() = %d", len(wantK), tb.Len())
	}
	for i := range wantK {
		if gotH[i] != wantH[i] || gotK[i] != wantK[i] {
			t.Fatalf("row %d: hash/key mismatch", i)
		}
		for w := range wantS[i] {
			if gotS[w][i] != wantS[i][w] {
				t.Fatalf("row %d word %d: state mismatch", i, w)
			}
		}
	}
}

// TestBatchedIntakeAllocFree pins the steady-state morsel loop — morsel-wide
// hashing plus batch insert into a warm, non-splitting table — as
// allocation-free (the batch scratch is claimed on first use and reused).
func TestBatchedIntakeAllocFree(t *testing.T) {
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Sum, Col: 0}})
	kern := lay.Kernels()
	const n = 4096
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: n, K: 300, Seed: 1})
	vals := make([]int64, n)
	cols := [][]int64{vals}
	hs := make([]uint64, n)
	tb := diffTable(lay.Words)
	// Warm up: first insert grows the slot scratch.
	hashfn.HashBatch(keys, hs)
	if m := tb.InsertRawBatch(hs, keys, cols, 0, kern); m != n {
		t.Fatalf("warm-up insert absorbed %d of %d rows", m, n)
	}
	avg := testing.AllocsPerRun(10, func() {
		hashfn.HashBatch(keys, hs)
		if m := tb.InsertRawBatch(hs, keys, cols, 0, kern); m != n {
			t.Fatalf("insert absorbed %d of %d rows", m, n)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state morsel loop allocates %.1f objects per batch, want 0", avg)
	}
}

// FuzzBatchedInsertEquivalence drives the raw batch path with fuzz-chosen
// distribution, key domain, and batch schedule, and requires byte-identical
// split output against the scalar oracle.
func FuzzBatchedInsertEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(100), uint8(1), uint8(5))
	f.Add(uint64(2), uint8(3), uint16(2000), uint8(7), uint8(0))
	f.Add(uint64(3), uint8(6), uint16(1), uint8(8), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint64, distSel uint8, k uint16, s1, s2 uint8) {
		dists := datagen.Dists()
		dist := dists[int(distSel)%len(dists)]
		n := 3000
		keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: uint64(k) + 1, Seed: seed})
		rng := xrand.NewXoshiro256(seed ^ 0xabcdef)
		cols := [][]int64{make([]int64, n), make([]int64, n)}
		for i := range cols[0] {
			cols[0][i] = int64(rng.Next()) >> 40
			cols[1][i] = int64(rng.Next()) >> 50
		}
		lays := diffLayouts()
		names := []string{"distinct", "count", "sum", "min", "max", "avg", "multi"}
		lay := lays[names[int(seed)%len(names)]]
		sizes := []int{int(s1), int(s2)}
		if sizes[0] == 0 && sizes[1] == 0 {
			sizes = []int{1}
		}
		ref := diffTable(lay.Words)
		want := drainScalarRaw(ref, keys, cols, lay.WordOps())
		tb := diffTable(lay.Words)
		got := drainBatchedRaw(tb, keys, cols, lay.Kernels(), sizes)
		requireEqualRuns(t, want, got)
	})
}
