package serve

// Fuzz target for the JSONL request decoder — the service's first line of
// defense. Arbitrary bytes must either decode into a request that honors
// every configured limit, or fail with a typed 4xx serve error. Never a
// panic, never an untyped error, never a 5xx from parsing.

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func FuzzServeRequest(f *testing.F) {
	// Valid shapes.
	f.Add(`{"dataset":"events"}`)
	f.Add(`{"dataset":"events","aggregates":[{"func":"count"},{"func":"avg","col":1}]}`)
	f.Add(`{"keys":[1,2,3],"columns":[[4,5,6]],"aggregates":[{"func":"sum","col":0}]}`)
	f.Add(`{"dataset":"d","priority":"high","deadline_ms":1500,"no_cache":true}`)
	// Hostile shapes: malformed, unknown fields, trailing data, wrong
	// types, boundary abuse.
	f.Add(`{"dataset":`)
	f.Add(`{"dataset":"events","bogus":1}`)
	f.Add(`{"dataset":"events"} garbage`)
	f.Add(`{"dataset":"events","keys":[1]}`)
	f.Add(`{"keys":[1,2],"columns":[[1]]}`)
	f.Add(`{"deadline_ms":-5,"dataset":"d"}`)
	f.Add(`{"priority":"urgent","dataset":"d"}`)
	f.Add(`{"aggregates":[{"func":"median"}],"dataset":"d"}`)
	f.Add(`{"keys":[` + strings.Repeat("1,", 99) + `1]}`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add(`""`)
	f.Add("\x00\xff\xfe")

	lim := Limits{MaxBodyBytes: 4096, MaxInlineRows: 64, MaxAggregates: 4}
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeRequest(bytes.NewReader([]byte(body)), lim)
		if err != nil {
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			if serr.Status < 400 || serr.Status > 499 {
				t.Fatalf("decode error %q has status %d, want 4xx", serr.Code, serr.Status)
			}
			return
		}
		// Accepted: every documented invariant must hold.
		if (req.Dataset == "") == (req.Keys == nil) {
			t.Fatalf("accepted request with dataset=%q and keys=%v", req.Dataset, req.Keys)
		}
		if len(req.Keys) > lim.MaxInlineRows {
			t.Fatalf("accepted %d inline rows, limit %d", len(req.Keys), lim.MaxInlineRows)
		}
		if len(req.Aggregates) > lim.MaxAggregates {
			t.Fatalf("accepted %d aggregates, limit %d", len(req.Aggregates), lim.MaxAggregates)
		}
		for _, col := range req.Columns {
			if len(col) != len(req.Keys) {
				t.Fatalf("accepted ragged column: %d values for %d keys", len(col), len(req.Keys))
			}
		}
		for _, a := range req.Aggregates {
			if _, err := parseFunc(a.Func); err != nil {
				t.Fatalf("accepted unknown func %q", a.Func)
			}
		}
		if _, err := parsePriority(req.Priority); err != nil {
			t.Fatalf("accepted unknown priority %q", req.Priority)
		}
		if req.DeadlineMillis < 0 {
			t.Fatalf("accepted negative deadline %d", req.DeadlineMillis)
		}
		// And the derived views must not panic either.
		if got := len(req.aggSpecs()); got != len(req.Aggregates) {
			t.Fatalf("aggSpecs dropped specs: %d of %d", got, len(req.Aggregates))
		}
		req.priority()
	})
}
