// Package cacheagg is a cache-efficient relational GROUP BY / aggregation
// library, implementing Müller, Sanders, Lacurie, Lehner and Färber:
// "Cache-Efficient Aggregation: Hashing Is Sorting" (SIGMOD 2015).
//
// The operator treats hashing and sorting as the same algorithm: both
// recursively partition the input by digits of the grouping key's hash
// until every partition's groups fit in cache. Two interchangeable routines
// process runs — HASHING (build a cache-sized hash table, split it into
// per-digit runs; enables early aggregation) and PARTITIONING (radix
// scatter; ~faster when early aggregation cannot reduce the data) — and
// the default ADAPTIVE strategy switches between them at run granularity
// based on the observed reduction factor α, with no optimizer estimate of
// the output cardinality needed.
//
// Quick start:
//
//	res, err := cacheagg.Aggregate(cacheagg.Input{
//		GroupBy: storeIDs,
//		Columns: [][]int64{revenue},
//		Aggregates: []cacheagg.AggSpec{
//			{Func: cacheagg.Count},
//			{Func: cacheagg.Sum, Col: 0},
//		},
//	}, cacheagg.Options{})
//
// The result holds one row per distinct group, ordered by hash value —
// "a hash table built with a sorting algorithm".
package cacheagg

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/external"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/trace"
)

// Func identifies an aggregate function.
type Func int

// Supported aggregate functions. All are distributive or algebraic
// (constant-size state); holistic aggregates like MEDIAN are out of scope,
// as in the paper.
const (
	// Count counts the rows of each group; it reads no input column.
	Count Func = iota
	// Sum computes the signed 64-bit sum (wrapping).
	Sum
	// Min computes the signed minimum.
	Min
	// Max computes the signed maximum.
	Max
	// Avg computes the arithmetic mean. Integer results are truncated;
	// use Result.Float to read exact averages.
	Avg
)

// String returns the SQL name of the function.
func (f Func) String() string { return f.kind().String() }

func (f Func) kind() agg.Kind {
	switch f {
	case Count:
		return agg.Count
	case Sum:
		return agg.Sum
	case Min:
		return agg.Min
	case Max:
		return agg.Max
	case Avg:
		return agg.Avg
	default:
		return agg.Kind(int(f)) // invalid; caught by Validate
	}
}

// AggSpec describes one aggregate output column: the function and the
// index of the input column it consumes (ignored for Count).
type AggSpec struct {
	Func Func
	Col  int
}

// Input is a column-store aggregation request: group the rows of GroupBy
// and evaluate every Aggregate over its input column.
type Input struct {
	// GroupBy is the grouping key column.
	GroupBy []uint64
	// Columns are the aggregate input columns (64-bit signed integers,
	// matching the paper's all-64-bit-integer datasets).
	Columns [][]int64
	// Aggregates lists the aggregate output columns to compute. Empty
	// computes the plain distinct groups (a DISTINCT query).
	Aggregates []AggSpec
}

// Strategy selects the routine-choice policy of the operator.
type Strategy struct {
	inner core.Strategy
}

// Name returns the strategy's display name.
func (s Strategy) Name() string {
	if s.inner == nil {
		return core.DefaultAdaptive().Name()
	}
	return s.inner.Name()
}

// AdaptiveStrategy returns the paper's ADAPTIVE strategy (Section 5) with
// the default constants α₀ = 11 and c = 10. It is the library default.
func AdaptiveStrategy() Strategy { return Strategy{core.DefaultAdaptive()} }

// AdaptiveStrategyTuned returns ADAPTIVE with explicit constants: the
// switching threshold alpha0 (hashing continues while the observed
// reduction factor stays above it) and the amortization constant c
// (partitioning runs for c·cacheRows rows before hashing is probed again).
// Non-positive values select the defaults.
func AdaptiveStrategyTuned(alpha0 float64, c int) Strategy {
	return Strategy{core.Adaptive(alpha0, c)}
}

// HashingOnlyStrategy always uses the HASHING routine (Figure 4(a)).
func HashingOnlyStrategy() Strategy { return Strategy{core.HashingOnly()} }

// PartitionAlwaysStrategy partitions for the first `passes` levels and
// finishes with one hashing pass whose tables may exceed the cache
// (Figure 4(b,c)). passes must be ≥ 1.
func PartitionAlwaysStrategy(passes int) Strategy { return Strategy{core.PartitionAlways(passes)} }

// PartitionOnlyStrategy always partitions; leaves are finalized by the
// framework's in-cache hashing pass (Appendix A.1).
func PartitionOnlyStrategy() Strategy { return Strategy{core.PartitionOnly()} }

// Routine selects which of the three execution routines runs the query.
// The default, RoutineAuto, decides from the sketch plan's estimates (and
// is the only mode that can demote mid-run); the explicit values force a
// routine for benchmarking and testing.
type Routine int

const (
	// RoutineAuto picks the routine from the plan's K̂/α̂ estimates; the
	// partitioned routine when no trustworthy plan exists. Auto-selected
	// global runs demote to partitioned mid-run when the observed
	// reduction factor undershoots.
	RoutineAuto Routine = iota
	// RoutinePartitioned forces the paper's per-worker tables with
	// radix-256 recursion.
	RoutinePartitioned
	// RoutineGlobal forces the lock-free shared global hash table for
	// intake (arXiv:2505.04153's regime: many cores, high reduction).
	RoutineGlobal
	// RoutineSortSpill forces the sort-based out-of-core path, the same
	// executor a memory-budget degradation uses.
	RoutineSortSpill
)

// String returns the routine's display name.
func (r Routine) String() string { return core.Routine(r).String() }

// Options tunes an execution. The zero value is a sensible default:
// adaptive strategy, GOMAXPROCS workers, 4 MiB cache budget.
type Options struct {
	// Strategy selects the routine-choice policy; zero value = adaptive.
	Strategy Strategy
	// Workers is the thread count; 0 = GOMAXPROCS.
	Workers int
	// CacheBytes is the per-worker cache budget sizing the hash tables;
	// 0 = 4 MiB. Set this to your CPU's per-core L3 share for best
	// fidelity to the paper's tuning.
	CacheBytes int
	// MemoryBudgetBytes caps the total bytes of intermediate state the
	// aggregation may hold in memory (0 = unlimited). The budget is
	// enforced by a byte-accurate governor: when the working set of the
	// in-memory operator would exceed it, the call transparently degrades
	// to the out-of-core path — partial aggregates spill to the system
	// temp directory and are merged with bounded memory — instead of
	// growing without bound. The result is identical either way; whether
	// degradation happened is reported in Stats.DegradedToExternal.
	// Budgets too small for even one worker's fixed machinery (hash
	// table, scratch, write-combining buffers — roughly a few MiB) fail
	// with an error that wraps ErrMemoryBudget.
	MemoryBudgetBytes int64
	// EnablePlan runs a sketch-guided planning pass before execution: a
	// bounded prefix of the input feeds HyperLogLog and Count-Min sketches
	// whose estimates pick the initial routine, pre-size the worker hash
	// tables, and nominate heavy-hitter keys for a scalar bypass that
	// skips the hash path entirely. Results are bit-identical with
	// planning on or off; the plan only changes how fast they are
	// produced. See docs/PERFORMANCE.md.
	EnablePlan bool
	// CollectStats enables execution statistics on the result.
	CollectStats bool
	// Tracer, when non-nil, records execution events (strategy switches,
	// table splits, spill and merge traffic, memory high-water samples)
	// and populates Result.Phases. The nil default costs one branch per
	// block of rows on the hot path — see docs/OBSERVABILITY.md.
	Tracer *Tracer
	// Routine overrides the three-way execution-routine selection; the
	// zero value selects automatically. See Routine.
	Routine Routine
	// Interner, when non-nil, is the shared key dictionary AggregateGeneral
	// encodes through, so dense ids stay comparable across calls (and the
	// dictionary builds once, not per query). Nil gives each general-key
	// call a private dictionary. Ignored by uint64-keyed Aggregate.
	Interner *Interner
}

// ErrMemoryBudget is wrapped by errors reporting that MemoryBudgetBytes is
// too small to run at all (smaller than one worker's fixed machinery, or
// exhausted even by the out-of-core path's minimum chunk size). Budgets
// that are merely smaller than the working set do not produce it — they
// degrade to spilling and succeed.
var ErrMemoryBudget = core.ErrMemoryBudget

// Stats describes what an execution did. See the fields of the same names
// in the paper's figures: Passes and LevelNanos back the pass-breakdown
// plots, HashedRows/PartitionedRows and Switches show the adaptive
// behaviour.
type Stats struct {
	// Passes is the number of recursion levels that processed rows.
	Passes int
	// LevelNanos is total worker time per level (index = level).
	LevelNanos []int64
	// LevelRows is rows processed per level.
	LevelRows []int64
	// HashedRows is the number of rows routed through the HASHING routine.
	HashedRows int64
	// PartitionedRows is the number routed through PARTITIONING.
	PartitionedRows int64
	// TablesEmitted is the number of hash tables that filled and split.
	TablesEmitted int64
	// MeanAlpha is the mean reduction factor of emitted tables.
	MeanAlpha float64
	// Switches counts strategy mode changes.
	Switches int64
	// DirectEmits counts buckets finalized by one fused hashing pass.
	DirectEmits int64

	// Planned reports that Options.EnablePlan built a sketch plan for this
	// run; the Plan* fields below echo its inputs and decisions.
	Planned bool
	// PlanSampleRows is the number of input rows the sketch pass sampled.
	PlanSampleRows int64
	// PlanEstimatedK is the HyperLogLog distinct-group estimate.
	PlanEstimatedK float64
	// PlanHotKeys is the size of the heavy-hitter bypass set.
	PlanHotKeys int64
	// PlanHotMass is the sampled row fraction attributed to the bypass set.
	PlanHotMass float64
	// PlanStartPartition reports that intake started in partitioning mode
	// instead of probing hashing first.
	PlanStartPartition bool
	// PlanTableRows is the pre-sized worker-table row capacity (0 when the
	// cache-sized default was kept).
	PlanTableRows int64
	// PlanNanos is the wall time the planning pass took.
	PlanNanos int64
	// HotRowsBypassed counts input rows folded into hot-key scalar
	// accumulators instead of entering the hash/partition machinery.
	HotRowsBypassed int64

	// Routine is the execution routine the run committed to ("partitioned",
	// "global", or "sort-spill"; a demoted global run reports
	// "partitioned" with GlobalDemotions = 1).
	Routine string
	// GlobalRows counts rows folded into the shared global table.
	GlobalRows int64
	// GlobalEscapedRows counts rows the shared table bounced back into
	// private tables (contention bounds, full blocks, refused growth).
	GlobalEscapedRows int64
	// GlobalContention counts contention events observed on the shared
	// table (claim-phase spins plus failed fold CASes).
	GlobalContention int64
	// GlobalDemotions is 1 when an auto-selected global run demoted to
	// the partitioned routine mid-run.
	GlobalDemotions int64
	// GlobalGrows counts stop-the-world growth splits of the shared table.
	GlobalGrows int64

	// The memory-governor fields below are populated whenever
	// Options.MemoryBudgetBytes was set, independent of CollectStats.

	// PeakReservedBytes is the governor's high-water mark: the largest
	// byte footprint the execution registered at any point, spanning the
	// in-memory attempt and (if degraded) the out-of-core run.
	PeakReservedBytes int64
	// DegradedToExternal reports that the in-memory working set exceeded
	// MemoryBudgetBytes and the run completed via the spilling path.
	DegradedToExternal bool
	// SpillRetries counts transient spill-I/O faults absorbed by the
	// retry layer during a degraded run.
	SpillRetries int64

	// The general-key fields below are populated by AggregateGeneral (and
	// its wrappers) independent of CollectStats; uint64-keyed calls leave
	// them zero.

	// InternedKeys is the key dictionary's distinct-key count after the
	// encode phase (cumulative when Options.Interner is shared).
	InternedKeys int64
	// InternBytes is the total encoded size of the dictionary's keys.
	InternBytes int64
	// EncodeNanos is the wall time of the key-interning encode phase.
	EncodeNanos int64
}

// Result is the aggregation output: row r describes one group.
type Result struct {
	// Groups holds the distinct grouping keys, ordered by hash.
	Groups []uint64
	// Aggs holds one output column per requested Aggregate (Avg rows are
	// truncated toward zero; see Float).
	Aggs [][]int64
	// Stats is populated when Options.CollectStats was set.
	Stats Stats
	// Phases is the per-phase time breakdown of this call, populated when
	// Options.Tracer was set. See the Phases type for the wall-time vs
	// summed-worker-time semantics of each field.
	Phases Phases

	specs  []AggSpec
	hashes []uint64
	states *core.Result
}

// Len returns the number of groups.
func (r *Result) Len() int { return len(r.Groups) }

// Float returns aggregate column a of row (group) idx as a float64 — the
// exact value for Avg, the widened integer otherwise.
func (r *Result) Float(a, idx int) float64 {
	return r.states.AggsFloat[a][idx]
}

// Hashes returns the hash digests of the groups (ascending bucket order),
// exposing the "sorted by hash value" structure of the output.
func (r *Result) Hashes() []uint64 { return r.hashes }

// Index builds a map from group key to result row, for point lookups into
// the result. The map is built on demand; for one or two lookups prefer
// scanning Groups directly.
func (r *Result) Index() map[uint64]int {
	idx := make(map[uint64]int, len(r.Groups))
	for i, g := range r.Groups {
		idx[g] = i
	}
	return idx
}

func errInvalidFunc(f int) error {
	return fmt.Errorf("cacheagg: invalid aggregate function %d", f)
}

// Aggregate executes the GROUP BY described by in.
func Aggregate(in Input, opt Options) (*Result, error) {
	return AggregateContext(context.Background(), in, opt)
}

// AggregateContext executes the GROUP BY with cancellation support. The
// cancel signal is threaded through the scheduler: workers observe it at
// morsel and task boundaries, so the call returns ctx.Err() within roughly
// one morsel of work per worker. An already cancelled context returns
// before any work is done. A panic inside the execution (a worker task or
// the orchestration around it) is contained and returned as an error — the
// process survives and all workers exit.
func AggregateContext(ctx context.Context, in Input, opt Options) (*Result, error) {
	specs := make([]agg.Spec, len(in.Aggregates))
	for i, a := range in.Aggregates {
		if a.Func < Count || a.Func > Avg {
			return nil, errInvalidFunc(int(a.Func))
		}
		specs[i] = agg.Spec{Kind: a.Func.kind(), Col: a.Col}
	}
	var gov *memgov.Governor
	if opt.MemoryBudgetBytes < 0 {
		return nil, fmt.Errorf("cacheagg: negative MemoryBudgetBytes %d", opt.MemoryBudgetBytes)
	}
	if opt.MemoryBudgetBytes > 0 {
		gov = memgov.New(opt.MemoryBudgetBytes)
	}
	if opt.Routine < RoutineAuto || opt.Routine > RoutineSortSpill {
		return nil, fmt.Errorf("cacheagg: invalid Routine %d", opt.Routine)
	}
	if opt.Routine == RoutineSortSpill {
		// Forced sort-spill goes straight to the out-of-core executor —
		// the same path a budget degradation takes, minus the wasted
		// in-memory attempt.
		cin := &core.Input{Keys: in.GroupBy, AggCols: in.Columns, Specs: specs}
		if err := cin.Validate(); err != nil {
			return nil, err
		}
		if gov == nil {
			gov = memgov.New(0) // unlimited: pure accounting
		}
		var pre trace.Snapshot
		if t := opt.Tracer; t != nil {
			pre = t.rec.Snapshot()
		}
		res, err := degradeToExternal(ctx, in, opt, cin, gov)
		if err == nil {
			res.Stats.Routine = core.RoutineSortSpill.String()
			if opt.Tracer != nil {
				res.Phases = opt.Tracer.phasesSince(pre)
			}
		}
		return res, err
	}
	cfg := core.Config{
		Strategy:     opt.Strategy.inner,
		Workers:      opt.Workers,
		CacheBytes:   opt.CacheBytes,
		CollectStats: opt.CollectStats,
		EnablePlan:   opt.EnablePlan,
		Governor:     gov,
		Routine:      core.Routine(opt.Routine),
	}
	var pre trace.Snapshot
	if t := opt.Tracer; t != nil {
		pre = t.rec.Snapshot()
		cfg.Tracer = t.rec
		if gov != nil {
			rec := t.rec
			gov.SetHighWaterHook(govGrain(opt.MemoryBudgetBytes), func(hw int64) {
				rec.Emit(trace.KindGovHighWater, 0, 0, -1, float64(hw))
			})
		}
	}
	cin := &core.Input{
		Keys:    in.GroupBy,
		AggCols: in.Columns,
		Specs:   specs,
	}
	cres, err := core.AggregateContext(ctx, cfg, cin)
	if err != nil {
		if gov != nil && errors.Is(err, core.ErrMemoryBudget) {
			res, err := degradeToExternal(ctx, in, opt, cin, gov)
			if err == nil {
				res.Stats.Routine = core.RoutineSortSpill.String()
				if opt.Tracer != nil {
					res.Phases = opt.Tracer.phasesSince(pre)
				}
			}
			return res, err
		}
		return nil, err
	}
	res := &Result{
		Groups: cres.Keys,
		Aggs:   cres.Aggs,
		specs:  in.Aggregates,
		hashes: cres.Hashes,
		states: cres,
	}
	if opt.CollectStats {
		st := cres.Stats
		res.Stats = Stats{
			Passes:          st.Passes,
			LevelNanos:      append([]int64(nil), st.LevelNanos[:st.Passes]...),
			LevelRows:       append([]int64(nil), st.LevelRows[:st.Passes]...),
			HashedRows:      st.HashedRows,
			PartitionedRows: st.PartitionedRows,
			TablesEmitted:   st.TablesEmitted,
			Switches:        st.Switches,
			DirectEmits:     st.DirectEmits,

			Planned:            st.Planned,
			PlanSampleRows:     st.PlanSampleRows,
			PlanEstimatedK:     st.PlanEstimatedK,
			PlanHotKeys:        st.PlanHotKeys,
			PlanHotMass:        st.PlanHotMass,
			PlanStartPartition: st.PlanStartPartition,
			PlanTableRows:      st.PlanTableRows,
			PlanNanos:          st.PlanNanos,
			HotRowsBypassed:    st.HotRowsBypassed,

			Routine:           st.Routine.String(),
			GlobalRows:        st.GlobalRows,
			GlobalEscapedRows: st.GlobalEscapedRows,
			GlobalContention:  st.GlobalContention,
			GlobalDemotions:   st.GlobalDemotions,
			GlobalGrows:       st.GlobalGrows,
		}
		if st.TablesEmitted > 0 {
			res.Stats.MeanAlpha = st.AlphaSum / float64(st.TablesEmitted)
		}
	}
	if gov != nil {
		res.Stats.PeakReservedBytes = gov.HighWater()
	}
	if opt.Tracer != nil {
		res.Phases = opt.Tracer.phasesSince(pre)
	}
	return res, nil
}

// Test hooks: a degraded run's spill I/O goes through testHookExternalFS
// when set, with testHookExternalRetry as the retry policy. Both are zero
// in production; root tests use them to inject spill faults through the
// public API.
var (
	testHookExternalFS    faultfs.FS
	testHookExternalRetry faultfs.RetryPolicy
)

// degradeToExternal re-runs an over-budget aggregation through the
// out-of-core path, sharing the governor so PeakReservedBytes spans the
// whole query, then restores the public contract (hash-ordered rows,
// Hashes, exact Float averages) that the external result lacks.
func degradeToExternal(ctx context.Context, in Input, opt Options, cin *core.Input, gov *memgov.Governor) (*Result, error) {
	ecfg := external.Config{
		MemoryBudgetBytes: opt.MemoryBudgetBytes,
		Governor:          gov,
		Core: core.Config{
			Strategy:   opt.Strategy.inner,
			Workers:    opt.Workers,
			CacheBytes: opt.CacheBytes,
		},
	}
	if opt.Tracer != nil {
		// The external layer adopts the core tracer for its own spill and
		// merge events; the shared governor keeps the high-water hook
		// installed above.
		ecfg.Core.Tracer = opt.Tracer.rec
	}
	if testHookExternalFS != nil {
		ecfg.FS = testHookExternalFS
		ecfg.Retry = testHookExternalRetry
	}
	eres, err := external.AggregateContext(ctx, ecfg, cin)
	if err != nil {
		return nil, err
	}
	// The external merge emits partitions in level-0 digit order, but rows
	// inside a resident or re-partitioned merge are not globally sorted.
	// Re-establish the documented order: ascending by hash value (level-0
	// digits are the most significant hash bits, so this matches the
	// in-memory operator's bucket-order output).
	n := len(eres.Keys)
	hashes := make([]uint64, n)
	ord := make([]int, n)
	for i, k := range eres.Keys {
		hashes[i] = hashfn.Murmur2(k)
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return hashes[ord[a]] < hashes[ord[b]] })
	groups := make([]uint64, n)
	sortedHashes := make([]uint64, n)
	for i, o := range ord {
		groups[i] = eres.Keys[o]
		sortedHashes[i] = hashes[o]
	}
	aggs := make([][]int64, len(eres.Aggs))
	for a, col := range eres.Aggs {
		aggs[a] = make([]int64, n)
		for i, o := range ord {
			aggs[a][i] = col[o]
		}
	}
	aggsF := make([][]float64, len(eres.AggsFloat))
	for a, col := range eres.AggsFloat {
		aggsF[a] = make([]float64, n)
		for i, o := range ord {
			aggsF[a][i] = col[o]
		}
	}
	res := &Result{
		Groups: groups,
		Aggs:   aggs,
		specs:  in.Aggregates,
		hashes: sortedHashes,
		states: &core.Result{Keys: groups, Hashes: sortedHashes, Aggs: aggs, AggsFloat: aggsF},
	}
	res.Stats.DegradedToExternal = true
	res.Stats.PeakReservedBytes = gov.HighWater()
	res.Stats.SpillRetries = eres.Stats.SpillRetries
	return res, nil
}

// Distinct returns the distinct keys of the column, ordered by hash value.
func Distinct(keys []uint64, opt Options) ([]uint64, error) {
	res, err := Aggregate(Input{GroupBy: keys}, opt)
	if err != nil {
		return nil, err
	}
	return res.Groups, nil
}

// GroupCount computes COUNT(*) per distinct key — the most common
// aggregation query, offered as a convenience.
func GroupCount(keys []uint64, opt Options) (groups []uint64, counts []int64, err error) {
	res, err := Aggregate(Input{
		GroupBy:    keys,
		Aggregates: []AggSpec{{Func: Count}},
	}, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Groups, res.Aggs[0], nil
}
