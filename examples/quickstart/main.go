// Quickstart: the smallest useful cacheagg program.
//
// It groups a synthetic orders table by store and computes four aggregates
// per store, using the library's default configuration (adaptive strategy,
// all cores):
//
//	SELECT store, COUNT(*), SUM(revenue), MIN(revenue), AVG(revenue)
//	FROM orders GROUP BY store
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"cacheagg"
)

func main() {
	// A tiny orders table in column layout: parallel slices.
	stores := []uint64{101, 102, 101, 103, 102, 101, 103, 101}
	revenue := []int64{250, 410, 90, 120, 300, 75, 480, 205}

	res, err := cacheagg.Aggregate(cacheagg.Input{
		GroupBy: stores,
		Columns: [][]int64{revenue},
		Aggregates: []cacheagg.AggSpec{
			{Func: cacheagg.Count},
			{Func: cacheagg.Sum, Col: 0},
			{Func: cacheagg.Min, Col: 0},
			{Func: cacheagg.Avg, Col: 0},
		},
	}, cacheagg.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The result arrives ordered by hash ("a hash table built by
	// sorting"); sort by store id for display.
	order := make([]int, res.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.Groups[order[a]] < res.Groups[order[b]] })

	fmt.Println("store  orders     sum     min      avg")
	for _, i := range order {
		fmt.Printf("%5d  %6d  %6d  %6d  %7.2f\n",
			res.Groups[i], res.Aggs[0][i], res.Aggs[1][i], res.Aggs[2][i], res.Float(3, i))
	}
}
