package core

import (
	"fmt"
	"math"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/sketch"
	"cacheagg/internal/trace"
)

// planInput builds a full-width aggregation input over a generated key
// stream: every aggregate kind, values derived from the row index so the
// reference is deterministic.
func planInput(keys []uint64) *Input {
	vals := make([]int64, len(keys))
	for i := range vals {
		vals[i] = int64(i%1000) - 500
	}
	return &Input{
		Keys:    keys,
		AggCols: [][]int64{vals},
		Specs: []agg.Spec{
			{Kind: agg.Count},
			{Kind: agg.Sum, Col: 0},
			{Kind: agg.Min, Col: 0},
			{Kind: agg.Max, Col: 0},
			{Kind: agg.Avg, Col: 0},
		},
	}
}

// requireIdentical pins the planned run's output bit-identical to the
// unplanned run's, keyed by group: same group set, and per group the same
// integer and float aggregate words. (Positional order within a chunk's
// 8-row table blocks reflects insertion order and legitimately differs when
// the bypass reroutes hot keys; the hash-ordered block structure — the
// documented contract — is unchanged and pinned by checkResult's phantom/
// duplicate checks plus the existing ordering tests.)
func requireIdentical(t *testing.T, planned, plain *Result, label string) {
	t.Helper()
	if planned.Groups() != plain.Groups() {
		t.Fatalf("%s: planned %d groups, unplanned %d", label, planned.Groups(), plain.Groups())
	}
	row := make(map[uint64]int, plain.Groups())
	for r := 0; r < plain.Groups(); r++ {
		row[plain.Keys[r]] = r
	}
	for r := 0; r < planned.Groups(); r++ {
		k := planned.Keys[r]
		pr, ok := row[k]
		if !ok {
			t.Fatalf("%s: key %d only in planned result", label, k)
		}
		for a := range plain.Aggs {
			if planned.Aggs[a][r] != plain.Aggs[a][pr] {
				t.Fatalf("%s: key %d agg %d: %d != %d",
					label, k, a, planned.Aggs[a][r], plain.Aggs[a][pr])
			}
			if planned.AggsFloat[a][r] != plain.AggsFloat[a][pr] {
				t.Fatalf("%s: key %d agg %d float: %g != %g",
					label, k, a, planned.AggsFloat[a][r], plain.AggsFloat[a][pr])
			}
		}
	}
}

// TestPlannedDifferential drives the planned path against both the
// map-based oracle and the unplanned operator across every generator
// distribution, strategy, and a worker sweep — the satellite's main
// correctness net. Runs under -race in CI.
func TestPlannedDifferential(t *testing.T) {
	for _, dist := range datagen.Dists() {
		for _, workers := range []int{1, 3} {
			for _, strat := range []Strategy{DefaultAdaptive(), Adaptive(2, 1), HashingOnly(), PartitionOnly()} {
				label := fmt.Sprintf("%s/w%d/%s", dist, workers, strat.Name())
				keys := datagen.Generate(datagen.Spec{
					Dist: dist, N: 1 << 15, K: 1 << 9, Seed: 42,
					Theta: 0.99, HitFraction: 0.4,
				})
				in := planInput(keys)
				cfg := smallCfg(strat)
				cfg.Workers = workers
				plain, err := Aggregate(cfg, in)
				if err != nil {
					t.Fatalf("%s: unplanned: %v", label, err)
				}
				cfg.EnablePlan = true
				cfg.CollectStats = true
				planned, err := Aggregate(cfg, in)
				if err != nil {
					t.Fatalf("%s: planned: %v", label, err)
				}
				requireIdentical(t, planned, plain, label)
				checkResult(t, planned, in)
				if !planned.Stats.Planned {
					t.Errorf("%s: Stats.Planned not set", label)
				}
			}
		}
	}
}

// TestPlanDecisions sanity-checks the planner's calls on the distributions
// it was designed around. These pin behaviour, not exact numbers.
func TestPlanDecisions(t *testing.T) {
	cfg := Config{CacheBytes: 4 << 20}

	// Uniform with small K: sample saturates, table shrinks, no hot keys.
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: 1 << 17, K: 512, Seed: 1})
	p := BuildPlan(cfg, planInput(keys))
	if p == nil {
		t.Fatal("uniform small-K: no plan")
	}
	if math.Abs(p.EstimatedK-512)/512 > 0.10 {
		t.Errorf("uniform small-K: estimate %.0f, want ~512", p.EstimatedK)
	}
	if p.TableRows == 0 {
		t.Error("uniform small-K: table not pre-sized")
	}
	if p.StartPartition {
		t.Error("uniform small-K: wrongly starts partitioning")
	}
	if len(p.HotKeys) != 0 {
		t.Errorf("uniform small-K: %d phantom hot keys", len(p.HotKeys))
	}

	// Heavy hitter: the hot key must be nominated with most of the mass.
	keys = datagen.Generate(datagen.Spec{
		Dist: datagen.HeavyHitter, N: 1 << 17, K: 1 << 14, Seed: 2, HitFraction: 0.5,
	})
	p = BuildPlan(cfg, planInput(keys))
	if p == nil || len(p.HotKeys) == 0 {
		t.Fatal("heavy-hitter: no hot keys nominated")
	}
	if p.HotMass < 0.3 {
		t.Errorf("heavy-hitter: hot mass %.2f, want ≥ 0.3", p.HotMass)
	}

	// Sequential keys, K far beyond any table: partition from the start.
	keys = datagen.Generate(datagen.Spec{Dist: datagen.Sequential, N: 1 << 17, K: 1 << 17, Seed: 3})
	p = BuildPlan(cfg, planInput(keys))
	if p == nil {
		t.Fatal("sequential: no plan")
	}
	if !p.StartPartition {
		t.Errorf("sequential big-K: α̂=%.2f but StartPartition not set", p.PredictedAlpha)
	}
	if p.TableRows != 0 {
		t.Error("sequential big-K: table wrongly pre-sized")
	}

	// Moving cluster: K keeps growing through the sample; the drift guard
	// must block the shrink even though the sampled K̂ looks small.
	keys = datagen.Generate(datagen.Spec{
		Dist: datagen.MovingCluster, N: 1 << 20, K: 1 << 16, Seed: 4, Window: 1 << 10,
	})
	p = BuildPlan(cfg, planInput(keys))
	if p == nil {
		t.Fatal("moving-cluster: no plan")
	}
	if p.TableRows != 0 {
		t.Errorf("moving-cluster: drift guard failed (K̂ %.0f half %.0f, table %d)",
			p.EstimatedK, p.HalfSampleK, p.TableRows)
	}

	// Tiny inputs are not worth planning.
	if p := BuildPlan(cfg, planInput(make([]uint64, 100))); p != nil {
		t.Error("tiny input: got a plan, want nil")
	}
}

// TestAdversarialPlans injects deliberately corrupt plans and pins that
// execution still matches the oracle: every decision is advisory, none can
// corrupt results.
func TestAdversarialPlans(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{
		Dist: datagen.Zipf, N: 1 << 14, K: 1 << 8, Seed: 7, Theta: 1.1,
	})
	in := planInput(keys)

	manyHot := make([]uint64, 100)
	for i := range manyHot {
		manyHot[i] = uint64(i % 40) // beyond maxHotSetKeys, with duplicates
	}
	badHashes := make([]uint64, 100) // all zero: must be ignored, never trusted

	plans := map[string]*Plan{
		"phantom-hot-keys": {
			SampleRows: 1 << 14, EstimatedK: 256,
			HotKeys:   []uint64{1 << 60, 1<<60 + 1, 1<<60 + 2}, // absent from input
			HotHashes: []uint64{0, 0, 0},
			HotMass:   0.9,
		},
		"too-many-hot-keys-bad-hashes": {
			SampleRows: 1 << 14, EstimatedK: 256,
			HotKeys: manyHot, HotHashes: badHashes, HotMass: 1,
		},
		"k-way-too-small": {
			SampleRows: 1 << 14, EstimatedK: 1, HalfSampleK: 1,
			TableRows: 8, // below the blocked floor; must be raised
		},
		"k-way-too-big": {
			SampleRows: 1 << 14, EstimatedK: math.Pow(2, 40),
			TableRows:      1 << 30, // above cache capacity; must be dropped
			StartPartition: true,
		},
		"non-pow2-table": {
			SampleRows: 1 << 14, EstimatedK: 1000, TableRows: 3000,
		},
		"start-partition-on-small-k": {
			SampleRows: 1 << 14, EstimatedK: 16, StartPartition: true,
		},
		"empty-plan": {},
	}

	cfg := smallCfg(DefaultAdaptive())
	cfg.Workers = 3
	plain, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range plans {
		t.Run(name, func(t *testing.T) {
			c := cfg
			c.Plan = p
			c.EnablePlan = true
			res, err := Aggregate(c, in)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, res, plain, name)
			checkResult(t, res, in)
		})
	}
}

// TestAdversarialCMSCollisions feeds the planner pipeline with a sketch
// whose CMS is a single 2-counter row — every key collides with every
// other, so the candidate list is pure noise — and injects the resulting
// nominations as the plan's hot keys. The bypass must absorb the garbage
// (exact-match membership) and produce oracle-identical results.
func TestAdversarialCMSCollisions(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{
		Dist: datagen.HeavyHitter, N: 1 << 14, K: 1 << 10, Seed: 11, HitFraction: 0.3,
	})
	in := planInput(keys)

	sk := sketch.NewSketchParams(4, 1, 1, 16) // 2-counter CMS: total collision
	hs := make([]uint64, len(keys))
	hashfn.HashBatch(keys, hs)
	sk.AddBlock(keys, hs)

	p := &Plan{SampleRows: len(keys), EstimatedK: sk.HLL.Estimate()}
	for _, e := range sk.Top.Items() {
		p.HotKeys = append(p.HotKeys, e.Key)
		p.HotHashes = append(p.HotHashes, e.Hash)
	}
	if len(p.HotKeys) == 0 {
		t.Fatal("colliding CMS nominated nothing — test is vacuous")
	}
	p.HotMass = 1 // nonsense on purpose

	cfg := smallCfg(DefaultAdaptive())
	cfg.Workers = 2
	plain, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Plan = p
	cfg.EnablePlan = true
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, res, plain, "colliding-cms")
	checkResult(t, res, in)
}

// TestPlanTraceReconciles pins the new trace kinds against the stats: one
// plan event per planned run, and the hot-key-bypass row total must equal
// Stats.HotRowsBypassed exactly.
func TestPlanTraceReconciles(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{
		Dist: datagen.HeavyHitter, N: 1 << 16, K: 1 << 12, Seed: 13, HitFraction: 0.5,
	})
	in := planInput(keys)
	rec := trace.NewRecorder(1 << 12)
	cfg := smallCfg(DefaultAdaptive())
	cfg.Workers = 3
	cfg.EnablePlan = true
	cfg.CollectStats = true
	cfg.Tracer = rec
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if got := snap.Counts[trace.KindPlan]; got != 1 {
		t.Errorf("plan events: %d, want 1", got)
	}
	if res.Stats.HotRowsBypassed == 0 {
		t.Fatal("heavy-hitter run bypassed no rows — bypass not engaging")
	}
	if got := int64(snap.Sums[trace.KindHotKeyBypass]); got != res.Stats.HotRowsBypassed {
		t.Errorf("bypass trace rows %d != Stats.HotRowsBypassed %d",
			got, res.Stats.HotRowsBypassed)
	}
	if snap.Counts[trace.KindHotKeyBypass] == 0 {
		t.Error("no hot-key-bypass events recorded")
	}
}

// TestPlannedWithMemoryBudget runs the planned path under an accounting
// governor: the bypass machinery (accumulators, compaction scratch) must be
// registered in the fixed footprint and the run must stay oracle-correct.
func TestPlannedWithMemoryBudget(t *testing.T) {
	keys := datagen.Generate(datagen.Spec{
		Dist: datagen.Zipf, N: 1 << 15, K: 1 << 10, Seed: 17, Theta: 1.05,
	})
	in := planInput(keys)
	plain, err := Aggregate(smallCfg(DefaultAdaptive()), in)
	if err != nil {
		t.Fatal(err)
	}
	gov := memgov.New(0) // unlimited: pure accounting
	cfg := smallCfg(DefaultAdaptive())
	cfg.EnablePlan = true
	cfg.Governor = gov
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, res, plain, "budget")
	if gov.HighWater() == 0 {
		t.Fatal("governor saw no reservations")
	}
}
