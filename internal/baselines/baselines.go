// Package baselines reimplements the five state-of-the-art in-memory
// aggregation algorithms the paper compares against in Section 6.4, from
// Cieslewicz & Ross ("Adaptive aggregation on chip multiprocessors") and
// Ye et al. ("Scalable aggregation on multicore processors"):
//
//	ATOMIC                  (1 pass)  — one shared table, atomic instructions
//	INDEPENDENT             (2 passes) — private tables, parallel merge
//	HYBRID                  (1 pass)  — private cache tables with eviction
//	                                    into a shared ATOMIC-style table
//	PARTITION-AND-AGGREGATE (2 passes) — partition all input, merge partitions
//	PLAT                    (2 passes) — private table + overflow partitions
//
// The paper tunes the originals before comparing (Section 6.4); the same
// tuning is applied here: minimum table sizes of the L3 cache, no padding,
// MurmurHash2 instead of multiplicative hashing, and lock-free atomics
// instead of system mutexes.
//
// All baselines compute a COUNT(*) GROUP BY over a key column — the
// DISTINCT-style query of the paper's comparison (Figure 8) with the count
// kept so tests can verify full correctness, not just group sets.
//
// Every algorithm has a fixed number of passes and sizes its data
// structures from an optimizer-style cardinality estimate — precisely the
// two limitations (a K ceiling, and dependence on a prediction) that the
// paper's recursive, run-based operator removes.
package baselines

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cacheagg/internal/hashfn"
)

// Config configures a baseline run.
type Config struct {
	// Workers is the thread count; 0 selects 1.
	Workers int
	// CacheBytes models the per-thread L3 share; it sizes private tables.
	// 0 selects 4 MiB.
	CacheBytes int
	// EstimatedGroups is the optimizer's output-cardinality estimate all
	// of these algorithms depend on. 0 selects 1024. (The paper: the
	// competitors "rely on a prediction of the optimizer"; the adaptive
	// operator needs none.)
	EstimatedGroups int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 4 << 20
	}
	if c.EstimatedGroups <= 0 {
		c.EstimatedGroups = 1024
	}
	return c
}

// Result is a COUNT(*) GROUP BY result. Row order is unspecified.
type Result struct {
	Keys   []uint64
	Counts []int64
}

// Groups returns the number of groups.
func (r *Result) Groups() int { return len(r.Keys) }

// Algorithm is one baseline.
type Algorithm interface {
	Name() string
	Run(keys []uint64, cfg Config) *Result
}

// All returns the five baselines in the paper's Figure 8 legend order.
func All() []Algorithm {
	return []Algorithm{Hybrid{}, AtomicAlg{}, Independent{}, PartitionAndAggregate{}, PLAT{}}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// chunkBounds splits n rows into w near-equal chunks.
func chunkBounds(n, w int) []int {
	b := make([]int, w+1)
	for i := 0; i <= w; i++ {
		b[i] = n * i / w
	}
	return b
}

// ---------------------------------------------------------------------------
// openTable: a single-threaded open-addressing COUNT table that grows by
// doubling. Used for private tables and merge phases. Key 0 is supported
// via key+1 storage.

type openTable struct {
	keys   []uint64 // key+1; 0 = empty
	counts []int64
	rows   int
	limit  int // grow threshold (half full)
}

func newOpenTable(slots int) *openTable {
	if slots < 16 {
		slots = 16
	}
	slots = nextPow2(slots)
	return &openTable{
		keys:   make([]uint64, slots),
		counts: make([]int64, slots),
		limit:  slots / 2,
	}
}

func (t *openTable) add(key uint64, count int64) {
	if t.rows >= t.limit {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	s := hashfn.Murmur2(key) & mask
	for {
		switch t.keys[s] {
		case 0:
			t.keys[s] = key + 1
			t.counts[s] = count
			t.rows++
			return
		case key + 1:
			t.counts[s] += count
			return
		}
		s = (s + 1) & mask
	}
}

// tryAdd inserts without growing; it returns false when the key is new and
// the table is at its fill limit (the caller overflows the row elsewhere).
func (t *openTable) tryAdd(key uint64, count int64) bool {
	mask := uint64(len(t.keys) - 1)
	s := hashfn.Murmur2(key) & mask
	for {
		switch t.keys[s] {
		case 0:
			if t.rows >= t.limit {
				return false
			}
			t.keys[s] = key + 1
			t.counts[s] = count
			t.rows++
			return true
		case key + 1:
			t.counts[s] += count
			return true
		}
		s = (s + 1) & mask
	}
}

func (t *openTable) grow() {
	old := *t
	slots := len(t.keys) * 2
	t.keys = make([]uint64, slots)
	t.counts = make([]int64, slots)
	t.rows = 0
	t.limit = slots / 2
	for s, k := range old.keys {
		if k != 0 {
			t.add(k-1, old.counts[s])
		}
	}
}

func (t *openTable) each(fn func(key uint64, count int64)) {
	for s, k := range t.keys {
		if k != 0 {
			fn(k-1, t.counts[s])
		}
	}
}

// ---------------------------------------------------------------------------
// ATOMIC (1 pass): all threads share one open-addressing table; slots are
// claimed with compare-and-swap and counts updated with atomic adds. Cache
// efficient exactly while the shared table fits the combined cache (the
// ΣL3 mark in Figure 8) — which is why it beats the share-nothing designs
// in that one region — and a cache miss per row beyond it.

// AtomicAlg is the ATOMIC baseline.
type AtomicAlg struct{}

// Name implements Algorithm.
func (AtomicAlg) Name() string { return "ATOMIC" }

// Run implements Algorithm.
func (AtomicAlg) Run(keys []uint64, cfg Config) *Result {
	cfg = cfg.withDefaults()
	slots := nextPow2(max(4*cfg.EstimatedGroups, cfg.CacheBytes/16))
	tkeys := make([]uint64, slots)
	tcounts := make([]int64, slots)
	mask := uint64(slots - 1)

	var wg sync.WaitGroup
	bounds := chunkBounds(len(keys), cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				k := keys[i]
				s := hashfn.Murmur2(k) & mask
				for probes := 0; ; probes++ {
					if probes > slots {
						panic("baselines: ATOMIC table overflow — cardinality estimate too low")
					}
					cur := atomic.LoadUint64(&tkeys[s])
					if cur == 0 {
						if atomic.CompareAndSwapUint64(&tkeys[s], 0, k+1) {
							atomic.AddInt64(&tcounts[s], 1)
							break
						}
						cur = atomic.LoadUint64(&tkeys[s])
					}
					if cur == k+1 {
						atomic.AddInt64(&tcounts[s], 1)
						break
					}
					s = (s + 1) & mask
				}
			}
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()

	res := &Result{}
	for s, k := range tkeys {
		if k != 0 {
			res.Keys = append(res.Keys, k-1)
			res.Counts = append(res.Counts, tcounts[s])
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// INDEPENDENT (2 passes): pass 1 builds one private table per thread over
// its input chunk; pass 2 splits the hash space into one range per thread
// and merges each range from all private tables in parallel. Both passes
// trigger close to a miss per row once the private tables exceed each
// thread's cache share.

// Independent is the INDEPENDENT baseline.
type Independent struct{}

// Name implements Algorithm.
func (Independent) Name() string { return "INDEPENDENT" }

// Run implements Algorithm.
func (Independent) Run(keys []uint64, cfg Config) *Result {
	cfg = cfg.withDefaults()
	priv := make([]*openTable, cfg.Workers)
	bounds := chunkBounds(len(keys), cfg.Workers)

	// Pass 1: private aggregation.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t := newOpenTable(min(4*cfg.EstimatedGroups, 2*(hi-lo)))
			for i := lo; i < hi; i++ {
				t.add(keys[i], 1)
			}
			priv[w] = t
		}(w, bounds[w], bounds[w+1])
	}
	wg.Wait()

	// Pass 2: split the hash space into Workers ranges (multiply-shift of
	// the top hash bits, exact for any worker count); merge in parallel.
	merged := make([]*openTable, cfg.Workers)
	rangeOf := func(k uint64) int {
		return int(hashfn.Murmur2(k) >> 32 * uint64(cfg.Workers) >> 32)
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := newOpenTable(4 * cfg.EstimatedGroups / cfg.Workers)
			for _, t := range priv {
				t.each(func(k uint64, c int64) {
					if rangeOf(k) == w {
						m.add(k, c)
					}
				})
			}
			merged[w] = m
		}(w)
	}
	wg.Wait()

	res := &Result{}
	for _, m := range merged {
		m.each(func(k uint64, c int64) {
			res.Keys = append(res.Keys, k)
			res.Counts = append(res.Counts, c)
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// HYBRID (1 pass): each thread aggregates into a private table fixed to its
// share of the cache; when an insert cannot proceed, an existing entry is
// evicted into a global ATOMIC-style table (LRU-like "sampling" of hot
// groups). Adapts to locality but becomes ATOMIC-with-overhead once most of
// the output exceeds the private tables.

// Hybrid is the HYBRID baseline.
type Hybrid struct{}

// Name implements Algorithm.
func (Hybrid) Name() string { return "HYBRID" }

// Run implements Algorithm.
func (Hybrid) Run(keys []uint64, cfg Config) *Result {
	cfg = cfg.withDefaults()
	gslots := nextPow2(max(4*cfg.EstimatedGroups, cfg.CacheBytes/16))
	gkeys := make([]uint64, gslots)
	gcounts := make([]int64, gslots)
	gmask := uint64(gslots - 1)

	globalAdd := func(k uint64, c int64) {
		s := hashfn.Murmur2(k) & gmask
		for probes := 0; ; probes++ {
			if probes > gslots {
				panic("baselines: HYBRID global table overflow — cardinality estimate too low")
			}
			cur := atomic.LoadUint64(&gkeys[s])
			if cur == 0 {
				if atomic.CompareAndSwapUint64(&gkeys[s], 0, k+1) {
					atomic.AddInt64(&gcounts[s], c)
					return
				}
				cur = atomic.LoadUint64(&gkeys[s])
			}
			if cur == k+1 {
				atomic.AddInt64(&gcounts[s], c)
				return
			}
			s = (s + 1) & gmask
		}
	}

	privSlots := nextPow2(max(1024, cfg.CacheBytes/(16*cfg.Workers)))
	bounds := chunkBounds(len(keys), cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pkeys := make([]uint64, privSlots)
			pcounts := make([]int64, privSlots)
			pmask := uint64(privSlots - 1)
			const maxProbe = 8
			for i := lo; i < hi; i++ {
				k := keys[i]
				home := hashfn.Murmur2(k) & pmask
				s := home
				placed := false
				for p := 0; p < maxProbe; p++ {
					if pkeys[s] == 0 {
						pkeys[s] = k + 1
						pcounts[s] = 1
						placed = true
						break
					}
					if pkeys[s] == k+1 {
						pcounts[s]++
						placed = true
						break
					}
					s = (s + 1) & pmask
				}
				if !placed {
					// Evict the home-slot occupant to the global table and
					// take its place (the hot set adapts, LRU-style).
					globalAdd(pkeys[home]-1, pcounts[home])
					pkeys[home] = k + 1
					pcounts[home] = 1
				}
			}
			// Drain the private table.
			for s := range pkeys {
				if pkeys[s] != 0 {
					globalAdd(pkeys[s]-1, pcounts[s])
				}
			}
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()

	res := &Result{}
	for s, k := range gkeys {
		if k != 0 {
			res.Keys = append(res.Keys, k-1)
			res.Counts = append(res.Counts, gcounts[s])
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// PARTITION-AND-AGGREGATE (2 passes): pass 1 partitions the entire input by
// hash value into 256 partitions (naive scatter — the paper notes this
// baseline's partitioning "uses the naive implementation" without software
// write-combining); pass 2 aggregates each partition into a private table,
// parallel over partitions.

// PartitionAndAggregate is the PARTITION-AND-AGGREGATE baseline.
type PartitionAndAggregate struct{}

// Name implements Algorithm.
func (PartitionAndAggregate) Name() string { return "PARTITION-AND-AGGREGATE" }

// Run implements Algorithm.
func (PartitionAndAggregate) Run(keys []uint64, cfg Config) *Result {
	cfg = cfg.withDefaults()
	const fanout = hashfn.Fanout
	bounds := chunkBounds(len(keys), cfg.Workers)

	// Pass 1: per-thread naive partitioning.
	parts := make([][][]uint64, cfg.Workers) // [worker][partition][]keys
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := make([][]uint64, fanout)
			for i := lo; i < hi; i++ {
				d := hashfn.Digit(hashfn.Murmur2(keys[i]), 0)
				p[d] = append(p[d], keys[i])
			}
			parts[w] = p
		}(w, bounds[w], bounds[w+1])
	}
	wg.Wait()

	// Pass 2: aggregate each partition (parallel over partitions).
	tables := make([]*openTable, fanout)
	next := int64(-1)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				d := int(atomic.AddInt64(&next, 1))
				if d >= fanout {
					return
				}
				t := newOpenTable(4 * cfg.EstimatedGroups / fanout)
				for w := range parts {
					for _, k := range parts[w][d] {
						t.add(k, 1)
					}
				}
				tables[d] = t
			}
		}()
	}
	wg.Wait()

	res := &Result{}
	for _, t := range tables {
		t.each(func(k uint64, c int64) {
			res.Keys = append(res.Keys, k)
			res.Counts = append(res.Counts, c)
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// PLAT — Partition with Local Aggregation Table (2 passes): each thread
// aggregates into a private cache-sized table; rows whose group does not
// fit any more overflow into hash partitions, merged in a second pass. The
// private tables exploit locality like HYBRID, but overflow goes to
// partitions rather than a shared table.

// PLAT is the PLAT baseline.
type PLAT struct{}

// Name implements Algorithm.
func (PLAT) Name() string { return "PLAT" }

// Run implements Algorithm.
func (PLAT) Run(keys []uint64, cfg Config) *Result {
	cfg = cfg.withDefaults()
	const fanout = hashfn.Fanout
	bounds := chunkBounds(len(keys), cfg.Workers)

	type kv struct {
		k uint64
		c int64
	}
	// parts[worker][digit] collects overflowed rows (count 1) and, at the
	// end of pass 1, the drained private-table entries (with counts).
	parts := make([][][]kv, cfg.Workers)
	privSlots := max(1024, cfg.CacheBytes/(16*cfg.Workers))

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t := newOpenTable(privSlots)
			p := make([][]kv, fanout)
			for i := lo; i < hi; i++ {
				k := keys[i]
				if !t.tryAdd(k, 1) {
					d := hashfn.Digit(hashfn.Murmur2(k), 0)
					p[d] = append(p[d], kv{k, 1})
				}
			}
			// Drain the private "hot" table into its partitions so pass 2
			// only ever touches one partition's data.
			t.each(func(k uint64, c int64) {
				d := hashfn.Digit(hashfn.Murmur2(k), 0)
				p[d] = append(p[d], kv{k, c})
			})
			parts[w] = p
		}(w, bounds[w], bounds[w+1])
	}
	wg.Wait()

	// Pass 2: merge each partition across threads, parallel over
	// partitions.
	tables := make([]*openTable, fanout)
	next := int64(-1)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				d := int(atomic.AddInt64(&next, 1))
				if d >= fanout {
					return
				}
				m := newOpenTable(4 * cfg.EstimatedGroups / fanout)
				for w := range parts {
					for _, e := range parts[w][d] {
						m.add(e.k, e.c)
					}
				}
				tables[d] = m
			}
		}()
	}
	wg.Wait()

	res := &Result{}
	for _, t := range tables {
		t.each(func(k uint64, c int64) {
			res.Keys = append(res.Keys, k)
			res.Counts = append(res.Counts, c)
		})
	}
	return res
}

// Lookup finds an algorithm by name.
func Lookup(name string) (Algorithm, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown algorithm %q", name)
}
