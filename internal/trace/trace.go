// Package trace is the execution-observability layer: a pluggable Tracer
// that the operator threads through every execution stage (core build,
// scatter/split, spill I/O, out-of-core merge, prefetcher, governor).
//
// The design goal is that an *absent* tracer costs one nil-check per block
// of work and an *installed* tracer costs two atomic stores per event plus
// a handful of lock-free word writes into a fixed-size ring. There are no
// locks, no allocations, and no channels on any emission path, so the
// tracer can stay installed in benchmark runs without distorting them.
//
// Two views of the same stream:
//
//   - Counters: per-worker cache-line-padded lanes of atomic counts and
//     float sums, one slot per event Kind, folded on demand by Snapshot.
//     These are exact — every Emit is counted even when the ring wraps —
//     and are what the reconcile tests compare against core/external Stats.
//   - Events: a bounded lock-free ring holding the most recent events with
//     nanosecond timestamps, for timeline export (JSONL) and debugging.
//     When more events are emitted than the ring holds, the oldest are
//     overwritten; Snapshot.Dropped reports how many.
//
// Phase accounting is separate from events: AddPhase charges elapsed
// nanoseconds to one of the fixed execution phases (intake, scatter,
// table-build, split, spill, merge). See docs/OBSERVABILITY.md for the
// phase model (which phases are wall time and which are summed worker
// activity).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// Phase identifies one bucket of the per-phase time breakdown.
type Phase uint8

const (
	// PhaseIntake is the wall time of the input-consumption phase: from
	// the first morsel handed to the pool until every intake task has
	// finished (including recursive bucket finalization spawned from it).
	PhaseIntake Phase = iota
	// PhaseScatter is summed worker activity spent partitioning rows into
	// buckets (scatter kernels, all recursion levels).
	PhaseScatter
	// PhaseTableBuild is summed worker activity spent hashing and
	// inserting rows into hash tables (all levels).
	PhaseTableBuild
	// PhaseSplit is summed worker activity spent splitting or sealing
	// full tables into sorted-by-hash runs and emitting output columns.
	PhaseSplit
	// PhaseSpill is summed writer activity spent encoding and writing
	// spill blocks (external mode only).
	PhaseSpill
	// PhaseMerge is the wall time of the out-of-core merge phase
	// (external mode only).
	PhaseMerge

	// NumPhases is the number of phases; valid Phase values are < NumPhases.
	NumPhases = 6
)

var phaseNames = [NumPhases]string{
	"intake", "scatter", "table-build", "split", "spill", "merge",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Kind identifies the type of an emitted event. The per-event meaning of
// the Part and Value fields is documented next to each kind.
type Kind uint8

const (
	// KindStrategySwitch: the adaptive controller switched HASHING →
	// PARTITIONING after a table emit. Part = partition prefix (-1 at
	// intake level), Value = the observed α that triggered the switch.
	KindStrategySwitch Kind = iota
	// KindTableSplit: a full hash table was split into sorted runs and
	// recycled (paper's "spill" of the in-memory strategy). Part =
	// partition prefix (-1 at intake), Value = the table's α.
	KindTableSplit
	// KindTableEmit: a final (pure or finalized) table emitted output
	// groups directly. Part = partition prefix, Value = groups emitted.
	KindTableEmit
	// KindSpillWrite: one column-major block was encoded and written to a
	// spill file. Part = spill partition id, Value = rows in the block.
	KindSpillWrite
	// KindSpillRead: one spill partition file was read and decoded.
	// Part = partition digit (-1 when unknown), Value = file size bytes.
	KindSpillRead
	// KindSpillRetry: a transient spill-I/O fault was retried.
	// Part = faultfs op code, Value = 1.
	KindSpillRetry
	// KindMergeStart: a merge task began. Part = level-1 digit (-1 for
	// recursive sub-partitions), Value = 0.
	KindMergeStart
	// KindMergeSteal: a pool worker stole a merge task. Worker = thief,
	// Part = victim worker, Value = 0.
	KindMergeSteal
	// KindMergeFinish: a merge task completed. Part mirrors the matching
	// KindMergeStart, Value = groups produced (0 when repartitioned).
	KindMergeFinish
	// KindPrefetchLoad: the prefetcher finished loading a partition ahead
	// of demand. Part = partition digit, Value = file size bytes.
	KindPrefetchLoad
	// KindPrefetchHit: a merge task consumed a prefetched partition.
	// Part = partition digit.
	KindPrefetchHit
	// KindPrefetchDrop: a prefetched or in-flight load was discarded
	// (reservation refused, memory reclaimed, or merge aborted).
	// Part = partition digit.
	KindPrefetchDrop
	// KindGovHighWater: the governor's reservation high-water mark rose
	// past another sampling grain. Part = -1, Value = high water in bytes.
	KindGovHighWater
	// KindEpochSeal: a streaming epoch was sealed — its accumulator is
	// durable on disk and the manifest committed. Part = epoch sequence
	// number, Value = groups (records) in the epoch file.
	KindEpochSeal
	// KindCheckpointWrite: one checkpoint artifact (epoch file or
	// manifest) finished writing, before the manifest commit makes it
	// live. Part = epoch sequence number (-1 for the manifest),
	// Value = file size in bytes.
	KindCheckpointWrite
	// KindRecover: a stream resumed from its checkpoint directory.
	// Part = sealed epochs restored, Value = durable rows recovered.
	KindRecover
	// KindBackpressure: a push was refused (ErrBackpressure) or blocked
	// because the ingest queue or memory budget was full. Part = queue
	// length at refusal, Value = 1.
	KindBackpressure
	// KindPlan: a sketch-guided plan was attached to the run. Emitted once
	// at run start. Part = number of hot keys nominated for bypass,
	// Value = estimated distinct-key count (HLL).
	KindPlan
	// KindHotKeyBypass: a worker flushed one hot key's scalar accumulator
	// into the merge stream. Part = the hot key (as int64),
	// Value = rows folded into the accumulator since the last flush.
	KindHotKeyBypass
	// KindRoutineSelect: the three-way routine selector committed to an
	// execution routine for the run, or demoted mid-run. Emitted once at
	// run start (worker 0) and once more on demotion. Part = the chosen
	// core.Routine as an int64, Value = the predicted (at selection) or
	// observed (at demotion) reduction factor α that drove the decision.
	KindRoutineSelect
	// KindGlobalContention: a worker's bounded CAS-retry budget on the
	// shared global table ran out and a batch of rows escaped to its local
	// overflow table. Part = escaped rows in the batch, Value = contended
	// slot encounters (claim-in-progress spins + CAS fold retries)
	// observed while inserting the batch.
	KindGlobalContention
	// KindInternGrow: a shard of the key-interning dictionary grew its
	// open-addressed index and republished it (an epoch boundary for
	// lock-free readers of that shard). Part = shard number,
	// Value = the new slot count.
	KindInternGrow

	// NumKinds is the number of kinds; valid Kind values are < NumKinds.
	NumKinds = 22
)

var kindNames = [NumKinds]string{
	"strategy-switch", "table-split", "table-emit",
	"spill-write", "spill-read", "spill-retry",
	"merge-start", "merge-steal", "merge-finish",
	"prefetch-load", "prefetch-hit", "prefetch-drop",
	"gov-high-water",
	"epoch-seal", "checkpoint-write", "recover", "backpressure",
	"plan", "hot-key-bypass",
	"routine-select", "global-contention",
	"intern-grow",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Tracer is the sink for execution events and phase timings. The one
// concrete implementation is *Recorder; the interface exists so execution
// code can hold a nil sink and guard emission with a single branch.
//
// Implementations must be safe for concurrent use from many workers.
type Tracer interface {
	// Emit records one event. worker is the emitting worker's index
	// (0 when the caller has no worker identity), level the recursion
	// depth, and part/value are Kind-specific (see the Kind docs).
	Emit(k Kind, worker, level int, part int64, value float64)
	// AddPhase charges nanos of elapsed time to phase p.
	AddPhase(p Phase, nanos int64)
}

// Event is one decoded entry from the recorder's ring.
type Event struct {
	// Seq is the global emission sequence number (0-based).
	Seq uint64
	// Nanos is the emission time in nanoseconds since the Recorder was
	// created.
	Nanos int64
	// Kind-specific fields; see the Kind constants.
	Kind   Kind
	Worker int
	Level  int
	Part   int64
	Value  float64
}

// MarshalJSON encodes the event as the stable JSONL schema documented in
// docs/OBSERVABILITY.md (kind as a string, time as t_ns).
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq    uint64  `json:"seq"`
		Nanos  int64   `json:"t_ns"`
		Kind   string  `json:"kind"`
		Worker int     `json:"worker"`
		Level  int     `json:"level"`
		Part   int64   `json:"part"`
		Value  float64 `json:"value"`
	}{e.Seq, e.Nanos, e.Kind.String(), e.Worker, e.Level, e.Part, e.Value})
}

// WriteJSONL writes one JSON object per line for each event.
func WriteJSONL(w io.Writer, events []Event) error {
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot is a consistent-enough point-in-time fold of the recorder's
// counters. Counts and Sums are exact totals over every Emit (including
// events the ring has since overwritten); Phases holds accumulated
// nanoseconds per phase.
type Snapshot struct {
	// Emitted is the total number of events emitted so far.
	Emitted uint64
	// Dropped is how many of those are no longer in the ring.
	Dropped uint64
	Counts  [NumKinds]int64
	Sums    [NumKinds]float64
	Phases  [NumPhases]int64
}

// Sub returns the component-wise difference s - prev, for isolating the
// activity of a single run on a shared recorder.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{Emitted: s.Emitted - prev.Emitted}
	for k := 0; k < NumKinds; k++ {
		d.Counts[k] = s.Counts[k] - prev.Counts[k]
		d.Sums[k] = s.Sums[k] - prev.Sums[k]
	}
	for p := 0; p < NumPhases; p++ {
		d.Phases[p] = s.Phases[p] - prev.Phases[p]
	}
	if s.Dropped > prev.Dropped {
		d.Dropped = s.Dropped - prev.Dropped
	}
	return d
}

// laneCount is the number of counter lanes. A power of two; workers hash
// onto lanes by index so any worker count is safe, and 64 lanes keep
// same-lane contention negligible for realistic worker counts.
const laneCount = 64

// lane holds one worker's counters. The trailing pad keeps adjacent lanes
// from sharing a cache line on the hot Counts words.
type lane struct {
	counts [NumKinds]atomic.Int64
	sums   [NumKinds]atomic.Uint64 // float64 bits, CAS-accumulated
	_      [64]byte
}

// slot is one ring entry. All words are atomics so concurrent writers and
// readers stay race-detector clean; tag is a seqlock-style publication
// word — 0 while a writer owns the slot, seq+1 once the payload is
// published. A reader accepts a slot only when tag matches the expected
// sequence before and after reading the payload.
type slot struct {
	tag   atomic.Uint64
	meta  atomic.Uint64 // kind<<48 | worker<<32 | level (low 32)
	nanos atomic.Int64
	part  atomic.Int64
	val   atomic.Uint64 // float64 bits
}

// DefaultCapacity is the ring capacity used when NewRecorder is given a
// non-positive capacity: 16384 events ≈ 640 KiB.
const DefaultCapacity = 1 << 14

// Recorder is the concrete Tracer: exact lock-free counters plus a
// bounded event ring. Create one per process or per run with NewRecorder;
// the zero value is not usable.
type Recorder struct {
	start  time.Time
	mask   uint64
	seq    atomic.Uint64
	slots  []slot
	lanes  [laneCount]lane
	phases [NumPhases]atomic.Int64
}

// NewRecorder returns a Recorder whose ring holds at least capacity
// events (rounded up to a power of two; DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{start: time.Now(), mask: uint64(n - 1), slots: make([]slot, n)}
}

// Emit implements Tracer. Safe for concurrent use; never blocks and never
// allocates.
func (r *Recorder) Emit(k Kind, worker, level int, part int64, value float64) {
	ln := &r.lanes[uint(worker)&(laneCount-1)]
	ln.counts[k].Add(1)
	if value != 0 {
		addFloat(&ln.sums[k], value)
	}

	seq := r.seq.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.tag.Store(0) // take the slot; readers of the old entry now fail validation
	s.meta.Store(uint64(k)<<48 | uint64(uint16(worker))<<32 | uint64(uint32(level)))
	s.nanos.Store(int64(time.Since(r.start)))
	s.part.Store(part)
	s.val.Store(math.Float64bits(value))
	s.tag.Store(seq + 1) // publish
}

// AddPhase implements Tracer.
func (r *Recorder) AddPhase(p Phase, nanos int64) {
	r.phases[p].Add(nanos)
}

func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot folds the counter lanes and phase clocks. It may run
// concurrently with Emit; each word is read atomically, so totals are
// exact once emitters are quiescent and near-exact while they run.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	s.Emitted = r.seq.Load()
	if ring := uint64(len(r.slots)); s.Emitted > ring {
		s.Dropped = s.Emitted - ring
	}
	for i := range r.lanes {
		ln := &r.lanes[i]
		for k := 0; k < NumKinds; k++ {
			s.Counts[k] += ln.counts[k].Load()
			s.Sums[k] += math.Float64frombits(ln.sums[k].Load())
		}
	}
	for p := 0; p < NumPhases; p++ {
		s.Phases[p] = r.phases[p].Load()
	}
	return s
}

// Events decodes the ring in emission order (oldest surviving event
// first). Safe to call while emitters run; entries being overwritten
// mid-read fail seqlock validation and are skipped rather than returned
// torn. With quiescent emitters the result is complete and exact.
func (r *Recorder) Events() []Event {
	end := r.seq.Load()
	ring := uint64(len(r.slots))
	begin := uint64(0)
	if end > ring {
		begin = end - ring
	}
	out := make([]Event, 0, end-begin)
	for seq := begin; seq < end; seq++ {
		s := &r.slots[seq&r.mask]
		if s.tag.Load() != seq+1 {
			continue // unpublished or already overwritten
		}
		meta := s.meta.Load()
		ev := Event{
			Seq:    seq,
			Nanos:  s.nanos.Load(),
			Part:   s.part.Load(),
			Value:  math.Float64frombits(s.val.Load()),
			Kind:   Kind(meta >> 48),
			Worker: int(uint16(meta >> 32)),
			Level:  int(uint32(meta)),
		}
		if s.tag.Load() != seq+1 {
			continue // torn by a concurrent writer; drop
		}
		out = append(out, ev)
	}
	return out
}
