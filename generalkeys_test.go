package cacheagg

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"cacheagg/internal/datagen"
)

// oracleKey serializes one row's key columns with its own scheme —
// independent of the intern codec — so the oracle's grouping cannot
// inherit a codec bug.
func oracleKey(cols []KeyColumn, row int) string {
	var sb strings.Builder
	for ci := range cols {
		c := &cols[ci]
		switch {
		case c.IsNull(row):
			sb.WriteString("N|")
		case c.Uint64s != nil:
			sb.WriteString("u:")
			sb.WriteString(strconv.FormatUint(c.Uint64s[row], 10))
			sb.WriteByte('|')
		default:
			sb.WriteString("s:")
			sb.WriteString(strconv.Quote(c.Strings[row]))
			sb.WriteByte('|')
		}
	}
	return sb.String()
}

type oracleGroup struct {
	count       int64
	sum         int64
	min, max    int64
	first       bool
	sumForAvg   int64
	countForAvg int64
}

// oracleAggregate is the plain map[string]-keyed scalar reference: one
// pass, per-key scalar accumulators for COUNT, SUM, MIN, MAX, AVG over
// column 0.
func oracleAggregate(cols []KeyColumn, vals []int64) map[string]*oracleGroup {
	out := make(map[string]*oracleGroup)
	for i := range vals {
		k := oracleKey(cols, i)
		g := out[k]
		if g == nil {
			g = &oracleGroup{first: true}
			out[k] = g
		}
		v := vals[i]
		g.count++
		g.sum += v
		if g.first || v < g.min {
			g.min = v
		}
		if g.first || v > g.max {
			g.max = v
		}
		g.first = false
		g.sumForAvg += v
		g.countForAvg++
	}
	return out
}

type keyShape struct {
	name string
	make func(spec datagen.Spec) []KeyColumn
}

var keyShapes = []keyShape{
	{"string", func(spec datagen.Spec) []KeyColumn {
		return []KeyColumn{{Strings: datagen.GenerateStrings(spec)}}
	}},
	{"composite2-null", func(spec datagen.Spec) []KeyColumn {
		cols := datagen.GenerateComposite(spec, 2)
		return []KeyColumn{
			{Uint64s: cols[0], Nulls: datagen.NullMask(spec.N, 0.05, spec.Seed+99)},
			{Uint64s: cols[1]},
		}
	}},
	{"mixed-null", func(spec datagen.Spec) []KeyColumn {
		keys := datagen.Generate(spec)
		strs := make([]string, len(keys))
		for i, k := range keys {
			strs[i] = datagen.StringKey(k % 97)
		}
		return []KeyColumn{
			{Uint64s: keys},
			{Strings: strs, Nulls: datagen.NullMask(spec.N, 0.03, spec.Seed+7)},
		}
	}},
}

// TestAggregateGeneralDifferentialOracle is the acceptance gate for the
// general-key layer: for string, composite and NULL-bearing keys, across
// distributions, worker counts and all three execution routines, every
// decoded group's aggregates must be bit-identical to the map-keyed
// scalar oracle. Run under -race in CI.
func TestAggregateGeneralDifferentialOracle(t *testing.T) {
	const n = 20000
	dists := []datagen.Dist{datagen.Uniform, datagen.Zipf, datagen.HeavyHitter, datagen.Sequential}
	routines := []Routine{RoutinePartitioned, RoutineGlobal, RoutineSortSpill}
	aggs := []AggSpec{
		{Func: Count},
		{Func: Sum, Col: 0},
		{Func: Min, Col: 0},
		{Func: Max, Col: 0},
		{Func: Avg, Col: 0},
	}
	for _, shape := range keyShapes {
		for _, dist := range dists {
			spec := datagen.Spec{Dist: dist, N: n, K: 2000, Seed: 42}
			gcols := shape.make(spec)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(i%1000) - 500
			}
			want := oracleAggregate(gcols, vals)
			for _, routine := range routines {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("%s/%s/%s/w%d", shape.name, dist, routine, workers)
					t.Run(name, func(t *testing.T) {
						res, err := AggregateGeneral(GeneralInput{
							GroupBy:    gcols,
							Columns:    [][]int64{vals},
							Aggregates: aggs,
						}, Options{Routine: routine, Workers: workers})
						if err != nil {
							t.Fatal(err)
						}
						if res.Len() != len(want) {
							t.Fatalf("%d groups, oracle has %d", res.Len(), len(want))
						}
						for r := 0; r < res.Len(); r++ {
							k := oracleKey(res.GroupCols, r)
							g := want[k]
							if g == nil {
								t.Fatalf("group %q not in oracle", k)
							}
							if res.Aggs[0][r] != g.count {
								t.Fatalf("%q: count %d, want %d", k, res.Aggs[0][r], g.count)
							}
							if res.Aggs[1][r] != g.sum {
								t.Fatalf("%q: sum %d, want %d", k, res.Aggs[1][r], g.sum)
							}
							if res.Aggs[2][r] != g.min {
								t.Fatalf("%q: min %d, want %d", k, res.Aggs[2][r], g.min)
							}
							if res.Aggs[3][r] != g.max {
								t.Fatalf("%q: max %d, want %d", k, res.Aggs[3][r], g.max)
							}
							wantAvg := float64(g.sumForAvg) / float64(g.countForAvg)
							if got := res.Float(4, r); got != wantAvg {
								t.Fatalf("%q: avg %v, want %v", k, got, wantAvg)
							}
						}
						if res.Stats.InternedKeys == 0 || res.Stats.InternBytes == 0 {
							t.Fatal("intern stats not populated")
						}
					})
				}
			}
		}
	}
}

func TestAggregateGeneralSharedInterner(t *testing.T) {
	// A shared dictionary keeps ids comparable across calls: interning the
	// same keys twice must not grow it, and stats report the cumulative
	// size.
	it := NewInterner()
	in := GeneralInput{
		GroupBy:    []KeyColumn{{Strings: []string{"a", "b", "a", "c"}}},
		Aggregates: []AggSpec{{Func: Count}},
	}
	r1, err := AggregateGeneral(in, Options{Interner: it})
	if err != nil {
		t.Fatal(err)
	}
	if it.Len() != 3 || r1.Stats.InternedKeys != 3 {
		t.Fatalf("dictionary holds %d keys (stats %d), want 3", it.Len(), r1.Stats.InternedKeys)
	}
	r2, err := AggregateGeneral(in, Options{Interner: it})
	if err != nil {
		t.Fatal(err)
	}
	if it.Len() != 3 {
		t.Fatalf("re-running the same keys grew the dictionary to %d", it.Len())
	}
	if r2.Len() != 3 {
		t.Fatalf("second run found %d groups", r2.Len())
	}
}

func TestAggregateGeneralValidation(t *testing.T) {
	if _, err := AggregateGeneral(GeneralInput{}, Options{}); err == nil {
		t.Fatal("no key columns must fail")
	}
	if _, err := AggregateGeneral(GeneralInput{GroupBy: []KeyColumn{{}}}, Options{}); err == nil {
		t.Fatal("empty key column must fail")
	}
	if _, err := AggregateGeneral(GeneralInput{GroupBy: []KeyColumn{
		{Uint64s: []uint64{1, 2}},
		{Strings: []string{"x"}},
	}}, Options{}); err == nil {
		t.Fatal("ragged key columns must fail")
	}
}

func TestAggregateGeneralInternGrowTrace(t *testing.T) {
	tr := NewTracer(1 << 16)
	keys := make([]string, 40000)
	for i := range keys {
		keys[i] = datagen.StringKey(uint64(i))
	}
	_, err := AggregateGeneral(GeneralInput{
		GroupBy:    []KeyColumn{{Strings: keys}},
		Aggregates: []AggSpec{{Func: Count}},
	}, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if n := tr.Snapshot().Counts["intern-grow"]; n == 0 {
		t.Fatal("no intern-grow events for a 40k-key dictionary build")
	}
}

func TestAggregateGeneralNullDistinctFromZeroAndEmpty(t *testing.T) {
	res, err := AggregateGeneral(GeneralInput{
		GroupBy: []KeyColumn{{
			Strings: []string{"", "x", ""},
			Nulls:   []bool{false, true, false},
		}},
		Aggregates: []AggSpec{{Func: Count}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("want 2 groups (empty string, NULL), got %d", res.Len())
	}
	for r := 0; r < res.Len(); r++ {
		c := &res.GroupCols[0]
		if c.IsNull(r) {
			if res.Aggs[0][r] != 1 {
				t.Fatalf("NULL group count %d, want 1", res.Aggs[0][r])
			}
		} else if c.Strings[r] != "" || res.Aggs[0][r] != 2 {
			t.Fatalf("group %d: %q count %d", r, c.Strings[r], res.Aggs[0][r])
		}
	}
}
