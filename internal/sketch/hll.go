// Package sketch implements the zero-allocation cardinality and frequency
// sketches behind the planning pass: a HyperLogLog for estimating the number
// of distinct groups K, a Count-Min sketch for estimating per-key
// frequencies, and a small top-k tracker that turns Count-Min estimates into
// heavy-hitter candidates.
//
// All sketches consume 64-bit hashes that the hot path has already computed
// (hashfn.HashBatch output) — adding a row never re-hashes and never
// allocates. The planner feeds them from a bounded prefix sample of the
// input, so their accuracy contract is "good enough to pick a starting
// point", never a correctness dependency: every decision derived from a
// sketch must degrade to the unplanned behaviour when the estimate is wrong.
package sketch

import (
	"math"
	"math/bits"
)

// HLL is a HyperLogLog cardinality estimator over 64-bit hashes with 2^p
// registers. The register index comes from the top p bits of the hash and
// the rank from the leading zeros of the remainder, so the low 8*level bits
// that the radix partitioner consumes stay uncorrelated with the estimate.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL returns an estimator with 2^p registers (standard error about
// 1.04/sqrt(2^p); p=12 gives ~1.6% at 4 KiB). p must be in [4, 18].
func NewHLL(p int) *HLL {
	if p < 4 || p > 18 {
		panic("sketch: HLL precision out of range [4,18]")
	}
	return &HLL{p: uint8(p), regs: make([]uint8, 1<<p)}
}

// AddHash folds one 64-bit hash into the estimator. Zero allocations.
func (h *HLL) AddHash(x uint64) {
	p := h.p
	idx := x >> (64 - p)
	// Shifting the index out and planting a sentinel bit caps the rank at
	// 64-p+1, the maximum meaningful value for the remaining bits.
	w := x<<p | 1<<(p-1)
	r := uint8(bits.LeadingZeros64(w)) + 1
	if r > h.regs[idx] {
		h.regs[idx] = r
	}
}

// AddHashes folds a whole block of hashes (a HashBatch output slice).
func (h *HLL) AddHashes(xs []uint64) {
	p := h.p
	regs := h.regs
	for _, x := range xs {
		idx := x >> (64 - p)
		w := x<<p | 1<<(p-1)
		r := uint8(bits.LeadingZeros64(w)) + 1
		if r > regs[idx] {
			regs[idx] = r
		}
	}
}

// Estimate returns the current cardinality estimate, with the standard
// linear-counting correction for the small-cardinality regime.
func (h *HLL) Estimate() float64 {
	m := float64(uint64(1) << h.p)
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += pow2neg(r)
		if r == 0 {
			zeros++
		}
	}
	est := alphaM(len(h.regs)) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting is more accurate while most registers are empty.
		return m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds another estimator with identical precision into h
// (register-wise max). It panics on a precision mismatch.
func (h *HLL) Merge(o *HLL) {
	if h.p != o.p {
		panic("sketch: HLL precision mismatch in Merge")
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// Reset clears the estimator for reuse without reallocating.
func (h *HLL) Reset() {
	clear(h.regs)
}

// pow2neg returns 2^-r without calling math.Pow.
func pow2neg(r uint8) float64 {
	return 1 / float64(uint64(1)<<r)
}

// alphaM is the standard HyperLogLog bias-correction constant for m
// registers.
func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}
