package core

// White-box tests for engine paths that are hard to reach through the
// public surface: forced finalization at hash-digit exhaustion (64-bit
// collisions), the leaf fallback on block overflow, direct table emission,
// and chunk ordering.

import (
	"context"
	"sort"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/runs"
	"cacheagg/internal/sched"
)

// mkExec builds an exec with a tiny cache for direct engine-level tests.
func mkExec(specs []agg.Spec, keys []uint64, cols [][]int64) *exec {
	cfg := Config{
		Strategy:   DefaultAdaptive(),
		Workers:    1,
		CacheBytes: 32 << 10,
		MorselRows: 1024,
		ChunkRows:  128,
	}.withDefaults()
	e, err := newExec(cfg, &Input{Keys: keys, AggCols: cols, Specs: specs})
	if err != nil {
		panic(err)
	}
	return e
}

// runBucketTask drives processBucket through the pool like the engine does.
func runBucketTask(e *exec, b *runs.Bucket, level int, prefix uint64) {
	e.pool.Run(func(ctx *sched.Ctx) { e.processBucket(ctx, b, level, prefix) })
}

func TestForcedFinalizationAtMaxLevels(t *testing.T) {
	// A bucket processed at MaxLevels must finalize even though all rows
	// share every hash digit — the 64-bit collision case. Build rows with
	// IDENTICAL hashes but distinct keys.
	e := mkExec(nil, nil, nil)
	const sameHash = uint64(0xDEADBEEFCAFEF00D)
	r := &runs.Run{States: [][]uint64{}}
	const n = 100
	for k := uint64(0); k < n; k++ {
		r.Hashes = append(r.Hashes, sameHash)
		r.Keys = append(r.Keys, k)
	}
	var b runs.Bucket
	b.Add(r)
	runBucketTask(e, &b, hashfn.MaxLevels, 0)
	res := e.assemble()
	if res.Groups() != n {
		t.Fatalf("collision bucket produced %d groups, want %d", res.Groups(), n)
	}
	seen := map[uint64]bool{}
	for _, k := range res.Keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

func TestForcedFinalizationMergesDuplicates(t *testing.T) {
	// Same-hash rows with REPEATED keys must merge their states.
	specs := []agg.Spec{{Kind: agg.Count}}
	e := mkExec(specs, nil, nil)
	const sameHash = uint64(42)
	r := &runs.Run{States: [][]uint64{{}}}
	for i := 0; i < 30; i++ {
		r.Hashes = append(r.Hashes, sameHash)
		r.Keys = append(r.Keys, uint64(i%3))
		r.States[0] = append(r.States[0], 1) // COUNT partial of 1
	}
	var b runs.Bucket
	b.Add(r)
	runBucketTask(e, &b, hashfn.MaxLevels, 0)
	res := e.assemble()
	if res.Groups() != 3 {
		t.Fatalf("got %d groups, want 3", res.Groups())
	}
	for i := range res.Keys {
		if res.Aggs[0][i] != 10 {
			t.Fatalf("key %d count %d, want 10", res.Keys[i], res.Aggs[0][i])
		}
	}
}

func TestLeafBlockOverflowFallsBackToGrownTable(t *testing.T) {
	// Craft a leaf-sized bucket whose rows all land in ONE block of the
	// final table (identical digit at every level ⇒ same block), with
	// more rows than a single block holds. finalizeLeaf must detect the
	// overflow and fall back to the unblocked grown table.
	e := mkExec(nil, nil, nil)
	if e.finalRows < 300 {
		t.Skip("cache too small for this scenario")
	}
	r := &runs.Run{States: [][]uint64{}}
	// All hashes share every 8-bit digit (hash = repeated byte pattern)
	// but differ in nothing else — identical full hash, distinct keys, so
	// every insert probes the same block.
	const n = 300 // more than blockRows = capRows/256 for a 32 KiB table
	for k := uint64(0); k < n; k++ {
		r.Hashes = append(r.Hashes, 0x1111111111111111)
		r.Keys = append(r.Keys, k)
	}
	var b runs.Bucket
	b.Add(r)
	if b.Rows() > e.finalRows {
		t.Skipf("bucket (%d) exceeds leaf threshold (%d)", b.Rows(), e.finalRows)
	}
	runBucketTask(e, &b, 1, 0)
	res := e.assemble()
	if res.Groups() != n {
		t.Fatalf("block-overflow fallback lost groups: %d, want %d", res.Groups(), n)
	}
}

func TestEmitTableChunkOrdering(t *testing.T) {
	// Chunks must be concatenated by bucket prefix: run two sibling
	// buckets in reverse prefix order and check the assembled output is
	// still ordered.
	e := mkExec(nil, nil, nil)
	mkBucket := func(digit uint64) *runs.Bucket {
		r := &runs.Run{States: [][]uint64{}}
		for i := uint64(0); i < 50; i++ {
			h := digit<<56 | i<<8 // digit-0 fixed, spread below
			r.Hashes = append(r.Hashes, h)
			r.Keys = append(r.Keys, digit*1000+i)
		}
		var b runs.Bucket
		b.Add(r)
		return &b
	}
	// Process high-digit bucket first.
	runBucketTask(e, mkBucket(9), 1, 9)
	runBucketTask(e, mkBucket(2), 1, 2)
	res := e.assemble()
	if res.Groups() != 100 {
		t.Fatalf("groups = %d", res.Groups())
	}
	if !sort.SliceIsSorted(res.Hashes, func(i, j int) bool { return res.Hashes[i] < res.Hashes[j] }) {
		// Digit-level ordering is the guarantee.
		for i := 1; i < len(res.Hashes); i++ {
			if res.Hashes[i]>>56 < res.Hashes[i-1]>>56 {
				t.Fatalf("prefix order violated at %d", i)
			}
		}
	}
}

func TestDirectEmitOnLowCardinalityBucket(t *testing.T) {
	// A big bucket with few groups must be absorbed by one table and
	// emitted directly (the fused final pass), not recursed.
	e := mkExec(nil, nil, nil)
	r := &runs.Run{States: [][]uint64{}}
	const n = 5000 // above finalRows for the 32 KiB cache
	if n <= e.finalRows {
		t.Skipf("finalRows %d too large", e.finalRows)
	}
	for i := 0; i < n; i++ {
		k := uint64(i % 7)
		r.Hashes = append(r.Hashes, hashfn.Murmur2(k))
		r.Keys = append(r.Keys, k)
	}
	var b runs.Bucket
	b.Add(r)
	// NOTE: rows of this bucket have arbitrary top digits; process at
	// level 1 anyway (the engine never depends on the prefix actually
	// matching for correctness, only for output ordering).
	runBucketTask(e, &b, 1, 0)
	res := e.assemble()
	if res.Groups() != 7 {
		t.Fatalf("groups = %d, want 7", res.Groups())
	}
	if e.workers[0].stats.directEmits == 0 {
		t.Fatal("expected a direct emit")
	}
}

func TestCapacityFloor(t *testing.T) {
	// Even an absurdly small cache budget must yield a usable table
	// (capacity floor of fanout × MinBlockRows).
	cfg := Config{CacheBytes: 64, Workers: 1}.withDefaults()
	e, err := newExec(cfg, &Input{Keys: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if e.cacheRows < hashfn.Fanout*8 {
		t.Fatalf("cacheRows = %d below floor", e.cacheRows)
	}
	if err := e.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := e.assemble()
	if res.Groups() != 3 {
		t.Fatalf("groups = %d", res.Groups())
	}
}

func TestIntakeRespectsMorselBoundaries(t *testing.T) {
	// A morsel grain larger than the input must still work, as must a
	// grain of 1.
	for _, grain := range []int{1, 7, 1 << 20} {
		cfg := Config{Workers: 2, MorselRows: grain, CacheBytes: 32 << 10}
		keys := make([]uint64, 500)
		for i := range keys {
			keys[i] = uint64(i % 50)
		}
		res, err := Distinct(cfg, keys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Groups() != 50 {
			t.Fatalf("grain %d: groups = %d", grain, res.Groups())
		}
	}
}

func TestScattererAndTableReuseAcrossRuns(t *testing.T) {
	// The same exec config executed repeatedly must not leak state
	// between executions (worker resources are rebuilt per exec, but this
	// guards the Reset paths).
	cfg := Config{Workers: 1, CacheBytes: 32 << 10}
	for round := 0; round < 5; round++ {
		keys := make([]uint64, 2000)
		for i := range keys {
			keys[i] = uint64(round*10000 + i)
		}
		res, err := Distinct(cfg, keys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Groups() != 2000 {
			t.Fatalf("round %d: groups = %d", round, res.Groups())
		}
	}
}
