package hashfn

import (
	"testing"

	"cacheagg/internal/xrand"
)

// TestHashBatchMatchesMurmur2 checks the morsel-wide kernel against the
// scalar hash for every unroll boundary (0–9 plus a large batch): the
// batched hot path relies on the two being bit-identical.
func TestHashBatchMatchesMurmur2(t *testing.T) {
	rng := xrand.NewXoshiro256(7)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1000} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Next()
		}
		out := make([]uint64, n)
		HashBatch(keys, out)
		for i, k := range keys {
			if want := Murmur2(k); out[i] != want {
				t.Fatalf("n=%d key[%d]=%#x: HashBatch %#x, Murmur2 %#x", n, i, k, out[i], want)
			}
		}
	}
}

// TestHashBatchAllocFree pins the kernel as allocation-free.
func TestHashBatchAllocFree(t *testing.T) {
	keys := make([]uint64, 4096)
	out := make([]uint64, 4096)
	if avg := testing.AllocsPerRun(10, func() { HashBatch(keys, out) }); avg != 0 {
		t.Fatalf("HashBatch allocates %.1f objects per call, want 0", avg)
	}
}
