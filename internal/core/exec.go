package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cacheagg/internal/agg"
	"cacheagg/internal/global"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/hashtable"
	"cacheagg/internal/memgov"
	"cacheagg/internal/partition"
	"cacheagg/internal/runs"
	"cacheagg/internal/sched"
	"cacheagg/internal/trace"
)

// scratchRows is the block size of the intake loop: hashes and initial
// aggregate states of up to this many rows are materialized at a time
// before being handed to a routine. The block stays cache resident.
const scratchRows = 4096

// exec holds one execution's shared state.
type exec struct {
	cfg     Config
	in      *Input
	layout  *agg.Layout
	wordOps []agg.WordOp
	kern    *agg.Kernels // batch kernels, resolved once per run
	words   int

	cacheRows int // capacity of a cache-sized table
	finalRows int // its fill limit: the leaf threshold of the recursion
	tableRows int // worker-table capacity: cacheRows, or the plan's pre-size

	// Sketch plan (nil when planning is off). hot is the executor's
	// exact-match view of the plan's heavy-hitter keys; refCols lists the
	// input columns the aggregate layout actually reads (the only ones the
	// bypass compaction must copy).
	plan    *Plan
	hot     *hotSet
	refCols []int

	// Memory governance: interRow is the byte cost of one materialized
	// intermediate-run row, chunkRow of one output-chunk row. gov is nil
	// when no budget accounting was requested.
	gov        *memgov.Governor
	interRow   int64
	chunkRow   int64
	fixedBytes int64 // up-front reservation for per-worker machinery

	// tr is the optional execution tracer (nil when not observing).
	tr trace.Tracer

	// Three-way routine selection (routine.go). glob is the shared
	// concurrent table, non-nil only for global-routine runs; demoted
	// flips once when an auto-selected global run's observed α undershoots
	// and every worker's next morsel reverts to the partitioned path.
	routine       Routine
	routineAlpha  float64 // the α that drove the selection (0 = no plan)
	routineForced bool    // Config.Routine override: never demote
	glob          *global.Table
	demoted       atomic.Bool

	pool    *sched.Pool
	morsels *sched.Morsels
	workers []workerState
	kits    kitKey // pool key of this execution's worker kits

	rootMu sync.Mutex
	root   [hashfn.Fanout]runs.Bucket

	out collector
}

// workerState is the per-worker reusable machinery: one cache-sized hash
// table, one scatterer (whose SWC buffers are reused across tasks), and the
// intake scratch blocks. Tasks on one worker never interleave, so no
// locking is needed — the paper's share-nothing design.
type workerState struct {
	// id is the worker's pool index, stamped on emitted trace events.
	id    int
	table *hashtable.Table
	// finalTables are reusable leaf-finalization tables, keyed by
	// capacity: a leaf bucket of n rows gets the smallest power-of-two
	// table ≥ 4n (capped at the cache size), so the post-aggregation
	// emit scan touches ~4 slots per row instead of the whole
	// cache-sized table for every small leaf.
	finalTables map[int]*hashtable.Table
	// grownTables are the finalizeGrown equivalent (fill 0.5, capacity
	// keyed): fixed-pass strategies finalize every one of the 256 buckets
	// through finalizeGrown, and a fresh table per bucket means zeroing
	// hundreds of MB per run. Tables up to a few cache sizes are retained;
	// genuinely oversized ones stay throwaway.
	grownTables map[int]*hashtable.Table
	scat        *partition.Scatterer

	hashScratch  []uint64
	stateScratch [][]uint64 // words × scratchRows, for intake partitioning
	stateViews   [][]uint64 // reusable column-view scratch
	rowScratch   []uint64   // one packed state row

	// mem is the worker's reservation cache against the shared governor
	// (nil-safe no-op when no governor is configured).
	mem *memgov.Cache

	// Hot-key bypass state (allocated only when the plan selected hot
	// keys, never pooled — it is a few KiB). hotAcc holds the scalar
	// accumulators; coldKeys/coldCols/coldIdx are the compaction scratch
	// the cold remainder of each block is gathered into before dispatch.
	hotAcc   *hotAccums
	coldKeys []uint64
	coldCols [][]int64
	coldIdx  []int32

	// Global-routine escape scratch (allocated only for global runs):
	// escIdx receives the batch-relative indices of rows the shared table
	// could not absorb; escKeys/escCols are the gather destination before
	// the escaped rows re-enter the private dispatch loop.
	escIdx  []int32
	escKeys []uint64
	escCols [][]int64

	stats workerStats
}

// workerKit is the allocation-heavy part of one worker's machinery — the
// cache-sized table alone is ~1 MiB of zeroed memory — recycled across
// executions through a config-keyed pool. A kit is returned to the pool
// only after a cleanly completed run (never on error, cancellation, or
// panic), at which point nothing escapes the execution that references it:
// results are materialized by copy in emitTable/assemble.
type workerKit struct {
	table        *hashtable.Table
	finalTables  map[int]*hashtable.Table
	grownTables  map[int]*hashtable.Table
	scat         *partition.Scatterer
	hashScratch  []uint64
	stateScratch [][]uint64
	stateViews   [][]uint64
	rowScratch   []uint64
}

// kitKey pins every size- or layout-relevant parameter of a kit; kits are
// only reused by executions with the identical key. tableRows joins the
// key because the plan may pre-size the worker table below cacheRows.
type kitKey struct {
	cacheRows int
	tableRows int
	words     int
	maxFill   float64
	carry     bool
	chunkRows int
}

// kitPools maps kitKey → *sync.Pool of *workerKit. sync.Pool gives free
// cross-goroutine reuse and lets the GC drop idle kits under pressure.
var kitPools sync.Map

func kitPool(key kitKey) *sync.Pool {
	if p, ok := kitPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := kitPools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

func newExec(cfg Config, in *Input) (*exec, error) {
	lay := agg.NewLayout(in.Specs)
	e := &exec{
		cfg:     cfg,
		in:      in,
		layout:  lay,
		wordOps: lay.WordOps(),
		kern:    lay.Kernels(),
		words:   lay.Words,
		gov:     cfg.Governor,
		tr:      cfg.Tracer,
	}
	e.cacheRows = hashtable.CapacityForCache(cfg.CacheBytes, e.words)
	if e.cacheRows < hashfn.Fanout*hashtable.MinBlockRows {
		e.cacheRows = hashfn.Fanout * hashtable.MinBlockRows
	}
	// Sketch plan: table pre-size and hot-key bypass. The plan is advisory
	// throughout — a corrupt injected plan can at worst waste a few
	// accumulators or split tables more often, never change results.
	e.plan = cfg.Plan
	e.tableRows = e.cacheRows
	if rows := e.plan.sanitizedTableRows(e.cacheRows); rows != 0 {
		e.tableRows = rows
	}
	if e.plan != nil {
		e.hot = newHotSet(e.plan.HotKeys)
	}
	seen := make(map[int]bool)
	for _, c := range e.kern.Cols {
		if c >= 0 && !seen[c] {
			seen[c] = true
			e.refCols = append(e.refCols, c)
		}
	}
	// The leaf threshold: the fused final pass may fill its table up to
	// half (vs the routine tables' 25 %) — the paper's "factor B more
	// partitions" optimization, bounded at 50 % to keep probing cheap.
	e.finalRows = e.cacheRows / 2
	if e.finalRows < 1 {
		e.finalRows = 1
	}
	// One intermediate-run row materializes its key and state words, plus
	// the hash when runs carry hashes; one output-chunk row always carries
	// hash + key + state.
	e.interRow = int64(8 * (1 + e.words))
	if cfg.CarryHashes {
		e.interRow += 8
	}
	e.chunkRow = int64(8 * (2 + e.words))
	e.pool = sched.NewPool(cfg.Workers)
	// Three-way routine selection (routine.go). Sort-spill refuses the run
	// with the typed budget error before anything is reserved, so the
	// caller degrades to the external path without burning a pass. A
	// refused global-table reservation falls back to partitioned.
	e.routine, e.routineAlpha = e.selectRoutine()
	e.routineForced = cfg.Routine == e.routine && cfg.Routine != RoutineAuto
	if e.routine == RoutineSortSpill {
		if e.tr != nil {
			e.tr.Emit(trace.KindRoutineSelect, 0, 0, int64(RoutineSortSpill), e.routineAlpha)
		}
		return nil, fmt.Errorf("core: routine selector chose sort-spill (α̂=%.1f): %w",
			e.routineAlpha, ErrMemoryBudget)
	}
	if e.routine == RoutineGlobal && !e.setupGlobal() {
		e.routine = RoutinePartitioned
	}
	e.workers = make([]workerState, e.pool.Workers())
	e.kits = kitKey{
		cacheRows: e.cacheRows,
		tableRows: e.tableRows,
		words:     e.words,
		maxFill:   cfg.MaxFill,
		carry:     cfg.CarryHashes,
		chunkRows: cfg.ChunkRows,
	}
	kp := kitPool(e.kits)
	for w := range e.workers {
		ws := &e.workers[w]
		ws.id = w
		if k, _ := kp.Get().(*workerKit); k != nil {
			ws.table = k.table
			ws.finalTables = k.finalTables
			ws.grownTables = k.grownTables
			ws.scat = k.scat
			ws.hashScratch = k.hashScratch
			ws.stateScratch = k.stateScratch
			ws.stateViews = k.stateViews
			ws.rowScratch = k.rowScratch
			if e.gov != nil {
				// Budgeted runs account retained leaf tables as they are
				// (re)created; starting from empty maps keeps the up-front
				// reservation — and thus the degradation behavior —
				// identical to a fresh execution.
				clear(ws.finalTables)
				clear(ws.grownTables)
			}
		} else {
			ws.table = hashtable.New(hashtable.Config{
				CapacityRows:     e.tableRows,
				Blocks:           hashfn.Fanout,
				MaxFill:          cfg.MaxFill,
				Words:            e.words,
				OmitHashesInRuns: !cfg.CarryHashes,
			})
			ws.finalTables = make(map[int]*hashtable.Table)
			ws.grownTables = make(map[int]*hashtable.Table)
			ws.scat = partition.New(partition.Config{
				Level:      0,
				Words:      e.words,
				ChunkRows:  cfg.ChunkRows,
				DropHashes: !cfg.CarryHashes,
			})
			ws.hashScratch = make([]uint64, scratchRows)
			ws.stateScratch = make([][]uint64, e.words)
			for i := range ws.stateScratch {
				ws.stateScratch[i] = make([]uint64, scratchRows)
			}
			ws.stateViews = make([][]uint64, e.words)
			ws.rowScratch = make([]uint64, e.words)
		}
		if e.hot != nil {
			ws.hotAcc = newHotAccums(len(e.hot.keys), e.words)
			ws.coldKeys = make([]uint64, scratchRows)
			ws.coldIdx = make([]int32, 0, scratchRows)
			ws.coldCols = make([][]int64, len(in.AggCols))
			for _, c := range e.refCols {
				ws.coldCols[c] = make([]int64, scratchRows)
			}
		}
		if e.glob != nil {
			ws.escIdx = make([]int32, 0, scratchRows)
			ws.escKeys = make([]uint64, scratchRows)
			ws.escCols = make([][]int64, len(in.AggCols))
			for _, c := range e.refCols {
				ws.escCols[c] = make([]int64, scratchRows)
			}
		}
		ws.mem = e.gov.NewCache(0)
	}
	if e.gov != nil {
		// Register the fixed per-worker machinery up front: the cache-sized
		// table, the intake scratch blocks, and the scatterer's SWC buffers.
		// If even that doesn't fit the budget, fail before touching the
		// input so the caller can degrade immediately.
		fixed := int64(0)
		for w := range e.workers {
			ws := &e.workers[w]
			fixed += ws.table.FootprintBytes()
			fixed += int64(scratchRows * 8)           // hashScratch
			fixed += int64(e.words * scratchRows * 8) // stateScratch
			fixed += int64(e.words * 8)               // rowScratch
			fixed += int64(hashfn.Fanout * partition.DefaultBufRows * 8 * (2 + e.words))
			if e.hot != nil {
				fixed += int64(scratchRows * (8 + 4))                 // coldKeys + coldIdx
				fixed += int64(len(e.refCols) * scratchRows * 8)      // coldCols
				fixed += int64(len(e.hot.keys) * (e.words*8 + 8 + 1)) // accumulators
			}
			if e.glob != nil {
				fixed += int64(scratchRows * (8 + 4))            // escKeys + escIdx
				fixed += int64(len(e.refCols) * scratchRows * 8) // escCols
			}
		}
		if !e.gov.TryReserve(fixed) {
			if e.glob != nil {
				// The shared table was reserved by setupGlobal; give it back
				// before failing (releaseAccounting is not armed yet).
				e.gov.Release(e.glob.FootprintBytes())
			}
			return nil, e.gov.BudgetError("core: per-worker machinery", fixed)
		}
		e.fixedBytes = fixed
	}
	return e, nil
}

// recycle hands the workers' kits back to the config-keyed pool. Called
// only after a cleanly completed execution: error, cancellation, and panic
// paths drop the kits instead (a worker that died mid-task may have rows
// buffered in its scatterer, which the next run's Reset would refuse).
func (e *exec) recycle() {
	kp := kitPool(e.kits)
	for w := range e.workers {
		ws := &e.workers[w]
		if ws.table == nil {
			continue
		}
		kp.Put(&workerKit{
			table:        ws.table,
			finalTables:  ws.finalTables,
			grownTables:  ws.grownTables,
			scat:         ws.scat,
			hashScratch:  ws.hashScratch,
			stateScratch: ws.stateScratch,
			stateViews:   ws.stateViews,
			rowScratch:   ws.rowScratch,
		})
		ws.table = nil
	}
}

// releaseAccounting returns everything this execution reserved — fixed
// machinery and all net worker reservations — so a governor shared across
// sequential runs (the external operator's chunk loop) starts each run from
// a clean ledger. The high-water mark is unaffected.
func (e *exec) releaseAccounting() {
	if e.gov == nil {
		return
	}
	total := e.fixedBytes
	for w := range e.workers {
		ws := &e.workers[w]
		ws.mem.Flush()
		total += ws.mem.Net()
	}
	if e.glob != nil {
		// Initial reservation (setupGlobal) plus every growth delta the
		// table reserved itself — the footprint covers both.
		total += e.glob.FootprintBytes()
	}
	e.gov.Release(total)
}

// checkBudget flushes the worker's reservation cache and, when the run has
// gone over budget, aborts it with a typed ErrMemoryBudget failure. Called
// at morsel and task boundaries — the overshoot between two checks is at
// most one morsel of production per worker, the documented budget slack.
func (e *exec) checkBudget(ctx *sched.Ctx, ws *workerState) bool {
	if e.gov == nil {
		return true
	}
	ws.mem.Flush()
	if e.gov.OverBudget() {
		ctx.Fail(fmt.Errorf("core: working set %d of %d bytes: %w",
			e.gov.Reserved(), e.gov.Budget(), ErrMemoryBudget))
		return false
	}
	return true
}

// run executes the two phases: parallel intake, then parallel recursion.
// A cancelled context or a panicking task aborts the run and is returned
// as the error; the partially built state is simply discarded.
func (e *exec) run(ctx context.Context) error {
	if e.tr != nil && e.plan != nil {
		// Part = bypass-set size, Value = K̂; the companion decisions are
		// in Stats (and the per-key bypass volumes in KindHotKeyBypass).
		e.tr.Emit(trace.KindPlan, 0, 0, int64(len(e.plan.HotKeys)), e.plan.EstimatedK)
	}
	if e.tr != nil {
		// The run's committed routine (demotion re-emits with the observed α).
		e.tr.Emit(trace.KindRoutineSelect, 0, 0, int64(e.routine), e.routineAlpha)
	}
	// Phase A — intake: split the input into runs (Algorithm 2, line 5).
	e.morsels = sched.NewMorsels(len(e.in.Keys), e.cfg.MorselRows)
	nWorkers := e.pool.Workers()
	t0 := e.stamp()
	if err := e.pool.RunContext(ctx, func(ctx *sched.Ctx) {
		// One intake task per worker; morsel stealing balances them.
		for w := 1; w < nWorkers; w++ {
			ctx.Spawn(e.intake)
		}
		e.intake(ctx)
	}); err != nil {
		return err
	}
	e.lap(t0, trace.PhaseIntake)
	// Global routine: publish the shared table's groups into the root
	// buckets as per-digit aggregated runs (single-threaded between the
	// phases, after the pool joined — the table is quiescent).
	e.drainGlobal()

	// Phase B — recursion into the buckets (Algorithm 2, line 8), spawned
	// largest-first. Task spawn order is the partition assignment of the
	// work-stealing pool: under skew, digit order could queue the hottest
	// bucket behind hundreds of small ones and leave its (deep, serial
	// at the root) recursion to finish alone after everything else —
	// largest-first bounds the makespan by starting the big buckets while
	// the small ones backfill the idle workers. Output order is
	// unaffected: assemble sorts chunks by hash prefix.
	return e.pool.RunContext(ctx, func(ctx *sched.Ctx) {
		type rootTask struct{ d, rows int }
		order := make([]rootTask, 0, hashfn.Fanout)
		for d := range e.root {
			if n := e.root[d].Rows(); n > 0 {
				order = append(order, rootTask{d, n})
			}
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].rows != order[j].rows {
				return order[i].rows > order[j].rows
			}
			return order[i].d < order[j].d
		})
		for _, rt := range order {
			b := &e.root[rt.d]
			prefix := uint64(rt.d)
			ctx.Spawn(func(c *sched.Ctx) { e.processBucket(c, b, 1, prefix) })
		}
	})
}

// sliceStates fills the worker's reusable view scratch with states[w][lo:hi].
func (ws *workerState) sliceStates(states [][]uint64, lo, hi int) [][]uint64 {
	for w := range ws.stateViews {
		ws.stateViews[w] = states[w][lo:hi]
	}
	return ws.stateViews
}

// intake is one worker's main loop over the input: grab morsels, run the
// strategy's decision loop on raw rows, produce level-0 runs.
//
// With a plan installed, two things change. The strategy may start in
// partitioning mode (ADAPTIVE's low-α switch, taken up front from the
// predicted reduction factor instead of after filling a table for
// nothing). And when the plan selected hot keys, each block is first
// compacted: hot rows fold into per-worker scalar accumulators (flushed
// below as one-row pre-aggregated runs), only the cold remainder reaches
// the table/scatter dispatch.
func (e *exec) intake(ctx *sched.Ctx) {
	ws := &e.workers[ctx.Worker]
	ws.stats.tasks++
	st := e.cfg.Strategy.NewState(0, e.cacheRows)
	if p := e.plan; p != nil && p.StartPartition {
		if as, ok := st.(*adaptiveState); ok {
			as.partitioning = true
			as.left = as.budget
		}
	}
	table := ws.table
	table.Reset()
	table.SetLevel(0)
	scat := ws.scat
	scat.Reset(0)
	var local [hashfn.Fanout]runs.Bucket

	keys := e.in.Keys
	cols := e.in.AggCols
	for {
		// Cancellation/abort and the memory budget are observed once per
		// morsel: a cancelled or over-budget run stops within one morsel
		// of work per worker, and its partial output is never published.
		if ctx.Aborted() {
			return
		}
		if !e.checkBudget(ctx, ws) {
			return
		}
		lo, hi, ok := e.morsels.Next()
		if !ok {
			break
		}
		e.timed(ws, 0, func() {
			if e.usingGlobal() {
				e.globalIntakeMorsel(ws, st, keys, cols, lo, hi, &local)
				e.maybeDemote(ws)
			} else if e.hot == nil {
				e.dispatchRaw(ws, st, table, scat, keys, cols, lo, hi, &local)
			} else {
				for blkLo := lo; blkLo < hi; blkLo += scratchRows {
					blkHi := min(blkLo+scratchRows, hi)
					m := e.compactCold(ws, keys, cols, blkLo, blkHi)
					e.dispatchRaw(ws, st, table, scat, ws.coldKeys, ws.coldCols, 0, m, &local)
				}
			}
			ws.stats.levelRows[0] += int64(hi - lo)
		})
	}

	// Flush residual state into the local buckets.
	e.timed(ws, 0, func() {
		t0 := e.stamp()
		if table.Len() > 0 {
			ws.mem.Reserve(int64(table.Len()) * e.interRow)
			splits := table.SplitRuns()
			for d, r := range splits {
				local[d].Add(r)
			}
		}
		scat.Flush()
		views := make([]*runs.Bucket, hashfn.Fanout)
		for d := range local {
			views[d] = &local[d]
		}
		scat.SealInto(views)
		e.flushHotAccums(ws, &local)
		e.lap(t0, trace.PhaseSplit)
	})

	// Publish into the shared root buckets (the only intake-side
	// synchronization, once per worker).
	e.rootMu.Lock()
	for d := range local {
		e.root[d].AddAll(&local[d])
	}
	e.rootMu.Unlock()
}

// dispatchRaw runs the strategy's decision loop over raw rows [lo, hi) of
// the given key/column slices — the shared inner loop of the direct and the
// bypass-compacted intake paths.
func (e *exec) dispatchRaw(ws *workerState, st StrategyState, table *hashtable.Table,
	scat *partition.Scatterer, keys []uint64, cols [][]int64, lo, hi int,
	local *[hashfn.Fanout]runs.Bucket) {
	i := lo
	for i < hi {
		switch st.NextMode() {
		case ModePartition:
			blk := min(hi-i, scratchRows)
			t0 := e.stamp()
			e.scatterRaw(ws, scat, keys, cols, i, i+blk)
			e.lap(t0, trace.PhaseScatter)
			st.OnPartitioned(blk)
			ws.stats.partitionedRows += int64(blk)
			i += blk
		default: // ModeHash (ModeFinal cannot occur at intake)
			i = e.hashRaw(ws, st, table, keys, cols, i, hi, local)
		}
	}
}

// compactCold splits block [lo, hi) of the input into hot and cold rows:
// hot rows (exact key match against the plan's bypass set) fold into the
// worker's scalar accumulators, cold rows are gathered — keys and the
// referenced aggregate columns — into the worker's compaction scratch.
// Returns the number of cold rows.
func (e *exec) compactCold(ws *workerState, keys []uint64, cols [][]int64, lo, hi int) int {
	hot := e.hot
	acc := ws.hotAcc
	lut := &hot.lut
	hk := hot.keys
	idx := ws.coldIdx[:0]
	ck := ws.coldKeys
	m := 0
	// Distinct queries carry no state words: hot rows only need a counter,
	// and cold rows need no index for the (empty) column gather. The split
	// keeps both loops free of per-row calls — the classifier's home-slot
	// probe is inlined; only probe-chain collisions take the call.
	if len(e.wordOps) == 0 {
		for r := lo; r < hi; r++ {
			k := keys[r]
			j := int(lut[hotSlot(k)])
			if j >= 0 && hk[j] != k {
				j = hot.lookup(k)
			}
			if j >= 0 {
				acc.touched[j] = true
				acc.rows[j]++
				continue
			}
			ck[m] = k
			m++
		}
		return m
	}
	for r := lo; r < hi; r++ {
		k := keys[r]
		j := int(lut[hotSlot(k)])
		if j >= 0 && hk[j] != k {
			j = hot.lookup(k)
		}
		if j >= 0 {
			acc.fold(e.wordOps, j, cols, r)
			continue
		}
		ck[m] = k
		idx = append(idx, int32(r))
		m++
	}
	// Column-major gather of the cold rows' referenced aggregate inputs.
	for _, c := range e.refCols {
		dst := ws.coldCols[c]
		src := cols[c]
		for x, r := range idx {
			dst[x] = src[r]
		}
	}
	ws.coldIdx = idx
	return m
}

// flushHotAccums publishes the worker's touched hot-key accumulators as
// one-row pre-aggregated runs into the local level-0 buckets, routed by the
// hash digit exactly like table splits — downstream merging needs no
// special case, and output order is identical to the unplanned path. The
// state words are copied (the runs outlive the accumulators, which are
// reset so a worker running several intake tasks cannot double-publish).
func (e *exec) flushHotAccums(ws *workerState, local *[hashfn.Fanout]runs.Bucket) {
	acc := ws.hotAcc
	if acc == nil {
		return
	}
	for j := range acc.touched {
		if !acc.touched[j] {
			continue
		}
		key, hash := e.hot.keys[j], e.hot.hashes[j]
		r := &runs.Run{
			Keys:       []uint64{key},
			States:     make([][]uint64, e.words),
			Aggregated: true,
		}
		for w := 0; w < e.words; w++ {
			r.States[w] = []uint64{acc.states[j][w]}
		}
		if e.cfg.CarryHashes {
			r.Hashes = []uint64{hash}
		}
		local[hashfn.Digit(hash, 0)].Add(r)
		ws.mem.Reserve(e.interRow)
		ws.stats.hotRows += acc.rows[j]
		if e.tr != nil {
			e.tr.Emit(trace.KindHotKeyBypass, ws.id, 0, int64(key), float64(acc.rows[j]))
		}
		acc.touched[j] = false
		acc.rows[j] = 0
	}
}

// hashRaw inserts raw input rows [i, hi) into the table until the table
// fills or the range is exhausted; on fill it splits the table into the
// local buckets and informs the strategy. Returns the index of the first
// unconsumed row.
//
// The loop is batch-at-a-time: a whole block's hashes are computed in one
// morsel-wide kernel before any table access, then the block is absorbed by
// the software-pipelined batch insert. Only a table-fill event (rare: once
// per cache-sized table) drops back to per-event bookkeeping.
func (e *exec) hashRaw(ws *workerState, st StrategyState, table *hashtable.Table,
	keys []uint64, cols [][]int64, i, hi int, local *[hashfn.Fanout]runs.Bucket) int {
	t0 := e.stamp()
	for i < hi {
		blk := min(hi-i, scratchRows)
		hs := ws.hashScratch[:blk]
		hashfn.HashBatch(keys[i:i+blk], hs)
		done := 0
		for done < blk {
			n := table.InsertRawBatch(hs[done:blk], keys[i+done:i+blk], cols, i+done, e.kern)
			done += n
			ws.stats.hashedRows += int64(n)
			if done == blk {
				break
			}
			// Table full at row i+done: split into the local buckets.
			e.lap(t0, trace.PhaseTableBuild)
			t0 = e.stamp()
			alpha := table.Alpha()
			ws.stats.tablesEmitted++
			ws.stats.alphaSum += alpha
			ws.mem.Reserve(int64(table.Len()) * e.interRow)
			splits := table.SplitRuns()
			for d, r := range splits {
				local[d].Add(r)
			}
			if e.tr != nil {
				e.tr.Emit(trace.KindTableSplit, ws.id, 0, -1, alpha)
			}
			st.OnTableEmit(alpha)
			if st.NextMode() != ModeHash {
				ws.stats.switches++
				if e.tr != nil {
					e.tr.Emit(trace.KindStrategySwitch, ws.id, 0, -1, alpha)
				}
				e.lap(t0, trace.PhaseSplit)
				return i + done // row not consumed; caller re-dispatches
			}
			e.lap(t0, trace.PhaseSplit)
			t0 = e.stamp()
			// Fresh table, retry the unconsumed tail of the block.
		}
		i += blk
	}
	e.lap(t0, trace.PhaseTableBuild)
	return i
}

// scatterRaw hashes a block of raw rows, materializes their initial
// aggregate states, and scatters them (the intake variant of the
// PARTITIONING routine).
func (e *exec) scatterRaw(ws *workerState, scat *partition.Scatterer,
	keys []uint64, cols [][]int64, lo, hi int) {
	n := hi - lo
	hs := ws.hashScratch[:n]
	hashfn.HashBatch(keys[lo:hi], hs)
	for w, op := range e.wordOps {
		dst := ws.stateScratch[w][:n]
		if op.Src == agg.SrcOne {
			for j := range dst {
				dst[j] = 1
			}
		} else {
			src := cols[op.Col][lo:hi]
			for j := range dst {
				dst[j] = uint64(src[j])
			}
		}
	}
	views := ws.sliceStates(ws.stateScratch, 0, n)
	scat.Scatter(hs, keys[lo:hi], views)
	ws.mem.Reserve(int64(n) * e.interRow)
}

// child is a sub-bucket produced by doBucket, awaiting recursion.
type child struct {
	b      *runs.Bucket
	prefix uint64
}

// processBucket is the recursive call of Algorithm 2 for one bucket at the
// given level; prefix is the bucket's fixed hash-digit path.
//
// Leaf-sized children are processed inline rather than spawned: spawning a
// task per 256th of a bucket would drown the scheduler in micro-tasks (the
// paper's equivalent is that its task recursion stops creating parallel
// work once buckets are small).
func (e *exec) processBucket(ctx *sched.Ctx, b *runs.Bucket, level int, prefix uint64) {
	if ctx.Aborted() {
		return
	}
	ws := &e.workers[ctx.Worker]
	ws.stats.tasks++
	if !e.checkBudget(ctx, ws) {
		return
	}
	n := b.Rows()
	if n == 0 {
		return
	}
	var children []child
	e.timed(ws, min(level, MaxPasses-1), func() {
		ws.stats.levelRows[min(level, MaxPasses-1)] += int64(n)
		children = e.doBucket(ctx, ws, b, level, prefix)
	})
	// The input bucket is consumed: its rows now live either in the
	// sub-buckets (reserved as they were re-materialized) or in the output
	// chunk (reserved by emitTable).
	ws.mem.Reserve(-int64(n) * e.interRow)
	// Spawn the oversized children largest-first so a skew-bloated child
	// enters the scheduler before its siblings: idle workers pick up the
	// long pole early instead of finding it last behind a queue of small
	// tasks. Results are unaffected — assemble orders chunks by sort key.
	big := children[:0]
	for _, c := range children {
		if c.b.Rows() <= e.finalRows {
			e.processBucket(ctx, c.b, level+1, c.prefix)
		} else {
			big = append(big, c)
		}
	}
	sort.Slice(big, func(i, j int) bool {
		ri, rj := big[i].b.Rows(), big[j].b.Rows()
		if ri != rj {
			return ri > rj
		}
		return big[i].prefix < big[j].prefix
	})
	for _, c := range big {
		c := c
		nextLevel := level + 1
		ctx.Spawn(func(cc *sched.Ctx) { e.processBucket(cc, c.b, nextLevel, c.prefix) })
	}
}

func (e *exec) doBucket(ctx *sched.Ctx, ws *workerState, b *runs.Bucket, level int, prefix uint64) []child {
	n := b.Rows()

	// Global-routine fast path: a bucket holding exactly one aggregated
	// run has all-distinct keys by construction (a shared-table drain, or
	// a single private-table split) — it IS the final result of this
	// bucket. Re-tabling it would be pure memory traffic; emit directly.
	// Gated on the global routine so partitioned runs keep their exact
	// historical behavior.
	if e.glob != nil && len(b.Runs) == 1 && b.Runs[0].Aggregated {
		e.emitRun(ws, b.Runs[0], prefix, level)
		return nil
	}

	// Out of hash digits: all rows share the full 64-bit hash. Finalize
	// with a table sized to the bucket (a 64-bit collision bucket is
	// tiny). The level is passed through unclamped so the chunk sort key
	// keeps the full 64-bit prefix; finalizeGrown clamps the table level
	// itself.
	if level >= hashfn.MaxLevels {
		e.finalizeGrown(ws, b, prefix, level)
		return nil
	}

	// Leaf rule: a bucket whose rows fit one cache-sized table (at the
	// relaxed leaf fill, the paper's fused final pass holding "a factor B
	// more partitions") certainly has few enough groups for a single
	// in-cache pass (groups ≤ rows), independent of the strategy.
	if n <= e.finalRows {
		e.finalizeLeaf(ws, b, level, prefix)
		return nil
	}

	st := e.cfg.Strategy.NewState(level, e.cacheRows)
	if st.NextMode() == ModeFinal {
		// Fixed-pass strategy demands its single growing hashing pass.
		e.finalizeGrown(ws, b, prefix, level)
		return nil
	}

	table := ws.table
	table.Reset()
	table.SetLevel(level)
	scat := ws.scat
	scat.Reset(level)
	sub := make([]runs.Bucket, hashfn.Fanout)
	pure := true // no table emitted, no scatter used → direct output legal
	usedScatter := false

	for _, r := range b.Runs {
		if ctx.Aborted() {
			return nil
		}
		i := 0
		for i < r.Len() {
			switch st.NextMode() {
			case ModePartition:
				blk := min(r.Len()-i, scratchRows)
				t0 := e.stamp()
				hs := r.Hashes
				if hs == nil {
					hs = ws.hashScratch[:blk]
					hashfn.HashBatch(r.Keys[i:i+blk], hs)
				} else {
					hs = hs[i : i+blk]
				}
				scat.Scatter(hs, r.Keys[i:i+blk], ws.sliceStates(r.States, i, i+blk))
				e.lap(t0, trace.PhaseScatter)
				st.OnPartitioned(blk)
				ws.stats.partitionedRows += int64(blk)
				ws.mem.Reserve(int64(blk) * e.interRow)
				i += blk
				pure = false
				usedScatter = true
			default: // ModeHash; ModeFinal cannot occur mid-bucket for our strategies
				var emitted bool
				i, emitted = e.hashRun(ws, st, table, r, i, sub, level, prefix)
				if emitted {
					pure = false
				}
			}
		}
	}

	if pure && table.Len() > 0 {
		// The single table absorbed the entire bucket: this IS the final
		// pass, fused with aggregation (Section 2.1's optimization).
		e.emitTable(ws, table, prefix, level)
		ws.stats.directEmits++
		return nil
	}

	t0 := e.stamp()
	if table.Len() > 0 {
		ws.mem.Reserve(int64(table.Len()) * e.interRow)
		splits := table.SplitRuns()
		for d, r := range splits {
			sub[d].Add(r)
		}
	}
	if usedScatter {
		views := make([]*runs.Bucket, hashfn.Fanout)
		for d := range sub {
			views[d] = &sub[d]
		}
		scat.SealInto(views)
	}
	e.lap(t0, trace.PhaseSplit)

	var children []child
	for d := range sub {
		if sub[d].Rows() == 0 {
			continue
		}
		children = append(children, child{b: &sub[d], prefix: prefix<<hashfn.DigitBits | uint64(d)})
	}
	return children
}

// hashRun inserts rows [start, …) of a run into the table until it fills or
// the run ends. On fill it splits the table into sub and informs the
// strategy; emitted reports whether a split happened.
//
// Like hashRaw, the loop is batch-at-a-time: carried hashes are consumed as
// block slices, recomputed hashes are materialized morsel-wide, and rows are
// absorbed through the software-pipelined batch merge.
func (e *exec) hashRun(ws *workerState, st StrategyState, table *hashtable.Table,
	r *runs.Run, start int, sub []runs.Bucket, level int, prefix uint64) (next int, emitted bool) {
	carried := r.Hashes != nil
	i := start
	n := r.Len()
	t0 := e.stamp()
	for i < n {
		blk := min(n-i, scratchRows)
		var hs []uint64
		if carried {
			hs = r.Hashes[i : i+blk]
		} else {
			hs = ws.hashScratch[:blk]
			hashfn.HashBatch(r.Keys[i:i+blk], hs)
		}
		done := 0
		for done < blk {
			m := table.InsertStateBatch(hs[done:blk], r.Keys[i+done:i+blk], r.States, i+done, e.kern)
			done += m
			ws.stats.hashedRows += int64(m)
			if done == blk {
				break
			}
			// Table full at row i+done: split and hand control back to the
			// caller's decision loop (matching the scalar path, which
			// returns after every emit).
			e.lap(t0, trace.PhaseTableBuild)
			t0 = e.stamp()
			alpha := table.Alpha()
			ws.stats.tablesEmitted++
			ws.stats.alphaSum += alpha
			ws.mem.Reserve(int64(table.Len()) * e.interRow)
			splits := table.SplitRuns()
			for d, run := range splits {
				sub[d].Add(run)
			}
			if e.tr != nil {
				e.tr.Emit(trace.KindTableSplit, ws.id, level, int64(prefix), alpha)
			}
			st.OnTableEmit(alpha)
			if st.NextMode() != ModeHash {
				ws.stats.switches++
				if e.tr != nil {
					e.tr.Emit(trace.KindStrategySwitch, ws.id, level, int64(prefix), alpha)
				}
			}
			e.lap(t0, trace.PhaseSplit)
			return i + done, true
		}
		i += blk
	}
	e.lap(t0, trace.PhaseTableBuild)
	return i, false
}

// leafTable returns a reusable worker-local table for finalizing a leaf
// bucket of n rows: capacity = smallest power of two ≥ 4n, capped at the
// cache size, unblocked (leaves never split), fill limit 0.55 — the fused
// final pass "allows us to hold a factor B more partitions" (Section 2.1).
func (e *exec) leafTable(ws *workerState, n, level int) *hashtable.Table {
	capRows := 256
	for capRows < 4*n && capRows < e.cacheRows {
		capRows <<= 1
	}
	t := ws.finalTables[capRows]
	if t == nil {
		t = hashtable.New(hashtable.Config{
			CapacityRows: capRows,
			Blocks:       1,
			MaxFill:      0.55,
			Words:        e.words,
		})
		ws.finalTables[capRows] = t
		// Retained across leaves as worker machinery.
		ws.mem.Reserve(t.FootprintBytes())
	}
	t.Reset()
	t.SetLevel(min(level, hashfn.MaxLevels-1))
	return t
}

// finalizeLeaf aggregates a leaf bucket with one in-cache hashing pass and
// emits the result. The table is sized to the bucket (emitting scans the
// whole table, so a cache-sized table would waste a full scan on a 64-row
// bucket). In the impossible-in-practice case of overflow it falls back to
// a grown throwaway table.
func (e *exec) finalizeLeaf(ws *workerState, b *runs.Bucket, level int, prefix uint64) {
	n := b.Rows()
	table := e.leafTable(ws, n, level)
	t0 := e.stamp()
	for _, r := range b.Runs {
		if !e.absorbRun(ws, table, r) {
			e.lap(t0, trace.PhaseTableBuild)
			table.Reset()
			e.finalizeGrown(ws, b, prefix, level)
			return
		}
	}
	e.lap(t0, trace.PhaseTableBuild)
	e.emitTable(ws, table, prefix, level)
	ws.stats.directEmits++
}

// absorbRun feeds an entire run through the batch merge path into table,
// reporting false if the table cannot hold it (caller falls back).
func (e *exec) absorbRun(ws *workerState, table *hashtable.Table, r *runs.Run) bool {
	carried := r.Hashes != nil
	n := r.Len()
	for i := 0; i < n; {
		blk := min(n-i, scratchRows)
		var hs []uint64
		if carried {
			hs = r.Hashes[i : i+blk]
		} else {
			hs = ws.hashScratch[:blk]
			hashfn.HashBatch(r.Keys[i:i+blk], hs)
		}
		m := table.InsertStateBatch(hs, r.Keys[i:i+blk], r.States, i, e.kern)
		ws.stats.hashedRows += int64(m)
		if m < blk {
			return false
		}
		i += blk
	}
	return true
}

// finalizeGrown aggregates a bucket with a single hashing pass whose
// unblocked table is sized to the bucket's row count, growing beyond the
// cache budget if necessary. Used for fixed-pass strategies (ModeFinal),
// for 64-bit hash-collision buckets, and as the leaf fallback.
func (e *exec) finalizeGrown(ws *workerState, b *runs.Bucket, prefix uint64, level int) {
	n := b.Rows()
	capRows := 64
	for capRows < 4*n {
		capRows *= 2
	}
	table := ws.grownTables[capRows]
	retained := table != nil
	if table == nil {
		table = hashtable.New(hashtable.Config{
			CapacityRows: capRows,
			Blocks:       1,
			MaxFill:      0.5,
			Words:        e.words,
		})
		ws.mem.Reserve(table.FootprintBytes())
		if capRows <= 4*e.cacheRows {
			// Retained across buckets as worker machinery.
			ws.grownTables[capRows] = table
			retained = true
		}
	}
	if !retained {
		defer ws.mem.Reserve(-table.FootprintBytes())
	}
	table.Reset()
	table.SetLevel(min(level, hashfn.MaxLevels-1))
	t0 := e.stamp()
	for _, r := range b.Runs {
		if !e.absorbRun(ws, table, r) {
			// Cannot happen: capacity ≥ 4·rows ≥ 4·groups with fill 0.5.
			panic("core: grown finalization table overflowed")
		}
	}
	e.lap(t0, trace.PhaseTableBuild)
	e.emitTable(ws, table, prefix, level)
	ws.stats.directEmits++
}

// emitRun converts one already-aggregated run into an output chunk without
// re-tabling it (the global-routine direct-emit path). Hashes are copied
// when the run carries them and recomputed otherwise. Within the chunk the
// rows keep the run's order — like emitTable, only the chunk-level prefix
// order matters for assembly.
func (e *exec) emitRun(ws *workerState, r *runs.Run, prefix uint64, level int) {
	n := r.Len()
	t0 := e.stamp()
	ch := chunk{
		sortKey: prefix << uint(64-hashfn.DigitBits*min(level, hashfn.MaxLevels)),
		hashes:  make([]uint64, n),
		keys:    make([]uint64, n),
		states:  make([][]uint64, e.words),
	}
	copy(ch.keys, r.Keys)
	if r.Hashes != nil {
		copy(ch.hashes, r.Hashes)
	} else {
		hashfn.HashBatch(r.Keys, ch.hashes)
	}
	for w := range ch.states {
		ch.states[w] = make([]uint64, n)
		copy(ch.states[w], r.States[w])
	}
	e.lap(t0, trace.PhaseSplit)
	if e.tr != nil {
		e.tr.Emit(trace.KindTableEmit, ws.id, level, int64(prefix), float64(n))
	}
	ws.stats.directEmits++
	ws.mem.Reserve(int64(n) * e.chunkRow)
	e.out.add(ch)
}

// emitTable converts the table's contents into an output chunk tagged with
// the bucket's prefix and hands it to the collector. Rows are emitted in
// block order, i.e. ordered by the next hash digit — concatenating all
// chunks in prefix order yields the hash-ordered result.
func (e *exec) emitTable(ws *workerState, table *hashtable.Table, prefix uint64, level int) {
	n := table.Len()
	t0 := e.stamp()
	ch := chunk{
		sortKey: prefix << uint(64-hashfn.DigitBits*min(level, hashfn.MaxLevels)),
		hashes:  make([]uint64, n),
		keys:    make([]uint64, n),
		states:  make([][]uint64, e.words),
	}
	for w := range ch.states {
		ch.states[w] = make([]uint64, n)
	}
	table.EmitColumns(ch.hashes, ch.keys, ch.states)
	table.Reset()
	e.lap(t0, trace.PhaseSplit)
	if e.tr != nil {
		e.tr.Emit(trace.KindTableEmit, ws.id, level, int64(prefix), float64(n))
	}
	// Output chunks are retained until assemble; they are part of the
	// run's footprint.
	ws.mem.Reserve(int64(n) * e.chunkRow)
	e.out.add(ch)
}
