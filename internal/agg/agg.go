// Package agg implements the aggregate-function framework of the operator.
//
// The framework (paper Section 3.1) requires aggregation states of size O(1)
// — true for distributive aggregates (COUNT, SUM, MIN, MAX) and algebraic
// ones (AVG) but not for holistic ones (MEDIAN), which the paper explicitly
// excludes. Because the operator mixes hashing (which pre-aggregates) with
// partitioning (which does not), intermediate runs may contain either raw
// input values or partial aggregates; merging two partial aggregates needs
// the *super-aggregate* function, which is not always the input-fold
// function: the super-aggregate of COUNT is SUM. This package keeps the two
// operations explicit: Fold consumes a raw input value, Merge combines two
// partial states.
package agg

import "fmt"

// Kind identifies an aggregate function.
type Kind int

const (
	// Count counts input rows; its super-aggregate is SUM of partial counts.
	Count Kind = iota
	// Sum sums 64-bit integer input values (wrapping on overflow, like SQL
	// engines operating on machine integers).
	Sum
	// Min keeps the minimum signed 64-bit input value.
	Min
	// Max keeps the maximum signed 64-bit input value.
	Max
	// Avg is the algebraic average: its state is a (sum, count) pair and it
	// finalizes to sum/count.
	Avg

	numKinds
)

// NumKinds is the number of supported aggregate kinds.
const NumKinds = int(numKinds)

// String returns the SQL name of the aggregate.
func (k Kind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is a supported aggregate kind.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Width returns the number of 64-bit state words the aggregate needs.
// All supported aggregates are O(1); AVG needs two words (sum and count).
func (k Kind) Width() int {
	if k == Avg {
		return 2
	}
	return 1
}

// Init writes the state corresponding to a single raw input value.
// state must have length Width().
func (k Kind) Init(state []uint64, value int64) {
	switch k {
	case Count:
		state[0] = 1
	case Sum, Min, Max:
		state[0] = uint64(value)
	case Avg:
		state[0] = uint64(value)
		state[1] = 1
	default:
		panic("agg: invalid kind")
	}
}

// Fold folds one raw input value into an existing state.
func (k Kind) Fold(state []uint64, value int64) {
	switch k {
	case Count:
		state[0]++
	case Sum:
		state[0] = uint64(int64(state[0]) + value)
	case Min:
		if value < int64(state[0]) {
			state[0] = uint64(value)
		}
	case Max:
		if value > int64(state[0]) {
			state[0] = uint64(value)
		}
	case Avg:
		state[0] = uint64(int64(state[0]) + value)
		state[1]++
	default:
		panic("agg: invalid kind")
	}
}

// Merge combines the partial state src into dst using the super-aggregate
// function: SUM for Count and Sum, MIN/MAX for Min/Max, and component-wise
// (sum, count) addition for Avg.
func (k Kind) Merge(dst, src []uint64) {
	switch k {
	case Count, Sum:
		dst[0] = uint64(int64(dst[0]) + int64(src[0]))
	case Min:
		if int64(src[0]) < int64(dst[0]) {
			dst[0] = src[0]
		}
	case Max:
		if int64(src[0]) > int64(dst[0]) {
			dst[0] = src[0]
		}
	case Avg:
		dst[0] = uint64(int64(dst[0]) + int64(src[0]))
		dst[1] += src[1]
	default:
		panic("agg: invalid kind")
	}
}

// FinalizeInt returns the integer result of the aggregate. For Avg it
// returns the truncated integer quotient; use FinalizeFloat for the exact
// average. A state with zero count (possible only through API misuse —
// groups always have at least one row) finalizes Avg to 0.
func (k Kind) FinalizeInt(state []uint64) int64 {
	switch k {
	case Count, Sum, Min, Max:
		return int64(state[0])
	case Avg:
		if state[1] == 0 {
			return 0
		}
		return int64(state[0]) / int64(state[1])
	default:
		panic("agg: invalid kind")
	}
}

// FinalizeFloat returns the result of the aggregate as a float64.
func (k Kind) FinalizeFloat(state []uint64) float64 {
	switch k {
	case Count, Sum, Min, Max:
		return float64(int64(state[0]))
	case Avg:
		if state[1] == 0 {
			return 0
		}
		return float64(int64(state[0])) / float64(int64(state[1]))
	default:
		panic("agg: invalid kind")
	}
}

// Spec describes one aggregate column of a query: which function to apply
// and which input column feeds it. Col indexes the caller's slice of
// aggregate input columns; it is ignored by Count (which consumes no input)
// but conventionally set to 0.
type Spec struct {
	Kind Kind
	Col  int
}

// String renders the spec like "SUM(col2)".
func (s Spec) String() string {
	if s.Kind == Count {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(col%d)", s.Kind, s.Col)
}

// Layout describes how the aggregate states of a query are packed into
// per-run state columns. Each Spec occupies Width() consecutive state
// columns; Layout records the starting offset of each.
type Layout struct {
	Specs   []Spec
	Offsets []int // Offsets[i] is the first state column of Specs[i]
	Words   int   // total number of state columns
}

// NewLayout computes the state layout for the given specs.
// It panics if any spec has an invalid kind or a negative input column,
// since such specs indicate a programming error in the caller.
func NewLayout(specs []Spec) *Layout {
	l := &Layout{Specs: append([]Spec(nil), specs...), Offsets: make([]int, len(specs))}
	for i, s := range specs {
		if !s.Kind.Valid() {
			panic(fmt.Sprintf("agg: invalid aggregate kind %d", int(s.Kind)))
		}
		if s.Col < 0 {
			panic(fmt.Sprintf("agg: negative input column %d", s.Col))
		}
		l.Offsets[i] = l.Words
		l.Words += s.Kind.Width()
	}
	return l
}

// MaxInputCol returns the highest input column index referenced by any
// non-Count spec, or -1 if no input columns are needed.
func (l *Layout) MaxInputCol() int {
	max := -1
	for _, s := range l.Specs {
		if s.Kind != Count && s.Col > max {
			max = s.Col
		}
	}
	return max
}

// InitRow initializes all aggregate states of one row. states is the packed
// state vector of length l.Words; values[i] is the raw input value of input
// column i for this row.
func (l *Layout) InitRow(states []uint64, values func(col int) int64) {
	for i, s := range l.Specs {
		off := l.Offsets[i]
		var v int64
		if s.Kind != Count {
			v = values(s.Col)
		}
		s.Kind.Init(states[off:off+s.Kind.Width()], v)
	}
}

// FoldRow folds one raw input row into the packed state vector.
func (l *Layout) FoldRow(states []uint64, values func(col int) int64) {
	for i, s := range l.Specs {
		off := l.Offsets[i]
		var v int64
		if s.Kind != Count {
			v = values(s.Col)
		}
		s.Kind.Fold(states[off:off+s.Kind.Width()], v)
	}
}

// MergeRow merges the packed partial state vector src into dst.
func (l *Layout) MergeRow(dst, src []uint64) {
	for i, s := range l.Specs {
		off := l.Offsets[i]
		s.Kind.Merge(dst[off:off+s.Kind.Width()], src[off:off+s.Kind.Width()])
	}
}

// FinalizeRow converts a packed state vector into one int64 result per spec,
// appending to out and returning the extended slice.
func (l *Layout) FinalizeRow(states []uint64, out []int64) []int64 {
	for i, s := range l.Specs {
		off := l.Offsets[i]
		out = append(out, s.Kind.FinalizeInt(states[off:off+s.Kind.Width()]))
	}
	return out
}
