// Outofcore: aggregation with bounded memory — the disk level of the
// external memory model.
//
// The paper's cost analysis (Section 2) "holds in the cache setting as
// well as in the disk-based setting". This example runs the same GROUP BY
// twice: fully in memory, and with a memory budget of 1/16 of the input,
// which forces the operator to pre-aggregate chunk-wise and spill partial
// groups to hash-partitioned temp files (classic grace aggregation, with
// the paper's adaptive operator as the in-RAM leaf).
//
// Watch the spill statistics: on the skewed half of the input, chunk-level
// early aggregation shrinks the spilled volume far below N — the same
// α-effect the ADAPTIVE strategy exploits one level down.
//
// Run with: go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"time"

	"cacheagg"
	"cacheagg/internal/datagen"
)

func main() {
	const n = 4 << 20

	run := func(label string, keys []uint64) {
		in := cacheagg.Input{
			GroupBy:    keys,
			Aggregates: []cacheagg.AggSpec{{Func: cacheagg.Count}},
		}
		start := time.Now()
		mem, err := cacheagg.Aggregate(in, cacheagg.Options{})
		if err != nil {
			log.Fatal(err)
		}
		memTime := time.Since(start)

		start = time.Now()
		ext, err := cacheagg.AggregateExternal(in, cacheagg.Options{}, cacheagg.ExternalOptions{
			MemoryBudgetRows: n / 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		extTime := time.Since(start)

		if mem.Len() != ext.Len() {
			log.Fatalf("mismatch: %d vs %d groups", mem.Len(), ext.Len())
		}
		fmt.Printf("%-22s %9d groups | in-memory %8v | out-of-core %8v, %2d chunks, %5.1f MiB spilled, %d merge level(s)\n",
			label, mem.Len(), memTime.Round(time.Millisecond), extTime.Round(time.Millisecond),
			ext.Stats.Chunks, float64(ext.Stats.SpilledBytes)/(1<<20), ext.Stats.MergeLevels)
	}

	run("uniform, K=2^21", datagen.Generate(datagen.Spec{
		Dist: datagen.Uniform, N: n, K: 2 << 20, Seed: 1,
	}))
	run("self-similar (80-20)", datagen.Generate(datagen.Spec{
		Dist: datagen.SelfSimilar, N: n, K: 2 << 20, Seed: 1,
	}))
	run("sorted, K=2^21", datagen.Generate(datagen.Spec{
		Dist: datagen.Sorted, N: n, K: 2 << 20, Seed: 1,
	}))
}
