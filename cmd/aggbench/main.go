// Command aggbench regenerates the data behind every table and figure of
// the paper "Cache-Efficient Aggregation: Hashing Is Sorting" (SIGMOD 2015)
// on the host machine.
//
// Usage:
//
//	aggbench <figure> [flags]
//
// Figures:
//
//	fig1        cache-line-transfer model curves (+ -sim for the empirical
//	            cache-simulator validation at reduced scale)
//	fig3        partitioning micro-benchmarks (software write-combining steps)
//	fig4        pass breakdown of HashingOnly / PartitionAlways(1,2) vs K
//	fig5        Adaptive vs the illustrative strategies vs K
//	fig6        speedup vs number of workers
//	fig7        element time vs number of aggregate columns
//	fig8        comparison with prior work (HYBRID, ATOMIC, INDEPENDENT,
//	            PARTITION-AND-AGGREGATE, PLAT) vs K
//	fig9        Adaptive on all data distributions vs K
//	fig10       HashingOnly vs PartitionOnly as a function of observed α
//	fig11       impact of the amortization constant c on Adaptive
//	tbl-insert  hash-table insertion cost (Section 4.1's < 6 ns/element)
//	tbl-sortdual  classic sort-based aggregation vs the operator
//	tbl-columnar  Section 3.3's three column-processing models
//	interference  Section 6.2's co-runner experiment
//	sweep       standard hot-path sweep (uniform-K strategies + multi-column
//	            SUM); -json writes one machine-readable record per point
//	skew        skewed-distribution sweep with sketch planning off vs on
//	            (heavy-hitter, zipf, moving-cluster + uniform control);
//	            same -json / -trace-dir record schema as sweep
//	external    out-of-core sweep (budget × K grid, sequential vs parallel
//	            merge, spill forced); -json emits the same record schema
//	global      routine sweep: partitioned vs lock-free shared global table
//	            vs ADAPTIVE's pick, interleaved medians; -host widens it
//	            across worker counts and tags -json as a bare-metal profile
//	all         run everything at the default scale
//
// Common flags (defaults target a quick laptop run; raise -logn toward the
// paper's 2^31-2^32 rows on a big machine):
//
//	-logn N      input size 2^N rows        (default 20)
//	-workers P   worker threads             (default GOMAXPROCS)
//	-cache B     cache budget bytes/worker  (default 1 MiB, scaled-down L3 share)
//	-reps R      repetitions, median taken  (default 3; paper uses 10)
//	-tsv         machine-readable TSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"cacheagg/internal/bench"
)

// scale bundles the experiment scale parameters shared by all figures.
type scale struct {
	logN    int
	n       int
	workers int
	cache   int
	reps    int
	tsv     bool
	sim     bool
	host    bool
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	logN := fs.Int("logn", 20, "input size exponent: N = 2^logn rows")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker threads")
	cache := fs.Int("cache", 1<<20, "cache budget in bytes per worker")
	reps := fs.Int("reps", 3, "repetitions per measurement (median reported)")
	tsv := fs.Bool("tsv", false, "emit TSV instead of aligned tables")
	sim := fs.Bool("sim", false, "fig1: also run the cache-simulator validation")
	host := fs.Bool("host", false, "host profile: widen the global sweep across worker counts and tag -json metadata as a bare-metal run")
	jsonPath := fs.String("json", "", "write machine-readable sweep records to this file (sweep command)")
	traceFlag := fs.String("trace-dir", "", "write one JSONL execution trace per sweep point into this directory (sweep/external)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken at exit to this file")
	if cmd == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *traceFlag != "" {
		if err := os.MkdirAll(*traceFlag, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: -trace-dir: %v\n", err)
			os.Exit(1)
		}
		traceDir = *traceFlag
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aggbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "aggbench: -memprofile: %v\n", err)
			}
		}()
	}
	if *jsonPath != "" {
		defer func() {
			if err := writeSweepJSON(*jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "aggbench: -json: %v\n", err)
			}
		}()
	}
	sc := scale{
		logN:    *logN,
		n:       1 << uint(*logN),
		workers: *workers,
		cache:   *cache,
		reps:    *reps,
		tsv:     *tsv,
		sim:     *sim,
		host:    *host,
	}
	hostProfile = *host

	figures := map[string]func(scale) []*bench.Table{
		"fig1":         fig1,
		"fig3":         fig3,
		"fig4":         fig4,
		"fig5":         fig5,
		"fig6":         fig6,
		"fig7":         fig7,
		"fig8":         fig8,
		"fig9":         fig9,
		"fig10":        fig10,
		"fig11":        fig11,
		"tbl-insert":   tblInsert,
		"tbl-sortdual": tblSortDual,
		"tbl-columnar": tblColumnar,
		"interference": fig6Interference,
		"ablation":     tblAblation,
		"sweep":        sweep,
		"skew":         skewSweep,
		"external":     externalSweep,
		"global":       globalSweep,
	}

	emit := func(tables []*bench.Table) {
		for _, t := range tables {
			if sc.tsv {
				fmt.Printf("# %s\n", t.Title)
				t.WriteTSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
			fmt.Println()
		}
	}

	switch cmd {
	case "all":
		order := []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "tbl-insert", "tbl-sortdual",
			"tbl-columnar", "interference", "ablation"}
		for _, name := range order {
			emit(figures[name](sc))
		}
	case "help", "-h", "--help":
		usage()
	default:
		f, ok := figures[cmd]
		if !ok {
			fmt.Fprintf(os.Stderr, "aggbench: unknown figure %q\n\n", cmd)
			usage()
			os.Exit(2)
		}
		emit(f(sc))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `aggbench — regenerate the paper's tables and figures

usage: aggbench <fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|
                 tbl-insert|tbl-sortdual|tbl-columnar|interference|sweep|
                 skew|external|global|compare|all> [flags]

flags: -logn N  -workers P  -cache BYTES  -reps R  -tsv  -sim
       -host  (global: sweep worker counts, tag -json as bare-metal profile)
       -json FILE  (sweep/external/global: machine-readable records)
       -trace-dir DIR  (sweep/external: one JSONL trace per point)
       -cpuprofile FILE  -memprofile FILE  (pprof output of the run)

compare: diff two -json record files as a markdown delta table
       aggbench compare -baseline OLD.json -current NEW.json [-tolerance PCT]
       [-title T] [-out FILE]  (defaults to $GITHUB_STEP_SUMMARY or stdout)`)
}
