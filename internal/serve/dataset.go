package serve

// Shared datasets: the multi-tenant story assumes many clients querying
// the same hosted columns (the "logs of one service" shape), so datasets
// are registered once at startup and queries reference them by name.
// Generation is deterministic — a dataset spec names a datagen
// distribution, so every aggserve instance booted with the same flags
// hosts bit-identical data.

import (
	"fmt"
	"strconv"
	"strings"

	"cacheagg"
	"cacheagg/internal/datagen"
)

// Dataset is one hosted input: a grouping column plus derived aggregate
// input columns. Immutable after registration; safe for concurrent reads.
//
// General-key datasets (string or composite grouping columns) are interned
// at registration: Keys holds the dense ids, KeyTypes the declared schema,
// and Interner the dictionary that decodes result group ids back into the
// original keys at response time. The query path itself is key-type blind.
type Dataset struct {
	// Name is the registry key.
	Name string
	// Keys is the grouping column (dense interned ids for general-key
	// datasets).
	Keys []uint64
	// Cols are the aggregate input columns.
	Cols [][]int64
	// Spec describes how the data was generated (diagnostics only).
	Spec string
	// KeyTypes, when non-nil, declares the general-key schema of the
	// dataset; responses then carry decoded keys per row.
	KeyTypes []cacheagg.KeyType
	// Interner is the dictionary backing a general-key dataset.
	Interner *cacheagg.Interner
}

// GeneralKeys reports whether the dataset's grouping column is interned
// general keys (responses decode them back per row).
func (d *Dataset) GeneralKeys() bool { return len(d.KeyTypes) > 0 }

// Rows returns the dataset length.
func (d *Dataset) Rows() int { return len(d.Keys) }

// NewDataset builds a hosted dataset from explicit columns.
func NewDataset(name string, keys []uint64, cols [][]int64) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: dataset needs a name")
	}
	for i, c := range cols {
		if len(c) != len(keys) {
			return nil, fmt.Errorf("serve: dataset %s column %d has %d rows, keys have %d",
				name, i, len(c), len(keys))
		}
	}
	return &Dataset{Name: name, Keys: keys, Cols: cols, Spec: "explicit"}, nil
}

// ParseDatasetSpec builds a dataset from a "name=kind:n:k[:seed]" spec —
// the aggserve -dataset flag format. kind is either one of the datagen
// distributions over raw uint64 keys (e.g. "events=zipf:1000000:65536"),
// or a general-key kind exercising the interning layer:
//
//	strings    URL-like string keys (uniform raw keys through
//	           datagen.StringKey, interned to dense ids)
//	composite2 two-column composite keys (an injective decomposition of
//	           uniform raw keys, interned to dense ids)
//
// Two deterministic value columns are derived from the raw keys so every
// aggregate function has something to chew on: col 0 is key-correlated
// (key mod 1000), col 1 is row-position noise.
func ParseDatasetSpec(spec string) (*Dataset, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return nil, fmt.Errorf("serve: dataset spec %q is not name=kind:n:k[:seed]", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return nil, fmt.Errorf("serve: dataset spec %q is not name=kind:n:k[:seed]", spec)
	}
	kind := parts[0]
	general := kind == "strings" || kind == "composite2"
	var dist datagen.Dist
	if !general {
		var err error
		dist, err = datagen.ParseDist(kind)
		if err != nil {
			return nil, fmt.Errorf("serve: dataset %s: %w", name, err)
		}
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("serve: dataset %s: bad row count %q", name, parts[1])
	}
	k, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil || k == 0 {
		return nil, fmt.Errorf("serve: dataset %s: bad key domain %q", name, parts[2])
	}
	seed := uint64(1)
	if len(parts) == 4 {
		seed, err = strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: dataset %s: bad seed %q", name, parts[3])
		}
	}
	dspec := datagen.Spec{Dist: dist, N: n, K: k, Seed: seed}
	if general {
		dspec.Dist = datagen.Uniform
	}
	raw := datagen.Generate(dspec)
	col0 := make([]int64, n)
	col1 := make([]int64, n)
	for i, key := range raw {
		col0[i] = int64(key % 1000)
		col1[i] = int64((uint64(i)*2654435761 + seed) % 4096)
	}
	d := &Dataset{
		Name: name,
		Keys: raw,
		Cols: [][]int64{col0, col1},
		Spec: rest,
	}
	if general {
		var gcols []cacheagg.KeyColumn
		switch kind {
		case "strings":
			strs := make([]string, n)
			for i, key := range raw {
				strs[i] = datagen.StringKey(key)
			}
			gcols = []cacheagg.KeyColumn{{Strings: strs}}
			d.KeyTypes = []cacheagg.KeyType{cacheagg.KeyString}
		case "composite2":
			cc := datagen.GenerateComposite(dspec, 2)
			gcols = []cacheagg.KeyColumn{{Uint64s: cc[0]}, {Uint64s: cc[1]}}
			d.KeyTypes = []cacheagg.KeyType{cacheagg.KeyUint64, cacheagg.KeyUint64}
		}
		d.Interner = cacheagg.NewInterner()
		ids, err := d.Interner.EncodeColumns(gcols)
		if err != nil {
			return nil, fmt.Errorf("serve: dataset %s: %w", name, err)
		}
		d.Keys = ids
	}
	return d, nil
}

// Registry is the immutable set of hosted datasets, built before the
// server starts serving.
type Registry struct {
	byName map[string]*Dataset
}

// NewRegistry indexes the given datasets, rejecting duplicate names.
func NewRegistry(datasets ...*Dataset) (*Registry, error) {
	r := &Registry{byName: make(map[string]*Dataset, len(datasets))}
	for _, d := range datasets {
		if _, dup := r.byName[d.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate dataset %q", d.Name)
		}
		r.byName[d.Name] = d
	}
	return r, nil
}

// Lookup returns the named dataset or a typed unknown-dataset error.
func (r *Registry) Lookup(name string) (*Dataset, error) {
	if r != nil {
		if d, ok := r.byName[name]; ok {
			return d, nil
		}
	}
	return nil, errf(ErrUnknownDataset, nil, "dataset %q is not hosted", name)
}

// Names lists the hosted dataset names (diagnostics; unordered).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	return names
}
