package external

// Chaos/soak harness: randomized transient-fault schedules and memory
// budgets driven through the full out-of-core operator. Every run must
// either succeed with the exact result or fail with a classified error —
// never corrupt output, never leak a goroutine, a file handle, or a temp
// file. CI runs this under -race; CACHEAGG_SOAK_ITERS raises the dose.

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"cacheagg/internal/datagen"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/testutil"
	"cacheagg/internal/xrand"
)

func soakIters(def int) int {
	if s := os.Getenv("CACHEAGG_SOAK_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestChaosSoak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	iters := soakIters(12)
	rng := xrand.NewXoshiro256(0xC0FFEE)
	dists := []datagen.Dist{datagen.Uniform, datagen.Sorted, datagen.HeavyHitter}
	for it := 0; it < iters; it++ {
		seed := rng.Next()
		// Fault rates from "benign flakiness" (fully absorbed by the
		// retry layer) to "storage on fire" (runs should fail cleanly).
		perMil := int(rng.Uint64n(120)) + 2
		n := int(rng.Uint64n(60000)) + 5000
		k := rng.Uint64n(30000) + 1
		var budget int64
		if rng.Uint64n(2) == 0 {
			budget = int64(rng.Uint64n(12<<20)) + (2 << 20)
		}
		in := mkInput(dists[int(rng.Uint64n(3))], n, k, seed)

		chaos := faultfs.NewChaos(faultfs.OS(), seed, perMil)
		dir := t.TempDir()
		cfg := Config{
			MemoryBudgetRows:  int(rng.Uint64n(20000)) + 500,
			MemoryBudgetBytes: budget,
			TempDir:           dir,
			FS:                chaos,
			Retry:             noSleepPolicy(),
		}
		res, err := Aggregate(cfg, in)
		if err == nil {
			checkResult(t, res, in)
		} else {
			// A failed run must carry the injected fault, not some
			// mangled secondary error.
			var ie *faultfs.InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("iter %d (seed %#x, perMil %d): unclassified failure: %v",
					it, seed, perMil, err)
			}
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 0 {
			t.Fatalf("iter %d (seed %#x): %d temp entries leaked", it, seed, len(ents))
		}
	}
}

func TestChaosSoakDeterministicPerSeed(t *testing.T) {
	// The same seed must produce the same outcome twice — the property
	// that makes a soak failure reproducible from its log line.
	in := mkInput(datagen.Uniform, 20000, 5000, 99)
	run := func() (string, int64) {
		chaos := faultfs.NewChaos(faultfs.OS(), 0xABCD, 80)
		// SequentialMerge: the Chaos schedule is a global per-op sequence,
		// so only a deterministic I/O order reproduces the same fault at
		// the same call — the documented use of the sequential oracle.
		cfg := Config{MemoryBudgetRows: 1000, TempDir: t.TempDir(), FS: chaos,
			Retry: noSleepPolicy(), SequentialMerge: true}
		res, err := Aggregate(cfg, in)
		if err != nil {
			return err.Error(), chaos.Faults()
		}
		return "", res.Stats.SpilledRows
	}
	msg1, v1 := run()
	msg2, v2 := run()
	if msg1 != msg2 || v1 != v2 {
		t.Fatalf("same seed diverged: (%q, %d) vs (%q, %d)", msg1, v1, msg2, v2)
	}
}
