package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cacheagg/internal/testutil"
)

func TestAdmitFastPathAndRelease(t *testing.T) {
	c := NewController(AdmitConfig{BudgetBytes: 100 << 20, MinGrantBytes: 1 << 20}, nil)
	g, err := c.Admit(context.Background(), PriorityNormal, 10<<20)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mode != GrantFull || g.Queued {
		t.Fatalf("grant = %+v, want unqueued full", g)
	}
	if got := c.Ledger().Reserved(); got != 10<<20 {
		t.Fatalf("ledger = %d, want %d", got, 10<<20)
	}
	g.Release()
	g.Release() // idempotent
	if got := c.Ledger().Reserved(); got != 0 {
		t.Fatalf("ledger after release = %d, want 0", got)
	}
}

func TestAdmitClampsOversizedEstimate(t *testing.T) {
	c := NewController(AdmitConfig{BudgetBytes: 8 << 20, MinGrantBytes: 1 << 20}, nil)
	g, err := c.Admit(context.Background(), PriorityNormal, 1<<40)
	if err != nil {
		t.Fatalf("a query bigger than the machine must still be admitted: %v", err)
	}
	defer g.Release()
	if g.Bytes != 8<<20 {
		t.Fatalf("grant = %d, want clamped to the 8 MiB budget", g.Bytes)
	}
}

func TestDegradationLadder(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m := &Metrics{}
	c := NewController(AdmitConfig{
		BudgetBytes:   10 << 20,
		MinGrantBytes: 2 << 20,
		ShrinkAfter:   20 * time.Millisecond,
		ExternalAfter: 20 * time.Millisecond,
		MaxWait:       time.Second,
	}, m)
	// First query takes 8 of 10 MiB and sits on it.
	g1, err := c.Admit(context.Background(), PriorityNormal, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Second wants 8 MiB too: full (8) never fits, shrunken (4) never
	// fits, the 2 MiB external floor does → forced external.
	g2, err := c.Admit(context.Background(), PriorityNormal, 8<<20)
	if err != nil {
		t.Fatalf("ladder must admit at the external floor: %v", err)
	}
	if g2.Mode != GrantExternal || g2.Bytes != 2<<20 {
		t.Fatalf("grant = mode %v bytes %d, want external 2 MiB", g2.Mode, g2.Bytes)
	}
	if m.DegradedExternal.Load() != 1 {
		t.Fatalf("DegradedExternal = %d, want 1", m.DegradedExternal.Load())
	}
	// Third wants 7 MiB with 0 free: even the floor can't fit → typed
	// budget rejection with a retry hint.
	g3, err := c.Admit(contextWithTimeout(t, 300*time.Millisecond), PriorityNormal, 7<<20)
	if err == nil {
		g3.Release()
		t.Fatal("admission with a full ledger must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller deadline to end the wait", err)
	}
	g1.Release()
	g2.Release()
	if got := c.Ledger().Reserved(); got != 0 {
		t.Fatalf("ledger = %d after all releases", got)
	}
}

func TestBudgetUnavailableTyped(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	c := NewController(AdmitConfig{
		BudgetBytes:   4 << 20,
		MinGrantBytes: 2 << 20,
		ShrinkAfter:   5 * time.Millisecond,
		ExternalAfter: 5 * time.Millisecond,
		MaxWait:       30 * time.Millisecond,
	}, nil)
	g1, err := c.Admit(context.Background(), PriorityNormal, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Release()
	_, err = c.Admit(context.Background(), PriorityNormal, 4<<20)
	if !errors.Is(err, ErrBudgetUnavailable) {
		t.Fatalf("err = %v, want ErrBudgetUnavailable", err)
	}
	var serr *Error
	if !errors.As(err, &serr) || serr.RetryAfter <= 0 {
		t.Fatalf("budget rejection carries no Retry-After hint: %v", err)
	}
}

func TestQueueFullAndShed(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m := &Metrics{}
	c := NewController(AdmitConfig{
		BudgetBytes:   4 << 20,
		MinGrantBytes: 4 << 20,
		MaxQueue:      2,
		ShrinkAfter:   10 * time.Millisecond,
		ExternalAfter: 10 * time.Millisecond,
		MaxWait:       5 * time.Second,
	}, m)
	// Saturate the budget so every following Admit parks.
	hold, err := c.Admit(context.Background(), PriorityNormal, 4<<20)
	if err != nil {
		t.Fatal(err)
	}

	// One query occupies the reserving state, two more fill the queue.
	results := make(chan error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := c.Admit(context.Background(), PriorityLow, 4<<20)
			if err == nil {
				g.Release()
			}
			results <- err
		}()
		// Deterministic arrival order: reserving, queued, queued.
		waitFor(t, func() bool { return c.QueueLen()+c.Ledger().Waiting() > i })
	}
	waitFor(t, func() bool { return c.QueueLen() == 2 })

	// A low-priority arrival outranks nothing → typed queue-full.
	_, err = c.Admit(context.Background(), PriorityLow, 4<<20)
	if !errors.Is(err, ErrAdmissionQueueFull) {
		t.Fatalf("err = %v, want ErrAdmissionQueueFull", err)
	}
	if m.RejectedQueue.Load() != 1 {
		t.Fatalf("RejectedQueue = %d, want 1", m.RejectedQueue.Load())
	}

	// A high-priority arrival sheds the youngest queued low-priority
	// waiter and takes its place.
	highDone := make(chan error, 1)
	go func() {
		g, err := c.Admit(context.Background(), PriorityHigh, 4<<20)
		if err == nil {
			g.Release()
		}
		highDone <- err
	}()
	shedErr := <-results
	if !errors.Is(shedErr, ErrShed) {
		t.Fatalf("victim got %v, want ErrShed", shedErr)
	}
	if m.Shed.Load() != 1 {
		t.Fatalf("Shed = %d, want 1", m.Shed.Load())
	}

	// Releasing the hold lets the remaining queue drain.
	hold.Release()
	if err := <-highDone; err != nil {
		t.Fatalf("high-priority waiter: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil && !errors.Is(err, ErrShed) {
			t.Fatalf("queued waiter: %v", err)
		}
	}
	wg.Wait()
	if got := c.Ledger().Reserved(); got != 0 {
		t.Fatalf("ledger = %d after drain", got)
	}
}

func TestQueuedWaiterHonorsCancellation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	c := NewController(AdmitConfig{
		BudgetBytes:   4 << 20,
		MinGrantBytes: 4 << 20,
		MaxWait:       10 * time.Second,
	}, nil)
	hold, err := c.Admit(context.Background(), PriorityNormal, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, PriorityNormal, 4<<20)
		done <- err
	}()
	// Wait until it is parked (either queued or in the reserving state).
	waitFor(t, func() bool { return c.QueueLen() > 0 || c.Ledger().Waiting() > 0 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stuck — its queue slot did not free")
	}
	waitFor(t, func() bool { return c.QueueLen() == 0 && c.Ledger().Waiting() == 0 })
}

func TestDrainingRejectsAdmission(t *testing.T) {
	c := NewController(AdmitConfig{BudgetBytes: 1 << 20}, nil)
	c.SetDraining()
	_, err := c.Admit(context.Background(), PriorityHigh, 1<<20)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

func TestUnlimitedBudgetAdmitsInstantly(t *testing.T) {
	c := NewController(AdmitConfig{}, nil)
	for i := 0; i < 100; i++ {
		g, err := c.Admit(context.Background(), PriorityLow, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Release()
		if g.Mode != GrantFull {
			t.Fatalf("unlimited budget degraded to %v", g.Mode)
		}
	}
}

func TestEstimateCostMonotone(t *testing.T) {
	small := EstimateCost(1000, 1, 1, 64<<10)
	big := EstimateCost(1<<20, 1, 1, 64<<10)
	if small <= 0 || big <= small {
		t.Fatalf("EstimateCost not monotone in rows: %d vs %d", small, big)
	}
	wide := EstimateCost(1000, 8, 1, 64<<10)
	if wide <= small {
		t.Fatalf("EstimateCost not monotone in width: %d vs %d", wide, small)
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
