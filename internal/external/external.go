// Package external implements out-of-core (spilling) aggregation on top of
// the in-memory operator — the disk level of the external memory model.
//
// The paper's Section 2 analysis is deliberately general: "this model holds
// in the cache setting as well as in the disk-based setting". This package
// is the disk instantiation of HASHAGGREGATION-OPTIMIZED, with the paper's
// in-memory operator as its in-"cache" (= in-RAM) leaf:
//
//  1. The input is consumed in chunks sized to the memory budget. Each
//     chunk is aggregated in memory by the core operator — early
//     aggregation at the RAM level, exactly like the HASHING routine's
//     role at the cache level.
//  2. Each chunk's partial groups are appended to one of 256 spill
//     partitions chosen by the first digit of the group's hash. Partition
//     files hold (key, partial...) rows in checksummed column-major
//     blocks — "runs" on disk, in the original sense of the word.
//  3. Every partition is merged with the super-aggregate functions (COUNT
//     partials merge by SUM, and AVG is decomposed into SUM and COUNT up
//     front). Partitions still exceeding the budget recurse on the next
//     hash digit — Algorithm 2, one storage level up.
//
// Phase 3 is parallel and pipelined: each partition's merge (including the
// recursive levels) is one work-stealing task on a sched.Pool, running the
// batch kernels of the in-memory operator, while a bounded prefetch window
// of reader tasks overlaps the next partitions' file I/O with the current
// merges (see merge.go). Output order stays deterministic — partitions
// concatenate in digit order regardless of the schedule. The legacy
// sequential map merge remains available as Config.SequentialMerge, the
// reference oracle of the differential tests.
//
// Like the in-memory operator, the algorithm needs no estimate of the
// output cardinality, degrades gracefully with K, and benefits from input
// locality through the chunk-level early aggregation of step 1.
//
// Unlike the in-memory operator, this level cannot trust its storage.
// Spill files therefore carry a versioned header, per-block CRC32s and a
// whole-file CRC32 footer (see docs/ROBUSTNESS.md for the format) verified
// on read, total spill volume can be capped with Config.MaxSpillBytes,
// every writer is closed and removed on every error path, and all file I/O
// goes through the faultfs.FS interface so tests can deterministically
// inject faults at each I/O site.
package external

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/partition"
	"cacheagg/internal/trace"
)

// Config configures an external aggregation.
type Config struct {
	// MemoryBudgetRows caps the rows aggregated in memory at a time
	// (chunk size and partition-merge threshold). 0 selects 1<<20, or a
	// value derived from MemoryBudgetBytes when that is set.
	MemoryBudgetRows int
	// MemoryBudgetBytes is the byte-accurate memory budget of the whole
	// execution, enforced through a memgov.Governor: chunk size, worker
	// count and cache size of the in-memory leaves are derived from it,
	// and partial groups stay RESIDENT in memory instead of spilling
	// until the budget forces the largest partitions to disk (the
	// dynamic-hybrid degradation). 0 disables byte governance and keeps
	// the pure row-budget behavior.
	MemoryBudgetBytes int64
	// Governor, when non-nil, is used instead of a fresh governor built
	// from MemoryBudgetBytes — callers that degrade from the in-memory
	// path pass theirs so the high-water mark spans the whole query.
	Governor *memgov.Governor
	// TempDir hosts the spill files; "" selects the system default.
	TempDir string
	// MaxSpillBytes caps the total bytes written to spill files over the
	// whole execution, including re-partitioning passes. When the cap
	// would be exceeded the aggregation fails fast with ErrSpillBudget
	// instead of filling the disk. 0 means no cap.
	MaxSpillBytes int64
	// MergeWorkers caps the workers of the parallel merge phase; 0
	// selects GOMAXPROCS. The result is identical for every worker
	// count.
	MergeWorkers int
	// SequentialMerge selects the single-goroutine map-merge reference
	// path for phase 3 instead of the parallel batch engine. Slower;
	// exists as the differential-testing oracle and for runs that need a
	// deterministic I/O schedule (e.g. replaying a seeded fault plan).
	SequentialMerge bool
	// Retry configures transient-fault retries of spill I/O; zero fields
	// select faultfs.DefaultRetryPolicy.
	Retry faultfs.RetryPolicy
	// FS is the spill-file backend; nil selects the real filesystem.
	// Tests substitute a faultfs.Injector to exercise I/O error paths.
	// The backend is wrapped in a faultfs.Retry, so transient faults
	// (EINTR/EAGAIN-class) are absorbed with capped exponential backoff.
	FS faultfs.FS
	// Tracer, when non-nil, receives spill/merge/prefetch events and the
	// spill and merge phase timings, and is handed down to the in-memory
	// leaves (unless Core.Tracer is already set). Leave nil (the untyped
	// nil interface) when not observing.
	Tracer trace.Tracer
	// Core configures the in-memory operator used for the leaves.
	Core core.Config
}

// Validate rejects configurations that are structurally wrong rather than
// merely defaulted: negative budgets and caps. Zero values always mean
// "pick the default" and are accepted.
func (c Config) Validate() error {
	if c.MemoryBudgetRows < 0 {
		return fmt.Errorf("external: MemoryBudgetRows is negative (%d); use 0 for the default", c.MemoryBudgetRows)
	}
	if c.MemoryBudgetBytes < 0 {
		return fmt.Errorf("external: MemoryBudgetBytes is negative (%d); use 0 for unlimited", c.MemoryBudgetBytes)
	}
	if c.MaxSpillBytes < 0 {
		return fmt.Errorf("external: MaxSpillBytes is negative (%d); use 0 for no cap", c.MaxSpillBytes)
	}
	if c.MergeWorkers < 0 {
		return fmt.Errorf("external: MergeWorkers is negative (%d); use 0 for GOMAXPROCS", c.MergeWorkers)
	}
	if c.Retry.MaxAttempts < 0 {
		return fmt.Errorf("external: Retry.MaxAttempts is negative (%d)", c.Retry.MaxAttempts)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MemoryBudgetRows <= 0 {
		c.MemoryBudgetRows = 1 << 20
	}
	if c.FS == nil {
		c.FS = faultfs.OS()
	}
	return c
}

// sizeFromBudget derives the in-memory leaf sizing from MemoryBudgetBytes
// for a plan of the given decomposed width: few enough workers that their
// fixed machinery (cache-sized table, SWC buffers, scratch) fits the
// budget with room left for intermediates and resident partitions, and a
// cache budget proportional to the remainder. No-op without a byte budget;
// explicit user sizing is only ever shrunk, never grown.
func (c *Config) sizeFromBudget(width int) {
	if c.MemoryBudgetBytes <= 0 {
		return
	}
	// Rough fixed bytes of one worker: SWC scatter buffers dominate, plus
	// the minimum table and the intake scratch blocks.
	perWorker := int64(hashfn.Fanout*partition.DefaultBufRows*8*(2+width)) +
		int64(2048*(28+8*width)) + 96<<10
	w := c.Core.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if maxW := int(c.MemoryBudgetBytes / (3 * perWorker)); w > maxW {
		w = max(maxW, 1)
	}
	c.Core.Workers = w
	target := int(c.MemoryBudgetBytes / int64(8*w))
	if c.Core.CacheBytes <= 0 || c.Core.CacheBytes > target {
		c.Core.CacheBytes = max(target, 32<<10)
	}
}

// Sentinel errors of the spill path, matched with errors.Is.
var (
	// ErrCorruptSpill marks a spill file that failed structural or
	// checksum validation (truncation, bit rot, format mismatch).
	ErrCorruptSpill = errors.New("corrupt spill file")
	// ErrSpillBudget marks an execution stopped by Config.MaxSpillBytes.
	ErrSpillBudget = errors.New("spill budget exceeded")
)

// Stats reports what the external pass did.
type Stats struct {
	// Chunks is the number of input chunks pre-aggregated in memory.
	Chunks int
	// SpilledRows / SpilledBytes count partial-group records written.
	SpilledRows  int64
	SpilledBytes int64
	// MergeLevels is the deepest disk-level recursion reached.
	MergeLevels int
	// CleanupFailures counts spill files whose removal failed (the
	// aggregation itself is unaffected; the temp directory is still
	// deleted recursively at the end).
	CleanupFailures int
	// SpillRetries counts transient spill-I/O faults that were absorbed
	// by the retry layer (each is one extra attempt that succeeded or
	// eventually gave up).
	SpillRetries int64
	// PeakReservedBytes is the governor's high-water mark: the largest
	// in-memory footprint the execution registered at any point.
	PeakReservedBytes int64
	// ResidentPartitions counts level-0 partitions that were merged
	// straight from memory without ever touching disk (hybrid mode).
	ResidentPartitions int
	// EvictedPartitions counts resident partitions pushed to disk because
	// the byte budget demanded it (largest first).
	EvictedPartitions int
	// ChunkRetries counts input ranges re-aggregated with a smaller chunk
	// size after the in-memory leaf ran over the byte budget.
	ChunkRetries int
	// PrefetchedPartitions counts partition files loaded ahead of their
	// merge by the prefetch window (taken or not).
	PrefetchedPartitions int
}

// Result is the aggregation output plus spill statistics. Group order is
// hash order (by construction of the partition recursion) and identical
// for the parallel and sequential merge paths.
type Result struct {
	Keys []uint64
	Aggs [][]int64
	// AggsFloat mirrors Aggs finalized as float64 — exact for AVG, the
	// widened integer otherwise.
	AggsFloat [][]float64
	Stats     Stats
}

// Groups returns the number of groups.
func (r *Result) Groups() int { return len(r.Keys) }

// Plan decomposes the original specs into width-1 partials that can be
// finalized, spilled and merged independently: AVG becomes (SUM, COUNT),
// everything else is itself. MergeKind holds the super-aggregate of each
// decomposed column. It is exported so the streaming checkpoint path can
// share the decomposition (and the block codec keyed on its width).
type Plan struct {
	Orig      []agg.Spec
	Dec       []agg.Spec
	MergeKind []agg.Kind
	Off       []int // first decomposed column of each original spec
}

func BuildPlan(specs []agg.Spec) *Plan {
	p := &Plan{Orig: specs}
	for _, s := range specs {
		p.Off = append(p.Off, len(p.Dec))
		switch s.Kind {
		case agg.Count:
			p.Dec = append(p.Dec, agg.Spec{Kind: agg.Count})
			p.MergeKind = append(p.MergeKind, agg.Sum)
		case agg.Sum:
			p.Dec = append(p.Dec, agg.Spec{Kind: agg.Sum, Col: s.Col})
			p.MergeKind = append(p.MergeKind, agg.Sum)
		case agg.Min:
			p.Dec = append(p.Dec, agg.Spec{Kind: agg.Min, Col: s.Col})
			p.MergeKind = append(p.MergeKind, agg.Min)
		case agg.Max:
			p.Dec = append(p.Dec, agg.Spec{Kind: agg.Max, Col: s.Col})
			p.MergeKind = append(p.MergeKind, agg.Max)
		case agg.Avg:
			p.Dec = append(p.Dec,
				agg.Spec{Kind: agg.Sum, Col: s.Col},
				agg.Spec{Kind: agg.Count})
			p.MergeKind = append(p.MergeKind, agg.Sum, agg.Sum)
		default:
			panic("external: invalid aggregate kind")
		}
	}
	return p
}

// Width returns the number of decomposed partial columns.
func (p *Plan) Width() int { return len(p.Dec) }

// Aggregate executes the out-of-core GROUP BY.
func Aggregate(cfg Config, in *core.Input) (*Result, error) {
	return AggregateContext(context.Background(), cfg, in)
}

// AggregateContext is Aggregate with cancellation: the context is observed
// between chunks, inside each chunk's in-memory aggregation (at morsel and
// task boundaries), and at every task of the merge pool (which aborts and
// quiesces before the error returns). On any error — cancellation, I/O
// fault, budget, corruption — all spill writers are closed and their files
// removed before the call returns.
func AggregateContext(ctx context.Context, cfg Config, in *core.Input) (res *Result, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	userRows := cfg.MemoryBudgetRows
	cfg = cfg.withDefaults()
	p := BuildPlan(in.Specs)
	cfg.sizeFromBudget(p.Width())
	if userRows <= 0 && cfg.MemoryBudgetBytes > 0 {
		// Derive the row budget from the byte budget: a merged row costs
		// its record (read buffer) plus table slot and output copies —
		// roughly 4× the record size covers all of them.
		rows := cfg.MemoryBudgetBytes / int64(4*(8+8*p.Width()))
		cfg.MemoryBudgetRows = int(min(max(rows, 1024), 1<<20))
	}

	// One tracer observes both layers: an external-level tracer is handed
	// to the in-memory leaves, and a leaf-level one is adopted up here.
	tr := cfg.Tracer
	if tr == nil {
		tr = cfg.Core.Tracer
	} else if cfg.Core.Tracer == nil {
		cfg.Core.Tracer = tr
	}

	gov := cfg.Governor
	if gov == nil {
		gov = memgov.New(cfg.MemoryBudgetBytes)
		if tr != nil {
			grain := int64(1 << 20)
			if b := cfg.MemoryBudgetBytes; b > 0 {
				grain = max(b/64, 32<<10)
			}
			t := tr
			gov.SetHighWaterHook(grain, func(hw int64) {
				t.Emit(trace.KindGovHighWater, 0, 0, -1, float64(hw))
			})
		}
	}
	if cfg.Core.Governor == nil {
		cfg.Core.Governor = gov
	}
	// All spill I/O goes through the transient-fault retry layer.
	if tr != nil {
		prev := cfg.Retry.OnRetry
		t := tr
		cfg.Retry.OnRetry = func(op faultfs.Op) {
			if prev != nil {
				prev(op)
			}
			t.Emit(trace.KindSpillRetry, 0, 0, int64(op), 1)
		}
	}
	retry := faultfs.NewRetry(cfg.FS, cfg.Retry)
	cfg.FS = retry

	dir, err := os.MkdirTemp(cfg.TempDir, "cacheagg-spill-*")
	if err != nil {
		return nil, fmt.Errorf("external: %w", err)
	}
	e := &extExec{cfg: cfg, plan: p, dir: dir, gov: gov, tr: tr, kern: agg.NewLayout(p.Dec).Kernels()}
	defer func() {
		if err != nil {
			e.cleanupAll()
		}
		os.RemoveAll(dir)
	}()

	parts, err := e.spillInput(ctx, in)
	if err != nil {
		return nil, err
	}
	// Seal phase 1: push hybrid remainders into their files and close every
	// partition file so the merge phase sees only finished, self-validating
	// units (and fully resident partitions, which never touch disk).
	work := false
	for d := 0; d < hashfn.Fanout; d++ {
		if e.resident[d].n() > 0 {
			if parts[d] != nil {
				if err := e.evict(d, parts); err != nil {
					return nil, err
				}
			} else {
				e.stats.ResidentPartitions++
				work = true
			}
		}
		if parts[d] != nil {
			if err := e.finishSpill(parts[d]); err != nil {
				return nil, err
			}
			work = true
		}
	}
	res = &Result{
		Aggs:      make([][]int64, len(in.Specs)),
		AggsFloat: make([][]float64, len(in.Specs)),
	}
	if work {
		t0 := e.stamp()
		if cfg.SequentialMerge {
			err = e.mergeSequential(ctx, parts, res)
		} else {
			err = e.mergeParallel(ctx, parts, res)
		}
		if err != nil {
			return nil, err
		}
		e.lap(t0, trace.PhaseMerge)
	}
	e.stats.SpillRetries = retry.Retries()
	e.stats.PeakReservedBytes = gov.HighWater()
	res.Stats = e.stats
	return res, nil
}

type extExec struct {
	cfg  Config
	plan *Plan
	dir  string
	gov  *memgov.Governor
	tr   trace.Tracer // optional execution tracer (nil when not observing)
	kern *agg.Kernels // merge kernels of the decomposed plan

	// mu guards the shared mutable state of the concurrent merge phase:
	// stats, the spill-budget ledger, the writer id counter and the
	// cleanup track. Phase 1 runs single-goroutine but takes it anyway —
	// uncontended locks are cheap at block granularity.
	mu        sync.Mutex
	stats     Stats
	nextID    int
	diskBytes int64 // total file bytes written, incl. headers and footers

	// inflight counts merge-phase holders of releasable governor budget:
	// running/prefetched file loads and still-pending resident merges.
	// Blocked load admissions fail fast only when it reaches zero (see
	// acquireLoad).
	inflight atomic.Int64

	// resident holds the level-0 partitions kept in memory in hybrid mode
	// (governor with a byte budget): partials accumulate here and only hit
	// disk when the budget forces the largest partition out.
	resident [hashfn.Fanout]resident

	// track lists every spill writer ever created, so one cleanup pass on
	// the error path can close and remove whatever is still live — no
	// file handle or temp file survives a failed aggregation.
	track []*spillWriter
}

// resident is one level-0 partition's in-memory partial rows.
type resident struct {
	keys     []uint64
	partials [][]uint64
	bytes    int64 // reserved with the governor
}

func (r *resident) n() int { return len(r.keys) }

// recSize is the byte size of one spilled record: key + decomposed partials.
func (e *extExec) recSize() int { return 8 + 8*e.plan.Width() }

// stamp starts a phase lap, returning the zero time when no tracer is
// installed — the nil fast path is this single branch.
func (e *extExec) stamp() time.Time {
	if e.tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// lap charges the time since t0 to phase p (no-op without a tracer).
func (e *extExec) lap(t0 time.Time, p trace.Phase) {
	if e.tr == nil {
		return
	}
	e.tr.AddPhase(p, time.Since(t0).Nanoseconds())
}

// chargeLocked reserves n bytes of spill budget, failing fast before the
// write that would exceed Config.MaxSpillBytes. Callers hold e.mu.
func (e *extExec) chargeLocked(n int) error {
	if e.cfg.MaxSpillBytes > 0 && e.diskBytes+int64(n) > e.cfg.MaxSpillBytes {
		return fmt.Errorf("external: %w: %d bytes spilled, next write of %d bytes exceeds MaxSpillBytes=%d",
			ErrSpillBudget, e.diskBytes, n, e.cfg.MaxSpillBytes)
	}
	e.diskBytes += int64(n)
	return nil
}

// cleanupAll closes and removes every spill file still present. Remove
// failures are counted in Stats (the deferred RemoveAll sweeps the
// directory regardless); close errors on the error path are irrelevant.
// Called after the merge pool has quiesced, never concurrently with it.
func (e *extExec) cleanupAll() {
	e.mu.Lock()
	track := e.track
	e.mu.Unlock()
	for _, w := range track {
		w.discard(e)
	}
}

// removeSpill deletes a consumed spill file, recording (not ignoring) a
// failed removal.
func (e *extExec) removeSpill(w *spillWriter) {
	if w.removed {
		return
	}
	w.removed = true
	if err := e.cfg.FS.Remove(w.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		e.mu.Lock()
		e.stats.CleanupFailures++
		e.mu.Unlock()
	}
}

// minChunkRows is the floor of the chunk-halving degradation: below this
// the per-chunk fixed costs dominate and shrinking further cannot help.
const minChunkRows = 1024

// spillInput runs phase 1 and returns one spill writer per non-empty
// level-0 partition (resident partitions may have no writer). Writers are
// left open — the caller seals them after pushing hybrid remainders.
//
// When a chunk's in-memory aggregation runs over the byte budget, the
// input range is retried with half the chunk size after evicting every
// resident partition — the next rung of the degradation ladder. Only when
// even minChunkRows-sized chunks cannot fit does the error propagate.
func (e *extExec) spillInput(ctx context.Context, in *core.Input) ([]*spillWriter, error) {
	writers := make([]*spillWriter, hashfn.Fanout)
	budget := e.cfg.MemoryBudgetRows
	n := len(in.Keys)
	lo := 0
	for lo < n {
		hi := min(lo+budget, n)
		chunk := &core.Input{Keys: in.Keys[lo:hi], Specs: e.plan.Dec}
		chunk.AggCols = make([][]int64, len(in.AggCols))
		for c := range in.AggCols {
			chunk.AggCols[c] = in.AggCols[c][lo:hi]
		}
		part, err := core.AggregateContext(ctx, e.cfg.Core, chunk)
		if err != nil {
			if errors.Is(err, core.ErrMemoryBudget) && budget > minChunkRows {
				if err := e.evictAll(writers); err != nil {
					return nil, err
				}
				budget = max(budget/2, minChunkRows)
				e.stats.ChunkRetries++
				continue // same range, smaller chunks
			}
			return nil, err
		}
		e.stats.Chunks++
		if err := e.spillPartial(part, writers); err != nil {
			return nil, err
		}
		lo = hi
	}
	return writers, nil
}

// spillPartial routes each group of an in-memory partial result to the
// level-0 partition of its hash digit: resident in memory while the byte
// budget allows (hybrid mode), staged into the partition's block writer
// otherwise. Because every decomposed partial is width-1 and distributive,
// the finalized columns of the core result ARE the partial states.
func (e *extExec) spillPartial(part *core.Result, writers []*spillWriter) error {
	hybrid := e.gov != nil && e.gov.Budget() > 0
	for r := 0; r < part.Groups(); r++ {
		d := hashfn.Digit(part.Hashes[r], 0)
		if hybrid {
			kept, err := e.keepResident(d, part, r, writers)
			if err != nil {
				return err
			}
			if kept {
				continue
			}
		}
		w := writers[d]
		if w == nil {
			var err error
			w, err = e.newWriter()
			if err != nil {
				return err
			}
			writers[d] = w
		}
		if err := e.appendAggs(w, part.Keys[r], part.Aggs, r); err != nil {
			return err
		}
	}
	return nil
}

// keepResident tries to append row r of the partial result to partition
// d's resident buffer, evicting the LARGEST resident partitions to disk
// until the reservation fits — Jahangiri et al.'s dynamic hybrid: the
// partitions most likely to keep growing go out, the small ones stay and
// never pay disk I/O. Returns kept=false when nothing is left to evict and
// the row must spill directly.
func (e *extExec) keepResident(d int, part *core.Result, r int, writers []*spillWriter) (kept bool, err error) {
	rowBytes := int64(e.recSize())
	for !e.gov.TryReserve(rowBytes) {
		big := -1
		for i := range e.resident {
			if e.resident[i].n() > 0 && (big < 0 || e.resident[i].bytes > e.resident[big].bytes) {
				big = i
			}
		}
		if big < 0 {
			return false, nil
		}
		e.mu.Lock()
		e.stats.EvictedPartitions++
		e.mu.Unlock()
		if err := e.evict(big, writers); err != nil {
			return false, err
		}
	}
	res := &e.resident[d]
	if res.partials == nil {
		res.partials = make([][]uint64, e.plan.Width())
	}
	res.keys = append(res.keys, part.Keys[r])
	for c := 0; c < e.plan.Width(); c++ {
		res.partials[c] = append(res.partials[c], uint64(part.Aggs[c][r]))
	}
	res.bytes += rowBytes
	return true, nil
}

// evict writes partition d's resident rows to its spill file (creating it
// if needed) and releases their reservation.
func (e *extExec) evict(d int, writers []*spillWriter) error {
	res := &e.resident[d]
	if res.n() == 0 {
		return nil
	}
	w := writers[d]
	if w == nil {
		var err error
		w, err = e.newWriter()
		if err != nil {
			return err
		}
		writers[d] = w
	}
	for i := range res.keys {
		if err := e.appendState(w, res.keys[i], res.partials, i); err != nil {
			return err
		}
	}
	e.releaseResident(d)
	return nil
}

// evictAll pushes every resident partition to disk (used to free the whole
// budget before retrying an over-budget chunk).
func (e *extExec) evictAll(writers []*spillWriter) error {
	for d := range e.resident {
		if e.resident[d].n() == 0 {
			continue
		}
		e.mu.Lock()
		e.stats.EvictedPartitions++
		e.mu.Unlock()
		if err := e.evict(d, writers); err != nil {
			return err
		}
	}
	return nil
}

// releaseResident returns partition d's reservation and drops its rows.
// In the parallel merge each resident partition is released by exactly one
// task; the pool's quiescence orders the release before the final stats.
func (e *extExec) releaseResident(d int) {
	res := &e.resident[d]
	if e.gov != nil {
		e.gov.Release(res.bytes)
	}
	*res = resident{}
}
