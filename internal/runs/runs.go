// Package runs implements the intermediate-result storage of the operator:
// "runs" in the paper's terminology (Section 3.1), stored in the two-level
// list-of-arrays structure of Section 4.2.
//
// The paper needs output partitions whose final size is unknown before
// processing. Wassenberg et al. solve this with virtual-memory
// over-allocation, which the paper rejects for industry-grade memory
// management and replaces by a two-level data structure — a list of arrays —
// at ~2% cost. A Writer here is exactly that: it appends rows into
// fixed-capacity chunks and seals each full chunk as an immutable Run.
//
// A Run holds decomposed (columnar) row storage: the grouping key of each
// row, one state column per aggregate state word, and — optionally — the
// 64-bit hash of the key. By default the engine follows the paper and does
// NOT store hashes (recomputing MurmurHash2 each pass is far cheaper than
// moving 8 extra bytes per row per pass); carrying them is an ablation
// option.
package runs

import "fmt"

// DefaultChunkRows is the default capacity of one chunk of a Writer.
// 4096 rows × 8 bytes ≈ 32 KiB per column — comfortably cache-resident
// while being large enough that per-chunk overhead vanishes.
const DefaultChunkRows = 4096

// Run is one immutable sorted-by-construction intermediate result fragment.
// All rows in a Run share the same bucket path (hash prefix) of the
// recursion level that produced it.
type Run struct {
	// Hashes is the optional stored hash column. The paper's runs hold
	// only the rows themselves — hashes are recomputed from the key at
	// every pass (MurmurHash2 costs ~1 ns while a stored hash costs 8
	// bytes of memory traffic per row per pass) — so in the default
	// engine configuration this column is nil. Carrying hashes is an
	// ablation option (core.Config.CarryHashes).
	Hashes []uint64
	Keys   []uint64
	// States holds the packed aggregate state columns: States[w][i] is
	// state word w of row i. len(States) is the layout's word count and is
	// zero for DISTINCT-style queries.
	States [][]uint64
	// Aggregated marks a run in which every key occurs at most once (the
	// run was produced by a hash-table split). Purely informational for
	// strategies and diagnostics; state semantics are uniform because rows
	// carry initialized aggregate states from intake on.
	Aggregated bool
}

// Len returns the number of rows in the run.
func (r *Run) Len() int { return len(r.Keys) }

// Validate checks the structural invariants of the run: all columns have
// equal length. It returns an error rather than panicking so tests can use
// it on adversarial inputs.
func (r *Run) Validate(words int) error {
	if r.Hashes != nil && len(r.Hashes) != len(r.Keys) {
		return fmt.Errorf("runs: %d hashes but %d keys", len(r.Hashes), len(r.Keys))
	}
	if len(r.States) != words {
		return fmt.Errorf("runs: %d state columns, want %d", len(r.States), words)
	}
	for w, col := range r.States {
		if len(col) != len(r.Keys) {
			return fmt.Errorf("runs: state column %d has %d rows, want %d", w, len(col), len(r.Keys))
		}
	}
	return nil
}

// Bucket is the set of runs that share one bucket path. The recursion of
// the framework treats all runs of the same partition as a single bucket
// (Algorithm 2).
type Bucket struct {
	Runs []*Run
}

// Rows returns the total number of rows across all runs of the bucket.
func (b *Bucket) Rows() int {
	n := 0
	for _, r := range b.Runs {
		n += r.Len()
	}
	return n
}

// Add appends a run to the bucket. Nil and empty runs are dropped.
func (b *Bucket) Add(r *Run) {
	if r != nil && r.Len() > 0 {
		b.Runs = append(b.Runs, r)
	}
}

// AddAll appends all runs of other to b.
func (b *Bucket) AddAll(other *Bucket) {
	for _, r := range other.Runs {
		b.Add(r)
	}
}

// AllAggregated reports whether every run in the bucket is aggregated.
func (b *Bucket) AllAggregated() bool {
	for _, r := range b.Runs {
		if !r.Aggregated {
			return false
		}
	}
	return true
}

// Writer accumulates rows for one output partition in fixed-size chunks:
// the two-level list-of-arrays structure. The zero value is not usable;
// create Writers with NewWriter.
type Writer struct {
	chunkRows  int
	words      int
	dropHashes bool
	cur        *Run
	sealed     []*Run
	rows       int
}

// NewWriter returns a Writer producing chunks of chunkRows rows with words
// aggregate state columns. chunkRows <= 0 selects DefaultChunkRows.
func NewWriter(chunkRows, words int) *Writer {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	if words < 0 {
		panic("runs: negative state word count")
	}
	return &Writer{chunkRows: chunkRows, words: words}
}

// NewWriterDrop is NewWriter with control over the hash column: when
// dropHashes is set, appended hash values are discarded and the produced
// runs have a nil hash column (the paper's recompute-per-pass layout).
func NewWriterDrop(chunkRows, words int, dropHashes bool) *Writer {
	w := NewWriter(chunkRows, words)
	w.dropHashes = dropHashes
	return w
}

// Rows returns the total number of rows appended so far.
func (w *Writer) Rows() int { return w.rows }

func (w *Writer) grow() {
	r := &Run{
		Keys: make([]uint64, 0, w.chunkRows),
	}
	if !w.dropHashes {
		r.Hashes = make([]uint64, 0, w.chunkRows)
	}
	if w.words > 0 {
		r.States = make([][]uint64, w.words)
		for i := range r.States {
			r.States[i] = make([]uint64, 0, w.chunkRows)
		}
	} else {
		r.States = [][]uint64{}
	}
	w.cur = r
}

// Append adds one row. state must have length words (ignored when words is
// zero).
func (w *Writer) Append(hash, key uint64, state []uint64) {
	if w.cur == nil {
		w.grow()
	}
	r := w.cur
	if !w.dropHashes {
		r.Hashes = append(r.Hashes, hash)
	}
	r.Keys = append(r.Keys, key)
	for i := 0; i < w.words; i++ {
		r.States[i] = append(r.States[i], state[i])
	}
	w.rows++
	if len(r.Keys) >= w.chunkRows {
		w.sealed = append(w.sealed, r)
		w.cur = nil
	}
}

// AppendBlock bulk-copies rows [from, to) of the given columns. This is the
// flush path of the software-write-combining buffers: one copy per column
// instead of per-row appends.
func (w *Writer) AppendBlock(hashes, keys []uint64, states [][]uint64, from, to int) {
	for from < to {
		if w.cur == nil {
			w.grow()
		}
		r := w.cur
		space := w.chunkRows - len(r.Keys)
		n := to - from
		if n > space {
			n = space
		}
		if !w.dropHashes {
			r.Hashes = append(r.Hashes, hashes[from:from+n]...)
		}
		r.Keys = append(r.Keys, keys[from:from+n]...)
		for i := 0; i < w.words; i++ {
			r.States[i] = append(r.States[i], states[i][from:from+n]...)
		}
		w.rows += n
		from += n
		if len(r.Keys) >= w.chunkRows {
			w.sealed = append(w.sealed, r)
			w.cur = nil
		}
	}
}

// Seal finishes the writer and returns all chunks as runs. The writer can
// keep being used afterwards; already-sealed chunks are not returned twice.
func (w *Writer) Seal() []*Run {
	out := w.sealed
	w.sealed = nil
	if w.cur != nil && w.cur.Len() > 0 {
		out = append(out, w.cur)
		w.cur = nil
	}
	return out
}

// SealInto appends all finished runs into the bucket.
func (w *Writer) SealInto(b *Bucket) {
	for _, r := range w.Seal() {
		b.Add(r)
	}
}

// Concat merges all runs of a bucket into one contiguous run. It is used by
// tests and by finalization paths that need a single dense fragment.
func Concat(b *Bucket, words int) *Run {
	n := b.Rows()
	out := &Run{
		Hashes: make([]uint64, 0, n),
		Keys:   make([]uint64, 0, n),
		States: make([][]uint64, words),
	}
	for i := range out.States {
		out.States[i] = make([]uint64, 0, n)
	}
	agg := true
	carry := true
	for _, r := range b.Runs {
		if r.Hashes == nil {
			carry = false
		}
	}
	for _, r := range b.Runs {
		if carry {
			out.Hashes = append(out.Hashes, r.Hashes...)
		}
		out.Keys = append(out.Keys, r.Keys...)
		for i := 0; i < words; i++ {
			out.States[i] = append(out.States[i], r.States[i]...)
		}
		agg = agg && r.Aggregated
	}
	if !carry {
		out.Hashes = nil
	}
	// A concatenation of aggregated runs is NOT aggregated in general
	// (the same key may occur in several source runs), except when there is
	// at most one source run.
	out.Aggregated = agg && len(b.Runs) <= 1
	return out
}
