package datagen

// General-key generators: the uint64 distributions above, re-skinned as
// URL-like string keys, composite multi-column tuples, and NULL masks,
// for exercising the key-interning layer under every skew shape the
// paper's evaluation uses. All are injective mappings from the underlying
// uint64 key, so the realized group count of a general-key dataset equals
// that of its uint64 twin — differential oracles can compare them 1:1.

import (
	"fmt"
	"math"

	"cacheagg/internal/xrand"
)

// stringKeyHosts is the host-name fan-out of StringKey; small enough that
// generated URLs share hosts (realistic prefix redundancy for the
// dictionary), large enough to spread hashing.
const stringKeyHosts = 50

// StringKey maps a uint64 key to a URL-like string. The mapping is
// injective — distinct keys give distinct strings — so string-keyed
// datasets have exactly the group structure of their uint64 source.
func StringKey(k uint64) string {
	return fmt.Sprintf("https://host-%02d.example.com/item/%s", k%stringKeyHosts, base36(k))
}

// base36 renders k in lowercase base-36, the path tail of StringKey.
func base36(k uint64) string {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	if k == 0 {
		return "0"
	}
	var buf [13]byte // ceil(64 / log2(36)) digits suffice
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = digits[k%36]
		k /= 36
	}
	return string(buf[i:])
}

// GenerateStrings materializes the dataset of s as a string key column:
// the uint64 dataset mapped through StringKey row by row.
func GenerateStrings(s Spec) []string {
	keys := Generate(s)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = StringKey(k)
	}
	return out
}

// GenerateComposite materializes the dataset of s as width uint64 key
// columns whose row-wise tuples are an injective decomposition of the
// uint64 keys (a division chain in a base just large enough to cover K),
// so the composite dataset has exactly the group structure of the uint64
// one. width must be at least 1.
func GenerateComposite(s Spec, width int) [][]uint64 {
	if width < 1 {
		panic("datagen: composite width must be at least 1")
	}
	keys := Generate(s)
	base := uint64(math.Ceil(math.Pow(float64(s.K), 1/float64(width))))
	if base < 2 {
		base = 2
	}
	cols := make([][]uint64, width)
	for c := range cols {
		cols[c] = make([]uint64, len(keys))
	}
	for i, k := range keys {
		for c := 0; c < width; c++ {
			cols[c][i] = k % base
			k /= base
		}
		// Keys at or above base^width (possible for skewed realized keys
		// only if K was undershot by the base rounding) keep their
		// remainder in the last column, preserving injectivity.
		cols[width-1][i] += k * base
	}
	return cols
}

// NullMask returns a deterministic mask marking ~frac of n rows NULL.
func NullMask(n int, frac float64, seed uint64) []bool {
	mask := make([]bool, n)
	if frac <= 0 {
		return mask
	}
	thresh := uint64(math.Min(frac, 1) * float64(math.MaxUint64))
	rng := xrand.NewXoshiro256(seed)
	for i := range mask {
		mask[i] = rng.Next() <= thresh
	}
	return mask
}
