package external

// Reconciliation between the execution trace and the Stats counters: both
// observe the same spill and merge activity through independent code
// paths, so their totals must agree exactly.

import (
	"testing"

	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/trace"
)

func TestTraceReconcilesWithStats(t *testing.T) {
	for _, seq := range []bool{false, true} {
		in := mkInput(datagen.Uniform, 50000, 20000, 11)
		rec := trace.NewRecorder(1 << 16)
		cfg := testCfg(8192)
		cfg.SequentialMerge = seq
		cfg.Tracer = rec
		res, err := Aggregate(cfg, in)
		if err != nil {
			t.Fatalf("seq=%v: %v", seq, err)
		}
		checkResult(t, res, in)
		s := rec.Snapshot()
		if got := int64(s.Sums[trace.KindSpillWrite]); got != res.Stats.SpilledRows {
			t.Errorf("seq=%v: spill-write row sum %d, Stats.SpilledRows %d", seq, got, res.Stats.SpilledRows)
		}
		if s.Counts[trace.KindSpillWrite] == 0 || s.Counts[trace.KindSpillRead] == 0 {
			t.Errorf("seq=%v: no spill traffic traced (writes %d, reads %d)",
				seq, s.Counts[trace.KindSpillWrite], s.Counts[trace.KindSpillRead])
		}
		if st, fin := s.Counts[trace.KindMergeStart], s.Counts[trace.KindMergeFinish]; st == 0 || st != fin {
			t.Errorf("seq=%v: merge starts %d, finishes %d", seq, st, fin)
		}
		if got := s.Counts[trace.KindPrefetchLoad]; got != int64(res.Stats.PrefetchedPartitions) {
			t.Errorf("seq=%v: prefetch-load count %d, Stats.PrefetchedPartitions %d",
				seq, got, res.Stats.PrefetchedPartitions)
		}
		if got := s.Counts[trace.KindSpillRetry]; got != res.Stats.SpillRetries {
			t.Errorf("seq=%v: spill-retry count %d, Stats.SpillRetries %d", seq, got, res.Stats.SpillRetries)
		}
	}
}

func TestTraceSpillRetriesMatchInjectedFaults(t *testing.T) {
	// Inject transient write faults: every absorbed retry must appear in
	// the trace, in lockstep with Stats.SpillRetries.
	flaky := faultfs.NewFlaky(faultfs.OS(), faultfs.OpWrite, 50, 2)
	rec := trace.NewRecorder(trace.DefaultCapacity)
	cfg := testCfg(100)
	cfg.TempDir = t.TempDir()
	cfg.FS = flaky
	cfg.Retry = noSleepPolicy()
	cfg.Tracer = rec
	in := &core.Input{Keys: sameDigitKeys(300)}
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if res.Stats.SpillRetries == 0 {
		t.Fatal("fault injection produced no retries")
	}
	s := rec.Snapshot()
	if got := s.Counts[trace.KindSpillRetry]; got != res.Stats.SpillRetries {
		t.Fatalf("spill-retry events %d, Stats.SpillRetries %d", got, res.Stats.SpillRetries)
	}
}
