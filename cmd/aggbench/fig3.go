package main

import (
	"time"

	"cacheagg/internal/bench"
	"cacheagg/internal/columnar"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/partition"
	"cacheagg/internal/runs"
	"cacheagg/internal/xrand"
)

// fig3 reproduces Figure 3: payload bandwidth of the partitioning routine
// as each tuning step is applied, on uniformly distributed random data.
//
//	memcpy      straight copy (the bandwidth ceiling)
//	key         naive scatter by key digits
//	hash        naive scatter by hash digits
//	key+swc     software write-combining, key digits
//	hash+swc    software write-combining, hash digits (not unrolled)
//	hash+swc+oo 16-way unrolled hashing ahead of the scatter
//	two-level   +oo flushing into the two-level list-of-arrays (the final
//	            routine; the paper measures ~2% below over-allocation)
//	map         applying a partition mapping vector to an aggregate column
func fig3(sc scale) []*bench.Table {
	n := sc.n
	rng := xrand.NewXoshiro256(7)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Next()
	}
	payload := int64(n) * 16 // bytes moved per run: hash + key columns

	t := bench.NewTable(
		"Figure 3 — partitioning bandwidth (uniform random, N=2^"+itoa(sc.logN)+")",
		"variant", "MB/s", "vs memcpy")

	measure := func(f func()) float64 {
		d := bench.MedianOf(sc.reps, f)
		return bench.BandwidthMBs(d, payload)
	}

	// memcpy reference: move the same bytes with plain copies.
	dstA := make([]uint64, n)
	dstB := make([]uint64, n)
	memcpy := measure(func() {
		copy(dstA, keys)
		copy(dstB, keys)
	})

	naive := func(hash hashfn.Func) func() {
		return func() {
			writers := make([]*runs.Writer, hashfn.Fanout)
			for p := range writers {
				writers[p] = runs.NewWriter(0, 0)
			}
			for _, k := range keys {
				h := hash(k)
				writers[h>>56].Append(h, k, nil)
			}
		}
	}
	naiveKey := measure(naive(hashfn.Identity))
	naiveHash := measure(naive(hashfn.Murmur2))

	// SWC without unrolling: one row at a time through the buffers.
	swc := func(hash hashfn.Func) func() {
		return func() {
			s := partition.New(partition.Config{Level: 0})
			for _, k := range keys {
				h := hash(k)
				s.Add(h, k, nil)
			}
			s.Flush()
		}
	}
	swcKey := measure(swc(hashfn.Identity))
	swcHash := measure(swc(hashfn.Murmur2))

	// SWC + out-of-order unrolling: hash a block of 16 ahead, then scatter
	// the block (the paper's `oo` variant), flushing into the two-level
	// structure. This is the production routine.
	hashScratch := make([]uint64, 16)
	swcOO := measure(func() {
		s := partition.New(partition.Config{Level: 0})
		i := 0
		for ; i+16 <= n; i += 16 {
			for j := 0; j < 16; j++ {
				hashScratch[j] = hashfn.Murmur2(keys[i+j])
			}
			s.Scatter(hashScratch, keys[i:i+16], nil)
		}
		for ; i < n; i++ {
			s.Add(hashfn.Murmur2(keys[i]), keys[i], nil)
		}
		s.Flush()
	})

	// Over-allocated outputs instead of the two-level structure (the
	// Wassenberg-style variant the paper rejects for industry systems).
	overalloc := measure(func() {
		outH := make([][]uint64, hashfn.Fanout)
		outK := make([][]uint64, hashfn.Fanout)
		per := n/hashfn.Fanout*2 + 1024
		for p := range outH {
			outH[p] = make([]uint64, 0, per)
			outK[p] = make([]uint64, 0, per)
		}
		for i := 0; i+16 <= n; i += 16 {
			for j := 0; j < 16; j++ {
				hashScratch[j] = hashfn.Murmur2(keys[i+j])
			}
			for j := 0; j < 16; j++ {
				h := hashScratch[j]
				p := h >> 56
				outH[p] = append(outH[p], h)
				outK[p] = append(outK[p], keys[i+j])
			}
		}
	})

	// map: apply a partition mapping vector to an aggregate column (the
	// column movement of Section 3.3). Payload here is the value column.
	col := make([]uint64, n)
	for i := range col {
		col[i] = rng.Next()
	}
	mapping, _ := columnar.PartitionMapping(keys, 0)
	var mapDur time.Duration
	mapDur = bench.MedianOf(sc.reps, func() {
		columnar.ApplyMappingSWC(mapping, col)
	})
	mapBW := bench.BandwidthMBs(mapDur, int64(n)*8)

	add := func(name string, bw float64) {
		t.AddRow(name, bw, bw/memcpy)
	}
	add("memcpy", memcpy)
	add("key (naive)", naiveKey)
	add("hash (naive)", naiveHash)
	add("key+swc", swcKey)
	add("hash+swc", swcHash)
	add("hash+swc+oo (overalloc)", overalloc)
	add("hash+swc+oo (two-level)", swcOO)
	add("map (aggregate column)", mapBW)
	return []*bench.Table{t}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
