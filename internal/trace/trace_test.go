package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestEmitCountersAndEvents(t *testing.T) {
	r := NewRecorder(64)
	r.Emit(KindTableSplit, 3, 1, 42, 11.5)
	r.Emit(KindTableSplit, 3, 1, 42, 2.5)
	r.Emit(KindStrategySwitch, 0, 0, -1, 3.0)
	r.AddPhase(PhaseTableBuild, 100)
	r.AddPhase(PhaseTableBuild, 50)
	r.AddPhase(PhaseMerge, 7)

	s := r.Snapshot()
	if s.Emitted != 3 || s.Dropped != 0 {
		t.Fatalf("emitted=%d dropped=%d, want 3/0", s.Emitted, s.Dropped)
	}
	if got := s.Counts[KindTableSplit]; got != 2 {
		t.Fatalf("table-split count = %d, want 2", got)
	}
	if got := s.Sums[KindTableSplit]; got != 14.0 {
		t.Fatalf("table-split sum = %v, want 14", got)
	}
	if got := s.Counts[KindStrategySwitch]; got != 1 {
		t.Fatalf("switch count = %d, want 1", got)
	}
	if s.Phases[PhaseTableBuild] != 150 || s.Phases[PhaseMerge] != 7 {
		t.Fatalf("phases = %v", s.Phases)
	}

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len(events) = %d, want 3", len(evs))
	}
	if evs[0].Kind != KindTableSplit || evs[0].Worker != 3 || evs[0].Level != 1 ||
		evs[0].Part != 42 || evs[0].Value != 11.5 || evs[0].Seq != 0 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[2].Kind != KindStrategySwitch || evs[2].Part != -1 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Nanos < evs[i-1].Nanos {
			t.Fatalf("timestamps not monotone: %d then %d", evs[i-1].Nanos, evs[i].Nanos)
		}
	}
}

func TestRingWrapKeepsNewestAndExactCounts(t *testing.T) {
	r := NewRecorder(8) // power of two already
	const total = 100
	for i := 0; i < total; i++ {
		r.Emit(KindSpillWrite, 1, 0, int64(i), 1)
	}
	s := r.Snapshot()
	if s.Emitted != total || s.Dropped != total-8 {
		t.Fatalf("emitted=%d dropped=%d, want %d/%d", s.Emitted, s.Dropped, total, total-8)
	}
	if s.Counts[KindSpillWrite] != total {
		t.Fatalf("count = %d, want %d (counters must survive ring wrap)", s.Counts[KindSpillWrite], total)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("len(events) = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(total - 8 + i)
		if ev.Seq != wantSeq || ev.Part != int64(wantSeq) {
			t.Fatalf("event %d = %+v, want seq/part %d", i, ev, wantSeq)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	r := NewRecorder(5)
	if len(r.slots) != 8 {
		t.Fatalf("capacity 5 rounded to %d, want 8", len(r.slots))
	}
	r = NewRecorder(0)
	if len(r.slots) != DefaultCapacity {
		t.Fatalf("default capacity = %d, want %d", len(r.slots), DefaultCapacity)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRecorder(16)
	r.Emit(KindTableEmit, 0, 0, 1, 10)
	r.AddPhase(PhaseIntake, 5)
	pre := r.Snapshot()
	r.Emit(KindTableEmit, 0, 0, 2, 7)
	r.Emit(KindMergeStart, 1, 1, 3, 0)
	r.AddPhase(PhaseIntake, 20)
	d := r.Snapshot().Sub(pre)
	if d.Emitted != 2 || d.Counts[KindTableEmit] != 1 || d.Sums[KindTableEmit] != 7 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Counts[KindMergeStart] != 1 || d.Phases[PhaseIntake] != 20 {
		t.Fatalf("delta = %+v", d)
	}
}

// TestConcurrentEmit hammers the ring and counters from many goroutines;
// under -race this proves the seqlock protocol is data-race free, and the
// counter totals must be exact regardless.
func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder(256)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Kind(i%int(NumKinds)), w, i%3, int64(i), 1.0)
				if i%64 == 0 {
					r.Events() // concurrent reader
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	var totalCount int64
	var totalSum float64
	for k := 0; k < NumKinds; k++ {
		totalCount += s.Counts[k]
		totalSum += s.Sums[k]
	}
	if totalCount != workers*per {
		t.Fatalf("total count = %d, want %d", totalCount, workers*per)
	}
	if math.Abs(totalSum-workers*per) > 1e-6 {
		t.Fatalf("total sum = %v, want %v", totalSum, workers*per)
	}
	evs := r.Events()
	if len(evs) == 0 || len(evs) > 256 {
		t.Fatalf("len(events) = %d, want (0,256]", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind >= NumKinds || ev.Worker >= workers || ev.Value != 1.0 {
			t.Fatalf("torn event leaked: %+v", ev)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(16)
	r.Emit(KindStrategySwitch, 2, 0, -1, 12.25)
	r.Emit(KindSpillWrite, 0, 1, 9, 512)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first struct {
		Seq    uint64  `json:"seq"`
		Nanos  int64   `json:"t_ns"`
		Kind   string  `json:"kind"`
		Worker int     `json:"worker"`
		Level  int     `json:"level"`
		Part   int64   `json:"part"`
		Value  float64 `json:"value"`
	}
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if first.Kind != "strategy-switch" || first.Worker != 2 || first.Part != -1 || first.Value != 12.25 {
		t.Fatalf("line 0 = %+v", first)
	}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		n := k.String()
		if n == "" || seen[n] {
			t.Fatalf("kind %d has bad/duplicate name %q", k, n)
		}
		seen[n] = true
	}
	for p := Phase(0); p < NumPhases; p++ {
		n := p.String()
		if n == "" || seen[n] {
			t.Fatalf("phase %d has bad/duplicate name %q", p, n)
		}
		seen[n] = true
	}
	if Kind(200).String() != "kind(200)" || Phase(200).String() != "phase(200)" {
		t.Fatal("out-of-range String() not defensive")
	}
}

func BenchmarkEmit(b *testing.B) {
	r := NewRecorder(DefaultCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(KindTableSplit, i&7, 0, int64(i), 11.0)
	}
}
