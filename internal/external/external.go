// Package external implements out-of-core (spilling) aggregation on top of
// the in-memory operator — the disk level of the external memory model.
//
// The paper's Section 2 analysis is deliberately general: "this model holds
// in the cache setting as well as in the disk-based setting". This package
// is the disk instantiation of HASHAGGREGATION-OPTIMIZED, with the paper's
// in-memory operator as its in-"cache" (= in-RAM) leaf:
//
//  1. The input is consumed in chunks sized to the memory budget. Each
//     chunk is aggregated in memory by the core operator — early
//     aggregation at the RAM level, exactly like the HASHING routine's
//     role at the cache level.
//  2. Each chunk's partial groups are appended to one of 256 spill
//     partitions chosen by the first digit of the group's hash. Partition
//     files hold (key, partial...) records — "runs" on disk, in the
//     original sense of the word.
//  3. Every partition is merged with the super-aggregate functions (COUNT
//     partials merge by SUM, and AVG is decomposed into SUM and COUNT up
//     front). Partitions still exceeding the budget recurse on the next
//     hash digit — Algorithm 2, one storage level up.
//
// Like the in-memory operator, the algorithm needs no estimate of the
// output cardinality, degrades gracefully with K, and benefits from input
// locality through the chunk-level early aggregation of step 1.
package external

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/hashfn"
)

// Config configures an external aggregation.
type Config struct {
	// MemoryBudgetRows caps the rows aggregated in memory at a time
	// (chunk size and partition-merge threshold). 0 selects 1<<20.
	MemoryBudgetRows int
	// TempDir hosts the spill files; "" selects the system default.
	TempDir string
	// Core configures the in-memory operator used for the leaves.
	Core core.Config
}

func (c Config) withDefaults() Config {
	if c.MemoryBudgetRows <= 0 {
		c.MemoryBudgetRows = 1 << 20
	}
	return c
}

// Stats reports what the external pass did.
type Stats struct {
	// Chunks is the number of input chunks pre-aggregated in memory.
	Chunks int
	// SpilledRows / SpilledBytes count partial-group records written.
	SpilledRows  int64
	SpilledBytes int64
	// MergeLevels is the deepest disk-level recursion reached.
	MergeLevels int
}

// Result is the aggregation output plus spill statistics. Group order is
// hash order (by construction of the partition recursion).
type Result struct {
	Keys  []uint64
	Aggs  [][]int64
	Stats Stats
}

// Groups returns the number of groups.
func (r *Result) Groups() int { return len(r.Keys) }

// plan decomposes the original specs into width-1 partials that can be
// finalized, spilled and merged independently: AVG becomes (SUM, COUNT),
// everything else is itself. mergeKind holds the super-aggregate of each
// decomposed column.
type plan struct {
	orig      []agg.Spec
	dec       []agg.Spec
	mergeKind []agg.Kind
	off       []int // first decomposed column of each original spec
}

func buildPlan(specs []agg.Spec) *plan {
	p := &plan{orig: specs}
	for _, s := range specs {
		p.off = append(p.off, len(p.dec))
		switch s.Kind {
		case agg.Count:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Count})
			p.mergeKind = append(p.mergeKind, agg.Sum)
		case agg.Sum:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Sum, Col: s.Col})
			p.mergeKind = append(p.mergeKind, agg.Sum)
		case agg.Min:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Min, Col: s.Col})
			p.mergeKind = append(p.mergeKind, agg.Min)
		case agg.Max:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Max, Col: s.Col})
			p.mergeKind = append(p.mergeKind, agg.Max)
		case agg.Avg:
			p.dec = append(p.dec,
				agg.Spec{Kind: agg.Sum, Col: s.Col},
				agg.Spec{Kind: agg.Count})
			p.mergeKind = append(p.mergeKind, agg.Sum, agg.Sum)
		default:
			panic("external: invalid aggregate kind")
		}
	}
	return p
}

// width returns the number of decomposed partial columns.
func (p *plan) width() int { return len(p.dec) }

// Aggregate executes the out-of-core GROUP BY.
func Aggregate(cfg Config, in *core.Input) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	p := buildPlan(in.Specs)

	dir, err := os.MkdirTemp(cfg.TempDir, "cacheagg-spill-*")
	if err != nil {
		return nil, fmt.Errorf("external: %w", err)
	}
	defer os.RemoveAll(dir)

	e := &extExec{cfg: cfg, plan: p, dir: dir}

	parts, err := e.spillInput(in)
	if err != nil {
		return nil, err
	}
	res := &Result{Aggs: make([][]int64, len(in.Specs))}
	for d := 0; d < hashfn.Fanout; d++ {
		if parts[d] == nil {
			continue
		}
		if err := parts[d].finish(); err != nil {
			return nil, err
		}
		if err := e.mergePartition(parts[d].path, 1, res); err != nil {
			return nil, err
		}
	}
	res.Stats = e.stats
	return res, nil
}

type extExec struct {
	cfg    Config
	plan   *plan
	dir    string
	stats  Stats
	nextID int
}

// recSize is the byte size of one spilled record: key + decomposed partials.
func (e *extExec) recSize() int { return 8 + 8*e.plan.width() }

// spillInput runs phase 1 and returns one open spill writer per non-empty
// level-0 partition.
func (e *extExec) spillInput(in *core.Input) ([]*spillWriter, error) {
	writers := make([]*spillWriter, hashfn.Fanout)
	budget := e.cfg.MemoryBudgetRows
	n := len(in.Keys)
	for lo := 0; lo < n; lo += budget {
		hi := min(lo+budget, n)
		chunk := &core.Input{Keys: in.Keys[lo:hi], Specs: e.plan.dec}
		chunk.AggCols = make([][]int64, len(in.AggCols))
		for c := range in.AggCols {
			chunk.AggCols[c] = in.AggCols[c][lo:hi]
		}
		part, err := core.Aggregate(e.cfg.Core, chunk)
		if err != nil {
			return nil, err
		}
		e.stats.Chunks++
		if err := e.spillPartial(part, writers); err != nil {
			return nil, err
		}
	}
	return writers, nil
}

// spillPartial appends each group of an in-memory partial result to the
// level-0 spill partition of its hash digit. Because every decomposed
// partial is width-1 and distributive, the finalized columns of the core
// result ARE the partial states.
func (e *extExec) spillPartial(part *core.Result, writers []*spillWriter) error {
	rec := make([]byte, e.recSize())
	for r := 0; r < part.Groups(); r++ {
		d := hashfn.Digit(part.Hashes[r], 0)
		w := writers[d]
		if w == nil {
			var err error
			w, err = e.newWriter()
			if err != nil {
				return err
			}
			writers[d] = w
		}
		binary.LittleEndian.PutUint64(rec, part.Keys[r])
		for c := 0; c < e.plan.width(); c++ {
			binary.LittleEndian.PutUint64(rec[8+8*c:], uint64(part.Aggs[c][r]))
		}
		if err := w.write(rec); err != nil {
			return err
		}
		e.stats.SpilledRows++
		e.stats.SpilledBytes += int64(len(rec))
	}
	return nil
}

type spillWriter struct {
	path string
	f    *os.File
	buf  *bufio.Writer
}

func (e *extExec) newWriter() (*spillWriter, error) {
	e.nextID++
	path := filepath.Join(e.dir, fmt.Sprintf("part-%06d.spill", e.nextID))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &spillWriter{path: path, f: f, buf: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (w *spillWriter) write(rec []byte) error {
	_, err := w.buf.Write(rec)
	return err
}

func (w *spillWriter) finish() error {
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// mergePartition aggregates all partial records of one partition file,
// recursing on the next hash digit when the partition exceeds the memory
// budget. The file is deleted after reading.
func (e *extExec) mergePartition(path string, level int, res *Result) error {
	if level > e.stats.MergeLevels {
		e.stats.MergeLevels = level
	}
	keys, partials, err := e.readSpill(path)
	if err != nil {
		return err
	}
	os.Remove(path)

	if len(keys) > e.cfg.MemoryBudgetRows && level < hashfn.MaxLevels {
		// Too big for an in-memory merge: re-partition by the next digit.
		writers := make([]*spillWriter, hashfn.Fanout)
		rec := make([]byte, e.recSize())
		for i := range keys {
			d := hashfn.Digit(hashfn.Murmur2(keys[i]), level)
			w := writers[d]
			if w == nil {
				w, err = e.newWriter()
				if err != nil {
					return err
				}
				writers[d] = w
			}
			binary.LittleEndian.PutUint64(rec, keys[i])
			for c := 0; c < e.plan.width(); c++ {
				binary.LittleEndian.PutUint64(rec[8+8*c:], partials[c][i])
			}
			if err := w.write(rec); err != nil {
				return err
			}
			e.stats.SpilledRows++
			e.stats.SpilledBytes += int64(len(rec))
		}
		keys, partials = nil, nil
		for _, w := range writers {
			if w == nil {
				continue
			}
			if err := w.finish(); err != nil {
				return err
			}
			if err := e.mergePartition(w.path, level+1, res); err != nil {
				return err
			}
		}
		return nil
	}

	e.mergeInMemory(keys, partials, res)
	return nil
}

// mergeInMemory merges partial rows by key with the per-column
// super-aggregates and appends finalized groups to res.
func (e *extExec) mergeInMemory(keys []uint64, partials [][]uint64, res *Result) {
	index := make(map[uint64]int, 1024)
	var outKeys []uint64
	width := e.plan.width()
	out := make([][]uint64, width)
	for i := range keys {
		k := keys[i]
		s, ok := index[k]
		if !ok {
			s = len(outKeys)
			index[k] = s
			outKeys = append(outKeys, k)
			for c := 0; c < width; c++ {
				out[c] = append(out[c], partials[c][i])
			}
			continue
		}
		for c := 0; c < width; c++ {
			st := [1]uint64{out[c][s]}
			src := [1]uint64{partials[c][i]}
			e.plan.mergeKind[c].Merge(st[:], src[:])
			out[c][s] = st[0]
		}
	}
	res.Keys = append(res.Keys, outKeys...)
	for si, s := range e.plan.orig {
		off := e.plan.off[si]
		col := res.Aggs[si]
		for g := range outKeys {
			if s.Kind == agg.Avg {
				sum := int64(out[off][g])
				cnt := int64(out[off+1][g])
				if cnt == 0 {
					col = append(col, 0)
				} else {
					col = append(col, sum/cnt)
				}
			} else {
				col = append(col, int64(out[off][g]))
			}
		}
		res.Aggs[si] = col
	}
}

// readSpill loads a partition file into columnar form.
func (e *extExec) readSpill(path string) ([]uint64, [][]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	rec := make([]byte, e.recSize())
	var keys []uint64
	partials := make([][]uint64, e.plan.width())
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return keys, partials, nil
			}
			return nil, nil, fmt.Errorf("external: corrupt spill file %s: %w", path, err)
		}
		keys = append(keys, binary.LittleEndian.Uint64(rec))
		for c := range partials {
			partials[c] = append(partials[c], binary.LittleEndian.Uint64(rec[8+8*c:]))
		}
	}
}
