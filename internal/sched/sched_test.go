package sched

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cacheagg/internal/testutil"
)

func TestPoolRunsSingleTask(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int32
	p.Run(func(ctx *Ctx) { ran.Add(1) })
	if ran.Load() != 1 {
		t.Fatalf("task ran %d times", ran.Load())
	}
}

func TestPoolRunsAllSpawnedTasks(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	var ran atomic.Int32
	p.Run(func(ctx *Ctx) {
		for i := 0; i < n; i++ {
			ctx.Spawn(func(*Ctx) { ran.Add(1) })
		}
	})
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
}

func TestPoolNestedSpawns(t *testing.T) {
	// Recursive task tree: every node spawns children down to depth 0.
	// Node count for branching 3, depth 6: (3^7-1)/2 = 1093.
	p := NewPool(8)
	var ran atomic.Int32
	var spawn func(depth int) Task
	spawn = func(depth int) Task {
		return func(ctx *Ctx) {
			ran.Add(1)
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				ctx.Spawn(spawn(depth - 1))
			}
		}
	}
	p.Run(spawn(6))
	if ran.Load() != 1093 {
		t.Fatalf("ran %d nodes, want 1093", ran.Load())
	}
}

func TestPoolWorkerIDsInRange(t *testing.T) {
	p := NewPool(3)
	var mu sync.Mutex
	seen := map[int]bool{}
	p.Run(func(ctx *Ctx) {
		for i := 0; i < 200; i++ {
			ctx.Spawn(func(c *Ctx) {
				if c.Worker < 0 || c.Worker >= 3 {
					t.Errorf("worker id %d out of range", c.Worker)
				}
				if c.Workers() != 3 {
					t.Errorf("Workers() = %d", c.Workers())
				}
				mu.Lock()
				seen[c.Worker] = true
				mu.Unlock()
			})
		}
	})
	if len(seen) == 0 {
		t.Fatal("no tasks ran")
	}
}

func TestPoolStealingSpreadsWork(t *testing.T) {
	// All tasks are spawned from one worker's deque; with more than one
	// worker and enough blocking-free tasks, at least one task should be
	// stolen. We detect execution by a non-spawning worker.
	if NewPool(0).Workers() < 1 {
		t.Fatal("NewPool(0) must have at least one worker")
	}
	p := NewPool(4)
	var byWorker [4]atomic.Int64
	p.Run(func(ctx *Ctx) {
		for i := 0; i < 10000; i++ {
			ctx.Spawn(func(c *Ctx) {
				byWorker[c.Worker].Add(1)
				// A little work so others have time to steal.
				s := 0
				for j := 0; j < 100; j++ {
					s += j
				}
				_ = s
			})
		}
	})
	total := int64(0)
	for i := range byWorker {
		total += byWorker[i].Load()
	}
	if total != 10000 {
		t.Fatalf("executed %d, want 10000", total)
	}
}

func TestPoolSequentialReuse(t *testing.T) {
	p := NewPool(2)
	for round := 0; round < 3; round++ {
		var ran atomic.Int32
		p.Run(func(ctx *Ctx) {
			for i := 0; i < 50; i++ {
				ctx.Spawn(func(*Ctx) { ran.Add(1) })
			}
		})
		if ran.Load() != 50 {
			t.Fatalf("round %d: ran %d", round, ran.Load())
		}
	}
}

func TestMorselsCoverRangeExactlyOnce(t *testing.T) {
	const n = 100000
	m := NewMorsels(n, 7)
	covered := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := m.Next()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			}
		}()
	}
	wg.Wait()
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestMorselsEmptyRange(t *testing.T) {
	m := NewMorsels(0, 10)
	if _, _, ok := m.Next(); ok {
		t.Fatal("empty range should yield nothing")
	}
}

func TestMorselsDefaultGrain(t *testing.T) {
	m := NewMorsels(DefaultGrain*2+1, 0)
	lo, hi, ok := m.Next()
	if !ok || lo != 0 || hi != DefaultGrain {
		t.Fatalf("first morsel [%d,%d) ok=%v", lo, hi, ok)
	}
	// Last morsel is the remainder.
	m.Next()
	lo, hi, ok = m.Next()
	if !ok || hi-lo != 1 {
		t.Fatalf("tail morsel [%d,%d) ok=%v", lo, hi, ok)
	}
	if _, _, ok := m.Next(); ok {
		t.Fatal("range should be exhausted")
	}
}

func TestMorselsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMorsels(-1, 1)
}

func TestPoolSingleWorker(t *testing.T) {
	p := NewPool(1)
	var order []int
	p.Run(func(ctx *Ctx) {
		order = append(order, 0)
		ctx.Spawn(func(*Ctx) { order = append(order, 1) })
		ctx.Spawn(func(*Ctx) { order = append(order, 2) })
	})
	if len(order) != 3 {
		t.Fatalf("ran %d tasks", len(order))
	}
	// Single worker pops LIFO: 0 then 2 then 1.
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("unexpected order %v (LIFO expected)", order)
	}
}

func BenchmarkSpawnAndRun(b *testing.B) {
	p := NewPool(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(func(ctx *Ctx) {
			for j := 0; j < 100; j++ {
				ctx.Spawn(func(*Ctx) {})
			}
		})
	}
}

func BenchmarkMorsels(b *testing.B) {
	m := NewMorsels(1<<30, 1024)
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.Next(); !ok {
			// b.N can exceed the morsel count; start a fresh range.
			m = NewMorsels(1<<30, 1024)
		}
	}
}

func TestPoolTaskPanicBecomesError(t *testing.T) {
	p := NewPool(4)
	err := p.Run(func(ctx *Ctx) { panic("boom") })
	if err == nil {
		t.Fatal("panicking task must surface as an error")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error should carry the panic value and context, got: %v", err)
	}
}

func TestPoolPanicDrainsWithoutDeadlock(t *testing.T) {
	// A panic in the middle of a large task graph must not strand the
	// pending counter: every worker exits and Run returns.
	p := NewPool(4)
	var ran atomic.Int32
	err := p.Run(func(ctx *Ctx) {
		for i := 0; i < 500; i++ {
			i := i
			ctx.Spawn(func(*Ctx) {
				if i == 250 {
					panic("mid-graph")
				}
				ran.Add(1)
			})
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Not all tasks may have run (teardown drains), but the pool must be
	// reusable afterwards with a clean slate.
	var again atomic.Int32
	if err := p.Run(func(ctx *Ctx) { again.Add(1) }); err != nil {
		t.Fatalf("pool not reusable after panic: %v", err)
	}
	if again.Load() != 1 {
		t.Fatalf("reuse ran %d tasks", again.Load())
	}
}

func TestPoolFirstPanicWins(t *testing.T) {
	p := NewPool(4)
	err := p.Run(func(ctx *Ctx) {
		for i := 0; i < 8; i++ {
			ctx.Spawn(func(*Ctx) { panic("multi") })
		}
	})
	if err == nil || !strings.Contains(err.Error(), "multi") {
		t.Fatalf("err = %v", err)
	}
}

func TestCtxFailAbortsRunWithTypedError(t *testing.T) {
	p := NewPool(4)
	sentinel := errors.New("budget exceeded")
	var ranAfter atomic.Int32
	err := p.Run(func(c *Ctx) {
		c.Fail(sentinel)
		// Children spawned after a Fail are drained, not executed.
		for !c.Aborted() {
			runtime.Gosched()
		}
		for i := 0; i < 64; i++ {
			c.Spawn(func(*Ctx) { ranAfter.Add(1) })
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the failed task's typed error", err)
	}
	if ranAfter.Load() != 0 {
		t.Fatalf("%d tasks ran after Fail", ranAfter.Load())
	}
	// First failure wins; nil Fail is a no-op; pool is reusable.
	if err := p.Run(func(c *Ctx) { c.Fail(nil) }); err != nil {
		t.Fatalf("pool not reusable after Fail, or nil Fail recorded: %v", err)
	}
}

func TestCtxFailFirstErrorWins(t *testing.T) {
	p := NewPool(4)
	first := errors.New("first")
	err := p.Run(func(c *Ctx) {
		c.Fail(first)
		c.Fail(errors.New("second"))
	})
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want the first failure", err)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := p.RunContext(ctx, func(*Ctx) { ran.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("cancelled run must not execute any task")
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := p.RunContext(ctx, func(c *Ctx) {
		cancel()
		// Wait until every worker can observe the abort flag, then spawn:
		// none of these children may execute.
		for !c.Aborted() {
			runtime.Gosched()
		}
		for i := 0; i < 100; i++ {
			c.Spawn(func(*Ctx) { ran.Add(1) })
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran after cancellation", ran.Load())
	}
}

func TestRunContextNoGoroutineLeak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := NewPool(4)
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		p.RunContext(ctx, func(c *Ctx) {
			for j := 0; j < 50; j++ {
				c.Spawn(func(*Ctx) {})
			}
		})
		cancel()
	}
}

// TestOnStealObservesSteals floods worker 0's deque with slow tasks so the
// other workers must steal to participate, and checks the observer fires
// with sane indices. 64 tasks of ~1ms on 4 workers make a steal-free
// schedule practically impossible.
func TestOnStealObservesSteals(t *testing.T) {
	p := NewPool(4)
	var steals atomic.Int32
	var bad atomic.Int32
	p.OnSteal = func(thief, victim int) {
		steals.Add(1)
		if thief < 0 || thief >= 4 || victim < 0 || victim >= 4 || thief == victim {
			bad.Add(1)
		}
	}
	var ran atomic.Int32
	err := p.Run(func(c *Ctx) {
		for i := 0; i < 64; i++ {
			c.Spawn(func(*Ctx) {
				time.Sleep(time.Millisecond)
				ran.Add(1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("%d tasks ran, want 64", ran.Load())
	}
	if steals.Load() == 0 {
		t.Fatal("no steals observed for a 64-task single-producer run on 4 workers")
	}
	if bad.Load() != 0 {
		t.Fatalf("%d steal callbacks had invalid thief/victim indices", bad.Load())
	}
}
