package core

// Tests for the memory-governor integration: byte accounting, the typed
// over-budget abort, and the documented overshoot slack.

import (
	"errors"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/memgov"
)

func budgetInput(n, groups int) ([]uint64, [][]int64) {
	keys := make([]uint64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = uint64(i % groups)
		vals[i] = int64(i)
	}
	return keys, [][]int64{vals}
}

func TestUnlimitedGovernorAccountsWithoutFailing(t *testing.T) {
	gov := memgov.New(0) // unlimited: pure accounting
	keys, cols := budgetInput(200000, 50000)
	cfg := Config{Workers: 4, CacheBytes: 64 << 10, Governor: gov}
	res, err := Aggregate(cfg, &Input{
		Keys:    keys,
		AggCols: cols,
		Specs:   []agg.Spec{{Kind: agg.Sum, Col: 0}},
	})
	if err != nil {
		t.Fatalf("unlimited governor must never fail a run: %v", err)
	}
	if res.Groups() != 50000 {
		t.Fatalf("groups = %d, want 50000", res.Groups())
	}
	if gov.HighWater() == 0 {
		t.Fatal("governor saw no reservations")
	}
	// Fixed machinery alone is several hundred KiB for 4 workers; the
	// high-water mark must at least cover it.
	if gov.HighWater() < 4*(64<<10) {
		t.Fatalf("high water %d implausibly low", gov.HighWater())
	}
}

func TestTinyBudgetFailsWithTypedError(t *testing.T) {
	// A budget far below even the fixed per-worker machinery must be
	// rejected up front with ErrMemoryBudget.
	gov := memgov.New(4 << 10)
	keys, cols := budgetInput(1000, 100)
	cfg := Config{Workers: 2, CacheBytes: 32 << 10, Governor: gov}
	_, err := Aggregate(cfg, &Input{
		Keys:    keys,
		AggCols: cols,
		Specs:   []agg.Spec{{Kind: agg.Sum, Col: 0}},
	})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
}

func TestMidRunBudgetAbortIsTyped(t *testing.T) {
	// A budget that admits the fixed machinery but not the materialized
	// intermediates must abort mid-run — cooperatively, with the typed
	// error, not a panic.
	keys, cols := budgetInput(400000, 400000) // all-distinct: max intermediates
	cfg := Config{Workers: 2, CacheBytes: 32 << 10}

	// Find the fixed cost first with an unlimited probe on a trivial input.
	probe := memgov.New(0)
	probeCfg := cfg
	probeCfg.Governor = probe
	if _, err := Aggregate(probeCfg, &Input{Keys: []uint64{1}}); err != nil {
		t.Fatal(err)
	}

	// Budget: fixed machinery plus a sliver — nowhere near 400k distinct
	// rows of intermediates (≥ 6 MB).
	gov := memgov.New(probe.HighWater() + 64<<10)
	cfg.Governor = gov
	_, err := Aggregate(cfg, &Input{
		Keys:    keys,
		AggCols: cols,
		Specs:   []agg.Spec{{Kind: agg.Sum, Col: 0}},
	})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	// Overshoot is bounded: checks run once per morsel per worker, and a
	// worker's cache batches at most DefaultCacheGrain before flushing.
	// One morsel (16384 rows) of all-distinct Sum rows costs 16 bytes each.
	slack := int64(2) * (16384*16 + memgov.DefaultCacheGrain + 64<<10)
	if gov.HighWater() > gov.Budget()+slack {
		t.Fatalf("high water %d exceeds budget %d + slack %d",
			gov.HighWater(), gov.Budget(), slack)
	}
}

func TestGovernorResultMatchesUngovernedRun(t *testing.T) {
	// Accounting must be observation-only: same input, same result, with
	// and without a (sufficient) governor.
	keys, cols := budgetInput(50000, 1000)
	in := &Input{Keys: keys, AggCols: cols, Specs: []agg.Spec{{Kind: agg.Min, Col: 0}}}
	plain, err := Aggregate(Config{Workers: 2, CacheBytes: 32 << 10}, in)
	if err != nil {
		t.Fatal(err)
	}
	gov := memgov.New(1 << 30)
	ruled, err := Aggregate(Config{Workers: 2, CacheBytes: 32 << 10, Governor: gov}, in)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Groups() != ruled.Groups() {
		t.Fatalf("groups differ: %d vs %d", plain.Groups(), ruled.Groups())
	}
	want := map[uint64]int64{}
	for i, k := range plain.Keys {
		want[k] = plain.Aggs[0][i]
	}
	for i, k := range ruled.Keys {
		if v, ok := want[k]; !ok || v != ruled.Aggs[0][i] {
			t.Fatalf("key %d: %d vs %d (ok=%v)", k, ruled.Aggs[0][i], v, ok)
		}
	}
	if gov.OverBudget() {
		t.Fatal("1 GiB budget must not be exceeded by a 50k-row input")
	}
}
