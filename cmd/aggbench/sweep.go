package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/bench"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/trace"
	"cacheagg/internal/xrand"
)

// sweepRecord is one point of the standard hot-path sweep, and the schema of
// the -json output (BENCH_phase3.json is a list of these).
type sweepRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// sweepRecords collects the records of the last `sweep` run for -json.
var sweepRecords []sweepRecord

// hostProfile marks the -json output as a host (bare-metal) profile; set
// from the -host flag. Container and host numbers must stay attributable.
var hostProfile bool

// benchMeta identifies the machine behind a -json record file. Without it
// a BENCH_phase*.json is a bag of numbers that silently invites
// cross-machine comparisons; with it, `aggbench compare` readers can see
// that a delta spans different hardware.
type benchMeta struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	CPUModel    string `json:"cpu_model,omitempty"`
	HostProfile bool   `json:"host_profile"`
}

// sweepFile is the object form of a -json record file: metadata plus the
// records. Older baselines (BENCH_phase3/4/8.json) are bare record lists;
// readRecords accepts both.
type sweepFile struct {
	Meta    benchMeta     `json:"meta"`
	Records []sweepRecord `json:"records"`
}

func currentMeta() benchMeta {
	return benchMeta{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUModel:    cpuModel(),
		HostProfile: hostProfile,
	}
}

// cpuModel best-effort reads the CPU model name; empty when unknown.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// sweepPoint measures one sweep point with the testing package's benchmark
// driver (auto-scaled iteration counts, wall-clock + allocation accounting).
func sweepPoint(name string, rows int, fn func()) sweepRecord {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	ns := float64(res.NsPerOp())
	return sweepRecord{
		Name:        name,
		NsPerOp:     ns,
		RowsPerSec:  float64(rows) / (ns / 1e9),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// sweep runs the standard hot-path sweep: the uniform-K Distinct sweeps for
// the main strategies plus the multi-column SUM points, all at N = 2^logn.
// This is the sweep behind BENCH_phase3.json; rerun it via
//
//	aggbench sweep -json BENCH.json
//
// to compare machines or commits (pair two files with benchstat or simply
// diff rows_per_sec).
func sweep(sc scale) []*bench.Table {
	sweepRecords = sweepRecords[:0]
	t := bench.NewTable(
		fmt.Sprintf("Standard sweep — hot-path benchmarks (N=2^%d, P=%d)", sc.logN, sc.workers),
		"point", "ns/op", "rows/s", "allocs/op")

	add := func(r sweepRecord) {
		sweepRecords = append(sweepRecords, r)
		t.AddRow(r.Name, fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.3e", r.RowsPerSec), r.AllocsPerOp)
	}

	strategies := []core.Strategy{
		core.HashingOnly(),
		core.PartitionAlways(1),
		core.DefaultAdaptive(),
	}
	kExps := []int{8, 14, 19}
	for _, s := range strategies {
		cfg := core.Config{Strategy: s, Workers: sc.workers, CacheBytes: sc.cache}
		for _, kExp := range kExps {
			if kExp >= sc.logN {
				continue
			}
			keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: 1 << uint(kExp), Seed: 11})
			name := fmt.Sprintf("distinct/%s/K=2^%d", s.Name(), kExp)
			add(sweepPoint(name, sc.n, func() {
				if _, err := core.Distinct(cfg, keys); err != nil {
					panic(err)
				}
			}))
			tracePoint(name, func(rec *trace.Recorder) {
				tcfg := cfg
				tcfg.Tracer = rec
				if _, err := core.Distinct(tcfg, keys); err != nil {
					panic(err)
				}
			})
		}
	}

	// Multi-column SUM points (the Figure 7 shape at C = 1 and 2).
	rng := xrand.NewXoshiro256(9)
	cols := make([][]int64, 2)
	for c := range cols {
		cols[c] = make([]int64, sc.n)
		for i := range cols[c] {
			cols[c][i] = int64(rng.Next() % 1000)
		}
	}
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: 1 << 16, Seed: 13})
	for _, nc := range []int{1, 2} {
		in := &core.Input{Keys: keys, AggCols: cols[:nc]}
		for c := 0; c < nc; c++ {
			in.Specs = append(in.Specs, agg.Spec{Kind: agg.Sum, Col: c})
		}
		cfg := core.Config{Strategy: core.DefaultAdaptive(), Workers: sc.workers, CacheBytes: sc.cache}
		name := fmt.Sprintf("sum/C=%d/K=2^16", nc)
		add(sweepPoint(name, sc.n, func() {
			if _, err := core.Aggregate(cfg, in); err != nil {
				panic(err)
			}
		}))
		tracePoint(name, func(rec *trace.Recorder) {
			tcfg := cfg
			tcfg.Tracer = rec
			if _, err := core.Aggregate(tcfg, in); err != nil {
				panic(err)
			}
		})
	}
	return []*bench.Table{t}
}

// writeSweepJSON writes the records of the last sweep to path, wrapped in
// the object form with the machine's metadata.
func writeSweepJSON(path string) error {
	if len(sweepRecords) == 0 {
		return fmt.Errorf("no sweep records to write (use -json with the sweep command)")
	}
	data, err := json.MarshalIndent(sweepFile{Meta: currentMeta(), Records: sweepRecords}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
