package external

// Fuzz target for the spill-file decoder: arbitrary bytes must never
// panic readSpill, and whatever it accepts must be structurally sound.
// Seeds cover both format versions — v2 (block codec) as written by this
// build, and v1 (record-per-row) kept read-compatible.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"cacheagg/internal/agg"
)

// encodeSpillV1 builds valid version-1 spill-file bytes for a width-1
// plan: one 16-byte record per row, no block structure.
func encodeSpillV1(keys []uint64, partials []uint64) []byte {
	const recSize = 16
	crc := crc32.NewIEEE()
	buf := make([]byte, 0, spillHeaderSize+len(keys)*recSize+spillFooterSize)
	var hdr [spillHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint16(hdr[4:], spillVersion1)
	binary.LittleEndian.PutUint16(hdr[6:], recSize)
	buf = append(buf, hdr[:]...)
	crc.Write(hdr[:])
	var rec [recSize]byte
	for i, k := range keys {
		binary.LittleEndian.PutUint64(rec[0:], k)
		binary.LittleEndian.PutUint64(rec[8:], partials[i])
		buf = append(buf, rec[:]...)
		crc.Write(rec[:])
	}
	var ftr [spillFooterSize]byte
	binary.LittleEndian.PutUint64(ftr[0:], uint64(len(keys)))
	binary.LittleEndian.PutUint32(ftr[8:], crc.Sum32())
	binary.LittleEndian.PutUint32(ftr[12:], spillEndMagic)
	return append(buf, ftr[:]...)
}

// encodeSpillV2 builds valid version-2 spill-file bytes for a width-1
// plan: checksummed column-major blocks of up to spillBlockRows rows.
func encodeSpillV2(keys []uint64, partials []uint64) []byte {
	const recSize = 16
	crc := crc32.NewIEEE()
	buf := make([]byte, 0, spillHeaderSize+len(keys)*(recSize+1)+spillFooterSize)
	var hdr [spillHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint16(hdr[4:], spillVersion)
	binary.LittleEndian.PutUint16(hdr[6:], recSize)
	buf = append(buf, hdr[:]...)
	crc.Write(hdr[:])
	for lo := 0; lo < len(keys); lo += spillBlockRows {
		hi := min(lo+spillBlockRows, len(keys))
		n := hi - lo
		block := make([]byte, spillBlockHeader+n*recSize)
		binary.LittleEndian.PutUint32(block[0:], uint32(n))
		off := spillBlockHeader
		for _, k := range keys[lo:hi] {
			binary.LittleEndian.PutUint64(block[off:], k)
			off += 8
		}
		for _, v := range partials[lo:hi] {
			binary.LittleEndian.PutUint64(block[off:], v)
			off += 8
		}
		binary.LittleEndian.PutUint32(block[4:], crc32.ChecksumIEEE(block[spillBlockHeader:]))
		buf = append(buf, block...)
		crc.Write(block)
	}
	var ftr [spillFooterSize]byte
	binary.LittleEndian.PutUint64(ftr[0:], uint64(len(keys)))
	binary.LittleEndian.PutUint32(ftr[8:], crc.Sum32())
	binary.LittleEndian.PutUint32(ftr[12:], spillEndMagic)
	return append(buf, ftr[:]...)
}

func FuzzSpillDecoder(f *testing.F) {
	validV2 := encodeSpillV2([]uint64{1, 2, 3}, []uint64{10, 20, 30})
	validV1 := encodeSpillV1([]uint64{1, 2, 3}, []uint64{10, 20, 30})
	f.Add(validV2)
	f.Add(validV1)
	f.Add(encodeSpillV2(nil, nil))
	f.Add(encodeSpillV1(nil, nil))
	f.Add(validV2[:len(validV2)-5])      // truncated footer
	f.Add(validV2[:spillHeaderSize])     // header only
	f.Add(validV2[:spillHeaderSize+4])   // torn block header
	f.Add([]byte{})                      // empty file
	f.Add([]byte("CAGSnotreallyaspill")) // magic prefix, garbage rest
	for _, seed := range [][]byte{validV2, validV1} {
		mut := append([]byte(nil), seed...)
		mut[spillHeaderSize+spillBlockHeader+3] ^= 0xFF // bit rot in row data
		f.Add(mut)
	}
	big := make([]uint64, 3*spillBlockRows/2) // multi-block v2 file
	for i := range big {
		big[i] = uint64(i)
	}
	f.Add(encodeSpillV2(big, big))

	f.Fuzz(func(t *testing.T, data []byte) {
		e := &extExec{
			cfg:  Config{}.withDefaults(),
			plan: BuildPlan([]agg.Spec{{Kind: agg.Count}}),
		}
		path := filepath.Join(t.TempDir(), "fuzz.spill")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		keys, partials, err := e.readSpill(path)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted: the decode must be self-consistent, and re-encoding
		// and re-decoding it (through the current format) must reproduce
		// the same rows (the reserved header bytes are the only slack).
		if len(partials) != 1 || len(partials[0]) != len(keys) {
			t.Fatalf("inconsistent decode: %d keys, %d partial columns", len(keys), len(partials))
		}
		path2 := filepath.Join(t.TempDir(), "fuzz2.spill")
		if err := os.WriteFile(path2, encodeSpillV2(keys, partials[0]), 0o644); err != nil {
			t.Fatal(err)
		}
		keys2, partials2, err := e.readSpill(path2)
		if err != nil {
			t.Fatalf("re-encoded accepted file rejected: %v", err)
		}
		if len(keys2) != len(keys) {
			t.Fatalf("round-trip changed row count: %d vs %d", len(keys2), len(keys))
		}
		for i := range keys {
			if keys2[i] != keys[i] || partials2[0][i] != partials[0][i] {
				t.Fatalf("round-trip changed row %d", i)
			}
		}
	})
}
