package serve

// The result cache: repeated queries are the common case of a multi-tenant
// service ("the same dashboard refreshing for a thousand users"), and the
// operator's determinism — identical input and aggregates yield a
// bit-identical result regardless of budgets, workers or spill behaviour —
// makes the cached body exactly the body a fresh execution would produce.
//
// Three layers keep hits nearly free and misses cheap:
//
//   - a bloom pre-filter in front of the LRU: a key the filter has never
//     seen is a definite miss, answered with four hash probes and no lock
//     (the SNIPPETS.md bloom-guarded LRU idiom, ~80 ns misses);
//   - a byte-bounded LRU holding pre-marshaled response bodies;
//   - singleflight dedup: identical queries arriving while one is already
//     executing wait for that leader instead of burning budget on N
//     identical executions. Followers share only success — a failed
//     leader's waiters retry admission themselves, because the leader's
//     failure (its deadline, its cancellation) is not theirs.

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheEntry is one cached result body.
type cacheEntry struct {
	key    string // full canonical query key (collision guard)
	body   []byte // pre-marshaled row+trailer JSONL
	groups int
	elem   *list.Element
}

// bloomBits is the pre-filter size: 2^18 bits = 32 KiB, fine for the
// ~thousands of distinct queries a byte-bounded result cache can hold.
const bloomBits = 1 << 18

// resultCache is the bloom-pre-filtered LRU with singleflight dedup.
// A nil *resultCache disables caching (every lookup misses, Do always
// executes).
type resultCache struct {
	maxBytes int64

	// bloom is a bit set over canonical keys ever inserted. It admits
	// false positives (they fall through to an LRU miss) but no false
	// negatives, so a clear probe answers "miss" without the lock.
	// Inserts-only; rebuilt from live entries when saturation would make
	// false positives common.
	bloom        [bloomBits / 64]atomic.Uint64
	bloomInserts atomic.Int64

	mu      sync.Mutex
	entries map[uint64]*cacheEntry // by 64-bit key hash
	order   *list.List             // front = most recent
	bytes   int64

	flights map[uint64]*flight

	metrics *Metrics
}

// flight is one in-progress execution of a query, shared by followers.
type flight struct {
	done   chan struct{}
	body   []byte
	groups int
	ok     bool
}

func newResultCache(maxBytes int64, m *Metrics) *resultCache {
	if maxBytes <= 0 {
		return nil
	}
	return &resultCache{
		maxBytes: maxBytes,
		entries:  make(map[uint64]*cacheEntry),
		order:    list.New(),
		flights:  make(map[uint64]*flight),
		metrics:  m,
	}
}

// fnv1a is the canonical key hash (64-bit FNV-1a, inlined to avoid the
// hash.Hash allocation on the hit path).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// bloomProbes derives four probe positions from the key hash.
func bloomProbes(h uint64) [4]uint32 {
	var p [4]uint32
	for i := range p {
		p[i] = uint32(h>>(i*16)) % bloomBits
		h = h*0x9e3779b97f4a7c15 + 1
	}
	return p
}

func (c *resultCache) bloomContains(h uint64) bool {
	for _, p := range bloomProbes(h) {
		if c.bloom[p/64].Load()&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

func (c *resultCache) bloomAdd(h uint64) {
	for _, p := range bloomProbes(h) {
		word := &c.bloom[p/64]
		for {
			old := word.Load()
			if old&(1<<(p%64)) != 0 || word.CompareAndSwap(old, old|1<<(p%64)) {
				break
			}
		}
	}
	// Rebuild once the insert count reaches the classic m/(k·ln2)-ish
	// saturation point: stale bits from evicted entries otherwise erode
	// the pre-filter into a pass-through.
	if c.bloomInserts.Add(1) > bloomBits/16 {
		c.rebuildBloom()
	}
}

// rebuildBloom resets the filter to the live entries. Holding the lock
// keeps it consistent with the map; at 32 KiB the sweep is microseconds.
func (c *resultCache) rebuildBloom() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.bloom {
		c.bloom[i].Store(0)
	}
	n := int64(0)
	for h := range c.entries {
		for _, p := range bloomProbes(h) {
			word := &c.bloom[p/64]
			word.Store(word.Load() | 1<<(p%64))
		}
		n++
	}
	c.bloomInserts.Store(n)
}

// get returns the cached body for the canonical key, or ok=false.
func (c *resultCache) get(key string) (body []byte, groups int, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	h := fnv1a(key)
	if !c.bloomContains(h) {
		return nil, 0, false // definite miss, no lock taken
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[h]
	if !ok || e.key != key {
		return nil, 0, false
	}
	c.order.MoveToFront(e.elem)
	return e.body, e.groups, true
}

// put inserts a result body, evicting least-recently-used entries to stay
// under the byte bound. Bodies larger than the whole cache are not stored.
func (c *resultCache) put(key string, body []byte, groups int) {
	if c == nil || int64(len(body)) > c.maxBytes {
		return
	}
	h := fnv1a(key)
	c.mu.Lock()
	if old, ok := c.entries[h]; ok {
		// Same hash: refresh (same key) or replace (collision — rare
		// enough that keeping the newcomer is fine).
		c.bytes -= int64(len(old.body))
		c.order.Remove(old.elem)
		delete(c.entries, h)
	}
	e := &cacheEntry{key: key, body: body, groups: groups}
	e.elem = c.order.PushFront(e)
	c.entries[h] = e
	c.bytes += int64(len(body))
	for c.bytes > c.maxBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, fnv1a(ev.key))
		c.bytes -= int64(len(ev.body))
	}
	if c.metrics != nil {
		c.metrics.CacheEntries.Store(int64(len(c.entries)))
		c.metrics.CacheBytes.Store(c.bytes)
	}
	c.mu.Unlock()
	c.bloomAdd(h)
}

// join registers interest in an in-flight execution of key. It returns
// either an existing flight to wait on (lead=false) or a fresh one the
// caller must complete via finish (lead=true). A nil cache always leads
// with a nil flight.
func (c *resultCache) join(key string) (f *flight, lead bool) {
	if c == nil {
		return nil, true
	}
	h := fnv1a(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[h]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[h] = f
	return f, true
}

// finish completes a leader's flight: on ok the body is published to
// followers and the cache; either way the flight is deregistered and
// followers are released.
func (c *resultCache) finish(key string, f *flight, body []byte, groups int, ok bool) {
	if c == nil {
		return
	}
	h := fnv1a(key)
	f.body, f.groups, f.ok = body, groups, ok
	c.mu.Lock()
	delete(c.flights, h)
	c.mu.Unlock()
	close(f.done)
	if ok {
		c.put(key, body, groups)
	}
}
