package serve

// The HTTP face of the service. One handler = one query session:
//
//	decode → resolve input → cache lookup → singleflight join →
//	admission (queue + ladder) → AggregateContext under the grant →
//	marshal → cache fill → respond
//
// with the request context — carrying the client's deadline and
// disconnect — threaded through every stage, panic containment around the
// whole session, and typed errors on every exit path.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cacheagg"
	"cacheagg/internal/external"
)

// Config assembles a Server. Registry is required; everything else
// defaults sensibly.
type Config struct {
	// Registry is the set of hosted datasets.
	Registry *Registry
	// Admission tunes the admission controller (budget, queue, ladder).
	Admission AdmitConfig
	// Limits bounds request decoding.
	Limits Limits
	// QueryWorkers is the per-query worker count (0 = GOMAXPROCS).
	QueryWorkers int
	// QueryCacheBytes is the per-worker cache budget of each query
	// (0 = operator default). Small services sharing one box set this
	// well below the operator's 4 MiB default.
	QueryCacheBytes int
	// ResultCacheBytes bounds the result cache (0 disables caching).
	ResultCacheBytes int64
	// DefaultDeadline bounds queries that set no deadline_ms
	// (0 = no default deadline).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (0 = 60 s).
	MaxDeadline time.Duration
	// Tracer, when non-nil, observes every query's execution and is
	// exported through /metrics.
	Tracer *cacheagg.Tracer

	// IngestDir, when set, enables the /v1/ingest streaming API: each
	// session's durable checkpoints live in IngestDir/<session>. NewServer
	// resumes every unfinished session found there, and Drain seals each
	// open session's final epoch before returning.
	IngestDir string
	// IngestQueueDepth bounds each session's ingest queue in blocks
	// (0 = stream default).
	IngestQueueDepth int
	// IngestEpochMaxRows seals an epoch checkpoint after this many rows
	// per session (0 = stream default).
	IngestEpochMaxRows int64
	// IngestBudgetBytes caps each session's buffered-blocks + partial-state
	// memory (0 = unlimited). A starved budget turns into 429 backpressure
	// on push, never into unbounded growth.
	IngestBudgetBytes int64
	// IngestNoSync skips checkpoint fsyncs (tests and benchmarks only).
	IngestNoSync bool
}

// Server is the aggregation service. Build with NewServer, mount
// Handler() on an http.Server, call Drain on shutdown.
type Server struct {
	cfg     Config
	ctrl    *Controller
	cache   *resultCache
	metrics *Metrics
	mux     *http.ServeMux

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	sessMu   sync.Mutex
	sessions map[string]*ingestSession
}

// NewServer validates cfg and assembles the service.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: Config.Registry is required")
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 60 * time.Second
	}
	m := &Metrics{}
	s := &Server{
		cfg:     cfg,
		ctrl:    NewController(cfg.Admission, m),
		cache:   newResultCache(cfg.ResultCacheBytes, m),
		metrics: m,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.sessions = make(map[string]*ingestSession)
	if cfg.IngestDir != "" {
		if err := s.resumeSessions(); err != nil {
			return nil, err
		}
		s.metrics.IngestSessions.Store(int64(len(s.sessions)))
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counter set (tests, embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Ledger exposes the admission ledger (tests assert it drains to zero).
func (s *Server) Ledger() interface{ Reserved() int64 } { return s.ctrl.Ledger() }

// Drain gracefully shuts the service down: new work is rejected with a
// typed draining error, queued and running queries finish (or hit their
// deadlines), and Drain returns when the last session completes — or
// ctx's error if the drain deadline passes first.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.ctrl.SetDraining()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Query sessions have all completed; now seal every open ingest
		// session's buffered rows into a final epoch. Buffered blocks are
		// made durable, never dropped — a drained server's streams resume
		// exactly where producers left them.
		return s.drainSessions(ctx)
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d sessions in flight: %w",
			s.metrics.Inflight.Load(), ctx.Err())
	}
}

// enter registers a session against the drain barrier; false = draining.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	status, state := http.StatusOK, "serving"
	if draining {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"status":   state,
		"datasets": s.cfg.Registry.Names(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	snap.QueueLength = s.ctrl.QueueLen()
	snap.LedgerReserved = s.ctrl.Ledger().Reserved()
	snap.LedgerWaiting = s.ctrl.Ledger().Waiting()
	out := map[string]any{"serve": snap}
	if s.cfg.Tracer != nil {
		out["trace"] = s.cfg.Tracer.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleAggregate runs one query session end to end. The outer recover is
// the per-session panic containment: a poisoned query produces a typed
// 500 (or a torn response when rows were already streamed) and the server
// lives on.
func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.Panics.Add(1)
			s.writeError(w, errf(ErrPanic, nil, "contained panic: %v", rec))
		}
	}()
	if r.Method != http.MethodPost {
		s.writeError(w, errf(ErrBadRequest, nil, "use POST"))
		return
	}
	if !s.enter() {
		s.writeError(w, errf(ErrDraining, nil, "server is draining"))
		return
	}
	defer s.inflight.Done()
	s.metrics.Inflight.Add(1)
	defer s.metrics.Inflight.Add(-1)

	req, err := DecodeRequest(r.Body, s.cfg.Limits)
	if err != nil {
		s.writeError(w, err)
		return
	}
	input, ds, err := s.resolveInput(req)
	if err != nil {
		s.writeError(w, err)
		return
	}

	ctx := r.Context()
	deadline := time.Duration(req.DeadlineMillis) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	key := canonicalKey(req, input)
	if !req.NoCache {
		if body, groups, ok := s.cache.get(key); ok {
			s.metrics.CacheHits.Add(1)
			s.respond(w, responseMeta{groups: groups, cache: "hit"}, body, start)
			return
		}
	}

	body, groups, meta, err := s.execute(ctx, req, input, ds, key)
	if err != nil {
		s.writeError(w, err)
		s.observeOutcome(start)
		return
	}
	s.respond(w, responseMeta{groups: groups, cache: meta.cache, mode: meta.mode,
		queued: meta.queued, waited: meta.waited}, body, start)
}

// sessionMeta carries the how-was-it-admitted story into the response
// header line.
type sessionMeta struct {
	cache  string
	mode   string
	queued bool
	waited time.Duration
}

// execute resolves the singleflight, admission and operator stages of one
// query. It returns the marshaled rows+trailer body.
func (s *Server) execute(ctx context.Context, req *Request, input cacheagg.Input, ds *Dataset, key string) ([]byte, int, sessionMeta, error) {
	useCache := !req.NoCache && s.cache != nil
	for {
		var f *flight
		lead := true
		if useCache {
			// A hit may have landed between the first probe and now.
			if body, groups, ok := s.cache.get(key); ok {
				s.metrics.CacheHits.Add(1)
				return body, groups, sessionMeta{cache: "hit"}, nil
			}
			f, lead = s.cache.join(key)
		}
		if !lead {
			select {
			case <-f.done:
				if f.ok {
					s.metrics.CacheShared.Add(1)
					return f.body, f.groups, sessionMeta{cache: "shared"}, nil
				}
				// The leader failed for its own reasons (deadline,
				// cancellation, rejection); retry as a potential leader.
				continue
			case <-ctx.Done():
				return nil, 0, sessionMeta{}, s.mapContextErr(ctx)
			}
		}
		return s.leadFlight(ctx, req, input, ds, key, f, useCache)
	}
}

// leadFlight runs the leader side of a singleflight. The flight is
// finished on every exit path — including a panic unwinding through this
// frame — so followers can never hang on a dead leader.
func (s *Server) leadFlight(ctx context.Context, req *Request, input cacheagg.Input, ds *Dataset, key string, f *flight, useCache bool) (body []byte, groups int, meta sessionMeta, err error) {
	completed := false
	if useCache {
		defer func() {
			if !completed {
				s.cache.finish(key, f, nil, 0, false)
			}
		}()
	}
	body, groups, meta, err = s.admitAndRun(ctx, req, input, ds)
	if useCache {
		s.cache.finish(key, f, body, groups, err == nil)
		completed = true
	}
	return body, groups, meta, err
}

// admitAndRun is the admission + execution stage of a leader session.
func (s *Server) admitAndRun(ctx context.Context, req *Request, input cacheagg.Input, ds *Dataset) ([]byte, int, sessionMeta, error) {
	s.metrics.CacheMisses.Add(1)
	est := EstimateCost(len(input.GroupBy), len(input.Aggregates),
		s.cfg.QueryWorkers, s.cfg.QueryCacheBytes)
	grant, err := s.ctrl.Admit(ctx, req.priority(), est)
	if err != nil {
		if ctxErr := s.mapContextErr(ctx); ctxErr != nil && !isServeError(err) {
			return nil, 0, sessionMeta{}, ctxErr
		}
		return nil, 0, sessionMeta{}, err
	}
	defer grant.Release()
	s.metrics.Running.Add(1)
	defer s.metrics.Running.Add(-1)

	opts := cacheagg.Options{
		Workers:    s.cfg.QueryWorkers,
		CacheBytes: s.cfg.QueryCacheBytes,
		Tracer:     s.cfg.Tracer,
		Routine:    req.routine(),
	}
	if s.ctrl.Ledger().Budget() > 0 {
		// The grant is enforced byte-accurately by the query's own
		// governor; GrantExternal rides the same mechanism (a floor-sized
		// budget forces the in-memory attempt over budget immediately, so
		// the operator degrades to the spilling path).
		opts.MemoryBudgetBytes = grant.Bytes
	}
	res, err := runContained(ctx, input, opts)
	if err != nil {
		return nil, 0, sessionMeta{}, s.mapExecErr(ctx, err)
	}
	body, err := marshalBody(res, hasAvg(req), ds)
	if err != nil {
		s.metrics.InternalErrors.Add(1)
		return nil, 0, sessionMeta{}, errf(ErrInternal, err, "marshaling result: %v", err)
	}
	s.metrics.Succeeded.Add(1)
	meta := sessionMeta{cache: "miss", mode: grant.Mode.String(),
		queued: grant.Queued, waited: grant.WaitedFor}
	return body, res.Len(), meta, nil
}

// runContained shields the server from a poisoned query: a panic anywhere
// in the operator call becomes a typed error. (The operator contains its
// own worker panics already; this is the serve layer's belt to that
// suspenders.)
func runContained(ctx context.Context, in cacheagg.Input, opts cacheagg.Options) (res *cacheagg.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, errf(ErrPanic, nil, "contained panic in query execution: %v", rec)
		}
	}()
	if testHookExecute != nil {
		testHookExecute()
	}
	return cacheagg.AggregateContext(ctx, in, opts)
}

// testHookExecute, when set, runs at the top of every query execution.
// Tests use it to poison queries (panic containment) and to park
// executions (drain and cancellation races). Always nil in production.
var testHookExecute func()

// resolveInput turns the wire request into an operator input, bounds
// checking aggregate columns against the actual width. The resolved
// dataset (nil for inline queries) rides along so the response stage can
// decode general keys.
func (s *Server) resolveInput(req *Request) (cacheagg.Input, *Dataset, error) {
	var keys []uint64
	var cols [][]int64
	var ds *Dataset
	if req.Dataset != "" {
		d, err := s.cfg.Registry.Lookup(req.Dataset)
		if err != nil {
			return cacheagg.Input{}, nil, err
		}
		keys, cols, ds = d.Keys, d.Cols, d
	} else {
		keys, cols = req.Keys, req.Columns
	}
	for i, a := range req.Aggregates {
		f, _ := parseFunc(a.Func)
		if f != cacheagg.Count && a.Col >= len(cols) {
			return cacheagg.Input{}, nil, errf(ErrBadRequest, nil,
				"aggregate %d: column %d out of range (input has %d)", i, a.Col, len(cols))
		}
	}
	return cacheagg.Input{GroupBy: keys, Columns: cols, Aggregates: req.aggSpecs()}, ds, nil
}

// canonicalKey is the result-cache identity of a query: the input's
// identity plus the aggregate list. Budgets, workers, priorities and
// deadlines are deliberately absent — they cannot change the result.
// A forced routine is included even though every routine produces the
// same rows: an operator pinning a routine (usually to measure it) must
// actually run it, not be handed another routine's cached result.
func canonicalKey(req *Request, in cacheagg.Input) string {
	var b strings.Builder
	b.WriteString("v1\x00")
	if rt := req.routine(); rt != cacheagg.RoutineAuto {
		b.WriteString("r\x00")
		b.WriteString(rt.String())
		b.WriteByte('\x00')
	}
	if req.Dataset != "" {
		b.WriteString("d\x00")
		b.WriteString(req.Dataset)
	} else {
		b.WriteString("i\x00")
		b.WriteString(strconv.Itoa(len(in.GroupBy)))
		b.WriteByte('\x00')
		b.WriteString(strconv.FormatUint(hashColumns(in), 16))
	}
	for _, a := range req.Aggregates {
		b.WriteByte('\x00')
		b.WriteString(a.Func)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(a.Col))
	}
	return b.String()
}

// hashColumns digests inline input so ad-hoc queries cache too.
func hashColumns(in cacheagg.Input) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		for _, c := range buf {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	for _, k := range in.GroupBy {
		mix(k)
	}
	for _, col := range in.Columns {
		mix(uint64(len(col)))
		for _, v := range col {
			mix(uint64(v))
		}
	}
	return h
}

func hasAvg(req *Request) bool {
	for _, a := range req.Aggregates {
		if a.Func == "avg" {
			return true
		}
	}
	return false
}

// marshalBody renders the row and trailer lines of a response. Rows carry
// the group key and integer aggregates; float columns are included when
// an AVG was requested (exact averages). For general-key datasets every
// row additionally carries "k": the decoded original key values (one
// array element per key column; NULL encodes as JSON null). "g" stays the
// dense interned id — existing row parsers keep working unchanged.
func marshalBody(res *cacheagg.Result, withFloats bool, ds *Dataset) ([]byte, error) {
	var gcols []cacheagg.KeyColumn
	if ds != nil && ds.GeneralKeys() {
		var err error
		gcols, err = ds.Interner.DecodeGroups(res.Groups, ds.KeyTypes)
		if err != nil {
			return nil, err
		}
	}
	var b strings.Builder
	b.Grow(res.Len() * 32)
	row := struct {
		G uint64    `json:"g"`
		K []any     `json:"k,omitempty"`
		A []int64   `json:"a,omitempty"`
		F []float64 `json:"f,omitempty"`
	}{}
	enc := json.NewEncoder(&b)
	for i := 0; i < res.Len(); i++ {
		row.G = res.Groups[i]
		if gcols != nil {
			row.K = row.K[:0]
			for ci := range gcols {
				c := &gcols[ci]
				switch {
				case c.IsNull(i):
					row.K = append(row.K, nil)
				case c.Uint64s != nil:
					row.K = append(row.K, c.Uint64s[i])
				default:
					row.K = append(row.K, c.Strings[i])
				}
			}
		}
		row.A = row.A[:0]
		for _, col := range res.Aggs {
			row.A = append(row.A, col[i])
		}
		if withFloats {
			row.F = row.F[:0]
			for a := range res.Aggs {
				row.F = append(row.F, res.Float(a, i))
			}
		}
		if err := enc.Encode(&row); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(&b, "{\"done\":true,\"rows\":%d}\n", res.Len())
	return []byte(b.String()), nil
}

// responseMeta parameterizes the header line of a successful response.
type responseMeta struct {
	groups int
	cache  string
	mode   string
	queued bool
	waited time.Duration
}

// respond writes the JSONL success response: one header line, one line
// per group, one trailer line.
func (s *Server) respond(w http.ResponseWriter, meta responseMeta, body []byte, start time.Time) {
	w.Header().Set("Content-Type", "application/jsonl")
	hdr := map[string]any{"groups": meta.groups, "cache": meta.cache}
	if meta.mode != "" {
		hdr["mode"] = meta.mode
	}
	if meta.queued {
		hdr["queued"] = true
		hdr["wait_ms"] = math.Round(float64(meta.waited)/float64(time.Millisecond)*1000) / 1000
	}
	line, _ := json.Marshal(hdr)
	w.Write(append(line, '\n'))
	w.Write(body)
	s.observeOutcome(start)
}

// observeOutcome stamps the session latency histogram.
func (s *Server) observeOutcome(start time.Time) {
	s.metrics.ObserveLatency(time.Since(start))
}

// mapContextErr translates a finished context into the taxonomy: the
// request deadline maps to deadline_exceeded, a client disconnect to
// cancelled. nil when the context is still live.
func (s *Server) mapContextErr(ctx context.Context) error {
	switch ctx.Err() {
	case context.DeadlineExceeded:
		return errf(ErrDeadline, ctx.Err(), "query deadline exceeded")
	case context.Canceled:
		return errf(ErrCancelled, ctx.Err(), "client went away")
	default:
		return nil
	}
}

// mapExecErr classifies an operator failure.
func (s *Server) mapExecErr(ctx context.Context, err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		if mapped := s.mapContextErr(ctx); mapped != nil {
			return mapped
		}
	}
	var serr *Error
	if errors.As(err, &serr) {
		return serr // already typed (contained panic)
	}
	if errors.Is(err, cacheagg.ErrMemoryBudget) {
		// The grant was too small even for the spilling path's machinery
		// — a server sizing problem, retryable once pressure clears.
		s.metrics.RejectedBudget.Add(1)
		return withRetry(errf(ErrBudgetUnavailable, err,
			"grant too small for execution: %v", err), s.ctrl.cfg.RetryHint)
	}
	if errors.Is(err, external.ErrSpillBudget) {
		s.metrics.InternalErrors.Add(1)
		return errf(ErrInternal, err, "spill budget exhausted: %v", err)
	}
	s.metrics.InternalErrors.Add(1)
	return errf(ErrInternal, err, "execution failed: %v", err)
}

// isServeError reports whether err is already a typed serve error.
func isServeError(err error) bool {
	var serr *Error
	return errors.As(err, &serr)
}

// writeError renders a typed error as the JSON error envelope, counting
// it in the taxonomy metrics and stamping Retry-After when hinted.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	serr, ok := err.(*Error)
	if !ok {
		var e *Error
		if !errors.As(err, &e) {
			e = errf(ErrInternal, err, "%v", err)
		}
		serr = e
	}
	switch serr.Code {
	case ErrBadRequest.Code, ErrRequestTooLarge.Code, ErrUnknownDataset.Code:
		s.metrics.RejectedBad.Add(1)
	case ErrDraining.Code:
		s.metrics.RejectedDrain.Add(1)
	case ErrDeadline.Code:
		s.metrics.DeadlineExpired.Add(1)
	case ErrCancelled.Code:
		s.metrics.Cancelled.Add(1)
	}
	if serr.RetryAfter > 0 {
		secs := int64(serr.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(serr.Status)
	json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{
		"code":           serr.Code,
		"detail":         serr.Detail,
		"retry_after_ms": serr.RetryAfter.Milliseconds(),
	}})
}
