// Package faultfs defines the narrow filesystem interface the spill and
// checkpoint paths go through, the passthrough implementation backed by
// the real OS, and a deterministic fault-injecting wrapper.
//
// The injector fails the N-th operation of a chosen kind (create, open,
// write, sync, close, read, remove, rename) with a typed error, so tests
// can enumerate every distinct I/O site in turn and prove that each fault
// surfaces as a clean, wrapped error with no file handles or temp files
// left behind.
// Determinism matters: an injection plan is (Op, N), nothing is random, and
// the same plan always fails the same site.
//
// Beyond the permanent-fault injector, the package models *transient*
// faults — the EINTR/EAGAIN class of errors that succeed when simply tried
// again — and provides the two sides of that coin:
//
//   - NewFlaky injects a bounded streak of transient failures at a chosen
//     operation, and Chaos injects them randomly (but reproducibly, from a
//     seed) at every site;
//   - NewRetry wraps any FS with the capped-exponential-backoff retry
//     policy the spill path uses to ride out transient faults, counting
//     every retry for the operator's statistics.
//
// # Concurrency
//
// Every wrapper in this package — Injector (NewInjector/NewFlaky), Chaos,
// and Retry — is safe for concurrent use by any number of goroutines, as
// are the Files they hand out: the spill path merges partitions on a
// work-stealing pool, so one injector instance sees create/read/write/
// close/remove calls from many workers at once. Mutable injector state
// (operation counts, the chaos generator) sits behind a mutex; the cheap
// counters (Retry.Retries, Chaos.Faults) are atomics.
//
// Determinism under concurrency is necessarily weaker than single-threaded
// determinism. An (Op, N) injection plan still fires exactly once at the
// N-th operation of its kind — operations are numbered in mutex-acquisition
// order — but WHICH call site is the N-th now depends on the schedule.
// Likewise Chaos draws its fault decisions from the seeded generator in
// arrival order, so the per-op fault totals for a fixed operation count
// stay seed-determined while their placement varies run to run. Tests that
// must replay an exact fault-to-site mapping (e.g. the per-seed
// determinism soak) run the operator in its sequential-merge mode, which
// restores a deterministic operation order.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cacheagg/internal/xrand"
)

// File is the subset of *os.File the spill and checkpoint paths use.
// Spill files are scratch space that dies with the query and never call
// Sync; the streaming checkpoint path, whose whole point is surviving a
// crash, calls Sync on every sealed epoch file and manifest (and on the
// containing directory, opened through Open, to persist renames).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	// Stat reports the file's metadata; the spill reader uses the size to
	// locate the checksum footer.
	Stat() (os.FileInfo, error)
}

// FS is the filesystem interface of the spill and checkpoint paths.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	Remove(name string) error
	// Rename atomically replaces newname with oldname, the
	// commit point of the checkpoint manifest protocol.
	Rename(oldname, newname string) error
}

// OS returns the passthrough FS backed by package os.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Op identifies a kind of filesystem operation for counting and injection.
type Op int

const (
	OpCreate Op = iota
	OpOpen
	OpWrite
	OpClose
	OpRead
	OpRemove
	OpSync
	OpRename
	numOps
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpClose:
		return "close"
	case OpRead:
		return "read"
	case OpRemove:
		return "remove"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// InjectedError is the error returned by an injected fault.
type InjectedError struct {
	Op        Op   // the failed operation kind
	N         int  // which occurrence failed (1-based)
	Transient bool // a retry of the same operation would succeed
}

func (e *InjectedError) Error() string {
	kind := "injected"
	if e.Transient {
		kind = "injected transient"
	}
	return fmt.Sprintf("faultfs: %s %s failure (occurrence %d)", kind, e.Op, e.N)
}

// IsTransient classifies an error as transient: retrying the same
// operation has a reasonable chance of succeeding. It recognizes injected
// transient faults and the retryable errno class (EINTR, EAGAIN, EBUSY).
// Everything else — including context cancellation, corruption, and
// permanent injected faults — is permanent.
func IsTransient(err error) bool {
	var ie *InjectedError
	if errors.As(err, &ie) {
		return ie.Transient
	}
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EBUSY)
}

// Injector wraps an FS and fails the N-th operation of one kind. It is
// safe for concurrent use.
type Injector struct {
	inner     FS
	op        Op
	n         int // 1-based; <= 0 never triggers
	streak    int // how many consecutive occurrences fail (≥ 1)
	transient bool

	mu        sync.Mutex
	counts    [numOps]int
	triggered bool
}

// NewInjector wraps inner so that the n-th operation of kind op (1-based)
// fails with *InjectedError. All other operations pass through. n <= 0
// disables injection, leaving a pure operation counter.
func NewInjector(inner FS, op Op, n int) *Injector {
	return &Injector{inner: inner, op: op, n: n, streak: 1}
}

// NewFlaky wraps inner so that occurrences n … n+streak−1 of kind op fail
// with a *transient* InjectedError and every occurrence after the streak
// succeeds — the model of a fault that goes away when retried. streak < 1
// is treated as 1.
func NewFlaky(inner FS, op Op, n, streak int) *Injector {
	if streak < 1 {
		streak = 1
	}
	return &Injector{inner: inner, op: op, n: n, streak: streak, transient: true}
}

// Triggered reports whether the planned fault has fired.
func (i *Injector) Triggered() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.triggered
}

// Count returns how many operations of the kind have been attempted
// (including the failed one).
func (i *Injector) Count(op Op) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[op]
}

// step counts one operation and decides whether it is one to fail.
func (i *Injector) step(op Op) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts[op]++
	if op == i.op && i.n > 0 && i.counts[op] >= i.n && i.counts[op] < i.n+i.streak {
		i.triggered = true
		return &InjectedError{Op: op, N: i.counts[op], Transient: i.transient}
	}
	return nil
}

func (i *Injector) Create(name string) (File, error) {
	if err := i.step(OpCreate); err != nil {
		return nil, err
	}
	f, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i}, nil
}

func (i *Injector) Open(name string) (File, error) {
	if err := i.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i}, nil
}

func (i *Injector) Remove(name string) error {
	if err := i.step(OpRemove); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

func (i *Injector) Rename(oldname, newname string) error {
	if err := i.step(OpRename); err != nil {
		return err
	}
	return i.inner.Rename(oldname, newname)
}

// injFile counts and injects at the per-file operations. A failing Close
// still closes the underlying file, so the injector never leaks a real
// file descriptor into the test process.
type injFile struct {
	f   File
	inj *Injector
}

func (f *injFile) Read(p []byte) (int, error) {
	if err := f.inj.step(OpRead); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	if err := f.inj.step(OpWrite); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if err := f.inj.step(OpSync); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Close() error {
	err := f.inj.step(OpClose)
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (f *injFile) Stat() (os.FileInfo, error) { return f.f.Stat() }

// RetryPolicy configures the transient-fault retry of a Retry FS.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (the first
	// attempt included); values < 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles after
	// every failed retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
	// Sleep replaces time.Sleep in tests; nil selects time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, is invoked once per performed retry (i.e. in
	// lockstep with the Retries counter) with the operation kind being
	// retried. It runs on the retrying goroutine before the backoff sleep,
	// so it must be cheap and safe for concurrent calls.
	OnRetry func(op Op)
}

// DefaultRetryPolicy is the spill path's default: up to 4 attempts with
// 500 µs → 1 ms → 2 ms backoff. The total worst-case stall per operation
// stays well under the cost of failing a multi-second spilling query.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 500 * time.Microsecond, MaxDelay: 10 * time.Millisecond}
}

// Retry wraps an FS and retries transient failures (per IsTransient) with
// capped exponential backoff. Permanent errors are returned immediately.
//
// Close is deliberately NOT retried: POSIX releases the descriptor even
// when close fails, so a second close would hit a dead descriptor. Partial
// writes are not retried either — the caller cannot know how many bytes
// reached the file, so blind repetition would duplicate data; only writes
// that failed before consuming any input are tried again.
//
// Retry is safe for concurrent use and counts every performed retry, so
// the operator can surface "how flaky was the disk" in its statistics.
type Retry struct {
	inner   FS
	pol     RetryPolicy
	retries atomic.Int64
}

// NewRetry wraps inner with the given policy. Zero-value policy fields are
// filled from DefaultRetryPolicy.
func NewRetry(inner FS, pol RetryPolicy) *Retry {
	def := DefaultRetryPolicy()
	if pol.MaxAttempts == 0 {
		pol.MaxAttempts = def.MaxAttempts
	}
	if pol.BaseDelay == 0 {
		pol.BaseDelay = def.BaseDelay
	}
	if pol.MaxDelay == 0 {
		pol.MaxDelay = def.MaxDelay
	}
	if pol.Sleep == nil {
		pol.Sleep = time.Sleep
	}
	return &Retry{inner: inner, pol: pol}
}

// Retries returns how many retries have been performed (not counting the
// first attempt of any operation).
func (r *Retry) Retries() int64 { return r.retries.Load() }

// do runs fn, retrying transient failures per the policy. op names the
// operation kind for the OnRetry observer.
func (r *Retry) do(op Op, fn func() error) error {
	delay := r.pol.BaseDelay
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil || !IsTransient(err) || attempt >= r.pol.MaxAttempts {
			return err
		}
		r.retries.Add(1)
		if r.pol.OnRetry != nil {
			r.pol.OnRetry(op)
		}
		r.pol.Sleep(delay)
		delay *= 2
		if delay > r.pol.MaxDelay {
			delay = r.pol.MaxDelay
		}
	}
}

func (r *Retry) Create(name string) (File, error) {
	var f File
	err := r.do(OpCreate, func() error {
		var e error
		f, e = r.inner.Create(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{f: f, r: r}, nil
}

func (r *Retry) Open(name string) (File, error) {
	var f File
	err := r.do(OpOpen, func() error {
		var e error
		f, e = r.inner.Open(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{f: f, r: r}, nil
}

func (r *Retry) Remove(name string) error {
	return r.do(OpRemove, func() error { return r.inner.Remove(name) })
}

func (r *Retry) Rename(oldname, newname string) error {
	return r.do(OpRename, func() error { return r.inner.Rename(oldname, newname) })
}

// retryFile applies the retry policy to per-file operations.
type retryFile struct {
	f File
	r *Retry
}

func (f *retryFile) Read(p []byte) (int, error) {
	var n int
	err := f.r.do(OpRead, func() error {
		var e error
		n, e = f.f.Read(p)
		if n > 0 {
			// Bytes were consumed; never re-read them. io.ReadFull in the
			// caller continues from here.
			return nil
		}
		return e
	})
	if n > 0 {
		return n, nil
	}
	return n, err
}

func (f *retryFile) Write(p []byte) (int, error) {
	var n int
	err := f.r.do(OpWrite, func() error {
		var e error
		n, e = f.f.Write(p)
		if e != nil && n > 0 {
			// Partial write: position unknown, retrying would duplicate.
			return &permanentError{e}
		}
		return e
	})
	var pe *permanentError
	if errors.As(err, &pe) {
		return n, pe.err
	}
	return n, err
}

// Sync is retried on transient failure: fsync consumes no input, so a
// repeat after EINTR is safe and simply flushes again.
func (f *retryFile) Sync() error {
	return f.r.do(OpSync, func() error { return f.f.Sync() })
}

// Close is passed through without retry (see the Retry doc comment).
func (f *retryFile) Close() error { return f.f.Close() }

func (f *retryFile) Stat() (os.FileInfo, error) {
	var fi os.FileInfo
	err := f.r.do(OpRead, func() error {
		var e error
		fi, e = f.f.Stat()
		return e
	})
	return fi, err
}

// permanentError shields an error from transient classification.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }

// Chaos wraps an FS and fails each operation with a given probability,
// always transiently, driven by a seeded deterministic generator: the same
// seed yields the same fault schedule for the same operation sequence
// (modulo scheduling order under concurrency). It is the workload driver
// of the chaos/soak harness. Safe for concurrent use.
type Chaos struct {
	inner  FS
	perMil int
	mu     sync.Mutex
	rng    *xrand.Xoshiro256
	faults atomic.Int64
}

// NewChaos wraps inner so that every operation fails transiently with
// probability perMil/1000.
func NewChaos(inner FS, seed uint64, perMil int) *Chaos {
	return &Chaos{inner: inner, perMil: perMil, rng: xrand.NewXoshiro256(seed | 1)}
}

// Faults returns how many faults have been injected so far.
func (c *Chaos) Faults() int64 { return c.faults.Load() }

func (c *Chaos) step(op Op) error {
	c.mu.Lock()
	hit := c.rng.Intn(1000) < c.perMil
	c.mu.Unlock()
	if hit {
		n := int(c.faults.Add(1))
		return &InjectedError{Op: op, N: n, Transient: true}
	}
	return nil
}

func (c *Chaos) Create(name string) (File, error) {
	if err := c.step(OpCreate); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{f: f, c: c}, nil
}

func (c *Chaos) Open(name string) (File, error) {
	if err := c.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{f: f, c: c}, nil
}

func (c *Chaos) Remove(name string) error {
	if err := c.step(OpRemove); err != nil {
		return err
	}
	return c.inner.Remove(name)
}

func (c *Chaos) Rename(oldname, newname string) error {
	if err := c.step(OpRename); err != nil {
		return err
	}
	return c.inner.Rename(oldname, newname)
}

// chaosFile injects transient faults at the per-file operations. Like
// injFile, a faulted Close still closes the underlying file so no real
// descriptor leaks into the test process.
type chaosFile struct {
	f File
	c *Chaos
}

func (f *chaosFile) Read(p []byte) (int, error) {
	if err := f.c.step(OpRead); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *chaosFile) Write(p []byte) (int, error) {
	if err := f.c.step(OpWrite); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *chaosFile) Sync() error {
	if err := f.c.step(OpSync); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *chaosFile) Close() error {
	err := f.c.step(OpClose)
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (f *chaosFile) Stat() (os.FileInfo, error) { return f.f.Stat() }
