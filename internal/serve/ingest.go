package serve

// Streaming ingest sessions: the serving face of the durable stream
// subsystem. POST /v1/ingest carries one JSON operation per request —
// begin, push, seal, query, status, finish — against a named session
// whose checkpoints live under Config.IngestDir/<name>. Sessions survive
// process death: NewServer resumes every unfinished session it finds on
// disk, and Server.Drain seals each open session's final epoch instead of
// dropping buffered blocks, so a SIGTERM (or a SIGKILL plus restart)
// costs availability, never acknowledged-then-checkpointed data.
//
// Backpressure is typed end to end: a push that the stream refuses comes
// back as HTTP 429 with code "backpressure" and a Retry-After hint, the
// wire form of the library's *BackpressureError.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cacheagg"
	"cacheagg/internal/memgov"
)

// Ingest additions to the error taxonomy.
var (
	// ErrIngestDisabled rejects ingest operations on a server started
	// without an ingest directory.
	ErrIngestDisabled = &Error{Code: "ingest_disabled", Status: http.StatusNotFound}
	// ErrUnknownSession rejects an operation on a session the server
	// does not hold.
	ErrUnknownSession = &Error{Code: "unknown_session", Status: http.StatusNotFound}
	// ErrSessionExists rejects a begin for a session name already in use
	// (live, or durable on disk).
	ErrSessionExists = &Error{Code: "session_exists", Status: http.StatusConflict}
	// ErrStreamFinished rejects operations on a finished stream: its
	// result is final.
	ErrStreamFinished = &Error{Code: "stream_finished", Status: http.StatusConflict}
	// ErrBackpressure reports a push the stream cannot buffer right now.
	// 429 with a Retry-After header; the client backs off and retries —
	// nothing was lost and nothing was folded.
	ErrBackpressure = &Error{Code: "backpressure", Status: http.StatusTooManyRequests}
)

// ingestRequest is the wire form of one ingest operation.
type ingestRequest struct {
	// Session names the stream; required for every op.
	Session string `json:"session"`
	// Op is begin | push | seal | query | status | finish.
	Op string `json:"op"`
	// Aggregates configures a begin.
	Aggregates []AggRef `json:"aggregates,omitempty"`
	// KeyType configures a begin: "" or "uint64" for raw dense keys,
	// "string" for a string-keyed session whose pushes carry skeys.
	KeyType string `json:"key_type,omitempty"`
	// Keys/Columns carry a push's block. A push sets exactly one of Keys
	// (uint64 session) and SKeys (string session).
	Keys    []uint64  `json:"keys,omitempty"`
	SKeys   []string  `json:"skeys,omitempty"`
	Columns [][]int64 `json:"columns,omitempty"`
	// Window scopes a query to the last N sealed epochs (0 = all).
	Window int `json:"window,omitempty"`
}

// ingestSession pairs a live stream with its wire metadata. dict is nil
// for uint64-keyed sessions; string-keyed sessions intern pushed keys
// through it and decode result group ids back at query time.
type ingestSession struct {
	name   string
	stream *cacheagg.StreamAggregator
	hasAvg bool
	dict   *keyDict
}

func sessionHasAvg(aggs []cacheagg.AggSpec) bool {
	for _, a := range aggs {
		if a.Func == cacheagg.Avg {
			return true
		}
	}
	return false
}

// validSessionName rejects names that could escape the ingest directory
// or collide with its bookkeeping: path metacharacters, dots, emptiness.
func validSessionName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// resumeSessions restores every unfinished durable session under the
// ingest directory at boot. Finished streams stay on disk (their result
// is final) but are not live; directories with no committed checkpoint
// are skipped.
func (s *Server) resumeSessions() error {
	entries, err := os.ReadDir(s.cfg.IngestDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("serve: scan ingest dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() || !validSessionName(ent.Name()) {
			continue
		}
		st, err := cacheagg.ResumeStream(s.streamOptions(ent.Name(), nil))
		switch {
		case err == nil:
			dict, hasDict, derr := loadKeyDict(filepath.Join(s.cfg.IngestDir, ent.Name()), s.cfg.IngestNoSync)
			if derr != nil {
				st.Close()
				return fmt.Errorf("serve: resume ingest session %q: %w", ent.Name(), derr)
			}
			sess := &ingestSession{
				name:   ent.Name(),
				stream: st,
				hasAvg: sessionHasAvg(st.Aggregates()),
			}
			if hasDict {
				sess.dict = dict
			}
			s.sessions[ent.Name()] = sess
			s.metrics.IngestResumed.Add(1)
		case errors.Is(err, cacheagg.ErrNoCheckpoint), errors.Is(err, cacheagg.ErrStreamFinished):
			continue
		default:
			// A corrupt session must not take the whole server down with
			// it silently — but it also must not be silently skipped and
			// overwritten. Refuse to boot; the operator decides.
			return fmt.Errorf("serve: resume ingest session %q: %w", ent.Name(), err)
		}
	}
	return nil
}

// streamOptions builds the stream configuration for one session.
func (s *Server) streamOptions(name string, aggs []cacheagg.AggSpec) cacheagg.StreamOptions {
	return cacheagg.StreamOptions{
		Dir:               filepath.Join(s.cfg.IngestDir, name),
		Aggregates:        aggs,
		QueueDepth:        s.cfg.IngestQueueDepth,
		EpochMaxRows:      s.cfg.IngestEpochMaxRows,
		MemoryBudgetBytes: s.cfg.IngestBudgetBytes,
		Workers:           s.cfg.QueryWorkers,
		CacheBytes:        s.cfg.QueryCacheBytes,
		Tracer:            s.cfg.Tracer,
		NoSync:            s.cfg.IngestNoSync,
	}
}

// lookupSession returns the named live session.
func (s *Server) lookupSession(name string) (*ingestSession, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[name]
	if !ok {
		return nil, errf(ErrUnknownSession, nil, "no session %q", name)
	}
	return sess, nil
}

// drainSessions seals every open session's buffered rows into a final
// epoch and closes the stream — the graceful half of the durability
// story: a SIGTERM loses nothing that was ever pushed successfully. The
// sessions stay on disk for the next process to resume.
func (s *Server) drainSessions(ctx context.Context) error {
	s.sessMu.Lock()
	sessions := make([]*ingestSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[string]*ingestSession)
	s.sessMu.Unlock()
	var errs []error
	for _, sess := range sessions {
		if err := sess.stream.Drain(ctx); err != nil {
			errs = append(errs, fmt.Errorf("session %q: %w", sess.name, err))
		}
		if sess.dict != nil {
			sess.dict.close()
		}
	}
	return errors.Join(errs...)
}

// decodeIngest reads and validates one ingest operation.
func decodeIngest(r io.Reader, lim Limits) (*ingestRequest, error) {
	lim = lim.withDefaults()
	body, err := io.ReadAll(io.LimitReader(r, lim.MaxBodyBytes+1))
	if err != nil {
		return nil, errf(ErrBadRequest, err, "reading request body: %v", err)
	}
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, errf(ErrRequestTooLarge, nil, "request body exceeds %d bytes", lim.MaxBodyBytes)
	}
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	var req ingestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errf(ErrBadRequest, err, "invalid ingest JSON: %v", err)
	}
	if err := checkTrailer(dec); err != nil {
		return nil, err
	}
	if !validSessionName(req.Session) {
		return nil, errf(ErrBadRequest, nil, "invalid session name %q (want [A-Za-z0-9_-]{1,64})", req.Session)
	}
	switch req.Op {
	case "begin":
		if len(req.Aggregates) == 0 {
			return nil, errf(ErrBadRequest, nil, "begin needs at least one aggregate")
		}
		switch req.KeyType {
		case "", "uint64", "string":
		default:
			return nil, errf(ErrBadRequest, nil,
				"unknown key_type %q (uint64 | string)", req.KeyType)
		}
		if len(req.Aggregates) > lim.MaxAggregates {
			return nil, errf(ErrBadRequest, nil, "%d aggregates exceed the limit of %d",
				len(req.Aggregates), lim.MaxAggregates)
		}
		for i, a := range req.Aggregates {
			if _, err := parseFunc(a.Func); err != nil {
				return nil, errf(ErrBadRequest, nil, "aggregate %d: %v", i, err)
			}
			if a.Col < 0 {
				return nil, errf(ErrBadRequest, nil, "aggregate %d: negative column %d", i, a.Col)
			}
		}
	case "push":
		if (len(req.Keys) == 0) == (len(req.SKeys) == 0) {
			return nil, errf(ErrBadRequest, nil,
				"push needs exactly one non-empty key block (keys or skeys)")
		}
		rows := len(req.Keys)
		if rows == 0 {
			rows = len(req.SKeys)
		}
		if rows > lim.MaxInlineRows {
			return nil, errf(ErrBadRequest, nil, "block exceeds %d rows", lim.MaxInlineRows)
		}
		for i, col := range req.Columns {
			if len(col) != rows {
				return nil, errf(ErrBadRequest, nil,
					"column %d has %d rows, keys have %d", i, len(col), rows)
			}
		}
	case "seal", "status", "finish":
	case "query":
		if req.Window < 0 {
			return nil, errf(ErrBadRequest, nil, "negative window %d", req.Window)
		}
	default:
		return nil, errf(ErrBadRequest, nil,
			"unknown op %q (begin | push | seal | query | status | finish)", req.Op)
	}
	return &req, nil
}

// handleIngest runs one ingest operation end to end, with the same panic
// containment, drain gating and typed-error discipline as query sessions.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.Panics.Add(1)
			s.writeError(w, errf(ErrPanic, nil, "contained panic: %v", rec))
		}
	}()
	if r.Method != http.MethodPost {
		s.writeError(w, errf(ErrBadRequest, nil, "use POST"))
		return
	}
	if s.cfg.IngestDir == "" {
		s.writeError(w, errf(ErrIngestDisabled, nil, "server started without -ingest-dir"))
		return
	}
	if !s.enter() {
		s.writeError(w, errf(ErrDraining, nil, "server is draining"))
		return
	}
	defer s.inflight.Done()
	s.metrics.Inflight.Add(1)
	defer s.metrics.Inflight.Add(-1)

	req, err := decodeIngest(r.Body, s.cfg.Limits)
	if err != nil {
		s.writeError(w, err)
		return
	}
	switch req.Op {
	case "begin":
		err = s.ingestBegin(w, req)
	case "push":
		err = s.ingestPush(w, req)
	case "seal":
		err = s.ingestSeal(r.Context(), w, req)
	case "query":
		err = s.ingestQuery(r.Context(), w, req)
	case "status":
		err = s.ingestStatus(w, req)
	case "finish":
		err = s.ingestFinish(r.Context(), w, req)
	}
	if err != nil {
		s.writeError(w, err)
	}
	s.observeOutcome(start)
}

func (s *Server) ingestBegin(w http.ResponseWriter, req *ingestRequest) error {
	specs := make([]cacheagg.AggSpec, len(req.Aggregates))
	for i, a := range req.Aggregates {
		f, _ := parseFunc(a.Func) // validated in decodeIngest
		specs[i] = cacheagg.AggSpec{Func: f, Col: a.Col}
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if _, ok := s.sessions[req.Session]; ok {
		return errf(ErrSessionExists, nil, "session %q is live", req.Session)
	}
	// A string-keyed session creates its dictionary sidecar before the
	// stream: Begin tolerates a KEYDICT-only directory (it only rejects on
	// a checkpoint MANIFEST), and a crash between the two steps leaves a
	// directory that resume skips (no checkpoint) and a future begin
	// truncates.
	var dict *keyDict
	if req.KeyType == "string" {
		var err error
		dict, err = createKeyDict(filepath.Join(s.cfg.IngestDir, req.Session), s.cfg.IngestNoSync)
		if err != nil {
			return errf(ErrInternal, err, "create key dictionary: %v", err)
		}
	}
	st, err := cacheagg.BeginStream(s.streamOptions(req.Session, specs))
	if err != nil {
		if dict != nil {
			dict.close()
		}
		if strings.Contains(err.Error(), "use Resume") {
			return errf(ErrSessionExists, err,
				"session %q has durable state on disk (finish or remove it first)", req.Session)
		}
		return errf(ErrInternal, err, "begin stream: %v", err)
	}
	s.sessions[req.Session] = &ingestSession{
		name: req.Session, stream: st, hasAvg: sessionHasAvg(specs), dict: dict,
	}
	s.metrics.IngestSessions.Add(1)
	return writeIngestJSON(w, http.StatusOK, map[string]any{
		"ok": true, "session": req.Session,
	})
}

func (s *Server) ingestPush(w http.ResponseWriter, req *ingestRequest) error {
	sess, err := s.lookupSession(req.Session)
	if err != nil {
		return err
	}
	keys := req.Keys
	switch {
	case sess.dict != nil && len(req.SKeys) == 0:
		return errf(ErrBadRequest, nil, "session %q is string-keyed; push skeys", req.Session)
	case sess.dict == nil && len(req.SKeys) > 0:
		return errf(ErrBadRequest, nil, "session %q is uint64-keyed; push keys", req.Session)
	case sess.dict != nil:
		// Intern + durably append the dictionary BEFORE the block enters
		// the stream: any id a checkpoint can commit is already decodable.
		keys, err = sess.dict.encode(req.SKeys)
		if err != nil {
			return errf(ErrInternal, err, "intern string keys: %v", err)
		}
	}
	err = sess.stream.TryPush(cacheagg.Block{Keys: keys, Columns: req.Columns})
	if err != nil {
		return s.mapStreamErr(err)
	}
	s.metrics.IngestBlocks.Add(1)
	s.metrics.IngestRows.Add(int64(len(keys)))
	p := sess.stream.Progress()
	return writeIngestJSON(w, http.StatusOK, map[string]any{
		"ok": true, "rows_buffered": p.RowsBuffered, "rows_durable": p.RowsDurable,
	})
}

func (s *Server) ingestSeal(ctx context.Context, w http.ResponseWriter, req *ingestRequest) error {
	sess, err := s.lookupSession(req.Session)
	if err != nil {
		return err
	}
	epoch, err := sess.stream.Checkpoint(ctx)
	if err != nil {
		return s.mapStreamErr(err)
	}
	s.metrics.IngestSeals.Add(1)
	return writeIngestJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": epoch})
}

func (s *Server) ingestStatus(w http.ResponseWriter, req *ingestRequest) error {
	sess, err := s.lookupSession(req.Session)
	if err != nil {
		return err
	}
	p := sess.stream.Progress()
	st := sess.stream.Stats()
	return writeIngestJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"session":        req.Session,
		"epoch":          p.Epoch,
		"rows_durable":   p.RowsDurable,
		"blocks_durable": p.BlocksDurable,
		"rows_buffered":  p.RowsBuffered,
		"rows_ingested":  st.RowsIngested,
		"epochs_sealed":  st.EpochsSealed,
		"backpressure":   st.Backpressure,
	})
}

func (s *Server) ingestQuery(ctx context.Context, w http.ResponseWriter, req *ingestRequest) error {
	sess, err := s.lookupSession(req.Session)
	if err != nil {
		return err
	}
	res, err := sess.stream.Snapshot(ctx, req.Window)
	if err != nil {
		return s.mapStreamErr(err)
	}
	s.metrics.IngestQueries.Add(1)
	return s.respondStream(w, sess, res)
}

func (s *Server) ingestFinish(ctx context.Context, w http.ResponseWriter, req *ingestRequest) error {
	sess, err := s.lookupSession(req.Session)
	if err != nil {
		return err
	}
	res, err := sess.stream.Finish(ctx)
	if err != nil {
		return s.mapStreamErr(err)
	}
	s.sessMu.Lock()
	if _, ok := s.sessions[req.Session]; ok {
		delete(s.sessions, req.Session)
		s.metrics.IngestSessions.Add(-1)
	}
	s.sessMu.Unlock()
	err = s.respondStream(w, sess, res)
	if sess.dict != nil {
		sess.dict.close()
	}
	return err
}

// respondStream writes a snapshot as the JSONL result stream: header,
// one line per group, done trailer — the same shape as /v1/aggregate
// responses, so the load harness validates both with one parser.
func (s *Server) respondStream(w http.ResponseWriter, sess *ingestSession, res *cacheagg.StreamResult) error {
	// Decode before committing the response: a dictionary gap is an error
	// response, not a truncated stream.
	var skeys []string
	if sess.dict != nil {
		var err error
		skeys, err = sess.dict.decode(res.Groups)
		if err != nil {
			return errf(ErrInternal, err, "decode group keys: %v", err)
		}
	}
	w.Header().Set("Content-Type", "application/jsonl")
	hdr, _ := json.Marshal(map[string]any{
		"groups": res.Len(), "epochs": res.Epochs, "session": sess.name,
	})
	w.Write(append(hdr, '\n'))
	row := struct {
		G uint64    `json:"g"`
		K []any     `json:"k,omitempty"`
		A []int64   `json:"a,omitempty"`
		F []float64 `json:"f,omitempty"`
	}{}
	enc := json.NewEncoder(w)
	for i := 0; i < res.Len(); i++ {
		row.G = res.Groups[i]
		if skeys != nil {
			row.K = append(row.K[:0], skeys[i])
		}
		row.A = row.A[:0]
		for _, col := range res.Aggs {
			row.A = append(row.A, col[i])
		}
		if sess.hasAvg {
			row.F = row.F[:0]
			for a := range res.Aggs {
				row.F = append(row.F, res.Float(a, i))
			}
		}
		if err := enc.Encode(&row); err != nil {
			return nil // client went away mid-stream; nothing to map
		}
	}
	fmt.Fprintf(w, "{\"done\":true,\"rows\":%d}\n", res.Len())
	return nil
}

// mapStreamErr classifies a stream-layer failure into the taxonomy.
func (s *Server) mapStreamErr(err error) error {
	var bp *cacheagg.BackpressureError
	if errors.As(err, &bp) {
		s.metrics.IngestBackpressure.Add(1)
		return withRetry(errf(ErrBackpressure, err,
			"stream cannot buffer the block (%s full)", bp.Reason), bp.RetryAfter)
	}
	switch {
	case errors.Is(err, cacheagg.ErrStreamFinished), errors.Is(err, cacheagg.ErrStreamClosed):
		return errf(ErrStreamFinished, err, "%v", err)
	case errors.Is(err, memgov.ErrBudget):
		s.metrics.RejectedBudget.Add(1)
		return withRetry(errf(ErrBudgetUnavailable, err, "%v", err), time.Second)
	case errors.Is(err, context.DeadlineExceeded):
		return errf(ErrDeadline, err, "ingest deadline exceeded")
	case errors.Is(err, context.Canceled):
		return errf(ErrCancelled, err, "client went away")
	case errors.Is(err, cacheagg.ErrCorruptCheckpoint):
		s.metrics.InternalErrors.Add(1)
		return errf(ErrInternal, err, "checkpoint corruption: %v", err)
	default:
		s.metrics.InternalErrors.Add(1)
		return errf(ErrInternal, err, "ingest failed: %v", err)
	}
}

func writeIngestJSON(w http.ResponseWriter, status int, body map[string]any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
	return nil
}
