package hashfn

import (
	"encoding/binary"
	"math/bits"
	"testing"
	"testing/quick"

	"cacheagg/internal/xrand"
)

func TestMurmur2MatchesBytesVariant(t *testing.T) {
	// Property: the 8-byte specialization must equal the general algorithm
	// applied to the little-endian encoding of the key.
	f := func(key uint64) bool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], key)
		return Murmur2(key) == Murmur2Bytes(buf[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMurmur2Deterministic(t *testing.T) {
	if Murmur2(12345) != Murmur2(12345) {
		t.Fatal("Murmur2 is not deterministic")
	}
}

func TestMurmur2StringMatchesBytesVariant(t *testing.T) {
	f := func(data []byte) bool {
		return Murmur2String(string(data)) == Murmur2Bytes(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMurmur2WithSeedDefault(t *testing.T) {
	f := func(key uint64) bool {
		return Murmur2WithSeed(key, Murmur2Seed) == Murmur2(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMurmur2SeedsIndependent(t *testing.T) {
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if Murmur2WithSeed(k, 1) == Murmur2WithSeed(k, 2) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded hashes", same)
	}
}

func TestMurmur2Avalanche(t *testing.T) {
	// Flipping one input bit should flip close to half the output bits.
	rng := xrand.NewXoshiro256(1)
	for trial := 0; trial < 50; trial++ {
		x := rng.Next()
		for bit := 0; bit < 64; bit++ {
			d := Murmur2(x) ^ Murmur2(x^(1<<uint(bit)))
			if n := bits.OnesCount64(d); n < 10 || n > 54 {
				t.Fatalf("weak avalanche: key %#x bit %d flips %d bits", x, bit, n)
			}
		}
	}
}

func TestMurmur2BytesTailLengths(t *testing.T) {
	// Exercise all tail lengths 0..7 plus multi-block inputs and make sure
	// distinct inputs map to distinct hashes (no systematic truncation bug).
	seen := make(map[uint64][]byte)
	for n := 0; n <= 33; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*7 + n)
		}
		h := Murmur2Bytes(data)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %v and %v", prev, data)
		}
		seen[h] = data
	}
}

func TestMurmur2DistributesDigits(t *testing.T) {
	// Sequential keys must spread roughly uniformly over the 256 level-0
	// digits; this is the "hashing makes the key domain dense" property the
	// framework relies on for balanced buckets.
	const n = 1 << 16
	var counts [Fanout]int
	for k := uint64(0); k < n; k++ {
		counts[Digit(Murmur2(k), 0)]++
	}
	expect := n / Fanout
	for d, c := range counts {
		if c < expect/2 || c > expect*2 {
			t.Fatalf("digit %d has %d keys, expected ~%d", d, c, expect)
		}
	}
}

func TestMultiplicativeLowBitsWeak(t *testing.T) {
	// Documented weakness: for even keys the low bit of Multiplicative is
	// always 0 times odd constant... in fact multiplying by an odd constant
	// is a bijection, so low bits of sequential keys cycle with small
	// period. Verify the bijection property on a sample instead.
	seen := make(map[uint64]bool)
	for k := uint64(0); k < 4096; k++ {
		h := Multiplicative(k)
		if seen[h] {
			t.Fatalf("multiplicative hashing collided on %d", k)
		}
		seen[h] = true
	}
}

func TestDigitCoversAllLevels(t *testing.T) {
	h := uint64(0x0123456789abcdef)
	want := []int{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef}
	for level, w := range want {
		if got := Digit(h, level); got != w {
			t.Fatalf("Digit(%#x, %d) = %#x, want %#x", h, level, got, w)
		}
	}
}

func TestDigitRange(t *testing.T) {
	f := func(h uint64) bool {
		for level := 0; level < MaxLevels; level++ {
			d := Digit(h, level)
			if d < 0 || d >= Fanout {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixConsistentWithDigit(t *testing.T) {
	// Prefix at level d must equal Prefix at level d-1 concatenated with
	// Digit at level d.
	f := func(h uint64) bool {
		for level := 1; level < MaxLevels; level++ {
			want := Prefix(h, level-1)<<DigitBits | uint64(Digit(h, level))
			if Prefix(h, level) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixEqualMeansSameBucketPath(t *testing.T) {
	// Two hashes with equal prefixes at level d have identical digits at
	// all levels <= d.
	a := uint64(0xaabbccdd11223344)
	b := uint64(0xaabbccdd99887766)
	if Prefix(a, 3) != Prefix(b, 3) {
		t.Fatal("setup: prefixes should match at level 3")
	}
	for level := 0; level <= 3; level++ {
		if Digit(a, level) != Digit(b, level) {
			t.Fatalf("digits diverge at level %d despite equal prefix", level)
		}
	}
	if Digit(a, 4) == Digit(b, 4) {
		t.Fatal("setup: digits should diverge at level 4")
	}
}

func TestIdentity(t *testing.T) {
	f := func(k uint64) bool { return Identity(k) == k }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMurmur2(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Murmur2(uint64(i))
	}
	_ = sink
}

func BenchmarkMultiplicative(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Multiplicative(uint64(i))
	}
	_ = sink
}

func BenchmarkMurmur2Bytes16(b *testing.B) {
	data := make([]byte, 16)
	b.SetBytes(16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		sink += Murmur2Bytes(data)
	}
	_ = sink
}
