package serve

// Shared datasets: the multi-tenant story assumes many clients querying
// the same hosted columns (the "logs of one service" shape), so datasets
// are registered once at startup and queries reference them by name.
// Generation is deterministic — a dataset spec names a datagen
// distribution, so every aggserve instance booted with the same flags
// hosts bit-identical data.

import (
	"fmt"
	"strconv"
	"strings"

	"cacheagg/internal/datagen"
)

// Dataset is one hosted input: a grouping column plus derived aggregate
// input columns. Immutable after registration; safe for concurrent reads.
type Dataset struct {
	// Name is the registry key.
	Name string
	// Keys is the grouping column.
	Keys []uint64
	// Cols are the aggregate input columns.
	Cols [][]int64
	// Spec describes how the data was generated (diagnostics only).
	Spec string
}

// Rows returns the dataset length.
func (d *Dataset) Rows() int { return len(d.Keys) }

// NewDataset builds a hosted dataset from explicit columns.
func NewDataset(name string, keys []uint64, cols [][]int64) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: dataset needs a name")
	}
	for i, c := range cols {
		if len(c) != len(keys) {
			return nil, fmt.Errorf("serve: dataset %s column %d has %d rows, keys have %d",
				name, i, len(c), len(keys))
		}
	}
	return &Dataset{Name: name, Keys: keys, Cols: cols, Spec: "explicit"}, nil
}

// ParseDatasetSpec builds a dataset from a "name=dist:n:k[:seed]" spec,
// e.g. "events=zipf:1000000:65536" — the aggserve -dataset flag format.
// Two deterministic value columns are derived from the keys so every
// aggregate function has something to chew on: col 0 is key-correlated
// (key mod 1000), col 1 is row-position noise.
func ParseDatasetSpec(spec string) (*Dataset, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return nil, fmt.Errorf("serve: dataset spec %q is not name=dist:n:k[:seed]", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return nil, fmt.Errorf("serve: dataset spec %q is not name=dist:n:k[:seed]", spec)
	}
	dist, err := datagen.ParseDist(parts[0])
	if err != nil {
		return nil, fmt.Errorf("serve: dataset %s: %w", name, err)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("serve: dataset %s: bad row count %q", name, parts[1])
	}
	k, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil || k == 0 {
		return nil, fmt.Errorf("serve: dataset %s: bad key domain %q", name, parts[2])
	}
	seed := uint64(1)
	if len(parts) == 4 {
		seed, err = strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: dataset %s: bad seed %q", name, parts[3])
		}
	}
	keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: k, Seed: seed})
	col0 := make([]int64, n)
	col1 := make([]int64, n)
	for i, key := range keys {
		col0[i] = int64(key % 1000)
		col1[i] = int64((uint64(i)*2654435761 + seed) % 4096)
	}
	return &Dataset{
		Name: name,
		Keys: keys,
		Cols: [][]int64{col0, col1},
		Spec: rest,
	}, nil
}

// Registry is the immutable set of hosted datasets, built before the
// server starts serving.
type Registry struct {
	byName map[string]*Dataset
}

// NewRegistry indexes the given datasets, rejecting duplicate names.
func NewRegistry(datasets ...*Dataset) (*Registry, error) {
	r := &Registry{byName: make(map[string]*Dataset, len(datasets))}
	for _, d := range datasets {
		if _, dup := r.byName[d.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate dataset %q", d.Name)
		}
		r.byName[d.Name] = d
	}
	return r, nil
}

// Lookup returns the named dataset or a typed unknown-dataset error.
func (r *Registry) Lookup(name string) (*Dataset, error) {
	if r != nil {
		if d, ok := r.byName[name]; ok {
			return d, nil
		}
	}
	return nil, errf(ErrUnknownDataset, nil, "dataset %q is not hosted", name)
}

// Names lists the hosted dataset names (diagnostics; unordered).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	return names
}
