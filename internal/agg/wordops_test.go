package agg

import (
	"testing"
	"testing/quick"

	"cacheagg/internal/xrand"
)

func TestOpIdentity(t *testing.T) {
	if OpAdd.Apply(OpAdd.Identity(), 42) != 42 {
		t.Fatal("add identity broken")
	}
	if int64(OpMin.Apply(OpMin.Identity(), uint64(^uint64(0)))) != -1 {
		t.Fatal("min identity should yield the operand")
	}
	if int64(OpMax.Apply(OpMax.Identity(), uint64(^uint64(0)))) != -1 {
		t.Fatal("max identity should yield the operand")
	}
}

func TestOpApplyProperties(t *testing.T) {
	f := func(a, b, c int64) bool {
		for _, o := range []Op{OpAdd, OpMin, OpMax} {
			ua, ub, uc := uint64(a), uint64(b), uint64(c)
			// commutative
			if o.Apply(ua, ub) != o.Apply(ub, ua) {
				return false
			}
			// associative
			if o.Apply(o.Apply(ua, ub), uc) != o.Apply(ua, o.Apply(ub, uc)) {
				return false
			}
			// identity is neutral
			if o.Apply(o.Identity(), ua) != ua {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidOpPanics(t *testing.T) {
	bad := Op(9)
	for i, fn := range []func(){
		func() { bad.Identity() },
		func() { bad.Apply(1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestWordOpsStructure(t *testing.T) {
	l := NewLayout([]Spec{{Kind: Count}, {Kind: Avg, Col: 3}, {Kind: Min, Col: 1}})
	ops := l.WordOps()
	if len(ops) != l.Words || len(ops) != 4 {
		t.Fatalf("got %d ops, want 4", len(ops))
	}
	want := []WordOp{
		{Op: OpAdd, Src: SrcOne},
		{Op: OpAdd, Src: SrcCol, Col: 3},
		{Op: OpAdd, Src: SrcOne},
		{Op: OpMin, Src: SrcCol, Col: 1},
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops[%d] = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestWordOpRawValue(t *testing.T) {
	vals := func(col int) int64 { return int64(col) * 10 }
	if (WordOp{Op: OpAdd, Src: SrcOne}).RawValue(vals) != 1 {
		t.Fatal("SrcOne should contribute 1")
	}
	if (WordOp{Op: OpAdd, Src: SrcCol, Col: 4}).RawValue(vals) != 40 {
		t.Fatal("SrcCol should read the column")
	}
}

// TestWordOpsEquivalentToKindOps: folding raw rows through per-word ops
// starting from identities must match Init+Fold through the Kind API, and
// merging through per-word ops must match Kind.Merge. This proves the
// columnar decomposition is faithful.
func TestWordOpsEquivalentToKindOps(t *testing.T) {
	specs := []Spec{{Kind: Count}, {Kind: Sum, Col: 0}, {Kind: Min, Col: 1}, {Kind: Max, Col: 0}, {Kind: Avg, Col: 1}}
	l := NewLayout(specs)
	ops := l.WordOps()
	rng := xrand.NewXoshiro256(4)

	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		rows := make([][2]int64, n)
		for i := range rows {
			rows[i] = [2]int64{int64(rng.Next()%2001) - 1000, int64(rng.Next()%2001) - 1000}
		}

		// Kind-level reference.
		ref := make([]uint64, l.Words)
		l.InitRow(ref, func(c int) int64 { return rows[0][c] })
		for _, r := range rows[1:] {
			r := r
			l.FoldRow(ref, func(c int) int64 { return r[c] })
		}

		// Word-op route: start from identities, fold every row.
		got := l.Identities()
		for _, r := range rows {
			r := r
			for w, op := range ops {
				got[w] = op.Op.Apply(got[w], uint64(op.RawValue(func(c int) int64 { return r[c] })))
			}
		}
		for w := range ref {
			if got[w] != ref[w] {
				t.Fatalf("word %d: op route %d != kind route %d", w, int64(got[w]), int64(ref[w]))
			}
		}

		// Word-op merge must equal MergeRow.
		a := append([]uint64(nil), ref...)
		b := append([]uint64(nil), got...)
		l.MergeRow(a, b)
		for w, op := range ops {
			m := op.Op.Apply(ref[w], got[w])
			if m != a[w] {
				t.Fatalf("merge word %d: %d != %d", w, int64(m), int64(a[w]))
			}
		}
	}
}

func TestWordOpsInvalidLayoutPanics(t *testing.T) {
	l := &Layout{Specs: []Spec{{Kind: Kind(9)}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.WordOps()
}
