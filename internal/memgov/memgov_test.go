package memgov

import (
	"errors"
	"sync"
	"testing"
)

func TestReserveReleaseHighWater(t *testing.T) {
	g := New(1000)
	g.Reserve(400)
	g.Reserve(300)
	if got := g.Reserved(); got != 700 {
		t.Fatalf("Reserved = %d, want 700", got)
	}
	g.Release(500)
	if got := g.Reserved(); got != 200 {
		t.Fatalf("Reserved after release = %d, want 200", got)
	}
	if got := g.HighWater(); got != 700 {
		t.Fatalf("HighWater = %d, want 700", got)
	}
	if got := g.Remaining(); got != 800 {
		t.Fatalf("Remaining = %d, want 800", got)
	}
}

func TestTryReserveEnforcesBudget(t *testing.T) {
	g := New(100)
	if !g.TryReserve(60) {
		t.Fatal("60/100 must be granted")
	}
	if g.TryReserve(50) {
		t.Fatal("60+50 > 100 must be refused")
	}
	if g.Reserved() != 60 {
		t.Fatalf("refused reservation changed the count: %d", g.Reserved())
	}
	if !g.TryReserve(40) {
		t.Fatal("60+40 = 100 must be granted (budget is inclusive)")
	}
	if g.OverBudget() {
		t.Fatal("exactly at budget is not over budget")
	}
	g.Reserve(1)
	if !g.OverBudget() {
		t.Fatal("forced reservation past budget must report OverBudget")
	}
}

func TestUnlimitedGovernor(t *testing.T) {
	g := New(0)
	if !g.TryReserve(1 << 40) {
		t.Fatal("unlimited governor refused a reservation")
	}
	if g.OverBudget() {
		t.Fatal("unlimited governor can never be over budget")
	}
	if g.HighWater() != 1<<40 {
		t.Fatalf("HighWater = %d", g.HighWater())
	}
}

func TestBudgetErrorWrapsSentinel(t *testing.T) {
	g := New(10)
	err := g.BudgetError("worker table", 64)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("BudgetError does not wrap ErrBudget: %v", err)
	}
}

func TestCacheBatchesAndFlushes(t *testing.T) {
	g := New(0)
	c := g.NewCache(100)
	c.Reserve(40)
	if g.Reserved() != 0 {
		t.Fatalf("small delta flushed early: %d", g.Reserved())
	}
	c.Reserve(70) // 110 >= grain: flush
	if g.Reserved() != 110 {
		t.Fatalf("Reserved = %d, want 110", g.Reserved())
	}
	c.Reserve(-5)
	c.Flush()
	if g.Reserved() != 105 {
		t.Fatalf("Reserved after flush = %d, want 105", g.Reserved())
	}
	c.Flush() // idempotent with nothing pending
	if g.Reserved() != 105 {
		t.Fatalf("empty flush changed the count: %d", g.Reserved())
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	c.Reserve(10)
	c.Flush()
}

func TestConcurrentAccounting(t *testing.T) {
	g := New(0)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := g.NewCache(256)
			for i := 0; i < per; i++ {
				c.Reserve(3)
			}
			c.Flush()
		}()
	}
	wg.Wait()
	if want := int64(workers * per * 3); g.Reserved() != want {
		t.Fatalf("Reserved = %d, want %d", g.Reserved(), want)
	}
	if g.HighWater() < g.Reserved() {
		t.Fatalf("HighWater %d below final Reserved %d", g.HighWater(), g.Reserved())
	}
}
