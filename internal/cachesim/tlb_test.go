package cachesim

import (
	"testing"

	"cacheagg/internal/xrand"
)

func TestTLBGeometryPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewTLB(0, 512) },
		func() { NewTLB(64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTLBSequentialScan(t *testing.T) {
	// A sequential scan misses once per page.
	tlb := NewTLB(64, 512)
	for i := int64(0); i < 512*10; i++ {
		tlb.Access(i)
	}
	if tlb.Misses() != 10 {
		t.Fatalf("misses = %d, want 10", tlb.Misses())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2, 512) // 2 entries
	tlb.Access(0)         // page 0
	tlb.Access(512)       // page 1
	tlb.Access(0)         // page 0 MRU
	tlb.Access(1024)      // page 2 evicts page 1
	m := tlb.Misses()
	tlb.Access(0) // must hit
	if tlb.Misses() != m {
		t.Fatal("page 0 was MRU and should have survived")
	}
	tlb.Access(512) // must miss
	if tlb.Misses() != m+1 {
		t.Fatal("page 1 should have been evicted")
	}
}

// TestPartitioningTLBThrash reproduces the Section 4.2 argument: with 256
// output streams and a 64-entry TLB, the naive scatter misses on a large
// fraction of rows, while software write-combining keeps the working set
// to a handful of buffer pages and amortizes stream-page touches over
// whole flushes — at least an order of magnitude fewer misses.
func TestPartitioningTLBThrash(t *testing.T) {
	const n = 100000
	rng := xrand.NewXoshiro256(9)
	digits := make([]uint8, n)
	for i := range digits {
		digits[i] = uint8(rng.Uint64n(256))
	}
	// The paper's machine: 64 dTLB entries, 4 KiB pages (512 words),
	// 64-row SWC buffers.
	naive, swc := PartitionTLBMisses(64, 512, 64, digits)
	if naive < int64(n)/2 {
		t.Fatalf("naive scatter should thrash the TLB: %d misses for %d rows", naive, n)
	}
	if swc*10 > naive {
		t.Fatalf("SWC should cut TLB misses ≥10×: naive %d, swc %d", naive, swc)
	}
}

// TestPartitioningTLBFitsWhenFanoutSmall: with few partitions the naive
// scatter's working set fits the TLB and both variants are cheap — the
// problem is specifically the 256-way fan-out.
func TestPartitioningTLBFitsWhenFanoutSmall(t *testing.T) {
	const n = 50000
	rng := xrand.NewXoshiro256(10)
	digits := make([]uint8, n)
	for i := range digits {
		digits[i] = uint8(rng.Uint64n(16)) // only 16 partitions
	}
	naive, _ := PartitionTLBMisses(64, 512, 64, digits)
	// 16 streams + input fit in 64 entries: only compulsory misses
	// (one per newly touched page).
	if naive > int64(n)/50 {
		t.Fatalf("16-way scatter should not thrash a 64-entry TLB: %d misses", naive)
	}
}
