package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTimePositive(t *testing.T) {
	d := Time(func() {
		s := 0
		for i := 0; i < 1000; i++ {
			s += i
		}
		_ = s
	})
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
}

func TestMedianOfPicksMiddle(t *testing.T) {
	// Can't control wall time precisely; check call count and sanity.
	calls := 0
	d := MedianOf(5, func() { calls++ })
	if calls != 5 {
		t.Fatalf("called %d times, want 5", calls)
	}
	if d < 0 {
		t.Fatal("negative median")
	}
	calls = 0
	MedianOf(0, func() { calls++ })
	if calls != 1 {
		t.Fatalf("n<1 should run once, ran %d", calls)
	}
}

func TestElementTime(t *testing.T) {
	// 1 second, 2 workers, 1e6 elements, 2 columns → 1e9·2/1e6/2 = 1000 ns.
	got := ElementTime(time.Second, 2, 1_000_000, 2)
	if got != 1000 {
		t.Fatalf("ElementTime = %v, want 1000", got)
	}
	if ElementTime(time.Second, 2, 0, 1) != 0 {
		t.Fatal("zero rows should yield 0")
	}
	if ElementTime(time.Second, 0, 100, 1) != ElementTime(time.Second, 1, 100, 1) {
		t.Fatal("workers<1 should clamp to 1")
	}
}

func TestThroughputAndBandwidth(t *testing.T) {
	if Throughput(time.Second, 1000) != 1000 {
		t.Fatal("throughput wrong")
	}
	if Throughput(0, 1000) != 0 {
		t.Fatal("zero duration should yield 0")
	}
	if BandwidthMBs(time.Second, 1<<20) != 1 {
		t.Fatal("bandwidth wrong")
	}
	if BandwidthMBs(0, 1<<20) != 0 {
		t.Fatal("zero duration bandwidth should yield 0")
	}
}

func TestPow2s(t *testing.T) {
	got := Pow2s(3, 7, 2)
	want := []int{8, 32, 128}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := Pow2s(2, 3, 0); len(got) != 2 {
		t.Fatalf("step 0 should behave as 1: %v", got)
	}
}

func TestFormatCount(t *testing.T) {
	if FormatCount(65536) != "65536 (2^16)" {
		t.Fatalf("got %q", FormatCount(65536))
	}
	if FormatCount(100) != "100" {
		t.Fatalf("got %q", FormatCount(100))
	}
	if FormatCount(1) != "1 (2^0)" {
		t.Fatalf("got %q", FormatCount(1))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "K", "time")
	tb.AddRow(1024, 3.14159)
	tb.AddRow("big", time.Millisecond*1500)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	s := tb.String()
	if !strings.Contains(s, "# demo") || !strings.Contains(s, "3.14") || !strings.Contains(s, "1024") {
		t.Fatalf("rendering missing content:\n%s", s)
	}
	var tsv strings.Builder
	tb.WriteTSV(&tsv)
	lines := strings.Split(strings.TrimSpace(tsv.String()), "\n")
	if len(lines) != 3 || lines[0] != "K\ttime" {
		t.Fatalf("tsv wrong:\n%s", tsv.String())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow(1) // missing cells
	tb.AddRow(1, 2, 3, 4)
	s := tb.String()
	if strings.Contains(s, "4") {
		t.Fatal("extra cell should be dropped")
	}
}
