package stream

// Checkpoint manifest codec. The manifest is the stream's commit record:
// it names every sealed epoch (sequence, record count, file size), records
// the aggregate plan, and carries the durable row/block counters producers
// ack against. It is written to MANIFEST.tmp, fsynced, and renamed over
// MANIFEST — the rename is the commit point — so on disk there is always
// exactly one complete manifest.
//
// Layout (little-endian):
//
//	magic      u32   "CAGM" (0x4347414d)
//	version    u16   1
//	flags      u16   bit 0: finished
//	nspecs     u16   number of aggregate specs
//	  per spec:
//	    kind   u8
//	    col    u16
//	nepochs    u32   number of sealed epochs
//	  per epoch:
//	    seq      u64
//	    records  u64
//	    bytes    u64
//	rowsDurable   u64
//	blocksDurable u64
//	crc        u32   CRC32-IEEE over everything above
//	end magic  u32   "MEND" (0x4d454e44)
//
// decodeManifest is the fuzzed trust boundary: it must return a typed
// error wrapping ErrCorruptCheckpoint for every malformed input — never
// panic, never over-allocate from attacker-controlled counts, and never
// accept a torn (truncated or bit-flipped) write, which the trailing CRC
// plus end magic guarantee.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"cacheagg/internal/agg"
)

const (
	manifestName     = "MANIFEST"
	snapshotTmpDir   = ".tmp"
	manifestMagic    = 0x4347414d // "CAGM"
	manifestEndMagic = 0x4d454e44 // "MEND"
	manifestVersion  = 1

	manifestFlagFinished = 1 << 0

	// manifestFixedSize is the byte size of a manifest with zero specs
	// and zero epochs: the absolute floor any valid manifest must meet.
	manifestFixedSize = 4 + 2 + 2 + 2 + 4 + 8 + 8 + 4 + 4
)

// epochFileName returns the checkpoint file name of epoch seq.
func epochFileName(seq uint64) string { return fmt.Sprintf("epoch-%08d.ckpt", seq) }

// epochEntry is one sealed epoch as the manifest records it.
type epochEntry struct {
	Seq     uint64
	Records uint64
	Bytes   int64
}

// manifest is the decoded commit record.
type manifest struct {
	Finished      bool
	Specs         []agg.Spec
	Epochs        []epochEntry
	RowsDurable   uint64
	BlocksDurable uint64
}

// clone returns a deep copy so a seal can build the successor manifest
// without mutating the committed one (which remains the truth if the
// commit fails).
func (m manifest) clone() manifest {
	c := m
	c.Specs = append([]agg.Spec(nil), m.Specs...)
	c.Epochs = append([]epochEntry(nil), m.Epochs...)
	return c
}

// encode renders the manifest to its on-disk form.
func (m manifest) encode() []byte {
	n := manifestFixedSize + 3*len(m.Specs) + 24*len(m.Epochs)
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint32(b, manifestMagic)
	b = binary.LittleEndian.AppendUint16(b, manifestVersion)
	var flags uint16
	if m.Finished {
		flags |= manifestFlagFinished
	}
	b = binary.LittleEndian.AppendUint16(b, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Specs)))
	for _, s := range m.Specs {
		b = append(b, byte(s.Kind))
		b = binary.LittleEndian.AppendUint16(b, uint16(s.Col))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Epochs)))
	for _, e := range m.Epochs {
		b = binary.LittleEndian.AppendUint64(b, e.Seq)
		b = binary.LittleEndian.AppendUint64(b, e.Records)
		b = binary.LittleEndian.AppendUint64(b, uint64(e.Bytes))
	}
	b = binary.LittleEndian.AppendUint64(b, m.RowsDurable)
	b = binary.LittleEndian.AppendUint64(b, m.BlocksDurable)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	b = binary.LittleEndian.AppendUint32(b, manifestEndMagic)
	return b
}

// corruptManifest builds the typed decode failure.
func corruptManifest(format string, args ...any) error {
	return fmt.Errorf("%w: manifest: %s", ErrCorruptCheckpoint, fmt.Sprintf(format, args...))
}

// decodeManifest parses b, rejecting every structural defect with an
// error wrapping ErrCorruptCheckpoint. It validates the trailing CRC and
// end magic before trusting any counted field, so a torn tail or interior
// bit flip can never yield a manifest.
func decodeManifest(b []byte) (manifest, error) {
	var m manifest
	if len(b) < manifestFixedSize {
		return m, corruptManifest("%d bytes, need at least %d", len(b), manifestFixedSize)
	}
	if got := binary.LittleEndian.Uint32(b[len(b)-4:]); got != manifestEndMagic {
		return m, corruptManifest("bad end magic %#x (torn write?)", got)
	}
	body, crcBytes := b[:len(b)-8], b[len(b)-8:len(b)-4]
	if want, got := binary.LittleEndian.Uint32(crcBytes), crc32.ChecksumIEEE(body); got != want {
		return m, corruptManifest("checksum mismatch (stored %#x, computed %#x)", want, got)
	}
	// The CRC covers `body` end-to-end; from here every read is
	// bounds-checked against len(body) because the *claimed counts*
	// themselves are what a hostile input controls.
	off := 0
	need := func(n int, what string) error {
		if len(body)-off < n {
			return corruptManifest("truncated %s at offset %d", what, off)
		}
		return nil
	}
	if binary.LittleEndian.Uint32(body[off:]) != manifestMagic {
		return m, corruptManifest("bad magic %#x", binary.LittleEndian.Uint32(body[off:]))
	}
	off += 4
	if v := binary.LittleEndian.Uint16(body[off:]); v != manifestVersion {
		return m, corruptManifest("unsupported version %d", v)
	}
	off += 2
	flags := binary.LittleEndian.Uint16(body[off:])
	off += 2
	if flags&^uint16(manifestFlagFinished) != 0 {
		return m, corruptManifest("unknown flags %#x", flags)
	}
	m.Finished = flags&manifestFlagFinished != 0
	nspecs := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if nspecs == 0 {
		return m, corruptManifest("zero aggregate specs")
	}
	if err := need(3*nspecs, "spec table"); err != nil {
		return m, err
	}
	m.Specs = make([]agg.Spec, nspecs)
	for i := 0; i < nspecs; i++ {
		k := agg.Kind(body[off])
		if !k.Valid() {
			return m, corruptManifest("spec %d has invalid kind %d", i, body[off])
		}
		m.Specs[i] = agg.Spec{Kind: k, Col: int(binary.LittleEndian.Uint16(body[off+1:]))}
		off += 3
	}
	if err := need(4, "epoch count"); err != nil {
		return m, err
	}
	nepochs := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	// 24 bytes per epoch must fit in what remains — checked before the
	// allocation so a hostile count cannot balloon memory.
	if err := need(24*nepochs+16, "epoch table"); err != nil {
		return m, err
	}
	m.Epochs = make([]epochEntry, nepochs)
	var prevSeq uint64
	for i := 0; i < nepochs; i++ {
		e := epochEntry{
			Seq:     binary.LittleEndian.Uint64(body[off:]),
			Records: binary.LittleEndian.Uint64(body[off+8:]),
			Bytes:   int64(binary.LittleEndian.Uint64(body[off+16:])),
		}
		off += 24
		if e.Seq <= prevSeq {
			return m, corruptManifest("epoch table not strictly increasing at entry %d (seq %d after %d)", i, e.Seq, prevSeq)
		}
		if e.Bytes < 0 {
			return m, corruptManifest("epoch %d has negative size", e.Seq)
		}
		prevSeq = e.Seq
		m.Epochs[i] = e
	}
	m.RowsDurable = binary.LittleEndian.Uint64(body[off:])
	m.BlocksDurable = binary.LittleEndian.Uint64(body[off+8:])
	off += 16
	if off != len(body) {
		return m, corruptManifest("%d trailing bytes", len(body)-off)
	}
	return m, nil
}
