package cachesim

import (
	"testing"

	"cacheagg/internal/xrand"
)

func TestAssocGeometryPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewAssocCache(8, 16, 1) },    // capacity < one line
		func() { NewAssocCache(256, 16, 0) },  // zero ways
		func() { NewAssocCache(768, 16, 16) }, // sets = 3, not pow2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAssocSequentialScanMatchesFull(t *testing.T) {
	// A sequential scan has no conflicts: both models must agree exactly.
	const capWords = 1024
	var trace []int64
	for i := int64(0); i < 10000; i++ {
		trace = append(trace, i)
	}
	full, assoc := CompareAssociativity(capWords, 16, 4, trace)
	if full != assoc {
		t.Fatalf("sequential scan: full %d != %d-way %d", full, 4, assoc)
	}
}

func TestAssocConflictMisses(t *testing.T) {
	// Adversarial pattern: ping-pong between more lines than one set's
	// ways, all mapping to the same set. The fully-associative cache holds
	// them easily; a 2-way cache conflict-misses on every access.
	const lineWords = 16
	const ways = 2
	const capWords = 64 * lineWords * ways // 64 sets
	sets := 64
	var trace []int64
	for rep := 0; rep < 100; rep++ {
		for line := 0; line < 4; line++ { // 4 lines, same set, 2 ways
			trace = append(trace, int64(line*sets*lineWords))
		}
	}
	full, assoc := CompareAssociativity(capWords, lineWords, ways, trace)
	if full != 4 {
		t.Fatalf("full-assoc should only take compulsory misses, got %d", full)
	}
	if assoc < 300 {
		t.Fatalf("2-way cache should thrash (got %d transfers)", assoc)
	}
}

func TestAssocHitMissAccounting(t *testing.T) {
	c := NewAssocCache(256, 16, 2)
	c.Access(0, false)
	c.Access(1, false) // same line
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	c.Access(0, true) // dirty it
	c.Flush()
	if c.Writebacks() != 1 {
		t.Fatalf("writebacks = %d", c.Writebacks())
	}
	if c.Transfers() != 2 {
		t.Fatalf("transfers = %d", c.Transfers())
	}
}

func TestAssocLRUWithinSet(t *testing.T) {
	// 2-way set: A, B, touch A, insert C (same set) → B evicted, A kept.
	const lineWords = 16
	c := NewAssocCache(2*lineWords, lineWords, 2) // 1 set, 2 ways
	a, b, cc := int64(0), int64(lineWords), int64(2*lineWords)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // A is MRU
	c.Access(cc, false)
	before := c.Misses()
	c.Access(a, false) // must still hit
	if c.Misses() != before {
		t.Fatal("A was evicted but was MRU")
	}
	c.Access(b, false) // must miss
	if c.Misses() != before+1 {
		t.Fatal("B should have been the LRU victim")
	}
}

// partitionTrace builds the access trace of a 256-way scatter: sequential
// input reads interleaved with appends to 256 output streams whose bases
// are spaced by stride words.
func partitionTrace(n int, stride int64) []int64 {
	rng := xrand.NewXoshiro256(5)
	var trace []int64
	outBase := make([]int64, 256)
	outPos := make([]int64, 256)
	for p := range outBase {
		outBase[p] = 1<<20 + int64(p)*stride
	}
	for i := 0; i < n; i++ {
		trace = append(trace, int64(i)) // sequential input read
		p := int(rng.Uint64n(256))      // scatter write (negative = write)
		addr := outBase[p] + outPos[p]
		outPos[p]++
		trace = append(trace, -addr-1)
	}
	return trace
}

// TestPageAlignedStreamsConflict: when the 256 output partitions are
// page-aligned (stride = a multiple of sets×lineWords), every stream's hot
// line maps to the SAME set and a 16-way cache thrashes while the ideal
// model sails through. This is the real-world aliasing hazard behind the
// paper's software-write-combining design: the SWC buffers are one
// CONTIGUOUS allocation, so the per-row working set cannot alias, and the
// scattered destinations are touched only once per buffer flush.
func TestPageAlignedStreamsConflict(t *testing.T) {
	const lineWords = 16
	const ways = 16
	const capWords = 1 << 14 // 1024 lines, 64 sets
	full, assoc := CompareAssociativity(capWords, lineWords, ways, partitionTrace(20000, 1<<12))
	if float64(assoc) < float64(full)*3 {
		t.Fatalf("expected page-aligned aliasing: full %d, %d-way %d", full, ways, assoc)
	}
}

// TestStaggeredStreamsNearlyConflictFree: offsetting each stream by one
// extra line (cache coloring) removes the aliasing; the set-associative
// cache then behaves almost like the ideal model — evidence that the
// paper's fully-associative analysis transfers to real caches when the
// output layout is sane.
func TestStaggeredStreamsNearlyConflictFree(t *testing.T) {
	const lineWords = 16
	const ways = 16
	const capWords = 1 << 14
	full, assoc := CompareAssociativity(capWords, lineWords, ways, partitionTrace(20000, 1<<12+lineWords))
	if float64(assoc) > float64(full)*1.25 {
		t.Fatalf("staggered streams conflict too much: full %d, %d-way %d", full, ways, assoc)
	}
}
