// Package hashfn implements the hash functions used by the aggregation
// framework and its baselines.
//
// The paper (Section 4.1) evaluates "many different hash functions that are
// popular among practitioners" and settles on MurmurHash2 for small elements;
// the prior-work baselines of Section 6.4 originally used multiplicative
// hashing, which the authors replace by MurmurHash2 for the comparison. Both
// are implemented here, along with the digit-extraction helpers that turn a
// 64-bit hash into the successive radix-256 digits consumed by the recursive
// partitioning passes.
package hashfn

// Murmur2Seed is the default seed for Murmur2. Any value works; the
// framework only needs all components to agree on one.
const Murmur2Seed uint64 = 0xc70f6907

// Murmur2 computes MurmurHash64A (Austin Appleby's 64-bit MurmurHash2) of a
// single 64-bit key. This is the specialization for 8-byte inputs of the
// general byte-slice algorithm and matches Murmur2Bytes on the key's
// little-endian encoding.
func Murmur2(key uint64) uint64 {
	const m uint64 = 0xc6a4a7935bd1e995
	const r = 47
	var klen uint64 = 8
	h := Murmur2Seed ^ (klen * m)
	k := key
	k *= m
	k ^= k >> r
	k *= m
	h ^= k
	h *= m
	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// HashBatch computes Murmur2 of every key into out, which must be at least
// as long as keys. This is the morsel-wide hashing kernel of the batched hot
// path: one tight monomorphic loop with the seed/length prefix hoisted out,
// so a whole block of hashes is materialized before any hash-table or
// scatter access touches memory. The loop body is branch-free and each
// iteration is independent, so the hardware can overlap several hashes in
// flight — per-hash cost drops well below the one-at-a-time Murmur2 call.
func HashBatch(keys []uint64, out []uint64) {
	const m uint64 = 0xc6a4a7935bd1e995
	const r = 47
	// Seed ^ (len * m) is loop-invariant for 8-byte keys.
	var klen uint64 = 8
	h0 := Murmur2Seed ^ (klen * m)
	_ = out[:len(keys)] // one bounds check for the whole batch
	i := 0
	for ; i+4 <= len(keys); i += 4 {
		k0, k1, k2, k3 := keys[i], keys[i+1], keys[i+2], keys[i+3]
		k0 *= m
		k1 *= m
		k2 *= m
		k3 *= m
		k0 ^= k0 >> r
		k1 ^= k1 >> r
		k2 ^= k2 >> r
		k3 ^= k3 >> r
		k0 *= m
		k1 *= m
		k2 *= m
		k3 *= m
		h0a := (h0 ^ k0) * m
		h1a := (h0 ^ k1) * m
		h2a := (h0 ^ k2) * m
		h3a := (h0 ^ k3) * m
		h0a ^= h0a >> r
		h1a ^= h1a >> r
		h2a ^= h2a >> r
		h3a ^= h3a >> r
		h0a *= m
		h1a *= m
		h2a *= m
		h3a *= m
		out[i] = h0a ^ h0a>>r
		out[i+1] = h1a ^ h1a>>r
		out[i+2] = h2a ^ h2a>>r
		out[i+3] = h3a ^ h3a>>r
	}
	for ; i < len(keys); i++ {
		k := keys[i] * m
		k ^= k >> r
		k *= m
		h := (h0 ^ k) * m
		h ^= h >> r
		h *= m
		out[i] = h ^ h>>r
	}
}

// Murmur2WithSeed is Murmur2 with an explicit seed, used where independent
// hash functions are needed (e.g. tests of collision behaviour).
func Murmur2WithSeed(key, seed uint64) uint64 {
	const m uint64 = 0xc6a4a7935bd1e995
	const r = 47
	var klen uint64 = 8
	h := seed ^ (klen * m)
	k := key
	k *= m
	k ^= k >> r
	k *= m
	h ^= k
	h *= m
	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// Murmur2Bytes computes MurmurHash64A over an arbitrary byte slice with the
// default seed. It is provided for completeness (string grouping keys) and
// for cross-checking Murmur2 against the reference algorithm.
func Murmur2Bytes(data []byte) uint64 {
	const m uint64 = 0xc6a4a7935bd1e995
	const r = 47
	h := Murmur2Seed ^ (uint64(len(data)) * m)

	n := len(data) / 8 * 8
	for i := 0; i < n; i += 8 {
		k := uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 |
			uint64(data[i+3])<<24 | uint64(data[i+4])<<32 | uint64(data[i+5])<<40 |
			uint64(data[i+6])<<48 | uint64(data[i+7])<<56
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}

	tail := data[n:]
	switch len(tail) {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// Murmur2String computes MurmurHash64A over the bytes of a string with the
// default seed, identical to Murmur2Bytes on the string's byte content but
// without the []byte conversion (and its allocation) — the form the key
// interning layer hashes string grouping keys with on its zero-alloc
// steady-state path.
func Murmur2String(s string) uint64 {
	const m uint64 = 0xc6a4a7935bd1e995
	const r = 47
	h := Murmur2Seed ^ (uint64(len(s)) * m)

	n := len(s) / 8 * 8
	for i := 0; i < n; i += 8 {
		k := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 |
			uint64(s[i+3])<<24 | uint64(s[i+4])<<32 | uint64(s[i+5])<<40 |
			uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}

	tail := s[n:]
	switch len(tail) {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// Multiplicative is Fibonacci (multiplicative) hashing: key times the 64-bit
// golden-ratio constant. This is the hash the prior-work implementations of
// Section 6.4 used before the authors switched them to MurmurHash2. It is
// cheaper than Murmur2 but offers no avalanche in the low bits, which is
// exactly why the paper replaced it.
func Multiplicative(key uint64) uint64 {
	return key * 0x9e3779b97f4a7c15
}

// Identity returns the key unchanged. Partitioning "by key" (the `key`
// variant of Figure 3) is partitioning by the digits of Identity.
func Identity(key uint64) uint64 { return key }

// Func is a 64-bit hash function over 64-bit keys.
type Func func(uint64) uint64

// DigitBits is the number of hash bits consumed per recursion level.
// 2^DigitBits = 256 is the partitioning fan-out the paper found optimal for
// software write-combining (Section 4.2).
const DigitBits = 8

// Fanout is the partitioning fan-out, i.e. the number of buckets produced
// per pass.
const Fanout = 1 << DigitBits

// MaxLevels is the number of radix-256 digits available in a 64-bit hash.
// Recursion deeper than this is impossible; the framework treats it as a
// hard error because it would mean the hash failed to separate groups.
const MaxLevels = 64 / DigitBits

// Digit extracts the radix-256 digit of h for recursion level d.
// Level 0 uses the most significant 8 bits so that the concatenation of
// buckets in bucket order is sorted by hash value — this is what makes the
// final output "a hash table built by a sorting algorithm" (Section 3.1).
func Digit(h uint64, level int) int {
	return int(h >> (64 - DigitBits*(level+1)) & (Fanout - 1))
}

// Prefix returns the bucket path of h down to (and including) level, i.e.
// the (level+1)*8 most significant bits. Two rows are in the same bucket at
// depth level iff their Prefixes are equal.
func Prefix(h uint64, level int) uint64 {
	return h >> (64 - DigitBits*(level+1))
}
