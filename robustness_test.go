package cacheagg

// Public-surface robustness tests: panic containment, cancellation, and
// spill cleanup as seen by a library user.

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"cacheagg/internal/core"
	"cacheagg/internal/testutil"
)

// panicInnerStrategy explodes inside a worker task (the task-local state
// factory runs on the pool), standing in for any buggy strategy or
// aggregate implementation.
type panicInnerStrategy struct{}

func (panicInnerStrategy) Name() string { return "panic" }
func (panicInnerStrategy) NewState(level, cacheRows int) core.StrategyState {
	panic("user strategy exploded")
}

func TestAggregateContainsTaskPanic(t *testing.T) {
	// The process must survive (the test keeps running) and all workers
	// must exit — the leak checker verifies the latter at cleanup.
	testutil.VerifyNoLeaks(t)
	res, err := Aggregate(Input{GroupBy: []uint64{1, 2, 3, 1, 2}}, Options{
		Strategy: Strategy{inner: panicInnerStrategy{}},
		Workers:  4,
	})
	if err == nil {
		t.Fatal("panic inside the pool must come back as an error")
	}
	if res != nil {
		t.Fatal("failed aggregation returned a result")
	}
	if !strings.Contains(err.Error(), "user strategy exploded") {
		t.Fatalf("error lost the panic value: %v", err)
	}
}

func TestAggregateContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AggregateContext(ctx, Input{GroupBy: []uint64{1, 2, 3}}, opts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAggregateContextMatchesPlain(t *testing.T) {
	keys := make([]uint64, 10000)
	vals := make([]int64, len(keys))
	for i := range keys {
		keys[i] = uint64(i % 97)
		vals[i] = int64(i)
	}
	in := Input{GroupBy: keys, Columns: [][]int64{vals},
		Aggregates: []AggSpec{{Func: Count}, {Func: Sum, Col: 0}}}
	plain, err := Aggregate(in, opts())
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := AggregateContext(context.Background(), in, opts())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 97 || ctxed.Len() != plain.Len() {
		t.Fatalf("groups: plain %d, ctx %d", plain.Len(), ctxed.Len())
	}
	for i := range plain.Groups {
		if plain.Groups[i] != ctxed.Groups[i] || plain.Aggs[1][i] != ctxed.Aggs[1][i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

// cancellingStrategy cancels the run from inside a worker after a few
// task-state creations — mid-aggregation, deterministically.
type cancellingStrategy struct {
	cancel context.CancelFunc
	calls  *atomic.Int64
}

func (cancellingStrategy) Name() string { return "cancelling" }
func (c cancellingStrategy) NewState(level, cacheRows int) core.StrategyState {
	if c.calls.Add(1) == 3 {
		c.cancel()
	}
	return core.DefaultAdaptive().NewState(level, cacheRows)
}

func TestAggregateExternalContextCancelCleansSpill(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	_, err := AggregateExternalContext(ctx, Input{GroupBy: keys}, Options{
		Strategy: Strategy{inner: cancellingStrategy{cancel: cancel, calls: new(atomic.Int64)}},
		Workers:  2,
	}, ExternalOptions{MemoryBudgetRows: 5000, TempDir: dir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ents, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill entries left behind after cancellation", len(ents))
	}
}

func TestAggregateExternalMaxSpillBytes(t *testing.T) {
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	_, err := AggregateExternal(Input{GroupBy: keys}, Options{Workers: 2},
		ExternalOptions{MemoryBudgetRows: 5000, MaxSpillBytes: 1024})
	if err == nil {
		t.Fatal("tiny spill budget must fail fast")
	}
	if !strings.Contains(err.Error(), "spill budget exceeded") {
		t.Fatalf("err = %v, want a descriptive spill-budget error", err)
	}
}
