package main

import (
	"fmt"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/bench"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

// kSweep returns the K values swept by the strategy figures: powers of two
// from 2^4 up to N.
func kSweep(sc scale) []int {
	return bench.Pow2s(4, sc.logN, 2)
}

// runStrategy executes one Distinct aggregation and returns the median
// duration plus the (stats-enabled) last result.
func runStrategy(sc scale, s core.Strategy, keys []uint64) (time.Duration, *core.Result) {
	cfg := core.Config{
		Strategy:     s,
		Workers:      sc.workers,
		CacheBytes:   sc.cache,
		CollectStats: true,
	}
	var res *core.Result
	d := bench.MedianOf(sc.reps, func() {
		r, err := core.Distinct(cfg, keys)
		if err != nil {
			panic(err)
		}
		res = r
	})
	return d, res
}

// passBreakdown renders per-pass element times like the stacked bars of
// Figures 4 and 5: "p0/p1/p2" in ns per element per core.
func passBreakdown(sc scale, res *core.Result) string {
	out := ""
	for lvl := 0; lvl < res.Stats.Passes; lvl++ {
		if lvl > 0 {
			out += "/"
		}
		et := float64(res.Stats.LevelNanos[lvl]) / float64(sc.n)
		out += fmt.Sprintf("%.1f", et)
	}
	return out
}

// fig4 reproduces Figure 4: the pass breakdown of the illustrative
// strategies HashingOnly and PartitionAlways(1, 2) over K, on uniform data.
func fig4(sc scale) []*bench.Table {
	strategies := []core.Strategy{
		core.HashingOnly(),
		core.PartitionAlways(1),
		core.PartitionAlways(2),
	}
	var tables []*bench.Table
	for _, s := range strategies {
		t := bench.NewTable(
			fmt.Sprintf("Figure 4 — %s pass breakdown (uniform, N=2^%d, P=%d)", s.Name(), sc.logN, sc.workers),
			"K", "ns/elem/core", "passes", "per-pass ns/elem")
		for _, k := range kSweep(sc) {
			keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: uint64(k), Seed: 11})
			d, res := runStrategy(sc, s, keys)
			t.AddRow(bench.FormatCount(int64(k)),
				bench.ElementTime(d, sc.workers, sc.n, 1),
				res.Stats.Passes,
				passBreakdown(sc, res))
		}
		tables = append(tables, t)
	}
	return tables
}

// fig5 reproduces Figure 5: ADAPTIVE against the illustrative strategies.
func fig5(sc scale) []*bench.Table {
	strategies := []core.Strategy{
		core.HashingOnly(),
		core.PartitionAlways(1),
		core.PartitionAlways(2),
		core.DefaultAdaptive(),
	}
	t := bench.NewTable(
		fmt.Sprintf("Figure 5 — Adaptive vs illustrative strategies, ns/elem/core (uniform, N=2^%d, P=%d)", sc.logN, sc.workers),
		"K", "HashingOnly", "PartitionAlways(1)", "PartitionAlways(2)", "Adaptive")
	for _, k := range kSweep(sc) {
		keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: uint64(k), Seed: 11})
		row := []any{bench.FormatCount(int64(k))}
		for _, s := range strategies {
			d, _ := runStrategy(sc, s, keys)
			row = append(row, bench.ElementTime(d, sc.workers, sc.n, 1))
		}
		t.AddRow(row...)
	}
	return []*bench.Table{t}
}

// fig6 reproduces Figure 6: speedup over the single-worker run for
// different K. (On a single-core host this degenerates to ~1×; the paper's
// machine reaches ~16× on 20 cores.)
func fig6(sc scale) []*bench.Table {
	t := bench.NewTable(
		fmt.Sprintf("Figure 6 — speedup vs workers (uniform, N=2^%d)", sc.logN),
		"workers", "K=2^10", "K=2^16", fmt.Sprintf("K=2^%d", sc.logN-2))
	ks := []uint64{1 << 10, 1 << 16, 1 << uint(sc.logN-2)}
	base := make(map[uint64]time.Duration)
	datasets := make(map[uint64][]uint64)
	for _, k := range ks {
		datasets[k] = datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: k, Seed: 12})
	}
	for p := 1; p <= sc.workers; p *= 2 {
		row := []any{p}
		for _, k := range ks {
			cfg := core.Config{Strategy: core.DefaultAdaptive(), Workers: p, CacheBytes: sc.cache}
			d := bench.MedianOf(sc.reps, func() {
				if _, err := core.Distinct(cfg, datasets[k]); err != nil {
					panic(err)
				}
			})
			if p == 1 {
				base[k] = d
			}
			row = append(row, float64(base[k])/float64(d))
		}
		t.AddRow(row...)
	}
	return []*bench.Table{t}
}

// fig7 reproduces Figure 7: element time vs the number of aggregate
// columns (all SUMs), for several K. The metric divides by the total
// column count C = aggregates + 1, so a flat line means the operator moves
// every additional column at the same per-element cost — the column-wise
// processing claim of Section 3.3.
func fig7(sc scale) []*bench.Table {
	// Shrink N to compensate for the extra columns (the paper does the
	// same: "just for this plot, we use N=2^28 … to compensate the memory
	// increase").
	n := sc.n / 4
	if n < 1<<12 {
		n = sc.n
	}
	colCounts := []int{0, 1, 2, 4, 8}
	t := bench.NewTable(
		fmt.Sprintf("Figure 7 — ns/elem/core vs #aggregate columns (uniform, N=2^%d, P=%d)", sc.logN-2, sc.workers),
		"agg columns", "K=2^10", "K=2^16", fmt.Sprintf("K=2^%d", sc.logN-4))
	ks := []uint64{1 << 10, 1 << 16, 1 << uint(sc.logN-4)}

	rng := xrand.NewXoshiro256(9)
	maxCols := colCounts[len(colCounts)-1]
	cols := make([][]int64, maxCols)
	for c := range cols {
		cols[c] = make([]int64, n)
		for i := range cols[c] {
			cols[c][i] = int64(rng.Next() % 1000)
		}
	}

	for _, nc := range colCounts {
		row := []any{nc}
		for _, k := range ks {
			keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: n, K: k, Seed: 13})
			in := &core.Input{Keys: keys, AggCols: cols[:nc]}
			for c := 0; c < nc; c++ {
				in.Specs = append(in.Specs, agg.Spec{Kind: agg.Sum, Col: c})
			}
			cfg := core.Config{Strategy: core.DefaultAdaptive(), Workers: sc.workers, CacheBytes: sc.cache}
			d := bench.MedianOf(sc.reps, func() {
				if _, err := core.Aggregate(cfg, in); err != nil {
					panic(err)
				}
			})
			row = append(row, bench.ElementTime(d, sc.workers, n, nc+1))
		}
		t.AddRow(row...)
	}
	return []*bench.Table{t}
}
