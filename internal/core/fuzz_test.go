package core

// Native Go fuzz targets. `go test` runs the seed corpus as regular tests;
// `go test -fuzz=FuzzAggregateMatchesReference ./internal/core` explores
// further. The fuzzer drives the full operator (all strategies, adversarial
// tiny caches) against the map-based reference.

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"cacheagg/internal/agg"
)

// decodeKeys derives a key stream from fuzz bytes: each byte is a key, so
// collisions and runs of equal keys are frequent (the interesting cases).
func decodeKeys(data []byte) []uint64 {
	keys := make([]uint64, len(data))
	for i, b := range data {
		keys[i] = uint64(b)
	}
	return keys
}

func FuzzAggregateMatchesReference(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 1}, uint8(0))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255}, uint8(2))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 9, 8, 7}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		if len(data) == 0 || len(data) > 1<<14 {
			return
		}
		keys := decodeKeys(data)
		vals := make([]int64, len(keys))
		for i := range vals {
			vals[i] = int64(int8(data[i])) // reuse bytes as signed values
		}
		in := &Input{
			Keys:    keys,
			AggCols: [][]int64{vals},
			Specs: []agg.Spec{
				{Kind: agg.Count},
				{Kind: agg.Sum, Col: 0},
				{Kind: agg.Min, Col: 0},
				{Kind: agg.Max, Col: 0},
				{Kind: agg.Avg, Col: 0},
			},
		}
		strategies := allStrategies()
		s := strategies[int(mode)%len(strategies)]
		cfg := Config{
			Strategy:    s,
			Workers:     1 + int(mode>>4)%3,
			CacheBytes:  8 << 10, // tiny: maximum recursion stress
			MorselRows:  64,
			ChunkRows:   32,
			CarryHashes: mode&1 == 1,
			EnablePlan:  mode&2 == 2,
		}
		if cfg.EnablePlan && len(keys) >= 64 {
			// Fuzz inputs are below the planner's minimum, so synthesize the
			// plan directly from fuzz bytes: the executor must stay correct
			// under arbitrary hot keys, table sizes, and routing decisions.
			cfg.Plan = &Plan{
				SampleRows:     len(keys),
				EstimatedK:     float64(data[0]) * 17,
				HotKeys:        []uint64{uint64(data[1]), uint64(data[2]), uint64(data[3])},
				HotHashes:      []uint64{0, 0, 0},
				HotMass:        float64(data[4]) / 255,
				StartPartition: data[5]&1 == 1,
				TableRows:      int(data[6]) << 6,
			}
		}
		res, err := Aggregate(cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		want := refAggregate(in)
		if res.Groups() != len(want) {
			t.Fatalf("%s: %d groups, want %d", s.Name(), res.Groups(), len(want))
		}
		for r := 0; r < res.Groups(); r++ {
			wantRow, ok := want[res.Keys[r]]
			if !ok {
				t.Fatalf("phantom key %d", res.Keys[r])
			}
			for si := range in.Specs {
				if res.Aggs[si][r] != wantRow[si] {
					t.Fatalf("%s: key %d spec %v: %d != %d",
						s.Name(), res.Keys[r], in.Specs[si], res.Aggs[si][r], wantRow[si])
				}
			}
		}
	})
}

// FuzzRoutineSelection drives the three-way routine selector with fuzz-
// synthesized — frequently bogus — plans (huge/zero/NaN/Inf K̂ and α̂,
// drift-guard violations) and every routine override. The selector must
// sanitize: no panic, no livelock (the run completes inside the fuzz
// timeout), a forced sort-spill fails fast with ErrMemoryBudget and
// everything else returns exactly the reference answer.
func FuzzRoutineSelection(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 1, 9, 9}, uint8(0), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(2), uint8(255))
	f.Add([]byte{7, 7, 7, 7, 1, 2, 3, 4}, uint8(3), uint8(17))
	f.Add([]byte{200, 100, 50, 25, 12, 6, 3, 1}, uint8(1), uint8(64))
	f.Fuzz(func(t *testing.T, data []byte, routineByte, planByte uint8) {
		if len(data) < 8 || len(data) > 1<<14 {
			return
		}
		keys := decodeKeys(data)
		vals := make([]int64, len(keys))
		for i := range vals {
			vals[i] = int64(int8(data[i]))
		}
		in := &Input{
			Keys:    keys,
			AggCols: [][]int64{vals},
			Specs: []agg.Spec{
				{Kind: agg.Count},
				{Kind: agg.Sum, Col: 0},
				{Kind: agg.Avg, Col: 0},
			},
		}
		// A palette of plan-field poisons indexed by fuzz bytes.
		kPalette := []float64{0, 1, float64(data[0]) * 17, 1e300, math.Inf(1), math.NaN(), -3, 2}
		aPalette := []float64{0, 1e12, math.NaN(), math.Inf(1), -1, float64(data[1]), 200}
		plan := &Plan{
			SampleRows:     int(int8(data[2])) * 64, // negative half the time
			TotalRows:      len(keys),
			EstimatedK:     kPalette[int(planByte)%len(kPalette)],
			HalfSampleK:    kPalette[int(planByte>>3)%len(kPalette)],
			PredictedAlpha: aPalette[int(planByte>>5)%len(aPalette)],
			TableRows:      int(int8(data[3])) << 5,
		}
		cfg := Config{
			Strategy:   DefaultAdaptive(),
			Workers:    1 + int(routineByte>>4)%4,
			CacheBytes: 8 << 10,
			MorselRows: 64,
			ChunkRows:  32,
			Plan:       plan,
			Routine:    Routine(routineByte % 5), // includes one out-of-range value
		}
		res, err := Aggregate(cfg, in)
		if err != nil {
			if cfg.Routine == RoutineSortSpill && errors.Is(err, ErrMemoryBudget) {
				return // fail-fast contract: typed, immediate, no result
			}
			t.Fatalf("routine %v plan %+v: %v", cfg.Routine, plan, err)
		}
		want := refAggregate(in)
		if res.Groups() != len(want) {
			t.Fatalf("routine %v: %d groups, want %d", cfg.Routine, res.Groups(), len(want))
		}
		for r := 0; r < res.Groups(); r++ {
			wantRow, ok := want[res.Keys[r]]
			if !ok {
				t.Fatalf("phantom key %d", res.Keys[r])
			}
			for si := range in.Specs {
				if res.Aggs[si][r] != wantRow[si] {
					t.Fatalf("routine %v: key %d spec %v: %d != %d",
						cfg.Routine, res.Keys[r], in.Specs[si], res.Aggs[si][r], wantRow[si])
				}
			}
		}
	})
}

// FuzzWideKeys exercises the full 64-bit key space (hash digit coverage).
func FuzzWideKeys(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 || len(data) > 1<<13 {
			return
		}
		n := len(data) / 8
		keys := make([]uint64, n)
		for i := 0; i < n; i++ {
			keys[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		cfg := Config{Workers: 2, CacheBytes: 8 << 10, MorselRows: 128}
		res, err := Distinct(cfg, keys)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64]struct{}{}
		for _, k := range keys {
			ref[k] = struct{}{}
		}
		if res.Groups() != len(ref) {
			t.Fatalf("%d groups, want %d", res.Groups(), len(ref))
		}
	})
}
