package global

import (
	"sync"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/testutil"
	"cacheagg/internal/xrand"
)

// testOps is the full fold alphabet: COUNT, SUM, MIN, MAX over one column
// (AVG is SUM+COUNT and thus covered by construction).
func testOps() []agg.WordOp {
	lay := agg.NewLayout([]agg.Spec{
		{Kind: agg.Count},
		{Kind: agg.Sum, Col: 0},
		{Kind: agg.Min, Col: 0},
		{Kind: agg.Max, Col: 0},
		{Kind: agg.Avg, Col: 0},
	})
	return lay.WordOps()
}

// refStates folds rows into a scalar map with the same WordOp semantics the
// table uses — the trivially correct oracle.
func refStates(ops []agg.WordOp, keys []uint64, col []int64) map[uint64][]uint64 {
	ref := map[uint64][]uint64{}
	for i, k := range keys {
		st, ok := ref[k]
		if !ok {
			st = make([]uint64, len(ops))
			for w := range ops {
				st[w] = ops[w].Op.Identity()
			}
			ref[k] = st
		}
		for w := range ops {
			v := int64(1)
			if ops[w].Src == agg.SrcCol {
				v = col[i]
			}
			st[w] = ops[w].Op.Apply(st[w], uint64(v))
		}
	}
	return ref
}

// foldEscapes folds escaped rows into a scalar map — the stand-in for the
// local overflow table the core routine uses.
func foldEscapes(local map[uint64][]uint64, ops []agg.WordOp, esc []int32, ks []uint64, col []int64, base int) {
	for _, ei := range esc {
		i := base + int(ei)
		st, ok := local[ks[i]]
		if !ok {
			st = make([]uint64, len(ops))
			for w := range ops {
				st[w] = ops[w].Op.Identity()
			}
			local[ks[i]] = st
		}
		for w := range ops {
			v := int64(1)
			if ops[w].Src == agg.SrcCol {
				v = col[i]
			}
			st[w] = ops[w].Op.Apply(st[w], uint64(v))
		}
	}
}

// drainToMap collects the table's runs into a key-indexed state map and
// checks the per-digit placement invariant on the way.
func drainToMap(t *testing.T, tab *Table) map[uint64][]uint64 {
	t.Helper()
	got := map[uint64][]uint64{}
	rs := tab.DrainRuns(true)
	for d, r := range rs {
		if r == nil {
			continue
		}
		if !r.Aggregated {
			t.Fatalf("digit %d: drained run not marked aggregated", d)
		}
		for i, k := range r.Keys {
			if top := int(r.Hashes[i] >> 56); top != d {
				t.Fatalf("key %d drained from digit %d but hashes to %d", k, d, top)
			}
			if _, dup := got[k]; dup {
				t.Fatalf("key %d appears twice in drain", k)
			}
			st := make([]uint64, len(r.States))
			for w := range r.States {
				st[w] = r.States[w][i]
			}
			got[k] = st
		}
	}
	return got
}

// mergeInto folds src's states into dst with the fold alphabet.
func mergeInto(dst, src map[uint64][]uint64, ops []agg.WordOp) {
	for k, st := range src {
		d, ok := dst[k]
		if !ok {
			dst[k] = st
			continue
		}
		for w := range ops {
			d[w] = ops[w].Op.Apply(d[w], st[w])
		}
	}
}

func checkStates(t *testing.T, got, want map[uint64][]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, wantSt := range want {
		gotSt, ok := got[k]
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		for w := range wantSt {
			if gotSt[w] != wantSt[w] {
				t.Fatalf("key %d word %d: got %d, want %d", k, w, gotSt[w], wantSt[w])
			}
		}
	}
}

func makeInput(dist datagen.Dist, n int, k uint64, seed uint64) ([]uint64, []uint64, []int64) {
	keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: k, Seed: seed})
	hs := make([]uint64, n)
	hashfn.HashBatch(keys, hs)
	rng := xrand.NewXoshiro256(seed + 1)
	col := make([]int64, n)
	for i := range col {
		col[i] = int64(rng.Next()%2001) - 1000
	}
	return keys, hs, col
}

// TestInsertDrainMatchesReference: serial insert of every fold kind, drain,
// compare bit-for-bit with the scalar oracle.
func TestInsertDrainMatchesReference(t *testing.T) {
	ops := testOps()
	keys, hs, col := makeInput(datagen.Uniform, 20000, 3000, 7)
	tab := New(Config{CapacityRows: 1 << 16, Ops: ops})

	var esc []int32
	cols := [][]int64{col}
	for base := 0; base < len(keys); base += 512 {
		end := min(base+512, len(keys))
		esc, _ = tab.InsertBatch(hs[base:end], keys[base:end], cols, base, esc[:0])
		if len(esc) != 0 {
			t.Fatalf("uncontended insert escaped %d rows", len(esc))
		}
	}
	want := refStates(ops, keys, col)
	checkStates(t, drainToMap(t, tab), want)
	if tab.RowsIn() != int64(len(keys)) {
		t.Fatalf("RowsIn = %d, want %d", tab.RowsIn(), len(keys))
	}
	if got := tab.Alpha(); got < 6 || got > 7 {
		t.Fatalf("Alpha = %.2f, want ≈ %d/%d", got, len(keys), len(want))
	}
}

// TestGrowth: a table seeded far below the key count must grow (governed,
// with the deltas reserved) and still drain the exact oracle states.
func TestGrowth(t *testing.T) {
	ops := testOps()
	keys, hs, col := makeInput(datagen.Uniform, 40000, 30000, 9)
	gov := memgov.New(64 << 20)
	tab := New(Config{
		CapacityRows:    MinRows,
		MaxCapacityRows: 1 << 20,
		Ops:             ops,
		Governor:        gov,
	})
	if !gov.TryReserve(tab.FootprintBytes()) {
		t.Fatal("initial reservation refused")
	}
	cols := [][]int64{col}
	local := map[uint64][]uint64{}
	var esc []int32
	for base := 0; base < len(keys); base += 512 {
		end := min(base+512, len(keys))
		esc, _ = tab.InsertBatch(hs[base:end], keys[base:end], cols, base, esc[:0])
		foldEscapes(local, ops, esc, keys, col, base)
	}
	if tab.Grows() == 0 {
		t.Fatal("table never grew despite MinRows seed and 30k groups")
	}
	got := drainToMap(t, tab)
	mergeInto(got, local, ops)
	checkStates(t, got, refStates(ops, keys, col))
	// The governor must hold the full grown footprint: initial reservation
	// plus every growth delta the table reserved itself.
	if used := gov.Reserved(); used != tab.FootprintBytes() {
		t.Fatalf("governor holds %d bytes, table footprint is %d", used, tab.FootprintBytes())
	}
}

// TestGovernorRefusalDisablesGrowth: a budget that cannot fit a single
// doubling turns growth off permanently; overflow rows escape instead, and
// the run still completes with exact states.
func TestGovernorRefusalDisablesGrowth(t *testing.T) {
	ops := testOps()
	keys, hs, col := makeInput(datagen.Uniform, 20000, 15000, 3)
	gov := memgov.New(1) // any TryReserve(delta>1) fails
	tab := New(Config{
		CapacityRows:    MinRows,
		MaxCapacityRows: 1 << 20,
		Ops:             ops,
		Governor:        gov,
	})
	before := tab.FootprintBytes()
	cols := [][]int64{col}
	local := map[uint64][]uint64{}
	var esc []int32
	for base := 0; base < len(keys); base += 512 {
		end := min(base+512, len(keys))
		esc, _ = tab.InsertBatch(hs[base:end], keys[base:end], cols, base, esc[:0])
		foldEscapes(local, ops, esc, keys, col, base)
	}
	if tab.Grows() != 0 {
		t.Fatalf("refused governor, yet table grew %d times", tab.Grows())
	}
	if tab.FootprintBytes() != before {
		t.Fatal("footprint changed without growth")
	}
	if tab.Escaped() == 0 {
		t.Fatal("no escapes despite a fill-limited, growth-refused table")
	}
	got := drainToMap(t, tab)
	mergeInto(got, local, ops)
	checkStates(t, got, refStates(ops, keys, col))
}

// TestReset: epoch-bump recycling empties the table in O(1) and the next
// run sees none of the old keys.
func TestReset(t *testing.T) {
	ops := testOps()
	keys, hs, col := makeInput(datagen.Uniform, 5000, 400, 5)
	tab := New(Config{CapacityRows: 1 << 14, Ops: ops})
	cols := [][]int64{col}
	esc, _ := tab.InsertBatch(hs, keys, cols, 0, nil)
	if len(esc) != 0 || tab.Len() == 0 {
		t.Fatalf("seed insert: esc=%d len=%d", len(esc), tab.Len())
	}
	tab.Reset()
	if tab.Len() != 0 || tab.RowsIn() != 0 || tab.Alpha() != 0 {
		t.Fatalf("reset left len=%d rowsIn=%d alpha=%f", tab.Len(), tab.RowsIn(), tab.Alpha())
	}
	// Second epoch: a disjoint key set; the drain must contain exactly it.
	keys2 := make([]uint64, len(keys))
	hs2 := make([]uint64, len(keys))
	for i := range keys2 {
		keys2[i] = keys[i] + (1 << 40)
	}
	hashfn.HashBatch(keys2, hs2)
	if esc, _ := tab.InsertBatch(hs2, keys2, cols, 0, nil); len(esc) != 0 {
		t.Fatalf("post-reset insert escaped %d rows", len(esc))
	}
	checkStates(t, drainToMap(t, tab), refStates(ops, keys2, col))
}

// TestEpochWrapRezeroesMeta drives Reset past epochMax and checks the
// table still works (the wrap path clears the meta array).
func TestEpochWrapRezeroesMeta(t *testing.T) {
	tab := New(Config{CapacityRows: MinRows, Ops: nil})
	tab.epoch = epochMax // next Reset wraps
	tab.Reset()
	if tab.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", tab.epoch)
	}
	keys := []uint64{1, 2, 3, 1}
	hs := make([]uint64, len(keys))
	hashfn.HashBatch(keys, hs)
	if esc, _ := tab.InsertBatch(hs, keys, nil, 0, nil); len(esc) != 0 {
		t.Fatalf("post-wrap insert escaped %d rows", len(esc))
	}
	if tab.Len() != 3 {
		t.Fatalf("post-wrap Len = %d, want 3", tab.Len())
	}
}

// TestNoGrowthEscapes: growth disabled outright (MaxCapacityRows 0), more
// groups than the fill limit — the surplus must escape, never block, and
// the absorbed+escaped split must account for every row.
func TestNoGrowthEscapes(t *testing.T) {
	ops := testOps()
	keys, hs, col := makeInput(datagen.Uniform, 10000, 9000, 11)
	tab := New(Config{CapacityRows: MinRows, Ops: ops})
	cols := [][]int64{col}
	local := map[uint64][]uint64{}
	var esc []int32
	for base := 0; base < len(keys); base += 512 {
		end := min(base+512, len(keys))
		esc, _ = tab.InsertBatch(hs[base:end], keys[base:end], cols, base, esc[:0])
		foldEscapes(local, ops, esc, keys, col, base)
	}
	if tab.Escaped() == 0 {
		t.Fatal("expected escapes from a growth-disabled MinRows table")
	}
	if tab.RowsIn()+tab.Escaped() != int64(len(keys)) {
		t.Fatalf("rows unaccounted: in=%d escaped=%d of %d",
			tab.RowsIn(), tab.Escaped(), len(keys))
	}
	got := drainToMap(t, tab)
	mergeInto(got, local, ops)
	checkStates(t, got, refStates(ops, keys, col))
}

// TestConcurrentHammer is the contention hammer: N workers slam one shared
// table with zipf (hot-key contention on the fold atomics), heavy-hitter
// (claim races on few slots) and uniform (probe-chain races) streams, under
// tight capacity so claim/fold/grow/escape all fire together. Run under
// -race this pins the publication protocol; the drained-plus-escaped states
// must equal the scalar oracle bit for bit.
func TestConcurrentHammer(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	const (
		workers = 8
		n       = 1 << 16
	)
	ops := testOps()
	cases := []struct {
		name string
		spec datagen.Spec
		cap  int
		grow int
		spin int
	}{
		{"zipf-hot", datagen.Spec{Dist: datagen.Zipf, K: 1 << 10, Theta: 1.05}, 1 << 14, 1 << 16, 8},
		{"heavy-hitter", datagen.Spec{Dist: datagen.HeavyHitter, K: 1 << 12, HitFraction: 0.9}, MinRows, 1 << 16, 4},
		{"uniform-grow", datagen.Spec{Dist: datagen.Uniform, K: 1 << 13}, MinRows, 1 << 18, 64},
		{"uniform-starved", datagen.Spec{Dist: datagen.Uniform, K: 1 << 13}, MinRows, 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec
			spec.N = n
			spec.Seed = 19
			keys := datagen.Generate(spec)
			hs := make([]uint64, n)
			hashfn.HashBatch(keys, hs)
			rng := xrand.NewXoshiro256(23)
			col := make([]int64, n)
			for i := range col {
				col[i] = int64(rng.Next()%2001) - 1000
			}
			cols := [][]int64{col}

			tab := New(Config{
				CapacityRows:    tc.cap,
				MaxCapacityRows: tc.grow,
				Ops:             ops,
				SpinLimit:       tc.spin,
			})
			locals := make([]map[uint64][]uint64, workers)
			var wg sync.WaitGroup
			share := n / workers
			for w := 0; w < workers; w++ {
				locals[w] = map[uint64][]uint64{}
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lo, hi := w*share, (w+1)*share
					if w == workers-1 {
						hi = n
					}
					var esc []int32
					for base := lo; base < hi; base += 512 {
						end := min(base+512, hi)
						esc, _ = tab.InsertBatch(hs[base:end], keys[base:end], cols, base, esc[:0])
						foldEscapes(locals[w], ops, esc, keys, col, base)
					}
				}(w)
			}
			wg.Wait()

			got := drainToMap(t, tab)
			for _, local := range locals {
				mergeInto(got, local, ops)
			}
			checkStates(t, got, refStates(ops, keys, col))
			if tab.RowsIn()+tab.Escaped() != int64(n) {
				t.Fatalf("rows unaccounted: in=%d escaped=%d of %d",
					tab.RowsIn(), tab.Escaped(), n)
			}
		})
	}
}

// TestDistinctOnlyTable: zero state words (pure DISTINCT) must claim and
// drain without touching any fold path.
func TestDistinctOnlyTable(t *testing.T) {
	keys, hs, _ := makeInput(datagen.Uniform, 8000, 500, 31)
	tab := New(Config{CapacityRows: 1 << 14, Ops: nil})
	if esc, _ := tab.InsertBatch(hs, keys, nil, 0, nil); len(esc) != 0 {
		t.Fatalf("escaped %d rows", len(esc))
	}
	got := drainToMap(t, tab)
	want := map[uint64]bool{}
	for _, k := range keys {
		want[k] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct keys, want %d", len(got), len(want))
	}
}
