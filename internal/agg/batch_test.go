package agg

import (
	"testing"

	"cacheagg/internal/xrand"
)

// TestColumnFoldersMatchScalar checks every monomorphic fold kernel against
// the scalar Op.Apply reference over random slots and values, including
// boundary batch lengths.
func TestColumnFoldersMatchScalar(t *testing.T) {
	ops := []WordOp{
		{Op: OpAdd, Src: SrcCol},
		{Op: OpAdd, Src: SrcOne},
		{Op: OpMin, Src: SrcCol},
		{Op: OpMax, Src: SrcCol},
	}
	rng := xrand.NewXoshiro256(1)
	const groups = 257
	for _, op := range ops {
		for _, n := range []int{0, 1, 7, 8, 9, 4096} {
			slots := make([]int32, n)
			vals := make([]int64, n)
			for i := range slots {
				slots[i] = int32(rng.Uint64n(groups))
				vals[i] = int64(rng.Next()) >> 33 // mixed signs
			}
			want := make([]uint64, groups)
			got := make([]uint64, groups)
			for i := range want {
				want[i] = rng.Next()
			}
			copy(got, want)

			for j, s := range slots {
				v := uint64(1)
				if op.Src == SrcCol {
					v = uint64(vals[j])
				}
				want[s] = op.Op.Apply(want[s], v)
			}
			fold := op.ColumnFolder()
			if op.Src == SrcCol {
				fold(got, slots, vals)
			} else {
				fold(got, slots, nil)
			}
			for s := range want {
				if want[s] != got[s] {
					t.Fatalf("op %v n=%d: state[%d] = %#x, want %#x", op, n, s, got[s], want[s])
				}
			}
		}
	}
}

// TestColumnMergersMatchScalar does the same for the state-merge kernels.
func TestColumnMergersMatchScalar(t *testing.T) {
	rng := xrand.NewXoshiro256(2)
	const groups = 129
	for _, op := range []Op{OpAdd, OpMin, OpMax} {
		for _, n := range []int{0, 1, 7, 8, 513} {
			slots := make([]int32, n)
			src := make([]uint64, n)
			for i := range slots {
				slots[i] = int32(rng.Uint64n(groups))
				src[i] = rng.Next()
			}
			want := make([]uint64, groups)
			got := make([]uint64, groups)
			for i := range want {
				want[i] = rng.Next()
			}
			copy(got, want)
			for j, s := range slots {
				want[s] = op.Apply(want[s], src[j])
			}
			op.ColumnMerger()(got, slots, src)
			for s := range want {
				if want[s] != got[s] {
					t.Fatalf("op %v n=%d: state[%d] = %#x, want %#x", op, n, s, got[s], want[s])
				}
			}
		}
	}
}

// TestIdentityFoldEqualsInit pins the bitwise-equivalence argument the batch
// claim path relies on: initializing a state word to the op's identity and
// folding a value into it yields exactly the directly-initialized word.
func TestIdentityFoldEqualsInit(t *testing.T) {
	rng := xrand.NewXoshiro256(3)
	for _, op := range []Op{OpAdd, OpMin, OpMax} {
		for i := 0; i < 1000; i++ {
			v := rng.Next()
			if got := op.Apply(op.Identity(), v); got != v {
				t.Fatalf("op %v: Apply(identity, %#x) = %#x, want the value itself", op, v, got)
			}
		}
	}
}

// TestKernelsShape checks the per-layout kernel table: one fold and one
// merge kernel per state word, and column indices matching the word ops.
func TestKernelsShape(t *testing.T) {
	lay := NewLayout([]Spec{
		{Kind: Count, Col: 0}, {Kind: Avg, Col: 2}, {Kind: Sum, Col: 1},
	})
	kern := lay.Kernels()
	if len(kern.Fold) != lay.Words || len(kern.Merge) != lay.Words || len(kern.Cols) != lay.Words {
		t.Fatalf("kernel table shape %d/%d/%d, want %d per column",
			len(kern.Fold), len(kern.Merge), len(kern.Cols), lay.Words)
	}
	ops := lay.WordOps()
	for w, op := range ops {
		wantCol := -1
		if op.Src == SrcCol {
			wantCol = op.Col
		}
		if kern.Cols[w] != wantCol {
			t.Fatalf("word %d: kernel col %d, want %d", w, kern.Cols[w], wantCol)
		}
	}
}
