package serve

// The durable sidecar of a string-keyed ingest session: the stream
// subsystem checkpoints dense uint64 ids (its codec and recovery story
// stay untouched by general keys), so the session's id → string mapping
// must be durable too, or a resumed stream would hold ids nobody can
// decode. KEYDICT is an append-only file in the session directory:
//
//	"CAGDICT1" magic, then per interned string: uvarint length + bytes,
//	in dense-id order (entry i is the string of id i).
//
// The invariant that makes recovery safe: the dictionary on disk is
// always a superset of the ids in any committed checkpoint. Push appends
// and fsyncs new entries BEFORE the block enters the stream, so an id can
// only reach a checkpoint after its string is durable. The converse crash
// (dict entry durable, block lost) leaves a harmless unused entry. A torn
// tail — the fsync raced process death — is truncated at load, which is
// safe for the same reason: a torn entry's id cannot be in any committed
// checkpoint.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cacheagg"
)

const (
	keyDictName  = "KEYDICT"
	keyDictMagic = "CAGDICT1"
)

// keyDict pairs a session's string interner with its durable append log.
type keyDict struct {
	mu        sync.Mutex
	f         *os.File
	it        *cacheagg.Interner
	strs      []string // id → string mirror; strs[:persisted] are durable
	persisted int
	noSync    bool
}

func keyDictPath(dir string) string { return filepath.Join(dir, keyDictName) }

// createKeyDict starts a fresh dictionary file for a new string-keyed
// session, truncating any leftover from an aborted begin.
func createKeyDict(dir string, noSync bool) (*keyDict, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create session dir: %w", err)
	}
	f, err := os.OpenFile(keyDictPath(dir), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: create key dictionary: %w", err)
	}
	d := &keyDict{f: f, it: cacheagg.NewInterner(), noSync: noSync}
	if _, err := f.WriteString(keyDictMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: write key dictionary header: %w", err)
	}
	if err := d.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// loadKeyDict opens an existing session's dictionary. ok is false when the
// session has no KEYDICT (a uint64-keyed session). A torn tail is
// truncated; everything before it is re-interned in id order, so the
// rebuilt interner assigns exactly the ids the file records.
func loadKeyDict(dir string, noSync bool) (d *keyDict, ok bool, err error) {
	path := keyDictPath(dir)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("serve: read key dictionary: %w", err)
	}
	if len(raw) < len(keyDictMagic) || string(raw[:len(keyDictMagic)]) != keyDictMagic {
		return nil, false, fmt.Errorf("serve: key dictionary %s has a corrupt header", path)
	}
	var strs []string
	good := len(keyDictMagic) // offset of the last fully decoded entry's end
	for off := good; off < len(raw); {
		n, used := binary.Uvarint(raw[off:])
		if used <= 0 || uint64(len(raw)-off-used) < n {
			break // torn tail: truncate here
		}
		strs = append(strs, string(raw[off+used:off+used+int(n)]))
		off += used + int(n)
		good = off
	}
	if good < len(raw) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, false, fmt.Errorf("serve: truncate torn key dictionary tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, false, fmt.Errorf("serve: open key dictionary: %w", err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, false, fmt.Errorf("serve: seek key dictionary: %w", err)
	}
	d = &keyDict{f: f, it: cacheagg.NewInterner(), strs: strs, persisted: len(strs), noSync: noSync}
	if len(strs) > 0 {
		ids, err := d.it.EncodeColumns([]cacheagg.KeyColumn{{Strings: strs}})
		if err != nil {
			f.Close()
			return nil, false, err
		}
		for i, id := range ids {
			if id != uint64(i) {
				f.Close()
				return nil, false, fmt.Errorf("serve: key dictionary %s holds duplicate entry %d", path, i)
			}
		}
	}
	return d, true, nil
}

// encode interns a push block's string keys, making every newly seen
// string durable before returning — the ids handed to the stream are
// always decodable by a future resume.
func (d *keyDict) encode(skeys []string) ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids, err := d.it.EncodeColumns([]cacheagg.KeyColumn{{Strings: skeys}})
	if err != nil {
		return nil, err
	}
	// New ids are assigned densely in row order, so the mirror appends in
	// exactly file order.
	for i, id := range ids {
		if int(id) == len(d.strs) {
			d.strs = append(d.strs, skeys[i])
		} else if int(id) > len(d.strs) {
			return nil, fmt.Errorf("serve: key dictionary id %d skips ahead of mirror size %d", id, len(d.strs))
		}
	}
	if len(d.strs) > d.persisted {
		var buf []byte
		for _, s := range d.strs[d.persisted:] {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		if _, err := d.f.Write(buf); err != nil {
			return nil, fmt.Errorf("serve: append key dictionary: %w", err)
		}
		if err := d.sync(); err != nil {
			return nil, err
		}
		d.persisted = len(d.strs)
	}
	return ids, nil
}

// decode maps dense ids (result group ids) back to their strings.
func (d *keyDict) decode(ids []uint64) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(ids))
	for i, id := range ids {
		if int(id) >= len(d.strs) {
			return nil, fmt.Errorf("serve: group id %d not in the session key dictionary (%d keys)", id, len(d.strs))
		}
		out[i] = d.strs[id]
	}
	return out, nil
}

func (d *keyDict) sync() error {
	if d.noSync {
		return nil
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("serve: sync key dictionary: %w", err)
	}
	return nil
}

func (d *keyDict) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f != nil {
		d.f.Close()
		d.f = nil
	}
}
