// Package hashtable implements the hash table of the HASHING routine
// (paper Section 4.1): a single-level table with linear probing, fixed to
// the size of the cache, considered full at a low fill rate (25 %), with
// probing adapted to work within blocks so that a full table can be split
// cleanly into one contiguous range per partition — "merely a logical
// operation" (Section 3.1).
//
// Design notes mirrored from the paper:
//
//   - Collisions are resolved by linear probing confined to the entry's
//     block (1/fanout of the table). This keeps all rows of one radix digit
//     in one contiguous range so SplitRuns is a per-block compaction.
//   - The table never grows: when an insert cannot proceed (global fill
//     limit reached, or the entry's block has no free slot), the insert
//     reports failure and the caller splits the table into runs and starts
//     a fresh one. This is the mechanism that bounds the working set to the
//     cache.
//   - The table tracks how many input rows it absorbed (rowsIn) so the
//     ADAPTIVE strategy can read the reduction factor α = rowsIn/rowsOut at
//     split time (Section 5).
//
// Occupancy uses epoch versioning so Reset is O(1) and tables can be reused
// without re-zeroing cache-sized arrays.
package hashtable

import (
	"fmt"
	"math"

	"cacheagg/internal/agg"
	"cacheagg/internal/runs"
)

// DefaultMaxFill is the fill rate at which the table declares itself full.
// The paper uses 25 %: "we fix the hash table to the size of the L3 cache
// and consider it full at a very low fill rate of 25 %", making collisions
// "very rare or even non-existing".
const DefaultMaxFill = 0.25

// MinBlockRows is the minimum rows per block; smaller blocks make in-block
// probing degenerate.
const MinBlockRows = 8

// Config configures a Table.
type Config struct {
	// CapacityRows is the total number of slots. It is rounded up to a
	// power of two and to at least Blocks*MinBlockRows.
	CapacityRows int
	// Blocks is the number of split ranges, normally the partitioning
	// fan-out (256). Must be a power of two.
	Blocks int
	// MaxFill is the fraction of slots that may be occupied before the
	// table reports full; 0 selects DefaultMaxFill.
	MaxFill float64
	// Words is the number of aggregate state words per row.
	Words int
	// Level is the recursion level; an entry's block is the radix digit of
	// its hash at this level.
	Level int
	// OmitHashesInRuns drops the hash column from the runs produced by
	// SplitRuns (the paper's layout: downstream passes recompute hashes
	// from the keys). The table always stores hashes internally for
	// probing either way.
	OmitHashesInRuns bool
}

// Table is a block-structured linear-probing hash table.
type Table struct {
	capRows   int
	blockRows int
	blockMask uint64
	blocks    int
	level     int
	words     int
	maxRows   int
	shift     uint // digit shift for this level

	rows      int
	rowsIn    int
	omitInRun bool

	hashes  []uint64
	keys    []uint64
	states  [][]uint64
	version []uint8
	epoch   uint8

	// batchSlots is the reusable slot scratch of the batch-insert path
	// (grown on demand); warmSink keeps the pipelined warm-up loads of
	// claimBatch observable so they are not dead-code-eliminated.
	batchSlots []int32
	warmSink   uint32
	// blockOffs is the reusable per-block offset scratch of the
	// arena-allocating SplitRuns.
	blockOffs []int
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a table from cfg.
func New(cfg Config) *Table {
	if cfg.Blocks <= 0 || cfg.Blocks&(cfg.Blocks-1) != 0 {
		panic(fmt.Sprintf("hashtable: blocks %d must be a positive power of two", cfg.Blocks))
	}
	if cfg.Level < 0 || cfg.Level >= 8 {
		panic(fmt.Sprintf("hashtable: level %d out of range", cfg.Level))
	}
	capRows := ceilPow2(cfg.CapacityRows)
	if min := cfg.Blocks * MinBlockRows; capRows < min {
		capRows = min
	}
	fill := cfg.MaxFill
	if fill <= 0 {
		fill = DefaultMaxFill
	}
	if fill > 1 {
		fill = 1
	}
	maxRows := int(float64(capRows) * fill)
	if maxRows < 1 {
		maxRows = 1
	}
	t := &Table{
		capRows:   capRows,
		blockRows: capRows / cfg.Blocks,
		blocks:    cfg.Blocks,
		level:     cfg.Level,
		words:     cfg.Words,
		maxRows:   maxRows,
		omitInRun: cfg.OmitHashesInRuns,
		shift:     uint(64 - 8*(cfg.Level+1)),
		hashes:    make([]uint64, capRows),
		keys:      make([]uint64, capRows),
		states:    make([][]uint64, cfg.Words),
		version:   make([]uint8, capRows),
		epoch:     1,
	}
	t.blockMask = uint64(t.blockRows - 1)
	for i := range t.states {
		t.states[i] = make([]uint64, capRows)
	}
	return t
}

// CapacityRows returns the total slot count (after rounding).
func (t *Table) CapacityRows() int { return t.capRows }

// FootprintBytes returns the heap footprint of the table's backing arrays
// (hash, key, and version columns plus one column per state word), for
// registration with the memory governor.
func (t *Table) FootprintBytes() int64 {
	return int64(t.capRows) * int64(8+8+1+8*t.words)
}

// SetLevel re-targets an empty table to a different recursion level, so a
// worker can reuse one cache-sized allocation across bucket tasks. It
// panics if the table still holds rows or the level is out of range.
func (t *Table) SetLevel(level int) {
	if t.rows != 0 {
		panic("hashtable: SetLevel on non-empty table")
	}
	if level < 0 || level >= 8 {
		panic(fmt.Sprintf("hashtable: level %d out of range", level))
	}
	t.level = level
	t.shift = uint(64 - 8*(level+1))
}

// MaxRows returns the fill limit in rows.
func (t *Table) MaxRows() int { return t.maxRows }

// Len returns the number of occupied slots (distinct groups stored).
func (t *Table) Len() int { return t.rows }

// RowsIn returns the number of input rows absorbed since the last Reset.
func (t *Table) RowsIn() int { return t.rowsIn }

// Level returns the recursion level the table was built for.
func (t *Table) Level() int { return t.level }

// Alpha returns the reduction factor α = rowsIn / rowsOut observed so far.
// An empty table has α = +Inf by convention (nothing disproves locality yet);
// the strategy only consults α on non-empty tables.
func (t *Table) Alpha() float64 {
	if t.rows == 0 {
		if t.rowsIn == 0 {
			return 1
		}
		return 1 // unreachable: rowsIn>0 implies rows>0
	}
	return float64(t.rowsIn) / float64(t.rows)
}

// Full reports whether the global fill limit has been reached.
func (t *Table) Full() bool { return t.rows >= t.maxRows }

// block returns the block index of hash h at the table's level.
func (t *Table) block(h uint64) int {
	return int(h >> t.shift & uint64(t.blocks-1))
}

// slot probing: position within block derived from the LOW bits of the
// hash, which no recursion level consumes (digits come from the top), so
// in-block placement stays independent of the partitioning digits.
func (t *Table) probeStart(h uint64) int {
	return int(h & t.blockMask)
}

// find locates key (with hash h) in its block. It returns the slot index
// and true if present; otherwise the first free slot and false, or -1 and
// false if the block is completely full.
func (t *Table) find(h, key uint64) (int, bool) {
	base := t.block(h) * t.blockRows
	start := t.probeStart(h)
	for i := 0; i < t.blockRows; i++ {
		s := base + int((uint64(start+i))&t.blockMask)
		if t.version[s] != t.epoch {
			return s, false
		}
		if t.hashes[s] == h && t.keys[s] == key {
			return s, true
		}
	}
	return -1, false
}

// InsertState inserts (or merges) a row carrying an initialized aggregate
// state vector. It returns false — without modifying the table — if the
// row is new and the table is full (fill limit reached or block exhausted);
// the caller must then split the table and retry on a fresh one.
func (t *Table) InsertState(h, key uint64, state []uint64, lay *agg.Layout) bool {
	s, found := t.find(h, key)
	if found {
		if lay != nil {
			for i, sp := range lay.Specs {
				off := lay.Offsets[i]
				w := sp.Kind.Width()
				// Merge in place on the column-decomposed state.
				mergeColumns(sp.Kind, t.states[off:off+w], s, state[off:off+w])
			}
		}
		t.rowsIn++
		return true
	}
	if s < 0 || t.rows >= t.maxRows {
		return false
	}
	t.version[s] = t.epoch
	t.hashes[s] = h
	t.keys[s] = key
	for i := 0; i < t.words; i++ {
		t.states[i][s] = state[i]
	}
	t.rows++
	t.rowsIn++
	return true
}

// InsertRaw inserts (or folds) a raw input row whose aggregate inputs are
// provided by values. It returns false, without modifying the table, when
// the row is new and the table is full.
func (t *Table) InsertRaw(h, key uint64, values func(col int) int64, lay *agg.Layout) bool {
	s, found := t.find(h, key)
	if found {
		if lay != nil {
			for i, sp := range lay.Specs {
				off := lay.Offsets[i]
				var v int64
				if sp.Kind != agg.Count {
					v = values(sp.Col)
				}
				foldColumns(sp.Kind, t.states[off:off+sp.Kind.Width()], s, v)
			}
		}
		t.rowsIn++
		return true
	}
	if s < 0 || t.rows >= t.maxRows {
		return false
	}
	t.version[s] = t.epoch
	t.hashes[s] = h
	t.keys[s] = key
	if lay != nil {
		for i, sp := range lay.Specs {
			off := lay.Offsets[i]
			var v int64
			if sp.Kind != agg.Count {
				v = values(sp.Col)
			}
			initColumns(sp.Kind, t.states[off:off+sp.Kind.Width()], s, v)
		}
	}
	t.rows++
	t.rowsIn++
	return true
}

// mergeColumns applies kind's super-aggregate merge at row s of the
// column-decomposed state storage.
func mergeColumns(k agg.Kind, cols [][]uint64, s int, src []uint64) {
	switch k {
	case agg.Count, agg.Sum:
		cols[0][s] = uint64(int64(cols[0][s]) + int64(src[0]))
	case agg.Min:
		if int64(src[0]) < int64(cols[0][s]) {
			cols[0][s] = src[0]
		}
	case agg.Max:
		if int64(src[0]) > int64(cols[0][s]) {
			cols[0][s] = src[0]
		}
	case agg.Avg:
		cols[0][s] = uint64(int64(cols[0][s]) + int64(src[0]))
		cols[1][s] += src[1]
	default:
		panic("hashtable: invalid kind")
	}
}

func foldColumns(k agg.Kind, cols [][]uint64, s int, v int64) {
	switch k {
	case agg.Count:
		cols[0][s]++
	case agg.Sum:
		cols[0][s] = uint64(int64(cols[0][s]) + v)
	case agg.Min:
		if v < int64(cols[0][s]) {
			cols[0][s] = uint64(v)
		}
	case agg.Max:
		if v > int64(cols[0][s]) {
			cols[0][s] = uint64(v)
		}
	case agg.Avg:
		cols[0][s] = uint64(int64(cols[0][s]) + v)
		cols[1][s]++
	default:
		panic("hashtable: invalid kind")
	}
}

func initColumns(k agg.Kind, cols [][]uint64, s int, v int64) {
	switch k {
	case agg.Count:
		cols[0][s] = 1
	case agg.Sum, agg.Min, agg.Max:
		cols[0][s] = uint64(v)
	case agg.Avg:
		cols[0][s] = uint64(v)
		cols[1][s] = 1
	default:
		panic("hashtable: invalid kind")
	}
}

// InsertStateCols inserts or merges row `row` of column-decomposed partial
// states (the layout of runs.Run.States), combining word-wise with the
// layout's word operations. This is the columnar fast path of the engine:
// no per-row state gathering. Returns false when the row is new and the
// table is full.
func (t *Table) InsertStateCols(h, key uint64, states [][]uint64, row int, ops []agg.WordOp) bool {
	s, found := t.find(h, key)
	if found {
		for w := range ops {
			t.states[w][s] = ops[w].Op.Apply(t.states[w][s], states[w][row])
		}
		t.rowsIn++
		return true
	}
	if s < 0 || t.rows >= t.maxRows {
		return false
	}
	t.version[s] = t.epoch
	t.hashes[s] = h
	t.keys[s] = key
	for w := range ops {
		t.states[w][s] = states[w][row]
	}
	t.rows++
	t.rowsIn++
	return true
}

// InsertRawCols inserts or folds row `row` of raw input columns, using the
// layout's word operations (SrcOne words contribute 1, SrcCol words read
// cols[op.Col][row]). Returns false when the row is new and the table is
// full.
func (t *Table) InsertRawCols(h, key uint64, cols [][]int64, row int, ops []agg.WordOp) bool {
	s, found := t.find(h, key)
	if found {
		for w := range ops {
			v := int64(1)
			if ops[w].Src == agg.SrcCol {
				v = cols[ops[w].Col][row]
			}
			t.states[w][s] = ops[w].Op.Apply(t.states[w][s], uint64(v))
		}
		t.rowsIn++
		return true
	}
	if s < 0 || t.rows >= t.maxRows {
		return false
	}
	t.version[s] = t.epoch
	t.hashes[s] = h
	t.keys[s] = key
	for w := range ops {
		v := int64(1)
		if ops[w].Src == agg.SrcCol {
			v = cols[ops[w].Col][row]
		}
		t.states[w][s] = uint64(v)
	}
	t.rows++
	t.rowsIn++
	return true
}

// Lookup returns a copy of the state vector stored for (h, key) and whether
// the key is present. Intended for tests and small finalization paths.
func (t *Table) Lookup(h, key uint64) ([]uint64, bool) {
	s, found := t.find(h, key)
	if !found {
		return nil, false
	}
	out := make([]uint64, t.words)
	for i := 0; i < t.words; i++ {
		out[i] = t.states[i][s]
	}
	return out, true
}

// SplitRuns compacts every non-empty block into one aggregated run and
// returns a slice indexed by block (= radix digit at the table's level);
// empty blocks yield nil entries. The table is reset afterwards.
//
// The compaction is batched and arena-allocated: one scan collects the
// occupied slot indices of every block (recording per-block boundaries),
// each column (hashes, keys, state words) is then gathered into a single
// slab with one tight monomorphic copy loop, and the per-block runs are
// carved out of the slabs as sub-slices. A split therefore costs a handful
// of allocations instead of a few per non-empty block, which at high group
// counts removes most of the operator's GC pressure.
func (t *Table) SplitRuns() []*runs.Run {
	if t.capRows > math.MaxInt32 {
		return t.splitRunsSlow()
	}
	out := make([]*runs.Run, t.blocks)
	off := t.offScratch(t.blocks + 1)
	keySlab := make([]uint64, t.rows)
	version, keysCol, epoch := t.version, t.keys, t.epoch
	blockRows := t.blockRows
	// The occupancy scan gathers the key column as it goes; the slot list is
	// only materialized when further columns need it for their own gathers.
	needIdx := !t.omitInRun || t.words > 0
	var idx []int32
	if needIdx {
		idx = t.slotScratch(t.rows)
	}
	pos := 0
	for b := 0; b < t.blocks; b++ {
		off[b] = pos
		base := b * blockRows
		ver := version[base : base+blockRows]
		if needIdx {
			for i, v := range ver {
				if v == epoch {
					s := base + i
					idx[pos] = int32(s)
					keySlab[pos] = keysCol[s]
					pos++
				}
			}
		} else {
			for i, v := range ver {
				if v == epoch {
					keySlab[pos] = keysCol[base+i]
					pos++
				}
			}
		}
	}
	off[t.blocks] = pos
	var occ []int32
	if needIdx {
		occ = idx[:pos]
	}

	var hashSlab []uint64
	if !t.omitInRun {
		hashSlab = make([]uint64, pos)
		for j, s := range occ {
			hashSlab[j] = t.hashes[s]
		}
	}
	stateSlabs := make([][]uint64, t.words)
	for w := 0; w < t.words; w++ {
		col := make([]uint64, pos)
		src := t.states[w]
		for j, s := range occ {
			col[j] = src[s]
		}
		stateSlabs[w] = col
	}

	// Carve the slabs into per-block runs. The Run structs and their
	// States headers come from two further slabs so the whole split stays
	// at O(words) allocations.
	nonEmpty := 0
	for b := 0; b < t.blocks; b++ {
		if off[b+1] > off[b] {
			nonEmpty++
		}
	}
	runSlab := make([]runs.Run, nonEmpty)
	viewSlab := make([][]uint64, nonEmpty*t.words)
	ri := 0
	for b := 0; b < t.blocks; b++ {
		lo, hi := off[b], off[b+1]
		if lo == hi {
			continue
		}
		r := &runSlab[ri]
		r.Keys = keySlab[lo:hi:hi]
		r.States = viewSlab[ri*t.words : (ri+1)*t.words : (ri+1)*t.words]
		r.Aggregated = true
		if hashSlab != nil {
			r.Hashes = hashSlab[lo:hi:hi]
		}
		for w := 0; w < t.words; w++ {
			r.States[w] = stateSlabs[w][lo:hi:hi]
		}
		out[b] = r
		ri++
	}
	t.Reset()
	return out
}

// offScratch returns a reusable []int of length n for per-block offsets.
func (t *Table) offScratch(n int) []int {
	if cap(t.blockOffs) < n {
		t.blockOffs = make([]int, n)
	}
	return t.blockOffs[:n]
}

// splitRunsSlow is the row-at-a-time SplitRuns for tables whose slot
// indices do not fit int32 (unreachable through the engine's cache-sized
// tables; kept for API completeness).
func (t *Table) splitRunsSlow() []*runs.Run {
	out := make([]*runs.Run, t.blocks)
	for b := 0; b < t.blocks; b++ {
		base := b * t.blockRows
		n := 0
		for i := 0; i < t.blockRows; i++ {
			if t.version[base+i] == t.epoch {
				n++
			}
		}
		if n == 0 {
			continue
		}
		r := &runs.Run{
			Keys:       make([]uint64, 0, n),
			States:     make([][]uint64, t.words),
			Aggregated: true,
		}
		if !t.omitInRun {
			r.Hashes = make([]uint64, 0, n)
		}
		for w := range r.States {
			r.States[w] = make([]uint64, 0, n)
		}
		for i := 0; i < t.blockRows; i++ {
			s := base + i
			if t.version[s] != t.epoch {
				continue
			}
			if !t.omitInRun {
				r.Hashes = append(r.Hashes, t.hashes[s])
			}
			r.Keys = append(r.Keys, t.keys[s])
			for w := 0; w < t.words; w++ {
				r.States[w] = append(r.States[w], t.states[w][s])
			}
		}
		out[b] = r
	}
	t.Reset()
	return out
}

// Emit appends every occupied row to the provided callback in block order.
// Unlike SplitRuns it does not reset the table.
func (t *Table) Emit(fn func(hash, key uint64, state []uint64)) {
	scratch := make([]uint64, t.words)
	for s := 0; s < t.capRows; s++ {
		if t.version[s] != t.epoch {
			continue
		}
		for w := 0; w < t.words; w++ {
			scratch[w] = t.states[w][s]
		}
		fn(t.hashes[s], t.keys[s], scratch)
	}
}

// EmitColumns gathers every occupied row into the provided column slices in
// block order (the same order Emit visits). hashes and keys must have
// length Len(); states must hold one length-Len() column per state word.
// Like Emit it does not reset the table. This is the batched output path:
// one occupancy scan, then one tight copy loop per column.
func (t *Table) EmitColumns(hashes, keys []uint64, states [][]uint64) {
	if t.capRows > math.MaxInt32 {
		j := 0
		t.Emit(func(h, k uint64, st []uint64) {
			hashes[j], keys[j] = h, k
			for w := range st {
				states[w][j] = st[w]
			}
			j++
		})
		return
	}
	idx := t.slotScratch(t.rows)
	version, epoch := t.version, t.epoch
	hsCol, ksCol := t.hashes, t.keys
	n := 0
	for s, v := range version {
		if v == epoch {
			idx[n] = int32(s)
			hashes[n] = hsCol[s]
			keys[n] = ksCol[s]
			n++
		}
	}
	occ := idx[:n]
	for w := 0; w < t.words; w++ {
		src := t.states[w]
		dst := states[w]
		for j, s := range occ {
			dst[j] = src[s]
		}
	}
}

// Reset clears the table in O(1) via epoch bump (O(capacity) re-zeroing
// happens only on the rare epoch wrap).
func (t *Table) Reset() {
	t.rows = 0
	t.rowsIn = 0
	t.epoch++
	if t.epoch == 0 { // wrapped: versions may alias, clear for real
		for i := range t.version {
			t.version[i] = 0
		}
		t.epoch = 1
	}
}

// SlotBytes returns the per-slot memory footprint in bytes for a table with
// the given number of state words: hash + key + states + version.
func SlotBytes(words int) int { return 8 + 8 + 8*words + 1 }

// CapacityForCache returns the slot count of a table sized to occupy
// roughly cacheBytes, for the given state width. The result is rounded
// DOWN to a power of two so the table never exceeds the cache budget.
func CapacityForCache(cacheBytes, words int) int {
	slots := cacheBytes / SlotBytes(words)
	if slots < 1 {
		return 1
	}
	p := 1
	for p*2 <= slots {
		p *= 2
	}
	return p
}
