// Package columnar implements the three column-wise processing models the
// paper contrasts in Section 3.3 (Figure 2), plus the mapping-vector
// machinery used by the operator's column-store integration:
//
//   - Row-at-a-time: all columns of a row are touched together. Known to
//     prevent tight loops and to shrink the effective cache (a "row" of all
//     attributes is wider than one attribute).
//   - Column-at-a-time (MonetDB): a first operator consumes the grouping
//     column and materializes a FULL mapping vector (row → group index); a
//     second operator applies that vector to each aggregate column. Costs
//     extra memory traffic for the vector, and the aggregate application
//     has the scattered access pattern of naive HASHAGGREGATION.
//   - Block-wise interleaved (MonetDB/X100): the mapping vector is produced
//     and applied one cache-sized block at a time, never materialized to
//     memory — the model the paper adopts inside its operator.
//
// The partition-mapping helpers at the bottom implement the aggregate-
// column movement of the operator itself (the `map` bar of Figure 3):
// while producing a run of the grouping column, the routines emit a
// per-run mapping vector of destination partitions, which is then applied
// to the corresponding fragment of every aggregate column.
package columnar

import (
	"cacheagg/internal/hashfn"
	"cacheagg/internal/runs"
)

// GroupMapping is the output of the MonetDB-style first operator: the
// distinct groups in first-appearance order and, for every input row, the
// index of its group.
type GroupMapping struct {
	Groups []uint64
	Map    []uint32
}

// MapGroups builds the group vector and mapping vector of a key column
// (operator 1 of Figure 2's column-at-a-time model).
func MapGroups(keys []uint64) GroupMapping {
	gm := GroupMapping{Map: make([]uint32, len(keys))}
	idx := newIndex(1024)
	for i, k := range keys {
		id, fresh := idx.getOrAdd(k, uint32(len(gm.Groups)))
		if fresh {
			gm.Groups = append(gm.Groups, k)
		}
		gm.Map[i] = id
	}
	return gm
}

// index is a minimal open-addressing key → uint32 map.
type index struct {
	keys []uint64 // key+1, 0 empty
	vals []uint32
	rows int
}

func newIndex(slots int) *index {
	p := 16
	for p < slots {
		p <<= 1
	}
	return &index{keys: make([]uint64, p), vals: make([]uint32, p)}
}

func (ix *index) getOrAdd(key uint64, next uint32) (uint32, bool) {
	if ix.rows*2 >= len(ix.keys) {
		ix.grow()
	}
	mask := uint64(len(ix.keys) - 1)
	s := hashfn.Murmur2(key) & mask
	for {
		switch ix.keys[s] {
		case 0:
			ix.keys[s] = key + 1
			ix.vals[s] = next
			ix.rows++
			return next, true
		case key + 1:
			return ix.vals[s], false
		}
		s = (s + 1) & mask
	}
}

func (ix *index) grow() {
	old := *ix
	ix.keys = make([]uint64, len(old.keys)*2)
	ix.vals = make([]uint32, len(old.vals)*2)
	ix.rows = 0
	mask := uint64(len(ix.keys) - 1)
	for s, k := range old.keys {
		if k == 0 {
			continue
		}
		p := hashfn.Murmur2(k-1) & mask
		for ix.keys[p] != 0 {
			p = (p + 1) & mask
		}
		ix.keys[p] = k
		ix.vals[p] = old.vals[s]
		ix.rows++
	}
}

// SumRowAtATime aggregates SUM(vals) GROUP BY keys touching both columns
// row by row (the first model of Section 3.3).
func SumRowAtATime(keys []uint64, vals []int64) ([]uint64, []int64) {
	idx := newIndex(1024)
	var groups []uint64
	var sums []int64
	for i, k := range keys {
		id, fresh := idx.getOrAdd(k, uint32(len(groups)))
		if fresh {
			groups = append(groups, k)
			sums = append(sums, 0)
		}
		sums[id] += vals[i]
	}
	return groups, sums
}

// SumColumnAtATime aggregates with a fully materialized mapping vector
// (the MonetDB model): one pass to build the mapping, one pass per
// aggregate column to apply it. The apply pass has the scattered
// out[mapping[i]] access pattern the paper warns about for large outputs.
func SumColumnAtATime(keys []uint64, vals []int64) ([]uint64, []int64) {
	gm := MapGroups(keys)
	sums := make([]int64, len(gm.Groups))
	for i, g := range gm.Map {
		sums[g] += vals[i]
	}
	return gm.Groups, sums
}

// DefaultBlockRows is the block size of the interleaved model: small
// enough that the block's mapping vector stays cache resident.
const DefaultBlockRows = 4096

// SumBlockWise aggregates with block-wise interleaving (the MonetDB/X100
// model the paper adopts): the mapping vector exists only for one
// cache-sized block at a time.
func SumBlockWise(keys []uint64, vals []int64, blockRows int) ([]uint64, []int64) {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	idx := newIndex(1024)
	var groups []uint64
	var sums []int64
	mapping := make([]uint32, blockRows)
	for lo := 0; lo < len(keys); lo += blockRows {
		hi := min(lo+blockRows, len(keys))
		blk := mapping[:hi-lo]
		// Produce the block's mapping from the grouping column…
		for j := range blk {
			id, fresh := idx.getOrAdd(keys[lo+j], uint32(len(groups)))
			if fresh {
				groups = append(groups, keys[lo+j])
				sums = append(sums, 0)
			}
			blk[j] = id
		}
		// …then immediately apply it to the aggregate column fragment.
		for j, g := range blk {
			sums[g] += vals[lo+j]
		}
	}
	return groups, sums
}

// ---------------------------------------------------------------------------
// Partition mapping: the operator-internal form of Figure 2, where the
// mapping vector holds destination partitions (one byte per row, fan-out
// 256) instead of group indices.

// PartitionMapping computes the destination partition (hash digit at the
// given level) of every key and the per-partition row counts.
func PartitionMapping(keys []uint64, level int) (mapping []uint8, counts []int) {
	mapping = make([]uint8, len(keys))
	counts = make([]int, hashfn.Fanout)
	shift := uint(64 - hashfn.DigitBits*(level+1))
	for i, k := range keys {
		d := uint8(hashfn.Murmur2(k) >> shift & (hashfn.Fanout - 1))
		mapping[i] = d
		counts[d]++
	}
	return mapping, counts
}

// ApplyMappingNaive scatters a column into per-partition outputs one
// element at a time (the untuned baseline).
func ApplyMappingNaive(mapping []uint8, col []uint64) [][]uint64 {
	out := make([][]uint64, hashfn.Fanout)
	for i, d := range mapping {
		out[d] = append(out[d], col[i])
	}
	return out
}

// swcBufRows mirrors the partition package's write-combining buffer size.
const swcBufRows = 64

// ApplyMappingSWC scatters a column into per-partition two-level outputs
// through software-write-combining buffers — the `map` variant of
// Figure 3: the access pattern of moving an aggregate column is identical
// to partitioning the grouping column, so the same tuning applies.
func ApplyMappingSWC(mapping []uint8, col []uint64) [][]*runs.Run {
	writers := make([]*runs.Writer, hashfn.Fanout)
	for p := range writers {
		writers[p] = runs.NewWriter(0, 0)
	}
	buf := make([]uint64, hashfn.Fanout*swcBufRows)
	bufLen := make([]int, hashfn.Fanout)
	flush := func(p int) {
		n := bufLen[p]
		if n == 0 {
			return
		}
		base := p * swcBufRows
		// The value stream rides in the writer's hash column; the key and
		// state columns are unused for a bare column move.
		writers[p].AppendBlock(buf[base:base+n], buf[base:base+n], nil, 0, n)
		bufLen[p] = 0
	}
	for i, d := range mapping {
		p := int(d)
		if bufLen[p] == swcBufRows {
			flush(p)
		}
		buf[p*swcBufRows+bufLen[p]] = col[i]
		bufLen[p]++
	}
	out := make([][]*runs.Run, hashfn.Fanout)
	for p := range writers {
		flush(p)
		out[p] = writers[p].Seal()
	}
	return out
}
