package external

// Block-file codec: the checksummed on-disk format shared by the spill
// partition files and the streaming checkpoint epochs, plus the staged
// (software-write-combining) writer that produces it.
//
// Version 2 format (little-endian), the one this package writes:
//
//	header  16 B   magic "CAGS" | version u16 (=2) | record bytes u16 | reserved u64
//	blocks  each:  rows u32 | CRC32-IEEE(payload) u32 | payload
//	               payload = keys[rows] ++ col0[rows] ++ … (column-major u64)
//	footer  16 B   record count u64 | CRC32-IEEE(header+blocks) u32 | "SPND"
//
// Rows accumulate column-major in the writer's stage buffers and hit the
// file as one encoded block of up to spillBlockRows rows — the disk-level
// analogue of the partitioner's software write-combining: bulk uint64
// encode loops instead of a per-row PutUint64/ReadFull dance, and one
// buffered Write per block. Each block carries its own payload CRC so a
// damaged region is rejected before a single row of it is decoded; the
// whole-file CRC and record count in the footer still catch truncation,
// reordering and lost blocks, exactly like v1.
//
// Version 1 (one fixed-size record per row, no per-block checksums) is
// still read — a v1 file produced by an older build decodes through the
// same entry points — but never written.
//
// The record width in the header lets a reader reject files written with a
// different aggregate plan. All structural failures wrap ErrCorruptSpill.
//
// BlockWriter / OpenBlockFile / DecodeBlockFile / ReadBlockFile are the
// standalone, exported faces of the codec (used by internal/stream for
// epoch checkpoints); the spillWriter methods below wire the same codec
// into the spill path's budget charging, statistics and tracing.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"slices"
	"time"

	"cacheagg/internal/faultfs"
	"cacheagg/internal/trace"
)

const (
	spillMagic       = 0x43414753 // "CAGS"
	spillEndMagic    = 0x53504e44 // "SPND"
	spillVersion1    = 1
	spillVersion     = 2
	spillHeaderSize  = 16
	spillFooterSize  = 16
	spillBlockHeader = 8
	// spillBlockRows caps the rows per encoded block. 512 rows keep the
	// stage buffers (and the decoder's block scratch) a few tens of KiB at
	// typical widths while making the per-block header and CRC negligible.
	spillBlockRows = 512
	// spillBufSize sizes the bufio layers. Full blocks at common widths
	// exceed it and bypass the copy; it exists to batch the header, footer
	// and partial-block writes.
	spillBufSize = 1 << 14
)

// BlockFileOverhead is the fixed byte cost of a block file: its header
// plus its footer. Exported so callers can budget a file before writing
// its first row.
const BlockFileOverhead = spillHeaderSize + spillFooterSize

// BlockWriter writes one file in the checksummed block format. A writer
// is owned by one goroutine at a time; any shared accounting belongs in
// the OnBlock/OnFlush hooks of its owner.
type BlockWriter struct {
	path    string
	tag     string // "spill" or "checkpoint": names the file class in errors
	f       faultfs.File
	buf     *bufio.Writer
	crc     hash.Hash32
	records uint64
	bytes   int64
	closed  bool

	// Block staging: rows accumulate here column-major and are encoded
	// and written as one block when full (or on finish).
	stageKeys []uint64
	stageCols [][]uint64
	stageN    int
	enc       []byte

	// OnBlock, when non-nil, runs before each full or final block is
	// encoded and written, with the encoded size and row count; an error
	// aborts the flush (budget-charging hook).
	OnBlock func(encBytes, rows int) error
	// OnFlush, when non-nil, runs after each block write succeeds
	// (tracing hook).
	OnFlush func(rows int)
}

// NewBlockWriter creates path through fsys and writes the format header
// for a file of width partial columns. On any failure the created file is
// closed and removed, so no half-born file outlives the error.
func NewBlockWriter(fsys faultfs.FS, path, tag string, width int) (*BlockWriter, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("external: create %s %s: %w", tag, filepath.Base(path), err)
	}
	w := &BlockWriter{
		path:      path,
		tag:       tag,
		f:         f,
		buf:       bufio.NewWriterSize(f, spillBufSize),
		crc:       crc32.NewIEEE(),
		stageKeys: make([]uint64, spillBlockRows),
		stageCols: make([][]uint64, width),
		enc:       make([]byte, spillBlockHeader+(1+width)*spillBlockRows*8),
	}
	for c := range w.stageCols {
		w.stageCols[c] = make([]uint64, spillBlockRows)
	}
	var hdr [spillHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint16(hdr[4:], spillVersion)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(8+8*width))
	if err := w.write(hdr[:]); err != nil {
		w.Abort()
		fsys.Remove(path) // best effort; the caller never saw the file
		return nil, fmt.Errorf("external: write %s %s: %w", tag, filepath.Base(path), err)
	}
	return w, nil
}

// Path returns the file's path.
func (w *BlockWriter) Path() string { return w.path }

// Records returns how many rows have been flushed into blocks so far.
func (w *BlockWriter) Records() uint64 { return w.records }

// Bytes returns how many bytes have been written (header included, staged
// rows excluded). After Finish it is the exact file size.
func (w *BlockWriter) Bytes() int64 { return w.bytes }

// AppendState stages one (key, partial-state row) record from uint64
// partial columns, flushing the stage as a block when it fills.
func (w *BlockWriter) AppendState(key uint64, cols [][]uint64, row int) error {
	n := w.stageN
	w.stageKeys[n] = key
	for c, col := range cols {
		w.stageCols[c][n] = col[row]
	}
	w.stageN = n + 1
	if w.stageN == spillBlockRows {
		return w.flush()
	}
	return nil
}

// AppendAggs is AppendState for the int64 finalized-partial columns of a
// core.Result (identical bits, different static type).
func (w *BlockWriter) AppendAggs(key uint64, cols [][]int64, row int) error {
	n := w.stageN
	w.stageKeys[n] = key
	for c, col := range cols {
		w.stageCols[c][n] = uint64(col[row])
	}
	w.stageN = n + 1
	if w.stageN == spillBlockRows {
		return w.flush()
	}
	return nil
}

// flush encodes the staged rows as one block — bulk little-endian loops
// per column — and writes it through the buffer and the running file CRC,
// bracketed by the OnBlock/OnFlush hooks.
func (w *BlockWriter) flush() error {
	n := w.stageN
	if n == 0 {
		return nil
	}
	enc := w.enc[:spillBlockHeader+(1+len(w.stageCols))*n*8]
	if w.OnBlock != nil {
		if err := w.OnBlock(len(enc), n); err != nil {
			return err
		}
	}
	w.stageN = 0
	binary.LittleEndian.PutUint32(enc[0:], uint32(n))
	off := spillBlockHeader
	for _, k := range w.stageKeys[:n] {
		binary.LittleEndian.PutUint64(enc[off:], k)
		off += 8
	}
	for _, col := range w.stageCols {
		for _, v := range col[:n] {
			binary.LittleEndian.PutUint64(enc[off:], v)
			off += 8
		}
	}
	binary.LittleEndian.PutUint32(enc[4:], crc32.ChecksumIEEE(enc[spillBlockHeader:]))
	if err := w.write(enc); err != nil {
		return fmt.Errorf("external: write %s %s: %w", w.tag, filepath.Base(w.path), err)
	}
	w.records += uint64(n)
	if w.OnFlush != nil {
		w.OnFlush(n)
	}
	return nil
}

// write appends bytes to the file through the buffer and the running CRC.
func (w *BlockWriter) write(p []byte) error {
	if _, err := w.buf.Write(p); err != nil {
		return err
	}
	w.crc.Write(p)
	w.bytes += int64(len(p))
	return nil
}

// Finish flushes any staged rows, writes the footer, flushes the buffer,
// optionally fsyncs (the checkpoint path's durability point — spill files
// are scratch and skip it) and closes. After it the file is a
// self-validating unit on disk.
func (w *BlockWriter) Finish(sync bool) error {
	if err := w.flush(); err != nil {
		return err
	}
	var ftr [spillFooterSize]byte
	binary.LittleEndian.PutUint64(ftr[0:], w.records)
	binary.LittleEndian.PutUint32(ftr[8:], w.crc.Sum32())
	binary.LittleEndian.PutUint32(ftr[12:], spillEndMagic)
	if _, err := w.buf.Write(ftr[:]); err != nil {
		return fmt.Errorf("external: write %s %s: %w", w.tag, filepath.Base(w.path), err)
	}
	w.bytes += spillFooterSize
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("external: flush %s %s: %w", w.tag, filepath.Base(w.path), err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("external: sync %s %s: %w", w.tag, filepath.Base(w.path), err)
		}
	}
	w.closed = true
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("external: close %s %s: %w", w.tag, filepath.Base(w.path), err)
	}
	return nil
}

// Abort is the error-path cleanup: close the handle if still open, without
// writing a footer. Safe to call in any state and more than once; removal
// of the (invalid) file is the caller's business.
func (w *BlockWriter) Abort() {
	if !w.closed {
		w.closed = true
		w.f.Close() // error irrelevant: the file is dead
	}
}

// ---------------------------------------------------------------------------
// Spill-path wiring: the same codec charged against the spill budget and
// counted in the operator's statistics.

// spillWriter writes one partition file in the checksummed block format.
// A writer is owned by one goroutine at a time (the spilling phase or a
// single merge task); the shared accounting it touches lives in extExec
// behind extExec.mu, reached through the BlockWriter hooks.
type spillWriter struct {
	bw      *BlockWriter
	path    string
	id      int
	removed bool
}

func (e *extExec) newWriter() (*spillWriter, error) {
	width := e.plan.Width()
	e.mu.Lock()
	if err := e.chargeLocked(spillHeaderSize + spillFooterSize); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.nextID++
	id := e.nextID
	e.mu.Unlock()
	path := filepath.Join(e.dir, fmt.Sprintf("part-%06d.spill", id))
	bw, err := NewBlockWriter(e.cfg.FS, path, "spill", width)
	if err != nil {
		return nil, err
	}
	w := &spillWriter{bw: bw, path: path, id: id}
	var t0 time.Time
	bw.OnBlock = func(encBytes, rows int) error {
		t0 = e.stamp()
		e.mu.Lock()
		if err := e.chargeLocked(encBytes); err != nil {
			e.mu.Unlock()
			return err
		}
		e.stats.SpilledRows += int64(rows)
		e.stats.SpilledBytes += int64(rows) * int64(e.recSize())
		e.mu.Unlock()
		return nil
	}
	bw.OnFlush = func(rows int) {
		if e.tr != nil {
			e.tr.Emit(trace.KindSpillWrite, 0, 0, int64(id), float64(rows))
		}
		e.lap(t0, trace.PhaseSpill)
	}
	e.mu.Lock()
	e.track = append(e.track, w)
	e.mu.Unlock()
	return w, nil
}

// appendState stages one (key, partial-state row) record, flushing full
// blocks through the budget/stats/trace hooks.
func (e *extExec) appendState(w *spillWriter, key uint64, cols [][]uint64, row int) error {
	return w.bw.AppendState(key, cols, row)
}

// appendAggs is appendState for the int64 finalized-partial columns of a
// core.Result.
func (e *extExec) appendAggs(w *spillWriter, key uint64, cols [][]int64, row int) error {
	return w.bw.AppendAggs(key, cols, row)
}

// flushBlock flushes the staged rows as one block.
func (e *extExec) flushBlock(w *spillWriter) error { return w.bw.flush() }

// finishSpill flushes any partial block and seals the file. After it the
// file is a self-validating unit on disk. Spill files never fsync: they
// are scratch space that dies with the query.
func (e *extExec) finishSpill(w *spillWriter) error { return w.bw.Finish(false) }

// discard is the error-path cleanup: close the handle if still open and
// remove the file. Safe to call in any state and more than once.
func (w *spillWriter) discard(e *extExec) {
	w.bw.Abort()
	e.removeSpill(w)
}

// ---------------------------------------------------------------------------
// Decode path.

func corrupt(path, detail string) error {
	return fmt.Errorf("external: %w %s: %s", ErrCorruptSpill, filepath.Base(path), detail)
}

// OpenBlockFile opens a block file and returns its size (needed to locate
// the footer and to reserve the decode buffers before they exist).
func OpenBlockFile(fsys faultfs.FS, path, tag string) (faultfs.File, int64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("external: open %s %s: %w", tag, filepath.Base(path), err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("external: stat %s %s: %w", tag, filepath.Base(path), err)
	}
	return f, st.Size(), nil
}

// ReadBlockFile loads a block file of width partial columns into columnar
// form, validating the header and every checksum before trusting a single
// record.
func ReadBlockFile(fsys faultfs.FS, path, tag string, width int) (_ []uint64, _ [][]uint64, err error) {
	f, size, err := OpenBlockFile(fsys, path, tag)
	if err != nil {
		return nil, nil, err
	}
	keys, cols, err := DecodeBlockFile(f, path, tag, size, width)
	if cerr := f.Close(); cerr != nil && err == nil {
		// A failing close on the read side is still a failing I/O call on
		// a file we depend on; don't swallow it behind a good result.
		err = fmt.Errorf("external: close %s %s: %w", tag, filepath.Base(path), cerr)
	}
	if err != nil {
		return nil, nil, err
	}
	return keys, cols, nil
}

// openSpill opens a partition file and returns its size. The merge path
// goes through loadPartition, which reserves the decode footprint with the
// governor before the decode happens.
func (e *extExec) openSpill(path string) (faultfs.File, int64, error) {
	return OpenBlockFile(e.cfg.FS, path, "spill")
}

// readSpill loads a partition file into columnar form.
func (e *extExec) readSpill(path string) (_ []uint64, _ [][]uint64, err error) {
	f, size, err := e.openSpill(path)
	if err != nil {
		return nil, nil, err
	}
	keys, cols, err := e.decodeSpill(f, path, size)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("external: close spill %s: %w", filepath.Base(path), cerr)
	}
	if err != nil {
		return nil, nil, err
	}
	return keys, cols, nil
}

// decodeSpill decodes an open spill file of known size, recording the read
// in the trace.
func (e *extExec) decodeSpill(f faultfs.File, path string, size int64) ([]uint64, [][]uint64, error) {
	keys, cols, err := DecodeBlockFile(f, path, "spill", size, e.plan.Width())
	if err != nil {
		return nil, nil, err
	}
	if e.tr != nil {
		e.tr.Emit(trace.KindSpillRead, 0, 0, -1, float64(size))
	}
	return keys, cols, nil
}

// DecodeBlockFile decodes an open block file of known size and width,
// dispatching on the header's format version (v2 written by this build,
// v1 read-compatible). All structural failures wrap ErrCorruptSpill; I/O
// failures wrap the underlying error.
func DecodeBlockFile(f faultfs.File, path, tag string, size int64, width int) ([]uint64, [][]uint64, error) {
	if size < spillHeaderSize+spillFooterSize {
		return nil, nil, corrupt(path, fmt.Sprintf("%d bytes, smaller than header+footer", size))
	}
	recSize := 8 + 8*width
	r := bufio.NewReaderSize(f, spillBufSize)
	crc := crc32.NewIEEE()
	var hdr [spillHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("external: read %s %s: %w", tag, filepath.Base(path), err)
	}
	crc.Write(hdr[:])
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != spillMagic {
		return nil, nil, corrupt(path, fmt.Sprintf("bad magic %#08x", m))
	}
	if rb := binary.LittleEndian.Uint16(hdr[6:]); int(rb) != recSize {
		return nil, nil, corrupt(path, fmt.Sprintf("record width %d, plan needs %d", rb, recSize))
	}
	var keys []uint64
	var cols [][]uint64
	var err error
	switch v := binary.LittleEndian.Uint16(hdr[4:]); v {
	case spillVersion:
		keys, cols, err = decodeV2(r, crc, path, tag, size, width)
	case spillVersion1:
		keys, cols, err = decodeV1(r, crc, path, tag, size, width)
	default:
		return nil, nil, corrupt(path, fmt.Sprintf("unsupported version %d", v))
	}
	if err != nil {
		return nil, nil, err
	}
	return keys, cols, nil
}

// decodeV2 decodes the block-codec body: per-block payload CRCs first,
// then bulk column-major uint64 loops, then the footer's global checks.
func decodeV2(r *bufio.Reader, crc hash.Hash32, path, tag string, size int64, width int) ([]uint64, [][]uint64, error) {
	recSize := int64(8 + 8*width)
	remaining := size - spillHeaderSize - spillFooterSize
	est := int(remaining / recSize) // upper bound on rows (block headers eat into it)
	keys := make([]uint64, 0, est)
	cols := make([][]uint64, width)
	for c := range cols {
		cols[c] = make([]uint64, 0, est)
	}
	block := make([]byte, spillBlockHeader+(1+width)*spillBlockRows*8)
	for remaining > 0 {
		if remaining < spillBlockHeader {
			return nil, nil, corrupt(path, fmt.Sprintf("dangling %d bytes before footer", remaining))
		}
		bh := block[:spillBlockHeader]
		if _, err := io.ReadFull(r, bh); err != nil {
			return nil, nil, fmt.Errorf("external: read %s %s: %w", tag, filepath.Base(path), err)
		}
		crc.Write(bh)
		rows := int(binary.LittleEndian.Uint32(bh[0:]))
		wantCRC := binary.LittleEndian.Uint32(bh[4:])
		if rows <= 0 || rows > spillBlockRows {
			return nil, nil, corrupt(path, fmt.Sprintf("block of %d rows (max %d)", rows, spillBlockRows))
		}
		payload := int64(rows) * recSize
		remaining -= spillBlockHeader
		if payload > remaining {
			return nil, nil, corrupt(path, fmt.Sprintf("block of %d rows overruns the file", rows))
		}
		pb := block[spillBlockHeader : spillBlockHeader+int(payload)]
		if _, err := io.ReadFull(r, pb); err != nil {
			return nil, nil, fmt.Errorf("external: read %s %s: %w", tag, filepath.Base(path), err)
		}
		crc.Write(pb)
		if got := crc32.ChecksumIEEE(pb); got != wantCRC {
			return nil, nil, corrupt(path, fmt.Sprintf("block checksum mismatch: header %#08x, computed %#08x", wantCRC, got))
		}
		base := len(keys)
		keys = slices.Grow(keys, rows)[:base+rows]
		off := 0
		for i := 0; i < rows; i++ {
			keys[base+i] = binary.LittleEndian.Uint64(pb[off:])
			off += 8
		}
		for c := 0; c < width; c++ {
			col := slices.Grow(cols[c], rows)[:base+rows]
			for i := 0; i < rows; i++ {
				col[base+i] = binary.LittleEndian.Uint64(pb[off:])
				off += 8
			}
			cols[c] = col
		}
		remaining -= payload
	}
	if err := checkFooter(r, crc, path, tag, uint64(len(keys))); err != nil {
		return nil, nil, err
	}
	return keys, cols, nil
}

// decodeV1 decodes the legacy one-record-per-row body.
func decodeV1(r *bufio.Reader, crc hash.Hash32, path, tag string, size int64, width int) ([]uint64, [][]uint64, error) {
	recSize := 8 + 8*width
	payload := size - spillHeaderSize - spillFooterSize
	if payload%int64(recSize) != 0 {
		return nil, nil, corrupt(path, fmt.Sprintf("truncated: %d payload bytes not a multiple of the %d-byte record", payload, recSize))
	}
	nrec := payload / int64(recSize)
	rec := make([]byte, recSize)
	keys := make([]uint64, 0, nrec)
	cols := make([][]uint64, width)
	for c := range cols {
		cols[c] = make([]uint64, 0, nrec)
	}
	for i := int64(0); i < nrec; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, nil, fmt.Errorf("external: read %s %s: %w", tag, filepath.Base(path), err)
		}
		crc.Write(rec)
		keys = append(keys, binary.LittleEndian.Uint64(rec))
		for c := range cols {
			cols[c] = append(cols[c], binary.LittleEndian.Uint64(rec[8+8*c:]))
		}
	}
	if err := checkFooter(r, crc, path, tag, uint64(nrec)); err != nil {
		return nil, nil, err
	}
	return keys, cols, nil
}

// checkFooter reads and validates the 16-byte trailer against the decoded
// row count and the running whole-file CRC.
func checkFooter(r *bufio.Reader, crc hash.Hash32, path, tag string, nrec uint64) error {
	var ftr [spillFooterSize]byte
	if _, err := io.ReadFull(r, ftr[:]); err != nil {
		return fmt.Errorf("external: read %s %s: %w", tag, filepath.Base(path), err)
	}
	if m := binary.LittleEndian.Uint32(ftr[12:]); m != spillEndMagic {
		return corrupt(path, fmt.Sprintf("bad end marker %#08x", m))
	}
	if cnt := binary.LittleEndian.Uint64(ftr[0:]); cnt != nrec {
		return corrupt(path, fmt.Sprintf("footer records %d, file holds %d", cnt, nrec))
	}
	if want, got := binary.LittleEndian.Uint32(ftr[8:]), crc.Sum32(); want != got {
		return corrupt(path, fmt.Sprintf("checksum mismatch: footer %#08x, computed %#08x", want, got))
	}
	return nil
}
