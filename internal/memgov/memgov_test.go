package memgov

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReserveReleaseHighWater(t *testing.T) {
	g := New(1000)
	g.Reserve(400)
	g.Reserve(300)
	if got := g.Reserved(); got != 700 {
		t.Fatalf("Reserved = %d, want 700", got)
	}
	g.Release(500)
	if got := g.Reserved(); got != 200 {
		t.Fatalf("Reserved after release = %d, want 200", got)
	}
	if got := g.HighWater(); got != 700 {
		t.Fatalf("HighWater = %d, want 700", got)
	}
	if got := g.Remaining(); got != 800 {
		t.Fatalf("Remaining = %d, want 800", got)
	}
}

func TestTryReserveEnforcesBudget(t *testing.T) {
	g := New(100)
	if !g.TryReserve(60) {
		t.Fatal("60/100 must be granted")
	}
	if g.TryReserve(50) {
		t.Fatal("60+50 > 100 must be refused")
	}
	if g.Reserved() != 60 {
		t.Fatalf("refused reservation changed the count: %d", g.Reserved())
	}
	if !g.TryReserve(40) {
		t.Fatal("60+40 = 100 must be granted (budget is inclusive)")
	}
	if g.OverBudget() {
		t.Fatal("exactly at budget is not over budget")
	}
	g.Reserve(1)
	if !g.OverBudget() {
		t.Fatal("forced reservation past budget must report OverBudget")
	}
}

func TestUnlimitedGovernor(t *testing.T) {
	g := New(0)
	if !g.TryReserve(1 << 40) {
		t.Fatal("unlimited governor refused a reservation")
	}
	if g.OverBudget() {
		t.Fatal("unlimited governor can never be over budget")
	}
	if g.HighWater() != 1<<40 {
		t.Fatalf("HighWater = %d", g.HighWater())
	}
}

func TestBudgetErrorWrapsSentinel(t *testing.T) {
	g := New(10)
	err := g.BudgetError("worker table", 64)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("BudgetError does not wrap ErrBudget: %v", err)
	}
}

func TestCacheBatchesAndFlushes(t *testing.T) {
	g := New(0)
	c := g.NewCache(100)
	c.Reserve(40)
	if g.Reserved() != 0 {
		t.Fatalf("small delta flushed early: %d", g.Reserved())
	}
	c.Reserve(70) // 110 >= grain: flush
	if g.Reserved() != 110 {
		t.Fatalf("Reserved = %d, want 110", g.Reserved())
	}
	c.Reserve(-5)
	c.Flush()
	if g.Reserved() != 105 {
		t.Fatalf("Reserved after flush = %d, want 105", g.Reserved())
	}
	c.Flush() // idempotent with nothing pending
	if g.Reserved() != 105 {
		t.Fatalf("empty flush changed the count: %d", g.Reserved())
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	c.Reserve(10)
	c.Flush()
}

func TestConcurrentAccounting(t *testing.T) {
	g := New(0)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := g.NewCache(256)
			for i := 0; i < per; i++ {
				c.Reserve(3)
			}
			c.Flush()
		}()
	}
	wg.Wait()
	if want := int64(workers * per * 3); g.Reserved() != want {
		t.Fatalf("Reserved = %d, want %d", g.Reserved(), want)
	}
	if g.HighWater() < g.Reserved() {
		t.Fatalf("HighWater %d below final Reserved %d", g.HighWater(), g.Reserved())
	}
}

func TestHighWaterHookSamplesPerGrain(t *testing.T) {
	g := New(0)
	var mu sync.Mutex
	var samples []int64
	g.SetHighWaterHook(100, func(hw int64) {
		mu.Lock()
		samples = append(samples, hw)
		mu.Unlock()
	})
	g.Reserve(10)  // high water 10 crosses the initial 0 threshold → sample
	g.Reserve(10)  // high water 20: below the next threshold (110), silent
	g.Reserve(200) // high water 220 crosses 110 → sample, threshold jumps past 220
	g.Release(200) // high water unchanged, silent
	g.Reserve(50)  // reserved 70 < high water, silent
	g.Reserve(300) // high water 370 crosses 310 → sample
	want := []int64{10, 220, 370}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

func TestTryReserveOrWaitFastPath(t *testing.T) {
	g := New(100)
	if err := g.TryReserveOrWait(context.Background(), 60); err != nil {
		t.Fatalf("60/100 must be granted without blocking: %v", err)
	}
	if g.Reserved() != 60 {
		t.Fatalf("Reserved = %d, want 60", g.Reserved())
	}
	// Unlimited governors never block.
	u := New(0)
	if err := u.TryReserveOrWait(context.Background(), 1<<40); err != nil {
		t.Fatalf("unlimited governor blocked: %v", err)
	}
}

func TestTryReserveOrWaitBlocksUntilRelease(t *testing.T) {
	g := New(100)
	g.Reserve(80)
	done := make(chan error, 1)
	go func() { done <- g.TryReserveOrWait(context.Background(), 50) }()
	select {
	case err := <-done:
		t.Fatalf("50 over an 80/100 ledger must block, returned %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(40) // 40/100 reserved → 50 fits
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("TryReserveOrWait after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by Release")
	}
	if g.Reserved() != 90 {
		t.Fatalf("Reserved = %d, want 90", g.Reserved())
	}
}

func TestTryReserveOrWaitCancellation(t *testing.T) {
	g := New(100)
	g.Reserve(100)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.TryReserveOrWait(ctx, 10) }()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	if g.Waiting() != 0 {
		t.Fatalf("cancelled waiter still queued: Waiting = %d", g.Waiting())
	}
	if g.Reserved() != 100 {
		t.Fatalf("cancelled waiter changed the ledger: %d", g.Reserved())
	}
	// An already-cancelled context returns before touching the queue.
	if err := g.TryReserveOrWait(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: %v", err)
	}
}

func TestTryReserveOrWaitFIFO(t *testing.T) {
	g := New(100)
	g.Reserve(100)
	order := make(chan int, 2)
	ready := make(chan struct{})
	go func() {
		close(ready)
		if err := g.TryReserveOrWait(context.Background(), 90); err != nil {
			t.Error(err)
		}
		order <- 1
		g.Release(90)
	}()
	<-ready
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		if err := g.TryReserveOrWait(context.Background(), 10); err != nil {
			t.Error(err)
		}
		order <- 2
	}()
	for g.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}
	// Freeing 100 could satisfy the later, smaller request first; FIFO
	// demands the 90-byte head waiter wins before the 10-byte one runs.
	g.Release(100)
	if first := <-order; first != 1 {
		t.Fatalf("waiter %d granted first, want the head waiter (1)", first)
	}
	if second := <-order; second != 2 {
		t.Fatalf("second grant went to %d, want 2", second)
	}
}

func TestTryReserveOrWaitChurn(t *testing.T) {
	g := New(1 << 10)
	var wg sync.WaitGroup
	var granted, cancelled atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := int64(64 + (w*37+i*13)%512)
				ctx := context.Background()
				var cancel context.CancelFunc
				if (w+i)%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*time.Millisecond)
				}
				err := g.TryReserveOrWait(ctx, n)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					cancelled.Add(1)
					continue
				}
				granted.Add(1)
				g.Release(n)
			}
		}(w)
	}
	wg.Wait()
	if g.Reserved() != 0 {
		t.Fatalf("ledger not drained after churn: %d", g.Reserved())
	}
	if g.Waiting() != 0 {
		t.Fatalf("waiters leaked after churn: %d", g.Waiting())
	}
	if granted.Load() == 0 {
		t.Fatal("no reservation ever granted under churn")
	}
}

// TestHighWaterHookConcurrent checks the hook fires a bounded number of
// times under concurrent growth (at most once per grain of final high
// water, plus one for the initial crossing) and never with a stale value
// below its firing threshold sequence length.
func TestHighWaterHookConcurrent(t *testing.T) {
	g := New(0)
	var calls, bad int64
	var mu sync.Mutex
	g.SetHighWaterHook(1000, func(hw int64) {
		mu.Lock()
		calls++
		if hw < 0 {
			bad++
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Reserve(7)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if bad != 0 {
		t.Fatalf("%d hook calls with invalid high water", bad)
	}
	if calls == 0 {
		t.Fatal("hook never fired")
	}
	if max := g.HighWater()/1000 + 1; calls > max {
		t.Fatalf("hook fired %d times for high water %d with grain 1000 (max %d)",
			calls, g.HighWater(), max)
	}
}

// TestCancelRacesGrant pins the nastiest waiter window: the context is
// cancelled at the same instant the head waiter's grant lands (Release
// kicks it while ctx.Done is already readable). Whichever way the select
// goes, exactly one of two worlds must result — the waiter owns the
// reservation (err == nil) or it does not (ctx error) — and in both the
// ledger reconciles to zero with no waiter left behind. A miscount here
// is a permanent budget leak, so the test hammers the window and then
// audits the ledger.
func TestCancelRacesGrant(t *testing.T) {
	const budget = 100
	g := New(budget)
	for i := 0; i < 5000; i++ {
		g.Reserve(budget) // the waiter must actually wait
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan error, 1)
		entered := make(chan struct{})
		go func() {
			close(entered)
			got <- g.TryReserveOrWait(ctx, budget)
		}()
		<-entered
		for g.Waiting() == 0 { // the goroutine is on the waiter list
			if err := ctx.Err(); err != nil {
				t.Fatalf("context died before the waiter parked: %v", err)
			}
		}
		// Fire the grant and the cancellation together.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); g.Release(budget) }()
		go func() { defer wg.Done(); cancel() }()
		wg.Wait()
		err := <-got
		switch {
		case err == nil:
			// The grant won: the waiter owns budget bytes.
			if r := g.Reserved(); r != budget {
				t.Fatalf("iter %d: granted waiter owns %d, want %d", i, r, budget)
			}
			g.Release(budget)
		case errors.Is(err, context.Canceled):
			// The cancel won: the reservation must be back in the ledger.
		default:
			t.Fatalf("iter %d: unexpected error %v", i, err)
		}
		if r := g.Reserved(); r != 0 {
			t.Fatalf("iter %d: ledger holds %d after reconciliation", i, r)
		}
		if w := g.Waiting(); w != 0 {
			t.Fatalf("iter %d: %d waiters leaked", i, w)
		}
	}
}
