// Package global implements the third execution routine of the operator: a
// single shared concurrent hash table that all workers fold into, instead of
// the share-nothing per-worker block tables of the partitioned routine.
//
// "Global Hash Tables Strike Back!" (arXiv:2505.04153) shows that on
// many-core machines with a high reduction factor α (rows per group), a
// shared table beats partition-everything: when most rows hit a small hot
// working set of groups, per-worker tables pay the full partition/merge
// memory traffic only to re-aggregate the same keys P times. The shared
// table folds every row exactly once — at the cost of atomic contention,
// which this package bounds so the routine degrades instead of livelocking.
//
// Design:
//
//   - Geometry mirrors internal/hashtable: 256 blocks addressed by the TOP
//     hash digit, linear probing inside a block addressed by the LOW hash
//     bits. Draining therefore yields one aggregated run per radix-256
//     digit, which drops straight into the core recursion's root buckets.
//   - Slot claim is a CAS protocol on a per-slot epoch-versioned meta word:
//     meta = epoch<<2 | phase with phase ∈ {0 free, 1 claiming, 2 ready}.
//     A claimer CASes free→claiming, plain-writes hash/key/initial state,
//     then atomically publishes ready (release); readers atomic-load meta
//     (acquire) before touching the slot, so the plain writes are ordered
//     without per-word atomics on the claim path.
//   - Folds into ready slots are per-word atomics: SUM/COUNT words use
//     atomic add (wrapping, bit-identical to the scalar kernels in any
//     interleaving by commutativity+associativity), MIN/MAX words use a
//     CAS loop with an early predicate exit — every failed CAS means some
//     other worker succeeded, so the loop is lock-free with global
//     progress. AVG is exact because it is two OpAdd words (sum+count).
//   - Contention and fill never livelock a worker: the wait for a slot in
//     the claiming phase is bounded, the in-block probe is bounded, and a
//     whole batch has a bounded contention budget. When any bound trips,
//     the row ESCAPES — the caller folds it into its private local table
//     instead. Escapes are counted and traced (the global-contention trace
//     kind) so the demotion logic upstairs can see the routine misbehaving.
//   - Growth is a cooperative stop-the-world split: inserters hold a shared
//     RLock for the duration of one batch (the hot path inside stays
//     CAS-only), the grower takes the write lock, doubles the block size
//     and rehashes. New memory is gated by the memgov ledger — a refused
//     reservation permanently disables growth and lets escapes absorb the
//     overflow instead of breaking the budget.
package global

import (
	"math"
	"sync"
	"sync/atomic"

	"cacheagg/internal/agg"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/runs"
)

const (
	phaseBits     = 2
	phaseMask     = (1 << phaseBits) - 1
	phaseClaiming = 1
	phaseReady    = 2
	// epochMax is the largest epoch representable in the meta word; Reset
	// rezeroes and wraps when it is reached (same scheme as hashtable).
	epochMax = math.MaxUint32 >> phaseBits

	// blockShift extracts the top radix digit: the block index.
	blockShift = 64 - hashfn.DigitBits

	// DefaultSpinLimit bounds the wait on a slot stuck in the claiming
	// phase. The claim window is three plain stores plus one atomic store,
	// so a handful of re-reads almost always observes ready; a claimer
	// descheduled mid-claim must not stall the observer, hence the bound.
	DefaultSpinLimit = 64

	// MinRows is the smallest usable capacity: every one of the 256 blocks
	// needs at least a few slots for probing to make sense.
	MinRows = hashfn.Fanout * 8

	pipelineWidth = 8
)

// Config sizes a shared table.
type Config struct {
	// CapacityRows is the initial slot count, rounded up to a power of two
	// and floored at MinRows.
	CapacityRows int
	// MaxCapacityRows caps cooperative growth; 0 disables growth entirely.
	MaxCapacityRows int
	// MaxFill is the claimed-slot fraction that triggers growth (and, when
	// growth is exhausted or refused, escapes). Defaults to 0.25 — the
	// same probe-friendly limit as the per-worker tables.
	MaxFill float64
	// Ops is the per-state-word fold description (layout.WordOps()).
	Ops []agg.WordOp
	// Governor gates growth reservations; nil means ungoverned. The
	// INITIAL capacity is the caller's reservation (FootprintBytes).
	Governor *memgov.Governor
	// SpinLimit overrides DefaultSpinLimit (for tests); 0 = default.
	SpinLimit int
}

// Table is the shared concurrent aggregation table. All Insert* methods are
// safe for concurrent use; Drain/Len-style inspection requires external
// quiescence (callers drain after the worker pool has joined).
type Table struct {
	ops       []agg.WordOp
	words     int
	maxFill   float64
	spinLimit int
	gov       *memgov.Governor
	maxCap    int

	// mu is the batch-granular growth lock: inserters hold it shared for
	// one batch, the grower exclusively. The fast path takes no other lock.
	mu sync.RWMutex

	// Geometry and storage; mutated only under mu (write-locked).
	capRows   int
	blockRows int
	blockMask uint64
	meta      []uint32   // epoch<<2|phase per slot; accessed atomically
	hashes    []uint64   // plain, published by meta
	keys      []uint64   // plain, published by meta
	states    [][]uint64 // words × capRows; atomic folds after publish

	epoch uint32

	claimed   atomic.Int64 // distinct groups (ready slots)
	rowsIn    atomic.Int64 // rows folded in (absorbed, not escaped)
	escaped   atomic.Int64 // rows handed back to callers
	contended atomic.Int64 // claim-spins + CAS-fold retries observed
	grows     atomic.Int64
	noGrow    atomic.Bool // governor refused, or cap reached
}

func ceilPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// New creates a shared table. The caller is responsible for reserving
// FootprintBytes of the initial capacity against its governor.
func New(cfg Config) *Table {
	capRows := ceilPow2(max(cfg.CapacityRows, MinRows))
	maxFill := cfg.MaxFill
	if maxFill <= 0 || maxFill > 0.9 {
		maxFill = 0.25
	}
	spin := cfg.SpinLimit
	if spin <= 0 {
		spin = DefaultSpinLimit
	}
	maxCap := cfg.MaxCapacityRows
	if maxCap < capRows {
		maxCap = capRows // 0 or undersized: growth disabled
	}
	t := &Table{
		ops:       cfg.Ops,
		words:     len(cfg.Ops),
		maxFill:   maxFill,
		spinLimit: spin,
		gov:       cfg.Governor,
		maxCap:    ceilPow2(maxCap),
		epoch:     1,
	}
	t.alloc(capRows)
	return t
}

// alloc installs fresh zeroed storage of the given capacity. Caller must
// hold mu exclusively (or be the constructor).
func (t *Table) alloc(capRows int) {
	t.capRows = capRows
	t.blockRows = capRows / hashfn.Fanout
	t.blockMask = uint64(t.blockRows - 1)
	t.meta = make([]uint32, capRows)
	t.hashes = make([]uint64, capRows)
	t.keys = make([]uint64, capRows)
	t.states = make([][]uint64, t.words)
	for w := range t.states {
		t.states[w] = make([]uint64, capRows)
	}
}

// SlotBytes is the per-slot memory cost for a table with the given number
// of state words: meta + hash + key + states.
func SlotBytes(words int) int64 { return 4 + 8 + 8 + 8*int64(words) }

// FootprintBytes is the table's current allocation size, the quantity the
// owner reserves against the memory governor (growth deltas are reserved by
// the table itself).
func (t *Table) FootprintBytes() int64 { return int64(t.capRows) * SlotBytes(t.words) }

// CapacityRows returns the current slot count.
func (t *Table) CapacityRows() int { return t.capRows }

// Len returns the number of groups (claimed slots). Safe concurrently, but
// only approximate while inserts are in flight.
func (t *Table) Len() int { return int(t.claimed.Load()) }

// RowsIn returns the number of rows folded into the table.
func (t *Table) RowsIn() int64 { return t.rowsIn.Load() }

// Escaped returns the number of rows that escaped to callers.
func (t *Table) Escaped() int64 { return t.escaped.Load() }

// Contended returns the cumulative contention events (claim-phase spins and
// failed fold CASes) observed by inserters.
func (t *Table) Contended() int64 { return t.contended.Load() }

// Grows returns the number of completed stop-the-world growth splits.
func (t *Table) Grows() int64 { return t.grows.Load() }

// Alpha returns the observed reduction factor rows/groups, the live signal
// the adaptive routine selection demotes on. 0 while the table is empty.
func (t *Table) Alpha() float64 {
	g := t.claimed.Load()
	if g == 0 {
		return 0
	}
	return float64(t.rowsIn.Load()) / float64(g)
}

// Reset recycles the table for a new run: epoch bump invalidates every slot
// in O(1); on epoch wrap the meta array is rezeroed.
func (t *Table) Reset() {
	t.epoch++
	if t.epoch > epochMax {
		t.epoch = 1
		clear(t.meta)
	}
	t.claimed.Store(0)
	t.rowsIn.Store(0)
	t.escaped.Store(0)
	t.contended.Store(0)
	t.grows.Store(0)
	t.noGrow.Store(false)
}

// live reports whether meta holds a published slot of the current epoch.
func (t *Table) live(m uint32) bool {
	return m>>phaseBits == t.epoch && m&phaseMask == phaseReady
}

// InsertBatch folds rows of one hashed batch into the shared table.
// hs[i] is the hash of ks[i]; the row's aggregate inputs are read from
// cols[op.Col][base+i] (SrcOne words ignore cols). Rows that cannot be
// absorbed under the contention/fill bounds have their batch-relative index
// appended to esc. Returns the grown esc slice and the number of contention
// events observed while processing the batch.
//
// The method never blocks beyond its bounds: a full block, a slot stuck in
// the claiming phase past the spin limit, a full table that cannot grow, or
// an exhausted per-batch contention budget all turn into escapes.
func (t *Table) InsertBatch(hs, ks []uint64, cols [][]int64, base int, esc []int32) ([]int32, int) {
	t.mu.RLock()
	esc, contended, needGrow := t.insertLocked(hs, ks, cols, base, esc)
	t.mu.RUnlock()
	if needGrow {
		t.grow()
	}
	if n := len(esc); n > 0 {
		t.escaped.Add(int64(n))
	}
	if contended > 0 {
		t.contended.Add(int64(contended))
	}
	return esc, contended
}

func (t *Table) insertLocked(hs, ks []uint64, cols [][]int64, base int, esc []int32) ([]int32, int, bool) {
	blockRows := t.blockRows
	blockMask := t.blockMask
	meta := t.meta
	hashes := t.hashes
	keys := t.keys
	epoch := t.epoch
	readyWord := epoch<<phaseBits | phaseReady
	claimWord := epoch<<phaseBits | phaseClaiming
	limit := int64(float64(t.capRows) * t.maxFill)
	escStart := len(esc)

	// Warm pass: touch the home slot of each row a small distance ahead of
	// the resolve loop (the software-pipelined probe idiom): by the time
	// the resolve loop reaches row i, its slot's cache line is in flight.
	var warmSink uint32
	warm := len(hs)
	if warm > pipelineWidth {
		warm = pipelineWidth
	}
	for i := 0; i < warm; i++ {
		h := hs[i]
		s := int(h>>blockShift)*blockRows + int(h&blockMask)
		warmSink += atomic.LoadUint32(&meta[s])
	}
	_ = warmSink

	contended := 0
	// Per-batch contention budget: a worker that keeps losing races stops
	// fighting and lets the rest of the batch escape to its local table.
	budget := t.spinLimit * len(hs)
	absorbed := int64(0)
	needGrow := false

	for i := 0; i < len(hs); i++ {
		if w := i + pipelineWidth; w < len(hs) {
			h := hs[w]
			s := int(h>>blockShift)*blockRows + int(h&blockMask)
			warmSink += atomic.LoadUint32(&meta[s])
		}
		if contended > budget {
			// Bound tripped: escape the whole remaining tail at once.
			for ; i < len(hs); i++ {
				esc = append(esc, int32(i))
			}
			break
		}
		h, k := hs[i], ks[i]
		blockBase := int(h>>blockShift) * blockRows
		j := h & blockMask
	probe:
		for probes := 0; probes < blockRows; {
			s := blockBase + int(j)
			m := atomic.LoadUint32(&meta[s])
			if m>>phaseBits != epoch || m&phaseMask == 0 {
				// Free slot. Fill check first: past the limit the table
				// wants to grow, and this row escapes rather than claiming
				// into an over-full table.
				if t.claimed.Load() >= limit {
					needGrow = true
					esc = append(esc, int32(i))
					break probe
				}
				if !atomic.CompareAndSwapUint32(&meta[s], m, claimWord) {
					// Lost the claim race; re-examine the slot (it now
					// belongs to someone — possibly folding our own key).
					contended++
					continue probe
				}
				// Claimed: plain writes, then publish (release). The
				// initial state is the row's own contribution.
				hashes[s] = h
				keys[s] = k
				for w := range t.ops {
					op := &t.ops[w]
					v := int64(1)
					if op.Src == agg.SrcCol {
						v = cols[op.Col][base+i]
					}
					t.states[w][s] = uint64(v)
				}
				atomic.StoreUint32(&meta[s], readyWord)
				t.claimed.Add(1)
				absorbed++
				break probe
			}
			if m == claimWord {
				// Mid-claim by another worker: bounded wait for publish.
				spun := 0
				for ; spun < t.spinLimit; spun++ {
					m = atomic.LoadUint32(&meta[s])
					if m != claimWord {
						break
					}
				}
				contended += spun
				if m == claimWord {
					esc = append(esc, int32(i))
					break probe
				}
				// Published (or epoch changed — impossible mid-run);
				// re-examine the slot without advancing the probe.
				continue probe
			}
			// Ready slot of the current epoch.
			if hashes[s] == h && keys[s] == k {
				contended += t.fold(s, cols, base+i)
				absorbed++
				break probe
			}
			j = (j + 1) & blockMask
			probes++
			if probes == blockRows {
				// Block exhausted by other keys.
				needGrow = true
				esc = append(esc, int32(i))
			}
		}
	}
	if absorbed > 0 {
		t.rowsIn.Add(absorbed)
	}
	_ = escStart
	return esc, contended, needGrow
}

// fold atomically combines one raw row into a published slot, one state
// word at a time. Returns the number of failed MIN/MAX CASes (each one
// means another worker made progress — lock-free, never a livelock).
func (t *Table) fold(s int, cols [][]int64, row int) int {
	retries := 0
	for w := range t.ops {
		op := &t.ops[w]
		v := int64(1)
		if op.Src == agg.SrcCol {
			v = cols[op.Col][row]
		}
		word := &t.states[w][s]
		switch op.Op {
		case agg.OpAdd:
			atomic.AddUint64(word, uint64(v))
		case agg.OpMin:
			for {
				cur := atomic.LoadUint64(word)
				if int64(v) >= int64(cur) {
					break
				}
				if atomic.CompareAndSwapUint64(word, cur, uint64(v)) {
					break
				}
				retries++
			}
		case agg.OpMax:
			for {
				cur := atomic.LoadUint64(word)
				if int64(v) <= int64(cur) {
					break
				}
				if atomic.CompareAndSwapUint64(word, cur, uint64(v)) {
					break
				}
				retries++
			}
		}
	}
	return retries
}

// grow performs the cooperative stop-the-world split: it takes the write
// lock (stalling inserters at their next batch boundary), doubles the
// capacity, and rehashes every live slot into the new geometry. Growth is
// abandoned — permanently, escapes absorb the overflow — when the capacity
// cap is reached or the governor refuses the new memory.
func (t *Table) grow() {
	if t.noGrow.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check under the lock: another worker may have grown already.
	limit := int64(float64(t.capRows) * t.maxFill)
	if t.claimed.Load() < limit || t.noGrow.Load() {
		return
	}
	newCap := t.capRows * 2
	if newCap > t.maxCap {
		t.noGrow.Store(true)
		return
	}
	delta := int64(newCap-t.capRows) * SlotBytes(t.words)
	if t.gov != nil && !t.gov.TryReserve(delta) {
		t.noGrow.Store(true)
		return
	}
	oldMeta, oldHashes, oldKeys, oldStates := t.meta, t.hashes, t.keys, t.states
	oldCap := t.capRows
	t.alloc(newCap)
	// Exclusive access: plain reads of the old arrays, plain writes of the
	// new ones. Rehash preserves per-block low-bit probe order; within a
	// block the relative order of keys may change, which is fine — drains
	// promise no intra-block order.
	ready := t.epoch<<phaseBits | phaseReady
	for s := 0; s < oldCap; s++ {
		if !t.live(oldMeta[s]) {
			continue
		}
		h := oldHashes[s]
		blockBase := int(h>>blockShift) * t.blockRows
		j := h & t.blockMask
		for {
			d := blockBase + int(j)
			if t.meta[d] != ready {
				t.meta[d] = ready
				t.hashes[d] = h
				t.keys[d] = oldKeys[s]
				for w := range t.states {
					t.states[w][d] = oldStates[w][s]
				}
				break
			}
			j = (j + 1) & t.blockMask
		}
	}
	t.grows.Add(1)
}

// DrainRuns scans the table and returns one aggregated run per radix-256
// digit (index = top hash digit; empty digits are nil). Rows appear in
// block slot order — no intra-block ordering is promised. The caller must
// guarantee quiescence (no concurrent inserts); the core drains after the
// intake pool has joined. carryHashes attaches the stored hash column.
//
// Draining does not reset the table; pair with Reset for reuse.
func (t *Table) DrainRuns(carryHashes bool) [hashfn.Fanout]*runs.Run {
	var out [hashfn.Fanout]*runs.Run
	for d := 0; d < hashfn.Fanout; d++ {
		lo := d * t.blockRows
		hi := lo + t.blockRows
		n := 0
		for s := lo; s < hi; s++ {
			if t.live(t.meta[s]) {
				n++
			}
		}
		if n == 0 {
			continue
		}
		r := &runs.Run{
			Keys:       make([]uint64, 0, n),
			States:     make([][]uint64, t.words),
			Aggregated: true,
		}
		for w := range r.States {
			r.States[w] = make([]uint64, 0, n)
		}
		if carryHashes {
			r.Hashes = make([]uint64, 0, n)
		}
		for s := lo; s < hi; s++ {
			if !t.live(t.meta[s]) {
				continue
			}
			r.Keys = append(r.Keys, t.keys[s])
			for w := range r.States {
				r.States[w] = append(r.States[w], t.states[w][s])
			}
			if carryHashes {
				r.Hashes = append(r.Hashes, t.hashes[s])
			}
		}
		out[d] = r
	}
	return out
}
