package intern

import (
	"fmt"
	"sync"
	"testing"

	"cacheagg/internal/xrand"
)

func TestInternerDenseIDsAndRoundTrip(t *testing.T) {
	it := New()
	enc := it.NewEncoder()
	const n = 5000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("https://host%d.example/%d", i%37, i)
	}
	ids := make([]uint64, n)
	if err := enc.EncodeColumns([]Column{{Str: keys}}, ids); err != nil {
		t.Fatal(err)
	}
	if it.Len() != n {
		t.Fatalf("interned %d distinct keys, want %d", it.Len(), n)
	}
	seen := make([]bool, n)
	for i, id := range ids {
		if id >= n {
			t.Fatalf("id %d out of dense range [0,%d)", id, n)
		}
		if seen[id] {
			t.Fatalf("id %d assigned to two distinct keys (row %d)", id, i)
		}
		seen[id] = true
	}
	// Second pass must be a pure lookup: same ids, no growth.
	ids2 := make([]uint64, n)
	if err := enc.EncodeColumns([]Column{{Str: keys}}, ids2); err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Fatalf("row %d: id changed across passes (%d vs %d)", i, ids[i], ids2[i])
		}
	}
	if it.Len() != n {
		t.Fatalf("re-encode grew the dictionary to %d", it.Len())
	}
	// Decode streams the original keys back.
	cols, err := enc.DecodeColumns(ids, []ColType{StrCol})
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if cols[0].Str[i] != keys[i] {
			t.Fatalf("row %d decoded to %q, want %q", i, cols[0].Str[i], keys[i])
		}
	}
}

func TestInternerCompositeNullRoundTrip(t *testing.T) {
	it := New()
	enc := it.NewEncoder()
	u := []uint64{1, 2, 1, 42, 42}
	s := []string{"a", "a", "b", "", "x"}
	nu := []bool{false, false, false, true, false}
	ns := []bool{false, false, false, false, true}
	ids := make([]uint64, len(u))
	cols := []Column{{U64: u, Nulls: nu}, {Str: s, Nulls: ns}}
	if err := enc.EncodeColumns(cols, ids); err != nil {
		t.Fatal(err)
	}
	if it.Len() != 5 {
		t.Fatalf("want 5 distinct keys, got %d", it.Len())
	}
	dec, err := enc.DecodeColumns(ids, []ColType{U64Col, StrCol})
	if err != nil {
		t.Fatal(err)
	}
	for i := range u {
		if nu[i] {
			if dec[0].Nulls == nil || !dec[0].Nulls[i] {
				t.Fatalf("row %d: uint64 NULL lost", i)
			}
		} else if dec[0].U64[i] != u[i] {
			t.Fatalf("row %d: u64 %d, want %d", i, dec[0].U64[i], u[i])
		}
		if ns[i] {
			if dec[1].Nulls == nil || !dec[1].Nulls[i] {
				t.Fatalf("row %d: string NULL lost", i)
			}
		} else if dec[1].Str[i] != s[i] {
			t.Fatalf("row %d: str %q, want %q", i, dec[1].Str[i], s[i])
		}
	}
	// NULL equals NULL, but NULL is not "" and not 0.
	id0 := ids[3]
	again := make([]uint64, 1)
	if err := enc.EncodeColumns([]Column{{U64: []uint64{99}, Nulls: []bool{true}}, {Str: []string{""}}}, again); err != nil {
		t.Fatal(err)
	}
	if again[0] != id0 {
		t.Fatalf("NULL group split: %d vs %d", again[0], id0)
	}
}

func TestInternerTypeMismatchOnDecode(t *testing.T) {
	it := New()
	enc := it.NewEncoder()
	ids := make([]uint64, 1)
	if err := enc.EncodeColumns([]Column{{Str: []string{"s"}}}, ids); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.DecodeColumns(ids, []ColType{U64Col}); err == nil {
		t.Fatal("decoding a string key as uint64 must fail")
	}
	if _, err := enc.DecodeColumns(ids, []ColType{StrCol, StrCol}); err == nil {
		t.Fatal("decoding with wrong column count must fail")
	}
	if _, err := it.KeyBytes(99); err == nil {
		t.Fatal("KeyBytes of unknown id must fail")
	}
}

func TestInternerShapeErrors(t *testing.T) {
	it := New()
	enc := it.NewEncoder()
	ids := make([]uint64, 4)
	if err := enc.EncodeColumns(nil, ids); err == nil {
		t.Fatal("zero columns must fail")
	}
	if err := enc.EncodeColumns([]Column{{}}, ids); err == nil {
		t.Fatal("column with neither U64 nor Str must fail")
	}
	if err := enc.EncodeColumns([]Column{{U64: []uint64{1}, Str: []string{"x"}}}, ids); err == nil {
		t.Fatal("column with both U64 and Str must fail")
	}
	if err := enc.EncodeColumns([]Column{{U64: []uint64{1, 2}}, {Str: []string{"x"}}}, ids); err == nil {
		t.Fatal("ragged columns must fail")
	}
	if err := enc.EncodeColumns([]Column{{U64: []uint64{1, 2}, Nulls: []bool{true}}}, ids); err == nil {
		t.Fatal("short null mask must fail")
	}
	if err := enc.EncodeColumns([]Column{{U64: []uint64{1, 2, 3, 4, 5}}}, ids); err == nil {
		t.Fatal("short ids slice must fail")
	}
}

func TestInternerGrowHook(t *testing.T) {
	it := New()
	enc := it.NewEncoder()
	var grows int
	enc.OnGrow = func(shard, newSlots int) {
		grows++
		if shard < 0 || shard >= numShards {
			t.Errorf("grow hook shard %d out of range", shard)
		}
		if newSlots <= initialSlots {
			t.Errorf("grow hook reported %d slots, want > %d", newSlots, initialSlots)
		}
	}
	const n = 64 * initialSlots * 2 // enough to force growth in every shard
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	ids := make([]uint64, n)
	if err := enc.EncodeColumns([]Column{{U64: keys}}, ids); err != nil {
		t.Fatal(err)
	}
	if grows == 0 {
		t.Fatal("no grow events for a dictionary that must have grown")
	}
	if it.Grows() != int64(grows) {
		t.Fatalf("Grows() = %d, hook saw %d", it.Grows(), grows)
	}
	if it.Bytes() <= 0 {
		t.Fatal("Bytes() must be positive after interning")
	}
}

func TestInternerSteadyStateZeroAlloc(t *testing.T) {
	// Acceptance criterion: encoding a batch whose keys are all already
	// interned allocates nothing.
	it := New()
	enc := it.NewEncoder()
	const n = 2048
	u := make([]uint64, n)
	s := make([]string, n)
	nulls := make([]bool, n)
	for i := range u {
		u[i] = uint64(i % 97)
		s[i] = fmt.Sprintf("https://example.com/p/%d", i%53)
		nulls[i] = i%29 == 0
	}
	cols := []Column{{U64: u}, {Str: s, Nulls: nulls}}
	ids := make([]uint64, n)
	if err := enc.EncodeColumns(cols, ids); err != nil {
		t.Fatal(err) // warm: everything interned now
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := enc.EncodeColumns(cols, ids); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state EncodeColumns allocates %.1f times per batch, want 0", allocs)
	}
}

func TestInternerConcurrentSameIDs(t *testing.T) {
	// The concurrency contract: every goroutine interning the same logical
	// key must observe the same dense id, and ids stay dense. Run with
	// -race in CI.
	it := New()
	const workers = 8
	const n = 20000
	const distinct = 3000
	results := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			enc := it.NewEncoder()
			rng := xrand.NewXoshiro256(uint64(w + 1))
			u := make([]uint64, n)
			s := make([]string, n)
			for i := range u {
				k := rng.Next() % distinct
				u[i] = k
				s[i] = fmt.Sprintf("https://host/%d", k)
			}
			ids := make([]uint64, n)
			if err := enc.EncodeColumns([]Column{{U64: u}, {Str: s}}, ids); err != nil {
				t.Error(err)
				return
			}
			// Remap row ids back to logical key for cross-worker comparison.
			// Keys this worker never drew keep the sentinel.
			byKey := make([]uint64, distinct)
			for k := range byKey {
				byKey[k] = ^uint64(0)
			}
			for i := range u {
				byKey[u[i]] = ids[i]
			}
			results[w] = byKey
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if it.Len() > distinct {
		t.Fatalf("dictionary holds %d keys, want at most %d", it.Len(), distinct)
	}
	// Merge all workers' views, checking agreement wherever two overlap.
	merged := make([]uint64, distinct)
	for k := range merged {
		merged[k] = ^uint64(0)
	}
	for w := 0; w < workers; w++ {
		for k := 0; k < distinct; k++ {
			id := results[w][k]
			if id == ^uint64(0) {
				continue
			}
			if merged[k] != ^uint64(0) && merged[k] != id {
				t.Fatalf("worker %d saw id %d for key %d, another worker saw %d", w, id, k, merged[k])
			}
			merged[k] = id
		}
	}
	// And every interned id decodes to its own key.
	enc := it.NewEncoder()
	var ids []uint64
	var keys []int
	for k, id := range merged {
		if id != ^uint64(0) {
			ids = append(ids, id)
			keys = append(keys, k)
		}
	}
	cols, err := enc.DecodeColumns(ids, []ColType{U64Col, StrCol})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want := fmt.Sprintf("https://host/%d", k)
		if cols[0].U64[i] != uint64(k) || cols[1].Str[i] != want {
			t.Fatalf("id %d decoded to (%d, %q), want (%d, %q)", ids[i], cols[0].U64[i], cols[1].Str[i], k, want)
		}
	}
}

func TestInternRowMatchesBatch(t *testing.T) {
	// Single-row interning must land in the same dictionary entry as the
	// batched path: same serialization, same hash routing.
	a, b := New(), New()
	encA, encB := a.NewEncoder(), b.NewEncoder()
	u := []uint64{10, 20, 10}
	s := []string{"x", "y", "x"}
	nulls := []bool{false, true, false}
	ids := make([]uint64, 3)
	if err := encA.EncodeColumns([]Column{{U64: u}, {Str: s, Nulls: nulls}}, ids); err != nil {
		t.Fatal(err)
	}
	for i := range u {
		vals := []Value{{Kind: U64Value, U64: u[i]}, {Kind: StrValue, Str: s[i]}}
		if nulls[i] {
			vals[1] = Value{Kind: NullValue}
		}
		if got := encB.InternRow(vals); got != ids[i] {
			t.Fatalf("row %d: InternRow id %d, batch id %d", i, got, ids[i])
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("dictionaries diverge: %d vs %d", a.Len(), b.Len())
	}
}

func TestInternerLargeKeySpansSlabChunk(t *testing.T) {
	// A key bigger than the slab chunk must still intern and decode.
	it := New()
	enc := it.NewEncoder()
	big := make([]byte, slabChunk+100)
	for i := range big {
		big[i] = byte(i)
	}
	s := string(big)
	ids := make([]uint64, 2)
	if err := enc.EncodeColumns([]Column{{Str: []string{s, "small"}}}, ids); err != nil {
		t.Fatal(err)
	}
	cols, err := enc.DecodeColumns(ids, []ColType{StrCol})
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Str[0] != s || cols[0].Str[1] != "small" {
		t.Fatal("large-key round trip failed")
	}
}
