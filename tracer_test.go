package cacheagg

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"cacheagg/internal/datagen"
)

func traceInput(dist datagen.Dist, n int, k uint64, seed uint64) Input {
	keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: k, Seed: seed})
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i%1000) - 500
	}
	return Input{
		GroupBy:    keys,
		Columns:    [][]int64{vals},
		Aggregates: []AggSpec{{Func: Count}, {Func: Sum, Col: 0}, {Func: Avg, Col: 0}},
	}
}

// sameResult compares two results group-by-group via key lookup: the
// group set and every aggregate must match (row order within a hash
// bucket may differ between runs).
func sameResult(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: group counts differ: %d vs %d", label, a.Len(), b.Len())
	}
	bi := b.Index()
	for i, g := range a.Groups {
		j, ok := bi[g]
		if !ok {
			t.Fatalf("%s: group %d missing from traced result", label, g)
		}
		for c := range a.Aggs {
			if a.Aggs[c][i] != b.Aggs[c][j] {
				t.Fatalf("%s: group %d agg %d differs: %d vs %d", label, g, c, a.Aggs[c][i], b.Aggs[c][j])
			}
		}
	}
}

// TestTracerReconcilesWithStats cross-checks the two independent observers
// of the same execution: the trace counters must agree with the Stats
// fields, and installing a tracer must not change the result.
func TestTracerReconcilesWithStats(t *testing.T) {
	for _, dist := range []datagen.Dist{datagen.Uniform, datagen.HeavyHitter, datagen.Sorted} {
		for _, collect := range []bool{true, false} {
			in := traceInput(dist, 200000, 50000, 42)
			plain, err := Aggregate(in, opts())
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTracer(0)
			o := opts()
			o.CollectStats = collect
			o.Tracer = tr
			traced, err := Aggregate(in, o)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, plain, traced, dist.String())
			snap := tr.Snapshot()
			if !collect {
				continue
			}
			st := traced.Stats
			if got := snap.Counts["table-split"]; got != st.TablesEmitted {
				t.Errorf("%v: table-split count %d, Stats.TablesEmitted %d", dist, got, st.TablesEmitted)
			}
			if got := snap.Counts["strategy-switch"]; got != st.Switches {
				t.Errorf("%v: strategy-switch count %d, Stats.Switches %d", dist, got, st.Switches)
			}
			if got := snap.Counts["table-emit"]; got != st.DirectEmits {
				t.Errorf("%v: table-emit count %d, Stats.DirectEmits %d", dist, got, st.DirectEmits)
			}
			// Each table-split event carries its table's α; the sum must
			// reproduce the Stats mean up to float accumulation order.
			if st.TablesEmitted > 0 {
				want := st.MeanAlpha * float64(st.TablesEmitted)
				if got := snap.Sums["table-split"]; math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Errorf("%v: table-split α sum %g, Stats implies %g", dist, got, want)
				}
			}
		}
	}
}

func TestTracerPhasesInMemory(t *testing.T) {
	tr := NewTracer(0)
	o := opts()
	o.Tracer = tr
	if _, err := Aggregate(traceInput(datagen.Uniform, 300000, 100000, 7), o); err != nil {
		t.Fatal(err)
	}
	res, err := Aggregate(traceInput(datagen.Uniform, 300000, 100000, 7), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Intake <= 0 {
		t.Fatalf("Phases.Intake = %v", res.Phases.Intake)
	}
	if res.Phases.TableBuild+res.Phases.Scatter+res.Phases.Split <= 0 {
		t.Fatalf("no worker phase time: %+v", res.Phases)
	}
	if res.Phases.Merge != 0 || res.Phases.Spill != 0 {
		t.Fatalf("in-memory run reported out-of-core phases: %+v", res.Phases)
	}
}

func TestTracerDegradedRunTracesSpillAndMerge(t *testing.T) {
	tr := NewTracer(0)
	o := opts()
	o.Tracer = tr
	o.CollectStats = true
	o.MemoryBudgetBytes = 8 << 20
	res, err := Aggregate(traceInput(datagen.Uniform, 400000, 300000, 3), o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.DegradedToExternal {
		t.Fatal("400k-row working set fit in 8 MiB? degradation not reported")
	}
	snap := tr.Snapshot()
	if snap.Counts["spill-write"] == 0 || snap.Counts["spill-read"] == 0 {
		t.Fatalf("degraded run traced no spill traffic: %v", snap.Counts)
	}
	if snap.Counts["merge-start"] == 0 || snap.Counts["merge-start"] != snap.Counts["merge-finish"] {
		t.Fatalf("merge starts %d, finishes %d", snap.Counts["merge-start"], snap.Counts["merge-finish"])
	}
	if snap.Counts["gov-high-water"] == 0 {
		t.Fatal("governor high-water samples missing")
	}
	if hw := snap.Sums["gov-high-water"]; hw <= 0 {
		t.Fatalf("high-water sample sum %g", hw)
	}
	if res.Phases.Merge <= 0 || res.Phases.Spill <= 0 {
		t.Fatalf("degraded run missing spill/merge phase time: %+v", res.Phases)
	}
}

// The direct external entry point must wire Options.Tracer the same way
// the degrade path does.
func TestTracerAggregateExternal(t *testing.T) {
	tr := NewTracer(0)
	res, err := AggregateExternal(traceInput(datagen.Uniform, 400000, 300000, 5),
		Options{Tracer: tr},
		ExternalOptions{TempDir: t.TempDir(), MemoryBudgetBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if snap.Counts["spill-write"] == 0 || snap.Counts["spill-read"] == 0 {
		t.Fatalf("external run traced no spill traffic: %v", snap.Counts)
	}
	if got := int64(snap.Sums["spill-write"]); got != res.Stats.SpilledRows {
		t.Fatalf("spill-write row sum %d, Stats.SpilledRows %d", got, res.Stats.SpilledRows)
	}
	if snap.Counts["merge-start"] == 0 || snap.Counts["merge-start"] != snap.Counts["merge-finish"] {
		t.Fatalf("merge starts %d, finishes %d", snap.Counts["merge-start"], snap.Counts["merge-finish"])
	}
	if snap.PhaseNanos["merge"] <= 0 || snap.PhaseNanos["spill"] <= 0 {
		t.Fatalf("external run missing spill/merge phase time: %v", snap.PhaseNanos)
	}
}

func TestTracerEventsAndJSONL(t *testing.T) {
	tr := NewTracer(256)
	o := opts()
	o.Tracer = tr
	if _, err := Aggregate(traceInput(datagen.Uniform, 100000, 30000, 9), o); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events retained")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.Kind == "" {
			t.Fatalf("line %d has empty kind", lines)
		}
		lines++
	}
	if lines != len(evs) {
		t.Fatalf("JSONL lines %d, events %d", lines, len(evs))
	}
	var snap TraceSnapshot
	if err := json.Unmarshal([]byte(tr.String()), &snap); err != nil {
		t.Fatalf("String() not JSON: %v", err)
	}
	if snap.Emitted == 0 {
		t.Fatal("String() snapshot empty")
	}
}

// TestMeanAlphaNoTablesEmitted pins the guard on the MeanAlpha division:
// a run that emits no full tables (tiny input, or none at all) must
// report MeanAlpha = 0, never NaN.
func TestMeanAlphaNoTablesEmitted(t *testing.T) {
	for _, in := range []Input{
		{},
		traceInput(datagen.Uniform, 2000, 10, 5),
	} {
		o := opts()
		o.CollectStats = true
		res, err := Aggregate(in, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.TablesEmitted == 0 && res.Stats.MeanAlpha != 0 {
			t.Fatalf("MeanAlpha = %v with zero tables emitted", res.Stats.MeanAlpha)
		}
		if math.IsNaN(res.Stats.MeanAlpha) {
			t.Fatal("MeanAlpha is NaN")
		}
	}
}
