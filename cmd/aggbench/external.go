package main

// External-mode sweep: the out-of-core operator over a budget × K grid,
// sequential (PR 3 oracle path) vs parallel merge, medians over -reps.
// Emits the same sweepRecord JSON schema as the hot-path sweep, so
// BENCH_phase4.json pairs with BENCH_phase3.json tooling.

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/bench"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/external"
	"cacheagg/internal/trace"
	"cacheagg/internal/xrand"
)

// externalPoint turns explicitly collected rep durations into a median
// record — the external path is too expensive for testing.Benchmark's
// auto-scaling, and a median over explicit reps is what the phase-4
// acceptance asks for. Reps for competing modes are collected interleaved
// by the caller: this workload is syscall-bound (tens of thousands of tiny
// sub-partition files), so wall time tracks filesystem cache state far more
// than code, and back-to-back rep blocks would hand whichever mode runs
// second a warmed cache.
func externalPoint(name string, rows int, durs []time.Duration) sweepRecord {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	ns := float64(sorted[len(sorted)/2].Nanoseconds())
	return sweepRecord{
		Name:       name,
		NsPerOp:    ns,
		RowsPerSec: float64(rows) / (ns / 1e9),
	}
}

// externalSweep is the `external` command: spill-forced aggregations over
// {K} × {row budget} × {sequential, parallel} at N = 2^logn. Every point
// spills (budget ≪ K) so the merge phase dominates; the parallel/
// sequential ratio at P workers is the headline speedup of the phase.
func externalSweep(sc scale) []*bench.Table {
	sweepRecords = sweepRecords[:0]
	t := bench.NewTable(
		fmt.Sprintf("External sweep — out-of-core aggregation (N=2^%d, P=%d, GOMAXPROCS=%d)",
			sc.logN, sc.workers, runtime.GOMAXPROCS(0)),
		"point", "ns/op", "rows/s", "spilled rows", "merge levels", "prefetched")

	add := func(r sweepRecord, st external.Stats) {
		sweepRecords = append(sweepRecords, r)
		t.AddRow(r.Name, fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.3e", r.RowsPerSec), st.SpilledRows, st.MergeLevels, st.PrefetchedPartitions)
	}

	rng := xrand.NewXoshiro256(17)
	vals := make([]int64, sc.n)
	for i := range vals {
		vals[i] = int64(rng.Next() % 1000)
	}
	for _, kExp := range []int{14, 18} {
		if kExp >= sc.logN {
			continue
		}
		keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: sc.n, K: 1 << uint(kExp), Seed: 19})
		in := &core.Input{
			Keys:    keys,
			AggCols: [][]int64{vals},
			Specs:   []agg.Spec{{Kind: agg.Count}, {Kind: agg.Sum, Col: 0}, {Kind: agg.Avg, Col: 0}},
		}
		for _, budget := range []int{4096, 1 << 16} {
			if budget >= 1<<uint(kExp) {
				continue // would not spill enough to measure the merge phase
			}
			modes := []string{"seq", "par"}
			reps := sc.reps
			if reps < 1 {
				reps = 1
			}
			durs := make(map[string][]time.Duration, len(modes))
			stats := make(map[string]external.Stats, len(modes))
			for r := 0; r < reps; r++ {
				for _, mode := range modes {
					cfg := external.Config{
						MemoryBudgetRows: budget,
						SequentialMerge:  mode == "seq",
						MergeWorkers:     sc.workers,
						Core:             core.Config{Workers: sc.workers, CacheBytes: sc.cache},
					}
					start := time.Now()
					res, err := external.Aggregate(cfg, in)
					if err != nil {
						panic(err)
					}
					durs[mode] = append(durs[mode], time.Since(start))
					stats[mode] = res.Stats
				}
			}
			for _, mode := range modes {
				name := fmt.Sprintf("external/%s/P=%d/K=2^%d/budget=%d", mode, sc.workers, kExp, budget)
				add(externalPoint(name, sc.n, durs[mode]), stats[mode])
				mode := mode
				tracePoint(name, func(rec *trace.Recorder) {
					cfg := external.Config{
						MemoryBudgetRows: budget,
						SequentialMerge:  mode == "seq",
						MergeWorkers:     sc.workers,
						Tracer:           rec,
						Core:             core.Config{Workers: sc.workers, CacheBytes: sc.cache},
					}
					if _, err := external.Aggregate(cfg, in); err != nil {
						panic(err)
					}
				})
			}
		}
	}
	return []*bench.Table{t}
}
