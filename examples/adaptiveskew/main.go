// Adaptiveskew: watch the ADAPTIVE strategy change its mind mid-stream.
//
// The input is a UNION ALL of two halves with opposite locality — exactly
// the scenario Appendix A.2 of the paper cites for keeping the
// switch-back constant c finite:
//
//	half 1: sorted        (maximal locality  → hashing reduces 64×)
//	half 2: uniform, huge K (no locality     → partitioning is faster)
//
// The program runs the same input through HashingOnly, PartitionOnly and
// Adaptive and prints each strategy's time and routine mix. Adaptive should
// hash the first half, partition the second, and beat at least one of the
// specialists overall — without being told anything about the data.
//
// Run with: go run ./examples/adaptiveskew
package main

import (
	"fmt"
	"log"
	"time"

	"cacheagg"
	"cacheagg/internal/datagen"
)

func main() {
	const half = 1 << 21

	sortedHalf := datagen.Generate(datagen.Spec{
		Dist: datagen.Sorted, N: half, K: half / 64, Seed: 1,
	})
	uniformHalf := datagen.Generate(datagen.Spec{
		Dist: datagen.Uniform, N: half, K: half, Seed: 2,
	})
	keys := append(append(make([]uint64, 0, 2*half), sortedHalf...), uniformHalf...)
	// Keep the two halves' key spaces disjoint.
	for i := half; i < len(keys); i++ {
		keys[i] += 1 << 40
	}

	strategies := []cacheagg.Strategy{
		cacheagg.HashingOnlyStrategy(),
		cacheagg.PartitionOnlyStrategy(),
		cacheagg.AdaptiveStrategy(),
	}

	fmt.Printf("%-28s %10s %12s %14s %9s\n", "strategy", "time", "hashed rows", "partitioned", "switches")
	times := map[string]time.Duration{}
	for _, s := range strategies {
		opt := cacheagg.Options{
			Strategy:     s,
			CacheBytes:   1 << 20, // small budget to make the contrast visible
			CollectStats: true,
		}
		start := time.Now()
		res, err := cacheagg.Aggregate(cacheagg.Input{GroupBy: keys}, opt)
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		times[s.Name()] = d
		fmt.Printf("%-28s %10v %12d %14d %9d\n",
			s.Name(), d.Round(time.Millisecond),
			res.Stats.HashedRows, res.Stats.PartitionedRows, res.Stats.Switches)
	}

	a := times[cacheagg.AdaptiveStrategy().Name()]
	h := times[cacheagg.HashingOnlyStrategy().Name()]
	p := times[cacheagg.PartitionOnlyStrategy().Name()]
	fmt.Println()
	switch {
	case a <= h && a <= p:
		fmt.Println("adaptive beat both specialists on the mixed input")
	case a <= h || a <= p:
		fmt.Println("adaptive beat the mismatched specialist and tracked the better one")
	default:
		fmt.Println("adaptive trailed both specialists this run (small inputs are noisy)")
	}
}
