// Distinctquery: the paper's Section 6.4 comparison in miniature.
//
// It runs the same DISTINCT-style query (how many distinct session ids in a
// clickstream?) through the adaptive operator and all five prior-work
// baselines, at two output cardinalities: one where the output fits in
// cache and one far beyond it. The fixed-pass baselines need the true
// cardinality up front (they size their tables from an optimizer
// estimate); the adaptive operator is not told anything.
//
// Run with: go run ./examples/distinctquery
package main

import (
	"fmt"
	"log"
	"time"

	"cacheagg"
	"cacheagg/internal/baselines"
	"cacheagg/internal/datagen"
)

func main() {
	const n = 2 << 20
	const cacheBytes = 1 << 20

	for _, k := range []uint64{1 << 10, 1 << 19} {
		sessions := datagen.Generate(datagen.Spec{
			Dist: datagen.Uniform, N: n, K: k, Seed: 11,
		})
		trueK := datagen.CountDistinct(sessions)
		fmt.Printf("=== %d rows, %d distinct sessions ===\n", n, trueK)
		fmt.Printf("%-26s %12s %10s\n", "algorithm", "time", "ns/row")

		report := func(name string, d time.Duration, groups int) {
			if groups != trueK {
				log.Fatalf("%s returned %d groups, want %d", name, groups, trueK)
			}
			fmt.Printf("%-26s %12v %10.1f\n", name, d.Round(time.Microsecond),
				float64(d.Nanoseconds())/float64(n))
		}

		for _, alg := range baselines.All() {
			cfg := baselines.Config{CacheBytes: cacheBytes, EstimatedGroups: trueK}
			start := time.Now()
			res := alg.Run(sessions, cfg)
			report(alg.Name()+" (needs K)", time.Since(start), res.Groups())
		}

		start := time.Now()
		groups, err := cacheagg.Distinct(sessions, cacheagg.Options{CacheBytes: cacheBytes})
		if err != nil {
			log.Fatal(err)
		}
		report("ADAPTIVE (no estimate)", time.Since(start), len(groups))
		fmt.Println()
	}
}
