package cacheagg

// One testing.B benchmark per table and figure of the paper. These are the
// Go-native counterparts of the cmd/aggbench subcommands: `aggbench`
// prints full sweeps in the paper's units, while `go test -bench=.`
// integrates with standard Go tooling (benchstat, -benchmem, CI).
//
// Scale: N = 2^20 rows per iteration by default — large enough that the
// recursion of the operator engages with the reduced cache budget below,
// small enough that the full suite runs in minutes. The cache budget is
// 1 MiB per worker so tables fill and strategies diverge at this N.

import (
	"fmt"
	"testing"

	"cacheagg/internal/baselines"
	"cacheagg/internal/cachesim"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/emm"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/hashtable"
	"cacheagg/internal/partition"
	"cacheagg/internal/xrand"
)

const (
	benchN     = 1 << 20
	benchCache = 1 << 20
)

func benchKeys(b *testing.B, dist datagen.Dist, k uint64) []uint64 {
	b.Helper()
	return datagen.Generate(datagen.Spec{Dist: dist, N: benchN, K: k, Seed: 42})
}

func coreCfg(s core.Strategy) core.Config {
	return core.Config{Strategy: s, CacheBytes: benchCache}
}

func runDistinct(b *testing.B, cfg core.Config, keys []uint64) {
	b.Helper()
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Distinct(cfg, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1: the cost model itself (cheap) and the cache simulator. ---

func BenchmarkFig1CostModel(b *testing.B) {
	p := emm.FigureParams()
	for i := 0; i < b.N; i++ {
		if rows := emm.Figure1(p); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig1CacheSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := cachesim.NewMachine(1<<12, 16)
		in := cachesim.UniformKeys(m, 1<<14, 1<<10, 42)
		if st := cachesim.HashAggOpt(m, in); st.Groups == 0 {
			b.Fatal("no groups")
		}
	}
}

// --- Figure 3: partitioning micro-benchmarks. ---

func BenchmarkFig3PartitionNaive(b *testing.B) {
	keys := benchKeys(b, datagen.Uniform, 1<<30)
	b.SetBytes(benchN * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hashes := make([]uint64, len(keys))
		for j, k := range keys {
			hashes[j] = hashfn.Murmur2(k)
		}
		partition.NaiveScatter(0, 0, hashes, keys, nil)
	}
}

func BenchmarkFig3PartitionSWC(b *testing.B) {
	keys := benchKeys(b, datagen.Uniform, 1<<30)
	var scratch [16]uint64
	b.SetBytes(benchN * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := partition.New(partition.Config{Level: 0})
		j := 0
		for ; j+16 <= len(keys); j += 16 {
			for x := 0; x < 16; x++ {
				scratch[x] = hashfn.Murmur2(keys[j+x])
			}
			s.Scatter(scratch[:], keys[j:j+16], nil)
		}
		for ; j < len(keys); j++ {
			s.Add(hashfn.Murmur2(keys[j]), keys[j], nil)
		}
		s.Flush()
	}
}

// --- Figures 4 and 5: strategies over small/large K. ---

func benchStrategies() map[string]core.Strategy {
	return map[string]core.Strategy{
		"HashingOnly":     core.HashingOnly(),
		"PartitionAlways": core.PartitionAlways(1),
		"Adaptive":        core.DefaultAdaptive(),
	}
}

func BenchmarkFig4And5Strategies(b *testing.B) {
	for name, s := range benchStrategies() {
		for _, kExp := range []int{8, 14, 19} {
			keys := benchKeys(b, datagen.Uniform, 1<<uint(kExp))
			b.Run(fmt.Sprintf("%s/K=2^%d", name, kExp), func(b *testing.B) {
				runDistinct(b, coreCfg(s), keys)
			})
		}
	}
}

// --- Figure 6: worker scaling. ---

func BenchmarkFig6Speedup(b *testing.B) {
	keys := benchKeys(b, datagen.Uniform, 1<<16)
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			cfg := coreCfg(core.DefaultAdaptive())
			cfg.Workers = p
			runDistinct(b, cfg, keys)
		})
	}
}

// --- Figure 7: aggregate-column scaling. ---

func BenchmarkFig7Columns(b *testing.B) {
	keys := benchKeys(b, datagen.Uniform, 1<<14)
	rng := xrand.NewXoshiro256(5)
	maxCols := 4
	cols := make([][]int64, maxCols)
	for c := range cols {
		cols[c] = make([]int64, benchN)
		for i := range cols[c] {
			cols[c][i] = int64(rng.Next() % 1000)
		}
	}
	for _, nc := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("C=%d", nc+1), func(b *testing.B) {
			in := Input{GroupBy: keys, Columns: cols[:nc]}
			for c := 0; c < nc; c++ {
				in.Aggregates = append(in.Aggregates, AggSpec{Func: Sum, Col: c})
			}
			opt := Options{CacheBytes: benchCache}
			b.SetBytes(int64(benchN) * 8 * int64(nc+1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Aggregate(in, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 8: prior work vs Adaptive. ---

func BenchmarkFig8Baselines(b *testing.B) {
	for _, kExp := range []int{10, 19} {
		keys := benchKeys(b, datagen.Uniform, 1<<uint(kExp))
		k := datagen.CountDistinct(keys)
		for _, alg := range baselines.All() {
			b.Run(fmt.Sprintf("%s/K=2^%d", alg.Name(), kExp), func(b *testing.B) {
				cfg := baselines.Config{CacheBytes: benchCache, EstimatedGroups: k}
				b.SetBytes(benchN * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					alg.Run(keys, cfg)
				}
			})
		}
		b.Run(fmt.Sprintf("ADAPTIVE/K=2^%d", kExp), func(b *testing.B) {
			runDistinct(b, coreCfg(core.DefaultAdaptive()), keys)
		})
	}
}

// --- Figure 9: skew resistance. ---

func BenchmarkFig9Skew(b *testing.B) {
	for _, dist := range datagen.Dists() {
		keys := benchKeys(b, dist, 1<<16)
		b.Run(dist.String(), func(b *testing.B) {
			runDistinct(b, coreCfg(core.DefaultAdaptive()), keys)
		})
	}
}

// --- Figure 10: the two pure strategies across locality. ---

func BenchmarkFig10Locality(b *testing.B) {
	for _, w := range []uint64{256, 65536} {
		keys := datagen.Generate(datagen.Spec{
			Dist: datagen.MovingCluster, N: benchN, K: benchN / 4, Window: w, Seed: 42,
		})
		for name, s := range map[string]core.Strategy{
			"HashingOnly": core.HashingOnly(), "PartitionOnly": core.PartitionOnly(),
		} {
			b.Run(fmt.Sprintf("%s/window=%d", name, w), func(b *testing.B) {
				runDistinct(b, coreCfg(s), keys)
			})
		}
	}
}

// --- Figure 11: the amortization constant c. ---

func BenchmarkFig11C(b *testing.B) {
	keys := benchKeys(b, datagen.Uniform, 1<<18)
	for _, c := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			runDistinct(b, coreCfg(core.Adaptive(core.DefaultAlpha0, c)), keys)
		})
	}
}

// --- Section 4.1 table: hash insertion cost. ---

func BenchmarkHashTableInsert(b *testing.B) {
	tb := hashtable.New(hashtable.Config{
		CapacityRows: hashtable.CapacityForCache(benchCache, 0),
		Blocks:       hashfn.Fanout,
	})
	rng := xrand.NewXoshiro256(1)
	keys := make([]uint64, 1<<16)
	hs := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = rng.Uint64n(1 << 12)
		hs[i] = hashfn.Murmur2(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (len(keys) - 1)
		if !tb.InsertState(hs[j], keys[j], nil, nil) {
			tb.Reset()
		}
	}
}

// --- End-to-end: the public API, as a library consumer would call it. ---

func BenchmarkAggregateEndToEnd(b *testing.B) {
	keys := benchKeys(b, datagen.Zipf, 1<<16)
	vals := make([]int64, benchN)
	rng := xrand.NewXoshiro256(2)
	for i := range vals {
		vals[i] = int64(rng.Next() % 1000)
	}
	in := Input{
		GroupBy: keys,
		Columns: [][]int64{vals},
		Aggregates: []AggSpec{
			{Func: Count}, {Func: Sum, Col: 0}, {Func: Avg, Col: 0},
		},
	}
	b.SetBytes(benchN * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(in, Options{CacheBytes: benchCache}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: hash storage (DESIGN.md design-choice bench). ---
// The paper's runs hold only keys; hashes are recomputed every pass.
// Carrying the hash trades ~1 ns of MurmurHash2 per row per pass against
// 8 bytes of extra memory traffic per row per pass in each direction.
func BenchmarkAblationHashStorage(b *testing.B) {
	keys := benchKeys(b, datagen.Uniform, 1<<19)
	for _, carry := range []bool{false, true} {
		name := "recompute"
		if carry {
			name = "carry"
		}
		b.Run(name, func(b *testing.B) {
			cfg := coreCfg(core.DefaultAdaptive())
			cfg.CarryHashes = carry
			runDistinct(b, cfg, keys)
		})
	}
}

// --- Figure 1 addendum: the framework itself on the cache simulator. ---

func BenchmarkFig1FrameworkSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := cachesim.NewMachine(1<<12, 16)
		in := cachesim.UniformKeys(m, 1<<14, 1<<10, 42)
		if st := cachesim.FrameworkAgg(m, in, cachesim.FrameworkConfig{}); st.Groups == 0 {
			b.Fatal("no groups")
		}
	}
}
