package memgov

import (
	"errors"
	"sync"
	"testing"
)

func TestReserveReleaseHighWater(t *testing.T) {
	g := New(1000)
	g.Reserve(400)
	g.Reserve(300)
	if got := g.Reserved(); got != 700 {
		t.Fatalf("Reserved = %d, want 700", got)
	}
	g.Release(500)
	if got := g.Reserved(); got != 200 {
		t.Fatalf("Reserved after release = %d, want 200", got)
	}
	if got := g.HighWater(); got != 700 {
		t.Fatalf("HighWater = %d, want 700", got)
	}
	if got := g.Remaining(); got != 800 {
		t.Fatalf("Remaining = %d, want 800", got)
	}
}

func TestTryReserveEnforcesBudget(t *testing.T) {
	g := New(100)
	if !g.TryReserve(60) {
		t.Fatal("60/100 must be granted")
	}
	if g.TryReserve(50) {
		t.Fatal("60+50 > 100 must be refused")
	}
	if g.Reserved() != 60 {
		t.Fatalf("refused reservation changed the count: %d", g.Reserved())
	}
	if !g.TryReserve(40) {
		t.Fatal("60+40 = 100 must be granted (budget is inclusive)")
	}
	if g.OverBudget() {
		t.Fatal("exactly at budget is not over budget")
	}
	g.Reserve(1)
	if !g.OverBudget() {
		t.Fatal("forced reservation past budget must report OverBudget")
	}
}

func TestUnlimitedGovernor(t *testing.T) {
	g := New(0)
	if !g.TryReserve(1 << 40) {
		t.Fatal("unlimited governor refused a reservation")
	}
	if g.OverBudget() {
		t.Fatal("unlimited governor can never be over budget")
	}
	if g.HighWater() != 1<<40 {
		t.Fatalf("HighWater = %d", g.HighWater())
	}
}

func TestBudgetErrorWrapsSentinel(t *testing.T) {
	g := New(10)
	err := g.BudgetError("worker table", 64)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("BudgetError does not wrap ErrBudget: %v", err)
	}
}

func TestCacheBatchesAndFlushes(t *testing.T) {
	g := New(0)
	c := g.NewCache(100)
	c.Reserve(40)
	if g.Reserved() != 0 {
		t.Fatalf("small delta flushed early: %d", g.Reserved())
	}
	c.Reserve(70) // 110 >= grain: flush
	if g.Reserved() != 110 {
		t.Fatalf("Reserved = %d, want 110", g.Reserved())
	}
	c.Reserve(-5)
	c.Flush()
	if g.Reserved() != 105 {
		t.Fatalf("Reserved after flush = %d, want 105", g.Reserved())
	}
	c.Flush() // idempotent with nothing pending
	if g.Reserved() != 105 {
		t.Fatalf("empty flush changed the count: %d", g.Reserved())
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	c.Reserve(10)
	c.Flush()
}

func TestConcurrentAccounting(t *testing.T) {
	g := New(0)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := g.NewCache(256)
			for i := 0; i < per; i++ {
				c.Reserve(3)
			}
			c.Flush()
		}()
	}
	wg.Wait()
	if want := int64(workers * per * 3); g.Reserved() != want {
		t.Fatalf("Reserved = %d, want %d", g.Reserved(), want)
	}
	if g.HighWater() < g.Reserved() {
		t.Fatalf("HighWater %d below final Reserved %d", g.HighWater(), g.Reserved())
	}
}

func TestHighWaterHookSamplesPerGrain(t *testing.T) {
	g := New(0)
	var mu sync.Mutex
	var samples []int64
	g.SetHighWaterHook(100, func(hw int64) {
		mu.Lock()
		samples = append(samples, hw)
		mu.Unlock()
	})
	g.Reserve(10)  // high water 10 crosses the initial 0 threshold → sample
	g.Reserve(10)  // high water 20: below the next threshold (110), silent
	g.Reserve(200) // high water 220 crosses 110 → sample, threshold jumps past 220
	g.Release(200) // high water unchanged, silent
	g.Reserve(50)  // reserved 70 < high water, silent
	g.Reserve(300) // high water 370 crosses 310 → sample
	want := []int64{10, 220, 370}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

// TestHighWaterHookConcurrent checks the hook fires a bounded number of
// times under concurrent growth (at most once per grain of final high
// water, plus one for the initial crossing) and never with a stale value
// below its firing threshold sequence length.
func TestHighWaterHookConcurrent(t *testing.T) {
	g := New(0)
	var calls, bad int64
	var mu sync.Mutex
	g.SetHighWaterHook(1000, func(hw int64) {
		mu.Lock()
		calls++
		if hw < 0 {
			bad++
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Reserve(7)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if bad != 0 {
		t.Fatalf("%d hook calls with invalid high water", bad)
	}
	if calls == 0 {
		t.Fatal("hook never fired")
	}
	if max := g.HighWater()/1000 + 1; calls > max {
		t.Fatalf("hook fired %d times for high water %d with grain 1000 (max %d)",
			calls, g.HighWater(), max)
	}
}
