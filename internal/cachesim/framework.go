package cachesim

import "cacheagg/internal/hashfn"

// This file runs a single-threaded rendition of the paper's Algorithm 2 on
// the simulated cache — HASHING and PARTITIONING routines mixed by the
// ADAPTIVE rule — so the operator's cache-line transfer count can be
// compared against the textbook curves of Figure 1. It models the
// DISTINCT query of the paper's Section 6.4 comparison (no aggregate
// payload, C = 1): runs hold bare keys at every level and hashing
// deduplicates. The expected result (asserted by tests) is that the
// framework matches the optimized staircase for uniform data and beats
// forced partitioning when locality allows early aggregation.

// FrameworkConfig tunes the simulated operator.
type FrameworkConfig struct {
	// TableWords is the simulated hash table size in words (one word per
	// slot); 0 selects half the cache.
	TableWords int
	// Alpha0 is the adaptive switching threshold; 0 selects 4 (the sim
	// has different constants than the real build; tests derive the
	// value the same way Appendix A.1 does).
	Alpha0 float64
	// C is the partitioning amortization constant; 0 selects 10.
	C int
	// ForceHashing / ForcePartitioning pin the routine (the HashingOnly
	// and PartitionOnly strategies).
	ForceHashing      bool
	ForcePartitioning bool
}

// FrameworkAgg runs the DISTINCT query over the input with the mixed
// hashing/partitioning framework on the simulated machine. Stats.Out holds
// the distinct keys (one word per group); Stats.Groups their count.
func FrameworkAgg(m *Machine, input Array, cfg FrameworkConfig) Stats {
	if cfg.TableWords == 0 {
		cfg.TableWords = m.Cache.CapacityLines() * m.Cache.LineWords() / 2
	}
	if cfg.Alpha0 == 0 {
		cfg.Alpha0 = 4
	}
	if cfg.C == 0 {
		cfg.C = 10
	}
	// Fan-out: at most cache-lines/2 (the model's buffer argument) and at
	// most one cache line's worth of rows per split run (maxRows/B), so
	// table splits never emit under-filled lines. The paper's cache-sized
	// tables satisfy this trivially (millions of rows across 256 runs);
	// the reduced-scale simulator must scale the fan-out down with the
	// table.
	fanout := simFanout(m)
	maxRows := nextPow2(cfg.TableWords) / 4
	for fanout > 2 && fanout > maxRows/m.Cache.LineWords() {
		fanout /= 2
	}
	f := &fwExec{m: m, cfg: cfg, fanout: fanout}
	k := distinctOf(input, 0, input.Len())
	f.out = m.NewArray(max(k, 1))
	f.processBucket([]span{{input, 0, input.Len()}}, 0)
	return captureStats(m, int64(f.groups), f.out)
}

// VerifyDistinct checks that out[0:groups] is exactly the distinct key set
// of the input (order-insensitive), reading via Peek (uncharged).
func VerifyDistinct(input Array, out Array, groups int64) bool {
	want := map[uint64]struct{}{}
	for i := 0; i < input.Len(); i++ {
		want[input.Peek(i)] = struct{}{}
	}
	if int64(len(want)) != groups {
		return false
	}
	seen := map[uint64]struct{}{}
	for g := int64(0); g < groups; g++ {
		k := out.Peek(int(g))
		if _, dup := seen[k]; dup {
			return false
		}
		seen[k] = struct{}{}
		if _, ok := want[k]; !ok {
			return false
		}
	}
	return true
}

// span is a view into a simulated key array (a "run").
type span struct {
	arr    Array
	lo, hi int
}

func (s span) len() int { return s.hi - s.lo }

type fwExec struct {
	m      *Machine
	cfg    FrameworkConfig
	fanout int
	out    Array
	outPos int
	groups int

	// Reusable tables, mirroring the real operator's per-worker reuse:
	// a fresh allocation per table fill would charge compulsory misses
	// the real machine never pays (its table stays cache resident).
	// Clearing instead costs writes that hit in cache.
	routineTable Array
	leafTable    Array
}

// zeroFill zeroes arr[0:n] through the cache (hits when resident).
func zeroFill(arr Array, n int) {
	for i := 0; i < n; i++ {
		arr.Write(i, 0)
	}
}

// tableSlots returns the slot count of a cache-sized table (one word per
// slot, rounded to a power of two).
func (f *fwExec) tableSlots() int { return nextPow2(f.cfg.TableWords) }

func (f *fwExec) maxRows() int { return f.tableSlots() / 4 } // 25 % fill

// processBucket is Algorithm 2: drain all runs of the bucket through the
// strategy-selected routine, then recurse into the produced sub-buckets.
func (f *fwExec) processBucket(bucket []span, level int) {
	total := 0
	for _, s := range bucket {
		total += s.len()
	}
	if total == 0 {
		return
	}
	// Leaf: one fused in-cache pass suffices.
	if total <= f.maxRows()*2 || level >= hashfn.MaxLevels {
		f.finalize(bucket)
		return
	}

	partitioning := f.cfg.ForcePartitioning
	partBudget := 0

	sub := make([][]span, f.fanout)
	bits := bitsLen(uint(f.fanout)) - 1
	digit := func(key uint64) int {
		shift := 64 - bits*(level+1)
		if shift < 0 {
			shift = 0
		}
		return int(hashfn.Murmur2(key) >> uint(shift) & uint64(f.fanout-1))
	}

	// HASHING routine state: one-word slots storing key+1.
	var table Array
	var tMask int
	var tRows, tIn int
	newTable := func() {
		if f.routineTable.m == nil {
			f.routineTable = f.m.NewArray(f.tableSlots())
		} else {
			zeroFill(f.routineTable, f.tableSlots())
		}
		table = f.routineTable
		tMask = f.tableSlots() - 1
		tRows, tIn = 0, 0
	}
	splitTable := func() {
		runs := make([]Array, f.fanout)
		fill := make([]int, f.fanout)
		for p := range runs {
			runs[p] = f.m.NewArray(tRows + 1)
		}
		for s := 0; s <= tMask; s++ {
			stored := table.Read(s)
			if stored == 0 {
				continue
			}
			key := stored - 1
			d := digit(key)
			runs[d].Write(fill[d], key)
			fill[d]++
		}
		for p := range runs {
			if fill[p] > 0 {
				sub[p] = append(sub[p], span{runs[p], 0, fill[p]})
			}
		}
	}

	// PARTITIONING routine state: over-allocated children (free in sim).
	var parts []Array
	partFill := make([]int, f.fanout)
	newParts := func() {
		parts = make([]Array, f.fanout)
		for p := range parts {
			parts[p] = f.m.NewArray(total)
		}
	}

	for _, s := range bucket {
		for i := s.lo; i < s.hi; i++ {
			key := s.arr.Read(i)
			if partitioning && !f.cfg.ForcePartitioning && partBudget <= 0 {
				partitioning = false // amortized: probe with hashing again
			}
			if partitioning {
				if parts == nil {
					newParts()
				}
				d := digit(key)
				parts[d].Write(partFill[d], key)
				partFill[d]++
				partBudget--
				continue
			}
			if table.m == nil {
				newTable()
			}
			slot := int(hashfn.Murmur2(key)) & tMask
			for {
				stored := table.Read(slot)
				if stored == 0 {
					if tRows >= f.maxRows() {
						// Table full: α decision, split, fresh table.
						alpha := float64(tIn) / float64(max(tRows, 1))
						splitTable()
						newTable()
						if !f.cfg.ForceHashing && alpha < f.cfg.Alpha0 {
							partitioning = true
							partBudget = f.cfg.C * f.maxRows()
						}
						slot = int(hashfn.Murmur2(key)) & tMask
						continue
					}
					table.Write(slot, key+1)
					tRows++
					tIn++
					break
				}
				if stored == key+1 {
					tIn++ // duplicate absorbed: early aggregation
					break
				}
				slot = (slot + 1) & tMask
			}
		}
	}
	if table.m != nil && tRows > 0 {
		splitTable()
	}
	for p := range sub {
		if parts != nil && partFill[p] > 0 {
			sub[p] = append(sub[p], span{parts[p], 0, partFill[p]})
		}
		if len(sub[p]) > 0 {
			f.processBucket(sub[p], level+1)
		}
	}
}

// finalize deduplicates a leaf bucket in cache and writes the output.
func (f *fwExec) finalize(bucket []span) {
	total := 0
	for _, s := range bucket {
		total += s.len()
	}
	slots := nextPow2(2*total + 2)
	if slots < 16 {
		slots = 16
	}
	// Reuse (and clear) the shared leaf table when it is big enough;
	// leaves are bounded by 2·maxRows so one allocation serves all.
	var table Array
	if slots <= nextPow2(4*f.maxRows()+16) {
		if f.leafTable.m == nil {
			f.leafTable = f.m.NewArray(nextPow2(4*f.maxRows() + 16))
		}
		zeroFill(f.leafTable, slots)
		table = f.leafTable
	} else {
		table = f.m.NewArray(slots)
	}
	mask := slots - 1
	for _, s := range bucket {
		for i := s.lo; i < s.hi; i++ {
			key := s.arr.Read(i)
			slot := int(hashfn.Murmur2(key)) & mask
			for {
				stored := table.Read(slot)
				if stored == 0 {
					table.Write(slot, key+1)
					break
				}
				if stored == key+1 {
					break
				}
				slot = (slot + 1) & mask
			}
		}
	}
	for s := 0; s < slots; s++ {
		if stored := table.Read(s); stored != 0 {
			f.out.Write(f.outPos, stored-1)
			f.outPos++
			f.groups++
		}
	}
}
